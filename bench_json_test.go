package streamloader

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchJSONValid guards BENCH_warehouse.json against hand-edit rot:
// the file is appended to by hand each PR that moves a warehouse hot path,
// and a stray comma turns the whole perf trajectory unreadable. CI also
// validates it standalone, but this keeps `go test ./...` sufficient.
func TestBenchJSONValid(t *testing.T) {
	data, err := os.ReadFile("BENCH_warehouse.json")
	if err != nil {
		t.Fatalf("reading BENCH_warehouse.json: %v", err)
	}
	var doc struct {
		Description string `json:"description"`
		Runs        []struct {
			PR         int            `json:"pr"`
			Date       string         `json:"date"`
			Benchmarks map[string]any `json:"benchmarks"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_warehouse.json is not valid JSON: %v", err)
	}
	if doc.Description == "" || len(doc.Runs) == 0 {
		t.Fatal("BENCH_warehouse.json lost its description or runs")
	}
	for i, run := range doc.Runs {
		if run.PR == 0 || run.Date == "" || len(run.Benchmarks) == 0 {
			t.Fatalf("run %d is missing pr/date/benchmarks", i)
		}
	}
}
