module streamloader

go 1.24
