// Integration tests: whole-system behaviour across the module boundaries,
// exercising exactly the paths the demo walkthrough P1–P3 shows — design on
// samples, deployment with DSN/SCN, warehouse/viz destinations, trigger
// hysteresis, and failure injection.
package streamloader

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/dsn"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/ops"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
	"streamloader/internal/viz"
	"streamloader/internal/warehouse"
)

// itRig is the full-system fixture: network, broker, fleet, warehouse, viz,
// monitor, executor.
type itRig struct {
	net     *network.Network
	broker  *pubsub.Broker
	sensors map[string]*sensor.Sensor
	extra   map[string]executor.SensorSource // non-simulated sources (replay)
	mon     *monitor.Monitor
	wh      *warehouse.Warehouse
	board   *viz.Board
	exec    *executor.Executor
}

func newITRig(t *testing.T, specs []sensor.Spec) *itRig {
	t.Helper()
	net, err := network.Tree(network.TopologyConfig{Nodes: 4, Area: geo.Osaka, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker("it")
	sensors := map[string]*sensor.Sensor{}
	for _, spec := range specs {
		if spec.NodeID == "" {
			id, err := net.NodeForLocation(spec.Location)
			if err != nil {
				t.Fatal(err)
			}
			spec.NodeID = id
		}
		s, err := sensor.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			t.Fatal(err)
		}
	}
	mon := monitor.New()
	wh := warehouse.New()
	board, err := viz.NewBoard(geo.Osaka, 10, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	extra := map[string]executor.SensorSource{}
	exec, err := executor.New(executor.Config{
		Network: net, Broker: broker, Strategy: network.Locality{}, Monitor: mon,
		Clock: stream.NewVirtualClock(time.Unix(0, 0)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			if src, ok := extra[id]; ok {
				return src, true
			}
			s, ok := sensors[id]
			return s, ok
		},
		Sinks: func(kind, nodeID string, schema *stt.Schema) (executor.Sink, error) {
			if kind == "viz" {
				return board, nil
			}
			return warehouse.Sink{W: wh}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &itRig{net: net, broker: broker, sensors: sensors, extra: extra,
		mon: mon, wh: wh, board: board, exec: exec}
}

var itStart = time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)

// TestIntegrationOsakaScenario replays the paper's scenario and checks the
// load-bearing behaviours: gated acquisition, culling factor, granularity of
// what lands in the warehouse.
func TestIntegrationOsakaScenario(t *testing.T) {
	rig := newITRig(t, []sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter, Seed: 1, FrequencyHz: 1},
		{ID: "rain-1", Type: sensor.TypeRain, Location: geo.Point{Lat: 34.65, Lon: 135.43}, Seed: 2, FrequencyHz: 1},
		{ID: "tweet-1", Type: sensor.TypeTweet, Location: geo.Point{Lat: 34.70, Lon: 135.50}, Seed: 3, FrequencyHz: 1},
	})
	spec := &dataflow.Spec{
		Name: "osaka-it",
		Nodes: []dataflow.NodeSpec{
			{ID: "temp", Kind: "source", Sensor: "temp-1"},
			{ID: "hot", Kind: "trigger_on", IntervalMS: 3600_000,
				Cond: "temperature > 25", Targets: []string{"rain-1", "tweet-1"}},
			{ID: "tdone", Kind: "sink", Sink: "discard"},
			{ID: "rain", Kind: "source", Sensor: "rain-1"},
			{ID: "rwh", Kind: "sink", Sink: "warehouse"},
			{ID: "tweets", Kind: "source", Sensor: "tweet-1"},
			{ID: "cull", Kind: "cull_space", Rate: 0.75, Area: &geo.Osaka},
			{ID: "wwh", Kind: "sink", Sink: "warehouse"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "temp", To: "hot"}, {From: "hot", To: "tdone"},
			{From: "rain", To: "rwh"},
			{From: "tweets", To: "cull"}, {From: "cull", To: "wwh"},
		},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()

	if rig.broker.IsActive("rain-1") || rig.broker.IsActive("tweet-1") {
		t.Fatal("gated sensors must start deactivated")
	}
	if err := d.Run(itStart, itStart.AddDate(0, 0, 1)); err != nil {
		t.Fatal(err)
	}

	// The diurnal model crosses 25C in the late morning: the trigger fired.
	var fired []ops.FireEvent
	for _, f := range d.Fires() {
		if f.Fired {
			fired = append(fired, f)
		}
	}
	if len(fired) == 0 {
		t.Fatal("trigger never fired over a full day")
	}
	activationEdge := fired[0].WindowStart.Add(time.Hour) // window end

	// Nothing in the warehouse predates the activation edge.
	early, err := rig.wh.Count(warehouse.Query{To: activationEdge})
	if err != nil {
		t.Fatal(err)
	}
	if early != 0 {
		t.Errorf("%d events acquired before the trigger activated the streams", early)
	}
	// Both gated streams contributed afterwards.
	rainN, _ := rig.wh.Count(warehouse.Query{Themes: []string{"rain"}})
	socialN, _ := rig.wh.Count(warehouse.Query{Themes: []string{"social"}})
	if rainN == 0 || socialN == 0 {
		t.Errorf("gated streams missing from warehouse: rain=%d social=%d", rainN, socialN)
	}

	// Culling factor: the cull op kept ~25% of what it consumed.
	rep := rig.mon.Snapshot(time.Now(), false)
	for _, op := range rep.Ops {
		if op.Name != "cull" || op.In == 0 {
			continue
		}
		ratio := float64(op.Out) / float64(op.In)
		if ratio < 0.24 || ratio > 0.26 {
			t.Errorf("cull ratio = %.3f, want ~0.25", ratio)
		}
	}
}

// TestIntegrationTriggerHysteresis pairs a Trigger On with a Trigger Off:
// "events can be used both for triggering or stopping the acquisition and
// elaboration of streams" (§2). Over a day, rain acquisition switches on in
// the warm hours and off again at night.
func TestIntegrationTriggerHysteresis(t *testing.T) {
	rig := newITRig(t, []sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter, Seed: 1, FrequencyHz: 1},
		{ID: "rain-1", Type: sensor.TypeRain, Location: geo.OsakaCenter, Seed: 2, FrequencyHz: 1},
	})
	spec := &dataflow.Spec{
		Name: "hysteresis",
		Nodes: []dataflow.NodeSpec{
			{ID: "temp", Kind: "source", Sensor: "temp-1"},
			{ID: "on", Kind: "trigger_on", IntervalMS: 3600_000,
				Cond: "temperature > 25", Targets: []string{"rain-1"}},
			{ID: "off", Kind: "trigger_off", IntervalMS: 3600_000,
				Cond: "temperature < 20", Mode: "all", Targets: []string{"rain-1"}},
			{ID: "done", Kind: "sink", Sink: "discard"},
			{ID: "rain", Kind: "source", Sensor: "rain-1"},
			{ID: "rsink", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "temp", To: "on"},
			{From: "on", To: "off"},
			{From: "off", To: "done"},
			{From: "rain", To: "rsink"},
		},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	// Run from midnight to midnight: cold -> warm -> cold.
	if err := d.Run(itStart, itStart.AddDate(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// The ON trigger fired during the day and the OFF trigger at night.
	var onFired, offFired bool
	for _, f := range d.Fires() {
		if !f.Fired {
			continue
		}
		switch f.Op {
		case "on":
			onFired = true
		case "off":
			offFired = true
		}
	}
	if !onFired || !offFired {
		t.Fatalf("hysteresis incomplete: on=%v off=%v", onFired, offFired)
	}
	// After the final cold evening hours the stream is off again.
	if rig.broker.IsActive("rain-1") {
		t.Error("rain stream still active after the cold night hours")
	}
	// Rain tuples exist only for a bounded band of the day.
	rain := d.Collected("rsink")
	if len(rain) == 0 {
		t.Fatal("no rain acquired during the warm hours")
	}
	first, last := rain[0].Time, rain[len(rain)-1].Time
	if first.Hour() < 9 {
		t.Errorf("acquisition started suspiciously early: %v", first)
	}
	if last.Hour() < 12 {
		t.Errorf("acquisition ended before the afternoon: %v", last)
	}
}

// TestIntegrationNodeFailureRecovery injects a node failure between runs;
// reconfiguration re-places the affected services and the dataflow resumes.
// A full mesh keeps the surviving nodes connected whichever node dies (tree
// and star topologies legitimately partition when a cut vertex fails).
func TestIntegrationNodeFailureRecovery(t *testing.T) {
	rig := newITRig(t, []sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter,
			NodeID: "node-01", Seed: 1, FrequencyHz: 1},
	})
	mesh := network.New()
	for i := 0; i < 4; i++ {
		if err := mesh.AddNode(network.Node{
			ID:       []string{"node-00", "node-01", "node-02", "node-03"}[i],
			Capacity: 100, Region: geo.Osaka,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ids := mesh.Nodes()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if err := mesh.AddLink(ids[i], ids[j], 2, 1e9); err != nil {
				t.Fatal(err)
			}
		}
	}
	exec, err := executor.New(executor.Config{
		Network: mesh, Broker: rig.broker, Strategy: network.Locality{}, Monitor: rig.mon,
		Clock: stream.NewVirtualClock(time.Unix(0, 0)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := rig.sensors[id]
			return s, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.net = mesh
	rig.exec = exec
	spec := &dataflow.Spec{
		Name: "failover",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "avg", Kind: "aggregate", IntervalMS: 10_000, Func: "AVG", Attr: "temperature"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "src", To: "avg"}, {From: "avg", To: "out"},
		},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(itStart, itStart.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	before := len(d.Collected("out"))
	if before == 0 {
		t.Fatal("no output before failure")
	}

	// Kill the node hosting the aggregation.
	victim := d.Placement()["avg"]
	if err := rig.net.SetDown(victim, true); err != nil {
		t.Fatal(err)
	}
	rig.mon.RecordEvent(monitor.Event{Time: itStart, Kind: monitor.EventNodeDown, Node: victim})

	// Reconfigure with the same spec: surviving placements on healthy nodes
	// stay; services on the dead node are re-placed.
	if err := d.Reconfigure(spec); err != nil {
		t.Fatal(err)
	}
	if got := d.Placement()["avg"]; got == victim {
		t.Fatalf("aggregation still placed on the dead node %s", got)
	}
	if err := d.Run(itStart, itStart.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if after := len(d.Collected("out")); after <= before {
		t.Errorf("no progress after failover: %d -> %d", before, after)
	}
}

// TestIntegrationSensorLeaveMidDeployment unpublishes a sensor between runs;
// the next run emits nothing for it but the dataflow stays healthy.
func TestIntegrationSensorLeave(t *testing.T) {
	rig := newITRig(t, []sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter, Seed: 1, FrequencyHz: 1},
	})
	spec := &dataflow.Spec{
		Name: "leave",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{{From: "src", To: "out"}},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(itStart, itStart.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	before := len(d.Collected("out"))

	// The sensor leaves the network: generator gone, publication revoked.
	delete(rig.sensors, "temp-1")
	if err := rig.broker.Unpublish("temp-1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(itStart, itStart.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if after := len(d.Collected("out")); after != before {
		t.Errorf("tuples appeared from a departed sensor: %d -> %d", before, after)
	}
}

// TestIntegrationVizSinkThroughExecutor drives the viz board from a deployed
// dataflow and checks the rendered output reflects the stream.
func TestIntegrationVizSink(t *testing.T) {
	rig := newITRig(t, []sensor.Spec{
		{ID: "tweet-1", Type: sensor.TypeTweet, Location: geo.OsakaCenter, Seed: 5, FrequencyHz: 1},
	})
	spec := &dataflow.Spec{
		Name: "social-board",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "tweet-1"},
			{ID: "board", Kind: "sink", Sink: "viz"},
		},
		Edges: []dataflow.EdgeSpec{{From: "src", To: "board"}},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(itStart, itStart.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	snap := rig.board.Snapshot()
	if snap.Total != 3600 {
		t.Errorf("board total = %d, want 3600", snap.Total)
	}
	if len(rig.board.GlobalTopTopics(3)) == 0 {
		t.Error("no topics extracted")
	}
	if !strings.Contains(rig.board.RenderASCII(), "total=3600") {
		t.Error("render header")
	}
}

// TestIntegrationDSNInterpretation closes the DSN loop at system level: the
// deployed document parses back and recompiles into an equivalent plan —
// "the network control protocol stack interprets the DSN description".
func TestIntegrationDSNRoundTrip(t *testing.T) {
	rig := newITRig(t, []sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter, Seed: 1, FrequencyHz: 1},
	})
	spec := &dataflow.Spec{
		Name: "loop",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "f", Kind: "filter", Cond: "temperature > 10"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{{From: "src", To: "f"}, {From: "f", To: "out"}},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()

	doc, err := dsn.Parse(d.DSNText())
	if err != nil {
		t.Fatalf("deployed DSN does not parse: %v", err)
	}
	recovered, err := dsn.ToSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered spec deploys on a second executor rig identically.
	rig2 := newITRig(t, []sensor.Spec{
		{ID: "temp-1", Type: sensor.TypeTemperature, Location: geo.OsakaCenter, Seed: 1, FrequencyHz: 1},
	})
	d2, err := rig2.exec.Deploy(recovered)
	if err != nil {
		t.Fatalf("recovered spec does not deploy: %v", err)
	}
	defer d2.Undeploy()
	if err := d2.Run(itStart, itStart.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(d2.Collected("out")) == 0 {
		t.Error("recovered dataflow produced nothing")
	}
}

// TestIntegrationReplaySensor records a trace from a simulated sensor (the
// slgen path), then drives a deployed dataflow from the recorded trace via
// sensor.Replay — real captured data standing in for the simulator.
func TestIntegrationReplaySensor(t *testing.T) {
	// Record 30 minutes of temperature readings as JSONL.
	gen, err := sensor.New(sensor.Spec{
		ID: "rec", Type: sensor.TypeTemperature,
		Location: geo.OsakaCenter, NodeID: "node-00", Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace strings.Builder
	enc := json.NewEncoder(&trace)
	gen.Emit(itStart, itStart.Add(30*time.Minute), func(tup *stt.Tuple) bool {
		if err := enc.Encode(tup.Map()); err != nil {
			t.Fatal(err)
		}
		return true
	})

	// Replay it as a published sensor behind a deployed dataflow.
	rig := newITRig(t, nil)
	rep, err := sensor.NewReplay("replayed-1", gen.Schema(), "node-00",
		strings.NewReader(trace.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.broker.Publish(rep.Meta()); err != nil {
		t.Fatal(err)
	}
	rig.extra["replayed-1"] = rep

	spec := &dataflow.Spec{
		Name: "replay-flow",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "replayed-1"},
			{ID: "warm", Kind: "filter", Cond: "temperature > -100"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "src", To: "warm"}, {From: "warm", To: "out"},
		},
	}
	d, err := rig.exec.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Undeploy()
	if err := d.Run(itStart, itStart.Add(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	got := d.Collected("out")
	if len(got) != 30 { // one reading per minute
		t.Fatalf("replayed %d tuples, want 30", len(got))
	}
	if got[0].Source != "replayed-1" {
		t.Error("source tag lost in replay")
	}
}
