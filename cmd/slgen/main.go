// Command slgen generates reproducible synthetic sensor traces as JSON
// Lines, for offline inspection, warehouse loading and external tooling:
//
//	slgen -type temperature -count 3 -duration 1h -seed 7 > trace.jsonl
//	slgen -all -duration 10m              # one sensor of every class
//
// Each line is one STT event with payload fields plus _time, _lat, _lon,
// _theme and _source metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/sensor"
	"streamloader/internal/stt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slgen: ")
	var (
		typ      = flag.String("type", "temperature", "sensor type to generate")
		all      = flag.Bool("all", false, "generate one sensor of every type instead")
		count    = flag.Int("count", 1, "number of sensors of the type")
		duration = flag.Duration("duration", time.Hour, "trace duration")
		seed     = flag.Int64("seed", 42, "generator seed")
		start    = flag.String("start", "2016-03-15T00:00:00Z", "trace start (RFC3339)")
	)
	flag.Parse()

	from, err := time.Parse(time.RFC3339, *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	to := from.Add(*duration)

	var specs []sensor.Spec
	if *all {
		for i, t := range sensor.AllTypes {
			specs = append(specs, sensor.Spec{
				ID: fmt.Sprintf("%s-1", t), Type: t,
				Location: geo.OsakaCenter, NodeID: "node-00",
				Seed: *seed + int64(i),
			})
		}
	} else {
		parsed, err := sensor.ParseType(*typ)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			specs = append(specs, sensor.Spec{
				ID: fmt.Sprintf("%s-%d", parsed, i+1), Type: parsed,
				Location:    geo.OsakaCenter,
				NodeID:      "node-00",
				Seed:        *seed + int64(i),
				UnitVariant: i,
			})
		}
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	total := 0
	for _, spec := range specs {
		s, err := sensor.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		s.Emit(from, to, func(t *stt.Tuple) bool {
			if err := enc.Encode(t.Map()); err != nil {
				log.Fatal(err)
			}
			total++
			return true
		})
	}
	log.Printf("wrote %d events from %d sensors (%s .. %s)", total, len(specs), from.Format(time.RFC3339), to.Format(time.RFC3339))
}
