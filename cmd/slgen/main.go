// Command slgen generates reproducible synthetic sensor traces as JSON
// Lines, for offline inspection, warehouse loading and external tooling:
//
//	slgen -type temperature -count 3 -duration 1h -seed 7 > trace.jsonl
//	slgen -all -duration 10m              # one sensor of every class
//
// Each line is one STT event with payload fields plus _time, _lat, _lon,
// _theme and _source metadata.
//
// With -data-dir the trace is loaded straight into a durable warehouse
// instead of printed: batches are appended through the write-ahead log
// (fsync per -fsync) and an "acked N" line follows every durable batch,
// looping the trace until killed. With -verify the directory is recovered
// and its event count checked against -min-events — together they form a
// crash-recovery smoke test:
//
//	slgen -data-dir /tmp/wh -fsync always &   # ingest; note the acked lines
//	kill -9 $!                                # crash it mid-ingest
//	slgen -data-dir /tmp/wh -verify -min-events N
//
// With -agg the directory is recovered and one aggregation is pushed down
// into the warehouse instead, printing NDJSON rows — the offline twin of
// GET /api/warehouse/aggregate:
//
//	slgen -data-dir /tmp/wh -agg count -agg-group source
//	slgen -data-dir /tmp/wh -agg avg -agg-field temperature_c -agg-bucket 1h
//
// With -view the ingester also maintains a standing view of the same
// aggregate vocabulary (spec from the -agg-* flags), checkpointing its
// state on every mutation; -verify -view re-registers it after the crash
// and checks the resumed rows against a fresh pushdown, and
// -require-view-resume additionally fails unless the registration resumed
// from the checkpoint instead of re-scanning history:
//
//	slgen -data-dir /tmp/wh -view count -agg-bucket 1m &
//	kill -9 $!
//	slgen -data-dir /tmp/wh -verify -view count -agg-bucket 1m -require-view-resume
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
	"streamloader/internal/persist"
	"streamloader/internal/sensor"
	"streamloader/internal/stt"
	"streamloader/internal/warehouse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slgen: ")
	var (
		typ       = flag.String("type", "temperature", "sensor type to generate")
		all       = flag.Bool("all", false, "generate one sensor of every type instead")
		count     = flag.Int("count", 1, "number of sensors of the type")
		duration  = flag.Duration("duration", time.Hour, "trace duration")
		seed      = flag.Int64("seed", 42, "generator seed")
		start     = flag.String("start", "2016-03-15T00:00:00Z", "trace start (RFC3339)")
		dataDir   = flag.String("data-dir", "", "load into a durable warehouse at this directory instead of printing")
		fsync     = flag.String("fsync", "always", "WAL fsync policy for -data-dir: never, always, interval, or a duration")
		hotSegs   = flag.Int("hot-segments", 2, "sealed in-memory segments per shard before spilling (-data-dir)")
		verify    = flag.Bool("verify", false, "recover the -data-dir warehouse and report instead of ingesting")
		minEvents = flag.Int("min-events", 0, "with -verify: fail unless at least this many events recovered")
		aggFunc   = flag.String("agg", "", "with -data-dir: run this aggregation (count, sum, avg, min, max) over the recovered warehouse instead of ingesting")
		aggField  = flag.String("agg-field", "", "payload field the aggregation reads (required for sum/avg/min/max)")
		aggGroup  = flag.String("agg-group", "", "comma-separated aggregation group-by dimensions: source, theme")
		aggBucket = flag.Duration("agg-bucket", 0, "fixed-width event-time bucketing for the aggregation (0: none)")
		viewFunc  = flag.String("view", "", "with -data-dir: maintain a standing view of this aggregation (count, sum, avg, min, max; spec from the -agg-* flags) while ingesting, checkpointing every mutation; with -verify: re-register it and check it against a fresh aggregation")
		viewMust  = flag.Bool("require-view-resume", false, "with -verify -view: fail unless the view resumed from its checkpoint instead of backfilling")
	)
	flag.Parse()

	from, err := time.Parse(time.RFC3339, *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	to := from.Add(*duration)

	var viewAq *warehouse.AggQuery
	if *viewFunc != "" {
		aq, err := parseAggFlags(*viewFunc, *aggField, *aggGroup, *aggBucket, time.Time{}, time.Time{})
		if err != nil {
			log.Fatalf("bad -view flags: %v", err)
		}
		viewAq = &aq
	}

	if *dataDir != "" && *verify {
		verifyWarehouse(*dataDir, *minEvents, viewAq, *viewMust)
		return
	}
	if *dataDir != "" && *aggFunc != "" {
		aggregateWarehouse(*dataDir, *aggFunc, *aggField, *aggGroup, *aggBucket, from, to)
		return
	}

	var specs []sensor.Spec
	if *all {
		for i, t := range sensor.AllTypes {
			specs = append(specs, sensor.Spec{
				ID: fmt.Sprintf("%s-1", t), Type: t,
				Location: geo.OsakaCenter, NodeID: "node-00",
				Seed: *seed + int64(i),
			})
		}
	} else {
		parsed, err := sensor.ParseType(*typ)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			specs = append(specs, sensor.Spec{
				ID: fmt.Sprintf("%s-%d", parsed, i+1), Type: parsed,
				Location:    geo.OsakaCenter,
				NodeID:      "node-00",
				Seed:        *seed + int64(i),
				UnitVariant: i,
			})
		}
	}

	if *dataDir != "" {
		ingestWarehouse(*dataDir, *fsync, *hotSegs, specs, from, *duration, viewAq)
		return
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	total := 0
	for _, spec := range specs {
		s, err := sensor.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		s.Emit(from, to, func(t *stt.Tuple) bool {
			if err := enc.Encode(t.Map()); err != nil {
				log.Fatal(err)
			}
			total++
			return true
		})
	}
	log.Printf("wrote %d events from %d sensors (%s .. %s)", total, len(specs), from.Format(time.RFC3339), to.Format(time.RFC3339))
}

// ingestWarehouse loads the generated trace into a durable warehouse,
// looping the trace (with an advancing clock) until the process is killed.
// Every "acked N" line is printed only after the batch behind it returned
// from AppendBatch, i.e. after it hit the WAL under the chosen policy — a
// SIGKILL immediately after a line must not lose the N events it reports.
func ingestWarehouse(dir, fsync string, hotSegs int, specs []sensor.Spec, from time.Time, duration time.Duration, viewAq *warehouse.AggQuery) {
	syncPolicy, syncEvery, err := persist.ParseSyncPolicy(fsync)
	if err != nil {
		log.Fatalf("bad -fsync: %v", err)
	}
	w, err := warehouse.Open(warehouse.Config{
		Shards:  4,
		DataDir: dir,
		Sync:    syncPolicy, SyncEvery: syncEvery,
		HotSegments:   hotSegs,
		SegmentEvents: 256, // small segments so spill exercises quickly
		// Checkpoint on every view mutation, so a SIGKILL at any point
		// leaves a recent checkpoint for -verify -view to resume from.
		ViewCheckpointEvery: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := w.Stats()
	log.Printf("opened %s: %d events recovered (%d cold segments)", dir, st.RecoveredEvents, st.SegmentsCold)
	if viewAq != nil {
		// The handle is deliberately never released: the smoke kills the
		// process mid-ingest, and the periodic checkpoints are the artifact
		// under test.
		if _, err := w.RegisterView(*viewAq, ops.UpdatePolicy{}); err != nil {
			log.Fatalf("register view: %v", err)
		}
		log.Printf("standing view registered: %s", viewAq.Func)
	}

	out := bufio.NewWriter(os.Stdout)
	acked := 0
	batch := make([]*stt.Tuple, 0, 64)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := w.AppendBatch(batch); err != nil {
			log.Fatalf("append: %v", err)
		}
		acked += len(batch)
		batch = batch[:0]
		fmt.Fprintf(out, "acked %d\n", acked)
		out.Flush()
	}
	for pass := 0; ; pass++ {
		passFrom := from.Add(time.Duration(pass) * duration)
		for _, spec := range specs {
			s, err := sensor.New(spec)
			if err != nil {
				log.Fatal(err)
			}
			s.Emit(passFrom, passFrom.Add(duration), func(t *stt.Tuple) bool {
				batch = append(batch, t)
				if len(batch) == cap(batch) {
					flush()
				}
				return true
			})
		}
		flush()
	}
}

// aggregateWarehouse recovers the warehouse at dir and pushes one
// aggregation down into it, printing the result rows as NDJSON — the
// offline twin of GET /api/warehouse/aggregate. The [from, to) window
// reuses -start/-duration; group by -agg-group, bucket by -agg-bucket.
func aggregateWarehouse(dir, fn, field, group string, bucket time.Duration, from, to time.Time) {
	w, err := warehouse.Open(warehouse.Config{Shards: 4, DataDir: dir})
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	defer w.Close()
	aq, err := parseAggFlags(fn, field, group, bucket, from, to)
	if err != nil {
		log.Fatalf("bad -agg flags: %v", err)
	}
	parsed := aq.Func
	rows, qs, err := w.Aggregate(aq)
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	for _, row := range rows {
		line := map[string]any{"count": row.Count, "value": row.Value}
		if bucket > 0 {
			line["bucket"] = row.Bucket.UTC().Format(time.RFC3339)
		}
		if row.Source != "" {
			line["source"] = row.Source
		}
		if row.Theme != "" {
			line["theme"] = row.Theme
		}
		if err := enc.Encode(line); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("%s(%s): %d rows over [%s, %s) — %d segments scanned, %d pruned, %d answered from cold headers",
		parsed, field, len(rows), from.Format(time.RFC3339), to.Format(time.RFC3339),
		qs.SegmentsScanned, qs.SegmentsPruned, qs.ColdHeaderOnly)
}

// verifyWarehouse recovers the warehouse and checks the event count. With
// a view spec it also re-registers the standing view — resuming from the
// checkpoint the crashed ingester left behind — and proves the resumed
// state equals a fresh pushdown aggregation of the recovered store.
func verifyWarehouse(dir string, minEvents int, viewAq *warehouse.AggQuery, requireResume bool) {
	w, err := warehouse.Open(warehouse.Config{Shards: 4, DataDir: dir, ViewCheckpointEvery: 1})
	if err != nil {
		log.Fatalf("recover: %v", err)
	}
	defer w.Close()
	st := w.Stats()
	log.Printf("recovered %d events (%d cold segments, %d segments, wal %d bytes, disk %d bytes)",
		st.Events, st.SegmentsCold, st.Segments, st.WALBytes, st.DiskBytes)
	if st.Events < minEvents {
		log.Fatalf("recovered %d events, want at least %d", st.Events, minEvents)
	}
	if viewAq == nil {
		return
	}
	v, err := w.RegisterView(*viewAq, ops.UpdatePolicy{})
	if err != nil {
		log.Fatalf("register view: %v", err)
	}
	defer v.Release()
	rows, err := v.Rows()
	if err != nil {
		log.Fatalf("view rows: %v", err)
	}
	want, _, err := w.Aggregate(*viewAq)
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	if len(rows) != len(want) {
		log.Fatalf("view has %d rows, aggregate %d", len(rows), len(want))
	}
	for i := range rows {
		g, w := rows[i], want[i]
		if !g.Bucket.Equal(w.Bucket) || g.Source != w.Source || g.Theme != w.Theme ||
			g.Count != w.Count || g.Value != w.Value {
			log.Fatalf("view row %d = %+v, aggregate says %+v", i, g, w)
		}
	}
	resumes := w.Stats().ViewResumes
	log.Printf("view %s: %d rows, matches aggregate exactly (checkpoint resumes: %d)",
		viewAq.Func, len(rows), resumes)
	if requireResume && resumes == 0 {
		log.Fatalf("view backfilled from history; want a checkpoint resume")
	}
}

// parseAggFlags builds an AggQuery from the -agg-*/-view flag vocabulary
// through the same wire parser the HTTP endpoints use, so the CLI and the
// server cannot drift.
func parseAggFlags(fn, field, group string, bucket time.Duration, from, to time.Time) (warehouse.AggQuery, error) {
	params := url.Values{"func": {fn}}
	if field != "" {
		params.Set("field", field)
	}
	if !from.IsZero() {
		params.Set("from", from.UTC().Format(time.RFC3339))
	}
	if !to.IsZero() {
		params.Set("to", to.UTC().Format(time.RFC3339))
	}
	if group != "" {
		params.Set("group", group)
	}
	if bucket > 0 {
		params.Set("bucket", bucket.String())
	}
	return warehouse.ParseAggQueryValues(params)
}
