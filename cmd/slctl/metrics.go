package main

// slctl metrics scrapes a running streamloader's GET /metrics endpoint and
// pretty-prints it: histogram families as count/mean/p50/p90/p99 (quantiles
// recomputed from the cumulative buckets with the same arithmetic the server
// uses), scalar families top-N by value. With -watch it re-scrapes on an
// interval; with -require it exits non-zero unless every named family is
// present, which is how the CI smoke guards against silently dropped
// instrumentation.

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"streamloader/internal/obs"
)

func runMetrics(argv []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: slctl metrics [flags]

scrape a running streamloader and pretty-print its /metrics families

flags:
`)
		fs.PrintDefaults()
	}
	var (
		url     = fs.String("url", "http://localhost:8080/metrics", "metrics endpoint to scrape")
		top     = fs.Int("top", 20, "show at most this many families per section (0: all)")
		watch   = fs.Duration("watch", 0, "re-scrape on this interval (0: scrape once)")
		require = fs.String("require", "", "comma-separated family names that must be present (exit 1 otherwise)")
	)
	_ = fs.Parse(argv)
	for {
		if err := scrapeOnce(*url, *top, *require); err != nil {
			log.Fatal(err)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

// histFamily is one reconstructed histogram series: a (name, label set)
// pair with its cumulative buckets and, when exposed, _sum and _count.
type histFamily struct {
	name   string
	labels string
	bounds []float64
	cum    []uint64
	sum    float64
	count  uint64
}

func scrapeOnce(url string, top int, require string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	series, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("malformed exposition from %s: %w", url, err)
	}

	hists := map[string]*histFamily{}
	histBase := map[string]bool{}
	for _, s := range series {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le, ok := s.Labels["le"]
		if !ok {
			continue
		}
		base := strings.TrimSuffix(s.Name, "_bucket")
		key := base + "{" + labelsSansLe(s.Labels) + "}"
		h := hists[key]
		if h == nil {
			h = &histFamily{name: base, labels: labelsSansLe(s.Labels)}
			hists[key] = h
		}
		bound, err := strconv.ParseFloat(strings.TrimPrefix(le, "+"), 64)
		if err != nil {
			bound = math.Inf(1)
		}
		h.bounds = append(h.bounds, bound)
		h.cum = append(h.cum, uint64(s.Value))
		histBase[base] = true
	}

	var scalars []obs.Series
	for _, s := range series {
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] != "" {
			continue
		}
		if base, isSum := strings.CutSuffix(s.Name, "_sum"); isSum && histBase[base] {
			if h := hists[base+"{"+labelsSansLe(s.Labels)+"}"]; h != nil {
				h.sum = s.Value
			}
			continue
		}
		if base, isCount := strings.CutSuffix(s.Name, "_count"); isCount && histBase[base] {
			if h := hists[base+"{"+labelsSansLe(s.Labels)+"}"]; h != nil {
				h.count = uint64(s.Value)
			}
			continue
		}
		scalars = append(scalars, s)
	}

	if err := checkRequired(require, histBase, scalars); err != nil {
		return err
	}

	printHistograms(hists, top)
	printScalars(scalars, top)
	return nil
}

// labelsSansLe renders a label set minus le, sorted, in exposition syntax —
// the grouping key that reunites one histogram's bucket/sum/count series.
func labelsSansLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}

func checkRequired(require string, histBase map[string]bool, scalars []obs.Series) error {
	if require == "" {
		return nil
	}
	present := map[string]bool{}
	for b := range histBase {
		present[b] = true
	}
	for _, s := range scalars {
		present[s.Name] = true
	}
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want != "" && !present[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required metric families missing: %s", strings.Join(missing, ", "))
	}
	return nil
}

func printHistograms(hists map[string]*histFamily, top int) {
	fams := make([]*histFamily, 0, len(hists))
	for _, h := range hists {
		fams = append(fams, h)
	}
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].count != fams[j].count {
			return fams[i].count > fams[j].count
		}
		return fams[i].name+fams[i].labels < fams[j].name+fams[j].labels
	})
	if top > 0 && len(fams) > top {
		fams = fams[:top]
	}
	fmt.Println("== latency histograms")
	for _, h := range fams {
		// Sort buckets by bound (+Inf last) and clamp the +Inf bound to the
		// last finite one, matching QuantileFromBuckets's overflow rule.
		sort.Sort(byBound{h})
		bounds := append([]float64(nil), h.bounds...)
		for i, b := range bounds {
			if math.IsInf(b, 1) {
				if i > 0 {
					bounds[i] = bounds[i-1]
				} else {
					bounds[i] = 0
				}
			}
		}
		mean := 0.0
		if h.count > 0 {
			mean = h.sum / float64(h.count)
		}
		name := h.name
		if h.labels != "" {
			name += "{" + h.labels + "}"
		}
		fmt.Printf("   %-58s n=%-9d mean=%-9s p50=%-9s p90=%-9s p99=%s\n",
			name, h.count, fmtSecs(mean),
			fmtSecs(obs.QuantileFromBuckets(bounds, h.cum, 0.50)),
			fmtSecs(obs.QuantileFromBuckets(bounds, h.cum, 0.90)),
			fmtSecs(obs.QuantileFromBuckets(bounds, h.cum, 0.99)))
	}
}

// byBound sorts one histogram's parallel bound/cumulative slices together.
type byBound struct{ h *histFamily }

func (b byBound) Len() int           { return len(b.h.bounds) }
func (b byBound) Less(i, j int) bool { return b.h.bounds[i] < b.h.bounds[j] }
func (b byBound) Swap(i, j int) {
	b.h.bounds[i], b.h.bounds[j] = b.h.bounds[j], b.h.bounds[i]
	b.h.cum[i], b.h.cum[j] = b.h.cum[j], b.h.cum[i]
}

func printScalars(scalars []obs.Series, top int) {
	sort.Slice(scalars, func(i, j int) bool {
		if scalars[i].Value != scalars[j].Value {
			return scalars[i].Value > scalars[j].Value
		}
		return scalars[i].Key() < scalars[j].Key()
	})
	if top > 0 && len(scalars) > top {
		fmt.Printf("== counters and gauges (top %d of %d)\n", top, len(scalars))
		scalars = scalars[:top]
	} else {
		fmt.Println("== counters and gauges")
	}
	for _, s := range scalars {
		fmt.Printf("   %-70s %s\n", s.Key(), strconv.FormatFloat(s.Value, 'g', -1, 64))
	}
}

// fmtSecs renders a duration in seconds with a human unit.
func fmtSecs(s float64) string {
	d := time.Duration(s * 1e9)
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}
