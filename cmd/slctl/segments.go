package main

// slctl segments inspects a durable warehouse data directory's cold segment
// files offline: format version, event count and time envelope, chunk count
// and per-chunk stats coverage, and the on-disk footprint against the
// row-format (v1-style) encoding of the same events — which is how much the
// columnar v3 layout actually saves. Reads are read-only; the directory may
// belong to a stopped server.

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"streamloader/internal/persist"
)

func runSegments(argv []string) {
	fs := flag.NewFlagSet("segments", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: slctl segments [flags] <data-dir>

dump the cold segment files under a warehouse data directory

flags:
`)
		fs.PrintDefaults()
	}
	var (
		chunks = fs.Bool("chunks", false, "also print one line per chunk")
		decode = fs.Bool("decode", true, "decode events to report row-equivalent bytes (false: header-only, faster)")
	)
	_ = fs.Parse(argv)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	dir := fs.Arg(0)

	files, _, err := persist.ListSegments(dir)
	if err != nil {
		log.Fatalf("segments: %v", err)
	}
	// Shards keep their segments in per-shard subdirectories; sweep one
	// level down too so pointing at the data dir root just works.
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatalf("segments: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, _, err := persist.ListSegments(filepath.Join(dir, e.Name()))
		if err != nil {
			log.Fatalf("segments: %v", err)
		}
		files = append(files, sub...)
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Println("no segment files found")
		return
	}

	var totDisk, totRow int64
	var totEvents int
	for _, path := range files {
		info, _, err := persist.OpenSegment(path)
		if err != nil {
			log.Fatalf("segments: %v", err)
		}
		withStats := 0
		for _, se := range info.Sparse {
			if se.Stats != nil {
				withStats++
			}
		}
		rel := path
		if r, err := filepath.Rel(dir, path); err == nil {
			rel = r
		}
		fmt.Printf("%s\n", rel)
		fmt.Printf("  format v%d  events %d  chunks %d (%d with stats)\n",
			info.Version, info.Count, len(info.Sparse), withStats)
		fmt.Printf("  span %s .. %s\n",
			info.Head.Time.UTC().Format(time.RFC3339Nano),
			info.Tail.Time.UTC().Format(time.RFC3339Nano))
		totDisk += info.Bytes
		totEvents += info.Count
		if *decode {
			evs, _, err := info.ReadRangeCached(nil, 0, info.Count)
			if err != nil {
				log.Fatalf("segments: %s: %v", rel, err)
			}
			row := persist.RowEncodedBytes(evs)
			totRow += row
			fmt.Printf("  disk %d B (%.1f B/event)  row-equivalent %d B  ratio %.2f\n",
				info.Bytes, float64(info.Bytes)/float64(info.Count), row,
				float64(info.Bytes)/float64(row))
		} else {
			fmt.Printf("  disk %d B (%.1f B/event)\n",
				info.Bytes, float64(info.Bytes)/float64(info.Count))
		}
		if *chunks {
			for i, se := range info.Sparse {
				stats := "-"
				if se.Stats != nil {
					stats = "stats"
				}
				fmt.Printf("  chunk %3d  pos %6d  %s  off %8d  crc %08x  %s\n",
					i, se.Pos, se.Time.UTC().Format(time.RFC3339), se.Off, se.CRC, stats)
			}
		}
	}
	if len(files) > 1 {
		fmt.Printf("total: %d files  %d events  disk %d B", len(files), totEvents, totDisk)
		if *decode && totRow > 0 {
			fmt.Printf("  row-equivalent %d B  ratio %.2f", totRow, float64(totDisk)/float64(totRow))
		}
		fmt.Println()
	}
}
