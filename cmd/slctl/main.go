// Command slctl operates on StreamLoader dataflow specs from the command
// line, against an in-process simulated deployment (network + sensor fleet):
//
//	slctl validate  flow.json        check the dataflow's consistency
//	slctl sample    flow.json -n 10  run sample tuples through every node
//	slctl translate flow.json        print the DSN document
//	slctl run       flow.json -duration 1h   replay and print statistics
//	slctl metrics   -url http://localhost:8080/metrics   scrape and pretty-print
//	slctl segments  /var/lib/streamloader   dump cold segment files
//
// Common flags configure the simulated substrate: -nodes, -topology, -seed.
// The metrics command talks to a running server instead, and segments to an
// on-disk data directory; each takes its own flags (see slctl <cmd> -h).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/dsn"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
	"streamloader/internal/viz"
	"streamloader/internal/warehouse"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: slctl <command> <flow.json> [flags]

commands:
  validate    check dataflow consistency against the simulated sensor fleet
  sample      run sample tuples through every node (design-time debugging)
  translate   print the dataflow's DSN document
  run         deploy and replay the dataflow, printing statistics
  metrics     scrape a running server's /metrics and pretty-print it
  segments    dump a warehouse data directory's cold segment files

flags (metrics and segments have their own; see slctl <cmd> -h):
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("slctl: ")
	var (
		nodes    = flag.Int("nodes", 4, "number of network nodes")
		topology = flag.String("topology", "star", "network topology")
		seed     = flag.Int64("seed", 42, "fleet seed")
		n        = flag.Int("n", 10, "sample tuples per source (sample)")
		duration = flag.Duration("duration", time.Hour, "replay duration (run)")
		start    = flag.String("start", "2016-03-15T09:00:00Z", "replay start (run, RFC3339)")
	)
	if len(os.Args) >= 2 && os.Args[1] == "metrics" {
		runMetrics(os.Args[2:])
		return
	}
	if len(os.Args) >= 2 && os.Args[1] == "segments" {
		runSegments(os.Args[2:])
		return
	}
	if len(os.Args) < 3 {
		usage()
	}
	cmd, specPath := os.Args[1], os.Args[2]
	_ = flag.CommandLine.Parse(os.Args[3:])

	data, err := os.ReadFile(specPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := dataflow.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}

	rig, err := buildRig(*topology, *nodes, *seed)
	if err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "validate":
		diags := dataflow.Validate(spec, rig.resolver())
		for _, d := range diags {
			fmt.Println(d)
		}
		if diags.HasErrors() {
			os.Exit(1)
		}
		fmt.Println("dataflow is consistent: it can be soundly translated")

	case "sample":
		runSample(rig, spec, *n)

	case "translate":
		plan, diags := dataflow.Compile(spec, rig.resolver(), rig.broker, nil)
		if diags.HasErrors() {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			os.Exit(1)
		}
		doc, err := dsn.Translate(spec, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(doc.String())

	case "run":
		from, err := time.Parse(time.RFC3339, *start)
		if err != nil {
			log.Fatalf("bad -start: %v", err)
		}
		runReplay(rig, spec, from, from.Add(*duration))

	default:
		usage()
	}
}

// rig bundles the simulated substrate slctl operates against.
type rig struct {
	net     *network.Network
	broker  *pubsub.Broker
	sensors map[string]*sensor.Sensor
	mon     *monitor.Monitor
	wh      *warehouse.Warehouse
	board   *viz.Board
	exec    *executor.Executor
	clock   *stream.VirtualClock
}

func buildRig(topology string, nodes int, seed int64) (*rig, error) {
	net, err := network.Build(topology, network.TopologyConfig{
		Nodes: nodes, Area: geo.Osaka, Capacity: 100, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	broker := pubsub.NewBroker("slctl")
	fleet, err := sensor.BuildFleet(sensor.FleetConfig{
		Region: geo.Osaka, Counts: sensor.DefaultCounts(), Nodes: net.Nodes(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	if err := sensor.PublishFleet(broker, fleet); err != nil {
		return nil, err
	}
	sensors := map[string]*sensor.Sensor{}
	for _, s := range fleet {
		sensors[s.ID()] = s
	}
	mon := monitor.New()
	wh := warehouse.New()
	board, err := viz.NewBoard(geo.Osaka, 40, 20, "")
	if err != nil {
		return nil, err
	}
	clock := stream.NewVirtualClock(time.Unix(0, 0))
	exec, err := executor.New(executor.Config{
		Network: net, Broker: broker, Strategy: network.Locality{},
		Monitor: mon, Clock: clock,
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
		Sinks: func(kind, nodeID string, schema *stt.Schema) (executor.Sink, error) {
			switch kind {
			case "warehouse":
				return warehouse.Sink{W: wh}, nil
			case "viz":
				return board, nil
			default:
				return nil, fmt.Errorf("unknown sink %q", kind)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	return &rig{
		net: net, broker: broker, sensors: sensors,
		mon: mon, wh: wh, board: board, exec: exec, clock: clock,
	}, nil
}

func (r *rig) resolver() dataflow.SensorResolver {
	return dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		if meta, ok := r.broker.Get(id); ok {
			return meta.Schema, true
		}
		return nil, false
	})
}

func runSample(r *rig, spec *dataflow.Spec, n int) {
	plan, diags := dataflow.Compile(spec, r.resolver(), r.broker, nil)
	if diags.HasErrors() {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	samples := map[string][]*stt.Tuple{}
	start := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	for _, pn := range plan.Nodes {
		if pn.SensorID == "" {
			continue
		}
		gen, ok := r.sensors[pn.SensorID]
		if !ok {
			continue
		}
		var tuples []*stt.Tuple
		gen.Emit(start, start.Add(time.Duration(n)*gen.Period()), func(t *stt.Tuple) bool {
			tuples = append(tuples, t)
			return len(tuples) < n
		})
		samples[pn.ID] = tuples
	}
	res, err := dataflow.Debug(plan, samples)
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]string, 0, len(res.Outputs))
	for id := range res.Outputs {
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	for _, id := range nodes {
		fmt.Printf("== %s (%d tuples)\n", id, len(res.Outputs[id]))
		for i, tup := range res.Outputs[id] {
			if i >= 5 {
				fmt.Printf("   ... %d more\n", len(res.Outputs[id])-5)
				break
			}
			fmt.Printf("   %s\n", tup)
		}
	}
}

func runReplay(r *rig, spec *dataflow.Spec, from, to time.Time) {
	d, err := r.exec.Deploy(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Undeploy()
	fmt.Println("== DSN")
	fmt.Print(d.DSNText())
	fmt.Println("== SCN")
	fmt.Print(d.SCNScript())
	started := time.Now()
	if err := d.Run(from, to); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== replayed %s of event time in %v\n", to.Sub(from), time.Since(started).Round(time.Millisecond))
	rep := r.mon.Snapshot(r.clock.Now(), false)
	fmt.Println("== operations")
	for _, op := range rep.Ops {
		fmt.Printf("   %-16s node=%-8s in=%-8d out=%-8d dropped=%d\n",
			op.Name, op.Node, op.In, op.Out, op.Dropped)
	}
	if r.wh.Len() > 0 {
		fmt.Printf("== warehouse: %d events\n", r.wh.Len())
	}
	if r.board.Snapshot().Total > 0 {
		fmt.Println("== viz")
		fmt.Print(r.board.RenderASCII())
	}
	for _, ev := range r.mon.Events() {
		fmt.Printf("   event: %s\n", ev)
	}
}
