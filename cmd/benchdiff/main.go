// Command benchdiff compares the two newest runs in a BENCH_*.json perf
// trajectory file and fails (exit 1) when a shared benchmark metric
// regressed by more than the threshold. It is the CI teeth behind the
// hand-appended bench entries: a PR that records a new run cannot silently
// regress the previous one.
//
// Usage:
//
//	benchdiff [-file BENCH_warehouse.json] [-threshold 0.25]
//	benchdiff -file BENCH_warehouse.json \
//	          -within "Candidate/a=Baseline/a,Candidate/b=Baseline/b" \
//	          [-within-threshold 0.05]
//
// With -within, instead of diffing the two newest runs, benchdiff compares
// benchmark pairs INSIDE the newest run: every machine-dependent metric of
// the candidate must stay within -within-threshold of the baseline's. Both
// sides come from the same run on the same machine, so latency metrics
// compare directly; the observability CI gate uses this to bound
// instrumented-vs-noop append overhead.
//
// Only metrics present in both runs are compared. Machine-dependent
// metrics — ns_per_op, anything ending in _ns or _per_sec — are compared
// only when the two runs report the same cpu string; counts and
// percentages (allocs_per_op, chunk_decodes_per_op, *_pct, ...) are
// compared unconditionally. Direction is metric-aware: *_per_sec and *_pct
// regress downward, everything else regresses upward. Fewer than two runs,
// or no shared benchmark names (the usual case when consecutive PRs
// benchmark different subsystems), compares nothing and passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type benchFile struct {
	Description string `json:"description"`
	Runs        []run  `json:"runs"`
}

type run struct {
	PR         int                           `json:"pr"`
	Date       string                        `json:"date"`
	Change     string                        `json:"change"`
	CPU        string                        `json:"cpu"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// machineDependent reports whether a metric's absolute value is tied to
// the machine that produced it (latency, throughput) rather than being a
// count the workload fully determines.
func machineDependent(metric string) bool {
	return metric == "ns_per_op" ||
		strings.HasSuffix(metric, "_ns") ||
		strings.HasSuffix(metric, "_per_sec")
}

// higherIsBetter reports the improvement direction for a metric.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "_per_sec") || strings.HasSuffix(metric, "_pct")
}

func main() {
	file := flag.String("file", "BENCH_warehouse.json", "perf trajectory file")
	threshold := flag.Float64("threshold", 0.25, "relative regression that fails the diff")
	within := flag.String("within", "", `compare "candidate=baseline" benchmark pairs inside the newest run instead of diffing runs`)
	withinThreshold := flag.Float64("within-threshold", 0.05, "relative overhead that fails a -within pair")
	flag.Parse()

	raw, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var bf benchFile
	// Benchmarks values mix numbers with the "benchtime" string; decode
	// leniently by round-tripping each metric map through interface{}.
	var loose struct {
		Runs []struct {
			PR         int                               `json:"pr"`
			Date       string                            `json:"date"`
			Change     string                            `json:"change"`
			CPU        string                            `json:"cpu"`
			Benchmarks map[string]map[string]interface{} `json:"benchmarks"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &loose); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *file, err)
		os.Exit(2)
	}
	for _, lr := range loose.Runs {
		r := run{PR: lr.PR, Date: lr.Date, Change: lr.Change, CPU: lr.CPU,
			Benchmarks: map[string]map[string]float64{}}
		for name, metrics := range lr.Benchmarks {
			r.Benchmarks[name] = map[string]float64{}
			for k, v := range metrics {
				if f, ok := v.(float64); ok {
					r.Benchmarks[name][k] = f
				}
			}
		}
		bf.Runs = append(bf.Runs, r)
	}

	if *within != "" {
		os.Exit(compareWithin(bf, *within, *withinThreshold))
	}

	if len(bf.Runs) < 2 {
		fmt.Printf("benchdiff: %d run(s) in %s, nothing to compare\n", len(bf.Runs), *file)
		return
	}
	old, cur := bf.Runs[len(bf.Runs)-2], bf.Runs[len(bf.Runs)-1]
	sameCPU := old.CPU == cur.CPU
	fmt.Printf("benchdiff: PR %d (%s) vs PR %d (%s), threshold %.0f%%, cpu match: %v\n",
		old.PR, old.Date, cur.PR, cur.Date, *threshold*100, sameCPU)

	var names []string
	for name := range cur.Benchmarks {
		if _, ok := old.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("benchdiff: no shared benchmarks between the two newest runs, nothing to compare")
		return
	}

	regressions := 0
	for _, name := range names {
		om, nm := old.Benchmarks[name], cur.Benchmarks[name]
		var metrics []string
		for k := range nm {
			if _, ok := om[k]; ok {
				metrics = append(metrics, k)
			}
		}
		sort.Strings(metrics)
		for _, k := range metrics {
			if machineDependent(k) && !sameCPU {
				continue
			}
			ov, nv := om[k], nm[k]
			var rel float64
			switch {
			case ov == nv:
				rel = 0
			case ov == 0:
				if higherIsBetter(k) {
					continue // no baseline to regress from
				}
				rel = 1 // was zero, now nonzero: unbounded regression
			case higherIsBetter(k):
				rel = (ov - nv) / ov
			default:
				rel = (nv - ov) / ov
			}
			status := "ok"
			if rel > *threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-50s %-24s %14g -> %-14g %+6.1f%% %s\n",
				name, k, ov, nv, rel*100, status)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// compareWithin checks candidate=baseline benchmark pairs inside the newest
// run. Both sides of a pair are from the same run — same machine, same
// load — so every shared machine-dependent metric is compared. A missing
// benchmark or a pair with nothing to compare is a configuration error
// (exit 2), not a pass: the overhead gate must never succeed vacuously.
func compareWithin(bf benchFile, pairs string, threshold float64) int {
	if len(bf.Runs) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no runs to check -within against")
		return 2
	}
	cur := bf.Runs[len(bf.Runs)-1]
	fmt.Printf("benchdiff: within-run check on PR %d (%s), threshold %.0f%%\n",
		cur.PR, cur.Date, threshold*100)
	over := 0
	for _, p := range strings.Split(pairs, ",") {
		cand, base, ok := strings.Cut(strings.TrimSpace(p), "=")
		if !ok || cand == "" || base == "" {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -within pair %q (want candidate=baseline)\n", p)
			return 2
		}
		cm, bm := cur.Benchmarks[cand], cur.Benchmarks[base]
		if cm == nil || bm == nil {
			fmt.Fprintf(os.Stderr, "benchdiff: newest run is missing benchmark %q or %q\n", cand, base)
			return 2
		}
		var metrics []string
		for k := range cm {
			if _, shared := bm[k]; shared && machineDependent(k) {
				metrics = append(metrics, k)
			}
		}
		sort.Strings(metrics)
		compared := 0
		for _, k := range metrics {
			bv, cv := bm[k], cm[k]
			if bv == 0 {
				continue
			}
			var rel float64
			if higherIsBetter(k) {
				rel = (bv - cv) / bv
			} else {
				rel = (cv - bv) / bv
			}
			status := "ok"
			if rel > threshold {
				status = "OVER"
				over++
			}
			fmt.Printf("  %-40s vs %-40s %-16s %14g -> %-14g %+6.1f%% %s\n",
				cand, base, k, bv, cv, rel*100, status)
			compared++
		}
		if compared == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %q and %q share no machine-dependent metrics\n", cand, base)
			return 2
		}
	}
	if over > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) over the %.0f%% within-run threshold\n", over, threshold*100)
		return 1
	}
	fmt.Println("benchdiff: within-run overheads inside threshold")
	return 0
}
