// Command streamloader runs the StreamLoader Web application: it builds a
// simulated programmable network over the Osaka area, plugs in a mixed
// sensor fleet through the publish/subscribe layer, and serves the dataflow
// design/validation/translation/deployment/monitoring API plus the embedded
// dashboard on the configured address.
//
// Usage:
//
//	streamloader [-addr :8080] [-topology star] [-nodes 8] [-capacity 100]
//	             [-seed 42] [-live=true] [-shards 16] [-sink-batch 0]
//	             [-retain 0] [-segment-events 4096] [-segment-span 1h]
//	             [-data-dir ""] [-fsync interval] [-hot-segments 16]
//	             [-cold-cache-bytes 67108864] [-compact-below 0]
//	             [-segment-format 0] [-view-checkpoint-every 0]
//	             [-agg-max-groups 100000] [-max-subscribers 10000]
//	             [-slow-query 0] [-pprof-addr ""]
//
// With -live (default) sources pace in real time; with -live=false the
// server replays event-time ranges at full speed, which is what the
// benchmarks and demos use.
//
// With -data-dir the warehouse is durable: appends go through a per-shard
// write-ahead log (fsync per -fsync: never, always, interval, or a
// duration like 250ms), cold segments beyond -hot-segments per shard are
// flushed to disk by a background spiller (so ingest never stalls on a
// segment write), and a restart recovers everything that was acked.
// Queries over spilled history go through an LRU of decoded chunks sized
// by -cold-cache-bytes, so repeated window queries over the same history
// hit RAM instead of disk. A background compactor merges cold files
// smaller than -compact-below events (or left overlapping by out-of-order
// spills) into their time-adjacent neighbors; -segment-format pins the
// cold file format version for downgrade scenarios. Standing views
// checkpoint their state every -view-checkpoint-every mutations (and on
// clean shutdown), so a restart or a reconnecting subscriber resumes from
// the checkpoint plus a WAL-tail fold instead of re-scanning history.
//
// Observability: every stage reports latency histograms and counters to
// GET /metrics (Prometheus text format); ?trace=1 on the query/aggregate
// endpoints returns a per-shard span breakdown; -slow-query logs any query
// over the threshold with its spans; -pprof-addr serves net/http/pprof on
// a separate listener (keep it private — it exposes heap and goroutine
// internals).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers its handlers on DefaultServeMux, served only via -pprof-addr
	"time"

	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/obs"
	"streamloader/internal/persist"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/server"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
	"streamloader/internal/viz"
	"streamloader/internal/warehouse"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		topology  = flag.String("topology", "star", "network topology: star, line, tree, random")
		nodes     = flag.Int("nodes", 8, "number of network nodes")
		capacity  = flag.Float64("capacity", 100, "per-node processing capacity")
		seed      = flag.Int64("seed", 42, "random seed for the sensor fleet")
		live      = flag.Bool("live", true, "pace sources in real time (false: replay at full speed)")
		strategy  = flag.String("placement", "locality", "placement strategy: round-robin, random, least-loaded, locality")
		shards    = flag.Int("shards", warehouse.DefaultShards, "warehouse shard count (rounded up to a power of two)")
		sinkBuf   = flag.Int("sink-batch", 0, "warehouse sink batch size (0: adaptive from arrival rate; negative: per-tuple appends)")
		retain    = flag.Int("retain", 0, "warehouse retention bound in events (0: unlimited)")
		segEvents = flag.Int("segment-events", warehouse.DefaultSegmentEvents, "events per warehouse segment before rotation")
		segSpan   = flag.Duration("segment-span", warehouse.DefaultSegmentSpan, "event-time span one warehouse segment covers before rotation")
		dataDir   = flag.String("data-dir", "", "warehouse data directory (empty: in-memory only)")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy: never, always, interval, or a duration")
		hotSegs   = flag.Int("hot-segments", warehouse.DefaultHotSegments, "sealed in-memory segments per shard before spilling to disk (negative: never spill)")
		coldCache = flag.Int64("cold-cache-bytes", warehouse.DefaultColdCacheBytes, "budget for the LRU of decoded cold-segment chunks (negative: disable)")
		compBelow = flag.Int("compact-below", 0, "merge cold segment files smaller than this many events into neighbors (0: half of -segment-events; negative: disable compaction)")
		segFormat = flag.Int("segment-format", 0, "cold segment file format version to write (0: latest; supported: "+persist.SupportedSegmentFormats()+")")
		viewCkpt  = flag.Int("view-checkpoint-every", 0, "view mutations between standing-view checkpoints on a durable store (0: default; negative: disable)")
		aggGroups = flag.Int("agg-max-groups", warehouse.DefaultAggMaxGroups, "group cardinality bound for /api/warehouse/aggregate")
		maxSubs   = flag.Int("max-subscribers", server.DefaultMaxSubscribers, "live /api/warehouse/subscribe client cap across all views")
		slowQuery = flag.Duration("slow-query", 0, "log warehouse queries slower than this, with their span breakdown (0: off)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: off)")
	)
	flag.Parse()

	if err := persist.ValidateSegmentFormat(*segFormat); err != nil {
		log.Fatalf("bad -segment-format: %v", err)
	}
	net, err := network.Build(*topology, network.TopologyConfig{
		Nodes: *nodes, Area: geo.Osaka, Capacity: *capacity, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	broker := pubsub.NewBroker("main")
	fleet, err := sensor.BuildFleet(sensor.FleetConfig{
		Region: geo.Osaka,
		Counts: sensor.DefaultCounts(),
		Nodes:  net.Nodes(),
		Seed:   *seed,
	})
	if err != nil {
		log.Fatalf("building fleet: %v", err)
	}
	if err := sensor.PublishFleet(broker, fleet); err != nil {
		log.Fatalf("publishing fleet: %v", err)
	}
	sensors := map[string]*sensor.Sensor{}
	for _, s := range fleet {
		sensors[s.ID()] = s
	}

	mon := monitor.New()
	syncPolicy, syncEvery, err := persist.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatalf("bad -fsync: %v", err)
	}
	reg := obs.NewRegistry()
	wh, err := warehouse.Open(warehouse.Config{
		Shards:         *shards,
		SegmentEvents:  *segEvents,
		SegmentSpan:    *segSpan,
		DataDir:        *dataDir,
		Sync:           syncPolicy,
		SyncEvery:      syncEvery,
		HotSegments:    *hotSegs,
		ColdCacheBytes: *coldCache,
		CompactBelow:   *compBelow,
		SegmentFormat:  *segFormat,

		ViewCheckpointEvery: *viewCkpt,

		Obs: reg,
	})
	if err != nil {
		log.Fatalf("opening warehouse: %v", err)
	}
	if *dataDir != "" {
		st := wh.Stats()
		log.Printf("warehouse: %d events recovered from %s (%d cold segments, %d WAL bytes)",
			st.RecoveredEvents, *dataDir, st.SegmentsCold, st.WALBytes)
	}
	if *retain > 0 {
		wh.SetRetention(*retain)
	}
	board, err := viz.NewBoard(geo.Osaka, 40, 20, "")
	if err != nil {
		log.Fatalf("building viz board: %v", err)
	}

	var clock stream.Clock = stream.WallClock{}
	if !*live {
		clock = stream.NewVirtualClock(time.Now().UTC())
	}
	strat, err := network.NewStrategy(*strategy, *seed)
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	exec, err := executor.New(executor.Config{
		Network:   net,
		Broker:    broker,
		Strategy:  strat,
		Monitor:   mon,
		Clock:     clock,
		SinkBatch: *sinkBuf,
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
		Sinks: func(kind, nodeID string, schema *stt.Schema) (executor.Sink, error) {
			switch kind {
			case "warehouse":
				return warehouse.Sink{W: wh}, nil
			case "viz":
				return board, nil
			default:
				return nil, fmt.Errorf("unknown sink %q", kind)
			}
		},
	})
	if err != nil {
		log.Fatalf("executor: %v", err)
	}

	srv := server.New(net, broker, exec, mon, wh, board, sensors)
	srv.AggMaxGroups = *aggGroups
	srv.MaxSubscribers = *maxSubs
	srv.SlowQuery = *slowQuery
	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registered on DefaultServeMux; nothing else does.
			log.Printf("pprof: listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	log.Printf("streamloader: %d sensors on %d %s nodes, dashboard at http://localhost%s/",
		len(fleet), *nodes, *topology, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
