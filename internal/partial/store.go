package partial

import (
	"time"
)

// Store groups partial aggregate state into per-time-bucket frames keyed
// by the aligned bucket start. The frame index is what makes removal
// cheap: a retention cut or a window expiry deletes whole frames in O(1)
// each instead of rescanning history, and only the single frame straddling
// a retention boundary ever needs patching (an exact subtraction for
// COUNT/SUM/AVG, a one-bucket rescan for MIN/MAX).
//
// A Store with Width == 0 is the unbucketed degenerate case: one frame
// holds every group and frame-granular removal never applies.
type Store struct {
	// Width is the frame width; for a bucketed aggregation it equals the
	// query's bucket, so frames and output buckets are one-to-one.
	Width time.Duration

	frames map[int64]*Frame
	groups int
}

// Frame is the group state of one time bucket.
type Frame struct {
	// Start is the aligned frame start (the zero time in a Width-0 store).
	Start  time.Time
	Groups map[Key]*State
}

// NewStore returns an empty store with the given frame width.
func NewStore(width time.Duration) *Store {
	return &Store{Width: width, frames: map[int64]*Frame{}}
}

func frameKey(start time.Time) int64 {
	if start.IsZero() {
		return 0
	}
	return start.UnixNano()
}

// Len is the total group count across frames.
func (st *Store) Len() int { return st.groups }

// FrameCount is the number of live frames.
func (st *Store) FrameCount() int { return len(st.frames) }

// Group returns the state for k in the frame starting at start, creating
// both on demand. It returns nil when creating the group would exceed
// maxGroups.
func (st *Store) Group(k Key, start time.Time, maxGroups int) *State {
	fk := frameKey(start)
	f := st.frames[fk]
	if f == nil {
		f = &Frame{Start: start, Groups: map[Key]*State{}}
		st.frames[fk] = f
	}
	s := f.Groups[k]
	if s == nil {
		if st.groups >= maxGroups {
			return nil
		}
		s = New(start)
		f.Groups[k] = s
		st.groups++
	}
	return s
}

// Put installs a state, replacing any previous state of the same group —
// the checkpoint-restore path.
func (st *Store) Put(k Key, start time.Time, s *State) {
	fk := frameKey(start)
	f := st.frames[fk]
	if f == nil {
		f = &Frame{Start: start, Groups: map[Key]*State{}}
		st.frames[fk] = f
	}
	if _, ok := f.Groups[k]; !ok {
		st.groups++
	}
	f.Groups[k] = s
}

// ForEach visits every group.
func (st *Store) ForEach(fn func(frameStart time.Time, k Key, s *State)) {
	for _, f := range st.frames {
		for k, s := range f.Groups {
			fn(f.Start, k, s)
		}
	}
}

// MergeInto folds every frame whose start satisfies keep (nil keeps all)
// into dst, cloning states when clone is set. It reports false on group
// overflow, mirroring Merge.
func (st *Store) MergeInto(dst map[Key]*State, maxGroups int, clone bool, keep func(start time.Time) bool) bool {
	for _, f := range st.frames {
		if keep != nil && !keep(f.Start) {
			continue
		}
		if !Merge(dst, f.Groups, maxGroups, clone) {
			return false
		}
	}
	return true
}

// DropFrames deletes every frame whose start fails keep and returns how
// many frames went. Whole-frame deletion is the subtraction-free removal
// path: no group is patched, no event is rescanned.
func (st *Store) DropFrames(keep func(start time.Time) bool) int {
	dropped := 0
	for fk, f := range st.frames {
		if keep(f.Start) {
			continue
		}
		st.groups -= len(f.Groups)
		delete(st.frames, fk)
		dropped++
	}
	return dropped
}

// ReplaceFrame installs a freshly scanned group set for one frame (the
// MIN/MAX boundary-rescan path), dropping the frame entirely when the scan
// came back empty.
func (st *Store) ReplaceFrame(start time.Time, groups map[Key]*State) {
	fk := frameKey(start)
	if old := st.frames[fk]; old != nil {
		st.groups -= len(old.Groups)
		delete(st.frames, fk)
	}
	if len(groups) == 0 {
		return
	}
	st.frames[fk] = &Frame{Start: start, Groups: groups}
	st.groups += len(groups)
}

// Sub subtracts exact deltas — count and sum only, the subtractable
// aggregates — group by group, deleting any group whose count reaches
// zero. Min/Max are deliberately untouched: a caller whose aggregate
// reads them must use ReplaceFrame instead. Deltas for groups the store
// does not hold are ignored (the group was already dropped whole).
func (st *Store) Sub(deltas map[Key]*State) {
	for k, d := range deltas {
		var start time.Time
		if d.Bucket.IsZero() && st.Width == 0 {
			// unbucketed: single frame 0
		} else {
			start = d.Bucket
		}
		f := st.frames[frameKey(start)]
		if f == nil {
			continue
		}
		s := f.Groups[k]
		if s == nil {
			continue
		}
		s.Count -= d.Count
		s.Sum -= d.Sum
		if s.Count <= 0 {
			delete(f.Groups, k)
			st.groups--
			if len(f.Groups) == 0 {
				delete(st.frames, frameKey(start))
			}
		}
	}
}

// Clone returns a deep copy (independent frames and states).
func (st *Store) Clone() *Store {
	c := &Store{Width: st.Width, frames: make(map[int64]*Frame, len(st.frames)), groups: st.groups}
	for fk, f := range st.frames {
		nf := &Frame{Start: f.Start, Groups: make(map[Key]*State, len(f.Groups))}
		for k, s := range f.Groups {
			nf.Groups[k] = s.Clone()
		}
		c.frames[fk] = nf
	}
	return c
}

// FromFlat wraps a flat scan result into a store: with a positive width
// every state files under its own bucket (scan buckets and frames are
// one-to-one for a bucketed aggregation), otherwise everything lands in
// the single zero frame.
func FromFlat(width time.Duration, flat map[Key]*State) *Store {
	st := NewStore(width)
	for k, s := range flat {
		var start time.Time
		if width > 0 {
			start = s.Bucket
		}
		st.Put(k, start, s)
	}
	return st
}
