// Package partial implements mergeable partial aggregates: the commutative,
// associative per-group states that let an aggregation be evaluated as
// independent partials merged in any grouping — per segment, per shard, or
// incrementally one event at a time — without ever materializing the input.
//
// Count, sum, min and max are carried separately, never a derived value, so
// AVG merges exactly across partials (sum/count of the merged state equals
// the average over the union) and a partial built by a full scan is
// indistinguishable from one built by folding the same events one by one.
// That property is what lets the warehouse share a single aggregate core
// between pushdown queries (scan-then-merge), materialized-view backfill
// (scan at registration) and view delta-maintenance (fold at ingest).
package partial

import (
	"math"
	"time"

	"streamloader/internal/ops"
)

// Key identifies one aggregation group. The time bucket rides as
// (unix seconds, nanoseconds) rather than a time.Time so the key is
// comparable without the Location pointer; Source and Theme are the group
// values of the dimensions grouped on, empty otherwise.
type Key struct {
	Sec    int64
	NS     int
	Source string
	Theme  string
}

// BucketKey builds the key coordinates for a bucket start plus group values.
// A zero bucket time leaves the time coordinates zero (the unbucketed case).
func BucketKey(bucket time.Time, source, theme string) Key {
	k := Key{Source: source, Theme: theme}
	if !bucket.IsZero() {
		k.Sec, k.NS = bucket.Unix(), bucket.Nanosecond()
	}
	return k
}

// State is the mergeable aggregate state of one group.
type State struct {
	// Bucket is the window start carried for row building; the zero time
	// when the aggregation had no bucketing.
	Bucket time.Time
	// Count is how many events contributed.
	Count int64
	// Sum accumulates the contributing values (numeric aggregates only).
	Sum float64
	// Min/Max are the contributing extrema, initialized to ±Inf so an
	// observation-free numeric state merges as the identity.
	Min, Max float64
}

// New returns an empty state for a group whose bucket starts at bucket.
func New(bucket time.Time) *State {
	return &State{Bucket: bucket, Min: math.Inf(1), Max: math.Inf(-1)}
}

// Observe folds one numeric contribution.
func (st *State) Observe(v float64) {
	st.Count++
	st.Sum += v
	st.Min = math.Min(st.Min, v)
	st.Max = math.Max(st.Max, v)
}

// ObserveCount folds n value-less contributions (COUNT aggregates, and the
// cold-header fast path that adds a whole segment's count at once).
func (st *State) ObserveCount(n int64) {
	st.Count += n
}

// ObserveStats folds a pre-aggregated batch of n numeric contributions
// whose sum and extrema are already known — the cold chunk-stats fast path,
// which absorbs a whole on-disk chunk's field summary without decoding the
// chunk. A non-positive n is a no-op, so callers can pass an empty summary
// unconditionally.
func (st *State) ObserveStats(n int64, sum, min, max float64) {
	if n <= 0 {
		return
	}
	st.Count += n
	st.Sum += sum
	st.Min = math.Min(st.Min, min)
	st.Max = math.Max(st.Max, max)
}

// Merge folds another state of the same group into this one. Merging is
// commutative up to float addition order and associative the same way;
// integral sums merge bit-exactly in any order.
func (st *State) Merge(o *State) {
	st.Count += o.Count
	st.Sum += o.Sum
	st.Min = math.Min(st.Min, o.Min)
	st.Max = math.Max(st.Max, o.Max)
}

// Clone returns an independent copy, so a long-lived partial (a view's
// incremental state) can be merged into a result without aliasing it.
func (st *State) Clone() *State {
	c := *st
	return &c
}

// Value resolves the final aggregate result this state carries under fn.
func (st *State) Value(fn ops.AggFunc) float64 {
	switch fn {
	case ops.AggCount:
		return float64(st.Count)
	case ops.AggSum:
		return st.Sum
	case ops.AggAvg:
		return st.Sum / float64(st.Count)
	case ops.AggMin:
		return st.Min
	default: // ops.AggMax
		return st.Max
	}
}

// Merge folds src into dst group by group, cloning states on first insertion
// when clone is set (so dst never aliases src's states). It reports false
// when inserting a new group would exceed maxGroups; dst may then hold a
// partial merge and should be discarded.
func Merge(dst, src map[Key]*State, maxGroups int, clone bool) bool {
	for k, st := range src {
		if d := dst[k]; d != nil {
			d.Merge(st)
			continue
		}
		if len(dst) >= maxGroups {
			return false
		}
		if clone {
			st = st.Clone()
		}
		dst[k] = st
	}
	return true
}
