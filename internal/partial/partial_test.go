package partial

import (
	"math"
	"testing"
	"time"

	"streamloader/internal/ops"
)

func TestObserveAndValue(t *testing.T) {
	st := New(time.Time{})
	for _, v := range []float64{20, 26, 30, 15} {
		st.Observe(v)
	}
	for fn, want := range map[ops.AggFunc]float64{
		ops.AggCount: 4,
		ops.AggSum:   91,
		ops.AggAvg:   91.0 / 4,
		ops.AggMin:   15,
		ops.AggMax:   30,
	} {
		if got := st.Value(fn); got != want {
			t.Errorf("%s = %v, want %v", fn, got, want)
		}
	}
}

// TestMergeEqualsFold: a state built by merging per-chunk partials must be
// indistinguishable from one built by folding every event — the property AVG
// relies on (count and sum carried separately, never the derived value).
func TestMergeEqualsFold(t *testing.T) {
	vals := []float64{3, 14, 15, 9, 26, 5, 35, 8}
	whole := New(time.Time{})
	for _, v := range vals {
		whole.Observe(v)
	}
	left, right := New(time.Time{}), New(time.Time{})
	for _, v := range vals[:3] {
		left.Observe(v)
	}
	for _, v := range vals[3:] {
		right.Observe(v)
	}
	left.Merge(right)
	if *left != *whole {
		t.Fatalf("merged = %+v, folded = %+v", left, whole)
	}
	if got, want := left.Value(ops.AggAvg), whole.Sum/float64(whole.Count); got != want {
		t.Fatalf("avg over merge = %v, want %v", got, want)
	}
}

func TestEmptyStateIsMergeIdentity(t *testing.T) {
	st := New(time.Time{})
	st.Observe(7)
	st.Merge(New(time.Time{}))
	if st.Count != 1 || st.Sum != 7 || st.Min != 7 || st.Max != 7 {
		t.Fatalf("merge with empty changed the state: %+v", st)
	}
	empty := New(time.Time{})
	if !math.IsInf(empty.Min, 1) || !math.IsInf(empty.Max, -1) {
		t.Fatalf("empty extrema = (%v, %v), want (+Inf, -Inf)", empty.Min, empty.Max)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	st := New(time.Time{})
	st.Observe(4)
	c := st.Clone()
	c.Observe(10)
	if st.Count != 1 || st.Sum != 4 {
		t.Fatalf("clone mutation leaked into the source: %+v", st)
	}
}

func TestBucketKey(t *testing.T) {
	bs := time.Date(2016, 3, 15, 12, 0, 0, 500, time.UTC)
	k := BucketKey(bs, "umeda", "weather")
	if k.Sec != bs.Unix() || k.NS != 500 || k.Source != "umeda" || k.Theme != "weather" {
		t.Fatalf("key = %+v", k)
	}
	if z := BucketKey(time.Time{}, "", ""); z != (Key{}) {
		t.Fatalf("zero-bucket key = %+v, want zero", z)
	}
	// Comparable: equal coordinates collide in a map regardless of Location.
	inLoc := BucketKey(bs.In(time.FixedZone("x", 3600)), "umeda", "weather")
	if k != inLoc {
		t.Fatalf("location changed the key: %+v vs %+v", k, inLoc)
	}
}

func TestMapMergeCardinalityBound(t *testing.T) {
	dst := map[Key]*State{}
	src := map[Key]*State{}
	for i, src2 := range []string{"a", "b", "c"} {
		st := New(time.Time{})
		st.Observe(float64(i))
		src[BucketKey(time.Time{}, src2, "")] = st
	}
	if Merge(dst, src, 2, false) {
		t.Fatal("merge over the bound reported ok")
	}
	dst = map[Key]*State{}
	if !Merge(dst, src, 3, false) || len(dst) != 3 {
		t.Fatalf("merge under the bound failed: %d groups", len(dst))
	}
	// An existing group never counts against the bound again.
	if !Merge(dst, src, 3, false) {
		t.Fatal("re-merge of existing groups tripped the bound")
	}
	if dst[BucketKey(time.Time{}, "a", "")].Count != 2 {
		t.Fatal("re-merge did not accumulate")
	}
}

func TestMapMergeClone(t *testing.T) {
	src := map[Key]*State{}
	st := New(time.Time{})
	st.Observe(1)
	src[Key{}] = st
	dst := map[Key]*State{}
	if !Merge(dst, src, 10, true) {
		t.Fatal("merge failed")
	}
	dst[Key{}].Observe(99)
	if st.Count != 1 {
		t.Fatalf("clone=true still aliased the source: %+v", st)
	}
}
