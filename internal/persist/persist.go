// Package persist is the durable storage layer under the Event Data
// Warehouse: a per-shard write-ahead log so acked events survive a crash,
// immutable on-disk segment files that cold warehouse segments spill into,
// and a small manifest carrying the state recovery needs (shard count and
// the retention cut frontier).
//
// The package deliberately knows nothing about shards, indexes or queries —
// it moves (sequence, tuple) pairs between memory and disk with integrity
// checks, and leaves placement and semantics to the warehouse.
//
// # Write-ahead log
//
// A WAL is a directory of numbered append-only files. Every append frames
// one record — a schema definition or a batch of events — as
// [length][CRC32C][payload], buffered into a single write(2) so an acked
// batch is in the kernel even under SyncNever. Fsync is governed by
// SyncPolicy: SyncAlways syncs once per append (batch-coalesced), the
// default SyncInterval syncs when the configured interval has elapsed since
// the last sync, SyncNever leaves flushing to the OS. Files rotate at
// SegmentBytes; each fresh file re-states every known schema definition so
// any file can be decoded after its predecessors are checkpointed away.
//
// Replay walks the files in order and stops a file at the first frame whose
// length or checksum does not hold, truncating the torn tail so the next
// writer starts from a clean boundary. Records for events that are already
// durable elsewhere are the caller's business: replay hands over every
// record and the warehouse filters against its spilled segments and the
// retention watermark.
//
// # Segment files
//
// A segment file stores one sealed warehouse segment: a JSON header (event
// count, time envelope, head/tail keys, per-source and per-theme counts,
// schema dictionary, sparse index), the sequence numbers of every event,
// then the events themselves in (time, seq) order. The seq block lets
// recovery dedupe WAL records against spilled files without decoding any
// event payload; the sparse index maps every IndexEvery-th event to its
// byte offset so a time-window read decodes only the overlapping stretch.
// Segment files are immutable: retention removes them whole, and partial
// eviction is a logical skip re-derivable from the manifest's cuts.
//
// # Retention cuts
//
// The manifest records evictions as a frontier of Cuts, each pairing one
// compaction's watermark — the highest (time, seq) key it evicted — with
// the per-shard WAL positions and segment generations it saw. Recovery
// suppresses an event when any cut both saw it and covers its key. The
// pairing matters: a compaction that runs after deep stragglers arrived
// may evict up to a lower watermark than an earlier cut's, and those
// stragglers must survive recovery even though they sit below the older
// watermark — so the older watermark stays scoped to the older marks
// instead of being re-issued against newer ones.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"streamloader/internal/stt"
)

// SyncPolicy says when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs on the first append after
	// SyncEvery has elapsed since the previous sync.
	SyncInterval SyncPolicy = iota
	// SyncNever leaves flushing entirely to the OS page cache.
	SyncNever
	// SyncAlways fsyncs once per append call; a batch still pays one sync.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncAlways:
		return "always"
	default:
		return "interval"
	}
}

// DefaultSyncEvery is the SyncInterval period when none is configured.
const DefaultSyncEvery = 100 * time.Millisecond

// ParseSyncPolicy reads a -fsync style flag value: "never", "always",
// "interval" (at the default period), or a duration like "250ms" meaning
// interval syncing at that period.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "never":
		return SyncNever, 0, nil
	case "always":
		return SyncAlways, 0, nil
	case "", "interval":
		return SyncInterval, DefaultSyncEvery, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncInterval, 0, fmt.Errorf("persist: bad sync policy %q (want never, always, interval or a duration)", s)
	}
	return SyncInterval, d, nil
}

// DefaultSegmentBytes is the WAL rotation threshold.
const DefaultSegmentBytes = 4 << 20

// Event is one durable (warehouse sequence, tuple) pair.
type Event struct {
	Seq   uint64
	Tuple *stt.Tuple
}

// Key is the global eviction order of warehouse events: event time, then
// warehouse sequence. Sequence uniqueness makes the order total, so one Key
// fully describes a retention cut.
type Key struct {
	Time time.Time
	Seq  uint64
}

// Less reports whether k precedes o in eviction order.
func (k Key) Less(o Key) bool {
	if !k.Time.Equal(o.Time) {
		return k.Time.Before(o.Time)
	}
	return k.Seq < o.Seq
}

// IsZero reports whether the key is unset (no watermark).
func (k Key) IsZero() bool { return k.Time.IsZero() && k.Seq == 0 }

// keyJSON is the manifest encoding of a Key.
type keyJSON struct {
	UnixSec int64  `json:"unix_sec"`
	Nanos   int    `json:"nanos"`
	Seq     uint64 `json:"seq"`
	Set     bool   `json:"set"`
}

// ShardMark pins where one shard's log and spill history stood when the
// watermark was written: WAL records at or past (WALFile, WALOff), and
// segment files of generation >= SegGen, were created after the compaction
// and are exempt from its watermark — without the mark, a straggler
// ingested after a compaction (event time below the watermark, but alive)
// would be wrongly suppressed at recovery.
type ShardMark struct {
	WALFile int   `json:"wal_file"`
	WALOff  int64 `json:"wal_off"`
	SegGen  int   `json:"seg_gen"`
}

// Covers reports whether a WAL record at (file, off) predates the mark,
// i.e. was visible to the compaction that wrote it.
func (m ShardMark) Covers(p Pos) bool {
	if p.File != m.WALFile {
		return p.File < m.WALFile
	}
	return p.Off < m.WALOff
}

// Pos locates one record in a shard's WAL.
type Pos struct {
	File int   // wal file number
	Off  int64 // frame start offset within the file
}

// Cut records one compaction's eviction durably: every event with
// Key <= Watermark that the compaction could see — WAL records and segment
// files before the per-shard Marks — has been evicted and must not be
// resurrected by replay. The pairing is load-bearing: a watermark is only
// meaningful against the marks of the compaction that computed it. A later
// compaction may legitimately leave alive stragglers whose keys sit below
// an earlier cut's watermark (they arrived after it), so its own cut must
// carry its own, lower watermark rather than inherit the old one against
// new marks.
type Cut struct {
	Watermark Key `json:"-"`
	// Marks holds one ShardMark per shard, recorded when Watermark was.
	Marks []ShardMark `json:"marks,omitempty"`

	WatermarkJSON keyJSON `json:"watermark"`
}

// Mark returns the cut's mark for one shard (zero when out of range).
func (c Cut) Mark(shard int) ShardMark {
	if shard < len(c.Marks) {
		return c.Marks[shard]
	}
	return ShardMark{}
}

// maxCuts bounds the manifest's cut frontier. Overflow drops the
// oldest (highest-watermark) cut: its evictions are the longest-settled —
// their log files are the likeliest already checkpointed away — and the
// worst case of dropping it is bounded resurrection, never loss.
const maxCuts = 32

// CompactionRecord marks one cold-file compaction durably while its old
// files still exist: the merged file NewGen has been published and the
// victim files OldGens are condemned. The record is written after the new
// file's rename and cleared once every old file is deleted, so recovery can
// finish the deletions idempotently — without it, a crash between the
// deletes would leave the merged file and a surviving victim both
// registered, double-counting every event they share. (A crash *before*
// the record is written is already safe: the merged file's seqs are a
// subset of the victims', so recovery detects it as a duplicate and
// deletes it, harmlessly undoing the compaction.)
type CompactionRecord struct {
	Shard   int   `json:"shard"`
	NewGen  int   `json:"new_gen"`
	OldGens []int `json:"old_gens"`
}

// Manifest is the per-data-dir recovery state, saved atomically.
type Manifest struct {
	Version int `json:"version"`
	// Shards pins the shard count the directory layout was written for;
	// Open adopts it so spilled segment files stay on their shard.
	Shards int `json:"shards"`
	// Cuts is the frontier of live retention cuts, oldest first: marks
	// increase and watermarks strictly decrease along it (a new cut at or
	// above an older watermark subsumes the older cut, which is pruned).
	// An event is suppressed at recovery when ANY cut covers it.
	Cuts []Cut `json:"cuts,omitempty"`
	// Compactions holds the in-flight cold-file compactions: published
	// merged files whose victims may not all be deleted yet. Resolved (the
	// deletions finished) and cleared on recovery before segment files are
	// registered.
	Compactions []CompactionRecord `json:"compactions,omitempty"`
	// MaxSeq is the highest warehouse sequence known assigned when the
	// manifest was last saved. Recovery seeds its counter past it, so a
	// sequence is never reassigned even when every trace of its event was
	// legitimately erased pre-crash (spilled, WAL-checkpointed, then the
	// whole file deleted by a retention cut): re-deriving the counter from
	// surviving events alone would regress it and hand out duplicates.
	MaxSeq uint64 `json:"max_seq,omitempty"`

	// Evictions counts every retention eviction this directory has applied,
	// including degraded ones that recorded no cut (an unreadable cold file
	// kept its events, so no watermark was safe to persist). View
	// checkpoints fingerprint it together with the cut frontier: any
	// eviction invalidates state that can no longer subtract what left.
	Evictions uint64 `json:"evictions,omitempty"`

	// Views records the registered standing aggregate views and the
	// checkpoint file each resumes from, oldest registration first.
	Views []ViewRecord `json:"views,omitempty"`

	// Legacy single-cut fields, read (never written) so manifests from
	// before the frontier keep recovering.
	LegacyMarks         []ShardMark `json:"marks,omitempty"`
	LegacyWatermarkJSON *keyJSON    `json:"watermark,omitempty"`
}

// ViewRecord is one standing view's durable definition: the canonical
// registry key, the query in URL-values form (round-trippable through
// ParseAggQueryValues), the update policy's wire string, and the
// checkpoint file name under the views/ subdirectory.
type ViewRecord struct {
	Key    string `json:"key"`
	Query  string `json:"query"`
	Policy string `json:"policy"`
	File   string `json:"file"`
}

// maxViewRecords bounds the manifest's view list; registrations beyond it
// evict oldest-first.
const maxViewRecords = 32

// AddView appends or refreshes a view record, reporting whether the
// manifest changed and which records fell off the capped end (their
// checkpoint files should be deleted by the caller).
func (m *Manifest) AddView(r ViewRecord) (changed bool, evicted []ViewRecord) {
	for i, old := range m.Views {
		if old.Key == r.Key {
			if old == r {
				return false, nil
			}
			m.Views[i] = r
			return true, nil
		}
	}
	m.Views = append(m.Views, r)
	for len(m.Views) > maxViewRecords {
		evicted = append(evicted, m.Views[0])
		m.Views = append(m.Views[:0], m.Views[1:]...)
	}
	return true, evicted
}

// AddCut appends a compaction's cut, pruning the cuts it subsumes: every
// older cut whose watermark is at or below the new one is fully covered
// (the new cut's marks are at or past every older cut's). A zero-watermark
// cut records nothing and is ignored.
func (m *Manifest) AddCut(c Cut) {
	if c.Watermark.IsZero() {
		return
	}
	kept := m.Cuts[:0]
	for _, old := range m.Cuts {
		if !c.Watermark.Less(old.Watermark) { // old <= new: subsumed
			continue
		}
		kept = append(kept, old)
	}
	m.Cuts = append(kept, c)
	if len(m.Cuts) > maxCuts {
		m.Cuts = append(m.Cuts[:0], m.Cuts[1:]...)
	}
}

// LastMarks returns the newest cut's marks — the furthest positions any
// recorded compaction has seen — or nil when no cut exists.
func (m *Manifest) LastMarks() []ShardMark {
	if len(m.Cuts) == 0 {
		return nil
	}
	return m.Cuts[len(m.Cuts)-1].Marks
}

const manifestName = "MANIFEST.json"

// LoadManifest reads the manifest in dir; ok is false when none exists yet.
func LoadManifest(dir string) (Manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("persist: bad manifest: %w", err)
	}
	for i := range m.Cuts {
		if m.Cuts[i].WatermarkJSON.Set {
			m.Cuts[i].Watermark = keyFromJSON(m.Cuts[i].WatermarkJSON)
		}
	}
	// A pre-frontier manifest carries one (watermark, marks) pair at the
	// top level; adopt it as the sole cut.
	if len(m.Cuts) == 0 && m.LegacyWatermarkJSON != nil && m.LegacyWatermarkJSON.Set {
		m.Cuts = []Cut{{
			Watermark: keyFromJSON(*m.LegacyWatermarkJSON),
			Marks:     m.LegacyMarks,
		}}
	}
	m.LegacyMarks, m.LegacyWatermarkJSON = nil, nil
	return m, true, nil
}

// SaveManifest writes the manifest atomically (temp file + rename + dir
// sync), so a crash leaves either the old or the new manifest, never a mix.
func SaveManifest(dir string, m Manifest) error {
	cuts := make([]Cut, len(m.Cuts))
	copy(cuts, m.Cuts)
	for i := range cuts {
		if !cuts[i].Watermark.IsZero() {
			cuts[i].WatermarkJSON = timeToKeyJSON(cuts[i].Watermark)
		}
	}
	m.Cuts = cuts
	m.LegacyMarks, m.LegacyWatermarkJSON = nil, nil
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
