package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// cacheSegment writes a segment of n events (several chunks when n >
// IndexEvery) and reopens it, returning the read-side info.
func cacheSegment(t *testing.T, n int) *SegmentInfo {
	t.Helper()
	dir := t.TempDir()
	events := make([]Event, n)
	for i := range events {
		events[i] = wEvent(uint64(i), time.Duration(i)*time.Minute, float64(i%30), fmt.Sprintf("s-%d", i%4))
	}
	path := filepath.Join(dir, SegmentFileName(1))
	if _, err := WriteSegment(path, events); err != nil {
		t.Fatal(err)
	}
	info, _, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestReadRangeCachedMatchesUncached reads every alignment of a multi-chunk
// segment through a cache and bare, and the results must be identical —
// on a cold cache, a warm cache, and a partially warm one.
func TestReadRangeCachedMatchesUncached(t *testing.T) {
	info := cacheSegment(t, 3*IndexEvery+17)
	cache := NewChunkCache(1 << 20)
	ranges := [][2]int{
		{0, info.Count},
		{0, 1},
		{IndexEvery - 1, IndexEvery + 1}, // straddles a chunk boundary
		{IndexEvery, 2 * IndexEvery},     // exactly one interior chunk
		{3 * IndexEvery, info.Count},     // the short tail chunk
		{5, 3 * IndexEvery},
	}
	for pass := 0; pass < 2; pass++ { // pass 0 fills the cache, pass 1 hits it
		for _, r := range ranges {
			want, err := info.ReadRange(r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			got, rs, err := info.ReadRangeCached(cache, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("pass %d range %v: %d events, want %d", pass, r, len(got), len(want))
			}
			for i := range got {
				if got[i].Seq != want[i].Seq {
					t.Fatalf("pass %d range %v: [%d].Seq = %d, want %d", pass, r, i, got[i].Seq, want[i].Seq)
				}
				sameTuple(t, got[i].Tuple, want[i].Tuple)
			}
			if pass == 1 && rs.CacheMisses != 0 {
				t.Fatalf("pass 1 range %v: %d misses on a warm cache", r, rs.CacheMisses)
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 || st.Entries == 0 || st.Bytes <= 0 {
		t.Fatalf("cache never populated: %+v", st)
	}
}

// TestChunkCacheServesWithoutFile: once chunks are cached, reads covered by
// them must not touch the file at all.
func TestChunkCacheServesWithoutFile(t *testing.T) {
	info := cacheSegment(t, 2*IndexEvery)
	cache := NewChunkCache(1 << 20)
	want, _, err := info.ReadRangeCached(cache, 0, info.Count)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(info.Path); err != nil {
		t.Fatal(err)
	}
	got, rs, err := info.ReadRangeCached(cache, 0, info.Count)
	if err != nil {
		t.Fatalf("warm read after file deletion: %v", err)
	}
	if rs.CacheMisses != 0 || len(got) != len(want) {
		t.Fatalf("misses=%d len=%d, want 0/%d", rs.CacheMisses, len(got), len(want))
	}
}

// TestChunkCacheBudgetEvicts: the cache must hold its byte budget by
// evicting the least recently used chunks, and a nil (disabled) cache must
// be safe everywhere.
func TestChunkCacheBudgetEvicts(t *testing.T) {
	info := cacheSegment(t, 8*IndexEvery)
	_, _, chunkOff0, chunkEnd0 := info.chunkBounds(0)
	chunkBytes := chunkEnd0 - chunkOff0
	// Budget for roughly two chunks.
	cache := NewChunkCache(2*chunkBytes + chunkBytes/2)
	if _, _, err := info.ReadRangeCached(cache, 0, info.Count); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Entries == 0 || st.Entries > 3 {
		t.Fatalf("budget of ~2 chunks holds %d entries (%d bytes)", st.Entries, st.Bytes)
	}
	if st.Bytes > 2*chunkBytes+chunkBytes/2 {
		t.Fatalf("cache bytes %d exceed budget", st.Bytes)
	}
	// The surviving entries are the most recently used: the tail of the
	// read. A re-read of the tail chunk must hit.
	_, rs, err := info.ReadRangeCached(cache, 7*IndexEvery, 8*IndexEvery)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits != 1 {
		t.Fatalf("tail chunk re-read: hits = %d, want 1", rs.CacheHits)
	}

	cache.Invalidate(info.Path)
	if st := cache.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("invalidate left %d entries / %d bytes", st.Entries, st.Bytes)
	}

	// Nil cache: disabled everywhere, including stats and invalidation.
	var nilCache *ChunkCache
	if st := nilCache.Stats(); st != (ChunkCacheStats{}) {
		t.Fatal("nil cache stats not zero")
	}
	nilCache.Invalidate("x")
	if NewChunkCache(0) != nil || NewChunkCache(-1) != nil {
		t.Fatal("non-positive budget must disable the cache")
	}
}
