package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
	"time"

	"streamloader/internal/stt"
)

// The binary event encoding is shared by WAL records and segment files:
// compact, schema-dictionary based, and self-describing enough to decode
// with nothing but the dictionary. Times are encoded as (unix seconds,
// nanoseconds) rather than UnixNano so any time.Time the STT model can
// carry — including the zero time — round-trips exactly in wall-clock
// terms; decoded times come back in UTC, which preserves Equal/Before.

// castagnoli is the CRC32C table used for all on-disk checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// schemaJSON is the serialized form of an stt.Schema, used in WAL schema
// records and segment headers. JSON keeps it debuggable; schemas are few
// and written once per WAL file or segment, so compactness is irrelevant.
type schemaJSON struct {
	Fields []fieldJSON `json:"fields"`
	TGran  string      `json:"tgran"`
	SGran  string      `json:"sgran"`
	Themes []string    `json:"themes,omitempty"`
}

type fieldJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Unit string `json:"unit,omitempty"`
}

func encodeSchema(s *stt.Schema) schemaJSON {
	out := schemaJSON{
		TGran:  s.TGran.String(),
		SGran:  s.SGran.String(),
		Themes: s.Themes,
	}
	for _, f := range s.Fields() {
		out.Fields = append(out.Fields, fieldJSON{Name: f.Name, Kind: f.Kind.String(), Unit: f.Unit})
	}
	return out
}

func decodeSchema(j schemaJSON) (*stt.Schema, error) {
	fields := make([]stt.Field, 0, len(j.Fields))
	for _, f := range j.Fields {
		kind, err := stt.ParseKind(f.Kind)
		if err != nil {
			return nil, err
		}
		fields = append(fields, stt.NewField(f.Name, kind, f.Unit))
	}
	tg, err := stt.ParseTemporalGranularity(j.TGran)
	if err != nil {
		return nil, err
	}
	sg, err := stt.ParseSpatialGranularity(j.SGran)
	if err != nil {
		return nil, err
	}
	return stt.NewSchema(fields, tg, sg, j.Themes...)
}

// interner dedupes decoded schemas by canonical encoding, so every
// recovered tuple of one logical schema shares a single *stt.Schema —
// per-schema caches (condition compilation, join planning) then behave as
// they do for live streams.
type interner struct {
	mu      sync.Mutex
	schemas map[string]*stt.Schema
}

var globalInterner = &interner{schemas: map[string]*stt.Schema{}}

func (in *interner) intern(j schemaJSON) (*stt.Schema, error) {
	key, err := json.Marshal(j)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.schemas[string(key)]; ok {
		return s, nil
	}
	s, err := decodeSchema(j)
	if err != nil {
		return nil, err
	}
	in.schemas[string(key)] = s
	return s, nil
}

// appendUvarint / appendVarint are binary.AppendUvarint/AppendVarint;
// named locally for symmetry with the decode helpers.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("persist: truncated uvarint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("persist: truncated varint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.data) {
		d.fail("persist: truncated %d-byte field at %d", n, d.pos)
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) byteVal() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) string() string { return string(d.bytes(int(d.uvarint()))) }

func (d *decoder) float() float64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) time() time.Time {
	sec := d.varint()
	nsec := d.varint()
	if d.err != nil {
		return time.Time{}
	}
	if sec == 0 && nsec == -1 {
		return time.Time{} // encoded zero time
	}
	return time.Unix(sec, nsec).UTC()
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		// The zero time's Unix() is representable but collides with a real
		// (if prehistoric) instant; tag it with an impossible nanosecond.
		b = appendVarint(b, 0)
		return appendVarint(b, -1)
	}
	b = appendVarint(b, t.Unix())
	return appendVarint(b, int64(t.Nanosecond()))
}

func appendValue(b []byte, v stt.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case stt.KindNull:
	case stt.KindBool:
		if v.AsBool() {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case stt.KindInt:
		b = appendVarint(b, v.AsInt())
	case stt.KindFloat:
		b = appendFloat(b, v.AsFloat())
	case stt.KindString:
		b = appendString(b, v.AsString())
	case stt.KindTime:
		b = appendTime(b, v.AsTime())
	}
	return b
}

func (d *decoder) value() stt.Value {
	switch kind := stt.Kind(d.byteVal()); kind {
	case stt.KindNull:
		return stt.Null()
	case stt.KindBool:
		return stt.Bool(d.byteVal() != 0)
	case stt.KindInt:
		return stt.Int(d.varint())
	case stt.KindFloat:
		return stt.Float(d.float())
	case stt.KindString:
		return stt.String(d.string())
	case stt.KindTime:
		return stt.Time(d.time())
	default:
		d.fail("persist: unknown value kind %d", kind)
		return stt.Null()
	}
}

// appendEvent encodes one event given its schema's dictionary id.
func appendEvent(b []byte, ev Event, schemaID uint64) []byte {
	t := ev.Tuple
	b = appendUvarint(b, schemaID)
	b = appendUvarint(b, ev.Seq)
	b = appendTime(b, t.Time)
	b = appendFloat(b, t.Lat)
	b = appendFloat(b, t.Lon)
	b = appendString(b, t.Theme)
	b = appendString(b, t.Source)
	b = appendUvarint(b, t.Seq)
	b = appendUvarint(b, uint64(len(t.Values)))
	for _, v := range t.Values {
		b = appendValue(b, v)
	}
	return b
}

// event decodes one event; dict maps dictionary ids to schemas.
func (d *decoder) event(dict map[uint64]*stt.Schema) Event {
	schemaID := d.uvarint()
	seq := d.uvarint()
	tup := &stt.Tuple{
		Time: d.time(),
		Lat:  d.float(),
		Lon:  d.float(),
	}
	tup.Theme = d.string()
	tup.Source = d.string()
	tup.Seq = d.uvarint()
	n := d.uvarint()
	if d.err != nil {
		return Event{}
	}
	if n > uint64(len(d.data)-d.pos) {
		d.fail("persist: value count %d exceeds remaining data", n)
		return Event{}
	}
	tup.Values = make([]stt.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		tup.Values = append(tup.Values, d.value())
	}
	schema, ok := dict[schemaID]
	if !ok {
		d.fail("persist: undefined schema id %d", schemaID)
		return Event{}
	}
	tup.Schema = schema
	return Event{Seq: seq, Tuple: tup}
}

// schemaDict assigns dictionary ids to schemas on first use on the encode
// side. Ids are dense and stable for the lifetime of the dict.
type schemaDict struct {
	ids   map[*stt.Schema]uint64
	order []*stt.Schema
}

func newSchemaDict() *schemaDict { return &schemaDict{ids: map[*stt.Schema]uint64{}} }

// id returns the schema's dictionary id, defining it if new.
func (sd *schemaDict) id(s *stt.Schema) (uint64, bool) {
	if id, ok := sd.ids[s]; ok {
		return id, false
	}
	id := uint64(len(sd.order))
	sd.ids[s] = id
	sd.order = append(sd.order, s)
	return id, true
}

// RowEncodedBytes reports how many bytes events occupy in the row-wise
// event encoding (the v1/v2 chunk payload), assigning schema dictionary
// ids the way a segment writer would. Inspection tools use it to compare
// a file's on-disk footprint against the row-format equivalent.
func RowEncodedBytes(events []Event) int64 {
	dict := newSchemaDict()
	var b []byte
	var n int64
	for _, ev := range events {
		id, _ := dict.id(ev.Tuple.Schema)
		b = appendEvent(b[:0], ev, id)
		n += int64(len(b))
	}
	return n
}

// SortEvents orders events by (time, seq) in place — the canonical
// on-disk order WriteSegment requires. Callers with nearly-sorted input
// (a segment's time index) pay almost nothing: the sort is stable and
// adaptive.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if !a.Tuple.Time.Equal(b.Tuple.Time) {
			return a.Tuple.Time.Before(b.Tuple.Time)
		}
		return a.Seq < b.Seq
	})
}
