package persist

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var t0 = time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)

var weather = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
	stt.NewField("station", stt.KindString, ""),
}, stt.GranMinute, stt.SpatCellDistrict, "weather")

var kitchenSink = stt.MustSchema([]stt.Field{
	stt.NewField("b", stt.KindBool, ""),
	stt.NewField("i", stt.KindInt, ""),
	stt.NewField("f", stt.KindFloat, ""),
	stt.NewField("s", stt.KindString, ""),
	stt.NewField("t", stt.KindTime, ""),
	stt.NewField("n", stt.KindFloat, ""),
}, stt.GranSecond, stt.SpatPoint, "test", "misc")

func wEvent(seq uint64, offset time.Duration, temp float64, station string) Event {
	return Event{Seq: seq, Tuple: &stt.Tuple{
		Schema: weather,
		Values: []stt.Value{stt.Float(temp), stt.String(station)},
		Time:   t0.Add(offset),
		Lat:    34.7, Lon: 135.5,
		Theme: "weather", Source: station, Seq: seq,
	}}
}

func sinkEvent(seq uint64) Event {
	return Event{Seq: seq, Tuple: &stt.Tuple{
		Schema: kitchenSink,
		Values: []stt.Value{
			stt.Bool(true), stt.Int(-42), stt.Float(3.25),
			stt.String("héllo\x00world"), stt.Time(t0.Add(time.Hour)), stt.Null(),
		},
		Time: t0.Add(time.Duration(seq) * time.Second),
		Lat:  -1.5, Lon: 0.25,
		Theme: "test", Source: "sink",
	}}
}

func sameTuple(t *testing.T, got, want *stt.Tuple) {
	t.Helper()
	if !got.Time.Equal(want.Time) {
		t.Fatalf("time = %v, want %v", got.Time, want.Time)
	}
	if got.Lat != want.Lat || got.Lon != want.Lon {
		t.Fatalf("pos = (%v,%v), want (%v,%v)", got.Lat, got.Lon, want.Lat, want.Lon)
	}
	if got.Theme != want.Theme || got.Source != want.Source || got.Seq != want.Seq {
		t.Fatalf("meta = %q/%q/%d, want %q/%q/%d",
			got.Theme, got.Source, got.Seq, want.Theme, want.Source, want.Seq)
	}
	if !got.Schema.Compatible(want.Schema) {
		t.Fatalf("schema = %s, want %s", got.Schema, want.Schema)
	}
	if got.Schema.TGran != want.Schema.TGran || got.Schema.SGran != want.Schema.SGran {
		t.Fatalf("granularities differ: %s vs %s", got.Schema, want.Schema)
	}
	if len(got.Schema.Themes) != len(want.Schema.Themes) {
		t.Fatalf("themes = %v, want %v", got.Schema.Themes, want.Schema.Themes)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%d values, want %d", len(got.Values), len(want.Values))
	}
	for i := range got.Values {
		g, w := got.Values[i], want.Values[i]
		if g.Kind() != w.Kind() {
			t.Fatalf("value %d kind = %s, want %s", i, g.Kind(), w.Kind())
		}
		if g.Kind() == stt.KindFloat {
			// Bit comparison so NaN payloads count as round-tripped.
			if math.Float64bits(g.AsFloat()) != math.Float64bits(w.AsFloat()) {
				t.Fatalf("value %d = %v (bits %x), want %v (bits %x)",
					i, g, math.Float64bits(g.AsFloat()), w, math.Float64bits(w.AsFloat()))
			}
			continue
		}
		if g.Kind() != stt.KindNull && !g.Equal(w) {
			t.Fatalf("value %d = %v, want %v", i, g, w)
		}
	}
}

func replayAll(t *testing.T, dir string) ([]Event, ReplayResult) {
	t.Helper()
	var got []Event
	res, err := ReplayWAL(dir, func(ev Event, _ Pos) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, res
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []Event
	for i := 0; i < 10; i++ {
		want = append(want, wEvent(uint64(i), time.Duration(i)*time.Minute, float64(20+i), "umeda"))
	}
	want = append(want, sinkEvent(10), sinkEvent(11))
	if err := w.Append(want[:5]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[5:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	if res.MaxSeq != 11 || res.Truncated != 0 {
		t.Fatalf("result = %+v", res)
	}
	for i := range got {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("event %d seq = %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		sameTuple(t, got[i].Tuple, want[i].Tuple)
	}
	// Replayed tuples of one logical schema share one *Schema.
	if got[0].Tuple.Schema != got[9].Tuple.Schema {
		t.Error("recovered schemas not interned")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w.Append([]Event{wEvent(uint64(i), time.Duration(i)*time.Minute, 20, "s")}); err != nil {
			t.Fatal(err)
		}
	}
	w.CloseHard()

	files, err := listWALFiles(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, %v", files, err)
	}
	// Tear the last record: cut a few bytes off the tail.
	st, _ := os.Stat(files[0])
	if err := os.Truncate(files[0], st.Size()-3); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir)
	if len(got) != 7 {
		t.Fatalf("replayed %d events after tear, want 7", len(got))
	}
	if res.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", res.Truncated)
	}
	// The file now ends on a clean frame boundary: replay again, no tear.
	got, res = replayAll(t, dir)
	if len(got) != 7 || res.Truncated != 0 {
		t.Fatalf("second replay: %d events, %d truncations", len(got), res.Truncated)
	}
}

func TestWALCorruptRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 4; i++ {
		if err := w.Append([]Event{wEvent(uint64(i), time.Duration(i)*time.Minute, 20, "s")}); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.fileSize)
	}
	w.CloseHard()

	files, _ := listWALFiles(dir)
	// Flip a byte inside the third record's payload.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[sizes[1]+frameHeader+2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, res := replayAll(t, dir)
	if len(got) != 2 {
		t.Fatalf("replayed %d events after corruption, want 2", len(got))
	}
	if res.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", res.Truncated)
	}
}

func TestWALRotationAndSchemaRestate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment size forces a rotation per append.
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNever, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append([]Event{wEvent(uint64(i), time.Duration(i)*time.Minute, 20, "s")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := listWALFiles(dir)
	if len(files) < 3 {
		t.Fatalf("expected several rotated files, got %d", len(files))
	}
	// Delete the early files (as a checkpoint would): later files must
	// still decode because each file re-states the schema dictionary.
	for _, f := range files[:len(files)-2] {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := replayAll(t, dir)
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("replayed %d events from surviving files", len(got))
	}
	for _, ev := range got {
		if ev.Tuple.Schema == nil {
			t.Fatal("event decoded without schema")
		}
	}
}

func TestWALDropObsolete(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNever, SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append([]Event{wEvent(uint64(i), time.Duration(i)*time.Minute, 20, "s")}); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Bytes()
	reclaimed := w.DropObsolete(10)
	if reclaimed <= 0 {
		t.Fatal("no bytes reclaimed")
	}
	if w.Bytes() != before-reclaimed {
		t.Fatalf("Bytes() = %d, want %d", w.Bytes(), before-reclaimed)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Events >= 10 must all survive the checkpoint.
	got, _ := replayAll(t, dir)
	seen := map[uint64]bool{}
	for _, ev := range got {
		seen[ev.Seq] = true
	}
	for seq := uint64(10); seq < 20; seq++ {
		if !seen[seq] {
			t.Fatalf("seq %d lost by DropObsolete", seq)
		}
	}
}

func TestWALReopenContinues(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Sync: SyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]Event{wEvent(0, 0, 20, "s")}); err != nil {
		t.Fatal(err)
	}
	w.CloseHard()

	var replayed []Event
	res, err := ReplayWAL(dir, func(ev Event, _ Pos) error { replayed = append(replayed, ev); return nil })
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{Sync: SyncNever}, res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]Event{wEvent(1, time.Minute, 21, "s")}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	if len(got) != 2 {
		t.Fatalf("after reopen replayed %d events, want 2", len(got))
	}
	if got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("seqs = %d, %d", got[0].Seq, got[1].Seq)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var events []Event
	for i := 0; i < 1000; i++ {
		events = append(events, wEvent(uint64(i), time.Duration(i)*time.Second, float64(i%30), fmt.Sprintf("src-%d", i%4)))
	}
	events = append(events, sinkEvent(1000))
	SortEvents(events)
	path := filepath.Join(dir, SegmentFileName(1))
	info, err := WriteSegment(path, events)
	if err != nil {
		t.Fatal(err)
	}
	if info.Count != len(events) {
		t.Fatalf("Count = %d", info.Count)
	}

	opened, seqs, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Count != len(events) || len(seqs) != len(events) {
		t.Fatalf("opened count = %d, seqs = %d", opened.Count, len(seqs))
	}
	if !opened.Head.Time.Equal(events[0].Tuple.Time) || opened.Head.Seq != events[0].Seq {
		t.Fatalf("head = %+v", opened.Head)
	}
	if !opened.Tail.Time.Equal(events[len(events)-1].Tuple.Time) {
		t.Fatalf("tail = %+v", opened.Tail)
	}
	if opened.SourceCounts["src-0"] != 250 {
		t.Fatalf("source counts = %v", opened.SourceCounts)
	}
	if opened.ThemeCounts["weather"] != 1000 || opened.ThemeCounts["test"] != 1 {
		t.Fatalf("theme counts = %v", opened.ThemeCounts)
	}
	for i, ev := range events {
		if seqs[i] != ev.Seq {
			t.Fatalf("seq block [%d] = %d, want %d", i, seqs[i], ev.Seq)
		}
	}

	got, err := opened.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Seq != events[i].Seq {
			t.Fatalf("event %d seq = %d, want %d", i, got[i].Seq, events[i].Seq)
		}
		sameTuple(t, got[i].Tuple, events[i].Tuple)
	}
}

func TestSegmentReadRangeAndWindow(t *testing.T) {
	dir := t.TempDir()
	var events []Event
	for i := 0; i < 1000; i++ {
		events = append(events, wEvent(uint64(i), time.Duration(i)*time.Second, 20, "s"))
	}
	path := filepath.Join(dir, SegmentFileName(1))
	if _, err := WriteSegment(path, events); err != nil {
		t.Fatal(err)
	}
	info, _, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-file range spanning a chunk boundary.
	got, err := info.ReadRange(200, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 || got[0].Seq != 200 || got[399].Seq != 599 {
		t.Fatalf("range = %d events, first %d, last %d", len(got), got[0].Seq, got[len(got)-1].Seq)
	}

	// Window positions are conservative but chunk-pruned.
	lo, hi := info.WindowPositions(t0.Add(500*time.Second), t0.Add(510*time.Second))
	if lo > 500 || hi < 510 {
		t.Fatalf("window [%d, %d) excludes target events", lo, hi)
	}
	if lo == 0 && hi == 1000 {
		t.Fatal("window did not prune any chunk")
	}
	got, err = info.ReadRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range got {
		if !ev.Tuple.Time.Before(t0.Add(500*time.Second)) && ev.Tuple.Time.Before(t0.Add(510*time.Second)) {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("window read found %d in-window events, want 10", n)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	var events []Event
	for i := 0; i < 300; i++ {
		events = append(events, wEvent(uint64(i), time.Duration(i)*time.Second, 20, "s"))
	}
	path := filepath.Join(dir, SegmentFileName(1))
	info, err := WriteSegment(path, events)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[info.eventOff+10] ^= 0xff // corrupt the first event chunk
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opened, _, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err) // header is intact
	}
	if _, err := opened.ReadAll(); err == nil {
		t.Fatal("corrupted chunk read without error")
	}
	// The second chunk is clean and still readable.
	if _, err := opened.ReadRange(IndexEvery, 300); err != nil {
		t.Fatalf("clean chunk unreadable: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	m := Manifest{Version: 1, Shards: 8}
	m.AddCut(Cut{
		Watermark: Key{Time: t0.Add(time.Hour), Seq: 42},
		Marks:     []ShardMark{{WALFile: 1, WALOff: 100, SegGen: 3}},
	})
	if err := SaveManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Shards != 8 || len(got.Cuts) != 1 {
		t.Fatalf("manifest = %+v", got)
	}
	c := got.Cuts[0]
	if !c.Watermark.Time.Equal(t0.Add(time.Hour)) || c.Watermark.Seq != 42 ||
		c.Mark(0) != (ShardMark{WALFile: 1, WALOff: 100, SegGen: 3}) {
		t.Fatalf("cut = %+v", c)
	}
	// Cut-free manifests stay cut-free.
	if err := SaveManifest(dir, Manifest{Version: 1, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	got, _, _ = LoadManifest(dir)
	if len(got.Cuts) != 0 {
		t.Fatalf("cuts = %+v, want none", got.Cuts)
	}
}

// TestManifestLegacySingleCut: a manifest written before the cut frontier
// (top-level watermark + marks) loads as one cut.
func TestManifestLegacySingleCut(t *testing.T) {
	dir := t.TempDir()
	legacy := `{"version":1,"shards":4,"marks":[{"wal_file":2,"wal_off":7,"seg_gen":5}],` +
		`"watermark":{"unix_sec":1458000000,"nanos":0,"seq":9,"set":true}}`
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	m, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if len(m.Cuts) != 1 {
		t.Fatalf("cuts = %+v, want the legacy pair", m.Cuts)
	}
	c := m.Cuts[0]
	if c.Watermark.Seq != 9 || c.Mark(0).SegGen != 5 || c.Mark(0).WALFile != 2 {
		t.Fatalf("legacy cut = %+v", c)
	}
}

// TestManifestCutFrontier: a new cut at or above an older watermark prunes
// it; a lower cut coexists (the straggler case); overflow drops the oldest.
func TestManifestCutFrontier(t *testing.T) {
	key := func(sec int64) Key { return Key{Time: time.Unix(sec, 0).UTC(), Seq: uint64(sec)} }
	var m Manifest
	m.AddCut(Cut{Watermark: key(100), Marks: []ShardMark{{SegGen: 1}}})
	// A later compaction with a LOWER cut (stragglers arrived and mostly
	// survived) must not replace the older cut — both stay.
	m.AddCut(Cut{Watermark: key(50), Marks: []ShardMark{{SegGen: 2}}})
	if len(m.Cuts) != 2 || m.Cuts[0].Watermark.Seq != 100 || m.Cuts[1].Watermark.Seq != 50 {
		t.Fatalf("frontier = %+v, want [100, 50]", m.Cuts)
	}
	// A cut at or above every existing watermark subsumes them all.
	m.AddCut(Cut{Watermark: key(100), Marks: []ShardMark{{SegGen: 3}}})
	if len(m.Cuts) != 1 || m.Cuts[0].Mark(0).SegGen != 3 {
		t.Fatalf("frontier = %+v, want the one subsuming cut", m.Cuts)
	}
	// Zero cuts record nothing.
	m.AddCut(Cut{})
	if len(m.Cuts) != 1 {
		t.Fatalf("zero cut must be ignored: %+v", m.Cuts)
	}
	// Overflow drops the oldest (highest-watermark) cut.
	m = Manifest{}
	for i := 40; i > 0; i-- {
		m.AddCut(Cut{Watermark: key(int64(i * 10))})
	}
	if len(m.Cuts) != 32 {
		t.Fatalf("frontier size = %d, want capped 32", len(m.Cuts))
	}
	if m.Cuts[0].Watermark.Seq != 320 {
		t.Fatalf("overflow kept %+v first, want the 32 newest cuts", m.Cuts[0].Watermark)
	}
}

func TestKeyOrder(t *testing.T) {
	a := Key{Time: t0, Seq: 1}
	b := Key{Time: t0, Seq: 2}
	c := Key{Time: t0.Add(time.Second), Seq: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("key order broken")
	}
	if (Key{}).Less(Key{}) {
		t.Fatal("equal keys must not be Less")
	}
}

func TestSegmentVersionsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var events []Event
	for i := 0; i < IndexEvery*2+37; i++ {
		events = append(events,
			wEvent(uint64(i+1), time.Duration(i)*time.Second, 15+float64(i%10), fmt.Sprintf("st-%d", i%3)))
	}

	for _, tc := range []struct {
		version   int
		wantStats bool
	}{
		{SegmentV1, false},
		{SegmentV2, true},
		{SegmentV3, true},
	} {
		path := filepath.Join(dir, SegmentFileName(tc.version))
		if _, err := WriteSegmentVersion(path, events, tc.version); err != nil {
			t.Fatalf("v%d write: %v", tc.version, err)
		}
		info, seqs, err := OpenSegment(path)
		if err != nil {
			t.Fatalf("v%d open: %v", tc.version, err)
		}
		if info.Version != tc.version || info.Count != len(events) || len(seqs) != len(events) {
			t.Fatalf("v%d: version=%d count=%d seqs=%d", tc.version, info.Version, info.Count, len(seqs))
		}
		if info.NumChunks() != 3 {
			t.Fatalf("v%d: chunks = %d, want 3", tc.version, info.NumChunks())
		}
		for k := 0; k < info.NumChunks(); k++ {
			entry := info.Sparse[k]
			if (entry.Stats != nil) != tc.wantStats {
				t.Fatalf("v%d chunk %d: stats = %+v, wantStats = %v", tc.version, k, entry.Stats, tc.wantStats)
			}
			if !tc.wantStats {
				continue
			}
			start, end := info.ChunkRange(k)
			st := entry.Stats
			// Recompute the expected summary from the source events.
			wantSrc := map[string]int{}
			wantSum, wantMin, wantMax := 0.0, math.Inf(1), math.Inf(-1)
			for _, ev := range events[start:end] {
				wantSrc[ev.Tuple.Source]++
				f := 15 + float64((int(ev.Seq)-1)%10)
				wantSum += f
				wantMin = math.Min(wantMin, f)
				wantMax = math.Max(wantMax, f)
			}
			if !st.MaxTime.Equal(events[end-1].Tuple.Time) {
				t.Fatalf("chunk %d max time = %v, want %v", k, st.MaxTime, events[end-1].Tuple.Time)
			}
			if len(st.SourceCounts) != len(wantSrc) {
				t.Fatalf("chunk %d sources = %v, want %v", k, st.SourceCounts, wantSrc)
			}
			for src, n := range wantSrc {
				if st.SourceCounts[src] != n {
					t.Fatalf("chunk %d source %q = %d, want %d", k, src, st.SourceCounts[src], n)
				}
			}
			if st.ThemeCounts["weather"] != end-start || st.PrimaryThemeCounts["weather"] != end-start {
				t.Fatalf("chunk %d themes = %v / %v", k, st.ThemeCounts, st.PrimaryThemeCounts)
			}
			fs, ok := st.Fields["temperature"]
			if !ok || fs.NonNull != end-start || fs.Num != end-start {
				t.Fatalf("chunk %d temperature stats = %+v (present %v)", k, fs, ok)
			}
			if fs.Min != wantMin || fs.Max != wantMax || math.Abs(fs.Sum-wantSum) > 1e-9 {
				t.Fatalf("chunk %d temperature frame = %+v, want sum=%v min=%v max=%v", k, fs, wantSum, wantMin, wantMax)
			}
		}
		// Event payloads must decode identically in both versions.
		pes, _, err := info.ReadRangeCached(nil, 0, info.Count)
		if err != nil {
			t.Fatalf("v%d read: %v", tc.version, err)
		}
		if len(pes) != len(events) {
			t.Fatalf("v%d read %d events, want %d", tc.version, len(pes), len(events))
		}
		for i, pe := range pes {
			if pe.Seq != events[i].Seq {
				t.Fatalf("v%d event %d seq = %d, want %d", tc.version, i, pe.Seq, events[i].Seq)
			}
			sameTuple(t, pe.Tuple, events[i].Tuple)
		}
	}
}

func TestParseSegmentFileName(t *testing.T) {
	for name, want := range map[string]int{
		"seg-00000001.seg": 1,
		"seg-123.seg":      123,
		"seg-0.seg":        0,
	} {
		if got, err := ParseSegmentFileName(name); err != nil || got != want {
			t.Errorf("%q = %d, %v; want %d", name, got, err, want)
		}
	}
	for _, name := range []string{
		"seg-.seg",       // no digits
		"seg-12.seg.seg", // the old Sscanf parse read this as gen 12
		"seg-12x.seg",    // trailing garbage inside the number
		"seg-1.2.seg",    // not an integer
		"12.seg",         // missing prefix
		"seg-12",         // missing suffix
		"seg--1.seg",     // sign is garbage, gens are non-negative
	} {
		if gen, err := ParseSegmentFileName(name); err == nil {
			t.Errorf("%q parsed as gen %d, want error", name, gen)
		}
	}
}

func TestListSegmentsRejectsCorruptNames(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSegment(filepath.Join(dir, SegmentFileName(3)), []Event{wEvent(1, 0, 20, "a")}); err != nil {
		t.Fatal(err)
	}
	if _, next, err := ListSegments(dir); err != nil || next != 4 {
		t.Fatalf("clean dir: next=%d err=%v", next, err)
	}
	// A mangled name used to be half-parsed (or silently treated as gen 0),
	// which mis-scopes retention watermarks; now the listing fails loudly.
	if err := os.WriteFile(filepath.Join(dir, "seg-3extra.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ListSegments(dir); err == nil {
		t.Fatal("corrupt segment name must fail the listing")
	}
}
