package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"streamloader/internal/stt"
)

// Segment file layout:
//
//	[8]  magic "SLSEG001" (v1), "SLSEG002" (v2) or "SLSEG003" (v3)
//	[4]  header length          [4] header CRC32C
//	[..] header JSON            (counts, keys, dictionaries, sparse index)
//	[..] seq block              count × 8-byte little-endian warehouse seqs
//	[..] event block            events in (time, seq) order, chunked
//
// The header carries everything the warehouse keeps in RAM for a spilled
// segment; the seq block lets recovery dedupe WAL records against the file
// without touching a payload; the event block is cut into chunks of
// IndexEvery events, each with its own CRC and byte offset in the sparse
// index, so a time-window read decodes only the chunks that can overlap.
//
// v2 additionally carries per-chunk stats in each sparse-index entry — the
// chunk's max event time, per-source / per-theme / primary-theme counts and
// per-field numeric summaries — so aggregate pushdown can answer individual
// chunks without decoding them. v1 and v2 encode chunk events row-wise
// (one self-describing record per event, see codec.go).
//
// v3 keeps the v2 framing and header (chunk-stats pushdown included) but
// encodes each chunk column-wise: a fixed order of length-prefixed column
// sections — delta-of-delta times, delta seqs, RLE schema ids, raw float
// lat/lon streams, dictionary+RLE theme/source/string columns, and one
// typed column per payload position (colcodec.go documents the exact
// order). Each section wears its byte length, so projected reads
// (ReadRangeProjected with a ColumnMask) skip the columns a query does not
// touch and materialize rows only for events that survive filtering. All
// three versions keep decoding forever; writers choose with
// WriteSegmentVersion / Config.SegmentFormat.

var (
	segMagicV1 = []byte("SLSEG001")
	segMagicV2 = []byte("SLSEG002")
	segMagicV3 = []byte("SLSEG003")
)

// Segment format versions WriteSegmentVersion accepts. Latest is what
// WriteSegment writes; older versions stay writable so mixed-version stores
// can be constructed deliberately (tests, staged rollouts).
const (
	SegmentV1            = 1
	SegmentV2            = 2
	SegmentV3            = 3
	SegmentVersionLatest = SegmentV3
)

// SupportedSegmentFormats names the formats this build reads and writes,
// for error messages and CLI validation.
func SupportedSegmentFormats() string {
	return fmt.Sprintf("%d..%d", SegmentV1, SegmentVersionLatest)
}

// ValidateSegmentFormat rejects segment format versions this build cannot
// write. 0 is accepted as "latest" (the Config.SegmentFormat default).
func ValidateSegmentFormat(v int) error {
	if v == 0 || (v >= SegmentV1 && v <= SegmentVersionLatest) {
		return nil
	}
	return fmt.Errorf("persist: unknown segment format %d (supported: %s, or 0 for latest)",
		v, SupportedSegmentFormats())
}

// IndexEvery is the sparse-index granule: one index entry (and one CRC'd
// chunk) per this many events.
const IndexEvery = 256

// SparseEntry locates one chunk of a segment's event block.
type SparseEntry struct {
	Pos  int       // ordinal of the chunk's first event
	Time time.Time // that event's time (chunk-local minimum)
	Off  int64     // byte offset of the chunk within the event block
	CRC  uint32    // checksum of the chunk's bytes
	// Stats carries the chunk's aggregate summary in v2 files; nil in v1
	// files, which disables the per-chunk aggregate fast path (reads are
	// unaffected).
	Stats *ChunkStats
}

// FieldStats summarizes one payload field over one chunk, with exactly the
// contribution semantics the warehouse aggregate engine uses: NonNull is
// the COUNT(field) contribution (value present and non-null), and the
// Num/Sum/Min/Max frame folds the chunk's numeric values so SUM/AVG/MIN/MAX
// can absorb the whole chunk without decoding it. Min/Max are meaningful
// only when Num > 0.
type FieldStats struct {
	NonNull int
	Num     int
	Sum     float64
	Min     float64
	Max     float64
	// NonFinite counts numeric values excluded from the Num/Sum/Min/Max
	// frame because they are NaN or ±Inf (JSON cannot carry them and no
	// finite frame can absorb them). When NonFinite > 0 the frame is a
	// partial view and SUM/AVG/MIN/MAX pushdown must decode the chunk;
	// NonNull stays exact regardless.
	NonFinite int
}

// ChunkStats is the per-chunk aggregate summary a v2 sparse-index entry
// carries. Together with the entry's Time (the chunk's minimum event time)
// it gives the chunk a full time envelope plus the same count maps the file
// header carries for the whole segment, one level down.
type ChunkStats struct {
	// MaxTime is the chunk's maximum event time (events are (time, seq)
	// sorted, so this is the last event's time).
	MaxTime time.Time
	// SourceCounts counts the chunk's events per source (empty sources
	// uncounted; the remainder is exactly them).
	SourceCounts map[string]int
	// ThemeCounts counts events *matching* each theme — primary tag plus
	// every schema theme — mirroring the header's matchTheme cardinality.
	ThemeCounts map[string]int
	// PrimaryThemeCounts counts events by primary Theme tag alone.
	PrimaryThemeCounts map[string]int
	// Fields summarizes each payload field seen in the chunk.
	Fields map[string]FieldStats
}

type fieldStatsJSON struct {
	NonNull   int     `json:"nn"`
	Num       int     `json:"n,omitempty"`
	Sum       float64 `json:"sum,omitempty"`
	Min       float64 `json:"min,omitempty"`
	Max       float64 `json:"max,omitempty"`
	NonFinite int     `json:"nf,omitempty"`
}

type sparseJSON struct {
	Pos     int    `json:"pos"`
	UnixSec int64  `json:"unix_sec"`
	Nanos   int    `json:"nanos"`
	Off     int64  `json:"off"`
	CRC     uint32 `json:"crc"`

	// v2 chunk stats; absent from v1 files. Decoding is gated on the file
	// magic, not on field presence, so a v2 chunk with empty maps still
	// gets a non-nil ChunkStats.
	MaxSec   int64                     `json:"max_sec,omitempty"`
	MaxNanos int                       `json:"max_nanos,omitempty"`
	Sources  map[string]int            `json:"sources,omitempty"`
	Themes   map[string]int            `json:"themes,omitempty"`
	Primary  map[string]int            `json:"primary,omitempty"`
	Fields   map[string]fieldStatsJSON `json:"fields,omitempty"`
}

type segHeaderJSON struct {
	Count        int            `json:"count"`
	Head         keyJSON        `json:"head"`
	Tail         keyJSON        `json:"tail"`
	SourceCounts map[string]int `json:"source_counts"`
	ThemeCounts  map[string]int `json:"theme_counts"`
	// PrimaryThemeCounts counts events by their primary Theme tag alone —
	// ThemeCounts additionally credits every schema theme, so it answers
	// "matches theme t" but not "is tagged t". Aggregate group-by-theme
	// pushdown needs the latter. Files written before this field existed
	// decode with it nil, which disables that one fast path for the file.
	PrimaryThemeCounts map[string]int `json:"primary_theme_counts"`
	Schemas            []schemaJSON   `json:"schemas"`
	Sparse             []sparseJSON   `json:"sparse"`
	EventBytes         int64          `json:"event_bytes"`
}

// SegmentInfo is the in-RAM face of one on-disk segment file: the time/seq
// envelope, index dictionaries and sparse index — everything queries need
// to prune, plus what they need to read the overlap when they cannot.
type SegmentInfo struct {
	Path string
	// Version is the file's format version (SegmentV1..SegmentV3).
	Version int
	Count   int
	// Head and Tail are the keys of the first and last event in (time,
	// seq) order; [Head.Time, Tail.Time] is the segment's time envelope.
	Head, Tail   Key
	SourceCounts map[string]int
	ThemeCounts  map[string]int
	// PrimaryThemeCounts counts events by primary Theme tag only (empty
	// themes uncounted); nil when the file predates the field.
	PrimaryThemeCounts map[string]int
	Sparse             []SparseEntry
	Bytes              int64 // whole-file size

	schemas  []*stt.Schema
	dict     map[uint64]*stt.Schema // id -> schema, shared by every read
	eventOff int64                  // absolute offset of the event block

	// fieldPos memoizes fieldPositions lookups (v3 projected value reads).
	fieldPosMu sync.Mutex
	fieldPos   map[string][]int
}

// buildDict materializes the id->schema decode dictionary once, so reads
// do not rebuild a map per call.
func (si *SegmentInfo) buildDict() {
	si.dict = make(map[uint64]*stt.Schema, len(si.schemas))
	for i, s := range si.schemas {
		si.dict[uint64(i)] = s
	}
}

func timeToKeyJSON(k Key) keyJSON {
	return keyJSON{UnixSec: k.Time.Unix(), Nanos: k.Time.Nanosecond(), Seq: k.Seq, Set: true}
}

func keyFromJSON(j keyJSON) Key {
	return Key{Time: time.Unix(j.UnixSec, int64(j.Nanos)).UTC(), Seq: j.Seq}
}

// WriteSegment writes events — which must already be in (time, seq) order
// and non-empty — to path via a temp file, fsyncing file and directory
// before the rename publishes it. It writes the latest format version.
func WriteSegment(path string, events []Event) (*SegmentInfo, error) {
	return WriteSegmentVersion(path, events, SegmentVersionLatest)
}

// WriteSegmentVersion is WriteSegment pinned to an explicit format version:
// SegmentV3 (the default) encodes chunks column-wise for projected decode,
// SegmentV2 writes row-encoded chunks with per-chunk stats, SegmentV1 the
// legacy row format — so mixed-version stores can be constructed on purpose.
func WriteSegmentVersion(path string, events []Event, version int) (*SegmentInfo, error) {
	if version < SegmentV1 || version > SegmentVersionLatest {
		return nil, fmt.Errorf("persist: unknown segment version %d (supported: %s)",
			version, SupportedSegmentFormats())
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("persist: refusing to write empty segment")
	}
	dict := newSchemaDict()
	info := &SegmentInfo{
		Path:               path,
		Version:            version,
		Count:              len(events),
		Head:               Key{Time: events[0].Tuple.Time, Seq: events[0].Seq},
		Tail:               Key{Time: events[len(events)-1].Tuple.Time, Seq: events[len(events)-1].Seq},
		SourceCounts:       map[string]int{},
		ThemeCounts:        map[string]int{},
		PrimaryThemeCounts: map[string]int{},
	}

	// Event block, chunked at IndexEvery events: columnar chunks for v3,
	// row-encoded for v1/v2.
	var block []byte
	if version >= SegmentV3 {
		var scratch []byte
		for start := 0; start < len(events); start += IndexEvery {
			end := min(start+IndexEvery, len(events))
			info.Sparse = append(info.Sparse, SparseEntry{
				Pos: start, Time: events[start].Tuple.Time, Off: int64(len(block)),
			})
			block = appendChunkV3(block, events[start:end], dict, &scratch)
			e := &info.Sparse[len(info.Sparse)-1]
			e.CRC = checksum(block[e.Off:])
		}
	} else {
		for i, ev := range events {
			if i%IndexEvery == 0 {
				if i > 0 {
					prev := &info.Sparse[len(info.Sparse)-1]
					prev.CRC = checksum(block[prev.Off:])
				}
				info.Sparse = append(info.Sparse, SparseEntry{
					Pos: i, Time: ev.Tuple.Time, Off: int64(len(block)),
				})
			}
			id, _ := dict.id(ev.Tuple.Schema)
			block = appendEvent(block, ev, id)
		}
		last := &info.Sparse[len(info.Sparse)-1]
		last.CRC = checksum(block[last.Off:])
	}
	for _, ev := range events {
		t := ev.Tuple
		if t.Source != "" {
			info.SourceCounts[t.Source]++
		}
		if t.Theme != "" {
			info.ThemeCounts[t.Theme]++
			info.PrimaryThemeCounts[t.Theme]++
		}
		for _, theme := range t.Schema.Themes {
			if theme != t.Theme {
				info.ThemeCounts[theme]++
			}
		}
	}
	if version >= SegmentV2 {
		for k := range info.Sparse {
			start := info.Sparse[k].Pos
			end := len(events)
			if k+1 < len(info.Sparse) {
				end = info.Sparse[k+1].Pos
			}
			info.Sparse[k].Stats = chunkStatsFor(events[start:end])
		}
	}
	info.schemas = dict.order
	info.buildDict()

	hdr := segHeaderJSON{
		Count:              info.Count,
		Head:               timeToKeyJSON(info.Head),
		Tail:               timeToKeyJSON(info.Tail),
		SourceCounts:       info.SourceCounts,
		ThemeCounts:        info.ThemeCounts,
		PrimaryThemeCounts: info.PrimaryThemeCounts,
		EventBytes:         int64(len(block)),
	}
	for _, s := range dict.order {
		hdr.Schemas = append(hdr.Schemas, encodeSchema(s))
	}
	for _, e := range info.Sparse {
		sj := sparseJSON{
			Pos: e.Pos, UnixSec: e.Time.Unix(), Nanos: e.Time.Nanosecond(),
			Off: e.Off, CRC: e.CRC,
		}
		if st := e.Stats; st != nil {
			sj.MaxSec, sj.MaxNanos = st.MaxTime.Unix(), st.MaxTime.Nanosecond()
			sj.Sources = st.SourceCounts
			sj.Themes = st.ThemeCounts
			sj.Primary = st.PrimaryThemeCounts
			if len(st.Fields) > 0 {
				sj.Fields = make(map[string]fieldStatsJSON, len(st.Fields))
				for name, fs := range st.Fields {
					sj.Fields[name] = fieldStatsJSON{
						NonNull: fs.NonNull, Num: fs.Num,
						Sum: fs.Sum, Min: fs.Min, Max: fs.Max,
						NonFinite: fs.NonFinite,
					}
				}
			}
		}
		hdr.Sparse = append(hdr.Sparse, sj)
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}

	magic := segMagicV1
	switch {
	case version >= SegmentV3:
		magic = segMagicV3
	case version >= SegmentV2:
		magic = segMagicV2
	}
	buf := make([]byte, 0, len(magic)+8+len(hdrBytes)+8*len(events)+len(block))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdrBytes)))
	buf = binary.LittleEndian.AppendUint32(buf, checksum(hdrBytes))
	buf = append(buf, hdrBytes...)
	for _, ev := range events {
		buf = binary.LittleEndian.AppendUint64(buf, ev.Seq)
	}
	info.eventOff = int64(len(buf))
	buf = append(buf, block...)
	info.Bytes = int64(len(buf))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return info, nil
}

// chunkStatsFor summarizes one chunk's events (already in (time, seq)
// order) for the v2 sparse index.
func chunkStatsFor(events []Event) *ChunkStats {
	cs := &ChunkStats{
		MaxTime:            events[len(events)-1].Tuple.Time,
		SourceCounts:       map[string]int{},
		ThemeCounts:        map[string]int{},
		PrimaryThemeCounts: map[string]int{},
		Fields:             map[string]FieldStats{},
	}
	for _, ev := range events {
		t := ev.Tuple
		if t.Source != "" {
			cs.SourceCounts[t.Source]++
		}
		if t.Theme != "" {
			cs.ThemeCounts[t.Theme]++
			cs.PrimaryThemeCounts[t.Theme]++
		}
		for _, theme := range t.Schema.Themes {
			if theme != t.Theme {
				cs.ThemeCounts[theme]++
			}
		}
		for i, n := 0, t.Schema.NumFields(); i < n && i < len(t.Values); i++ {
			v := t.Values[i]
			if v.IsNull() {
				continue
			}
			name := t.Schema.Field(i).Name
			fs := cs.Fields[name]
			fs.NonNull++
			if v.Kind().Numeric() {
				f := v.AsFloat()
				if math.IsNaN(f) || math.IsInf(f, 0) {
					// NaN/Inf cannot ride in the JSON frame; count it so
					// pushdown knows the frame is partial.
					fs.NonFinite++
				} else {
					if fs.Num == 0 {
						fs.Min, fs.Max = f, f
					} else {
						fs.Min = math.Min(fs.Min, f)
						fs.Max = math.Max(fs.Max, f)
					}
					fs.Num++
					fs.Sum += f
				}
			}
			cs.Fields[name] = fs
		}
	}
	for name, fs := range cs.Fields {
		if math.IsInf(fs.Sum, 0) {
			// Finite values can still overflow their sum; poison the frame.
			fs.NonFinite += fs.Num
			fs.Num, fs.Sum, fs.Min, fs.Max = 0, 0, 0, 0
			cs.Fields[name] = fs
		}
	}
	return cs
}

// OpenSegment reads a segment file's header and seq block — but no event
// payloads. The seqs are returned separately so recovery can dedupe WAL
// records against the file and then let them go.
func OpenSegment(path string) (*SegmentInfo, []uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}

	fixed := make([]byte, len(segMagicV1)+8)
	if _, err := io.ReadFull(f, fixed); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: short header: %w", path, err)
	}
	var version int
	switch string(fixed[:len(segMagicV1)]) {
	case string(segMagicV1):
		version = SegmentV1
	case string(segMagicV2):
		version = SegmentV2
	case string(segMagicV3):
		version = SegmentV3
	default:
		return nil, nil, fmt.Errorf("persist: %s: unknown segment magic %q (this build reads %q..%q, versions %s)",
			path, fixed[:len(segMagicV1)], segMagicV1, segMagicV3, SupportedSegmentFormats())
	}
	hdrLen := int(binary.LittleEndian.Uint32(fixed[len(segMagicV1):]))
	hdrCRC := binary.LittleEndian.Uint32(fixed[len(segMagicV1)+4:])
	if int64(hdrLen) > st.Size() {
		return nil, nil, fmt.Errorf("persist: %s: header length %d exceeds file", path, hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(f, hdrBytes); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: short header: %w", path, err)
	}
	if checksum(hdrBytes) != hdrCRC {
		return nil, nil, fmt.Errorf("persist: %s: header checksum mismatch", path)
	}
	var hdr segHeaderJSON
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: bad header: %w", path, err)
	}

	info := &SegmentInfo{
		Path:               path,
		Version:            version,
		Count:              hdr.Count,
		Head:               keyFromJSON(hdr.Head),
		Tail:               keyFromJSON(hdr.Tail),
		SourceCounts:       hdr.SourceCounts,
		ThemeCounts:        hdr.ThemeCounts,
		PrimaryThemeCounts: hdr.PrimaryThemeCounts, // nil for legacy files
		Bytes:              st.Size(),
	}
	if info.SourceCounts == nil {
		info.SourceCounts = map[string]int{}
	}
	if info.ThemeCounts == nil {
		info.ThemeCounts = map[string]int{}
	}
	for _, sj := range hdr.Schemas {
		s, err := globalInterner.intern(sj)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: %s: %w", path, err)
		}
		info.schemas = append(info.schemas, s)
	}
	for _, e := range hdr.Sparse {
		entry := SparseEntry{
			Pos: e.Pos, Time: time.Unix(e.UnixSec, int64(e.Nanos)).UTC(),
			Off: e.Off, CRC: e.CRC,
		}
		if version >= SegmentV2 {
			st := &ChunkStats{
				MaxTime:            time.Unix(e.MaxSec, int64(e.MaxNanos)).UTC(),
				SourceCounts:       e.Sources,
				ThemeCounts:        e.Themes,
				PrimaryThemeCounts: e.Primary,
			}
			if len(e.Fields) > 0 {
				st.Fields = make(map[string]FieldStats, len(e.Fields))
				for name, fj := range e.Fields {
					st.Fields[name] = FieldStats{
						NonNull: fj.NonNull, Num: fj.Num,
						Sum: fj.Sum, Min: fj.Min, Max: fj.Max,
						NonFinite: fj.NonFinite,
					}
				}
			}
			entry.Stats = st
		}
		info.Sparse = append(info.Sparse, entry)
	}

	seqBytes := make([]byte, 8*hdr.Count)
	if _, err := io.ReadFull(f, seqBytes); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: short seq block: %w", path, err)
	}
	seqs := make([]uint64, hdr.Count)
	for i := range seqs {
		seqs[i] = binary.LittleEndian.Uint64(seqBytes[8*i:])
	}
	info.eventOff = int64(len(segMagicV1)) + 8 + int64(hdrLen) + int64(8*hdr.Count)
	if info.eventOff+hdr.EventBytes != st.Size() {
		return nil, nil, fmt.Errorf("persist: %s: event block size mismatch", path)
	}
	if info.Count > 0 && len(info.Sparse) == 0 {
		return nil, nil, fmt.Errorf("persist: %s: missing sparse index", path)
	}
	info.buildDict()
	return info, seqs, nil
}

// WindowPositions returns the conservative [lo, hi) event-ordinal range
// whose chunks can hold events in the [from, to) window, resolved on the
// sparse index alone. Callers re-filter exactly; events outside the window
// only cost their decode.
func (si *SegmentInfo) WindowPositions(from, to time.Time) (int, int) {
	lo, hi := 0, si.Count
	if !from.IsZero() {
		// Skip chunks that end strictly before from: chunk k's events are
		// all <= the next chunk's start time.
		k := 0
		for k+1 < len(si.Sparse) && si.Sparse[k+1].Time.Before(from) {
			k++
		}
		lo = si.Sparse[k].Pos
	}
	if !to.IsZero() {
		k := len(si.Sparse)
		for k > 0 && !si.Sparse[k-1].Time.Before(to) {
			k--
		}
		if k < len(si.Sparse) {
			hi = si.Sparse[k].Pos
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// NumChunks returns how many chunks the event block is cut into.
func (si *SegmentInfo) NumChunks() int { return len(si.Sparse) }

// ChunkRange returns chunk k's event-ordinal range [start, end).
func (si *SegmentInfo) ChunkRange(k int) (start, end int) {
	start = si.Sparse[k].Pos
	end = si.Count
	if k+1 < len(si.Sparse) {
		end = si.Sparse[k+1].Pos
	}
	return start, end
}

// ReadStats reports how one read was served: chunks found decoded in the
// cache versus chunks read back from disk, plus — on the v3 projected
// path — how much column skipping saved.
type ReadStats struct {
	CacheHits   int
	CacheMisses int
	// ColumnsSkipped counts column sections a projected v3 decode skipped
	// over instead of parsing. Zero for v1/v2 reads and cache hits.
	ColumnsSkipped int
	// BytesDecoded is how many event-block bytes actual decodes parsed:
	// whole chunks for v1/v2, only the projected sections for v3. Cache
	// hits contribute nothing.
	BytesDecoded int64
}

// readBufPool recycles the scratch buffers chunk reads land in. Decoded
// events copy every byte they keep (strings included), so a buffer can be
// reused the moment its decode finishes; the pool turns the per-read block
// allocation — the dominant alloc on the spilled-select path — into a
// steady-state no-op.
var readBufPool = sync.Pool{New: func() any { return new([]byte) }}

// chunkSpan returns the [first, last] chunk range covering event ordinals
// [lo, hi).
func (si *SegmentInfo) chunkSpan(lo, hi int) (int, int) {
	first := 0
	for first+1 < len(si.Sparse) && si.Sparse[first+1].Pos <= lo {
		first++
	}
	last := first
	for last+1 < len(si.Sparse) && si.Sparse[last+1].Pos < hi {
		last++
	}
	return first, last
}

// chunkBounds returns chunk k's event-ordinal range and its byte range
// within the event block.
func (si *SegmentInfo) chunkBounds(k int) (posStart, posEnd int, offStart, offEnd int64) {
	posStart, offStart = si.Sparse[k].Pos, si.Sparse[k].Off
	posEnd, offEnd = si.Count, si.Bytes-si.eventOff
	if k+1 < len(si.Sparse) {
		posEnd, offEnd = si.Sparse[k+1].Pos, si.Sparse[k+1].Off
	}
	return posStart, posEnd, offStart, offEnd
}

// ReadRange decodes the events with ordinals [lo, hi), reading only the
// chunks that span the range and verifying each chunk's checksum.
func (si *SegmentInfo) ReadRange(lo, hi int) ([]Event, error) {
	evs, _, err := si.ReadRangeCached(nil, lo, hi)
	return evs, err
}

// ReadRangeCached is ReadRange through a chunk cache: chunks already
// decoded in the cache are reused, and only the missing stretches touch the
// disk — each contiguous run of misses as a single pread into a pooled
// buffer. A nil cache reads everything. The returned events may be shared
// with other readers and must not be mutated.
func (si *SegmentInfo) ReadRangeCached(cache *ChunkCache, lo, hi int) ([]Event, ReadStats, error) {
	if si.Version >= SegmentV3 {
		return si.readRangeV3(cache, lo, hi, FullProjection)
	}
	var rs ReadStats
	if lo < 0 || hi > si.Count || lo >= hi {
		if lo == hi {
			return nil, rs, nil
		}
		return nil, rs, fmt.Errorf("persist: %s: bad range [%d, %d) of %d", si.Path, lo, hi, si.Count)
	}
	first, last := si.chunkSpan(lo, hi)
	chunks := make([][]Event, last-first+1)
	if cache != nil {
		for k := first; k <= last; k++ {
			if v, ok := cache.get(chunkKey{si.Path, k}); ok {
				if evs, ok := v.([]Event); ok {
					chunks[k-first] = evs
					rs.CacheHits++
					continue
				}
			}
			rs.CacheMisses++
		}
	} else {
		rs.CacheMisses = last - first + 1
	}

	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for k := first; k <= last; k++ {
		if chunks[k-first] != nil {
			continue
		}
		end := k
		for end+1 <= last && chunks[end+1-first] == nil {
			end++
		}
		if f == nil {
			var err error
			if f, err = os.Open(si.Path); err != nil {
				return nil, rs, err
			}
		}
		if err := si.readChunks(f, cache, k, end, chunks[k-first:end+1-first], &rs); err != nil {
			return nil, rs, err
		}
		k = end
	}

	out := make([]Event, 0, hi-lo)
	for idx, evs := range chunks {
		posStart, posEnd, _, _ := si.chunkBounds(first + idx)
		a, b := max(lo, posStart), min(hi, posEnd)
		if a < b {
			out = append(out, evs[a-posStart:b-posStart]...)
		}
	}
	return out, rs, nil
}

// readChunks reads and decodes chunks [k, end] with one pread, verifying
// each chunk's checksum, storing the per-chunk event slices into dst and —
// when a cache is supplied — inserting each decoded chunk into it.
func (si *SegmentInfo) readChunks(f *os.File, cache *ChunkCache, k, end int, dst [][]Event, rs *ReadStats) error {
	_, _, startOff, _ := si.chunkBounds(k)
	_, _, _, endOff := si.chunkBounds(end)
	bufp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bufp)
	need := int(endOff - startOff)
	if cap(*bufp) < need {
		*bufp = make([]byte, need)
	}
	block := (*bufp)[:need]
	if _, err := f.ReadAt(block, si.eventOff+startOff); err != nil {
		return fmt.Errorf("persist: %s: reading events: %w", si.Path, err)
	}
	for c := k; c <= end; c++ {
		posStart, posEnd, cOff, cEnd := si.chunkBounds(c)
		chunk := block[cOff-startOff : cEnd-startOff]
		if checksum(chunk) != si.Sparse[c].CRC {
			return fmt.Errorf("persist: %s: chunk %d checksum mismatch", si.Path, c)
		}
		d := &decoder{data: chunk}
		evs := make([]Event, 0, posEnd-posStart)
		for pos := posStart; pos < posEnd; pos++ {
			ev := d.event(si.dict)
			if d.err != nil {
				return fmt.Errorf("persist: %s: decoding event %d: %w", si.Path, pos, d.err)
			}
			evs = append(evs, ev)
		}
		rs.BytesDecoded += cEnd - cOff
		dst[c-k] = evs
		if cache != nil {
			cache.put(chunkKey{si.Path, c}, evs, cEnd-cOff)
		}
	}
	return nil
}

// ReadRangeProjected is ReadRangeCached restricted to the columns proj
// names. On v3 files only those columns are decoded — skipped sections are
// counted in ReadStats.ColumnsSkipped — and the returned events carry zero
// values for unprojected columns. v1/v2 files have no column structure, so
// the projection is ignored and the read is a full ReadRangeCached; callers
// therefore always get a superset of what they asked for. The returned
// events may be shared with other readers and must not be mutated.
func (si *SegmentInfo) ReadRangeProjected(cache *ChunkCache, lo, hi int, proj Projection) ([]Event, ReadStats, error) {
	if si.Version >= SegmentV3 {
		return si.readRangeV3(cache, lo, hi, proj)
	}
	return si.ReadRangeCached(cache, lo, hi)
}

// readRangeV3 is the v3 read path: per chunk, consult the cache for decoded
// columns covering the projection, decode (only) the projected sections of
// the chunks that miss — one pread per contiguous miss run — and merge
// fresh columns into whatever the cache already held for the chunk.
func (si *SegmentInfo) readRangeV3(cache *ChunkCache, lo, hi int, proj Projection) ([]Event, ReadStats, error) {
	var rs ReadStats
	if lo < 0 || hi > si.Count || lo >= hi {
		if lo == hi {
			return nil, rs, nil
		}
		return nil, rs, fmt.Errorf("persist: %s: bad range [%d, %d) of %d", si.Path, lo, hi, si.Count)
	}
	first, last := si.chunkSpan(lo, hi)
	chunks := make([]*colChunk, last-first+1)
	partial := make([]*colChunk, last-first+1) // cached but missing projected columns
	if cache != nil {
		for k := first; k <= last; k++ {
			if v, ok := cache.get(chunkKey{si.Path, k}); ok {
				if cc, ok := v.(*colChunk); ok {
					if cc.covers(proj, si) {
						chunks[k-first] = cc
						rs.CacheHits++
						continue
					}
					partial[k-first] = cc
				}
			}
			rs.CacheMisses++
		}
	} else {
		rs.CacheMisses = last - first + 1
	}

	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for k := first; k <= last; k++ {
		if chunks[k-first] != nil {
			continue
		}
		end := k
		for end+1 <= last && chunks[end+1-first] == nil {
			end++
		}
		if f == nil {
			var err error
			if f, err = os.Open(si.Path); err != nil {
				return nil, rs, err
			}
		}
		if err := si.readChunksV3(f, cache, k, end, proj,
			partial[k-first:end+1-first], chunks[k-first:end+1-first], &rs); err != nil {
			return nil, rs, err
		}
		k = end
	}

	out := make([]Event, 0, hi-lo)
	full := proj.full()
	for idx, cc := range chunks {
		posStart, posEnd, _, _ := si.chunkBounds(first + idx)
		a, b := max(lo, posStart), min(hi, posEnd)
		if a < b {
			out = append(out, cc.materialize(a-posStart, b-posStart, full)...)
		}
	}
	return out, rs, nil
}

// readChunksV3 reads chunks [k, end] with one pread and decodes each one's
// projected columns, merging with any partially-cached columns and storing
// the (possibly widened) column sets back into the cache.
func (si *SegmentInfo) readChunksV3(f *os.File, cache *ChunkCache, k, end int, proj Projection, partial, dst []*colChunk, rs *ReadStats) error {
	_, _, startOff, _ := si.chunkBounds(k)
	_, _, _, endOff := si.chunkBounds(end)
	bufp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bufp)
	need := int(endOff - startOff)
	if cap(*bufp) < need {
		*bufp = make([]byte, need)
	}
	block := (*bufp)[:need]
	if _, err := f.ReadAt(block, si.eventOff+startOff); err != nil {
		return fmt.Errorf("persist: %s: reading events: %w", si.Path, err)
	}
	rowsDirect := cache == nil && proj.full()
	for c := k; c <= end; c++ {
		posStart, posEnd, cOff, cEnd := si.chunkBounds(c)
		chunk := block[cOff-startOff : cEnd-startOff]
		if checksum(chunk) != si.Sparse[c].CRC {
			return fmt.Errorf("persist: %s: chunk %d checksum mismatch", si.Path, c)
		}
		if rowsDirect {
			// Nothing to cache: decode straight into rows, skipping the
			// columnar intermediates (they'd be garbage the moment the rows
			// materialize).
			evs, decoded, err := si.decodeChunkRowsV3(chunk, posEnd-posStart)
			if err != nil {
				return fmt.Errorf("persist: %s: decoding chunk %d: %w", si.Path, c, err)
			}
			rs.BytesDecoded += decoded
			cc := &colChunk{n: posEnd - posStart, mask: ColAll, allVals: true}
			cc.rows.Store(&evs)
			dst[c-k] = cc
			continue
		}
		cc, cd, err := si.decodeChunkV3(chunk, posEnd-posStart, proj)
		if err != nil {
			return fmt.Errorf("persist: %s: decoding chunk %d: %w", si.Path, c, err)
		}
		rs.ColumnsSkipped += cd.skipped
		rs.BytesDecoded += cd.decoded
		if p := partial[c-k]; p != nil {
			cc = p.merge(cc)
		}
		dst[c-k] = cc
		if cache != nil {
			cache.update(chunkKey{si.Path, c}, cc, cEnd-cOff)
		}
	}
	return nil
}

// ReadAll decodes every event in the file.
func (si *SegmentInfo) ReadAll() ([]Event, error) { return si.ReadRange(0, si.Count) }

// Remove deletes the segment file.
func (si *SegmentInfo) Remove() error {
	err := os.Remove(si.Path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// ListSegments returns the segment files in dir in generation order, plus
// the next free generation number. A file that wears the .seg suffix but
// whose name does not parse as a generation is an error, not a skip: its
// events would otherwise be silently invisible, and a garbled name means
// something outside this package has touched the directory.
func ListSegments(dir string) ([]string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 1, nil
		}
		return nil, 0, err
	}
	var files []string
	next := 1
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-spill can strand a temp file; it was never
			// published, so clear it out.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		n, err := ParseSegmentFileName(name)
		if err != nil {
			return nil, 0, err
		}
		files = append(files, filepath.Join(dir, name))
		if n >= next {
			next = n + 1
		}
	}
	return files, next, nil
}

// SegmentFileName names generation n's segment file.
func SegmentFileName(n int) string { return fmt.Sprintf("seg-%08d.seg", n) }

// ParseSegmentFileName extracts the generation from a segment file name,
// strictly: "seg-" + decimal digits + ".seg", nothing more. (Sscanf-style
// parsing would accept trailing garbage like "seg-12.seg.seg" as gen 12,
// then apply the wrong retention watermark to the file at recovery.)
func ParseSegmentFileName(name string) (int, error) {
	digits, ok := strings.CutPrefix(name, "seg-")
	if ok {
		digits, ok = strings.CutSuffix(digits, ".seg")
	}
	if !ok || digits == "" {
		return 0, fmt.Errorf("persist: bad segment file name %q (want seg-<gen>.seg)", name)
	}
	n := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("persist: bad segment file name %q (want seg-<gen>.seg)", name)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}
