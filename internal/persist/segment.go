package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"streamloader/internal/stt"
)

// Segment file layout:
//
//	[8]  magic "SLSEG001"
//	[4]  header length          [4] header CRC32C
//	[..] header JSON            (counts, keys, dictionaries, sparse index)
//	[..] seq block              count × 8-byte little-endian warehouse seqs
//	[..] event block            events in (time, seq) order, chunked
//
// The header carries everything the warehouse keeps in RAM for a spilled
// segment; the seq block lets recovery dedupe WAL records against the file
// without touching a payload; the event block is cut into chunks of
// IndexEvery events, each with its own CRC and byte offset in the sparse
// index, so a time-window read decodes only the chunks that can overlap.

var segMagic = []byte("SLSEG001")

// IndexEvery is the sparse-index granule: one index entry (and one CRC'd
// chunk) per this many events.
const IndexEvery = 256

// SparseEntry locates one chunk of a segment's event block.
type SparseEntry struct {
	Pos  int       // ordinal of the chunk's first event
	Time time.Time // that event's time (chunk-local minimum)
	Off  int64     // byte offset of the chunk within the event block
	CRC  uint32    // checksum of the chunk's bytes
}

type sparseJSON struct {
	Pos     int    `json:"pos"`
	UnixSec int64  `json:"unix_sec"`
	Nanos   int    `json:"nanos"`
	Off     int64  `json:"off"`
	CRC     uint32 `json:"crc"`
}

type segHeaderJSON struct {
	Count        int            `json:"count"`
	Head         keyJSON        `json:"head"`
	Tail         keyJSON        `json:"tail"`
	SourceCounts map[string]int `json:"source_counts"`
	ThemeCounts  map[string]int `json:"theme_counts"`
	// PrimaryThemeCounts counts events by their primary Theme tag alone —
	// ThemeCounts additionally credits every schema theme, so it answers
	// "matches theme t" but not "is tagged t". Aggregate group-by-theme
	// pushdown needs the latter. Files written before this field existed
	// decode with it nil, which disables that one fast path for the file.
	PrimaryThemeCounts map[string]int `json:"primary_theme_counts"`
	Schemas            []schemaJSON   `json:"schemas"`
	Sparse             []sparseJSON   `json:"sparse"`
	EventBytes         int64          `json:"event_bytes"`
}

// SegmentInfo is the in-RAM face of one on-disk segment file: the time/seq
// envelope, index dictionaries and sparse index — everything queries need
// to prune, plus what they need to read the overlap when they cannot.
type SegmentInfo struct {
	Path  string
	Count int
	// Head and Tail are the keys of the first and last event in (time,
	// seq) order; [Head.Time, Tail.Time] is the segment's time envelope.
	Head, Tail   Key
	SourceCounts map[string]int
	ThemeCounts  map[string]int
	// PrimaryThemeCounts counts events by primary Theme tag only (empty
	// themes uncounted); nil when the file predates the field.
	PrimaryThemeCounts map[string]int
	Sparse             []SparseEntry
	Bytes              int64 // whole-file size

	schemas  []*stt.Schema
	dict     map[uint64]*stt.Schema // id -> schema, shared by every read
	eventOff int64                  // absolute offset of the event block
}

// buildDict materializes the id->schema decode dictionary once, so reads
// do not rebuild a map per call.
func (si *SegmentInfo) buildDict() {
	si.dict = make(map[uint64]*stt.Schema, len(si.schemas))
	for i, s := range si.schemas {
		si.dict[uint64(i)] = s
	}
}

func timeToKeyJSON(k Key) keyJSON {
	return keyJSON{UnixSec: k.Time.Unix(), Nanos: k.Time.Nanosecond(), Seq: k.Seq, Set: true}
}

func keyFromJSON(j keyJSON) Key {
	return Key{Time: time.Unix(j.UnixSec, int64(j.Nanos)).UTC(), Seq: j.Seq}
}

// WriteSegment writes events — which must already be in (time, seq) order
// and non-empty — to path via a temp file, fsyncing file and directory
// before the rename publishes it.
func WriteSegment(path string, events []Event) (*SegmentInfo, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("persist: refusing to write empty segment")
	}
	dict := newSchemaDict()
	info := &SegmentInfo{
		Path:               path,
		Count:              len(events),
		Head:               Key{Time: events[0].Tuple.Time, Seq: events[0].Seq},
		Tail:               Key{Time: events[len(events)-1].Tuple.Time, Seq: events[len(events)-1].Seq},
		SourceCounts:       map[string]int{},
		ThemeCounts:        map[string]int{},
		PrimaryThemeCounts: map[string]int{},
	}

	// Event block, chunked at IndexEvery events.
	var block []byte
	for i, ev := range events {
		if i%IndexEvery == 0 {
			if i > 0 {
				prev := &info.Sparse[len(info.Sparse)-1]
				prev.CRC = checksum(block[prev.Off:])
			}
			info.Sparse = append(info.Sparse, SparseEntry{
				Pos: i, Time: ev.Tuple.Time, Off: int64(len(block)),
			})
		}
		id, _ := dict.id(ev.Tuple.Schema)
		block = appendEvent(block, ev, id)

		t := ev.Tuple
		if t.Source != "" {
			info.SourceCounts[t.Source]++
		}
		if t.Theme != "" {
			info.ThemeCounts[t.Theme]++
			info.PrimaryThemeCounts[t.Theme]++
		}
		for _, theme := range t.Schema.Themes {
			if theme != t.Theme {
				info.ThemeCounts[theme]++
			}
		}
	}
	last := &info.Sparse[len(info.Sparse)-1]
	last.CRC = checksum(block[last.Off:])
	info.schemas = dict.order
	info.buildDict()

	hdr := segHeaderJSON{
		Count:              info.Count,
		Head:               timeToKeyJSON(info.Head),
		Tail:               timeToKeyJSON(info.Tail),
		SourceCounts:       info.SourceCounts,
		ThemeCounts:        info.ThemeCounts,
		PrimaryThemeCounts: info.PrimaryThemeCounts,
		EventBytes:         int64(len(block)),
	}
	for _, s := range dict.order {
		hdr.Schemas = append(hdr.Schemas, encodeSchema(s))
	}
	for _, e := range info.Sparse {
		hdr.Sparse = append(hdr.Sparse, sparseJSON{
			Pos: e.Pos, UnixSec: e.Time.Unix(), Nanos: e.Time.Nanosecond(),
			Off: e.Off, CRC: e.CRC,
		})
	}
	hdrBytes, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}

	buf := make([]byte, 0, len(segMagic)+8+len(hdrBytes)+8*len(events)+len(block))
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdrBytes)))
	buf = binary.LittleEndian.AppendUint32(buf, checksum(hdrBytes))
	buf = append(buf, hdrBytes...)
	for _, ev := range events {
		buf = binary.LittleEndian.AppendUint64(buf, ev.Seq)
	}
	info.eventOff = int64(len(buf))
	buf = append(buf, block...)
	info.Bytes = int64(len(buf))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return info, nil
}

// OpenSegment reads a segment file's header and seq block — but no event
// payloads. The seqs are returned separately so recovery can dedupe WAL
// records against the file and then let them go.
func OpenSegment(path string) (*SegmentInfo, []uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}

	fixed := make([]byte, len(segMagic)+8)
	if _, err := io.ReadFull(f, fixed); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: short header: %w", path, err)
	}
	if string(fixed[:len(segMagic)]) != string(segMagic) {
		return nil, nil, fmt.Errorf("persist: %s: bad magic", path)
	}
	hdrLen := int(binary.LittleEndian.Uint32(fixed[len(segMagic):]))
	hdrCRC := binary.LittleEndian.Uint32(fixed[len(segMagic)+4:])
	if int64(hdrLen) > st.Size() {
		return nil, nil, fmt.Errorf("persist: %s: header length %d exceeds file", path, hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(f, hdrBytes); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: short header: %w", path, err)
	}
	if checksum(hdrBytes) != hdrCRC {
		return nil, nil, fmt.Errorf("persist: %s: header checksum mismatch", path)
	}
	var hdr segHeaderJSON
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: bad header: %w", path, err)
	}

	info := &SegmentInfo{
		Path:               path,
		Count:              hdr.Count,
		Head:               keyFromJSON(hdr.Head),
		Tail:               keyFromJSON(hdr.Tail),
		SourceCounts:       hdr.SourceCounts,
		ThemeCounts:        hdr.ThemeCounts,
		PrimaryThemeCounts: hdr.PrimaryThemeCounts, // nil for legacy files
		Bytes:              st.Size(),
	}
	if info.SourceCounts == nil {
		info.SourceCounts = map[string]int{}
	}
	if info.ThemeCounts == nil {
		info.ThemeCounts = map[string]int{}
	}
	for _, sj := range hdr.Schemas {
		s, err := globalInterner.intern(sj)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: %s: %w", path, err)
		}
		info.schemas = append(info.schemas, s)
	}
	for _, e := range hdr.Sparse {
		info.Sparse = append(info.Sparse, SparseEntry{
			Pos: e.Pos, Time: time.Unix(e.UnixSec, int64(e.Nanos)).UTC(),
			Off: e.Off, CRC: e.CRC,
		})
	}

	seqBytes := make([]byte, 8*hdr.Count)
	if _, err := io.ReadFull(f, seqBytes); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: short seq block: %w", path, err)
	}
	seqs := make([]uint64, hdr.Count)
	for i := range seqs {
		seqs[i] = binary.LittleEndian.Uint64(seqBytes[8*i:])
	}
	info.eventOff = int64(len(segMagic)) + 8 + int64(hdrLen) + int64(8*hdr.Count)
	if info.eventOff+hdr.EventBytes != st.Size() {
		return nil, nil, fmt.Errorf("persist: %s: event block size mismatch", path)
	}
	if info.Count > 0 && len(info.Sparse) == 0 {
		return nil, nil, fmt.Errorf("persist: %s: missing sparse index", path)
	}
	info.buildDict()
	return info, seqs, nil
}

// WindowPositions returns the conservative [lo, hi) event-ordinal range
// whose chunks can hold events in the [from, to) window, resolved on the
// sparse index alone. Callers re-filter exactly; events outside the window
// only cost their decode.
func (si *SegmentInfo) WindowPositions(from, to time.Time) (int, int) {
	lo, hi := 0, si.Count
	if !from.IsZero() {
		// Skip chunks that end strictly before from: chunk k's events are
		// all <= the next chunk's start time.
		k := 0
		for k+1 < len(si.Sparse) && si.Sparse[k+1].Time.Before(from) {
			k++
		}
		lo = si.Sparse[k].Pos
	}
	if !to.IsZero() {
		k := len(si.Sparse)
		for k > 0 && !si.Sparse[k-1].Time.Before(to) {
			k--
		}
		if k < len(si.Sparse) {
			hi = si.Sparse[k].Pos
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ReadStats reports how one read was served: chunks found decoded in the
// cache versus chunks read back from disk.
type ReadStats struct {
	CacheHits   int
	CacheMisses int
}

// readBufPool recycles the scratch buffers chunk reads land in. Decoded
// events copy every byte they keep (strings included), so a buffer can be
// reused the moment its decode finishes; the pool turns the per-read block
// allocation — the dominant alloc on the spilled-select path — into a
// steady-state no-op.
var readBufPool = sync.Pool{New: func() any { return new([]byte) }}

// chunkSpan returns the [first, last] chunk range covering event ordinals
// [lo, hi).
func (si *SegmentInfo) chunkSpan(lo, hi int) (int, int) {
	first := 0
	for first+1 < len(si.Sparse) && si.Sparse[first+1].Pos <= lo {
		first++
	}
	last := first
	for last+1 < len(si.Sparse) && si.Sparse[last+1].Pos < hi {
		last++
	}
	return first, last
}

// chunkBounds returns chunk k's event-ordinal range and its byte range
// within the event block.
func (si *SegmentInfo) chunkBounds(k int) (posStart, posEnd int, offStart, offEnd int64) {
	posStart, offStart = si.Sparse[k].Pos, si.Sparse[k].Off
	posEnd, offEnd = si.Count, si.Bytes-si.eventOff
	if k+1 < len(si.Sparse) {
		posEnd, offEnd = si.Sparse[k+1].Pos, si.Sparse[k+1].Off
	}
	return posStart, posEnd, offStart, offEnd
}

// ReadRange decodes the events with ordinals [lo, hi), reading only the
// chunks that span the range and verifying each chunk's checksum.
func (si *SegmentInfo) ReadRange(lo, hi int) ([]Event, error) {
	evs, _, err := si.ReadRangeCached(nil, lo, hi)
	return evs, err
}

// ReadRangeCached is ReadRange through a chunk cache: chunks already
// decoded in the cache are reused, and only the missing stretches touch the
// disk — each contiguous run of misses as a single pread into a pooled
// buffer. A nil cache reads everything. The returned events may be shared
// with other readers and must not be mutated.
func (si *SegmentInfo) ReadRangeCached(cache *ChunkCache, lo, hi int) ([]Event, ReadStats, error) {
	var rs ReadStats
	if lo < 0 || hi > si.Count || lo >= hi {
		if lo == hi {
			return nil, rs, nil
		}
		return nil, rs, fmt.Errorf("persist: %s: bad range [%d, %d) of %d", si.Path, lo, hi, si.Count)
	}
	first, last := si.chunkSpan(lo, hi)
	chunks := make([][]Event, last-first+1)
	if cache != nil {
		for k := first; k <= last; k++ {
			if evs, ok := cache.get(chunkKey{si.Path, k}); ok {
				chunks[k-first] = evs
				rs.CacheHits++
			} else {
				rs.CacheMisses++
			}
		}
	} else {
		rs.CacheMisses = last - first + 1
	}

	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for k := first; k <= last; k++ {
		if chunks[k-first] != nil {
			continue
		}
		end := k
		for end+1 <= last && chunks[end+1-first] == nil {
			end++
		}
		if f == nil {
			var err error
			if f, err = os.Open(si.Path); err != nil {
				return nil, rs, err
			}
		}
		if err := si.readChunks(f, cache, k, end, chunks[k-first:end+1-first]); err != nil {
			return nil, rs, err
		}
		k = end
	}

	out := make([]Event, 0, hi-lo)
	for idx, evs := range chunks {
		posStart, posEnd, _, _ := si.chunkBounds(first + idx)
		a, b := max(lo, posStart), min(hi, posEnd)
		if a < b {
			out = append(out, evs[a-posStart:b-posStart]...)
		}
	}
	return out, rs, nil
}

// readChunks reads and decodes chunks [k, end] with one pread, verifying
// each chunk's checksum, storing the per-chunk event slices into dst and —
// when a cache is supplied — inserting each decoded chunk into it.
func (si *SegmentInfo) readChunks(f *os.File, cache *ChunkCache, k, end int, dst [][]Event) error {
	_, _, startOff, _ := si.chunkBounds(k)
	_, _, _, endOff := si.chunkBounds(end)
	bufp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bufp)
	need := int(endOff - startOff)
	if cap(*bufp) < need {
		*bufp = make([]byte, need)
	}
	block := (*bufp)[:need]
	if _, err := f.ReadAt(block, si.eventOff+startOff); err != nil {
		return fmt.Errorf("persist: %s: reading events: %w", si.Path, err)
	}
	for c := k; c <= end; c++ {
		posStart, posEnd, cOff, cEnd := si.chunkBounds(c)
		chunk := block[cOff-startOff : cEnd-startOff]
		if checksum(chunk) != si.Sparse[c].CRC {
			return fmt.Errorf("persist: %s: chunk %d checksum mismatch", si.Path, c)
		}
		d := &decoder{data: chunk}
		evs := make([]Event, 0, posEnd-posStart)
		for pos := posStart; pos < posEnd; pos++ {
			ev := d.event(si.dict)
			if d.err != nil {
				return fmt.Errorf("persist: %s: decoding event %d: %w", si.Path, pos, d.err)
			}
			evs = append(evs, ev)
		}
		dst[c-k] = evs
		if cache != nil {
			cache.put(chunkKey{si.Path, c}, evs, cEnd-cOff)
		}
	}
	return nil
}

// ReadAll decodes every event in the file.
func (si *SegmentInfo) ReadAll() ([]Event, error) { return si.ReadRange(0, si.Count) }

// Remove deletes the segment file.
func (si *SegmentInfo) Remove() error {
	err := os.Remove(si.Path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// ListSegments returns the segment files in dir in generation order, plus
// the next free generation number.
func ListSegments(dir string) ([]string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 1, nil
		}
		return nil, 0, err
	}
	var files []string
	next := 1
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-spill can strand a temp file; it was never
			// published, so clear it out.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "seg-%d.seg", &n); err == nil && strings.HasSuffix(name, ".seg") {
			files = append(files, filepath.Join(dir, name))
			if n >= next {
				next = n + 1
			}
		}
	}
	return files, next, nil
}

// SegmentFileName names generation n's segment file.
func SegmentFileName(n int) string { return fmt.Sprintf("seg-%08d.seg", n) }
