package persist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamloader/internal/stt"
)

// Native Go fuzzing over the two trust boundaries of the durable layer:
// the binary tuple codec (every WAL record and segment chunk goes through
// it) and WAL replay (the one code path that parses bytes a crash may have
// torn arbitrarily). The properties under fuzz:
//
//   - encode→decode round-trips every representable tuple exactly;
//   - decoding any prefix of a valid encoding fails cleanly, never panics;
//   - replaying a WAL whose tail is arbitrary bytes never panics, never
//     drops an acked (fully-framed) record, only truncates — and a second
//     replay of the truncated file is a fixed point.

// fuzzValues derives a deterministic payload from raw fuzz bytes: each
// value's kind and content are read off the stream, covering every Value
// kind including null and adversarial strings.
func fuzzValues(data []byte) []stt.Value {
	var vals []stt.Value
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) && len(vals) < 32 {
		switch next() % 6 {
		case 0:
			vals = append(vals, stt.Null())
		case 1:
			vals = append(vals, stt.Bool(next()%2 == 1))
		case 2:
			var v int64
			for k := 0; k < 8; k++ {
				v = v<<8 | int64(next())
			}
			vals = append(vals, stt.Int(v))
		case 3:
			var bits uint64
			for k := 0; k < 8; k++ {
				bits = bits<<8 | uint64(next())
			}
			vals = append(vals, stt.Float(math.Float64frombits(bits)))
		case 4:
			n := int(next() % 16)
			if i+n > len(data) {
				n = len(data) - i
			}
			vals = append(vals, stt.String(string(data[i:i+n])))
			i += n
		case 5:
			var sec int64
			for k := 0; k < 6; k++ {
				sec = sec<<8 | int64(next())
			}
			vals = append(vals, stt.Time(time.Unix(sec, int64(next())).UTC()))
		}
	}
	return vals
}

// sameValue compares decoded against encoded values bit-exactly: floats by
// their bits (NaN payloads must survive), times as instants.
func sameValue(got, want stt.Value) bool {
	if got.Kind() != want.Kind() {
		return false
	}
	switch want.Kind() {
	case stt.KindFloat:
		return math.Float64bits(got.AsFloat()) == math.Float64bits(want.AsFloat())
	case stt.KindTime:
		return got.AsTime().Equal(want.AsTime())
	default:
		return got.Equal(want)
	}
}

// FuzzCodecRoundTrip encodes one tuple built from fuzzed primitives and
// payload bytes, decodes it back, and requires exact equality; then decodes
// truncated prefixes of the encoding, which must error without panicking
// and without fabricating a tuple.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(1458000000), int64(0), 34.7, 135.5, "weather", "umeda", []byte{2, 1, 2, 3})
	f.Add(uint64(0), int64(0), int64(-1), 0.0, 0.0, "", "", []byte{})
	f.Add(uint64(1<<63), int64(-62135596800), int64(999999999), math.Inf(-1), math.NaN(),
		"th\x00eme", "söurce", []byte{4, 5, 'h', 'i', '!', 0xff, 0xfe, 3, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, seq uint64, sec, nsec int64, lat, lon float64, theme, source string, payload []byte) {
		want := Event{Seq: seq, Tuple: &stt.Tuple{
			Schema: kitchenSink,
			Values: fuzzValues(payload),
			Time:   time.Unix(sec, nsec).UTC(),
			Lat:    lat, Lon: lon,
			Theme: theme, Source: source, Seq: seq >> 1,
		}}
		buf := appendEvent(nil, want, 7)
		dict := map[uint64]*stt.Schema{7: kitchenSink}

		d := &decoder{data: buf}
		got := d.event(dict)
		if d.err != nil {
			t.Fatalf("decoding a fresh encoding: %v", d.err)
		}
		if d.pos != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", d.pos, len(buf))
		}
		g, w := got.Tuple, want.Tuple
		if got.Seq != want.Seq || g.Seq != w.Seq || g.Theme != w.Theme || g.Source != w.Source {
			t.Fatalf("meta mismatch: %+v vs %+v", got, want)
		}
		if !g.Time.Equal(w.Time) {
			t.Fatalf("time = %v, want %v", g.Time, w.Time)
		}
		if math.Float64bits(g.Lat) != math.Float64bits(w.Lat) ||
			math.Float64bits(g.Lon) != math.Float64bits(w.Lon) {
			t.Fatalf("pos = (%v,%v), want (%v,%v)", g.Lat, g.Lon, w.Lat, w.Lon)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("%d values, want %d", len(g.Values), len(w.Values))
		}
		for i := range g.Values {
			if !sameValue(g.Values[i], w.Values[i]) {
				t.Fatalf("value %d = %v, want %v", i, g.Values[i], w.Values[i])
			}
		}

		// Every proper prefix must fail cleanly — prefixes are exactly what
		// a torn write leaves behind.
		for _, cut := range []int{0, 1, len(buf) / 2, len(buf) - 1} {
			if cut >= len(buf) {
				continue
			}
			dp := &decoder{data: buf[:cut]}
			dp.event(dict)
			if dp.err == nil {
				t.Fatalf("decoding %d-byte prefix of %d succeeded", cut, len(buf))
			}
		}
	})
}

// FuzzWALReplay writes nValid well-formed records, splices arbitrary bytes
// after them (and as a whole second file), and replays. Replay must not
// panic, must emit every fully-framed record in order — the valid prefix
// first — and must only ever truncate: a second replay of what the first
// kept has to emit the identical sequence with nothing left to cut.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint8(3), []byte("garbage tail \x00\xff\x13"))
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{0x04, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	f.Add(uint8(7), bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, nValid uint8, junk []byte) {
		dir := t.TempDir()
		n := int(nValid % 8)
		w, err := OpenWAL(dir, WALOptions{Sync: SyncNever}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			ev := wEvent(uint64(i), time.Duration(i)*time.Minute, float64(i), "fuzz")
			if err := w.Append([]Event{ev}); err != nil {
				t.Fatal(err)
			}
			want = append(want, ev)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Torn tail on the live file, plus a later file of pure junk.
		appendBytes(t, filepath.Join(dir, walFileName(1)), junk)
		if len(junk) > 0 {
			if err := os.WriteFile(filepath.Join(dir, walFileName(2)), junk, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		replay := func() []Event {
			var got []Event
			res, err := ReplayWAL(dir, func(ev Event, _ Pos) error {
				if ev.Tuple == nil || ev.Tuple.Schema == nil {
					t.Fatal("replay emitted a malformed event")
				}
				got = append(got, ev)
				return nil
			})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Events != len(got) {
				t.Fatalf("res.Events = %d, emitted %d", res.Events, len(got))
			}
			return got
		}
		first := replay()
		// No acked record may vanish, and the valid prefix replays first,
		// unchanged. (Junk that happens to frame as valid records is not
		// phantom data — it replays like any fully-written record — but it
		// can only ever follow the prefix.)
		if len(first) < len(want) {
			t.Fatalf("replay emitted %d events, %d were acked", len(first), len(want))
		}
		for i, ev := range want {
			if first[i].Seq != ev.Seq || !first[i].Tuple.Time.Equal(ev.Tuple.Time) {
				t.Fatalf("replay[%d] = %+v, want %+v", i, first[i], ev)
			}
		}
		// The first replay truncated every bad tail; replaying the
		// truncated state must be a fixed point.
		second := replay()
		if len(second) != len(first) {
			t.Fatalf("second replay emitted %d events, first %d", len(second), len(first))
		}
		for i := range second {
			if second[i].Seq != first[i].Seq {
				t.Fatalf("second replay diverged at %d", i)
			}
		}
	})
}

func appendBytes(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzSegmentRoundTrip writes fuzz-derived events as a segment file in
// every supported format version, reopens it, and requires a bit-exact
// event round-trip — NaN payloads and empty dictionaries included. It then
// truncates the file at arbitrary points: opening or reading a truncated
// segment must error cleanly, never panic and never fabricate events.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(3), []byte{2, 1, 2, 3})
	f.Add(uint8(2), uint8(0), []byte{})
	f.Add(uint8(3), uint8(9), []byte{3, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1}) // NaN payload
	f.Add(uint8(0), uint8(255), bytes.Repeat([]byte{4, 0}, 40))        // empty strings
	f.Fuzz(func(t *testing.T, ver, count uint8, payload []byte) {
		version := int(ver)%SegmentVersionLatest + 1
		n := int(count)%40 + 1
		vals := fuzzValues(payload)
		events := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			schema := weather
			evVals := []stt.Value{stt.Float(float64(i)), stt.String("st")}
			if i%3 == 0 {
				schema = kitchenSink
				evVals = vals
			}
			theme, source := "weather", "st"
			if i%5 == 0 {
				theme, source = "", "" // empty dictionary entries
			}
			events = append(events, Event{Seq: uint64(i + 1), Tuple: &stt.Tuple{
				Schema: schema,
				Values: evVals,
				Time:   t0.Add(time.Duration(int(count)) * time.Hour * time.Duration(i)),
				Lat:    float64(i) * 0.5, Lon: -float64(i),
				Theme: theme, Source: source, Seq: uint64(i),
			}})
		}
		SortEvents(events)

		dir := t.TempDir()
		path := filepath.Join(dir, SegmentFileName(1))
		if _, err := WriteSegmentVersion(path, events, version); err != nil {
			t.Fatalf("v%d write: %v", version, err)
		}
		info, seqs, err := OpenSegment(path)
		if err != nil {
			t.Fatalf("v%d open: %v", version, err)
		}
		if info.Version != version || info.Count != n || len(seqs) != n {
			t.Fatalf("v%d: version=%d count=%d seqs=%d, want %d events", version, info.Version, info.Count, len(seqs), n)
		}
		got, err := info.ReadAll()
		if err != nil {
			t.Fatalf("v%d read: %v", version, err)
		}
		if len(got) != n {
			t.Fatalf("v%d read %d events, want %d", version, len(got), n)
		}
		for i, pe := range got {
			w := events[i]
			if pe.Seq != w.Seq || pe.Tuple.Seq != w.Tuple.Seq ||
				pe.Tuple.Theme != w.Tuple.Theme || pe.Tuple.Source != w.Tuple.Source {
				t.Fatalf("v%d event %d meta = %+v, want %+v", version, i, pe, w)
			}
			if !pe.Tuple.Time.Equal(w.Tuple.Time) {
				t.Fatalf("v%d event %d time = %v, want %v", version, i, pe.Tuple.Time, w.Tuple.Time)
			}
			if math.Float64bits(pe.Tuple.Lat) != math.Float64bits(w.Tuple.Lat) ||
				math.Float64bits(pe.Tuple.Lon) != math.Float64bits(w.Tuple.Lon) {
				t.Fatalf("v%d event %d pos mismatch", version, i)
			}
			if len(pe.Tuple.Values) != len(w.Tuple.Values) {
				t.Fatalf("v%d event %d: %d values, want %d", version, i, len(pe.Tuple.Values), len(w.Tuple.Values))
			}
			for j := range pe.Tuple.Values {
				if !sameValue(pe.Tuple.Values[j], w.Tuple.Values[j]) {
					t.Fatalf("v%d event %d value %d = %v, want %v",
						version, i, j, pe.Tuple.Values[j], w.Tuple.Values[j])
				}
			}
		}

		// Truncations must fail cleanly at open or read time.
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 7, 8, 12, len(raw) / 2, len(raw) - 1} {
			if cut >= len(raw) {
				continue
			}
			tpath := filepath.Join(dir, SegmentFileName(2))
			if err := os.WriteFile(tpath, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			ti, _, err := OpenSegment(tpath)
			if err != nil {
				continue // rejected at open: fine
			}
			if evs, err := ti.ReadAll(); err == nil && len(evs) != ti.Count {
				t.Fatalf("truncated at %d of %d: read %d events of claimed %d without error",
					cut, len(raw), len(evs), ti.Count)
			}
		}
	})
}
