package persist

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// ChunkCache is a byte-budgeted LRU of decoded segment-file chunks, shared
// across every cold segment of one warehouse. Segment files are immutable
// and their paths are never reused within a process (generation numbers
// only grow), so an entry can never go stale — at worst it outlives its
// file and ages out. Repeated window queries over the same cold history hit
// RAM instead of re-reading and re-decoding the file.
//
// The budget counts each chunk's encoded on-disk size: it is known exactly
// without walking the decoded tuples, and the decoded footprint is
// proportional to it. Entries are small (IndexEvery events each), so a
// budget admits many chunks and eviction granularity stays fine.
type ChunkCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[chunkKey]*list.Element
	lru     *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

// chunkKey identifies one decoded chunk: the segment file and the chunk's
// index in its sparse index.
type chunkKey struct {
	path  string
	chunk int
}

// chunkEntry holds one decoded chunk: a []Event for row-encoded (v1/v2)
// chunks, a *colChunk of decoded columns for v3 chunks. Both are immutable
// once cached.
type chunkEntry struct {
	key   chunkKey
	val   any
	bytes int64
}

// NewChunkCache builds a cache bounded to roughly budget encoded bytes.
// A budget <= 0 returns nil, which every user treats as "no cache".
func NewChunkCache(budget int64) *ChunkCache {
	if budget <= 0 {
		return nil
	}
	return &ChunkCache{
		budget:  budget,
		entries: map[chunkKey]*list.Element{},
		lru:     list.New(),
	}
}

// get returns the decoded chunk — []Event or *colChunk — and marks it
// recently used. The returned value is shared: callers must treat it (and
// the tuples it references) as immutable, which is already the
// warehouse-wide contract for stored events.
func (c *ChunkCache) get(k chunkKey) (any, bool) {
	c.mu.Lock()
	el, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	v := el.Value.(*chunkEntry).val
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// put inserts a decoded chunk, evicting least-recently-used entries until
// the budget holds. A chunk larger than the whole budget is not cached.
func (c *ChunkCache) put(k chunkKey, val any, size int64) {
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el) // raced with another reader; keep the first copy
		return
	}
	c.insertLocked(k, val, size)
}

// update is put with replace semantics: the v3 projected-read path widens a
// chunk's cached column set by merging fresh columns into the cached ones
// and storing the union back. Two readers racing here each store a correct
// superset of their own projection, so last-write-wins is safe.
func (c *ChunkCache) update(k chunkKey, val any, size int64) {
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		ent := el.Value.(*chunkEntry)
		c.bytes += size - ent.bytes
		ent.val, ent.bytes = val, size
		c.lru.MoveToFront(el)
		c.evictLocked(el)
		return
	}
	c.insertLocked(k, val, size)
}

// insertLocked adds a new entry, evicting from the LRU tail to budget.
func (c *ChunkCache) insertLocked(k chunkKey, val any, size int64) {
	c.bytes += size
	el := c.lru.PushFront(&chunkEntry{key: k, val: val, bytes: size})
	c.entries[k] = el
	c.evictLocked(el)
}

// evictLocked drops LRU-tail entries until the budget holds, sparing keep.
func (c *ChunkCache) evictLocked(keep *list.Element) {
	for c.bytes > c.budget {
		tail := c.lru.Back()
		if tail == nil || tail == keep {
			break
		}
		ent := tail.Value.(*chunkEntry)
		c.lru.Remove(tail)
		delete(c.entries, ent.key)
		c.bytes -= ent.bytes
	}
}

// Invalidate drops every cached chunk of one segment file. Retention calls
// it when it deletes a cold file whole, so the dead file's chunks free
// their budget immediately instead of aging out.
func (c *ChunkCache) Invalidate(path string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, el := range c.entries {
		if k.path != path {
			continue
		}
		c.bytes -= el.Value.(*chunkEntry).bytes
		c.lru.Remove(el)
		delete(c.entries, k)
	}
}

// ChunkCacheStats is a point-in-time cache summary.
type ChunkCacheStats struct {
	Hits    uint64
	Misses  uint64
	Bytes   int64
	Entries int
}

// Stats reports cumulative hit/miss counters and the current footprint.
// Safe on a nil cache (all zeros).
func (c *ChunkCache) Stats() ChunkCacheStats {
	if c == nil {
		return ChunkCacheStats{}
	}
	c.mu.Lock()
	st := ChunkCacheStats{Bytes: c.bytes, Entries: c.lru.Len()}
	c.mu.Unlock()
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	return st
}
