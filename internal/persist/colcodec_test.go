package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamloader/internal/stt"
)

// writeV3Corpus writes a 3-chunk v3 segment mixing both test schemas, with
// a NaN payload and empty strings thrown in, and returns the source events.
func writeV3Corpus(t *testing.T, path string) ([]Event, *SegmentInfo) {
	t.Helper()
	var events []Event
	for i := 0; i < IndexEvery*2+19; i++ {
		if i%7 == 3 {
			ev := sinkEvent(uint64(i + 1))
			ev.Tuple.Time = t0.Add(time.Duration(i) * time.Second)
			if i%14 == 3 {
				ev.Tuple.Values[2] = stt.Float(math.NaN())
			}
			events = append(events, ev)
		} else {
			events = append(events,
				wEvent(uint64(i+1), time.Duration(i)*time.Second, 15+float64(i%10), fmt.Sprintf("st-%d", i%3)))
		}
	}
	info, err := WriteSegmentVersion(path, events, SegmentV3)
	if err != nil {
		t.Fatal(err)
	}
	return events, info
}

// TestProjectedDecodeV3: a column-masked read returns the projected columns
// exactly, zeroes for the rest, and decodes measurably fewer bytes than the
// full read while counting the skipped sections.
func TestProjectedDecodeV3(t *testing.T) {
	dir := t.TempDir()
	events, info := writeV3Corpus(t, filepath.Join(dir, SegmentFileName(1)))

	full, frs, err := info.ReadRangeCached(nil, 0, info.Count)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range full {
		if pe.Seq != events[i].Seq {
			t.Fatalf("event %d seq = %d, want %d", i, pe.Seq, events[i].Seq)
		}
		sameTuple(t, pe.Tuple, events[i].Tuple)
	}
	if frs.ColumnsSkipped != 0 {
		t.Fatalf("full read skipped %d columns", frs.ColumnsSkipped)
	}

	// Time+theme projection: the select pre-filter shape.
	proj := Projection{Mask: ColTime | ColTheme}
	got, rs, err := info.ReadRangeProjected(nil, 0, info.Count, proj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("projected read %d events, want %d", len(got), len(events))
	}
	for i, pe := range got {
		want := events[i].Tuple
		if !pe.Tuple.Time.Equal(want.Time) || pe.Tuple.Theme != want.Theme {
			t.Fatalf("event %d projected time/theme = %v/%q, want %v/%q",
				i, pe.Tuple.Time, pe.Tuple.Theme, want.Time, want.Theme)
		}
		if pe.Tuple.Source != "" || pe.Tuple.Lat != 0 || pe.Seq != 0 {
			t.Fatalf("event %d leaked unprojected columns: %+v", i, pe)
		}
		if len(pe.Tuple.Values) != len(want.Values) {
			t.Fatalf("event %d values len = %d, want %d", i, len(pe.Tuple.Values), len(want.Values))
		}
		for _, v := range pe.Tuple.Values {
			if !v.IsNull() {
				t.Fatalf("event %d leaked payload value %v", i, v)
			}
		}
	}
	if rs.ColumnsSkipped == 0 {
		t.Fatal("projected read skipped no columns")
	}
	if rs.BytesDecoded == 0 || rs.BytesDecoded*2 > frs.BytesDecoded {
		t.Fatalf("projected read decoded %d bytes of %d full; want less than half",
			rs.BytesDecoded, frs.BytesDecoded)
	}

	// Single-field projection: only temperature decodes, other fields null.
	got, _, err = info.ReadRangeProjected(nil, 0, info.Count, Projection{Mask: ColTime, Field: "temperature"})
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range got {
		want := events[i].Tuple
		if want.Schema == weather {
			idx := weather.IndexOf("temperature")
			if !pe.Tuple.Values[idx].Equal(want.Values[idx]) {
				t.Fatalf("event %d temperature = %v, want %v", i, pe.Tuple.Values[idx], want.Values[idx])
			}
		}
	}
}

// TestProjectedCacheWidening: a cached narrow projection is widened by a
// following broader read (columns merged, entry replaced), and the final
// full read is byte-identical to an uncached one.
func TestProjectedCacheWidening(t *testing.T) {
	dir := t.TempDir()
	events, info := writeV3Corpus(t, filepath.Join(dir, SegmentFileName(1)))
	cache := NewChunkCache(1 << 20)

	if _, rs, err := info.ReadRangeProjected(cache, 0, info.Count, Projection{Mask: ColTime}); err != nil {
		t.Fatal(err)
	} else if rs.CacheMisses == 0 {
		t.Fatal("first read must miss")
	}
	// Same projection again: pure cache hits, no bytes decoded.
	if _, rs, err := info.ReadRangeProjected(cache, 0, info.Count, Projection{Mask: ColTime}); err != nil {
		t.Fatal(err)
	} else if rs.CacheHits != info.NumChunks() || rs.BytesDecoded != 0 {
		t.Fatalf("repeat narrow read: %+v, want all hits", rs)
	}
	// Broader read: counted as misses (columns must come off disk), merged
	// into the cached entries.
	full, rs, err := info.ReadRangeCached(cache, 0, info.Count)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheMisses != info.NumChunks() {
		t.Fatalf("widening read: %+v, want all misses", rs)
	}
	for i, pe := range full {
		if pe.Seq != events[i].Seq {
			t.Fatalf("event %d seq = %d, want %d", i, pe.Seq, events[i].Seq)
		}
		sameTuple(t, pe.Tuple, events[i].Tuple)
	}
	// And now the widened entries serve the full read from RAM.
	if _, rs, err := info.ReadRangeCached(cache, 0, info.Count); err != nil {
		t.Fatal(err)
	} else if rs.CacheHits != info.NumChunks() || rs.BytesDecoded != 0 {
		t.Fatalf("post-widening full read: %+v, want all hits", rs)
	}
}

// TestV3CorruptColumns: flipped bytes inside a chunk body (with the CRC
// patched so the corruption reaches the decoder) must error, never panic.
func TestV3CorruptColumns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentFileName(1))
	_, info := writeV3Corpus(t, path)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _, offStart, offEnd := info.chunkBounds(0)
	for bit := 0; bit < 8; bit++ {
		for _, pos := range []int64{offStart, offStart + 3, (offStart + offEnd) / 2, offEnd - 1} {
			mut := append([]byte(nil), raw...)
			mut[info.eventOff+pos] ^= 1 << bit
			// Patch the chunk CRC in the JSON header? The header CRC would
			// then mismatch too — instead corrupt and re-point the sparse
			// entry in RAM on a fresh SegmentInfo.
			mutPath := filepath.Join(dir, "mut.seg")
			if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			mi, _, err := OpenSegment(mutPath)
			if err != nil {
				continue // header rejected the file; fine
			}
			mi.Sparse[0].CRC = checksum(mut[mi.eventOff+offStart : mi.eventOff+offEnd])
			evs, _, err := mi.ReadRangeCached(nil, 0, mi.Count)
			// Either a clean decode error or a harmless value change —
			// never a panic (a panic fails the test on its own).
			_ = evs
			_ = err
		}
	}
}

// TestV3TruncatedSections: every prefix of a chunk body must produce a
// decode error, never a panic or a silent short result.
func TestV3TruncatedSections(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentFileName(1))
	events, info := writeV3Corpus(t, path)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, posEnd, offStart, offEnd := func() (int, int, int64, int64) { return info.chunkBounds(0) }()
	chunk := raw[info.eventOff+offStart : info.eventOff+offEnd]
	n := posEnd
	for cut := 0; cut < len(chunk); cut += 13 {
		cc, _, err := info.decodeChunkV3(chunk[:cut], n, FullProjection)
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly: %+v", cut, len(chunk), cc)
		}
	}
	// The intact chunk decodes.
	cc, _, err := info.decodeChunkV3(chunk, n, FullProjection)
	if err != nil {
		t.Fatalf("intact chunk: %v", err)
	}
	if got := cc.materialize(0, n, true); len(got) != n || !got[0].Tuple.Time.Equal(events[0].Tuple.Time) {
		t.Fatalf("intact chunk materialized %d events", len(got))
	}
}

// TestValidateSegmentFormat: 0 and 1..latest pass, the rest fail loudly.
func TestValidateSegmentFormat(t *testing.T) {
	for v := 0; v <= SegmentVersionLatest; v++ {
		if err := ValidateSegmentFormat(v); err != nil {
			t.Fatalf("format %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{-1, SegmentVersionLatest + 1, 99} {
		if err := ValidateSegmentFormat(v); err == nil {
			t.Fatalf("format %d accepted", v)
		}
	}
	if _, err := WriteSegmentVersion(filepath.Join(t.TempDir(), "x.seg"),
		[]Event{wEvent(1, 0, 20, "st")}, SegmentVersionLatest+1); err == nil {
		t.Fatal("write with unknown version must fail")
	}
}

// TestOpenSegmentBadMagic: the unknown-magic error names the file and what
// this build supports.
func TestOpenSegmentBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentFileName(1))
	buf := append([]byte("SLSEG099"), make([]byte, 16)...)
	binary.LittleEndian.PutUint32(buf[8:], 0)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenSegment(path)
	if err == nil {
		t.Fatal("unknown magic accepted")
	}
	for _, want := range []string{path, "SLSEG099", "SLSEG001", "SLSEG003", SupportedSegmentFormats()} {
		if !contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
