package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"streamloader/internal/stt"
)

// The v3 columnar chunk codec. A v3 segment file keeps the v2 framing —
// magic, JSON header with per-chunk stats, seq block, CRC'd chunks of
// IndexEvery events — but encodes each chunk column-wise instead of
// row-wise. Every column is a length-prefixed section, so a reader can skip
// the columns a query does not touch (projected decode) by advancing over
// the prefix instead of parsing the bytes. Section order within a chunk:
//
//	sec     event-time seconds: first raw, then delta-of-delta zigzag varints
//	nanos   event-time nanoseconds: one varint per event (-1 = the zero time)
//	seq     warehouse seqs: first raw uvarint, then zigzag varint deltas
//	schema  schema-dictionary ids, run-length encoded (id, run) pairs
//	lat     8-byte little-endian float64 per event
//	lon     8-byte little-endian float64 per event
//	theme   chunk-local string dictionary + RLE (index, run) pairs
//	source  chunk-local string dictionary + RLE (index, run) pairs
//	tseq    tuple seqs, encoded like seq
//	nvals   payload value counts, RLE (count, run) pairs
//	val[p]  one section per payload position p: string dictionary, RLE
//	        (kind, run) pairs, then the payloads of every event carrying
//	        at least p+1 values, in event order
//
// Events are (time, seq)-sorted, which makes the second-order time deltas
// and the seq deltas tiny, and sensor streams repeat sources, themes and
// string payloads heavily, which the dictionaries collapse. The schema and
// nvals columns are always decoded (they shape the tuple); everything else
// decodes only when the projection asks for it.

// ColumnMask selects which event columns a projected v3 read materializes.
// The schema and value-count columns are always decoded — they cost a few
// RLE pairs and every materialized tuple needs them.
type ColumnMask uint16

const (
	// ColTime materializes the event time.
	ColTime ColumnMask = 1 << iota
	// ColSeq materializes the warehouse and tuple sequence numbers.
	ColSeq
	// ColGeo materializes Lat and Lon.
	ColGeo
	// ColTheme materializes the primary theme tag.
	ColTheme
	// ColSource materializes the source id.
	ColSource
	// ColValues materializes every payload value column; see also
	// Projection.Field for a single named field.
	ColValues

	// ColAll materializes the full event.
	ColAll = ColTime | ColSeq | ColGeo | ColTheme | ColSource | ColValues
)

// Projection names the columns one read needs. The zero Projection decodes
// nothing but the structural columns; FullProjection decodes everything.
// When Field is non-empty (and ColValues is unset), only the value columns
// holding that field's payloads — resolved per schema — are decoded;
// every other event's value at the same positions comes along for free,
// and the remaining positions stay null.
type Projection struct {
	Mask  ColumnMask
	Field string
}

// FullProjection decodes every column — what ReadRange uses.
var FullProjection = Projection{Mask: ColAll}

// full reports whether the projection decodes the entire chunk.
func (p Projection) full() bool { return p.Mask&ColAll == ColAll }

// section ids, in on-disk order. Value sections follow secNVals.
const (
	secTimeSec = iota
	secTimeNanos
	secSeq
	secSchema
	secLat
	secLon
	secTheme
	secSource
	secTupleSeq
	secNVals
	numFixedSections
)

// appendSection appends one length-prefixed column section.
func appendSection(b, payload []byte) []byte {
	b = appendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// appendChunkV3 encodes one chunk of events (already (time, seq)-sorted)
// column-wise. scratch is reused across chunks to keep the write path from
// reallocating per column.
func appendChunkV3(b []byte, events []Event, dict *schemaDict, scratch *[]byte) []byte {
	col := (*scratch)[:0]

	// sec: first raw, then delta-of-delta.
	var prevSec, prevDelta int64
	for i, ev := range events {
		sec := int64(0)
		if !ev.Tuple.Time.IsZero() {
			sec = ev.Tuple.Time.Unix()
		}
		switch i {
		case 0:
			col = appendVarint(col, sec)
		default:
			delta := sec - prevSec
			col = appendVarint(col, delta-prevDelta)
			prevDelta = delta
		}
		prevSec = sec
	}
	b = appendSection(b, col)

	// nanos: raw varints; -1 tags the zero time (as in the row codec).
	col = col[:0]
	for _, ev := range events {
		if ev.Tuple.Time.IsZero() {
			col = appendVarint(col, -1)
		} else {
			col = appendVarint(col, int64(ev.Tuple.Time.Nanosecond()))
		}
	}
	b = appendSection(b, col)

	// seq: first raw, then zigzag deltas (exact under uint64 wraparound).
	col = col[:0]
	var prevSeq uint64
	for i, ev := range events {
		if i == 0 {
			col = appendUvarint(col, ev.Seq)
		} else {
			col = appendVarint(col, int64(ev.Seq-prevSeq))
		}
		prevSeq = ev.Seq
	}
	b = appendSection(b, col)

	// schema ids, RLE.
	col = col[:0]
	runID, _ := dict.id(events[0].Tuple.Schema)
	run := 0
	for _, ev := range events {
		id, _ := dict.id(ev.Tuple.Schema)
		if id == runID {
			run++
			continue
		}
		col = appendUvarint(col, runID)
		col = appendUvarint(col, uint64(run))
		runID, run = id, 1
	}
	col = appendUvarint(col, runID)
	col = appendUvarint(col, uint64(run))
	b = appendSection(b, col)

	// lat / lon: raw float streams.
	col = col[:0]
	for _, ev := range events {
		col = appendFloat(col, ev.Tuple.Lat)
	}
	b = appendSection(b, col)
	col = col[:0]
	for _, ev := range events {
		col = appendFloat(col, ev.Tuple.Lon)
	}
	b = appendSection(b, col)

	// theme / source: chunk-local dictionary + RLE indices.
	col = appendStringColumn(col[:0], events, func(ev Event) string { return ev.Tuple.Theme })
	b = appendSection(b, col)
	col = appendStringColumn(col[:0], events, func(ev Event) string { return ev.Tuple.Source })
	b = appendSection(b, col)

	// tuple seqs.
	col = col[:0]
	var prevTSeq uint64
	for i, ev := range events {
		if i == 0 {
			col = appendUvarint(col, ev.Tuple.Seq)
		} else {
			col = appendVarint(col, int64(ev.Tuple.Seq-prevTSeq))
		}
		prevTSeq = ev.Tuple.Seq
	}
	b = appendSection(b, col)

	// nvals, RLE.
	col = col[:0]
	maxVals := 0
	runN, run := len(events[0].Tuple.Values), 0
	for _, ev := range events {
		n := len(ev.Tuple.Values)
		if n > maxVals {
			maxVals = n
		}
		if n == runN {
			run++
			continue
		}
		col = appendUvarint(col, uint64(runN))
		col = appendUvarint(col, uint64(run))
		runN, run = n, 1
	}
	col = appendUvarint(col, uint64(runN))
	col = appendUvarint(col, uint64(run))
	b = appendSection(b, col)

	// One typed value column per payload position.
	for p := 0; p < maxVals; p++ {
		col = appendValueColumn(col[:0], events, p)
		b = appendSection(b, col)
	}

	*scratch = col[:0]
	return b
}

// appendStringColumn encodes one string column: a chunk-local dictionary of
// the distinct strings (first-use order) followed by RLE (index, run) pairs.
func appendStringColumn(col []byte, events []Event, get func(Event) string) []byte {
	ids := map[string]uint64{}
	var order []string
	idOf := func(s string) uint64 {
		if id, ok := ids[s]; ok {
			return id
		}
		id := uint64(len(order))
		ids[s] = id
		order = append(order, s)
		return id
	}
	// Resolve ids first so the dictionary can be written before the runs.
	idxs := make([]uint64, len(events))
	for i, ev := range events {
		idxs[i] = idOf(get(ev))
	}
	col = appendUvarint(col, uint64(len(order)))
	for _, s := range order {
		col = appendString(col, s)
	}
	runID, run := idxs[0], 0
	for _, id := range idxs {
		if id == runID {
			run++
			continue
		}
		col = appendUvarint(col, runID)
		col = appendUvarint(col, uint64(run))
		runID, run = id, 1
	}
	col = appendUvarint(col, runID)
	col = appendUvarint(col, uint64(run))
	return col
}

// appendValueColumn encodes payload position p across the chunk: a string
// dictionary (possibly empty), RLE (kind, run) pairs over the events that
// carry at least p+1 values, then the payloads in event order. Strings are
// dictionary indices; every other kind uses the row codec's representation.
func appendValueColumn(col []byte, events []Event, p int) []byte {
	ids := map[string]uint64{}
	var order []string
	for _, ev := range events {
		if p >= len(ev.Tuple.Values) {
			continue
		}
		if v := ev.Tuple.Values[p]; v.Kind() == stt.KindString {
			s := v.AsString()
			if _, ok := ids[s]; !ok {
				ids[s] = uint64(len(order))
				order = append(order, s)
			}
		}
	}
	col = appendUvarint(col, uint64(len(order)))
	for _, s := range order {
		col = appendString(col, s)
	}

	// Kinds, RLE over the carrying events.
	runKind, run := stt.KindNull, 0
	started := false
	flush := func() {
		if run > 0 {
			col = append(col, byte(runKind))
			col = appendUvarint(col, uint64(run))
		}
	}
	for _, ev := range events {
		if p >= len(ev.Tuple.Values) {
			continue
		}
		k := ev.Tuple.Values[p].Kind()
		if started && k == runKind {
			run++
			continue
		}
		flush()
		runKind, run, started = k, 1, true
	}
	flush()

	// Payloads in event order.
	for _, ev := range events {
		if p >= len(ev.Tuple.Values) {
			continue
		}
		v := ev.Tuple.Values[p]
		switch v.Kind() {
		case stt.KindNull:
		case stt.KindBool:
			if v.AsBool() {
				col = append(col, 1)
			} else {
				col = append(col, 0)
			}
		case stt.KindInt:
			col = appendVarint(col, v.AsInt())
		case stt.KindFloat:
			col = appendFloat(col, v.AsFloat())
		case stt.KindString:
			col = appendUvarint(col, ids[v.AsString()])
		case stt.KindTime:
			col = appendTime(col, v.AsTime())
		}
	}
	return col
}

// colChunk is one chunk of a v3 file decoded column-wise — what the chunk
// cache stores for v3 segments instead of materialized rows. A colChunk is
// immutable once built; merging projections builds a new one. Slices for
// undecoded columns are nil; valsDone marks which value positions hold
// decoded payloads.
type colChunk struct {
	n        int
	mask     ColumnMask
	times    []time.Time
	seqs     []uint64
	tseqs    []uint64
	lats     []float64
	lons     []float64
	themes   []string
	sources  []string
	schemas  []*stt.Schema // per event, resolved through the file dictionary
	nvals    []int
	vals     [][]stt.Value // per payload position; nil slot = not decoded
	valsDone []bool
	allVals  bool

	// rows memoizes the full-projection materialization, so repeated full
	// reads of a cached chunk pay the tuple construction once.
	rows atomic.Pointer[[]Event]
}

// covers reports whether the decoded columns satisfy proj.
func (cc *colChunk) covers(proj Projection, si *SegmentInfo) bool {
	if proj.Mask&^cc.mask != 0 {
		return false
	}
	if proj.Mask&ColValues != 0 || proj.Field == "" {
		return true
	}
	if cc.allVals {
		return true
	}
	for _, p := range si.fieldPositions(proj.Field) {
		if p >= len(cc.valsDone) || !cc.valsDone[p] {
			return false
		}
	}
	return true
}

// merge folds another decode of the same chunk into this one, returning a
// new colChunk carrying the union of their columns.
func (cc *colChunk) merge(o *colChunk) *colChunk {
	out := &colChunk{n: cc.n, mask: cc.mask | o.mask, allVals: cc.allVals || o.allVals}
	pick := func(a, b []time.Time) []time.Time {
		if a != nil {
			return a
		}
		return b
	}
	out.times = pick(cc.times, o.times)
	pickU := func(a, b []uint64) []uint64 {
		if a != nil {
			return a
		}
		return b
	}
	out.seqs, out.tseqs = pickU(cc.seqs, o.seqs), pickU(cc.tseqs, o.tseqs)
	pickF := func(a, b []float64) []float64 {
		if a != nil {
			return a
		}
		return b
	}
	out.lats, out.lons = pickF(cc.lats, o.lats), pickF(cc.lons, o.lons)
	pickS := func(a, b []string) []string {
		if a != nil {
			return a
		}
		return b
	}
	out.themes, out.sources = pickS(cc.themes, o.themes), pickS(cc.sources, o.sources)
	if cc.schemas != nil {
		out.schemas = cc.schemas
	} else {
		out.schemas = o.schemas
	}
	if cc.nvals != nil {
		out.nvals = cc.nvals
	} else {
		out.nvals = o.nvals
	}
	nv := len(cc.vals)
	if len(o.vals) > nv {
		nv = len(o.vals)
	}
	if nv > 0 {
		out.vals = make([][]stt.Value, nv)
		out.valsDone = make([]bool, nv)
		for p := 0; p < nv; p++ {
			if p < len(cc.vals) && cc.valsDone[p] {
				out.vals[p], out.valsDone[p] = cc.vals[p], true
			} else if p < len(o.vals) && o.valsDone[p] {
				out.vals[p], out.valsDone[p] = o.vals[p], true
			}
		}
	}
	return out
}

// materialize builds events [a, b) of the chunk (chunk-local ordinals) from
// the decoded columns. Columns outside the chunk's mask come back zero. Full
// whole-chunk materializations are memoized on the chunk.
func (cc *colChunk) materialize(a, b int, full bool) []Event {
	if full && a == 0 && b == cc.n {
		if rows := cc.rows.Load(); rows != nil {
			return *rows
		}
		rows := cc.buildRows(0, cc.n)
		cc.rows.Store(&rows)
		return rows
	}
	if full {
		if rows := cc.rows.Load(); rows != nil {
			return (*rows)[a:b]
		}
	}
	return cc.buildRows(a, b)
}

func (cc *colChunk) buildRows(a, b int) []Event {
	out := make([]Event, b-a)
	tuples := make([]stt.Tuple, b-a)
	// One flat Values allocation for the whole range, subsliced per tuple —
	// a per-event make here is the dominant materialization cost.
	total := 0
	for i := a; i < b; i++ {
		total += cc.nvals[i]
	}
	var flat []stt.Value
	if total > 0 {
		flat = make([]stt.Value, total)
	}
	off := 0
	for i := a; i < b; i++ {
		t := &tuples[i-a]
		t.Schema = cc.schemas[i]
		if cc.times != nil {
			t.Time = cc.times[i]
		}
		if cc.lats != nil {
			t.Lat, t.Lon = cc.lats[i], cc.lons[i]
		}
		if cc.themes != nil {
			t.Theme = cc.themes[i]
		}
		if cc.sources != nil {
			t.Source = cc.sources[i]
		}
		if cc.tseqs != nil {
			t.Seq = cc.tseqs[i]
		}
		if n := cc.nvals[i]; n > 0 {
			t.Values = flat[off : off+n : off+n]
			off += n
			for p := 0; p < n && p < len(cc.vals); p++ {
				if cc.valsDone[p] {
					t.Values[p] = cc.vals[p][i]
				}
			}
		}
		ev := Event{Tuple: t}
		if cc.seqs != nil {
			ev.Seq = cc.seqs[i]
		}
		out[i-a] = ev
	}
	return out
}

// colDecoder walks a chunk's sections, decoding the projected ones and
// skipping the rest by their length prefix.
type colDecoder struct {
	d       decoder
	skipped int   // sections skipped
	decoded int64 // bytes of sections decoded
}

// section returns the next section's payload when want is true, or skips it.
func (cd *colDecoder) section(want bool) []byte {
	ln := cd.d.uvarint()
	if cd.d.err != nil {
		return nil
	}
	if !want {
		cd.d.bytes(int(ln))
		cd.skipped++
		return nil
	}
	cd.decoded += int64(ln)
	return cd.d.bytes(int(ln))
}

// decodeChunkV3 decodes one chunk's projected columns. n is the chunk's
// event count (from the sparse index, already validated against the file).
func (si *SegmentInfo) decodeChunkV3(data []byte, n int, proj Projection) (*colChunk, *colDecoder, error) {
	cd := &colDecoder{d: decoder{data: data}}
	cc := &colChunk{n: n, mask: proj.Mask & ColAll}

	// sec + nanos.
	if sec := cd.section(proj.Mask&ColTime != 0); sec != nil {
		nanos := cd.section(true)
		times, err := decodeTimeColumn(sec, nanos, n)
		if err != nil {
			return nil, cd, err
		}
		cc.times = times
	} else {
		cd.section(false)
	}

	if seq := cd.section(proj.Mask&ColSeq != 0); seq != nil {
		seqs, err := decodeSeqColumn(seq, n)
		if err != nil {
			return nil, cd, err
		}
		cc.seqs = seqs
	}

	// schema ids: always decoded — every materialized tuple needs one.
	sch := cd.section(true)
	if cd.d.err != nil {
		return nil, cd, cd.d.err
	}
	schemas, err := si.decodeSchemaColumn(sch, n)
	if err != nil {
		return nil, cd, err
	}
	cc.schemas = schemas

	if lat := cd.section(proj.Mask&ColGeo != 0); lat != nil {
		lon := cd.section(true)
		if cc.lats, err = decodeFloatColumn(lat, n); err != nil {
			return nil, cd, err
		}
		if cc.lons, err = decodeFloatColumn(lon, n); err != nil {
			return nil, cd, err
		}
	} else {
		cd.section(false)
	}

	if th := cd.section(proj.Mask&ColTheme != 0); th != nil {
		if cc.themes, err = decodeStringColumn(th, n); err != nil {
			return nil, cd, err
		}
	}
	if src := cd.section(proj.Mask&ColSource != 0); src != nil {
		if cc.sources, err = decodeStringColumn(src, n); err != nil {
			return nil, cd, err
		}
	}
	if tseq := cd.section(proj.Mask&ColSeq != 0); tseq != nil {
		if cc.tseqs, err = decodeSeqColumn(tseq, n); err != nil {
			return nil, cd, err
		}
	}

	// nvals: always decoded — it shapes every tuple's Values slice.
	nv := cd.section(true)
	if cd.d.err != nil {
		return nil, cd, cd.d.err
	}
	nvals, maxVals, err := decodeNValsColumn(nv, n)
	if err != nil {
		return nil, cd, err
	}
	cc.nvals = nvals

	wantAll := proj.Mask&ColValues != 0
	var wantPos map[int]bool
	if !wantAll && proj.Field != "" {
		wantPos = map[int]bool{}
		for _, p := range si.fieldPositions(proj.Field) {
			wantPos[p] = true
		}
	}
	if maxVals > 0 && (wantAll || len(wantPos) > 0) {
		cc.vals = make([][]stt.Value, maxVals)
		cc.valsDone = make([]bool, maxVals)
		cc.allVals = wantAll
		for p := 0; p < maxVals; p++ {
			vcol := cd.section(wantAll || wantPos[p])
			if cd.d.err != nil {
				return nil, cd, cd.d.err
			}
			if vcol == nil {
				continue
			}
			vals, err := decodeValueColumn(vcol, nvals, p, n)
			if err != nil {
				return nil, cd, err
			}
			cc.vals[p], cc.valsDone[p] = vals, true
		}
	} else {
		// Skip whatever value sections remain; the trailing ones may simply
		// not be needed, and skipping them validates their framing.
		for p := 0; p < maxVals; p++ {
			cd.section(false)
			if cd.d.err != nil {
				return nil, cd, cd.d.err
			}
		}
	}
	if cd.d.err != nil {
		return nil, cd, cd.d.err
	}
	return cc, cd, nil
}

// decodeChunkRowsV3 is the full-projection fast path: it decodes every
// column of one chunk straight into materialized events, skipping the
// columnar intermediates a cache would want. Cache-bypass full reads
// (compaction loads, disabled caches) use it — there the column slices
// would be instant garbage, and they cost as much as the rows themselves.
func (si *SegmentInfo) decodeChunkRowsV3(data []byte, n int) ([]Event, int64, error) {
	cd := &colDecoder{d: decoder{data: data}}
	out := make([]Event, n)
	tuples := make([]stt.Tuple, n)

	sec := cd.section(true)
	nanos := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	ds := decoder{data: sec}
	dn := decoder{data: nanos}
	var prevSec, prevDelta int64
	if n > 0 {
		prevSec = ds.varint()
		if ns := dn.varint(); ns != -1 {
			tuples[0].Time = time.Unix(prevSec, ns).UTC()
		}
	}
	for i := 1; i < n; i++ {
		prevDelta += ds.varint()
		prevSec += prevDelta
		if ns := dn.varint(); ns != -1 {
			tuples[i].Time = time.Unix(prevSec, ns).UTC()
		}
	}
	if ds.err != nil {
		return nil, cd.decoded, ds.err
	}
	if dn.err != nil {
		return nil, cd.decoded, dn.err
	}

	seq := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	d := decoder{data: seq}
	var prev uint64
	if n > 0 {
		prev = d.uvarint()
		out[0].Seq = prev
		out[0].Tuple = &tuples[0]
	}
	for i := 1; i < n; i++ {
		prev += uint64(d.varint())
		out[i].Seq = prev
		out[i].Tuple = &tuples[i]
	}
	if d.err != nil {
		return nil, cd.decoded, d.err
	}

	sch := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	err := si.fillSchemaRLE(sch, n, func(lo, hi int, s *stt.Schema) {
		for i := lo; i < hi; i++ {
			tuples[i].Schema = s
		}
	})
	if err != nil {
		return nil, cd.decoded, err
	}

	lat := cd.section(true)
	lon := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	if len(lat) != 8*n || len(lon) != 8*n {
		return nil, cd.decoded, fmt.Errorf("persist: geo columns are %d+%d bytes, want 2x%d", len(lat), len(lon), 8*n)
	}
	for i := 0; i < n; i++ {
		tuples[i].Lat = math.Float64frombits(binary.LittleEndian.Uint64(lat[8*i:]))
		tuples[i].Lon = math.Float64frombits(binary.LittleEndian.Uint64(lon[8*i:]))
	}

	th := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	if err := fillStringRLE(th, n, func(lo, hi int, s string) {
		for i := lo; i < hi; i++ {
			tuples[i].Theme = s
		}
	}); err != nil {
		return nil, cd.decoded, err
	}
	src := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	if err := fillStringRLE(src, n, func(lo, hi int, s string) {
		for i := lo; i < hi; i++ {
			tuples[i].Source = s
		}
	}); err != nil {
		return nil, cd.decoded, err
	}

	tseq := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	d = decoder{data: tseq}
	prev = 0
	if n > 0 {
		prev = d.uvarint()
		tuples[0].Seq = prev
	}
	for i := 1; i < n; i++ {
		prev += uint64(d.varint())
		tuples[i].Seq = prev
	}
	if d.err != nil {
		return nil, cd.decoded, d.err
	}

	nv := cd.section(true)
	if cd.d.err != nil {
		return nil, cd.decoded, cd.d.err
	}
	nvals, maxVals, err := decodeNValsColumn(nv, n)
	if err != nil {
		return nil, cd.decoded, err
	}
	total := 0
	for _, c := range nvals {
		total += c
	}
	if total > 0 {
		flat := make([]stt.Value, total)
		off := 0
		for i, c := range nvals {
			if c > 0 {
				tuples[i].Values = flat[off : off+c : off+c]
				off += c
			}
		}
	}
	for p := 0; p < maxVals; p++ {
		vcol := cd.section(true)
		if cd.d.err != nil {
			return nil, cd.decoded, cd.d.err
		}
		if err := fillValueColumnTuples(vcol, nvals, p, n, tuples); err != nil {
			return nil, cd.decoded, err
		}
	}
	return out, cd.decoded, nil
}

// fillValueColumnTuples is fillValueColumn writing straight into
// tuples[i].Values[p], organized as one tight loop per kind run — the rows
// fast path, where a per-value indirect call is measurable.
func fillValueColumnTuples(data []byte, nvals []int, p, n int, tuples []stt.Tuple) error {
	d := &decoder{data: data}
	dictLen := d.uvarint()
	if d.err != nil {
		return d.err
	}
	if dictLen > uint64(len(data)) {
		return fmt.Errorf("persist: value dictionary of %d entries exceeds column", dictLen)
	}
	var dictBuf [8]string // value dictionaries are usually a handful of entries
	dict := dictBuf[:0]
	if dictLen > uint64(len(dictBuf)) {
		dict = make([]string, 0, dictLen)
	}
	for i := uint64(0); i < dictLen; i++ {
		dict = append(dict, d.string())
		if d.err != nil {
			return d.err
		}
	}
	m := 0 // events carrying at least p+1 values
	for _, nv := range nvals {
		if nv > p {
			m++
		}
	}
	type kindRun struct {
		k stt.Kind
		r int
	}
	var runsBuf [16]kindRun
	runs := runsBuf[:0]
	filled := 0
	for filled < m {
		k := stt.Kind(d.byteVal())
		run := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if k > stt.KindTime {
			return fmt.Errorf("persist: unknown value kind %d", k)
		}
		if run == 0 || run > uint64(m-filled) {
			return fmt.Errorf("persist: kind run %d overflows column of %d", run, m)
		}
		runs = append(runs, kindRun{k, int(run)})
		filled += int(run)
	}
	ei := 0 // event cursor; advances to the next carrying event per value
	next := func() int {
		for nvals[ei] <= p {
			ei++
		}
		i := ei
		ei++
		return i
	}
	for _, kr := range runs {
		k, r := kr.k, kr.r
		switch k {
		case stt.KindNull:
			for j := 0; j < r; j++ {
				next()
			}
		case stt.KindBool:
			for j := 0; j < r; j++ {
				tuples[next()].Values[p] = stt.Bool(d.byteVal() != 0)
			}
		case stt.KindInt:
			for j := 0; j < r; j++ {
				tuples[next()].Values[p] = stt.Int(d.varint())
			}
		case stt.KindFloat:
			for j := 0; j < r; j++ {
				tuples[next()].Values[p] = stt.Float(d.float())
			}
		case stt.KindString:
			for j := 0; j < r; j++ {
				idx := d.uvarint()
				if idx >= dictLen {
					if d.err != nil {
						return d.err
					}
					return fmt.Errorf("persist: value index %d outside dictionary of %d", idx, dictLen)
				}
				tuples[next()].Values[p] = stt.String(dict[idx])
			}
		case stt.KindTime:
			for j := 0; j < r; j++ {
				tuples[next()].Values[p] = stt.Time(d.time())
			}
		}
		if d.err != nil {
			return d.err
		}
	}
	return nil
}

func decodeTimeColumn(sec, nanos []byte, n int) ([]time.Time, error) {
	ds := &decoder{data: sec}
	dn := &decoder{data: nanos}
	out := make([]time.Time, n)
	var prevSec, prevDelta int64
	for i := 0; i < n; i++ {
		var s int64
		if i == 0 {
			s = ds.varint()
		} else {
			prevDelta += ds.varint()
			s = prevSec + prevDelta
		}
		prevSec = s
		ns := dn.varint()
		if ds.err != nil {
			return nil, ds.err
		}
		if dn.err != nil {
			return nil, dn.err
		}
		if ns == -1 {
			out[i] = time.Time{}
		} else {
			out[i] = time.Unix(s, ns).UTC()
		}
	}
	return out, nil
}

func decodeSeqColumn(data []byte, n int) ([]uint64, error) {
	d := &decoder{data: data}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			out[i] = d.uvarint()
		} else {
			out[i] = out[i-1] + uint64(d.varint())
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	return out, nil
}

func decodeFloatColumn(data []byte, n int) ([]float64, error) {
	if len(data) != 8*n {
		return nil, fmt.Errorf("persist: float column is %d bytes, want %d", len(data), 8*n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// fillSchemaRLE walks a schema column's (id, run) pairs, calling set once
// per run with the resolved schema and the run's ordinal range [lo, hi).
func (si *SegmentInfo) fillSchemaRLE(data []byte, n int, set func(lo, hi int, s *stt.Schema)) error {
	d := &decoder{data: data}
	filled := 0
	for filled < n {
		id := d.uvarint()
		run := d.uvarint()
		if d.err != nil {
			return d.err
		}
		s, ok := si.dict[id]
		if !ok {
			return fmt.Errorf("persist: undefined schema id %d", id)
		}
		if run == 0 || run > uint64(n-filled) {
			return fmt.Errorf("persist: schema run %d overflows chunk of %d", run, n)
		}
		set(filled, filled+int(run), s)
		filled += int(run)
	}
	return nil
}

func (si *SegmentInfo) decodeSchemaColumn(data []byte, n int) ([]*stt.Schema, error) {
	out := make([]*stt.Schema, n)
	err := si.fillSchemaRLE(data, n, func(lo, hi int, s *stt.Schema) {
		for i := lo; i < hi; i++ {
			out[i] = s
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fillStringRLE walks a string column — chunk-local dictionary, then
// (index, run) pairs — calling set once per run with the dictionary string
// and the run's ordinal range [lo, hi).
func fillStringRLE(data []byte, n int, set func(lo, hi int, s string)) error {
	d := &decoder{data: data}
	dictLen := d.uvarint()
	if d.err != nil {
		return d.err
	}
	if dictLen > uint64(len(data)) {
		return fmt.Errorf("persist: string dictionary of %d entries exceeds column", dictLen)
	}
	var dictBuf [8]string // chunk dictionaries are usually a handful of entries
	dict := dictBuf[:0]
	if dictLen > uint64(len(dictBuf)) {
		dict = make([]string, 0, dictLen)
	}
	for i := uint64(0); i < dictLen; i++ {
		dict = append(dict, d.string())
		if d.err != nil {
			return d.err
		}
	}
	filled := 0
	for filled < n {
		idx := d.uvarint()
		run := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if idx >= dictLen {
			return fmt.Errorf("persist: string index %d outside dictionary of %d", idx, dictLen)
		}
		if run == 0 || run > uint64(n-filled) {
			return fmt.Errorf("persist: string run %d overflows chunk of %d", run, n)
		}
		set(filled, filled+int(run), dict[idx])
		filled += int(run)
	}
	return nil
}

func decodeStringColumn(data []byte, n int) ([]string, error) {
	out := make([]string, n)
	err := fillStringRLE(data, n, func(lo, hi int, s string) {
		for i := lo; i < hi; i++ {
			out[i] = s
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func decodeNValsColumn(data []byte, n int) ([]int, int, error) {
	d := &decoder{data: data}
	out := make([]int, 0, n)
	maxVals := 0
	for len(out) < n {
		nv := d.uvarint()
		run := d.uvarint()
		if d.err != nil {
			return nil, 0, d.err
		}
		if nv > uint64(len(data))+64 {
			// A tuple cannot carry more values than its encoding had bytes;
			// reject absurd counts before they size allocations.
			return nil, 0, fmt.Errorf("persist: value count %d not plausible", nv)
		}
		if run == 0 || run > uint64(n-len(out)) {
			return nil, 0, fmt.Errorf("persist: nvals run %d overflows chunk of %d", run, n)
		}
		if int(nv) > maxVals {
			maxVals = int(nv)
		}
		for j := uint64(0); j < run; j++ {
			out = append(out, int(nv))
		}
	}
	return out, maxVals, nil
}

// fillValueColumn decodes payload position p, calling set(i, v) for every
// event i carrying a non-null value there. Events without a value at p are
// never visited.
func fillValueColumn(data []byte, nvals []int, p, n int, set func(i int, v stt.Value)) error {
	d := &decoder{data: data}
	dictLen := d.uvarint()
	if d.err != nil {
		return d.err
	}
	if dictLen > uint64(len(data)) {
		return fmt.Errorf("persist: value dictionary of %d entries exceeds column", dictLen)
	}
	var dictBuf [8]string // value dictionaries are usually a handful of entries
	dict := dictBuf[:0]
	if dictLen > uint64(len(dictBuf)) {
		dict = make([]string, 0, dictLen)
	}
	for i := uint64(0); i < dictLen; i++ {
		dict = append(dict, d.string())
		if d.err != nil {
			return d.err
		}
	}
	m := 0 // events carrying at least p+1 values
	for _, nv := range nvals {
		if nv > p {
			m++
		}
	}
	kinds := make([]stt.Kind, 0, m)
	for len(kinds) < m {
		k := stt.Kind(d.byteVal())
		run := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if k > stt.KindTime {
			return fmt.Errorf("persist: unknown value kind %d", k)
		}
		if run == 0 || run > uint64(m-len(kinds)) {
			return fmt.Errorf("persist: kind run %d overflows column of %d", run, m)
		}
		for j := uint64(0); j < run; j++ {
			kinds = append(kinds, k)
		}
	}
	vi := 0
	for i := 0; i < n; i++ {
		if nvals[i] <= p {
			continue
		}
		switch kinds[vi] {
		case stt.KindNull:
		case stt.KindBool:
			set(i, stt.Bool(d.byteVal() != 0))
		case stt.KindInt:
			set(i, stt.Int(d.varint()))
		case stt.KindFloat:
			set(i, stt.Float(d.float()))
		case stt.KindString:
			idx := d.uvarint()
			if d.err != nil {
				return d.err
			}
			if idx >= dictLen {
				return fmt.Errorf("persist: value index %d outside dictionary of %d", idx, dictLen)
			}
			set(i, stt.String(dict[idx]))
		case stt.KindTime:
			set(i, stt.Time(d.time()))
		}
		if d.err != nil {
			return d.err
		}
		vi++
	}
	return nil
}

// decodeValueColumn decodes payload position p. The returned slice is
// indexed by chunk-local event ordinal; events without a value at p hold
// the null value.
func decodeValueColumn(data []byte, nvals []int, p, n int) ([]stt.Value, error) {
	out := make([]stt.Value, n)
	if err := fillValueColumn(data, nvals, p, n, func(i int, v stt.Value) {
		out[i] = v
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// fieldPositions returns the payload positions the named field occupies
// across the file's schemas. Memoized per SegmentInfo — the schema set of a
// file is fixed.
func (si *SegmentInfo) fieldPositions(field string) []int {
	si.fieldPosMu.Lock()
	defer si.fieldPosMu.Unlock()
	if si.fieldPos == nil {
		si.fieldPos = map[string][]int{}
	}
	if pos, ok := si.fieldPos[field]; ok {
		return pos
	}
	seen := map[int]bool{}
	pos := []int{}
	for _, s := range si.schemas {
		if i := s.IndexOf(field); i >= 0 && !seen[i] {
			seen[i] = true
			pos = append(pos, i)
		}
	}
	si.fieldPos[field] = pos
	return pos
}
