package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"streamloader/internal/obs"
	"streamloader/internal/stt"
)

// emitError marks a replay failure coming from the caller's emit callback,
// as opposed to on-disk corruption: it aborts the replay instead of
// truncating a perfectly valid file.
type emitError struct{ err error }

func (e *emitError) Error() string { return e.err.Error() }
func (e *emitError) Unwrap() error { return e.err }

// WAL record types.
const (
	recSchema byte = 1 // uvarint dictionary id, uvarint length, schema JSON
	recEvents byte = 2 // uvarint count, then count encoded events
)

// frameHeader is [uint32 payload length][uint32 CRC32C(payload)].
const frameHeader = 8

// WALOptions configure one write-ahead log.
type WALOptions struct {
	Sync         SyncPolicy
	SyncEvery    time.Duration // SyncInterval period; 0 = DefaultSyncEvery
	SegmentBytes int64         // rotation threshold; 0 = DefaultSegmentBytes
	// MinFile floors the first file number OpenWAL creates. File numbers
	// must never fall behind a recorded ShardMark — reusing a number a
	// checkpoint freed would put fresh records "before" the mark and
	// expose them to a watermark that never saw them.
	MinFile int
	// WriteHist/SyncHist time Append's buffer write and fsync syscalls;
	// nil handles are no-ops (obs.Histogram is nil-safe).
	WriteHist *obs.Histogram
	SyncHist  *obs.Histogram
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// WALFileInfo describes one sealed WAL file, for checkpointing.
type WALFileInfo struct {
	Path   string
	Events int    // event records in the file
	MaxSeq uint64 // highest warehouse seq in the file (if Events > 0)
	Size   int64
}

// WAL is a segmented append-only log. It is not internally synchronized:
// the warehouse serializes all calls under the owning shard's lock.
type WAL struct {
	dir  string
	opts WALOptions

	f        *os.File
	filePath string
	fileNum  int
	fileSize int64
	fileInfo WALFileInfo // accumulating stats for the current file

	sealed []WALFileInfo
	bytes  int64 // total live bytes, sealed + current

	dict     *schemaDict
	buf      []byte
	lastSync time.Time
	closed   bool
}

func walFileName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

// listWALFiles returns the wal files in dir in log order.
func listWALFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			files = append(files, filepath.Join(dir, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

// OpenWAL prepares dir for appending. Existing files — already replayed by
// the caller, whose surviving-file info arrives as prior — are retained as
// sealed history until DropObsolete retires them; appends go to a fresh
// file numbered after them.
func OpenWAL(dir string, opts WALOptions, prior []WALFileInfo) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:  dir,
		opts: opts.withDefaults(),
		dict: newSchemaDict(),
	}
	next := 1
	if opts.MinFile > next {
		next = opts.MinFile
	}
	for _, fi := range prior {
		base := filepath.Base(fi.Path)
		var n int
		if _, err := fmt.Sscanf(base, "wal-%d.log", &n); err == nil && n >= next {
			next = n + 1
		}
		w.sealed = append(w.sealed, fi)
		w.bytes += fi.Size
	}
	if err := w.openFile(next); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *WAL) openFile(num int) error {
	path := filepath.Join(w.dir, walFileName(num))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.filePath = path
	w.fileNum = num
	w.fileSize = 0
	w.fileInfo = WALFileInfo{Path: path}
	return nil
}

// frame appends one [len][crc][payload] frame for the payload that encode
// wrote at w.buf[start+frameHeader:], patching the reserved header bytes.
func (w *WAL) frame(start int) {
	payload := w.buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(w.buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[start+4:], checksum(payload))
}

// beginFrame reserves header space and returns the frame's start offset.
func (w *WAL) beginFrame() int {
	start := len(w.buf)
	w.buf = append(w.buf, make([]byte, frameHeader)...)
	return start
}

// appendSchemaRecord encodes one schema-definition frame into w.buf.
func (w *WAL) appendSchemaRecord(id uint64, s *stt.Schema) error {
	js, err := json.Marshal(encodeSchema(s))
	if err != nil {
		return err
	}
	start := w.beginFrame()
	w.buf = append(w.buf, recSchema)
	w.buf = appendUvarint(w.buf, id)
	w.buf = appendUvarint(w.buf, uint64(len(js)))
	w.buf = append(w.buf, js...)
	w.frame(start)
	return nil
}

// Append logs a batch of events: any schemas not yet defined in the current
// file are framed first, then one event-batch frame, all flushed in a
// single write so the batch reaches the kernel atomically with the ack.
// Fsync follows the configured policy.
func (w *WAL) Append(events []Event) error {
	if w.closed {
		return fmt.Errorf("persist: WAL is closed")
	}
	if len(events) == 0 {
		return nil
	}
	if w.fileSize >= w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	w.buf = w.buf[:0]
	for _, ev := range events {
		id, isNew := w.dict.id(ev.Tuple.Schema)
		if isNew {
			if err := w.appendSchemaRecord(id, ev.Tuple.Schema); err != nil {
				return err
			}
		}
	}
	start := w.beginFrame()
	w.buf = append(w.buf, recEvents)
	w.buf = appendUvarint(w.buf, uint64(len(events)))
	maxSeq := w.fileInfo.MaxSeq
	for _, ev := range events {
		id, _ := w.dict.id(ev.Tuple.Schema)
		w.buf = appendEvent(w.buf, ev, id)
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
	}
	w.frame(start)

	t0 := w.opts.WriteHist.Start()
	if _, err := w.f.Write(w.buf); err != nil {
		// A partial write leaves torn bytes at the fd's advanced offset;
		// rewind so the next (acked) append cannot land beyond a frame
		// replay will truncate at.
		w.rewind()
		return err
	}
	w.opts.WriteHist.Since(t0)
	if w.opts.Sync == SyncAlways {
		t0 := w.opts.SyncHist.Start()
		if err := w.f.Sync(); err != nil {
			// The frame is intact but the batch is about to be reported
			// failed: take it back out, or replay would resurrect events
			// the caller was told were not stored.
			w.rewind()
			return err
		}
		w.opts.SyncHist.Since(t0)
	}
	w.fileSize += int64(len(w.buf))
	w.bytes += int64(len(w.buf))
	w.fileInfo.Events += len(events)
	w.fileInfo.MaxSeq = maxSeq
	w.fileInfo.Size = w.fileSize

	if w.opts.Sync == SyncInterval {
		if now := time.Now(); now.Sub(w.lastSync) >= w.opts.SyncEvery {
			w.lastSync = now
			t0 := w.opts.SyncHist.Start()
			defer w.opts.SyncHist.Since(t0)
			if err := w.f.Sync(); err != nil {
				// The batch is durable-to-kernel and will be reported
				// stored; surfacing the sync error would double-report.
				// Leave it for the next sync or Close to surface.
				w.lastSync = time.Time{}
			}
		}
	}
	return nil
}

// rewind restores the current file to the last consistent frame boundary
// after a failed append. If the file cannot be restored, the WAL declares
// itself broken: failing future appends is strictly better than acking
// writes placed beyond a torn frame that replay will cut.
func (w *WAL) rewind() {
	if err := w.f.Truncate(w.fileSize); err != nil {
		w.closed = true
		w.f.Close()
		return
	}
	if _, err := w.f.Seek(w.fileSize, 0); err != nil {
		w.closed = true
		w.f.Close()
	}
}

// rotate seals the current file and starts the next one. The fresh file
// re-states every known schema so it can be decoded standalone once
// earlier files are checkpointed away.
func (w *WAL) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, w.fileInfo)
	if err := w.openFile(w.fileNum + 1); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	for id, s := range w.dict.order {
		if err := w.appendSchemaRecord(uint64(id), s); err != nil {
			return err
		}
	}
	if len(w.buf) > 0 {
		if _, err := w.f.Write(w.buf); err != nil {
			return err
		}
		w.fileSize += int64(len(w.buf))
		w.bytes += int64(len(w.buf))
		w.fileInfo.Size = w.fileSize
	}
	return nil
}

// DropObsolete deletes sealed files whose every event has warehouse seq
// below minLiveSeq — i.e. is no longer held in memory, because it was
// spilled to a segment file or evicted. Returns the bytes reclaimed.
func (w *WAL) DropObsolete(minLiveSeq uint64) int64 {
	var reclaimed int64
	kept := w.sealed[:0]
	for _, fi := range w.sealed {
		if fi.Events == 0 || fi.MaxSeq < minLiveSeq {
			if err := os.Remove(fi.Path); err != nil && !os.IsNotExist(err) {
				kept = append(kept, fi) // try again next checkpoint
				continue
			}
			reclaimed += fi.Size
			w.bytes -= fi.Size
			continue
		}
		kept = append(kept, fi)
	}
	w.sealed = kept
	return reclaimed
}

// Bytes returns the total size of live WAL files, current included.
func (w *WAL) Bytes() int64 { return w.bytes }

// Position returns the append position: the current file's number and
// size. Every record logged from now on sits at or past it.
func (w *WAL) Position() Pos { return Pos{File: w.fileNum, Off: w.fileSize} }

// Sync forces an fsync of the current file regardless of policy.
func (w *WAL) Sync() error {
	if w.closed {
		return nil
	}
	t0 := w.opts.SyncHist.Start()
	defer w.opts.SyncHist.Since(t0)
	return w.f.Sync()
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// CloseHard closes the log without syncing, simulating a crash: whatever
// the OS has not flushed is at the kernel's mercy, exactly as after a
// process kill. For recovery tests.
func (w *WAL) CloseHard() {
	if w.closed {
		return
	}
	w.closed = true
	w.f.Close()
}

// ReplayResult summarizes a WAL replay.
type ReplayResult struct {
	Files     []WALFileInfo // surviving files, in log order
	Events    int           // events handed to emit
	Truncated int           // files whose torn tail was cut
	MaxSeq    uint64        // highest warehouse seq seen
}

// ReplayWAL decodes every record in dir's WAL files in order, invoking
// emit per event with the record's log position (so callers can apply
// position-scoped filters like the retention watermark). A file ends at
// its first bad frame — short, torn or failing its checksum — and is
// truncated there so the next writer starts clean; later files still
// replay, because every file is schema-self-contained. The caller filters
// events that are durable elsewhere (spilled segments, retention
// watermark).
func ReplayWAL(dir string, emit func(Event, Pos) error) (ReplayResult, error) {
	var res ReplayResult
	files, err := listWALFiles(dir)
	if err != nil {
		return res, err
	}
	dict := map[uint64]*stt.Schema{}
	for _, path := range files {
		fi, truncated, err := replayFile(path, dict, emit, &res)
		if err != nil {
			return res, err
		}
		if truncated {
			res.Truncated++
		}
		res.Files = append(res.Files, fi)
	}
	return res, nil
}

// replayFile decodes one WAL file, truncating at the first bad frame.
func replayFile(path string, dict map[uint64]*stt.Schema, emit func(Event, Pos) error, res *ReplayResult) (WALFileInfo, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return WALFileInfo{}, false, err
	}
	fileNum := 0
	fmt.Sscanf(filepath.Base(path), "wal-%d.log", &fileNum)
	info := WALFileInfo{Path: path}
	pos := 0
	good := 0 // offset past the last fully-valid frame
	for {
		if pos+frameHeader > len(data) {
			break
		}
		plen := int(binary.LittleEndian.Uint32(data[pos:]))
		if pos+frameHeader+plen > len(data) {
			break
		}
		payload := data[pos+frameHeader : pos+frameHeader+plen]
		if checksum(payload) != binary.LittleEndian.Uint32(data[pos+4:]) {
			break
		}
		recPos := Pos{File: fileNum, Off: int64(pos)}
		if err := replayRecord(payload, recPos, dict, emit, &info, res); err != nil {
			var ee *emitError
			if errors.As(err, &ee) {
				return info, false, ee.err
			}
			// A checksummed record that fails to decode is corruption the
			// frame CRC missed (or a format bug); stop at the last good
			// frame rather than guessing.
			break
		}
		pos += frameHeader + plen
		good = pos
	}
	truncated := good < len(data)
	if truncated {
		if err := os.Truncate(path, int64(good)); err != nil {
			return info, false, err
		}
	}
	info.Size = int64(good)
	return info, truncated, nil
}

func replayRecord(payload []byte, recPos Pos, dict map[uint64]*stt.Schema, emit func(Event, Pos) error, info *WALFileInfo, res *ReplayResult) error {
	if len(payload) == 0 {
		return fmt.Errorf("persist: empty record")
	}
	d := &decoder{data: payload, pos: 1}
	switch payload[0] {
	case recSchema:
		id := d.uvarint()
		js := d.bytes(int(d.uvarint()))
		if d.err != nil {
			return d.err
		}
		var sj schemaJSON
		if err := json.Unmarshal(js, &sj); err != nil {
			return err
		}
		schema, err := globalInterner.intern(sj)
		if err != nil {
			return err
		}
		dict[id] = schema
		return nil
	case recEvents:
		n := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if n > uint64(len(payload)) {
			return fmt.Errorf("persist: event count %d exceeds record size", n)
		}
		// Decode the whole batch before emitting any of it: a record that
		// decodes partway is treated as corrupt in full, so the warehouse
		// never ingests events the truncation below then removes from disk.
		batch := make([]Event, 0, n)
		for i := uint64(0); i < n; i++ {
			batch = append(batch, d.event(dict))
			if d.err != nil {
				return d.err
			}
		}
		for _, ev := range batch {
			if err := emit(ev, recPos); err != nil {
				return &emitError{err}
			}
			info.Events++
			if ev.Seq > info.MaxSeq {
				info.MaxSeq = ev.Seq
			}
			res.Events++
			if ev.Seq > res.MaxSeq {
				res.MaxSeq = ev.Seq
			}
		}
		return nil
	default:
		return fmt.Errorf("persist: unknown record type %d", payload[0])
	}
}
