package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  viewUpdateView
}

// readSSE parses the next event/data frame off the stream.
func readSSE(t *testing.T, sc *bufio.Scanner) sseFrame {
	t.Helper()
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		case line == "":
			if f.event != "" {
				return f
			}
		}
	}
	t.Fatalf("stream ended mid-frame: %v", sc.Err())
	panic("unreachable")
}

// subscribeStream opens a subscribe request and hands back the response.
func subscribeStream(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("subscribe status = %d", resp.StatusCode)
	}
	return resp
}

// waitSrv polls cond until it holds or the deadline passes.
func waitSrv(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSubscribeSSE: the default framing is SSE — an immediate "snapshot"
// event carrying the backfilled rows, then "update" events as ingest
// advances the view.
func TestSubscribeSSE(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}
	resp := subscribeStream(t, ts.URL+"/api/warehouse/subscribe?func=count&group=source")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	first := readSSE(t, sc)
	if first.event != "snapshot" || !first.data.Resnapshot {
		t.Fatalf("first frame = %+v, want a snapshot", first)
	}
	if len(first.data.Rows) != 1 || first.data.Rows[0].Count != 10 || first.data.Rows[0].Source != "station-1" {
		t.Fatalf("backfill rows = %+v, want station-1:10", first.data.Rows)
	}
	if err := srv.Warehouse.AppendBatch(queryTuples(3)); err != nil {
		t.Fatal(err)
	}
	for {
		f := readSSE(t, sc)
		if f.data.Version <= first.data.Version {
			t.Fatalf("version went backwards: %d then %d", first.data.Version, f.data.Version)
		}
		if len(f.data.Rows) == 1 && f.data.Rows[0].Count == 13 {
			return
		}
	}
}

// TestSubscribeNDJSON: &format=ndjson frames each update as one JSON line.
func TestSubscribeNDJSON(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(5)); err != nil {
		t.Fatal(err)
	}
	resp := subscribeStream(t, ts.URL+"/api/warehouse/subscribe?func=sum&field=temperature&format=ndjson")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var u viewUpdateView
	if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
		t.Fatalf("bad line %q: %v", sc.Text(), err)
	}
	// temperatures 15..19 sum to 85.
	if !u.Resnapshot || len(u.Rows) != 1 || u.Rows[0].Value != 85 {
		t.Fatalf("first update = %+v, want sum 85", u)
	}
}

// TestSubscribePolicyParam: &policy=interval coalesces a burst; a bad
// policy is a 400.
func TestSubscribePolicyParam(t *testing.T) {
	srv, ts := newTestServer(t)
	resp := subscribeStream(t, ts.URL+"/api/warehouse/subscribe?func=count&policy=interval:30ms")
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	readSSE(t, sc) // initial snapshot (empty store)
	if err := srv.Warehouse.AppendBatch(queryTuples(50)); err != nil {
		t.Fatal(err)
	}
	f := readSSE(t, sc)
	if len(f.data.Rows) != 1 || f.data.Rows[0].Count != 50 {
		t.Fatalf("interval frame = %+v, want the coalesced count 50", f.data.Rows)
	}
}

// TestSubscribeValidation: malformed specs answer 4xx without registering
// anything.
func TestSubscribeValidation(t *testing.T) {
	srv, ts := newTestServer(t)
	for url, want := range map[string]int{
		"/api/warehouse/subscribe?func=median":                http.StatusBadRequest,
		"/api/warehouse/subscribe?func=sum":                   http.StatusBadRequest, // sum needs a field
		"/api/warehouse/subscribe?func=count&policy=cron":     http.StatusBadRequest,
		"/api/warehouse/subscribe?func=count&format=carrier":  http.StatusBadRequest,
		"/api/warehouse/subscribe?func=count&bucket=-1h":      http.StatusBadRequest,
		"/api/warehouse/subscribe?func=count&from=notatime":   http.StatusBadRequest,
		"/api/warehouse/subscribe?func=count&group=continent": http.StatusBadRequest,
	} {
		if got := getJSON(t, ts.URL+url, nil); got != want {
			t.Errorf("%s = %d, want %d", url, got, want)
		}
	}
	if n := srv.Warehouse.ViewCount(); n != 0 {
		t.Fatalf("failed subscribes left %d views", n)
	}
}

// TestSubscribeCap: the MaxSubscribers bound answers 503.
func TestSubscribeCap(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.MaxSubscribers = 1
	resp := subscribeStream(t, ts.URL+"/api/warehouse/subscribe?func=count")
	defer resp.Body.Close()
	waitSrv(t, "first subscriber registered", func() bool {
		return srv.Warehouse.SubscriberCount() == 1
	})
	if got := getJSON(t, ts.URL+"/api/warehouse/subscribe?func=count", nil); got != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscribe = %d, want 503", got)
	}
}

// TestSubscribeDisconnectFreesSlot: a client dropping mid-stream frees its
// registry slot and subscriber count.
func TestSubscribeDisconnectFreesSlot(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(5)); err != nil {
		t.Fatal(err)
	}
	resp := subscribeStream(t, ts.URL+"/api/warehouse/subscribe?func=count")
	waitSrv(t, "subscriber to register", func() bool {
		return srv.Warehouse.SubscriberCount() == 1 && srv.Warehouse.ViewCount() == 1
	})
	resp.Body.Close() // mid-stream disconnect
	waitSrv(t, "disconnect to free the registry slot", func() bool {
		return srv.Warehouse.SubscriberCount() == 0 && srv.Warehouse.ViewCount() == 0
	})
}

// TestSubscribeSharing: identical subscriptions share one server-side view.
func TestSubscribeSharing(t *testing.T) {
	srv, ts := newTestServer(t)
	var bodies []*http.Response
	for i := 0; i < 4; i++ {
		resp := subscribeStream(t, ts.URL+"/api/warehouse/subscribe?func=count&group=source")
		bodies = append(bodies, resp)
		defer resp.Body.Close()
	}
	waitSrv(t, "all subscribers to register", func() bool {
		return srv.Warehouse.SubscriberCount() == 4
	})
	if n := srv.Warehouse.ViewCount(); n != 1 {
		t.Fatalf("4 identical subscribes made %d views, want 1 shared", n)
	}
	_ = bodies
}
