package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"streamloader/internal/ops"
	"streamloader/internal/warehouse"
)

// DefaultMaxSubscribers caps the live subscribe clients when the Server
// does not configure its own bound. Each subscriber costs one goroutine
// and one bounded channel, so the cap protects file descriptors and
// memory, not the ingest path — view maintenance cost is per view, not
// per subscriber.
const DefaultMaxSubscribers = 10_000

// subscriberBuffer is the per-client update channel depth. Updates are
// full snapshots (latest-wins), so a shallow buffer costs a slow client
// freshness, never correctness.
const subscriberBuffer = 16

// viewUpdateView is the wire form of one warehouse.ViewUpdate.
type viewUpdateView struct {
	Version    uint64       `json:"version"`
	Rows       []aggRowView `json:"rows"`
	Resnapshot bool         `json:"resnapshot,omitempty"`
	Shed       uint64       `json:"shed,omitempty"`
	Error      string       `json:"error,omitempty"`
}

// handleWarehouseSubscribe registers (or shares) a standing aggregate view
// and streams its snapshots: the aggregate endpoint's params (func, field,
// group, bucket, plus the shared filter) with &policy= (event — the
// default —, interval:<dur>, count:<n>) choosing the push cadence and
// &format= choosing the framing — "sse" (default; text/event-stream with
// "snapshot"/"update"/"error" events) or "ndjson" (one update object per
// line). The first frame is always a full snapshot backfilled from
// cold/hot history; every later frame is again a full snapshot, so a
// client that misses frames (slow-consumer shedding sets "shed" and
// "resnapshot") loses freshness, never correctness. Identical
// (query, policy) subscriptions share one maintained view server-side.
func (s *Server) handleWarehouseSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.Warehouse == nil {
		writeError(w, http.StatusNotFound, "no warehouse configured")
		return
	}
	aq, err := warehouse.ParseAggQueryValues(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	aq.MaxGroups = s.AggMaxGroups
	policy, err := ops.ParseUpdatePolicy(r.URL.Query().Get("policy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad policy: %v", err)
		return
	}
	var sse bool
	switch f := r.URL.Query().Get("format"); f {
	case "", "sse":
		sse = true
	case "ndjson":
	default:
		writeError(w, http.StatusBadRequest, "bad format %q (want sse or ndjson)", f)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	max := s.MaxSubscribers
	if max <= 0 {
		max = DefaultMaxSubscribers
	}
	sub, err := s.Warehouse.Subscribe(aq, warehouse.SubscribeOptions{
		Policy: policy, Buffer: subscriberBuffer, MaxSubscribers: max,
	})
	if err != nil {
		if errors.Is(err, warehouse.ErrTooManySubscribers) {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, warehouseErrStatus(err), "%v", err)
		return
	}
	defer sub.Close()

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush() // commit headers before the first update arrives

	enc := json.NewEncoder(w)
	bucketed := aq.Bucket > 0
	for {
		select {
		case <-r.Context().Done():
			return
		case u, ok := <-sub.Updates():
			if !ok {
				return // view closed (warehouse shutdown)
			}
			uv := viewUpdateView{
				Version:    u.Version,
				Rows:       aggRowViews(u.Rows, bucketed),
				Resnapshot: u.Resnapshot,
				Shed:       u.Shed,
			}
			if u.Err != nil {
				uv.Error = u.Err.Error()
			}
			if sse {
				event := "update"
				switch {
				case u.Err != nil:
					event = "error"
				case u.Resnapshot:
					event = "snapshot"
				}
				data, err := json.Marshal(uv)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
					return
				}
			} else if err := enc.Encode(uv); err != nil {
				return
			}
			flusher.Flush()
			if u.Err != nil {
				return
			}
		}
	}
}
