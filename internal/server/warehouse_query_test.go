package server

import (
	"net/url"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var queryWeather = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
}, stt.GranMinute, stt.SpatPoint, "weather")

func queryTuples(n int) []*stt.Tuple {
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	out := make([]*stt.Tuple, n)
	for i := range out {
		tup := &stt.Tuple{
			Schema: queryWeather,
			Values: []stt.Value{stt.Float(float64(15 + i))},
			Time:   base.Add(time.Duration(i) * time.Minute),
			Lat:    34.70, Lon: 135.50,
			Theme:  "weather",
			Source: "station-1",
		}
		out[i] = tup.AlignSTT()
	}
	return out
}

func TestWarehouseQuery(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}

	var res struct {
		Count  int `json:"count"`
		Events []struct {
			Seq   uint64         `json:"seq"`
			Event map[string]any `json:"event"`
		} `json:"events"`
		Segments struct {
			Scanned int `json:"segments_scanned"`
			Pruned  int `json:"segments_pruned"`
		} `json:"segments"`
	}
	u := ts.URL + "/api/warehouse/query?themes=weather&cond=" + url.QueryEscape("temperature > 19")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	// temperatures 15..24: five exceed 19.
	if res.Count != 5 || len(res.Events) != 5 {
		t.Fatalf("count = %d, events = %d, want 5", res.Count, len(res.Events))
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Seq < res.Events[i-1].Seq {
			t.Error("results out of order")
		}
	}

	// Limit caps the result at the earliest events.
	res.Events = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=3", &res); code != 200 {
		t.Fatalf("limit query status = %d", code)
	}
	if res.Count != 3 {
		t.Fatalf("limited count = %d, want 3", res.Count)
	}

	// Time-range constraint.
	res.Events = nil
	u = ts.URL + "/api/warehouse/query?from=" + url.QueryEscape("2016-03-15T00:02:00Z") +
		"&to=" + url.QueryEscape("2016-03-15T00:05:00Z")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("range query status = %d", code)
	}
	if res.Count != 3 {
		t.Fatalf("range count = %d, want 3", res.Count)
	}
	// The query response carries segment-pruning telemetry: ten events in
	// one fresh segment means exactly one segment was scanned, none pruned.
	if res.Segments.Scanned != 1 || res.Segments.Pruned != 0 {
		t.Errorf("segments = %+v, want 1 scanned / 0 pruned", res.Segments)
	}
}

func TestWarehouseQueryBadParams(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"from=yesterday",
		"to=later",
		"region=1,2,3",
		"limit=0",
		"limit=abc",
	} {
		if code := getJSON(t, ts.URL+"/api/warehouse/query?"+q, nil); code != 400 {
			t.Errorf("query %q status = %d, want 400", q, code)
		}
	}
}
