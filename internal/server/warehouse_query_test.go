package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var queryWeather = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
}, stt.GranMinute, stt.SpatPoint, "weather")

func queryTuples(n int) []*stt.Tuple {
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	out := make([]*stt.Tuple, n)
	for i := range out {
		tup := &stt.Tuple{
			Schema: queryWeather,
			Values: []stt.Value{stt.Float(float64(15 + i))},
			Time:   base.Add(time.Duration(i) * time.Minute),
			Lat:    34.70, Lon: 135.50,
			Theme:  "weather",
			Source: "station-1",
		}
		out[i] = tup.AlignSTT()
	}
	return out
}

func TestWarehouseQuery(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}

	var res struct {
		Count  int `json:"count"`
		Events []struct {
			Seq   uint64         `json:"seq"`
			Event map[string]any `json:"event"`
		} `json:"events"`
		Segments struct {
			Scanned int `json:"segments_scanned"`
			Pruned  int `json:"segments_pruned"`
		} `json:"segments"`
	}
	u := ts.URL + "/api/warehouse/query?themes=weather&cond=" + url.QueryEscape("temperature > 19")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	// temperatures 15..24: five exceed 19.
	if res.Count != 5 || len(res.Events) != 5 {
		t.Fatalf("count = %d, events = %d, want 5", res.Count, len(res.Events))
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Seq < res.Events[i-1].Seq {
			t.Error("results out of order")
		}
	}

	// Limit caps the result at the earliest events.
	res.Events = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=3", &res); code != 200 {
		t.Fatalf("limit query status = %d", code)
	}
	if res.Count != 3 {
		t.Fatalf("limited count = %d, want 3", res.Count)
	}

	// Time-range constraint.
	res.Events = nil
	u = ts.URL + "/api/warehouse/query?from=" + url.QueryEscape("2016-03-15T00:02:00Z") +
		"&to=" + url.QueryEscape("2016-03-15T00:05:00Z")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("range query status = %d", code)
	}
	if res.Count != 3 {
		t.Fatalf("range count = %d, want 3", res.Count)
	}
	// The query response carries segment-pruning telemetry: ten events in
	// one fresh segment means exactly one segment was scanned, none pruned.
	if res.Segments.Scanned != 1 || res.Segments.Pruned != 0 {
		t.Errorf("segments = %+v, want 1 scanned / 0 pruned", res.Segments)
	}
}

func TestWarehouseQueryBadParams(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"from=yesterday",
		"to=later",
		"region=1,2,3",
		"limit=-1",
		"limit=10001",
		"limit=abc",
		"offset=-1",
		"offset=abc",
	} {
		if code := getJSON(t, ts.URL+"/api/warehouse/query?"+q, nil); code != 400 {
			t.Errorf("query %q status = %d, want 400", q, code)
		}
	}
}

// TestWarehouseQueryCountOnly: limit=0 returns the match count without
// materializing any event, through the warehouse Count fast path.
func TestWarehouseQueryCountOnly(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(500)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count    int   `json:"count"`
		Events   []any `json:"events"`
		Segments struct {
			Scanned     int `json:"segments_scanned"`
			CacheHits   int `json:"cold_cache_hits"`
			CacheMisses int `json:"cold_cache_misses"`
		} `json:"segments"`
		Truncated bool `json:"truncated"`
	}
	// Unconstrained: the full cardinality, far past the 10000-page ceiling
	// logic, with zero events materialized.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=0", &res); code != 200 {
		t.Fatalf("count query status = %d", code)
	}
	if res.Count != 500 || len(res.Events) != 0 || res.Truncated {
		t.Fatalf("count-only = %d events=%d truncated=%v, want 500/0/false", res.Count, len(res.Events), res.Truncated)
	}
	// Time-windowed count still takes the no-materialization path.
	u := ts.URL + "/api/warehouse/query?limit=0&from=" + url.QueryEscape("2016-03-15T00:10:00Z") +
		"&to=" + url.QueryEscape("2016-03-15T01:10:00Z")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("windowed count status = %d", code)
	}
	if res.Count != 60 {
		t.Fatalf("windowed count = %d, want 60", res.Count)
	}
	// A condition forces evaluation but still returns no events.
	u = ts.URL + "/api/warehouse/query?limit=0&cond=" + url.QueryEscape("temperature > 19")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("cond count status = %d", code)
	}
	if res.Count != 495 || len(res.Events) != 0 || res.Truncated {
		t.Fatalf("cond count = %d events=%d truncated=%v, want 495/0/false", res.Count, len(res.Events), res.Truncated)
	}
}

// TestWarehouseQueryCountOnlyCondCeiling: a conditioned count has to
// evaluate events, so it keeps the handler's 10000-event materialization
// ceiling and reports truncation past it rather than reading back the
// whole history.
func TestWarehouseQueryCountOnlyCondCeiling(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10050)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count     int   `json:"count"`
		Events    []any `json:"events"`
		Truncated bool  `json:"truncated"`
	}
	u := ts.URL + "/api/warehouse/query?limit=0&cond=" + url.QueryEscape("temperature > 0")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Count != 10000 || !res.Truncated || len(res.Events) != 0 {
		t.Fatalf("ceiling count = %d truncated=%v events=%d, want 10000/true/0", res.Count, res.Truncated, len(res.Events))
	}
	// Without a condition the count stays exact and unbounded.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=0", &res); code != 200 {
		t.Fatal("bare count status")
	}
	if res.Count != 10050 || res.Truncated {
		t.Fatalf("bare count = %d truncated=%v, want 10050/false", res.Count, res.Truncated)
	}
}

// TestWarehouseQueryPagination pages a result set with offset/limit and
// checks the truncated flag and page boundaries.
func TestWarehouseQueryPagination(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count  int `json:"count"`
		Events []struct {
			Seq uint64 `json:"seq"`
		} `json:"events"`
		Offset    int  `json:"offset"`
		Truncated bool `json:"truncated"`
	}
	var seen []uint64
	for page := 0; page < 5; page++ {
		res.Events = nil
		u := ts.URL + "/api/warehouse/query?limit=4&offset=" + strconv.Itoa(page*4)
		if code := getJSON(t, u, &res); code != 200 {
			t.Fatalf("page %d status = %d", page, code)
		}
		if res.Offset != page*4 {
			t.Fatalf("page %d offset echoed as %d", page, res.Offset)
		}
		for _, ev := range res.Events {
			seen = append(seen, ev.Seq)
		}
		wantTruncated := page < 2 // 10 events in pages of 4: 4, 4, 2
		if res.Truncated != wantTruncated {
			t.Fatalf("page %d truncated = %v, want %v (count %d)", page, res.Truncated, wantTruncated, res.Count)
		}
		if !res.Truncated {
			break
		}
	}
	if len(seen) != 10 {
		t.Fatalf("paged through %d events, want 10", len(seen))
	}
	for i, seq := range seen {
		if seq != uint64(i) {
			t.Fatalf("page order broken: seen[%d] = %d", i, seq)
		}
	}

	// An offset past the end returns an empty, non-truncated page.
	res.Events = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=4&offset=50", &res); code != 200 {
		t.Fatal("offset past end must succeed")
	}
	if res.Count != 0 || res.Truncated {
		t.Fatalf("past-end page: count=%d truncated=%v", res.Count, res.Truncated)
	}
}

// flushRecorder is a ResponseWriter that records how many response bytes
// had been written at each explicit Flush, so tests can prove a handler
// streamed incrementally instead of buffering to the end.
type flushRecorder struct {
	header     http.Header
	buf        bytes.Buffer
	status     int
	flushMarks []int
}

func newFlushRecorder() *flushRecorder {
	return &flushRecorder{header: http.Header{}, status: http.StatusOK}
}

func (r *flushRecorder) Header() http.Header { return r.header }
func (r *flushRecorder) WriteHeader(code int) {
	r.status = code
}
func (r *flushRecorder) Write(p []byte) (int, error) { return r.buf.Write(p) }
func (r *flushRecorder) Flush() {
	r.flushMarks = append(r.flushMarks, r.buf.Len())
}

// droppingWriter simulates a client that disconnects mid-stream: every
// write past failAfter bytes fails.
type droppingWriter struct {
	flushRecorder
	failAfter int
}

func (w *droppingWriter) Write(p []byte) (int, error) {
	if w.buf.Len() >= w.failAfter {
		return 0, errors.New("client gone")
	}
	return w.buf.Write(p)
}

// TestWarehouseQueryNDJSON: format=ndjson streams one event object per
// line, flushes before the response completes, and terminates with a
// summary line carrying the JSON envelope's fields.
func TestWarehouseQueryNDJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(300)); err != nil {
		t.Fatal(err)
	}
	rec := newFlushRecorder()
	req := httptest.NewRequest("GET", "/api/warehouse/query?format=ndjson&limit=200", nil)
	srv.Handler().ServeHTTP(rec, req)
	if rec.status != 200 {
		t.Fatalf("status = %d", rec.status)
	}
	if ct := rec.header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	// 200 event lines at 64 lines per flush: at least two flushes landed
	// strictly before the stream was complete.
	total := rec.buf.Len()
	early := 0
	for _, mark := range rec.flushMarks {
		if mark > 0 && mark < total {
			early++
		}
	}
	if early < 2 {
		t.Fatalf("flush marks %v: want >= 2 flushes before completion (total %d bytes)", rec.flushMarks, total)
	}

	sc := bufio.NewScanner(bytes.NewReader(rec.buf.Bytes()))
	var seqs []uint64
	sawSummary := false
	for sc.Scan() {
		line := sc.Text()
		if sawSummary {
			t.Fatal("lines after the summary")
		}
		var ev struct {
			Seq     *uint64 `json:"seq"`
			Event   map[string]any
			Summary *struct {
				Count     int  `json:"count"`
				Truncated bool `json:"truncated"`
			} `json:"summary"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("malformed NDJSON line %q: %v", line, err)
		}
		if ev.Summary != nil {
			sawSummary = true
			if ev.Summary.Count != 200 || !ev.Summary.Truncated {
				t.Fatalf("summary = %+v, want count 200 truncated", ev.Summary)
			}
			continue
		}
		if ev.Seq == nil || ev.Event == nil {
			t.Fatalf("event line missing seq/event: %q", line)
		}
		seqs = append(seqs, *ev.Seq)
	}
	if !sawSummary {
		t.Fatal("stream did not end with a summary line")
	}
	if len(seqs) != 200 {
		t.Fatalf("%d event lines, want 200", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("line %d seq = %d, out of order", i, seq)
		}
	}
}

// TestWarehouseQueryNDJSONCountOnly: limit=0 under ndjson is a single
// summary line.
func TestWarehouseQueryNDJSONCountOnly(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(50)); err != nil {
		t.Fatal(err)
	}
	rec := newFlushRecorder()
	req := httptest.NewRequest("GET", "/api/warehouse/query?format=ndjson&limit=0", nil)
	srv.Handler().ServeHTTP(rec, req)
	lines := strings.Split(strings.TrimSpace(rec.buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("count-only stream has %d lines, want 1", len(lines))
	}
	var line struct {
		Summary *struct {
			Count int `json:"count"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil || line.Summary == nil {
		t.Fatalf("bad summary line %q: %v", lines[0], err)
	}
	if line.Summary.Count != 50 {
		t.Fatalf("count = %d, want 50", line.Summary.Count)
	}
}

// TestWarehouseQueryNDJSONDisconnect: a client vanishing mid-stream must
// not wedge or panic the handler — it just stops writing.
func TestWarehouseQueryNDJSONDisconnect(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(500)); err != nil {
		t.Fatal(err)
	}
	rec := &droppingWriter{flushRecorder: *newFlushRecorder(), failAfter: 2048}
	req := httptest.NewRequest("GET", "/api/warehouse/query?format=ndjson&limit=500", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Handler().ServeHTTP(rec, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler wedged after client disconnect")
	}
	if strings.Contains(rec.buf.String(), `"summary"`) {
		t.Fatal("summary written despite disconnect")
	}
}

func TestWarehouseQueryBadFormat(t *testing.T) {
	_, ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/api/warehouse/query?format=xml", nil); code != 400 {
		t.Fatalf("format=xml status = %d, want 400", code)
	}
}

// TestWarehouseQueryPagingEdges: offset landing exactly on the end, and
// limit=0 combined with offset, keep the truncated flag honest.
func TestWarehouseQueryPagingEdges(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(8)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count     int   `json:"count"`
		Events    []any `json:"events"`
		Truncated bool  `json:"truncated"`
		Offset    int   `json:"offset"`
	}
	// Offset exactly at the end: empty page, not truncated.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=4&offset=8", &res); code != 200 {
		t.Fatal("offset at end must succeed")
	}
	if res.Count != 0 || res.Truncated {
		t.Fatalf("page at end: %+v", res)
	}
	// Last full page: present, not truncated.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=4&offset=4", &res); code != 200 {
		t.Fatal("last page must succeed")
	}
	if res.Count != 4 || res.Truncated {
		t.Fatalf("last page: %+v", res)
	}
	// limit=0 ignores offset entirely (count-only) and echoes offset 0.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=0&offset=5", &res); code != 200 {
		t.Fatal("count-only with offset must succeed")
	}
	if res.Count != 8 || res.Offset != 0 || res.Truncated {
		t.Fatalf("count-only with offset: %+v", res)
	}
	// limit=0 with a cond keeps the count exact under the ceiling.
	u := ts.URL + "/api/warehouse/query?limit=0&offset=3&cond=" + url.QueryEscape("temperature > 16")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatal("cond count with offset must succeed")
	}
	if res.Count != 6 || res.Truncated {
		t.Fatalf("cond count with offset: %+v", res)
	}
}

// TestWarehouseStatsExposesDurability checks the durable-mode counters
// ride the stats payload.
func TestWarehouseStatsExposesDurability(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}
	var st struct {
		Events          int    `json:"events"`
		SegmentsSpilled uint64 `json:"segments_spilled"`
		WALBytes        *int64 `json:"wal_bytes"`
		DiskBytes       *int64 `json:"disk_bytes"`
		Recovered       *int64 `json:"recovered_events"`
	}
	if code := getJSON(t, ts.URL+"/api/warehouse/stats", &st); code != 200 {
		t.Fatal("stats status")
	}
	if st.Events != 10 {
		t.Fatalf("events = %d", st.Events)
	}
	// The test server's warehouse is in-memory: the fields must be present
	// (not omitted) and zero.
	if st.WALBytes == nil || st.DiskBytes == nil || st.Recovered == nil {
		t.Fatal("durability fields missing from stats payload")
	}
	if *st.WALBytes != 0 || *st.DiskBytes != 0 || st.SegmentsSpilled != 0 {
		t.Fatalf("in-memory warehouse reports disk usage: %+v", st)
	}
}
