package server

import (
	"net/url"
	"strconv"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var queryWeather = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
}, stt.GranMinute, stt.SpatPoint, "weather")

func queryTuples(n int) []*stt.Tuple {
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	out := make([]*stt.Tuple, n)
	for i := range out {
		tup := &stt.Tuple{
			Schema: queryWeather,
			Values: []stt.Value{stt.Float(float64(15 + i))},
			Time:   base.Add(time.Duration(i) * time.Minute),
			Lat:    34.70, Lon: 135.50,
			Theme:  "weather",
			Source: "station-1",
		}
		out[i] = tup.AlignSTT()
	}
	return out
}

func TestWarehouseQuery(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}

	var res struct {
		Count  int `json:"count"`
		Events []struct {
			Seq   uint64         `json:"seq"`
			Event map[string]any `json:"event"`
		} `json:"events"`
		Segments struct {
			Scanned int `json:"segments_scanned"`
			Pruned  int `json:"segments_pruned"`
		} `json:"segments"`
	}
	u := ts.URL + "/api/warehouse/query?themes=weather&cond=" + url.QueryEscape("temperature > 19")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	// temperatures 15..24: five exceed 19.
	if res.Count != 5 || len(res.Events) != 5 {
		t.Fatalf("count = %d, events = %d, want 5", res.Count, len(res.Events))
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Seq < res.Events[i-1].Seq {
			t.Error("results out of order")
		}
	}

	// Limit caps the result at the earliest events.
	res.Events = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=3", &res); code != 200 {
		t.Fatalf("limit query status = %d", code)
	}
	if res.Count != 3 {
		t.Fatalf("limited count = %d, want 3", res.Count)
	}

	// Time-range constraint.
	res.Events = nil
	u = ts.URL + "/api/warehouse/query?from=" + url.QueryEscape("2016-03-15T00:02:00Z") +
		"&to=" + url.QueryEscape("2016-03-15T00:05:00Z")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("range query status = %d", code)
	}
	if res.Count != 3 {
		t.Fatalf("range count = %d, want 3", res.Count)
	}
	// The query response carries segment-pruning telemetry: ten events in
	// one fresh segment means exactly one segment was scanned, none pruned.
	if res.Segments.Scanned != 1 || res.Segments.Pruned != 0 {
		t.Errorf("segments = %+v, want 1 scanned / 0 pruned", res.Segments)
	}
}

func TestWarehouseQueryBadParams(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"from=yesterday",
		"to=later",
		"region=1,2,3",
		"limit=-1",
		"limit=10001",
		"limit=abc",
		"offset=-1",
		"offset=abc",
	} {
		if code := getJSON(t, ts.URL+"/api/warehouse/query?"+q, nil); code != 400 {
			t.Errorf("query %q status = %d, want 400", q, code)
		}
	}
}

// TestWarehouseQueryCountOnly: limit=0 returns the match count without
// materializing any event, through the warehouse Count fast path.
func TestWarehouseQueryCountOnly(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(500)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count    int   `json:"count"`
		Events   []any `json:"events"`
		Segments struct {
			Scanned     int `json:"segments_scanned"`
			CacheHits   int `json:"cold_cache_hits"`
			CacheMisses int `json:"cold_cache_misses"`
		} `json:"segments"`
		Truncated bool `json:"truncated"`
	}
	// Unconstrained: the full cardinality, far past the 10000-page ceiling
	// logic, with zero events materialized.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=0", &res); code != 200 {
		t.Fatalf("count query status = %d", code)
	}
	if res.Count != 500 || len(res.Events) != 0 || res.Truncated {
		t.Fatalf("count-only = %d events=%d truncated=%v, want 500/0/false", res.Count, len(res.Events), res.Truncated)
	}
	// Time-windowed count still takes the no-materialization path.
	u := ts.URL + "/api/warehouse/query?limit=0&from=" + url.QueryEscape("2016-03-15T00:10:00Z") +
		"&to=" + url.QueryEscape("2016-03-15T01:10:00Z")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("windowed count status = %d", code)
	}
	if res.Count != 60 {
		t.Fatalf("windowed count = %d, want 60", res.Count)
	}
	// A condition forces evaluation but still returns no events.
	u = ts.URL + "/api/warehouse/query?limit=0&cond=" + url.QueryEscape("temperature > 19")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("cond count status = %d", code)
	}
	if res.Count != 495 || len(res.Events) != 0 || res.Truncated {
		t.Fatalf("cond count = %d events=%d truncated=%v, want 495/0/false", res.Count, len(res.Events), res.Truncated)
	}
}

// TestWarehouseQueryCountOnlyCondCeiling: a conditioned count has to
// evaluate events, so it keeps the handler's 10000-event materialization
// ceiling and reports truncation past it rather than reading back the
// whole history.
func TestWarehouseQueryCountOnlyCondCeiling(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10050)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count     int   `json:"count"`
		Events    []any `json:"events"`
		Truncated bool  `json:"truncated"`
	}
	u := ts.URL + "/api/warehouse/query?limit=0&cond=" + url.QueryEscape("temperature > 0")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Count != 10000 || !res.Truncated || len(res.Events) != 0 {
		t.Fatalf("ceiling count = %d truncated=%v events=%d, want 10000/true/0", res.Count, res.Truncated, len(res.Events))
	}
	// Without a condition the count stays exact and unbounded.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=0", &res); code != 200 {
		t.Fatal("bare count status")
	}
	if res.Count != 10050 || res.Truncated {
		t.Fatalf("bare count = %d truncated=%v, want 10050/false", res.Count, res.Truncated)
	}
}

// TestWarehouseQueryPagination pages a result set with offset/limit and
// checks the truncated flag and page boundaries.
func TestWarehouseQueryPagination(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Count  int `json:"count"`
		Events []struct {
			Seq uint64 `json:"seq"`
		} `json:"events"`
		Offset    int  `json:"offset"`
		Truncated bool `json:"truncated"`
	}
	var seen []uint64
	for page := 0; page < 5; page++ {
		res.Events = nil
		u := ts.URL + "/api/warehouse/query?limit=4&offset=" + strconv.Itoa(page*4)
		if code := getJSON(t, u, &res); code != 200 {
			t.Fatalf("page %d status = %d", page, code)
		}
		if res.Offset != page*4 {
			t.Fatalf("page %d offset echoed as %d", page, res.Offset)
		}
		for _, ev := range res.Events {
			seen = append(seen, ev.Seq)
		}
		wantTruncated := page < 2 // 10 events in pages of 4: 4, 4, 2
		if res.Truncated != wantTruncated {
			t.Fatalf("page %d truncated = %v, want %v (count %d)", page, res.Truncated, wantTruncated, res.Count)
		}
		if !res.Truncated {
			break
		}
	}
	if len(seen) != 10 {
		t.Fatalf("paged through %d events, want 10", len(seen))
	}
	for i, seq := range seen {
		if seq != uint64(i) {
			t.Fatalf("page order broken: seen[%d] = %d", i, seq)
		}
	}

	// An offset past the end returns an empty, non-truncated page.
	res.Events = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=4&offset=50", &res); code != 200 {
		t.Fatal("offset past end must succeed")
	}
	if res.Count != 0 || res.Truncated {
		t.Fatalf("past-end page: count=%d truncated=%v", res.Count, res.Truncated)
	}
}

// TestWarehouseStatsExposesDurability checks the durable-mode counters
// ride the stats payload.
func TestWarehouseStatsExposesDurability(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}
	var st struct {
		Events          int    `json:"events"`
		SegmentsSpilled uint64 `json:"segments_spilled"`
		WALBytes        *int64 `json:"wal_bytes"`
		DiskBytes       *int64 `json:"disk_bytes"`
		Recovered       *int64 `json:"recovered_events"`
	}
	if code := getJSON(t, ts.URL+"/api/warehouse/stats", &st); code != 200 {
		t.Fatal("stats status")
	}
	if st.Events != 10 {
		t.Fatalf("events = %d", st.Events)
	}
	// The test server's warehouse is in-memory: the fields must be present
	// (not omitted) and zero.
	if st.WALBytes == nil || st.DiskBytes == nil || st.Recovered == nil {
		t.Fatal("durability fields missing from stats payload")
	}
	if *st.WALBytes != 0 || *st.DiskBytes != 0 || st.SegmentsSpilled != 0 {
		t.Fatalf("in-memory warehouse reports disk usage: %+v", st)
	}
}
