package server

import (
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"time"

	"streamloader/internal/obs"
)

// handleMetrics serves the process registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.Obs.WritePrometheus(w)
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter is statusWriter for an underlying writer that can stream.
// Wrapping must not change whether the writer implements http.Flusher: the
// subscribe endpoint refuses non-flushable writers, and NDJSON streaming
// silently degrades without it.
type flushWriter struct {
	*statusWriter
	f http.Flusher
}

func (w *flushWriter) Flush() { w.f.Flush() }

// wrapWriter returns the status recorder plus the writer to pass downstream,
// which exposes Flush exactly when the original writer does.
func wrapWriter(w http.ResponseWriter) (*statusWriter, http.ResponseWriter) {
	sw := &statusWriter{ResponseWriter: w}
	if f, ok := w.(http.Flusher); ok {
		return sw, &flushWriter{statusWriter: sw, f: f}
	}
	return sw, sw
}

// instrument wraps the routing table with per-route latency and request
// counting. The route label is the ServeMux pattern that matched (ServeMux
// stamps r.Pattern in place, so it is readable after next returns) — never
// the raw URL, which would explode series cardinality.
func (s *Server) instrument(next http.Handler) http.Handler {
	if s.Obs == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw, ww := wrapWriter(w)
		next.ServeHTTP(ww, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.Obs.HistogramWith("streamloader_http_request_seconds",
			obs.Labels("route", route),
			"Latency of one HTTP request, labeled by mux pattern.").Observe(time.Since(t0))
		s.Obs.CounterWith("streamloader_http_requests_total",
			obs.Labels("route", route, "code", strconv.Itoa(sw.status)),
			"HTTP requests by route and status code.").Inc()
	})
}

// queryTrace decides the tracing mode for one query/aggregate request: the
// client asked for a span breakdown (?trace=1), or the slow-query log is
// armed and needs spans to explain an offender. Returns a nil trace when
// neither applies, so the common path pays nothing.
func (s *Server) queryTrace(r *http.Request, name string) (tr *obs.Trace, wantTrace bool) {
	wantTrace = r.URL.Query().Get("trace") == "1"
	if wantTrace || s.SlowQuery > 0 {
		tr = obs.NewTrace(name)
	}
	return tr, wantTrace
}

// noteSlow logs one line — URL, elapsed, span breakdown — for a query that
// exceeded the slow-query threshold, and counts it.
func (s *Server) noteSlow(r *http.Request, tr *obs.Trace, start time.Time) {
	if s.SlowQuery <= 0 {
		return
	}
	elapsed := time.Since(start)
	if elapsed < s.SlowQuery {
		return
	}
	s.Obs.Counter("streamloader_slow_queries_total",
		"Queries that exceeded the slow-query threshold.").Inc()
	spans, _ := json.Marshal(tr.Report())
	log.Printf("slow query: %s %s took %s (threshold %s) trace=%s",
		r.Method, r.URL.RequestURI(), elapsed, s.SlowQuery, spans)
}
