package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/obs"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stream"
	"streamloader/internal/viz"
	"streamloader/internal/warehouse"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	net, err := network.Star(network.TopologyConfig{Nodes: 2, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker("test")
	sensors := map[string]*sensor.Sensor{}
	for i, typ := range []sensor.Type{sensor.TypeTemperature, sensor.TypeRain} {
		s, err := sensor.New(sensor.Spec{
			ID: fmt.Sprintf("%s-1", typ), Type: typ,
			Location: geo.OsakaCenter, NodeID: "node-00",
			Seed: int64(i), FrequencyHz: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sensors[s.ID()] = s
		if err := broker.Publish(s.Meta()); err != nil {
			t.Fatal(err)
		}
	}
	mon := monitor.New()
	// An instrumented warehouse, as cmd/streamloader wires it, so every
	// handler test also exercises the metrics middleware and collectors.
	wh := warehouse.NewWithConfig(warehouse.Config{Obs: obs.NewRegistry()})
	board, err := viz.NewBoard(geo.Osaka, 8, 8, "")
	if err != nil {
		t.Fatal(err)
	}
	exec, err := executor.New(executor.Config{
		Network: net, Broker: broker, Monitor: mon,
		Clock: stream.NewVirtualClock(time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)),
		Sensors: func(id string) (executor.SensorSource, bool) {
			s, ok := sensors[id]
			return s, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(net, broker, exec, mon, wh, board, sensors)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func specJSON() *dataflow.Spec {
	return &dataflow.Spec{
		Name: "web-flow",
		Nodes: []dataflow.NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temperature-1"},
			{ID: "hot", Kind: "filter", Cond: "temperature > -100"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []dataflow.EdgeSpec{
			{From: "src", To: "hot"},
			{From: "hot", To: "out"},
		},
	}
}

func TestSensorsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var sensors []map[string]any
	if code := getJSON(t, ts.URL+"/api/sensors", &sensors); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(sensors) != 2 {
		t.Fatalf("sensors = %d", len(sensors))
	}
	if sensors[0]["schema"] == "" {
		t.Error("schema missing")
	}
	// Filter by type.
	var rain []map[string]any
	getJSON(t, ts.URL+"/api/sensors?type=rain", &rain)
	if len(rain) != 1 {
		t.Errorf("rain = %d", len(rain))
	}
}

func TestSensorGroupsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var groups map[string][]string
	if code := getJSON(t, ts.URL+"/api/sensors/groups?by=type", &groups); code != 200 {
		t.Fatal("status")
	}
	if len(groups["temperature"]) != 1 || len(groups["rain"]) != 1 {
		t.Errorf("groups = %v", groups)
	}
	if code := getJSON(t, ts.URL+"/api/sensors/groups?by=color", nil); code != 400 {
		t.Error("bad criterion must 400")
	}
}

func TestBuiltinsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var out map[string][]string
	getJSON(t, ts.URL+"/api/builtins", &out)
	if len(out["functions"]) < 20 {
		t.Errorf("functions = %d", len(out["functions"]))
	}
}

func TestDataflowLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	// Create.
	if code := postJSON(t, ts.URL+"/api/dataflows", specJSON(), nil); code != 201 {
		t.Fatalf("create status %d", code)
	}
	// List.
	var names []string
	getJSON(t, ts.URL+"/api/dataflows", &names)
	if len(names) != 1 || names[0] != "web-flow" {
		t.Fatalf("list = %v", names)
	}
	// Get.
	var spec dataflow.Spec
	if code := getJSON(t, ts.URL+"/api/dataflows/web-flow", &spec); code != 200 {
		t.Fatal("get failed")
	}
	if len(spec.Nodes) != 3 {
		t.Error("spec lost nodes")
	}
	// Validate.
	var vres struct {
		Valid       bool                 `json:"valid"`
		Diagnostics dataflow.Diagnostics `json:"diagnostics"`
	}
	postJSON(t, ts.URL+"/api/dataflows/web-flow/validate", nil, &vres)
	if !vres.Valid {
		t.Fatalf("validate: %+v", vres)
	}
	// Sample debug.
	var sres map[string][]map[string]any
	if code := postJSON(t, ts.URL+"/api/dataflows/web-flow/sample?n=5", nil, &sres); code != 200 {
		t.Fatalf("sample status %d", code)
	}
	if len(sres["src"]) != 5 || len(sres["out"]) != 5 {
		t.Errorf("samples: src=%d out=%d", len(sres["src"]), len(sres["out"]))
	}
	// DSN text.
	resp, err := http.Get(ts.URL + "/api/dataflows/web-flow/dsn")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), `dsn "web-flow"`) {
		t.Errorf("dsn:\n%s", buf.String())
	}
	// Deploy.
	var dres map[string]any
	if code := postJSON(t, ts.URL+"/api/dataflows/web-flow/deploy", nil, &dres); code != 200 {
		t.Fatalf("deploy status %d: %v", code, dres)
	}
	if dres["placement"] == nil || dres["scn"] == "" {
		t.Errorf("deploy response: %v", dres)
	}
	// Double deploy conflicts.
	if code := postJSON(t, ts.URL+"/api/dataflows/web-flow/deploy", nil, nil); code != 409 {
		t.Error("double deploy must 409")
	}
	// Start a replay over one virtual minute.
	body := map[string]string{
		"from": "2016-03-15T09:00:00Z",
		"to":   "2016-03-15T09:01:00Z",
	}
	if code := postJSON(t, ts.URL+"/api/dataflows/web-flow/start", body, nil); code != 202 {
		t.Fatalf("start status %d", code)
	}
	// Stop (waits for the run to finish).
	if code := postJSON(t, ts.URL+"/api/dataflows/web-flow/stop", nil, nil); code != 200 {
		t.Fatal("stop failed")
	}
	// Stats.
	var stats monitor.Report
	if code := getJSON(t, ts.URL+"/api/dataflows/web-flow/stats", &stats); code != 200 {
		t.Fatal("stats failed")
	}
	if len(stats.Ops) != 3 {
		t.Errorf("stats ops = %d", len(stats.Ops))
	}
	var filterIn uint64
	for _, op := range stats.Ops {
		if op.Name == "hot" {
			filterIn = op.In
		}
	}
	if filterIn != 60 {
		t.Errorf("filter in = %d, want 60", filterIn)
	}
}

func TestValidationErrorsSurface(t *testing.T) {
	_, ts := newTestServer(t)
	bad := specJSON()
	bad.Nodes[1].Cond = "ghost > 1"
	postJSON(t, ts.URL+"/api/dataflows", bad, nil)
	var vres struct {
		Valid       bool                 `json:"valid"`
		Diagnostics dataflow.Diagnostics `json:"diagnostics"`
	}
	postJSON(t, ts.URL+"/api/dataflows/web-flow/validate", nil, &vres)
	if vres.Valid || len(vres.Diagnostics) == 0 {
		t.Errorf("invalid dataflow passed validation: %+v", vres)
	}
	// Deploy of invalid spec fails with 422.
	if code := postJSON(t, ts.URL+"/api/dataflows/web-flow/deploy", nil, nil); code != 422 {
		t.Error("deploying an invalid flow must 422")
	}
}

func TestUnknownDataflow404s(t *testing.T) {
	_, ts := newTestServer(t)
	paths := []string{
		"/api/dataflows/ghost",
		"/api/dataflows/ghost/stats",
	}
	for _, p := range paths {
		if code := getJSON(t, ts.URL+p, nil); code != 404 {
			t.Errorf("GET %s = %d, want 404", p, code)
		}
	}
	for _, p := range []string{
		"/api/dataflows/ghost/validate",
		"/api/dataflows/ghost/deploy",
		"/api/dataflows/ghost/start",
		"/api/dataflows/ghost/stop",
	} {
		if code := postJSON(t, ts.URL+p, nil, nil); code != 404 {
			t.Errorf("POST %s = %d, want 404", p, code)
		}
	}
}

func TestCreateRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/dataflows", "application/json",
		strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Error("bad JSON must 400")
	}
	if code := postJSON(t, ts.URL+"/api/dataflows", map[string]any{}, nil); code != 400 {
		t.Error("nameless spec must 400")
	}
}

func TestNetworkAndEventsEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	var net map[string]any
	if code := getJSON(t, ts.URL+"/api/network", &net); code != 200 {
		t.Fatal("network failed")
	}
	nodes := net["nodes"].([]any)
	if len(nodes) != 2 {
		t.Errorf("nodes = %d", len(nodes))
	}
	var evs []monitor.Event
	if code := getJSON(t, ts.URL+"/api/events", &evs); code != 200 {
		t.Fatal("events failed")
	}
}

func TestWarehouseAndVizEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	var stats warehouse.Stats
	if code := getJSON(t, ts.URL+"/api/warehouse/stats", &stats); code != 200 {
		t.Fatal("warehouse stats failed")
	}
	var snap viz.Snapshot
	if code := getJSON(t, ts.URL+"/api/viz", &snap); code != 200 {
		t.Fatal("viz failed")
	}
	if snap.Cols != 8 {
		t.Errorf("viz cols = %d", snap.Cols)
	}
	resp, err := http.Get(ts.URL + "/api/viz?format=ascii")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "viz 8x8") {
		t.Errorf("ascii viz:\n%s", buf.String())
	}
}

func TestDashboardServed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "StreamLoader") {
		t.Error("dashboard missing")
	}
	// Unknown paths 404.
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Error("unknown path must 404")
	}
}
