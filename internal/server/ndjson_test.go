package server

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// ndjsonRecorder is a ResponseWriter+Flusher that records every flush, so
// the tests can pin writeNDJSON's flush contract: batched flushes every
// ndjsonFlushEvery lines, a ticker flush for lines that would otherwise
// sit buffered, and exactly one reaped ticker goroutine no matter how the
// generator exits.
type ndjsonRecorder struct {
	mu        sync.Mutex
	buf       bytes.Buffer
	flushes   int
	failAfter int // writes allowed before erroring; <0 means never fail
	writes    int
	header    http.Header
}

func newNDJSONRecorder() *ndjsonRecorder {
	return &ndjsonRecorder{failAfter: -1, header: http.Header{}}
}

func (f *ndjsonRecorder) Header() http.Header { return f.header }
func (f *ndjsonRecorder) WriteHeader(int)     {}

func (f *ndjsonRecorder) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAfter >= 0 && f.writes >= f.failAfter {
		return 0, errors.New("client gone")
	}
	f.writes++
	return f.buf.Write(p)
}

func (f *ndjsonRecorder) Flush() {
	f.mu.Lock()
	f.flushes++
	f.mu.Unlock()
}

func (f *ndjsonRecorder) flushCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushes
}

func (f *ndjsonRecorder) lines() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return strings.Count(f.buf.String(), "\n")
}

func TestWriteNDJSONBatchFlush(t *testing.T) {
	w := newNDJSONRecorder()
	const n = 2*ndjsonFlushEvery + 3
	ok := writeNDJSON(w, func(yield func(v any) bool) {
		for i := 0; i < n; i++ {
			if !yield(map[string]int{"i": i}) {
				return
			}
		}
	})
	if !ok {
		t.Fatalf("writeNDJSON returned false for a healthy stream")
	}
	if got := w.lines(); got != n {
		t.Fatalf("wrote %d lines, want %d", got, n)
	}
	// Two full batches plus the unconditional tail flush; the ticker may
	// add more but never fewer.
	if got := w.flushCount(); got < 3 {
		t.Fatalf("flushed %d times, want >= 3 (every %d lines plus the tail)", got, ndjsonFlushEvery)
	}
}

// TestWriteNDJSONTickerFlush pins the sparse-stream behavior: a line that
// would sit under the ndjsonFlushEvery batch threshold is still pushed to
// the client by the interval ticker, while the generator is blocked
// producing the next line.
func TestWriteNDJSONTickerFlush(t *testing.T) {
	w := newNDJSONRecorder()
	flushed := make(chan struct{})
	writeNDJSON(w, func(yield func(v any) bool) {
		if !yield(map[string]string{"first": "line"}) {
			return
		}
		// Wait for the ticker, not a wall-clock guess: the stream is
		// mid-generation, so any flush seen now is the ticker's.
		deadline := time.After(10 * ndjsonFlushInterval)
		for w.flushCount() == 0 {
			select {
			case <-deadline:
				close(flushed)
				return
			case <-time.After(ndjsonFlushInterval / 10):
			}
		}
		close(flushed)
	})
	<-flushed
	if w.flushCount() == 0 {
		t.Fatalf("no ticker flush within %v of a buffered line", 10*ndjsonFlushInterval)
	}
}

func TestWriteNDJSONWriteErrorStops(t *testing.T) {
	w := newNDJSONRecorder()
	w.failAfter = 1
	yields := 0
	ok := writeNDJSON(w, func(yield func(v any) bool) {
		for yield(map[string]int{"i": yields}) {
			yields++
		}
	})
	if ok {
		t.Fatalf("writeNDJSON returned true after a write error")
	}
	if yields != 1 {
		t.Fatalf("generator saw %d successful yields, want 1 (stop at first write error)", yields)
	}
}

// TestWriteNDJSONPanicReapsTicker pins the cleanup path: a panicking
// generator must not leak the flush-ticker goroutine — teardown is
// deferred, so the ticker is stopped and joined before the panic leaves
// writeNDJSON.
func TestWriteNDJSONPanicReapsTicker(t *testing.T) {
	w := newNDJSONRecorder()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("generator panic did not propagate")
			}
		}()
		writeNDJSON(w, func(yield func(v any) bool) {
			yield(map[string]string{"last": "words"})
			panic("generator exploded")
		})
	}()
	// The deferred teardown joined the ticker goroutine (tickDone.Wait())
	// and ran the tail flush before the panic unwound past writeNDJSON.
	if w.flushCount() == 0 {
		t.Fatalf("tail flush skipped on generator panic")
	}
	if got := w.lines(); got != 1 {
		t.Fatalf("wrote %d lines before the panic, want 1", got)
	}
}
