// Package server is the Web application of StreamLoader (paper Figure 2):
// the JSON HTTP API the visual environment is a front-end for — sensor
// discovery, dataflow creation and validation, sample-based debugging,
// DSN/SCN translation, deployment, live monitoring — plus a small embedded
// dashboard. The paper's AngularJS/Cytoscape/SparkJava stack is replaced by
// net/http and vanilla HTML per DESIGN.md.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"streamloader/internal/dataflow"
	"streamloader/internal/executor"
	"streamloader/internal/geo"
	"streamloader/internal/monitor"
	"streamloader/internal/network"
	"streamloader/internal/obs"
	"streamloader/internal/pubsub"
	"streamloader/internal/sensor"
	"streamloader/internal/stt"
	"streamloader/internal/viz"
	"streamloader/internal/warehouse"
)

// Server wires the StreamLoader subsystems behind the HTTP API.
type Server struct {
	Network   *network.Network
	Broker    *pubsub.Broker
	Executor  *executor.Executor
	Monitor   *monitor.Monitor
	Warehouse *warehouse.Warehouse
	Board     *viz.Board
	Sensors   map[string]*sensor.Sensor

	// AggMaxGroups caps the group cardinality one /api/warehouse/aggregate
	// call may return (0 = the warehouse default).
	AggMaxGroups int

	// MaxSubscribers caps the live /api/warehouse/subscribe clients across
	// all views (0 = DefaultMaxSubscribers).
	MaxSubscribers int

	// Obs is the process metrics registry, served at GET /metrics and fed
	// by the HTTP middleware. New inherits the warehouse's registry when it
	// has one, so warehouse, monitor and HTTP series share one exposition.
	Obs *obs.Registry

	// SlowQuery, when positive, logs any warehouse query or aggregate
	// slower than the threshold, once per offending request, with its span
	// breakdown.
	SlowQuery time.Duration

	mu          sync.Mutex
	specs       map[string]*dataflow.Spec
	deployments map[string]*executor.Deployment
	runs        map[string]chan error
}

// New assembles a server over existing subsystems. The metrics registry is
// adopted from the warehouse when it has one (so its histograms and the
// HTTP series expose together) and created fresh otherwise; the monitor's
// Figure-3 rates register into the same registry.
func New(net *network.Network, broker *pubsub.Broker, exec *executor.Executor,
	mon *monitor.Monitor, wh *warehouse.Warehouse, board *viz.Board,
	sensors map[string]*sensor.Sensor) *Server {
	s := &Server{
		Network: net, Broker: broker, Executor: exec, Monitor: mon,
		Warehouse: wh, Board: board, Sensors: sensors,
		specs:       map[string]*dataflow.Spec{},
		deployments: map[string]*executor.Deployment{},
		runs:        map[string]chan error{},
	}
	if wh != nil {
		s.Obs = wh.Obs()
	}
	if s.Obs == nil {
		s.Obs = obs.NewRegistry()
	}
	mon.RegisterMetrics(s.Obs)
	return s
}

// Handler builds the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/sensors", s.handleSensors)
	mux.HandleFunc("GET /api/sensors/groups", s.handleSensorGroups)
	mux.HandleFunc("GET /api/builtins", s.handleBuiltins)
	mux.HandleFunc("POST /api/dataflows", s.handleCreateDataflow)
	mux.HandleFunc("GET /api/dataflows", s.handleListDataflows)
	mux.HandleFunc("GET /api/dataflows/{name}", s.handleGetDataflow)
	mux.HandleFunc("POST /api/dataflows/{name}/validate", s.handleValidate)
	mux.HandleFunc("POST /api/dataflows/{name}/sample", s.handleSample)
	mux.HandleFunc("GET /api/dataflows/{name}/dsn", s.handleDSN)
	mux.HandleFunc("POST /api/dataflows/{name}/deploy", s.handleDeploy)
	mux.HandleFunc("GET /api/dataflows/{name}/scn", s.handleSCN)
	mux.HandleFunc("POST /api/dataflows/{name}/start", s.handleStart)
	mux.HandleFunc("POST /api/dataflows/{name}/stop", s.handleStop)
	mux.HandleFunc("GET /api/dataflows/{name}/stats", s.handleStats)
	mux.HandleFunc("GET /api/network", s.handleNetwork)
	mux.HandleFunc("GET /api/events", s.handleEvents)
	mux.HandleFunc("GET /api/warehouse/stats", s.handleWarehouseStats)
	mux.HandleFunc("GET /api/warehouse/query", s.handleWarehouseQuery)
	mux.HandleFunc("GET /api/warehouse/aggregate", s.handleWarehouseAggregate)
	mux.HandleFunc("GET /api/warehouse/subscribe", s.handleWarehouseSubscribe)
	mux.HandleFunc("GET /api/viz", s.handleViz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /", s.handleIndex)
	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSensors lists published sensors, filterable by type/theme/active —
// the P1 "identify the different sensors that are currently available".
func (s *Server) handleSensors(w http.ResponseWriter, r *http.Request) {
	q := pubsub.Query{
		Type:       r.URL.Query().Get("type"),
		Theme:      r.URL.Query().Get("theme"),
		ActiveOnly: r.URL.Query().Get("active") == "true",
	}
	metas := s.Broker.Discover(q)
	type sensorView struct {
		pubsub.SensorMeta
		Schema string `json:"schema"`
		Active bool   `json:"active"`
	}
	out := make([]sensorView, 0, len(metas))
	for _, m := range metas {
		out = append(out, sensorView{
			SensorMeta: m,
			Schema:     m.Schema.String(),
			Active:     s.Broker.IsActive(m.ID),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSensorGroups organizes sensors by a criterion (type/node/theme/region).
func (s *Server) handleSensorGroups(w http.ResponseWriter, r *http.Request) {
	by := r.URL.Query().Get("by")
	if by == "" {
		by = "type"
	}
	groups, err := s.Broker.GroupBy(by, pubsub.Query{})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := map[string][]string{}
	for k, metas := range groups {
		for _, m := range metas {
			out[k] = append(out[k], m.ID)
		}
		sort.Strings(out[k])
	}
	writeJSON(w, http.StatusOK, out)
}

// handleBuiltins lists the expression-language functions for the UI editor.
func (s *Server) handleBuiltins(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"functions": exprBuiltins()})
}

func (s *Server) handleCreateDataflow(w http.ResponseWriter, r *http.Request) {
	var spec dataflow.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if spec.Name == "" {
		writeError(w, http.StatusBadRequest, "spec needs a name")
		return
	}
	s.mu.Lock()
	s.specs[spec.Name] = &spec
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"name": spec.Name})
}

func (s *Server) handleListDataflows(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.specs))
	for name := range s.specs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) spec(name string) (*dataflow.Spec, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	spec, ok := s.specs[name]
	return spec, ok
}

func (s *Server) handleGetDataflow(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.spec(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataflow")
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

func (s *Server) resolver() dataflow.SensorResolver {
	return dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		if meta, ok := s.Broker.Get(id); ok {
			return meta.Schema, true
		}
		return nil, false
	})
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.spec(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataflow")
		return
	}
	diags := dataflow.Validate(spec, s.resolver())
	writeJSON(w, http.StatusOK, map[string]any{
		"valid":       !diags.HasErrors(),
		"diagnostics": diags,
	})
}

// handleSample runs the P1 sample debugger: n readings per source through
// the dataflow, returning every node's output sample.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.spec(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataflow")
		return
	}
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 1000 {
			writeError(w, http.StatusBadRequest, "n must be 1..1000")
			return
		}
		n = parsed
	}
	plan, diags := dataflow.Compile(spec, s.resolver(), s.Broker, nil)
	if diags.HasErrors() {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"diagnostics": diags})
		return
	}
	// Generate fresh samples from each bound sensor.
	samples := map[string][]*stt.Tuple{}
	start := time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	for _, pn := range plan.Nodes {
		if pn.SensorID == "" {
			continue
		}
		gen, ok := s.Sensors[pn.SensorID]
		if !ok {
			continue
		}
		sampler, err := sensor.New(sampleSpecOf(gen, pn.SensorID))
		if err != nil {
			continue
		}
		var tuples []*stt.Tuple
		ts := start
		for i := 0; i < n; i++ {
			tuples = append(tuples, sampler.At(ts))
			ts = ts.Add(sampler.Period())
		}
		samples[pn.ID] = tuples
	}
	res, err := dataflow.Debug(plan, samples)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := map[string][]map[string]any{}
	for node, tuples := range res.Outputs {
		for _, tup := range tuples {
			out[node] = append(out[node], tup.Map())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDSN(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.spec(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataflow")
		return
	}
	text, err := translate(spec, s.resolver(), s.Broker)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := s.spec(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataflow")
		return
	}
	s.mu.Lock()
	_, exists := s.deployments[name]
	s.mu.Unlock()
	if exists {
		writeError(w, http.StatusConflict, "dataflow already deployed")
		return
	}
	d, err := s.Executor.Deploy(spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mu.Lock()
	s.deployments[name] = d
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"placement": d.Placement(),
		"scn":       d.SCNScript(),
	})
}

func (s *Server) deployment(name string) (*executor.Deployment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.deployments[name]
	return d, ok
}

func (s *Server) handleSCN(w http.ResponseWriter, r *http.Request) {
	d, ok := s.deployment(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "dataflow not deployed")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, d.SCNScript())
}

// handleStart launches a run over an event-time range. Body (optional):
// {"from": RFC3339, "to": RFC3339}. Defaults: now .. now+1h.
func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.deployment(name)
	if !ok {
		writeError(w, http.StatusNotFound, "dataflow not deployed")
		return
	}
	var body struct {
		From string `json:"from"`
		To   string `json:"to"`
	}
	_ = json.NewDecoder(r.Body).Decode(&body)
	from := time.Now().UTC()
	to := from.Add(time.Hour)
	var err error
	if body.From != "" {
		if from, err = time.Parse(time.RFC3339, body.From); err != nil {
			writeError(w, http.StatusBadRequest, "bad from: %v", err)
			return
		}
	}
	if body.To != "" {
		if to, err = time.Parse(time.RFC3339, body.To); err != nil {
			writeError(w, http.StatusBadRequest, "bad to: %v", err)
			return
		}
	}
	s.mu.Lock()
	if _, running := s.runs[name]; running {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "dataflow already running")
		return
	}
	done := make(chan error, 1)
	s.runs[name] = done
	s.mu.Unlock()
	go func() {
		err := d.Run(from, to)
		done <- err
		s.mu.Lock()
		delete(s.runs, name)
		s.mu.Unlock()
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{
		"from": from.Format(time.RFC3339), "to": to.Format(time.RFC3339),
	})
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.deployment(name)
	if !ok {
		writeError(w, http.StatusNotFound, "dataflow not deployed")
		return
	}
	s.mu.Lock()
	done := s.runs[name]
	s.mu.Unlock()
	d.Stop()
	if done != nil {
		if err := <-done; err != nil {
			writeError(w, http.StatusInternalServerError, "run failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stopped"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := s.deployment(name); !ok {
		writeError(w, http.StatusNotFound, "dataflow not deployed")
		return
	}
	series := r.URL.Query().Get("series") == "true"
	writeJSON(w, http.StatusOK, s.Monitor.Snapshot(time.Now().UTC(), series))
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	type nodeView struct {
		ID       string   `json:"id"`
		Capacity float64  `json:"capacity"`
		Load     float64  `json:"load"`
		Down     bool     `json:"down"`
		Region   geo.Rect `json:"region"`
	}
	var nodes []nodeView
	for _, id := range s.Network.Nodes() {
		n, load, _ := s.Network.Node(id)
		nodes = append(nodes, nodeView{
			ID: id, Capacity: n.Capacity, Load: load,
			Down: s.Network.IsDown(id), Region: n.Region,
		})
	}
	type flowView struct {
		ID     string `json:"id"`
		Tuples uint64 `json:"tuples"`
		Bytes  uint64 `json:"bytes"`
	}
	var flows []flowView
	for _, id := range s.Network.Flows() {
		tuples, bytes := s.Network.TransferStats(id)
		flows = append(flows, flowView{ID: id, Tuples: tuples, Bytes: bytes})
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": nodes, "flows": flows})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Monitor.Events())
}

func (s *Server) handleWarehouseStats(w http.ResponseWriter, r *http.Request) {
	if s.Warehouse == nil {
		writeError(w, http.StatusNotFound, "no warehouse configured")
		return
	}
	writeJSON(w, http.StatusOK, s.Warehouse.Stats())
}

// parseWarehouseFilter reads the STT filter params shared by the query,
// aggregate and subscribe endpoints: ?from=&to= (RFC3339), &region=minLat,
// minLon,maxLat,maxLon, &themes= and &sources= (comma-separated), &cond=
// (payload condition). The vocabulary and parsing live in the warehouse
// package (ParseQueryValues), shared with the slgen CLI.
func parseWarehouseFilter(r *http.Request) (warehouse.Query, error) {
	return warehouse.ParseQueryValues(r.URL.Query())
}

// parseFormat reads the response format param: "json" (the default, one
// buffered JSON document) or "ndjson" (newline-delimited JSON, flushed
// incrementally).
func parseFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		return "json", nil
	case "ndjson":
		return "ndjson", nil
	default:
		return "", fmt.Errorf("bad format %q (want json or ndjson)", f)
	}
}

// ndjsonFlushEvery is how many NDJSON lines are written between explicit
// flushes, so a large result streams to the client as it is encoded instead
// of buffering whole.
const ndjsonFlushEvery = 64

// ndjsonFlushInterval bounds how long a written line may sit buffered: a
// sparse stream (a slow query, a standing view between updates) flushes on
// this tick even when it never reaches ndjsonFlushEvery lines.
const ndjsonFlushInterval = 250 * time.Millisecond

// writeNDJSON streams one value per line, flushing every ndjsonFlushEvery
// lines, every ndjsonFlushInterval while lines sit buffered, and once at
// the end. It stops at the first write error (client gone) and reports
// whether the stream completed.
func writeNDJSON(w http.ResponseWriter, lines func(yield func(v any) bool)) bool {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// The ticker goroutine flushes concurrently with encoding, and
	// ResponseWriter does not promise Write/Flush are safe together — one
	// mutex covers both. dirty tracks lines written since the last flush,
	// so an idle stream costs no flush calls.
	var mu sync.Mutex
	dirty := false
	if flusher != nil {
		stop := make(chan struct{})
		var tickDone sync.WaitGroup
		tickDone.Add(1)
		go func() {
			defer tickDone.Done()
			t := time.NewTicker(ndjsonFlushInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					mu.Lock()
					if dirty {
						flusher.Flush()
						dirty = false
					}
					mu.Unlock()
				}
			}
		}()
		// Deferred, not inline after lines(): if the generator panics the
		// ticker goroutine must still be reaped (it holds the flusher and
		// would otherwise run for the life of the process) and the tail
		// flush must still happen before the handler unwinds.
		defer func() {
			close(stop)
			tickDone.Wait()
			flusher.Flush()
		}()
	}

	n := 0
	ok := true
	lines(func(v any) bool {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(v); err != nil {
			ok = false
			return false
		}
		dirty = true
		if n++; n%ndjsonFlushEvery == 0 && flusher != nil {
			flusher.Flush()
			dirty = false
		}
		return true
	})
	return ok
}

// handleWarehouseQuery runs an STT query against the Event Data Warehouse
// using the parseWarehouseFilter params plus &limit= and &offset=. The
// select fans out across the warehouse shards and merges in time order.
// Results are paged: offset skips that many matches in (time, seq) order,
// limit caps the page, and the response's "truncated" flag says whether
// more matches follow — so a spilled history can be walked page by page
// instead of materialized in one response. limit=0 asks for the match count
// alone: it routes through the warehouse Count fast path, which never
// materializes an event (time-only constraints resolve on segment indexes
// and cold-segment envelopes without touching disk). The "segments" object
// reports how many time-partitioned segments the query scanned versus
// pruned by their time envelope, plus how many cold-segment chunks were
// served from the chunk cache versus read back from disk.
//
// &format=ndjson streams the page as newline-delimited JSON instead of one
// buffered array: one {"seq","event"} object per line, flushed
// incrementally, terminated by a {"summary":...} line carrying what the
// JSON envelope would have (count, offset, truncated, segments) — so a
// client can process a large page as it arrives.
func (s *Server) handleWarehouseQuery(w http.ResponseWriter, r *http.Request) {
	if s.Warehouse == nil {
		writeError(w, http.StatusNotFound, "no warehouse configured")
		return
	}
	q, err := parseWarehouseFilter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	format, err := parseFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	params := r.URL.Query()
	limit := 100
	countOnly := false
	if v := params.Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 || parsed > 10000 {
			writeError(w, http.StatusBadRequest, "limit must be 0..10000 (0: count only)")
			return
		}
		limit = parsed
		countOnly = parsed == 0
	}
	offset := 0
	if v := params.Get("offset"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, "offset must be >= 0")
			return
		}
		offset = parsed
	}
	tr, wantTrace := s.queryTrace(r, "warehouse_query")
	start := time.Now()
	if countOnly {
		// The caller wants the cardinality, not the events: skip
		// materialization entirely. Offset is meaningless against a bare
		// count and is ignored. A count with a payload condition has to
		// evaluate events, so it keeps the same 10000-event ceiling paging
		// enforces — past it, the count comes back truncated.
		cq := q
		if cq.Cond != "" {
			cq.Limit = 10001
		}
		n, qs, err := s.Warehouse.CountTraced(cq, tr)
		if err != nil {
			writeError(w, warehouseErrStatus(err), "%v", err)
			return
		}
		s.noteSlow(r, tr, start)
		truncated := false
		if cq.Limit > 0 && n > 10000 {
			n, truncated = 10000, true
		}
		summary := map[string]any{
			"count": n, "segments": qs, "offset": 0, "truncated": truncated,
		}
		if wantTrace {
			summary["trace"] = tr.Report()
		}
		if format == "ndjson" {
			writeNDJSON(w, func(yield func(v any) bool) {
				yield(map[string]any{"summary": summary})
			})
			return
		}
		summary["events"] = []any{}
		writeJSON(w, http.StatusOK, summary)
		return
	}
	// offset+limit bounds how many events one request materializes — the
	// same 10000-event ceiling the limit alone used to carry. Deeper than
	// that, page by time instead: pass the last event's _time as from=.
	if offset+limit > 10000 {
		writeError(w, http.StatusBadRequest,
			"page too deep: offset+limit must be <= 10000; advance from= to the last seen event time instead")
		return
	}
	// Fetch one event past the page to learn whether the result was cut.
	q.Limit = offset + limit + 1
	evs, qs, err := s.Warehouse.SelectTraced(q, tr)
	if err != nil {
		writeError(w, warehouseErrStatus(err), "%v", err)
		return
	}
	s.noteSlow(r, tr, start)
	truncated := len(evs) > offset+limit
	if truncated {
		evs = evs[:offset+limit]
	}
	if offset < len(evs) {
		evs = evs[offset:]
	} else {
		evs = nil
	}
	type eventView struct {
		Seq   uint64         `json:"seq"`
		Event map[string]any `json:"event"`
	}
	summary := map[string]any{
		"count": len(evs), "segments": qs,
		"offset": offset, "truncated": truncated,
	}
	if wantTrace {
		summary["trace"] = tr.Report()
	}
	if format == "ndjson" {
		writeNDJSON(w, func(yield func(v any) bool) {
			for _, ev := range evs {
				if !yield(eventView{Seq: ev.Seq, Event: ev.Tuple.Map()}) {
					return
				}
			}
			yield(map[string]any{"summary": summary})
		})
		return
	}
	out := make([]eventView, 0, len(evs))
	for _, ev := range evs {
		out = append(out, eventView{Seq: ev.Seq, Event: ev.Tuple.Map()})
	}
	summary["events"] = out
	writeJSON(w, http.StatusOK, summary)
}

// warehouseErrStatus classifies a warehouse query/aggregate evaluation
// error: malformed specs are the client's (400), a condition that fails at
// runtime or a group explosion is addressable by the client (422), and
// anything else — cold-segment I/O above all — is a server fault (500).
func warehouseErrStatus(err error) int {
	switch {
	case errors.Is(err, warehouse.ErrInvalidAggQuery):
		return http.StatusBadRequest
	case errors.Is(err, warehouse.ErrCondEval), errors.Is(err, warehouse.ErrTooManyGroups):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// aggRowView is the wire form of one warehouse.AggRow.
type aggRowView struct {
	Bucket string  `json:"bucket,omitempty"`
	Source string  `json:"source,omitempty"`
	Theme  string  `json:"theme,omitempty"`
	Count  int64   `json:"count"`
	Value  float64 `json:"value"`
}

// aggRowViews renders aggregate rows to their wire form; the bucket field
// appears only for bucketed queries. Shared by the one-shot aggregate
// endpoint and the subscribe stream, so a pushed snapshot is rendered
// exactly like a pulled one.
func aggRowViews(rows []warehouse.AggRow, bucketed bool) []aggRowView {
	views := make([]aggRowView, 0, len(rows))
	for _, row := range rows {
		v := aggRowView{Source: row.Source, Theme: row.Theme, Count: row.Count, Value: row.Value}
		if bucketed {
			v.Bucket = row.Bucket.UTC().Format(time.RFC3339Nano)
		}
		views = append(views, v)
	}
	return views
}

// handleWarehouseAggregate pushes an aggregation down into the warehouse:
// the parseWarehouseFilter params plus &func= (count, sum, avg, min, max),
// &field= (the aggregated payload field; required for everything but
// count), &group= (comma-separated: source, theme) and &bucket= (a Go
// duration; fixed-width event-time windows). The aggregation is evaluated
// as per-shard, per-segment partial aggregates merged at the top — no event
// list is materialized, and cold segments whose header stats cover the
// query never open their event block (the "cold_header_only" counter in
// "segments" says how many were answered that way). Partially-covered v2
// cold files answer individual chunks from the per-chunk stats in their
// sparse index instead of decoding them — "cold_chunk_stats_hits" counts
// the chunks answered without a read. Rows come back sorted
// by (bucket, source, theme); &format=ndjson streams one row per line
// followed by a {"summary":...} line.
func (s *Server) handleWarehouseAggregate(w http.ResponseWriter, r *http.Request) {
	if s.Warehouse == nil {
		writeError(w, http.StatusNotFound, "no warehouse configured")
		return
	}
	format, err := parseFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	aq, err := warehouse.ParseAggQueryValues(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	aq.MaxGroups = s.AggMaxGroups
	fn := aq.Func
	tr, wantTrace := s.queryTrace(r, "warehouse_aggregate")
	start := time.Now()
	rows, qs, err := s.Warehouse.AggregateTraced(aq, tr)
	if err != nil {
		writeError(w, warehouseErrStatus(err), "%v", err)
		return
	}
	s.noteSlow(r, tr, start)
	views := aggRowViews(rows, aq.Bucket > 0)
	summary := map[string]any{
		"func": string(fn), "field": aq.Field, "segments": qs,
	}
	if wantTrace {
		summary["trace"] = tr.Report()
	}
	if format == "ndjson" {
		summary["rows"] = len(views)
		writeNDJSON(w, func(yield func(v any) bool) {
			for _, v := range views {
				if !yield(v) {
					return
				}
			}
			yield(map[string]any{"summary": summary})
		})
		return
	}
	summary["rows"] = views
	writeJSON(w, http.StatusOK, summary)
}

func (s *Server) handleViz(w http.ResponseWriter, r *http.Request) {
	if s.Board == nil {
		writeError(w, http.StatusNotFound, "no viz board configured")
		return
	}
	if r.URL.Query().Get("format") == "ascii" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.Board.RenderASCII())
		return
	}
	writeJSON(w, http.StatusOK, s.Board.Snapshot())
}
