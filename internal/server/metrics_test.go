package server

import (
	"bufio"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"streamloader/internal/obs"
)

// requiredFamilies is the metric contract of the process: every family here
// must be present in a scrape of a freshly started instrumented server,
// traffic or no traffic. The CI smoke asserts the same list through
// `slctl metrics -require`.
var requiredFamilies = []string{
	"streamloader_warehouse_append_seconds",
	"streamloader_warehouse_select_seconds",
	"streamloader_warehouse_aggregate_seconds",
	"streamloader_wal_write_seconds",
	"streamloader_wal_fsync_seconds",
	"streamloader_cold_read_seconds",
	"streamloader_spill_seconds",
	"streamloader_compaction_seconds",
	"streamloader_view_rebuild_seconds",
	"streamloader_view_publish_seconds",
	"streamloader_warehouse_events",
	"streamloader_warehouse_segments",
}

func scrapeMetrics(t *testing.T, base string) []obs.Series {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	series, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return series
}

func TestMetricsExposition(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(50)); err != nil {
		t.Fatal(err)
	}
	// Generate query, aggregate, and HTTP traffic, plus one scrape so the
	// lazily created per-route HTTP series exist on the second scrape.
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=5", nil); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/warehouse/aggregate?func=count", nil); code != 200 {
		t.Fatalf("aggregate status = %d", code)
	}
	scrapeMetrics(t, ts.URL)
	series := scrapeMetrics(t, ts.URL)

	present := map[string]bool{}
	for _, s := range series {
		present[s.Name] = true
		present[strings.TrimSuffix(s.Name, "_bucket")] = true
	}
	for _, fam := range requiredFamilies {
		if !present[fam] {
			t.Errorf("required family %s missing from scrape", fam)
		}
	}
	if !present["streamloader_http_request_seconds"] || !present["streamloader_http_requests_total"] {
		t.Error("HTTP middleware series missing after traffic")
	}

	// The warehouse collector reports through the same Stats() the JSON
	// endpoint uses; the event gauge must equal what was appended.
	for _, s := range series {
		if s.Name == "streamloader_warehouse_events" && s.Value != 50 {
			t.Errorf("streamloader_warehouse_events = %v, want 50", s.Value)
		}
	}

	checkHistogramShape(t, series)

	// Routes must come from mux patterns, not raw URLs: no query strings in
	// route labels, and the query endpoint's pattern appears verbatim.
	sawQueryRoute := false
	for _, s := range series {
		if route, ok := s.Labels["route"]; ok {
			if strings.Contains(route, "?") || strings.Contains(route, "limit") {
				t.Errorf("route label %q leaks the raw URL", route)
			}
			if strings.Contains(route, "/api/warehouse/query") {
				sawQueryRoute = true
			}
		}
	}
	if !sawQueryRoute {
		t.Error("no route label for the query endpoint")
	}
}

// checkHistogramShape verifies the exposition's histogram series are
// well-formed: per family and label set, buckets are cumulative and
// non-decreasing in ascending le order, an +Inf bucket exists, and _count
// equals the +Inf bucket.
func checkHistogramShape(t *testing.T, series []obs.Series) {
	t.Helper()
	type bucket struct {
		le  string
		val float64
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	for _, s := range series {
		if strings.HasSuffix(s.Name, "_bucket") {
			le := s.Labels["le"]
			if le == "" {
				t.Errorf("%s: bucket series without le label", s.Name)
				continue
			}
			key := groupKey(s, strings.TrimSuffix(s.Name, "_bucket"))
			buckets[key] = append(buckets[key], bucket{le: le, val: s.Value})
		}
		if base, ok := strings.CutSuffix(s.Name, "_count"); ok {
			counts[groupKey(s, base)] = s.Value
		}
		if base, ok := strings.CutSuffix(s.Name, "_sum"); ok {
			sums[groupKey(s, base)] = true
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram families in scrape")
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return leValue(bs[i].le) < leValue(bs[j].le) })
		if bs[len(bs)-1].le != "+Inf" {
			t.Errorf("%s: last bucket le = %q, want +Inf", key, bs[len(bs)-1].le)
			continue
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].val < bs[i-1].val {
				t.Errorf("%s: cumulative buckets decrease at le=%s", key, bs[i].le)
			}
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("%s: missing _count series", key)
		} else if cnt != bs[len(bs)-1].val {
			t.Errorf("%s: _count %v != +Inf bucket %v", key, cnt, bs[len(bs)-1].val)
		}
		if !sums[key] {
			t.Errorf("%s: missing _sum series", key)
		}
	}
}

func groupKey(s obs.Series, base string) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(base)
	for _, k := range keys {
		b.WriteString("|" + k + "=" + s.Labels[k])
	}
	return b.String()
}

func leValue(le string) float64 {
	if le == "+Inf" {
		return 1e308
	}
	v, _ := strconv.ParseFloat(le, 64)
	return v
}

type spanJSON struct {
	Name    string           `json:"name"`
	StartUS int64            `json:"start_us"`
	DurUS   int64            `json:"dur_us"`
	Attrs   map[string]int64 `json:"attrs"`
}

type traceJSON struct {
	Name  string     `json:"name"`
	DurUS int64      `json:"dur_us"`
	Spans []spanJSON `json:"spans"`
}

// checkTrace asserts a ?trace=1 report is well-formed: named, non-negative
// timings, spans sorted by start, at least one per-shard span carrying its
// shard index, and exactly one merge span.
func checkTrace(t *testing.T, tr traceJSON, name string) {
	t.Helper()
	if tr.Name != name {
		t.Errorf("trace name = %q, want %q", tr.Name, name)
	}
	if tr.DurUS < 0 {
		t.Errorf("trace dur_us = %d", tr.DurUS)
	}
	shards, merges := 0, 0
	lastStart := int64(-1)
	for _, sp := range tr.Spans {
		if sp.Name == "" || sp.StartUS < 0 || sp.DurUS < 0 {
			t.Errorf("malformed span %+v", sp)
		}
		if sp.StartUS < lastStart {
			t.Error("spans not sorted by start time")
		}
		lastStart = sp.StartUS
		switch sp.Name {
		case "shard":
			shards++
			if _, ok := sp.Attrs["shard"]; !ok {
				t.Errorf("shard span without shard attr: %+v", sp)
			}
			if _, ok := sp.Attrs["events"]; !ok {
				t.Errorf("shard span without events attr: %+v", sp)
			}
		case "merge":
			merges++
		}
	}
	if shards == 0 {
		t.Error("no per-shard spans in trace")
	}
	if merges != 1 {
		t.Errorf("merge spans = %d, want 1", merges)
	}
}

func TestQueryTraceSpans(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(20)); err != nil {
		t.Fatal(err)
	}

	var res struct {
		Count int        `json:"count"`
		Trace *traceJSON `json:"trace"`
	}
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=5&trace=1", &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Trace == nil {
		t.Fatal("no trace key with ?trace=1")
	}
	checkTrace(t, *res.Trace, "warehouse_query")

	// Without ?trace=1 the response must not carry a trace.
	res.Trace = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=5", &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Trace != nil {
		t.Error("trace key present without ?trace=1")
	}

	// NDJSON: the terminating summary line carries the trace.
	sum := lastNDJSONSummary(t, ts.URL+"/api/warehouse/query?limit=5&format=ndjson&trace=1")
	if sum.Trace == nil {
		t.Fatal("ndjson summary has no trace")
	}
	checkTrace(t, *sum.Trace, "warehouse_query")

	// Count-only path (limit=0) traces too.
	var cres struct {
		Count int        `json:"count"`
		Trace *traceJSON `json:"trace"`
	}
	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=0&trace=1", &cres); code != 200 {
		t.Fatalf("count status = %d", code)
	}
	if cres.Trace == nil {
		t.Fatal("no trace on count-only query")
	}
}

func TestAggregateTraceSpans(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(20)); err != nil {
		t.Fatal(err)
	}

	var res struct {
		Rows  json.RawMessage `json:"rows"`
		Trace *traceJSON      `json:"trace"`
	}
	u := ts.URL + "/api/warehouse/aggregate?func=avg&field=temperature&group=source&trace=1"
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Trace == nil {
		t.Fatal("no trace key with ?trace=1")
	}
	checkTrace(t, *res.Trace, "warehouse_aggregate")

	res.Trace = nil
	if code := getJSON(t, ts.URL+"/api/warehouse/aggregate?func=count", &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Trace != nil {
		t.Error("trace key present without ?trace=1")
	}

	sum := lastNDJSONSummary(t, u+"&format=ndjson")
	if sum.Trace == nil {
		t.Fatal("ndjson summary has no trace")
	}
	checkTrace(t, *sum.Trace, "warehouse_aggregate")
}

// lastNDJSONSummary reads an NDJSON response and decodes its terminating
// {"summary": ...} line.
func lastNDJSONSummary(t *testing.T, url string) (sum struct {
	Trace *traceJSON `json:"trace"`
}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	var last string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			last = line
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var wrapper struct {
		Summary json.RawMessage `json:"summary"`
	}
	if err := json.Unmarshal([]byte(last), &wrapper); err != nil || wrapper.Summary == nil {
		t.Fatalf("last ndjson line is not a summary: %q", last)
	}
	if err := json.Unmarshal(wrapper.Summary, &sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// syncWriter lets the test read log output the handler goroutine wrote.
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestSlowQueryLog(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(20)); err != nil {
		t.Fatal(err)
	}
	srv.SlowQuery = time.Nanosecond // everything is slow

	var w syncWriter
	prev := log.Writer()
	log.SetOutput(&w)
	defer log.SetOutput(prev)

	if code := getJSON(t, ts.URL+"/api/warehouse/query?limit=5", nil); code != 200 {
		t.Fatalf("status = %d", code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(w.String(), "slow query:") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	out := w.String()
	if !strings.Contains(out, "slow query:") {
		t.Fatalf("no slow-query log line; log output: %q", out)
	}
	if !strings.Contains(out, `"name":"shard"`) {
		t.Errorf("slow-query line lacks span breakdown: %q", out)
	}

	series := scrapeMetrics(t, ts.URL)
	found := false
	for _, s := range series {
		if s.Name == "streamloader_slow_queries_total" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("streamloader_slow_queries_total did not count the offender")
	}
}

// TestMetricsAfterNDJSONStreaming pins the middleware invariant that
// wrapping must not hide http.Flusher: an NDJSON stream through the
// instrumented mux still arrives incrementally (chunked), and the request
// is still counted.
func TestMetricsAfterNDJSONStreaming(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(queryTuples(10)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/api/warehouse/query?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; n != 11 {
		t.Fatalf("ndjson lines = %d, want 10 events + summary", n)
	}
	series := scrapeMetrics(t, ts.URL)
	counted := false
	for _, s := range series {
		if s.Name == "streamloader_http_requests_total" &&
			strings.Contains(s.Labels["route"], "/api/warehouse/query") &&
			s.Labels["code"] == "200" && s.Value >= 1 {
			counted = true
		}
	}
	if !counted {
		t.Error("ndjson request not counted by route/code")
	}
}
