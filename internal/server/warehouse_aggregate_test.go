package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"streamloader/internal/stt"
)

// aggTuples spreads n weather readings across two stations, one per
// minute, temperatures 15, 16, ...
func aggTuples(n int) []*stt.Tuple {
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	out := make([]*stt.Tuple, n)
	for i := range out {
		tup := &stt.Tuple{
			Schema: queryWeather,
			Values: []stt.Value{stt.Float(float64(15 + i))},
			Time:   base.Add(time.Duration(i) * time.Minute),
			Lat:    34.70, Lon: 135.50,
			Theme:  "weather",
			Source: []string{"station-1", "station-2"}[i%2],
		}
		out[i] = tup.AlignSTT()
	}
	return out
}

type aggResponse struct {
	Rows []struct {
		Bucket string  `json:"bucket"`
		Source string  `json:"source"`
		Theme  string  `json:"theme"`
		Count  int64   `json:"count"`
		Value  float64 `json:"value"`
	} `json:"rows"`
	Func     string `json:"func"`
	Field    string `json:"field"`
	Segments struct {
		Scanned    int `json:"segments_scanned"`
		HeaderOnly int `json:"cold_header_only"`
	} `json:"segments"`
}

func TestWarehouseAggregate(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(aggTuples(10)); err != nil {
		t.Fatal(err)
	}
	// AVG by source: station-1 holds 15,17,19,21,23 and station-2 the evens.
	var res aggResponse
	u := ts.URL + "/api/warehouse/aggregate?func=avg&field=temperature&group=source"
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if res.Func != "AVG" || res.Field != "temperature" {
		t.Fatalf("echo = %q/%q", res.Func, res.Field)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v, want 2", res.Rows)
	}
	if res.Rows[0].Source != "station-1" || res.Rows[0].Value != 19 || res.Rows[0].Count != 5 {
		t.Fatalf("row 0 = %+v, want station-1 avg 19 over 5", res.Rows[0])
	}
	if res.Rows[1].Source != "station-2" || res.Rows[1].Value != 20 {
		t.Fatalf("row 1 = %+v, want station-2 avg 20", res.Rows[1])
	}

	// Bare count with a filter window.
	u = ts.URL + "/api/warehouse/aggregate?func=count&from=" + url.QueryEscape("2016-03-15T00:02:00Z") +
		"&to=" + url.QueryEscape("2016-03-15T00:07:00Z")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("windowed count status = %d", code)
	}
	if len(res.Rows) != 1 || res.Rows[0].Count != 5 {
		t.Fatalf("windowed count rows = %+v, want one row of 5", res.Rows)
	}

	// Bucketed MAX: 5-minute windows.
	u = ts.URL + "/api/warehouse/aggregate?func=max&field=temperature&bucket=5m"
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("bucketed status = %d", code)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("bucketed rows = %+v, want 2", res.Rows)
	}
	if res.Rows[0].Bucket == "" || res.Rows[0].Value != 19 || res.Rows[1].Value != 24 {
		t.Fatalf("bucketed rows = %+v, want maxes 19 and 24 with buckets", res.Rows)
	}

	// A payload condition rides along.
	u = ts.URL + "/api/warehouse/aggregate?func=sum&field=temperature&cond=" + url.QueryEscape("temperature > 22")
	if code := getJSON(t, u, &res); code != 200 {
		t.Fatalf("cond status = %d", code)
	}
	if len(res.Rows) != 1 || res.Rows[0].Value != 47 { // 23 + 24
		t.Fatalf("cond rows = %+v, want sum 47", res.Rows)
	}
}

func TestWarehouseAggregateBadParams(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{
		"",                        // func required
		"func=median",             // unknown function
		"func=avg",                // field required
		"func=count&bucket=-5m",   // negative bucket
		"func=count&bucket=huge",  // unparseable bucket
		"func=count&from=always",  // filter errors surface too
		"func=count&format=xml",   // unknown format
		"func=count&group=region", // unknown group dimension
	} {
		code := getJSON(t, ts.URL+"/api/warehouse/aggregate?"+q, nil)
		if code != 400 && code != 422 {
			t.Errorf("query %q status = %d, want 400/422", q, code)
		}
	}
}

// TestWarehouseAggregateNDJSON: rows stream line by line with a trailing
// summary.
func TestWarehouseAggregateNDJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	if err := srv.Warehouse.AppendBatch(aggTuples(10)); err != nil {
		t.Fatal(err)
	}
	rec := newFlushRecorder()
	req := httptest.NewRequest("GET", "/api/warehouse/aggregate?func=count&group=source&format=ndjson", nil)
	srv.Handler().ServeHTTP(rec, req)
	if rec.status != 200 {
		t.Fatalf("status = %d", rec.status)
	}
	sc := bufio.NewScanner(bytes.NewReader(rec.buf.Bytes()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("malformed line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 { // two groups + summary
		t.Fatalf("%d lines, want 3", len(lines))
	}
	if lines[0]["source"] != "station-1" || lines[1]["source"] != "station-2" {
		t.Fatalf("group lines = %+v", lines[:2])
	}
	if _, ok := lines[2]["summary"]; !ok {
		t.Fatalf("last line is not a summary: %+v", lines[2])
	}
}

// TestWarehouseAggregateMaxGroups: the server-configured bound surfaces as
// an unprocessable aggregation, not an unbounded response.
func TestWarehouseAggregateMaxGroups(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.AggMaxGroups = 3
	if err := srv.Warehouse.AppendBatch(aggTuples(20)); err != nil {
		t.Fatal(err)
	}
	// 20 one-minute buckets > 3 groups.
	code := getJSON(t, ts.URL+"/api/warehouse/aggregate?func=count&bucket=1m", nil)
	if code != 422 {
		t.Fatalf("status = %d, want 422", code)
	}
}
