package server

import (
	"fmt"
	"net/http"

	"streamloader/internal/dataflow"
	"streamloader/internal/dsn"
	"streamloader/internal/expr"
	"streamloader/internal/ops"
	"streamloader/internal/sensor"
)

// exprBuiltins exposes the expression-language registry to the UI.
func exprBuiltins() []string { return expr.Builtins() }

// translate validates and translates a spec into DSN text.
func translate(spec *dataflow.Spec, resolver dataflow.SensorResolver, act ops.Activator) (string, error) {
	plan, diags := dataflow.Compile(spec, resolver, act, nil)
	if diags.HasErrors() {
		return "", fmt.Errorf("dataflow invalid: %v", diags)
	}
	doc, err := dsn.Translate(spec, plan)
	if err != nil {
		return "", err
	}
	return doc.String(), nil
}

// sampleSpecOf derives a fresh sampler spec from an existing sensor so
// sample debugging does not disturb the live generator's state.
func sampleSpecOf(gen *sensor.Sensor, id string) sensor.Spec {
	meta := gen.Meta()
	typ, _ := sensor.ParseType(meta.Type)
	return sensor.Spec{
		ID:          id,
		Type:        typ,
		Location:    meta.Location,
		NodeID:      meta.NodeID,
		Seed:        1,
		FrequencyHz: meta.FrequencyHz,
	}
}

// handleIndex serves the embedded dashboard.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is the minimal monitoring dashboard: sensors, dataflows,
// per-operation rates and the event log, auto-refreshing — the Figure 2/3
// surfaces without a JS framework.
const dashboardHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>StreamLoader</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #101418; color: #d6dde4; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.2em; color: #8fd; }
table { border-collapse: collapse; margin: .4em 0; }
td, th { border: 1px solid #334; padding: .15em .6em; text-align: left; }
th { background: #1b2430; }
pre { background: #0a0e12; padding: .6em; overflow-x: auto; }
.err { color: #f88; }
</style>
</head>
<body>
<h1>StreamLoader &mdash; event-driven ETL on a programmable network</h1>
<h2>Sensors</h2><div id="sensors">loading&hellip;</div>
<h2>Dataflows</h2><div id="dataflows">loading&hellip;</div>
<h2>Network</h2><div id="network">loading&hellip;</div>
<h2>Warehouse</h2><div id="warehouse">loading&hellip;</div>
<h2>Standing views</h2><div id="views">loading&hellip;</div>
<h2>Events</h2><pre id="events">loading&hellip;</pre>
<script>
async function j(u) { const r = await fetch(u); return r.json(); }
function table(rows, cols) {
  let h = '<table><tr>' + cols.map(c => '<th>'+c+'</th>').join('') + '</tr>';
  for (const r of rows) h += '<tr>' + cols.map(c => '<td>'+(r[c] ?? '')+'</td>').join('') + '</tr>';
  return h + '</table>';
}
async function refresh() {
  try {
    const sensors = await j('/api/sensors');
    document.getElementById('sensors').innerHTML =
      table(sensors, ['id','type','frequency_hz','node_id','active','schema']);
    const names = await j('/api/dataflows');
    let html = '';
    for (const n of names) {
      html += '<b>'+n+'</b>';
      try {
        const st = await j('/api/dataflows/'+n+'/stats');
        html += table(st.ops, ['name','node','in','out','dropped','rate_in','rate_out']);
      } catch (e) { html += ' (not deployed)<br>'; }
    }
    document.getElementById('dataflows').innerHTML = html || 'none';
    const net = await j('/api/network');
    document.getElementById('network').innerHTML =
      table(net.nodes, ['id','capacity','load','down']) +
      table(net.flows || [], ['id','tuples','bytes']);
    try {
      const wh = await j('/api/warehouse/stats');
      document.getElementById('warehouse').innerHTML =
        table([wh], ['events','sources','segments','segments_cold','wal_bytes','disk_bytes']);
      document.getElementById('views').innerHTML = table([{
        live: wh.views, subscribers: wh.view_subscribers,
        frame_drops: wh.view_frame_drops, subtractions: wh.view_subtractions,
        boundary_rescans: wh.view_boundary_rescans,
        checkpoints: wh.view_checkpoints, resumes: wh.view_resumes,
      }], ['live','subscribers','frame_drops','subtractions','boundary_rescans','checkpoints','resumes']);
    } catch (e) {
      document.getElementById('warehouse').textContent = 'no warehouse';
      document.getElementById('views').textContent = 'no warehouse';
    }
    const evs = await j('/api/events');
    document.getElementById('events').textContent =
      (evs || []).slice(-20).map(e => e.time+' '+e.kind+' '+(e.op||'')+' '+(e.node||'')+' '+(e.detail||'')).join('\n');
  } catch (e) {
    document.getElementById('events').textContent = 'refresh failed: ' + e;
  }
}
refresh(); setInterval(refresh, 2000);
</script>
</body>
</html>
`
