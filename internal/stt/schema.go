package stt

import (
	"fmt"
	"sort"
	"strings"
)

// Field describes one attribute of a sensor tuple. Unit is a free-form unit
// name from the geo/units registry (e.g. "celsius", "mm", "m/s"); it is
// informative for Transform operations that change units of measure.
type Field struct {
	Name string `json:"name"`
	Kind Kind   `json:"-"`
	Unit string `json:"unit,omitempty"`

	// KindName mirrors Kind for JSON encoding of specs and samples.
	KindName string `json:"kind"`
}

// NewField builds a field with a consistent KindName.
func NewField(name string, kind Kind, unit string) Field {
	return Field{Name: name, Kind: kind, Unit: unit, KindName: kind.String()}
}

// Schema is the shape of the tuples on one stream: an ordered list of fields
// plus the STT metadata the stream is represented at. Schemas are immutable
// after construction and shared between all tuples of a stream; operators
// that change the shape derive a new schema once at plan time.
//
// The paper stresses that "data schema are not fixed but depend on the
// sensors": schemas here are runtime values propagated through the dataflow,
// not compile-time types.
type Schema struct {
	fields []Field
	index  map[string]int

	// TGran and SGran are the temporal and spatial granularities the
	// stream's events are represented at.
	TGran TemporalGranularity
	SGran SpatialGranularity

	// Themes are the thematic dimensions of the stream (e.g. "weather",
	// "traffic", "social").
	Themes []string
}

// NewSchema builds a schema from fields and STT metadata. Field names must
// be unique and non-empty.
func NewSchema(fields []Field, tg TemporalGranularity, sg SpatialGranularity, themes ...string) (*Schema, error) {
	idx := make(map[string]int, len(fields))
	fs := make([]Field, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stt: field %d has empty name", i)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("stt: duplicate field %q", f.Name)
		}
		if f.KindName == "" {
			f.KindName = f.Kind.String()
		}
		idx[f.Name] = i
		fs[i] = f
	}
	ts := make([]string, len(themes))
	copy(ts, themes)
	sort.Strings(ts)
	return &Schema{fields: fs, index: idx, TGran: tg, SGran: sg, Themes: ts}, nil
}

// MustSchema is NewSchema that panics on error; for package-level literals
// in tests and sensor definitions whose validity is static.
func MustSchema(fields []Field, tg TemporalGranularity, sg SpatialGranularity, themes ...string) *Schema {
	s, err := NewSchema(fields, tg, sg, themes...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// IndexOf returns the position of the named field, or -1 if absent.
func (s *Schema) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Lookup returns the named field.
func (s *Schema) Lookup(name string) (Field, bool) {
	i, ok := s.index[name]
	if !ok {
		return Field{}, false
	}
	return s.fields[i], true
}

// HasTheme reports whether the schema carries the given thematic dimension.
func (s *Schema) HasTheme(theme string) bool {
	for _, t := range s.Themes {
		if t == theme {
			return true
		}
	}
	return false
}

// WithField returns a new schema extended with an extra field (used by the
// Virtual Property operation). It fails if the name already exists.
func (s *Schema) WithField(f Field) (*Schema, error) {
	if _, dup := s.index[f.Name]; dup {
		return nil, fmt.Errorf("stt: schema already has field %q", f.Name)
	}
	fields := append(s.Fields(), f)
	return NewSchema(fields, s.TGran, s.SGran, s.Themes...)
}

// WithoutField returns a new schema with the named field removed.
func (s *Schema) WithoutField(name string) (*Schema, error) {
	i := s.IndexOf(name)
	if i < 0 {
		return nil, fmt.Errorf("stt: schema has no field %q", name)
	}
	fields := s.Fields()
	fields = append(fields[:i], fields[i+1:]...)
	return NewSchema(fields, s.TGran, s.SGran, s.Themes...)
}

// WithGranularities returns a copy of the schema at different granularities.
func (s *Schema) WithGranularities(tg TemporalGranularity, sg SpatialGranularity) *Schema {
	out, err := NewSchema(s.Fields(), tg, sg, s.Themes...)
	if err != nil {
		// Fields come from a valid schema, so this cannot happen.
		panic(err)
	}
	return out
}

// Project returns a new schema with only the named fields, in the given
// order, plus the index mapping from new position to old position.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	fields := make([]Field, 0, len(names))
	mapping := make([]int, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return nil, nil, fmt.Errorf("stt: schema has no field %q", n)
		}
		fields = append(fields, s.fields[i])
		mapping = append(mapping, i)
	}
	out, err := NewSchema(fields, s.TGran, s.SGran, s.Themes...)
	if err != nil {
		return nil, nil, err
	}
	return out, mapping, nil
}

// MergeThemes returns the sorted union of two theme lists.
func MergeThemes(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, t := range a {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range b {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Compatible reports whether tuples of schema o can flow on a stream typed
// by s: same field names, kinds and order. Units and themes may differ.
func (s *Schema) Compatible(o *Schema) bool {
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i].Name != o.fields[i].Name || s.fields[i].Kind != o.fields[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as name:kind pairs with granularity metadata,
// e.g. "(temperature:float[celsius], station:string) @minute/district {weather}".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Kind.String())
		if f.Unit != "" {
			b.WriteByte('[')
			b.WriteString(f.Unit)
			b.WriteByte(']')
		}
	}
	b.WriteString(") @")
	b.WriteString(s.TGran.String())
	b.WriteByte('/')
	b.WriteString(s.SGran.String())
	if len(s.Themes) > 0 {
		b.WriteString(" {")
		b.WriteString(strings.Join(s.Themes, ","))
		b.WriteByte('}')
	}
	return b.String()
}
