package stt

import (
	"strings"
	"testing"
	"time"
)

func weatherSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Field{
		NewField("temperature", KindFloat, "celsius"),
		NewField("humidity", KindFloat, "percent"),
		NewField("station", KindString, ""),
	}, GranMinute, SpatCellDistrict, "weather")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]Field{NewField("", KindInt, "")}, GranSecond, SpatPoint); err == nil {
		t.Error("empty field name must be rejected")
	}
	if _, err := NewSchema([]Field{
		NewField("a", KindInt, ""),
		NewField("a", KindFloat, ""),
	}, GranSecond, SpatPoint); err == nil {
		t.Error("duplicate field must be rejected")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema must panic on invalid fields")
		}
	}()
	MustSchema([]Field{NewField("", KindInt, "")}, GranSecond, SpatPoint)
}

func TestSchemaLookup(t *testing.T) {
	s := weatherSchema(t)
	if s.NumFields() != 3 {
		t.Fatalf("NumFields = %d", s.NumFields())
	}
	if s.IndexOf("humidity") != 1 {
		t.Error("IndexOf humidity")
	}
	if s.IndexOf("missing") != -1 {
		t.Error("IndexOf missing")
	}
	f, ok := s.Lookup("temperature")
	if !ok || f.Kind != KindFloat || f.Unit != "celsius" {
		t.Errorf("Lookup temperature = %+v, %v", f, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup nope should fail")
	}
	if got := s.Field(2).Name; got != "station" {
		t.Errorf("Field(2) = %q", got)
	}
	fs := s.Fields()
	fs[0].Name = "mutated"
	if s.Field(0).Name != "temperature" {
		t.Error("Fields() must return a copy")
	}
}

func TestSchemaThemes(t *testing.T) {
	s := MustSchema(nil, GranSecond, SpatPoint, "b", "a", "c")
	if !s.HasTheme("a") || !s.HasTheme("b") || s.HasTheme("z") {
		t.Error("HasTheme")
	}
	// Themes are sorted for determinism.
	if s.Themes[0] != "a" || s.Themes[2] != "c" {
		t.Errorf("themes not sorted: %v", s.Themes)
	}
}

func TestWithField(t *testing.T) {
	s := weatherSchema(t)
	s2, err := s.WithField(NewField("apparent", KindFloat, "celsius"))
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumFields() != 4 || s2.IndexOf("apparent") != 3 {
		t.Error("WithField result")
	}
	if s.NumFields() != 3 {
		t.Error("WithField must not mutate the receiver")
	}
	if _, err := s.WithField(NewField("temperature", KindInt, "")); err == nil {
		t.Error("duplicate WithField must fail")
	}
}

func TestWithoutField(t *testing.T) {
	s := weatherSchema(t)
	s2, err := s.WithoutField("humidity")
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumFields() != 2 || s2.IndexOf("humidity") != -1 || s2.IndexOf("station") != 1 {
		t.Errorf("WithoutField result: %s", s2)
	}
	if _, err := s.WithoutField("missing"); err == nil {
		t.Error("WithoutField(missing) must fail")
	}
}

func TestWithGranularities(t *testing.T) {
	s := weatherSchema(t)
	s2 := s.WithGranularities(GranHour, SpatCellCity)
	if s2.TGran != GranHour || s2.SGran != SpatCellCity {
		t.Error("granularities not applied")
	}
	if s.TGran != GranMinute {
		t.Error("receiver mutated")
	}
	if !s.Compatible(s2) {
		t.Error("re-granulated schema must stay compatible")
	}
}

func TestProject(t *testing.T) {
	s := weatherSchema(t)
	p, mapping, err := s.Project([]string{"station", "temperature"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumFields() != 2 || p.Field(0).Name != "station" || p.Field(1).Name != "temperature" {
		t.Errorf("projection schema: %s", p)
	}
	if mapping[0] != 2 || mapping[1] != 0 {
		t.Errorf("mapping = %v", mapping)
	}
	if _, _, err := s.Project([]string{"ghost"}); err == nil {
		t.Error("projecting a missing field must fail")
	}
}

func TestCompatible(t *testing.T) {
	s := weatherSchema(t)
	same := MustSchema([]Field{
		NewField("temperature", KindFloat, "fahrenheit"), // unit differs: still compatible
		NewField("humidity", KindFloat, ""),
		NewField("station", KindString, ""),
	}, GranHour, SpatPoint, "other")
	if !s.Compatible(same) {
		t.Error("unit/theme/granularity differences must not break compatibility")
	}
	fewer := MustSchema([]Field{NewField("temperature", KindFloat, "")}, GranHour, SpatPoint)
	if s.Compatible(fewer) {
		t.Error("different arity must be incompatible")
	}
	renamed := MustSchema([]Field{
		NewField("temp", KindFloat, ""),
		NewField("humidity", KindFloat, ""),
		NewField("station", KindString, ""),
	}, GranHour, SpatPoint)
	if s.Compatible(renamed) {
		t.Error("renamed field must be incompatible")
	}
	retyped := MustSchema([]Field{
		NewField("temperature", KindInt, ""),
		NewField("humidity", KindFloat, ""),
		NewField("station", KindString, ""),
	}, GranHour, SpatPoint)
	if s.Compatible(retyped) {
		t.Error("retyped field must be incompatible")
	}
}

func TestMergeThemes(t *testing.T) {
	got := MergeThemes([]string{"weather", "rain"}, []string{"traffic", "weather"})
	want := []string{"rain", "traffic", "weather"}
	if len(got) != len(want) {
		t.Fatalf("MergeThemes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeThemes = %v, want %v", got, want)
		}
	}
	if out := MergeThemes(nil, nil); len(out) != 0 {
		t.Error("empty merge")
	}
}

func TestSchemaString(t *testing.T) {
	s := weatherSchema(t)
	str := s.String()
	for _, want := range []string{"temperature:float[celsius]", "@minute/district", "{weather}"} {
		if !strings.Contains(str, want) {
			t.Errorf("schema string %q missing %q", str, want)
		}
	}
}

func TestTupleBasics(t *testing.T) {
	s := weatherSchema(t)
	tup, err := NewTuple(s, []Value{Float(25.5), Float(60), String("osaka-1")})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tup.Get("temperature"); !ok || v.AsFloat() != 25.5 {
		t.Error("Get temperature")
	}
	if _, ok := tup.Get("ghost"); ok {
		t.Error("Get ghost should fail")
	}
	if tup.MustGet("station").AsString() != "osaka-1" {
		t.Error("MustGet station")
	}
	if _, err := NewTuple(s, []Value{Float(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestMustGetPanics(t *testing.T) {
	s := weatherSchema(t)
	tup, _ := NewTuple(s, []Value{Float(1), Float(2), String("x")})
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing field must panic")
		}
	}()
	tup.MustGet("ghost")
}

func TestTupleValidate(t *testing.T) {
	s := weatherSchema(t)
	ts := time.Date(2016, 3, 15, 9, 41, 0, 0, time.UTC)
	tup := &Tuple{Schema: s, Values: []Value{Float(20), Float(50), String("a")}, Time: ts}
	if err := tup.Validate(); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	// Int where float declared is fine.
	tup2 := &Tuple{Schema: s, Values: []Value{Int(20), Float(50), String("a")}, Time: ts}
	if err := tup2.Validate(); err != nil {
		t.Errorf("int-for-float rejected: %v", err)
	}
	// Null anywhere is fine.
	tup3 := &Tuple{Schema: s, Values: []Value{Null(), Null(), Null()}, Time: ts}
	if err := tup3.Validate(); err != nil {
		t.Errorf("nulls rejected: %v", err)
	}
	// Wrong kind fails.
	tup4 := &Tuple{Schema: s, Values: []Value{String("hot"), Float(50), String("a")}, Time: ts}
	if err := tup4.Validate(); err == nil {
		t.Error("string-for-float must fail")
	}
	// Unaligned time fails.
	tup5 := &Tuple{Schema: s, Values: []Value{Float(1), Float(2), String("a")},
		Time: ts.Add(3 * time.Second)}
	if err := tup5.Validate(); err == nil {
		t.Error("unaligned time must fail")
	}
	// Arity mismatch fails.
	tup6 := &Tuple{Schema: s, Values: []Value{Float(1)}, Time: ts}
	if err := tup6.Validate(); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestTupleCloneIsDeep(t *testing.T) {
	s := weatherSchema(t)
	tup, _ := NewTuple(s, []Value{Float(1), Float(2), String("a")})
	c := tup.Clone()
	c.Values[0] = Float(99)
	if tup.Values[0].AsFloat() != 1 {
		t.Error("Clone must not share value storage")
	}
	if c.Schema != tup.Schema {
		t.Error("Clone must share the immutable schema")
	}
}

func TestAlignSTT(t *testing.T) {
	s := weatherSchema(t) // minute / district
	tup, _ := NewTuple(s, []Value{Float(1), Float(2), String("a")})
	tup.Time = time.Date(2016, 3, 15, 9, 41, 23, 0, time.UTC)
	tup.Lat, tup.Lon = 34.6937, 135.5023
	tup.AlignSTT()
	if !tup.Time.Equal(time.Date(2016, 3, 15, 9, 41, 0, 0, time.UTC)) {
		t.Errorf("time not truncated: %v", tup.Time)
	}
	if tup.Lat != 34.69 || tup.Lon != 135.5 {
		t.Errorf("coords not snapped: %v, %v", tup.Lat, tup.Lon)
	}
	if err := tup.Validate(); err != nil {
		t.Errorf("aligned tuple invalid: %v", err)
	}
}

func TestCoarsen(t *testing.T) {
	s := weatherSchema(t) // minute / district
	tup, _ := NewTuple(s, []Value{Float(1), Float(2), String("a")})
	tup.Time = time.Date(2016, 3, 15, 9, 41, 0, 0, time.UTC)
	tup.Lat, tup.Lon = 34.69, 135.5

	coarse := s.WithGranularities(GranHour, SpatCellCity)
	c, err := tup.Coarsen(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Time.Equal(time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)) {
		t.Errorf("coarsened time = %v", c.Time)
	}
	if c.Lat != 34.6 || c.Lon != 135.5 {
		t.Errorf("coarsened coords = %v,%v", c.Lat, c.Lon)
	}
	if tup.Time.Minute() != 41 {
		t.Error("Coarsen must not mutate the source tuple")
	}

	// Refinement must fail in both dimensions.
	fineT := s.WithGranularities(GranSecond, SpatCellDistrict)
	if _, err := tup.Coarsen(fineT); err == nil {
		t.Error("temporal refinement must fail")
	}
	fineS := s.WithGranularities(GranHour, SpatCellStreet)
	if _, err := tup.Coarsen(fineS); err == nil {
		t.Error("spatial refinement must fail")
	}
	other := MustSchema([]Field{NewField("x", KindInt, "")}, GranHour, SpatCellCity)
	if _, err := tup.Coarsen(other); err == nil {
		t.Error("incompatible schema must fail")
	}
}

func TestTupleMapAndString(t *testing.T) {
	s := weatherSchema(t)
	tup, _ := NewTuple(s, []Value{Float(25.5), Float(60), String("osaka-1")})
	tup.Time = time.Date(2016, 3, 15, 9, 41, 0, 0, time.UTC)
	tup.Theme = "weather"
	tup.Source = "sensor-1"
	m := tup.Map()
	if m["temperature"] != 25.5 || m["station"] != "osaka-1" {
		t.Errorf("Map payload: %v", m)
	}
	if m["_theme"] != "weather" || m["_source"] != "sensor-1" {
		t.Errorf("Map metadata: %v", m)
	}
	str := tup.String()
	for _, want := range []string{"temperature=25.5", "station=osaka-1", "from sensor-1"} {
		if !strings.Contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
}
