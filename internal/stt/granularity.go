package stt

import (
	"fmt"
	"time"
)

// TemporalGranularity is the temporal resolution at which a sensor reports
// events. The paper's STT model uses granularities both to correlate data
// produced by different sensors and to impose consistency constraints when
// heterogeneous streams are composed (e.g. a join between a per-second and a
// per-day stream is only sound after coarsening to the coarser of the two).
type TemporalGranularity uint8

// Temporal granularities from finest to coarsest. The order of declaration
// is the coarsening order: a granularity with a higher value is coarser.
const (
	GranMillisecond TemporalGranularity = iota
	GranSecond
	GranMinute
	GranHour
	GranDay
	GranWeek
	GranMonth
	GranYear
)

var temporalNames = [...]string{
	GranMillisecond: "millisecond",
	GranSecond:      "second",
	GranMinute:      "minute",
	GranHour:        "hour",
	GranDay:         "day",
	GranWeek:        "week",
	GranMonth:       "month",
	GranYear:        "year",
}

// String returns the granularity name.
func (g TemporalGranularity) String() string {
	if int(g) < len(temporalNames) {
		return temporalNames[g]
	}
	return fmt.Sprintf("temporal(%d)", uint8(g))
}

// ParseTemporalGranularity converts a name into a TemporalGranularity.
func ParseTemporalGranularity(s string) (TemporalGranularity, error) {
	for g, name := range temporalNames {
		if name == s {
			return TemporalGranularity(g), nil
		}
	}
	return GranMillisecond, fmt.Errorf("stt: unknown temporal granularity %q", s)
}

// Valid reports whether g is one of the declared granularities.
func (g TemporalGranularity) Valid() bool { return int(g) < len(temporalNames) }

// CoarserThan reports whether g is strictly coarser than o.
func (g TemporalGranularity) CoarserThan(o TemporalGranularity) bool { return g > o }

// FinerThan reports whether g is strictly finer than o.
func (g TemporalGranularity) FinerThan(o TemporalGranularity) bool { return g < o }

// Coarsest returns the coarser of g and o. It is the least upper bound in
// the coarsening lattice and the granularity at which two streams can be
// soundly combined.
func (g TemporalGranularity) Coarsest(o TemporalGranularity) TemporalGranularity {
	if o > g {
		return o
	}
	return g
}

// Truncate rounds t down to the start of the granule containing it.
// Weeks start on Monday, per ISO 8601. All computations are in UTC so that
// truncation is deterministic regardless of host timezone.
func (g TemporalGranularity) Truncate(t time.Time) time.Time {
	t = t.UTC()
	switch g {
	case GranMillisecond:
		return t.Truncate(time.Millisecond)
	case GranSecond:
		return t.Truncate(time.Second)
	case GranMinute:
		return t.Truncate(time.Minute)
	case GranHour:
		return t.Truncate(time.Hour)
	case GranDay:
		return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	case GranWeek:
		day := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		wd := (int(day.Weekday()) + 6) % 7 // Monday == 0
		return day.AddDate(0, 0, -wd)
	case GranMonth:
		return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
	case GranYear:
		return time.Date(t.Year(), time.January, 1, 0, 0, 0, 0, time.UTC)
	default:
		return t
	}
}

// Duration returns the nominal length of one granule. Months and years use
// nominal civil lengths (30 and 365 days); callers that need exact granule
// boundaries must use Truncate.
func (g TemporalGranularity) Duration() time.Duration {
	switch g {
	case GranMillisecond:
		return time.Millisecond
	case GranSecond:
		return time.Second
	case GranMinute:
		return time.Minute
	case GranHour:
		return time.Hour
	case GranDay:
		return 24 * time.Hour
	case GranWeek:
		return 7 * 24 * time.Hour
	case GranMonth:
		return 30 * 24 * time.Hour
	case GranYear:
		return 365 * 24 * time.Hour
	default:
		return time.Millisecond
	}
}

// SpatialGranularity is the spatial resolution of a sensor's events: either
// an exact point or a grid cell of a given size. Cell sizes follow a decimal
// degree hierarchy so that coarsening is a pure widening of the cell.
type SpatialGranularity uint8

// Spatial granularities from finest to coarsest. CellStreet ≈ 110 m,
// CellDistrict ≈ 1.1 km, CellCity ≈ 11 km, CellRegion ≈ 110 km at the
// equator.
const (
	SpatPoint SpatialGranularity = iota
	SpatCellStreet
	SpatCellDistrict
	SpatCellCity
	SpatCellRegion
)

var spatialNames = [...]string{
	SpatPoint:        "point",
	SpatCellStreet:   "street",
	SpatCellDistrict: "district",
	SpatCellCity:     "city",
	SpatCellRegion:   "region",
}

// String returns the granularity name.
func (g SpatialGranularity) String() string {
	if int(g) < len(spatialNames) {
		return spatialNames[g]
	}
	return fmt.Sprintf("spatial(%d)", uint8(g))
}

// ParseSpatialGranularity converts a name into a SpatialGranularity.
func ParseSpatialGranularity(s string) (SpatialGranularity, error) {
	for g, name := range spatialNames {
		if name == s {
			return SpatialGranularity(g), nil
		}
	}
	return SpatPoint, fmt.Errorf("stt: unknown spatial granularity %q", s)
}

// Valid reports whether g is one of the declared granularities.
func (g SpatialGranularity) Valid() bool { return int(g) < len(spatialNames) }

// CoarserThan reports whether g is strictly coarser than o.
func (g SpatialGranularity) CoarserThan(o SpatialGranularity) bool { return g > o }

// Coarsest returns the coarser of g and o.
func (g SpatialGranularity) Coarsest(o SpatialGranularity) SpatialGranularity {
	if o > g {
		return o
	}
	return g
}

// CellDegrees returns the side length of the grid cell in decimal degrees,
// or 0 for SpatPoint.
func (g SpatialGranularity) CellDegrees() float64 {
	switch g {
	case SpatCellStreet:
		return 0.001
	case SpatCellDistrict:
		return 0.01
	case SpatCellCity:
		return 0.1
	case SpatCellRegion:
		return 1.0
	default:
		return 0
	}
}

// SnapCoord snaps a coordinate (latitude or longitude in decimal degrees) to
// the lower-left corner of the grid cell at granularity g. Points are
// returned unchanged.
func (g SpatialGranularity) SnapCoord(c float64) float64 {
	d := g.CellDegrees()
	if d == 0 {
		return c
	}
	// Floor to the cell origin; add a tiny epsilon-free computation by
	// working on scaled integers to keep snapping idempotent.
	scaled := int64(c / d)
	if c < 0 && float64(scaled)*d != c {
		scaled--
	}
	return float64(scaled) * d
}
