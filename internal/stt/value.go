// Package stt implements the multigranular Space-Time-Thematic (STT) data
// model that StreamLoader sensors produce tuples in.
//
// Following the paper (§3, "Stream Processing Operations"), an event is a
// value associated with a spatial object at a given time according to given
// thematics, represented at a temporal and a spatial granularity.
// Granularities identify correlations among data produced by different
// sensors and impose consistency constraints when streams produced by
// heterogeneous devices are composed.
package stt

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the dynamic type carried by a Value.
type Kind uint8

// The value kinds supported by the STT model. They cover the payloads of the
// physical and social sensors the paper considers (numeric measures, text,
// timestamps, booleans).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
)

var kindNames = [...]string{
	KindNull:   "null",
	KindBool:   "bool",
	KindInt:    "int",
	KindFloat:  "float",
	KindString: "string",
	KindTime:   "time",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind converts a kind name (as used in sensor schema declarations and
// dataflow specs) into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return KindNull, fmt.Errorf("stt: unknown kind %q", s)
}

// Numeric reports whether values of the kind support arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Comparable reports whether values of the kind support ordering.
func (k Kind) Comparable() bool {
	return k == KindInt || k == KindFloat || k == KindString || k == KindTime
}

// Value is a tagged union holding one STT payload value. The zero Value is
// the null value. Values are small and copied by value; they never share
// mutable state, so tuples can flow between operator goroutines freely.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	t    time.Time
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int wraps a 64-bit integer.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Time wraps a timestamp.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t} }

// Kind returns the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it is false unless Kind is KindBool.
func (v Value) AsBool() bool { return v.b }

// AsInt returns the value as an int64, converting from float if necessary.
func (v Value) AsInt() int64 {
	if v.kind == KindFloat {
		return int64(v.f)
	}
	return v.i
}

// AsFloat returns the value as a float64, converting from int if necessary.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is empty unless Kind is KindString.
func (v Value) AsString() string { return v.s }

// AsTime returns the time payload; it is the zero time unless Kind is KindTime.
func (v Value) AsTime() time.Time { return v.t }

// Truthy reports whether the value is "true" in a condition context:
// a true bool, a non-zero number, a non-empty string, a non-zero time.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindTime:
		return !v.t.IsZero()
	default:
		return false
	}
}

// String renders the value for logs, samples and the monitoring UI.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// GoValue returns the payload as a plain Go value, for JSON encoding.
func (v Value) GoValue() any {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindTime:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return nil
	}
}

// FromGoValue converts a plain Go value (as produced by encoding/json) into
// a Value. JSON numbers arrive as float64; they stay floats to keep decoding
// loss-free.
func FromGoValue(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Null(), nil
	case bool:
		return Bool(t), nil
	case int:
		return Int(int64(t)), nil
	case int64:
		return Int(t), nil
	case float64:
		return Float(t), nil
	case string:
		return String(t), nil
	case time.Time:
		return Time(t), nil
	default:
		return Null(), fmt.Errorf("stt: cannot convert %T to Value", x)
	}
}

// Equal reports deep equality between two values. Int and float values
// compare numerically (Int(2) equals Float(2)).
func (v Value) Equal(o Value) bool {
	if v.kind.Numeric() && o.kind.Numeric() {
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindString:
		return v.s == o.s
	case KindTime:
		return v.t.Equal(o.t)
	default:
		return false
	}
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// It returns an error when the kinds are not mutually comparable.
func (v Value) Compare(o Value) (int, error) {
	if v.kind.Numeric() && o.kind.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("stt: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		default:
			return 0, nil
		}
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1, nil
		case v.t.After(o.t):
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("stt: kind %s is not comparable", v.kind)
	}
}

// Add returns v + o for numeric values, or string concatenation when both
// operands are strings.
func (v Value) Add(o Value) (Value, error) {
	if v.kind == KindString && o.kind == KindString {
		return String(v.s + o.s), nil
	}
	if v.kind == KindInt && o.kind == KindInt {
		return Int(v.i + o.i), nil
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		return Float(v.AsFloat() + o.AsFloat()), nil
	}
	return Null(), fmt.Errorf("stt: cannot add %s and %s", v.kind, o.kind)
}

// Sub returns v - o for numeric values.
func (v Value) Sub(o Value) (Value, error) {
	if v.kind == KindInt && o.kind == KindInt {
		return Int(v.i - o.i), nil
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		return Float(v.AsFloat() - o.AsFloat()), nil
	}
	return Null(), fmt.Errorf("stt: cannot subtract %s from %s", o.kind, v.kind)
}

// Mul returns v * o for numeric values.
func (v Value) Mul(o Value) (Value, error) {
	if v.kind == KindInt && o.kind == KindInt {
		return Int(v.i * o.i), nil
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		return Float(v.AsFloat() * o.AsFloat()), nil
	}
	return Null(), fmt.Errorf("stt: cannot multiply %s and %s", v.kind, o.kind)
}

// Div returns v / o for numeric values. Integer division of two ints
// truncates toward zero, matching Go. Division by zero is an error for ints
// and yields ±Inf/NaN for floats, matching IEEE semantics sensors rely on.
func (v Value) Div(o Value) (Value, error) {
	if v.kind == KindInt && o.kind == KindInt {
		if o.i == 0 {
			return Null(), fmt.Errorf("stt: integer division by zero")
		}
		return Int(v.i / o.i), nil
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		return Float(v.AsFloat() / o.AsFloat()), nil
	}
	return Null(), fmt.Errorf("stt: cannot divide %s by %s", v.kind, o.kind)
}

// Mod returns v % o. Ints use Go's %, floats use math.Mod.
func (v Value) Mod(o Value) (Value, error) {
	if v.kind == KindInt && o.kind == KindInt {
		if o.i == 0 {
			return Null(), fmt.Errorf("stt: integer modulo by zero")
		}
		return Int(v.i % o.i), nil
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		return Float(math.Mod(v.AsFloat(), o.AsFloat())), nil
	}
	return Null(), fmt.Errorf("stt: cannot take %s mod %s", v.kind, o.kind)
}

// Neg returns -v for numeric values.
func (v Value) Neg() (Value, error) {
	switch v.kind {
	case KindInt:
		return Int(-v.i), nil
	case KindFloat:
		return Float(-v.f), nil
	default:
		return Null(), fmt.Errorf("stt: cannot negate %s", v.kind)
	}
}
