package stt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTemporalGranularityNames(t *testing.T) {
	for g := GranMillisecond; g <= GranYear; g++ {
		parsed, err := ParseTemporalGranularity(g.String())
		if err != nil {
			t.Fatalf("parse %q: %v", g.String(), err)
		}
		if parsed != g {
			t.Errorf("round trip %v -> %v", g, parsed)
		}
		if !g.Valid() {
			t.Errorf("%v must be valid", g)
		}
	}
	if _, err := ParseTemporalGranularity("fortnight"); err == nil {
		t.Error("fortnight must not parse")
	}
	if TemporalGranularity(99).Valid() {
		t.Error("99 must be invalid")
	}
	if TemporalGranularity(99).String() == "" {
		t.Error("unknown granularity must still print")
	}
}

func TestTemporalOrdering(t *testing.T) {
	if !GranHour.CoarserThan(GranMinute) {
		t.Error("hour coarser than minute")
	}
	if !GranMinute.FinerThan(GranHour) {
		t.Error("minute finer than hour")
	}
	if GranHour.Coarsest(GranDay) != GranDay {
		t.Error("coarsest(hour,day) = day")
	}
	if GranHour.Coarsest(GranSecond) != GranHour {
		t.Error("coarsest(hour,second) = hour")
	}
}

func TestTruncate(t *testing.T) {
	// 2016-03-15 (Tuesday) 09:41:23.456789 UTC — EDBT 2016 week.
	ts := time.Date(2016, 3, 15, 9, 41, 23, 456789000, time.UTC)
	cases := []struct {
		g    TemporalGranularity
		want time.Time
	}{
		{GranMillisecond, time.Date(2016, 3, 15, 9, 41, 23, 456000000, time.UTC)},
		{GranSecond, time.Date(2016, 3, 15, 9, 41, 23, 0, time.UTC)},
		{GranMinute, time.Date(2016, 3, 15, 9, 41, 0, 0, time.UTC)},
		{GranHour, time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)},
		{GranDay, time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)},
		{GranWeek, time.Date(2016, 3, 14, 0, 0, 0, 0, time.UTC)}, // Monday
		{GranMonth, time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)},
		{GranYear, time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, c := range cases {
		if got := c.g.Truncate(ts); !got.Equal(c.want) {
			t.Errorf("%v.Truncate = %v, want %v", c.g, got, c.want)
		}
	}
}

func TestTruncateWeekOnSunday(t *testing.T) {
	// 2016-03-20 is a Sunday; ISO week starts the preceding Monday 03-14.
	sun := time.Date(2016, 3, 20, 23, 59, 0, 0, time.UTC)
	want := time.Date(2016, 3, 14, 0, 0, 0, 0, time.UTC)
	if got := GranWeek.Truncate(sun); !got.Equal(want) {
		t.Errorf("week truncate Sunday = %v, want %v", got, want)
	}
	// A Monday truncates to itself.
	mon := time.Date(2016, 3, 14, 5, 0, 0, 0, time.UTC)
	if got := GranWeek.Truncate(mon); !got.Equal(want) {
		t.Errorf("week truncate Monday = %v, want %v", got, want)
	}
}

func TestDuration(t *testing.T) {
	if GranSecond.Duration() != time.Second {
		t.Error("second duration")
	}
	if GranWeek.Duration() != 7*24*time.Hour {
		t.Error("week duration")
	}
	if GranYear.Duration() != 365*24*time.Hour {
		t.Error("year duration")
	}
	if TemporalGranularity(99).Duration() != time.Millisecond {
		t.Error("unknown duration defaults to millisecond")
	}
}

// Property: truncation is idempotent at every granularity.
func TestQuickTruncateIdempotent(t *testing.T) {
	f := func(sec int64, g8 uint8) bool {
		g := TemporalGranularity(g8 % 8)
		ts := time.Unix(sec%4e9, 0)
		once := g.Truncate(ts)
		return g.Truncate(once).Equal(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: truncation is monotone — coarser granularity yields an earlier
// or equal instant.
func TestQuickTruncateMonotone(t *testing.T) {
	f := func(sec int64, a8, b8 uint8) bool {
		a := TemporalGranularity(a8 % 8)
		b := TemporalGranularity(b8 % 8)
		if a.CoarserThan(b) {
			a, b = b, a // ensure a finer-or-equal b
		}
		// Weeks do not nest inside months/years (a week may start in the
		// previous month), so monotonicity only holds in the nested chain.
		if a == GranWeek && b > GranWeek {
			return true
		}
		ts := time.Unix(sec%4e9, 0)
		return !b.Truncate(ts).After(a.Truncate(ts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: coarsening then coarsening again equals coarsening to the
// coarser granularity directly (truncation composes).
func TestQuickTruncateComposes(t *testing.T) {
	f := func(sec int64, a8, b8 uint8) bool {
		fine := TemporalGranularity(a8 % 8)
		coarse := TemporalGranularity(b8 % 8)
		if fine.CoarserThan(coarse) {
			fine, coarse = coarse, fine
		}
		// Exclude week/month interplay: weeks do not nest in months/years.
		if fine == GranWeek && coarse > GranWeek {
			return true
		}
		ts := time.Unix(sec%4e9, 0)
		via := coarse.Truncate(fine.Truncate(ts))
		direct := coarse.Truncate(ts)
		return via.Equal(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSpatialGranularity(t *testing.T) {
	for g := SpatPoint; g <= SpatCellRegion; g++ {
		parsed, err := ParseSpatialGranularity(g.String())
		if err != nil {
			t.Fatalf("parse %q: %v", g.String(), err)
		}
		if parsed != g {
			t.Errorf("round trip %v -> %v", g, parsed)
		}
		if !g.Valid() {
			t.Errorf("%v must be valid", g)
		}
	}
	if _, err := ParseSpatialGranularity("galaxy"); err == nil {
		t.Error("galaxy must not parse")
	}
	if !SpatCellCity.CoarserThan(SpatCellStreet) {
		t.Error("city coarser than street")
	}
	if SpatCellCity.Coarsest(SpatCellRegion) != SpatCellRegion {
		t.Error("coarsest(city,region)")
	}
	if SpatPoint.CellDegrees() != 0 {
		t.Error("point has no cell size")
	}
	if SpatCellDistrict.CellDegrees() != 0.01 {
		t.Error("district cell size")
	}
	if SpatialGranularity(99).String() == "" {
		t.Error("unknown spatial granularity must still print")
	}
}

func TestSnapCoord(t *testing.T) {
	cases := []struct {
		g    SpatialGranularity
		in   float64
		want float64
	}{
		{SpatPoint, 34.6937, 34.6937},
		{SpatCellCity, 34.6937, 34.6},
		{SpatCellRegion, 135.5023, 135},
		{SpatCellRegion, -0.5, -1},
		{SpatCellCity, -0.25, -0.3},
		{SpatCellRegion, 2, 2}, // exact boundary stays put
	}
	for _, c := range cases {
		got := c.g.SnapCoord(c.in)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v.SnapCoord(%v) = %v, want %v", c.g, c.in, got, c.want)
		}
	}
}

// Property: snapping is idempotent and never increases the coordinate.
func TestQuickSnapIdempotentAndFloor(t *testing.T) {
	f := func(c float64, g8 uint8) bool {
		if c > 1e6 || c < -1e6 {
			return true // avoid float-precision noise far outside lat/lon ranges
		}
		g := SpatialGranularity(g8 % 5)
		once := g.SnapCoord(c)
		twice := g.SnapCoord(once)
		const eps = 1e-6
		return once <= c+eps && (twice-once) < eps && (once-twice) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
