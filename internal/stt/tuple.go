package stt

import (
	"fmt"
	"strings"
	"time"
)

// Tuple is one STT event: a payload of values plus the space, time and
// thematic coordinates the STT model attaches to every sensor reading.
// Whenever a sensor cannot produce the spatio-temporal information itself,
// the publish/subscribe layer fills Time and Lat/Lon in (paper §3).
type Tuple struct {
	// Schema describes Values. All tuples on a stream share one schema.
	Schema *Schema

	// Values holds the payload, positionally aligned with Schema fields.
	Values []Value

	// Time is the event time, truncated to Schema.TGran by convention.
	Time time.Time

	// Lat and Lon locate the event; snapped to Schema.SGran by convention.
	Lat, Lon float64

	// Theme is the primary thematic tag of this event.
	Theme string

	// Source is the identifier of the producing sensor.
	Source string

	// Seq is a per-source monotone sequence number, used for debugging and
	// loss accounting in the executor.
	Seq uint64
}

// NewTuple builds a tuple over schema with the given payload. It verifies
// arity but not kinds; use Validate for a full check.
func NewTuple(schema *Schema, values []Value) (*Tuple, error) {
	if len(values) != schema.NumFields() {
		return nil, fmt.Errorf("stt: tuple has %d values, schema %s has %d fields",
			len(values), schema, schema.NumFields())
	}
	return &Tuple{Schema: schema, Values: values}, nil
}

// Get returns the value of the named field.
func (t *Tuple) Get(name string) (Value, bool) {
	i := t.Schema.IndexOf(name)
	if i < 0 {
		return Null(), false
	}
	return t.Values[i], true
}

// MustGet returns the value of the named field and panics if absent; for
// use after schema validation has established the field exists.
func (t *Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("stt: tuple %s has no field %q", t.Schema, name))
	}
	return v
}

// Validate checks that every value matches its declared field kind
// (null is allowed for any field) and that STT metadata respects the
// schema's granularities.
func (t *Tuple) Validate() error {
	if len(t.Values) != t.Schema.NumFields() {
		return fmt.Errorf("stt: arity mismatch: %d values vs %d fields",
			len(t.Values), t.Schema.NumFields())
	}
	for i, v := range t.Values {
		f := t.Schema.Field(i)
		if v.Kind() != KindNull && v.Kind() != f.Kind {
			// Ints are acceptable where floats are declared: sensors
			// frequently emit integral readings of float measures.
			if !(f.Kind == KindFloat && v.Kind() == KindInt) {
				return fmt.Errorf("stt: field %q: value kind %s does not match declared %s",
					f.Name, v.Kind(), f.Kind)
			}
		}
	}
	if !t.Time.Equal(t.Schema.TGran.Truncate(t.Time)) {
		return fmt.Errorf("stt: event time %v not aligned to %s granule",
			t.Time, t.Schema.TGran)
	}
	return nil
}

// Clone returns a deep copy of the tuple sharing the (immutable) schema.
func (t *Tuple) Clone() *Tuple {
	vals := make([]Value, len(t.Values))
	copy(vals, t.Values)
	c := *t
	c.Values = vals
	return &c
}

// AlignSTT truncates the event time and snaps the coordinates to the
// schema's granularities, returning the receiver for chaining. Sources call
// it once per emitted tuple so downstream operators can rely on alignment.
func (t *Tuple) AlignSTT() *Tuple {
	t.Time = t.Schema.TGran.Truncate(t.Time)
	t.Lat = t.Schema.SGran.SnapCoord(t.Lat)
	t.Lon = t.Schema.SGran.SnapCoord(t.Lon)
	return t
}

// Coarsen re-represents the tuple at coarser granularities, producing a new
// tuple bound to the given schema (which must be the same shape at coarser
// TGran/SGran). It is the basis of the consistency-preserving composition
// of heterogeneous streams.
func (t *Tuple) Coarsen(target *Schema) (*Tuple, error) {
	if !t.Schema.Compatible(target) {
		return nil, fmt.Errorf("stt: coarsen: incompatible schemas %s vs %s", t.Schema, target)
	}
	if target.TGran.FinerThan(t.Schema.TGran) {
		return nil, fmt.Errorf("stt: cannot refine temporal granularity %s to %s",
			t.Schema.TGran, target.TGran)
	}
	if t.Schema.SGran.CoarserThan(target.SGran) {
		return nil, fmt.Errorf("stt: cannot refine spatial granularity %s to %s",
			t.Schema.SGran, target.SGran)
	}
	c := t.Clone()
	c.Schema = target
	c.AlignSTT()
	return c, nil
}

// Map returns the tuple's payload and STT metadata as a generic map, for
// JSON encoding in samples, logs and the warehouse.
func (t *Tuple) Map() map[string]any {
	m := make(map[string]any, t.Schema.NumFields()+5)
	for i, v := range t.Values {
		m[t.Schema.Field(i).Name] = v.GoValue()
	}
	m["_time"] = t.Time.UTC().Format(time.RFC3339Nano)
	m["_lat"] = t.Lat
	m["_lon"] = t.Lon
	if t.Theme != "" {
		m["_theme"] = t.Theme
	}
	if t.Source != "" {
		m["_source"] = t.Source
	}
	return m
}

// String renders the tuple compactly for logs and sample windows.
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Schema.Field(i).Name)
		b.WriteByte('=')
		b.WriteString(v.String())
	}
	fmt.Fprintf(&b, "} @%s (%.4f,%.4f)", t.Time.UTC().Format(time.RFC3339), t.Lat, t.Lon)
	if t.Source != "" {
		b.WriteString(" from ")
		b.WriteString(t.Source)
	}
	return b.String()
}
