package stt

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", KindTime: "time",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := KindNull; k <= KindTime; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("int/float must be numeric")
	}
	if KindString.Numeric() || KindBool.Numeric() || KindTime.Numeric() {
		t.Error("string/bool/time must not be numeric")
	}
	for _, k := range []Kind{KindInt, KindFloat, KindString, KindTime} {
		if !k.Comparable() {
			t.Errorf("%s must be comparable", k)
		}
	}
	if KindNull.Comparable() || KindBool.Comparable() {
		t.Error("null/bool must not be comparable")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	now := time.Now()
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Int(-3), KindInt},
		{Float(2.5), KindFloat},
		{String("osaka"), KindString},
		{Time(now), KindTime},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if Bool(true).AsBool() != true {
		t.Error("AsBool")
	}
	if Int(7).AsInt() != 7 || Float(7.9).AsInt() != 7 {
		t.Error("AsInt")
	}
	if Int(7).AsFloat() != 7.0 || Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat")
	}
	if String("x").AsString() != "x" {
		t.Error("AsString")
	}
	if !Time(now).AsTime().Equal(now) {
		t.Error("AsTime")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Float(-0.5), String("a"), Time(time.Now())}
	falsy := []Value{Null(), Bool(false), Int(0), Float(0), String(""), Time(time.Time{})}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestValueString(t *testing.T) {
	if Null().String() != "null" {
		t.Error("null string")
	}
	if Bool(true).String() != "true" {
		t.Error("bool string")
	}
	if Int(-12).String() != "-12" {
		t.Error("int string")
	}
	if Float(2.5).String() != "2.5" {
		t.Error("float string")
	}
	if String("osaka").String() != "osaka" {
		t.Error("string string")
	}
	ts := time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)
	if Time(ts).String() != "2016-03-15T09:00:00Z" {
		t.Errorf("time string = %q", Time(ts).String())
	}
}

func TestGoValueRoundTrip(t *testing.T) {
	vals := []Value{Null(), Bool(true), Int(5), Float(1.25), String("s")}
	for _, v := range vals {
		back, err := FromGoValue(v.GoValue())
		if err != nil {
			t.Fatalf("FromGoValue(%v): %v", v, err)
		}
		// Ints come back as ints, floats as floats; time round-trips to string
		// so is excluded here.
		if !back.Equal(v) {
			t.Errorf("round trip %v -> %v", v, back)
		}
	}
	if _, err := FromGoValue(struct{}{}); err == nil {
		t.Error("FromGoValue(struct{}{}) succeeded, want error")
	}
	if v, err := FromGoValue(3); err != nil || v.AsInt() != 3 {
		t.Error("FromGoValue(int)")
	}
	now := time.Now()
	if v, err := FromGoValue(now); err != nil || !v.AsTime().Equal(now) {
		t.Error("FromGoValue(time)")
	}
}

func TestEqualNumericCrossKind(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(2).Equal(String("2")) {
		t.Error("Int should not equal String")
	}
	if !Null().Equal(Null()) {
		t.Error("null equals null")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("string equality")
	}
	now := time.Now()
	if !Time(now).Equal(Time(now)) {
		t.Error("time equality")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("bool equality")
	}
}

func TestCompare(t *testing.T) {
	lt := [][2]Value{
		{Int(1), Int(2)},
		{Float(1.5), Int(2)},
		{String("a"), String("b")},
		{Bool(false), Bool(true)},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0))},
	}
	for _, p := range lt {
		c, err := p[0].Compare(p[1])
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d,%v want -1", p[0], p[1], c, err)
		}
		c, err = p[1].Compare(p[0])
		if err != nil || c != 1 {
			t.Errorf("Compare(%v,%v) = %d,%v want 1", p[1], p[0], c, err)
		}
		c, err = p[0].Compare(p[0])
		if err != nil || c != 0 {
			t.Errorf("Compare(%v,%v) = %d,%v want 0", p[0], p[0], c, err)
		}
	}
	if _, err := String("a").Compare(Int(1)); err == nil {
		t.Error("string vs int comparison should fail")
	}
	if _, err := Null().Compare(Null()); err == nil {
		t.Error("null comparison should fail")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Int(2).Add(Int(3))); got.Kind() != KindInt || got.AsInt() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Int(2).Add(Float(0.5))); got.Kind() != KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(String("ab").Add(String("cd"))); got.AsString() != "abcd" {
		t.Errorf("concat = %v", got)
	}
	if got := mustV(Int(5).Sub(Int(7))); got.AsInt() != -2 {
		t.Errorf("5-7 = %v", got)
	}
	if got := mustV(Int(4).Mul(Float(2.5))); got.AsFloat() != 10 {
		t.Errorf("4*2.5 = %v", got)
	}
	if got := mustV(Int(7).Div(Int(2))); got.Kind() != KindInt || got.AsInt() != 3 {
		t.Errorf("7/2 = %v", got)
	}
	if got := mustV(Float(7).Div(Int(2))); got.AsFloat() != 3.5 {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := mustV(Int(7).Mod(Int(4))); got.AsInt() != 3 {
		t.Errorf("7%%4 = %v", got)
	}
	if got := mustV(Float(7.5).Mod(Float(2))); got.AsFloat() != 1.5 {
		t.Errorf("7.5 mod 2 = %v", got)
	}
	if got := mustV(Int(3).Neg()); got.AsInt() != -3 {
		t.Errorf("-3 = %v", got)
	}
	if got := mustV(Float(3.5).Neg()); got.AsFloat() != -3.5 {
		t.Errorf("-3.5 = %v", got)
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Int(1).Div(Int(0)); err == nil {
		t.Error("int division by zero must error")
	}
	if _, err := Int(1).Mod(Int(0)); err == nil {
		t.Error("int modulo by zero must error")
	}
	if v, err := Float(1).Div(Float(0)); err != nil || !math.IsInf(v.AsFloat(), 1) {
		t.Error("float division by zero must be +Inf")
	}
	if _, err := String("a").Sub(String("b")); err == nil {
		t.Error("string subtraction must error")
	}
	if _, err := Bool(true).Add(Int(1)); err == nil {
		t.Error("bool addition must error")
	}
	if _, err := String("x").Neg(); err == nil {
		t.Error("string negation must error")
	}
	if _, err := Bool(true).Mul(Bool(false)); err == nil {
		t.Error("bool multiplication must error")
	}
}

// Property: Add is commutative for numeric values and Compare is
// antisymmetric for ints.
func TestQuickNumericProperties(t *testing.T) {
	addComm := func(a, b int32) bool {
		x, err1 := Int(int64(a)).Add(Float(float64(b)))
		y, err2 := Float(float64(b)).Add(Int(int64(a)))
		return err1 == nil && err2 == nil && x.Equal(y)
	}
	if err := quick.Check(addComm, nil); err != nil {
		t.Error(err)
	}
	antisym := func(a, b int64) bool {
		c1, err1 := Int(a).Compare(Int(b))
		c2, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer Add/Sub are inverses.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		sum, err := Int(int64(a)).Add(Int(int64(b)))
		if err != nil {
			return false
		}
		back, err := sum.Sub(Int(int64(b)))
		return err == nil && back.AsInt() == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
