package dataflow

import (
	"fmt"
	"sort"
	"sync"

	"streamloader/internal/ops"
	"streamloader/internal/stream"
	"streamloader/internal/stt"
)

// DebugResult carries the per-node outputs of a sample run: what the user
// sees in the bottom window of the design canvas when checking an operation
// "step-by-step ... on samples made available from the source" (P1).
type DebugResult struct {
	// Outputs maps node ID to the tuples observed on its output (for sinks:
	// on their input).
	Outputs map[string][]*stt.Tuple
}

// Debug executes the plan in-process on the given per-source sample tuples.
// Samples are replayed in event-time order with per-tuple watermarks, so
// blocking operations flush exactly as they would live.
func Debug(plan *Plan, samples map[string][]*stt.Tuple) (*DebugResult, error) {
	res := &DebugResult{Outputs: map[string][]*stt.Tuple{}}
	var mu sync.Mutex
	record := func(node string, t *stt.Tuple) {
		mu.Lock()
		res.Outputs[node] = append(res.Outputs[node], t)
		mu.Unlock()
	}

	// One stream per edge.
	edges := map[[2]string]*stream.Stream{}
	for _, pn := range plan.Nodes {
		for _, to := range pn.Out {
			key := [2]string{pn.ID, to}
			schema := pn.OutSchema
			edges[key] = stream.New(pn.ID+"->"+to, schema, stream.DefaultBuffer)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(plan.Nodes))

	for _, pn := range plan.Nodes {
		pn := pn
		outs := make([]*stream.Stream, 0, len(pn.Out))
		for _, to := range pn.Out {
			outs = append(outs, edges[[2]string{pn.ID, to}])
		}
		ins := make([]*stream.Stream, 0, len(pn.In))
		for _, from := range pn.In {
			ins = append(ins, edges[[2]string{from, pn.ID}])
		}

		switch pn.Kind {
		case ops.KindSource:
			sample := append([]*stt.Tuple(nil), samples[pn.ID]...)
			if len(sample) == 0 {
				// Allow addressing samples by sensor ID as well.
				sample = append(sample, samples[pn.SensorID]...)
			}
			sort.SliceStable(sample, func(i, j int) bool {
				return sample[i].Time.Before(sample[j].Time)
			})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, t := range sample {
					record(pn.ID, t)
					for _, o := range outs {
						o.Send(t)
						o.SendWatermark(t.Time)
					}
				}
				for _, o := range outs {
					o.Close()
				}
			}()

		case ops.KindSink:
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, in := range ins {
					for t := range readTuples(in) {
						record(pn.ID, t)
					}
				}
			}()

		default:
			if pn.Op == nil {
				return nil, fmt.Errorf("dataflow: node %s has no operator", pn.ID)
			}
			mid := stream.New(pn.ID+".out", pn.OutSchema, stream.DefaultBuffer)
			wg.Add(2)
			go func() {
				defer wg.Done()
				if err := pn.Op.Run(ins, mid); err != nil {
					errc <- fmt.Errorf("dataflow: node %s: %w", pn.ID, err)
				}
			}()
			go func() {
				defer wg.Done()
				broadcast(mid, outs, func(t *stt.Tuple) { record(pn.ID, t) })
			}()
		}
	}

	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}
	return res, nil
}

// readTuples exposes a stream's tuples as a channel, consuming watermarks.
func readTuples(s *stream.Stream) <-chan *stt.Tuple {
	out := make(chan *stt.Tuple, 64)
	go func() {
		defer close(out)
		for item := range s.C {
			if item.Kind == stream.ItemTuple {
				out <- item.Tuple
			}
		}
	}()
	return out
}

// broadcast fans one stream out to several consumers, tapping each tuple.
func broadcast(in *stream.Stream, outs []*stream.Stream, tapTuple func(*stt.Tuple)) {
	for item := range in.C {
		switch item.Kind {
		case stream.ItemTuple:
			if tapTuple != nil {
				tapTuple(item.Tuple)
			}
			for _, o := range outs {
				o.Send(item.Tuple)
			}
		case stream.ItemWatermark:
			for _, o := range outs {
				o.SendWatermark(item.Watermark)
			}
		case stream.ItemEOS:
			// Close after the range loop drains.
		}
	}
	for _, o := range outs {
		o.Close()
	}
}
