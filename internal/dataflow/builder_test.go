package dataflow

import (
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
)

func TestBuilderSimple(t *testing.T) {
	b := NewBuilder("built")
	src := b.Source("src", "temp-1")
	hot := b.Filter("hot", "temperature > 25").From(src)
	b.SinkNode("out", "collect").From(hot)
	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "built" || len(spec.Nodes) != 3 || len(spec.Edges) != 2 {
		t.Fatalf("spec: %+v", spec)
	}
	diags := Validate(spec, testResolver())
	if diags.HasErrors() {
		t.Fatalf("built spec invalid: %v", diags)
	}
}

func TestBuilderAllNodeKinds(t *testing.T) {
	b := NewBuilder("kitchen-sink")
	temp := b.Source("temp", "temp-1")
	rain := b.Source("rain", "rain-1")
	f := b.Filter("f", "temperature > 0").From(temp)
	v := b.Virtual("v", "t2", "temperature * 2", "celsius").From(f)
	ct := b.CullTime("ct", 0.5,
		time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 3, 16, 0, 0, 0, 0, time.UTC)).From(v)
	cs := b.CullSpace("cs", 0.9, geo.Osaka).From(ct)
	tr := b.Transform("tr", ops.TransformStep{Op: "rename", Field: "rain_rate", NewName: "rate"}).From(rain)
	on := b.TriggerOn("on", time.Hour, "temperature > 25", "rain-1").From(cs)
	ag := b.Aggregate("ag", time.Minute, ops.AggAvg, "temperature", "station").From(on)
	j := b.Join("j", time.Minute, "left.avg_temperature > right.rate").From(ag, tr)
	b.SinkNode("out", "collect").From(j)
	off := b.TriggerOff("off", time.Hour, "temperature < 5", "rain-1").From(temp)
	b.SinkNode("out2", "discard").From(off)

	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	diags := Validate(spec, testResolver())
	if diags.HasErrors() {
		t.Fatalf("kitchen-sink invalid: %v", diags)
	}
	// Join wiring: ag on port 0, tr on port 1.
	var joinEdges []EdgeSpec
	for _, e := range spec.Edges {
		if e.To == "j" {
			joinEdges = append(joinEdges, e)
		}
	}
	if len(joinEdges) != 2 || joinEdges[0].From != "ag" || joinEdges[0].Port != 0 ||
		joinEdges[1].From != "tr" || joinEdges[1].Port != 1 {
		t.Errorf("join wiring: %+v", joinEdges)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("dup")
	b.Source("x", "temp-1")
	b.Filter("x", "true")
	if _, err := b.Spec(); err == nil {
		t.Error("duplicate ID must surface")
	}
	b2 := NewBuilder("empty-id")
	b2.Filter("", "true")
	if _, err := b2.Spec(); err == nil {
		t.Error("empty ID must surface")
	}
}

func TestBuilderHandleID(t *testing.T) {
	b := NewBuilder("h")
	h := b.Source("src", "temp-1")
	if h.ID() != "src" {
		t.Error("Handle.ID")
	}
}

func TestBuilderSpecIsCopy(t *testing.T) {
	b := NewBuilder("copy")
	src := b.Source("src", "temp-1")
	b.SinkNode("out", "discard").From(src)
	s1, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	s1.Name = "mutated"
	s2, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name != "copy" {
		t.Error("Spec must return a copy of the builder state")
	}
}
