// Package dataflow implements StreamLoader's conceptual dataflows: the
// graphs users draw in the visual environment (paper Figure 2), their
// consistency validation ("different checks in order to draw only dataflows
// that can be soundly translated"), schema propagation ("data schema are not
// fixed but depend on the sensors"), compilation into runnable operator
// plans, and sample-based debugging (demo walkthrough P1).
package dataflow

import (
	"encoding/json"
	"fmt"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
)

// Spec is the JSON-serializable conceptual dataflow, the artifact the Web
// UI edits and the translator consumes.
type Spec struct {
	// Name identifies the dataflow.
	Name string `json:"name"`
	// Nodes are the operations, sources and sinks.
	Nodes []NodeSpec `json:"nodes"`
	// Edges wire node outputs to node inputs.
	Edges []EdgeSpec `json:"edges"`
}

// NodeSpec configures one node of the conceptual dataflow. Exactly the
// fields relevant to Kind are consulted; the rest stay zero.
type NodeSpec struct {
	// ID is the dataflow-unique node name.
	ID string `json:"id"`
	// Kind is the operation kind ("source", "filter", ..., "sink").
	Kind string `json:"kind"`

	// Sensor is the sensor ID a source binds to.
	Sensor string `json:"sensor,omitempty"`

	// Sink selects the destination kind of a sink node: "warehouse",
	// "viz", "collect" or "discard".
	Sink string `json:"sink,omitempty"`

	// Cond is the condition of filter and trigger nodes.
	Cond string `json:"cond,omitempty"`

	// Property, Spec and Unit configure a virtual_property node.
	Property string `json:"property,omitempty"`
	Spec     string `json:"spec,omitempty"`
	Unit     string `json:"unit,omitempty"`

	// Rate is the reducing rate of cull nodes.
	Rate float64 `json:"rate,omitempty"`
	// From/To delimit the temporal interval of cull_time (RFC3339).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Area delimits the region of cull_space.
	Area *geo.Rect `json:"area,omitempty"`

	// IntervalMS is the t of blocking operations, in milliseconds.
	IntervalMS int64 `json:"interval_ms,omitempty"`

	// GroupBy, Func and Attr configure an aggregate node.
	GroupBy []string `json:"group_by,omitempty"`
	Func    string   `json:"func,omitempty"`
	Attr    string   `json:"attr,omitempty"`

	// Predicate is the join condition (left.x / right.y identifiers).
	Predicate string `json:"predicate,omitempty"`

	// Targets and Mode configure trigger nodes.
	Targets []string `json:"targets,omitempty"`
	Mode    string   `json:"mode,omitempty"`

	// Steps configure a transform node.
	Steps []ops.TransformStep `json:"steps,omitempty"`
}

// Interval returns the blocking interval as a duration.
func (n *NodeSpec) Interval() time.Duration {
	return time.Duration(n.IntervalMS) * time.Millisecond
}

// EdgeSpec wires the output of From into an input port of To. Port 0 is the
// only port for single-input operations; joins take their left input on
// port 0 and their right input on port 1.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	Port int    `json:"port,omitempty"`
}

// ParseSpec decodes and structurally validates a JSON dataflow spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("dataflow: bad spec JSON: %w", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("dataflow: spec needs a name")
	}
	return &s, nil
}

// EncodeSpec renders a spec as indented JSON.
func EncodeSpec(s *Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Node returns the node with the given ID, or nil.
func (s *Spec) Node(id string) *NodeSpec {
	for i := range s.Nodes {
		if s.Nodes[i].ID == id {
			return &s.Nodes[i]
		}
	}
	return nil
}

// Severity grades validation diagnostics.
type Severity string

// Diagnostic severities. Errors block translation; warnings do not.
const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
)

// Diagnostic is one finding of dataflow validation, addressed to the node
// (or edge endpoint) it concerns so the UI can highlight it.
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Node     string   `json:"node,omitempty"`
	Message  string   `json:"message"`
}

func (d Diagnostic) String() string {
	if d.Node != "" {
		return fmt.Sprintf("%s [%s]: %s", d.Severity, d.Node, d.Message)
	}
	return fmt.Sprintf("%s: %s", d.Severity, d.Message)
}

// Diagnostics is a collection with convenience accessors.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic is an error.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

func (ds *Diagnostics) errorf(node, format string, args ...any) {
	*ds = append(*ds, Diagnostic{Severity: SevError, Node: node, Message: fmt.Sprintf(format, args...)})
}

func (ds *Diagnostics) warnf(node, format string, args ...any) {
	*ds = append(*ds, Diagnostic{Severity: SevWarning, Node: node, Message: fmt.Sprintf(format, args...)})
}
