package dataflow

import (
	"fmt"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
)

// Builder assembles dataflow specs programmatically — the API equivalent of
// dragging operations onto the design canvas and wiring them. Each method
// adds a node and returns a handle used for wiring:
//
//	b := dataflow.NewBuilder("osaka")
//	temp := b.Source("temp", "temp-osaka-1")
//	hot := b.Filter("hot", "temperature > 25").From(temp)
//	b.SinkNode("out", "warehouse").From(hot)
//	spec, err := b.Spec()
//
// Errors accumulate; Spec returns the first one.
type Builder struct {
	spec Spec
	errs []error
	used map[string]bool
}

// NewBuilder starts a dataflow with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{spec: Spec{Name: name}, used: map[string]bool{}}
}

// Handle identifies a node for wiring.
type Handle struct {
	b  *Builder
	id string
}

// ID returns the node ID the handle refers to.
func (h Handle) ID() string { return h.id }

// From wires the output of each upstream handle into this node, in port
// order (a join takes its left input from the first and its right from the
// second).
func (h Handle) From(upstream ...Handle) Handle {
	for port, up := range upstream {
		h.b.spec.Edges = append(h.b.spec.Edges, EdgeSpec{From: up.id, To: h.id, Port: port})
	}
	return h
}

func (b *Builder) add(n NodeSpec) Handle {
	if n.ID == "" {
		b.errs = append(b.errs, fmt.Errorf("dataflow builder: node with empty ID"))
	} else if b.used[n.ID] {
		b.errs = append(b.errs, fmt.Errorf("dataflow builder: duplicate node %q", n.ID))
	}
	b.used[n.ID] = true
	b.spec.Nodes = append(b.spec.Nodes, n)
	return Handle{b: b, id: n.ID}
}

// Source adds a sensor-bound source.
func (b *Builder) Source(id, sensorID string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindSource), Sensor: sensorID})
}

// Filter adds σ(s, cond).
func (b *Builder) Filter(id, cond string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindFilter), Cond: cond})
}

// Virtual adds ⊎s⟨property, spec⟩.
func (b *Builder) Virtual(id, property, spec, unit string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindVirtual),
		Property: property, Spec: spec, Unit: unit})
}

// CullTime adds γr(s, ⟨from,to⟩).
func (b *Builder) CullTime(id string, rate float64, from, to time.Time) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindCullTime), Rate: rate,
		From: from.UTC().Format(time.RFC3339), To: to.UTC().Format(time.RFC3339)})
}

// CullSpace adds γr(s, ⟨coord1,coord2⟩).
func (b *Builder) CullSpace(id string, rate float64, area geo.Rect) Handle {
	a := area
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindCullSpace), Rate: rate, Area: &a})
}

// Transform adds ◇trans s with the given reconciliation steps.
func (b *Builder) Transform(id string, steps ...ops.TransformStep) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindTransform), Steps: steps})
}

// Aggregate adds @[t,groupBy]fn(attr).
func (b *Builder) Aggregate(id string, every time.Duration, fn ops.AggFunc, attr string, groupBy ...string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindAggregate),
		IntervalMS: every.Milliseconds(), Func: string(fn), Attr: attr, GroupBy: groupBy})
}

// Join adds s1 ⋈t_pred s2. Wire it with From(left, right).
func (b *Builder) Join(id string, every time.Duration, predicate string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindJoin),
		IntervalMS: every.Milliseconds(), Predicate: predicate})
}

// TriggerOn adds ⊕ON,t(s, targets, cond).
func (b *Builder) TriggerOn(id string, every time.Duration, cond string, targets ...string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindTriggerOn),
		IntervalMS: every.Milliseconds(), Cond: cond, Targets: targets})
}

// TriggerOff adds ⊕OFF,t(s, targets, cond).
func (b *Builder) TriggerOff(id string, every time.Duration, cond string, targets ...string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindTriggerOff),
		IntervalMS: every.Milliseconds(), Cond: cond, Targets: targets})
}

// SinkNode adds a destination ("warehouse", "viz", "collect", "discard").
func (b *Builder) SinkNode(id, kind string) Handle {
	return b.add(NodeSpec{ID: id, Kind: string(ops.KindSink), Sink: kind})
}

// Spec finalizes the dataflow, returning the first accumulated error.
func (b *Builder) Spec() (*Spec, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	spec := b.spec
	return &spec, nil
}
