package dataflow

import (
	"fmt"
	"sort"
	"time"

	"streamloader/internal/ops"
	"streamloader/internal/stt"
)

// SensorResolver resolves the sensors sources bind to. *pubsub.Broker is
// adapted to it via BrokerResolver.
type SensorResolver interface {
	// ResolveSensor returns the schema of the sensor's stream.
	ResolveSensor(id string) (*stt.Schema, bool)
}

// ResolverFunc adapts a function to SensorResolver.
type ResolverFunc func(id string) (*stt.Schema, bool)

// ResolveSensor calls f.
func (f ResolverFunc) ResolveSensor(id string) (*stt.Schema, bool) { return f(id) }

// SinkKinds are the destinations a sink node may select.
var SinkKinds = map[string]bool{
	"warehouse": true, // Event Data Warehouse [6]
	"viz":       true, // Sticker visualization [11]
	"collect":   true, // in-memory collection (debugging, tests)
	"discard":   true,
}

// PlanNode is one node of a compiled plan.
type PlanNode struct {
	// ID is the node name from the spec.
	ID string
	// Kind is the operation kind.
	Kind ops.Kind
	// Op is the instantiated operator; nil for sources and sinks, which the
	// executor realizes itself.
	Op ops.Operator
	// SensorID is set for sources.
	SensorID string
	// SinkKind is set for sinks.
	SinkKind string
	// In lists the IDs of upstream nodes in port order.
	In []string
	// Out lists the IDs of downstream nodes (fan-out).
	Out []string
	// OutSchema is the schema this node produces (nil for sinks).
	OutSchema *stt.Schema
}

// Plan is a compiled dataflow: validated, schema-propagated, with one
// instantiated operator per operation node, in topological order.
type Plan struct {
	Name  string
	Nodes []*PlanNode
	byID  map[string]*PlanNode
}

// Node returns the plan node with the given ID, or nil.
func (p *Plan) Node(id string) *PlanNode {
	return p.byID[id]
}

// Compile validates the spec and builds the runnable plan. The activator and
// onFire hook are wired into trigger operations. On validation errors the
// plan is nil and the diagnostics carry at least one error.
func Compile(spec *Spec, resolver SensorResolver, activator ops.Activator,
	onFire func(ops.FireEvent)) (*Plan, Diagnostics) {

	var diags Diagnostics
	if spec.Name == "" {
		diags.errorf("", "dataflow needs a name")
	}

	// --- structural validation -------------------------------------------
	nodes := map[string]*NodeSpec{}
	for i := range spec.Nodes {
		n := &spec.Nodes[i]
		if n.ID == "" {
			diags.errorf("", "node %d has an empty ID", i)
			continue
		}
		if _, dup := nodes[n.ID]; dup {
			diags.errorf(n.ID, "duplicate node ID")
			continue
		}
		if !ops.Kind(n.Kind).Valid() {
			diags.errorf(n.ID, "unknown operation kind %q", n.Kind)
			continue
		}
		nodes[n.ID] = n
	}

	inEdges := map[string]map[int]string{} // node -> port -> upstream
	outEdges := map[string][]string{}      // node -> downstreams
	for _, e := range spec.Edges {
		if _, ok := nodes[e.From]; !ok {
			diags.errorf(e.From, "edge references unknown source node %q", e.From)
			continue
		}
		if _, ok := nodes[e.To]; !ok {
			diags.errorf(e.To, "edge references unknown target node %q", e.To)
			continue
		}
		if e.From == e.To {
			diags.errorf(e.From, "self loop")
			continue
		}
		if e.Port < 0 || e.Port > 1 {
			diags.errorf(e.To, "port %d out of range (0 or 1)", e.Port)
			continue
		}
		ports := inEdges[e.To]
		if ports == nil {
			ports = map[int]string{}
			inEdges[e.To] = ports
		}
		if prev, taken := ports[e.Port]; taken {
			diags.errorf(e.To, "input port %d already connected to %q", e.Port, prev)
			continue
		}
		ports[e.Port] = e.From
		outEdges[e.From] = append(outEdges[e.From], e.To)
	}

	// Arity checks.
	for id, n := range nodes {
		kind := ops.Kind(n.Kind)
		nIn := len(inEdges[id])
		nOut := len(outEdges[id])
		switch kind {
		case ops.KindSource:
			if nIn != 0 {
				diags.errorf(id, "source must not have inputs")
			}
			if nOut == 0 {
				diags.warnf(id, "source output is not consumed")
			}
		case ops.KindSink:
			if nIn == 0 {
				diags.errorf(id, "sink has no input")
			}
			if nOut != 0 {
				diags.errorf(id, "sink must not have outputs")
			}
		case ops.KindJoin:
			if nIn != 2 {
				diags.errorf(id, "join needs inputs on ports 0 and 1, found %d", nIn)
			} else if _, ok := inEdges[id][0]; !ok {
				diags.errorf(id, "join is missing its port-0 (left) input")
			} else if _, ok := inEdges[id][1]; !ok {
				diags.errorf(id, "join is missing its port-1 (right) input")
			}
			if nOut == 0 {
				diags.warnf(id, "join output is not consumed")
			}
		default:
			if nIn != 1 {
				diags.errorf(id, "%s needs exactly one input, found %d", kind, nIn)
			} else if _, ok := inEdges[id][0]; !ok {
				diags.errorf(id, "%s input must use port 0", kind)
			}
			if nOut == 0 {
				diags.warnf(id, "%s output is not consumed", kind)
			}
		}
	}
	if len(nodes) == 0 {
		diags.errorf("", "dataflow has no nodes")
	}
	if diags.HasErrors() {
		return nil, diags
	}

	// --- topological order (and cycle detection) --------------------------
	order, cyc := topoSort(nodes, inEdges)
	if len(cyc) > 0 {
		for _, id := range cyc {
			diags.errorf(id, "node participates in a cycle")
		}
		return nil, diags
	}

	// --- schema propagation + operator construction -----------------------
	plan := &Plan{Name: spec.Name, byID: map[string]*PlanNode{}}
	schemas := map[string]*stt.Schema{}
	for _, id := range order {
		n := nodes[id]
		pn := &PlanNode{ID: id, Kind: ops.Kind(n.Kind)}
		for port := 0; port < len(inEdges[id]); port++ {
			pn.In = append(pn.In, inEdges[id][port])
		}
		pn.Out = append(pn.Out, outEdges[id]...)
		sort.Strings(pn.Out) // deterministic fan-out order

		inSchema := func(port int) *stt.Schema {
			if port < len(pn.In) {
				return schemas[pn.In[port]]
			}
			return nil
		}

		switch pn.Kind {
		case ops.KindSource:
			if n.Sensor == "" {
				diags.errorf(id, "source needs a sensor ID")
				continue
			}
			schema, ok := resolver.ResolveSensor(n.Sensor)
			if !ok {
				diags.errorf(id, "unknown sensor %q (not published)", n.Sensor)
				continue
			}
			pn.SensorID = n.Sensor
			pn.OutSchema = schema

		case ops.KindSink:
			kind := n.Sink
			if kind == "" {
				kind = "collect"
			}
			if !SinkKinds[kind] {
				diags.errorf(id, "unknown sink kind %q", n.Sink)
				continue
			}
			pn.SinkKind = kind

		case ops.KindJoin:
			left, right := inSchema(0), inSchema(1)
			if left == nil || right == nil {
				continue // upstream failed; already diagnosed
			}
			// STT consistency constraint: heterogeneous granularities must
			// be reconciled (coarsened) before composition.
			if left.TGran != right.TGran {
				diags.errorf(id,
					"temporal granularity mismatch: left is %s, right is %s; insert a transform coarsen step",
					left.TGran, right.TGran)
				continue
			}
			if left.SGran != right.SGran {
				diags.errorf(id,
					"spatial granularity mismatch: left is %s, right is %s; insert a transform coarsen step",
					left.SGran, right.SGran)
				continue
			}
			op, err := ops.NewJoin(id, n.Interval(), n.Predicate, left, right)
			if err != nil {
				diags.errorf(id, "%v", err)
				continue
			}
			pn.Op = op
			pn.OutSchema = op.OutSchema()

		default:
			in := inSchema(0)
			if in == nil {
				continue
			}
			op, err := buildUnaryOp(n, in, activator, onFire)
			if err != nil {
				diags.errorf(id, "%v", err)
				continue
			}
			pn.Op = op
			pn.OutSchema = op.OutSchema()
			if pn.Kind.Blocking() && n.Interval() < in.TGran.Duration() {
				diags.warnf(id,
					"interval %v is finer than the input's %s granularity; most windows will be empty",
					n.Interval(), in.TGran)
			}
		}

		schemas[id] = pn.OutSchema
		plan.Nodes = append(plan.Nodes, pn)
		plan.byID[id] = pn
	}
	if diags.HasErrors() {
		return nil, diags
	}

	// Trigger targets must be resolvable sensors.
	for _, n := range spec.Nodes {
		kind := ops.Kind(n.Kind)
		if kind != ops.KindTriggerOn && kind != ops.KindTriggerOff {
			continue
		}
		for _, target := range n.Targets {
			if _, ok := resolver.ResolveSensor(target); !ok {
				diags.errorf(n.ID, "trigger target %q is not a published sensor", target)
			}
		}
	}
	if diags.HasErrors() {
		return nil, diags
	}
	return plan, diags
}

func buildUnaryOp(n *NodeSpec, in *stt.Schema, activator ops.Activator,
	onFire func(ops.FireEvent)) (ops.Operator, error) {

	switch ops.Kind(n.Kind) {
	case ops.KindFilter:
		return ops.NewFilter(n.ID, n.Cond, in)
	case ops.KindVirtual:
		return ops.NewVirtualProperty(n.ID, n.Property, n.Spec, n.Unit, in)
	case ops.KindCullTime:
		from, err := time.Parse(time.RFC3339, n.From)
		if err != nil {
			return nil, fmt.Errorf("bad interval start %q: %v", n.From, err)
		}
		to, err := time.Parse(time.RFC3339, n.To)
		if err != nil {
			return nil, fmt.Errorf("bad interval end %q: %v", n.To, err)
		}
		return ops.NewCullTime(n.ID, n.Rate, from, to, in)
	case ops.KindCullSpace:
		if n.Area == nil {
			return nil, fmt.Errorf("cull_space needs an area")
		}
		return ops.NewCullSpace(n.ID, n.Rate, *n.Area, in)
	case ops.KindTransform:
		return ops.NewTransform(n.ID, n.Steps, in)
	case ops.KindAggregate:
		return ops.NewAggregate(n.ID, n.Interval(), n.GroupBy, ops.AggFunc(n.Func), n.Attr, in)
	case ops.KindTriggerOn:
		return ops.NewTriggerOn(n.ID, n.Interval(), n.Cond, n.Targets, ops.TriggerMode(n.Mode), activator, onFire, in)
	case ops.KindTriggerOff:
		return ops.NewTriggerOff(n.ID, n.Interval(), n.Cond, n.Targets, ops.TriggerMode(n.Mode), activator, onFire, in)
	default:
		return nil, fmt.Errorf("unsupported kind %q", n.Kind)
	}
}

// topoSort returns a deterministic topological order of the nodes, or the
// IDs stuck in cycles. Determinism: among ready nodes the lexicographically
// smallest ID goes first.
func topoSort(nodes map[string]*NodeSpec, inEdges map[string]map[int]string) (order []string, cyclic []string) {
	indeg := map[string]int{}
	downstream := map[string][]string{}
	for id := range nodes {
		indeg[id] = 0
	}
	for to, ports := range inEdges {
		for _, from := range ports {
			indeg[to]++
			downstream[from] = append(downstream[from], to)
		}
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		next := downstream[id]
		sort.Strings(next)
		added := false
		for _, to := range next {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
				added = true
			}
		}
		if added {
			sort.Strings(ready)
		}
	}
	if len(order) != len(nodes) {
		seen := map[string]bool{}
		for _, id := range order {
			seen[id] = true
		}
		for id := range nodes {
			if !seen[id] {
				cyclic = append(cyclic, id)
			}
		}
		sort.Strings(cyclic)
	}
	return order, cyclic
}

// noopActivator satisfies ops.Activator for validation-only compilation.
type noopActivator struct{}

func (noopActivator) Activate(string) error   { return nil }
func (noopActivator) Deactivate(string) error { return nil }

// Validate compiles the spec against the resolver without side effects and
// returns the diagnostics. A dataflow with no error diagnostics "can be
// soundly translated in the DSN/SCN specification".
func Validate(spec *Spec, resolver SensorResolver) Diagnostics {
	_, diags := Compile(spec, resolver, noopActivator{}, nil)
	return diags
}
