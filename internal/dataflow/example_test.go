package dataflow_test

import (
	"fmt"

	"streamloader/internal/dataflow"
	"streamloader/internal/stt"
)

// ExampleNewBuilder designs the smallest useful dataflow with the fluent
// builder and validates it against a one-sensor catalog.
func ExampleNewBuilder() {
	b := dataflow.NewBuilder("hot-osaka")
	src := b.Source("src", "temp-1")
	warm := b.Filter("warm", "temperature > 25").From(src)
	b.SinkNode("out", "warehouse").From(warm)
	spec, err := b.Spec()
	if err != nil {
		fmt.Println("build error:", err)
		return
	}

	schema := stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")
	resolver := dataflow.ResolverFunc(func(id string) (*stt.Schema, bool) {
		if id == "temp-1" {
			return schema, true
		}
		return nil, false
	})

	diags := dataflow.Validate(spec, resolver)
	fmt.Printf("nodes=%d edges=%d valid=%v\n",
		len(spec.Nodes), len(spec.Edges), !diags.HasErrors())
	// Output:
	// nodes=3 edges=2 valid=true
}
