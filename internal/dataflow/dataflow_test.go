package dataflow

import (
	"strings"
	"testing"
	"time"

	"streamloader/internal/ops"
	"streamloader/internal/stt"
)

var t0 = time.Date(2016, 3, 15, 9, 0, 0, 0, time.UTC)

func tempSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
		stt.NewField("station", stt.KindString, ""),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")
}

func rainSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("rain_rate", stt.KindFloat, "mm/h"),
		stt.NewField("gauge", stt.KindString, ""),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather", "rain")
}

func testResolver() SensorResolver {
	schemas := map[string]*stt.Schema{
		"temp-1": tempSchema(),
		"rain-1": rainSchema(),
	}
	return ResolverFunc(func(id string) (*stt.Schema, bool) {
		s, ok := schemas[id]
		return s, ok
	})
}

// simpleSpec is source -> filter -> sink.
func simpleSpec() *Spec {
	return &Spec{
		Name: "simple",
		Nodes: []NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "hot", Kind: "filter", Cond: "temperature > 25"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []EdgeSpec{
			{From: "src", To: "hot"},
			{From: "hot", To: "out"},
		},
	}
}

func TestParseEncodeSpec(t *testing.T) {
	data, err := EncodeSpec(simpleSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "simple" || len(s.Nodes) != 3 || len(s.Edges) != 2 {
		t.Errorf("round trip: %+v", s)
	}
	if s.Node("hot") == nil || s.Node("ghost") != nil {
		t.Error("Node lookup")
	}
	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := ParseSpec([]byte("{}")); err == nil {
		t.Error("nameless spec must fail")
	}
}

func TestValidateSimpleOK(t *testing.T) {
	diags := Validate(simpleSpec(), testResolver())
	if diags.HasErrors() {
		t.Fatalf("valid dataflow rejected: %v", diags)
	}
}

func TestCompilePlan(t *testing.T) {
	plan, diags := Compile(simpleSpec(), testResolver(), noopActivator{}, nil)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	if plan.Name != "simple" || len(plan.Nodes) != 3 {
		t.Fatalf("plan: %+v", plan)
	}
	// Topological order: src before hot before out.
	idx := map[string]int{}
	for i, n := range plan.Nodes {
		idx[n.ID] = i
	}
	if !(idx["src"] < idx["hot"] && idx["hot"] < idx["out"]) {
		t.Errorf("order: %v", idx)
	}
	src := plan.Node("src")
	if src.SensorID != "temp-1" || src.Op != nil || src.OutSchema == nil {
		t.Errorf("source node: %+v", src)
	}
	hot := plan.Node("hot")
	if hot.Op == nil || hot.Op.Kind() != ops.KindFilter {
		t.Errorf("filter node: %+v", hot)
	}
	sink := plan.Node("out")
	if sink.SinkKind != "collect" || len(sink.In) != 1 || sink.In[0] != "hot" {
		t.Errorf("sink node: %+v", sink)
	}
}

func errorsMention(diags Diagnostics, substr string) bool {
	for _, d := range diags {
		if d.Severity == SevError && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

func TestValidationCatalog(t *testing.T) {
	resolver := testResolver()
	cases := []struct {
		name    string
		mutate  func(*Spec)
		mention string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"empty node id", func(s *Spec) { s.Nodes[0].ID = "" }, "empty ID"},
		{"duplicate id", func(s *Spec) { s.Nodes[1].ID = "src" }, "duplicate"},
		{"unknown kind", func(s *Spec) { s.Nodes[1].Kind = "teleport" }, "unknown operation kind"},
		{"unknown sensor", func(s *Spec) { s.Nodes[0].Sensor = "ghost" }, "not published"},
		{"missing sensor", func(s *Spec) { s.Nodes[0].Sensor = "" }, "needs a sensor"},
		{"unknown sink", func(s *Spec) { s.Nodes[2].Sink = "blackhole" }, "unknown sink"},
		{"edge to ghost", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "src", To: "ghost"})
		}, "unknown target"},
		{"edge from ghost", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "ghost", To: "out"})
		}, "unknown source"},
		{"self loop", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "hot", To: "hot"})
		}, "self loop"},
		{"bad port", func(s *Spec) { s.Edges[0].Port = 7 }, "out of range"},
		{"double port", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "src", To: "out"})
		}, "already connected"},
		{"source with input", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "hot", To: "src", Port: 1})
		}, "source must not have inputs"},
		{"sink no input", func(s *Spec) { s.Edges = s.Edges[:1] }, "sink has no input"},
		{"filter no input", func(s *Spec) { s.Edges = s.Edges[1:] }, "exactly one input"},
		{"bad condition", func(s *Spec) { s.Nodes[1].Cond = "ghost > 1" }, "unknown field"},
		{"non-bool condition", func(s *Spec) { s.Nodes[1].Cond = "temperature + 1" }, "want bool"},
	}
	for _, c := range cases {
		spec := simpleSpec()
		c.mutate(spec)
		diags := Validate(spec, resolver)
		if !diags.HasErrors() {
			t.Errorf("%s: no errors reported", c.name)
			continue
		}
		if !errorsMention(diags, c.mention) {
			t.Errorf("%s: diagnostics %v do not mention %q", c.name, diags, c.mention)
		}
	}
}

func TestValidateCycle(t *testing.T) {
	spec := &Spec{
		Name: "cyclic",
		Nodes: []NodeSpec{
			{ID: "a", Kind: "filter", Cond: "true"},
			{ID: "b", Kind: "filter", Cond: "true"},
		},
		Edges: []EdgeSpec{
			{From: "a", To: "b"},
			{From: "b", To: "a"},
		},
	}
	diags := Validate(spec, testResolver())
	if !errorsMention(diags, "cycle") {
		t.Errorf("cycle not reported: %v", diags)
	}
}

func TestValidateEmpty(t *testing.T) {
	diags := Validate(&Spec{Name: "empty"}, testResolver())
	if !errorsMention(diags, "no nodes") {
		t.Errorf("empty dataflow not reported: %v", diags)
	}
}

func joinSpec(interval int64) *Spec {
	return &Spec{
		Name: "join-flow",
		Nodes: []NodeSpec{
			{ID: "t", Kind: "source", Sensor: "temp-1"},
			{ID: "r", Kind: "source", Sensor: "rain-1"},
			{ID: "j", Kind: "join", IntervalMS: interval,
				Predicate: "left.temperature > 25 && right.rain_rate > 0"},
			{ID: "out", Kind: "sink", Sink: "collect"},
		},
		Edges: []EdgeSpec{
			{From: "t", To: "j", Port: 0},
			{From: "r", To: "j", Port: 1},
			{From: "j", To: "out"},
		},
	}
}

func TestCompileJoin(t *testing.T) {
	plan, diags := Compile(joinSpec(60000), testResolver(), noopActivator{}, nil)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	j := plan.Node("j")
	if len(j.In) != 2 || j.In[0] != "t" || j.In[1] != "r" {
		t.Errorf("join inputs: %v", j.In)
	}
	if j.OutSchema.IndexOf("rain_rate") < 0 {
		t.Errorf("join schema: %s", j.OutSchema)
	}
}

func TestJoinPortValidation(t *testing.T) {
	spec := joinSpec(60000)
	// Rewire both inputs to port 0 -> duplicate port diagnostic.
	spec.Edges[1].Port = 0
	diags := Validate(spec, testResolver())
	if !errorsMention(diags, "already connected") {
		t.Errorf("%v", diags)
	}
}

func TestJoinGranularityConsistency(t *testing.T) {
	// A second-granularity tweet source joined with minute-granularity
	// temperature must be rejected: STT consistency constraint.
	schemas := map[string]*stt.Schema{
		"temp-1": tempSchema(),
		"tweet-1": stt.MustSchema([]stt.Field{
			stt.NewField("text", stt.KindString, ""),
		}, stt.GranSecond, stt.SpatPoint, "social"),
	}
	resolver := ResolverFunc(func(id string) (*stt.Schema, bool) {
		s, ok := schemas[id]
		return s, ok
	})
	spec := &Spec{
		Name: "inconsistent",
		Nodes: []NodeSpec{
			{ID: "t", Kind: "source", Sensor: "temp-1"},
			{ID: "w", Kind: "source", Sensor: "tweet-1"},
			{ID: "j", Kind: "join", IntervalMS: 60000, Predicate: "true"},
			{ID: "out", Kind: "sink"},
		},
		Edges: []EdgeSpec{
			{From: "t", To: "j", Port: 0},
			{From: "w", To: "j", Port: 1},
			{From: "j", To: "out"},
		},
	}
	diags := Validate(spec, resolver)
	if !errorsMention(diags, "granularity mismatch") {
		t.Fatalf("granularity mismatch not caught: %v", diags)
	}
	// Inserting a coarsen transform reconciles the flow.
	spec.Nodes = append(spec.Nodes, NodeSpec{
		ID: "c", Kind: "transform",
		Steps: []ops.TransformStep{{Op: "coarsen", TGran: "minute", SGran: "district"}},
	})
	spec.Edges[1] = EdgeSpec{From: "w", To: "c"}
	spec.Edges = append(spec.Edges, EdgeSpec{From: "c", To: "j", Port: 1})
	diags = Validate(spec, resolver)
	if diags.HasErrors() {
		t.Fatalf("coarsened flow still rejected: %v", diags)
	}
}

func TestTriggerTargetValidation(t *testing.T) {
	spec := &Spec{
		Name: "trig",
		Nodes: []NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "tr", Kind: "trigger_on", IntervalMS: 60000,
				Cond: "temperature > 25", Targets: []string{"ghost-1"}},
			{ID: "out", Kind: "sink"},
		},
		Edges: []EdgeSpec{
			{From: "src", To: "tr"},
			{From: "tr", To: "out"},
		},
	}
	diags := Validate(spec, testResolver())
	if !errorsMention(diags, "not a published sensor") {
		t.Fatalf("bad trigger target not caught: %v", diags)
	}
	spec.Nodes[1].Targets = []string{"rain-1"}
	if diags := Validate(spec, testResolver()); diags.HasErrors() {
		t.Fatalf("valid trigger rejected: %v", diags)
	}
}

func TestWarnings(t *testing.T) {
	// Unconsumed source output warns but does not error.
	spec := simpleSpec()
	spec.Nodes = append(spec.Nodes, NodeSpec{ID: "lonely", Kind: "source", Sensor: "rain-1"})
	diags := Validate(spec, testResolver())
	if diags.HasErrors() {
		t.Fatalf("warnings must not be errors: %v", diags)
	}
	found := false
	for _, d := range diags {
		if d.Severity == SevWarning && d.Node == "lonely" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing unconsumed-output warning: %v", diags)
	}

	// Blocking interval finer than input granularity warns.
	spec2 := &Spec{
		Name: "fine",
		Nodes: []NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "agg", Kind: "aggregate", IntervalMS: 100, Func: "COUNT"},
			{ID: "out", Kind: "sink"},
		},
		Edges: []EdgeSpec{{From: "src", To: "agg"}, {From: "agg", To: "out"}},
	}
	diags = Validate(spec2, testResolver())
	if diags.HasErrors() {
		t.Fatalf("%v", diags)
	}
	warned := false
	for _, d := range diags {
		if d.Severity == SevWarning && strings.Contains(d.Message, "finer than") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("missing fine-interval warning: %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: SevError, Node: "x", Message: "boom"}
	if !strings.Contains(d.String(), "x") || !strings.Contains(d.String(), "boom") {
		t.Error(d.String())
	}
	d2 := Diagnostic{Severity: SevWarning, Message: "global"}
	if !strings.Contains(d2.String(), "global") {
		t.Error(d2.String())
	}
}

func mkTemp(offset time.Duration, temp float64, station string) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: tempSchema(),
		Values: []stt.Value{stt.Float(temp), stt.String(station)},
		Time:   t0.Add(offset),
		Lat:    34.69, Lon: 135.50,
		Theme:  "weather",
		Source: "temp-1",
	}
	return tup.AlignSTT()
}

func TestDebugSimple(t *testing.T) {
	plan, diags := Compile(simpleSpec(), testResolver(), noopActivator{}, nil)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	res, err := Debug(plan, map[string][]*stt.Tuple{
		"src": {
			mkTemp(0, 20, "a"), mkTemp(time.Minute, 30, "b"), mkTemp(2*time.Minute, 27, "c"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["src"]) != 3 {
		t.Errorf("source samples = %d", len(res.Outputs["src"]))
	}
	if len(res.Outputs["hot"]) != 2 {
		t.Errorf("filter output = %d, want 2", len(res.Outputs["hot"]))
	}
	if len(res.Outputs["out"]) != 2 {
		t.Errorf("sink input = %d, want 2", len(res.Outputs["out"]))
	}
}

func TestDebugJoinFlow(t *testing.T) {
	plan, diags := Compile(joinSpec(60000), testResolver(), noopActivator{}, nil)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	rain := func(offset time.Duration, rate float64) *stt.Tuple {
		tup := &stt.Tuple{
			Schema: rainSchema(),
			Values: []stt.Value{stt.Float(rate), stt.String("g1")},
			Time:   t0.Add(offset),
			Lat:    34.69, Lon: 135.50,
			Theme:  "rain",
			Source: "rain-1",
		}
		return tup.AlignSTT()
	}
	res, err := Debug(plan, map[string][]*stt.Tuple{
		"t": {mkTemp(0, 30, "a"), mkTemp(time.Minute, 20, "a")},
		"r": {rain(0, 5), rain(time.Minute, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: temp 30 > 25 and rain 5 > 0 -> one pair.
	// Window 1: temp 20 fails the predicate.
	if len(res.Outputs["j"]) != 1 {
		t.Fatalf("join output = %d, want 1: %v", len(res.Outputs["j"]), res.Outputs["j"])
	}
	joined := res.Outputs["j"][0]
	if joined.MustGet("temperature").AsFloat() != 30 || joined.MustGet("rain_rate").AsFloat() != 5 {
		t.Errorf("joined tuple: %v", joined)
	}
}

func TestDebugFanOut(t *testing.T) {
	spec := &Spec{
		Name: "fan",
		Nodes: []NodeSpec{
			{ID: "src", Kind: "source", Sensor: "temp-1"},
			{ID: "hot", Kind: "filter", Cond: "temperature > 25"},
			{ID: "cold", Kind: "filter", Cond: "temperature <= 25"},
			{ID: "out1", Kind: "sink"},
			{ID: "out2", Kind: "sink"},
		},
		Edges: []EdgeSpec{
			{From: "src", To: "hot"},
			{From: "src", To: "cold"},
			{From: "hot", To: "out1"},
			{From: "cold", To: "out2"},
		},
	}
	plan, diags := Compile(spec, testResolver(), noopActivator{}, nil)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	res, err := Debug(plan, map[string][]*stt.Tuple{
		"src": {mkTemp(0, 30, "a"), mkTemp(time.Minute, 10, "b"), mkTemp(2*time.Minute, 28, "c")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["out1"]) != 2 || len(res.Outputs["out2"]) != 1 {
		t.Errorf("fan-out split: hot=%d cold=%d", len(res.Outputs["out1"]), len(res.Outputs["out2"]))
	}
}

func TestDebugSamplesBySensorID(t *testing.T) {
	plan, diags := Compile(simpleSpec(), testResolver(), noopActivator{}, nil)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	// Samples keyed by the sensor ID instead of the node ID.
	res, err := Debug(plan, map[string][]*stt.Tuple{
		"temp-1": {mkTemp(0, 30, "a")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["hot"]) != 1 {
		t.Errorf("sensor-ID-keyed samples not picked up: %v", res.Outputs)
	}
}

func TestTopoSortDeterminism(t *testing.T) {
	spec := &Spec{
		Name: "multi",
		Nodes: []NodeSpec{
			{ID: "s1", Kind: "source", Sensor: "temp-1"},
			{ID: "s2", Kind: "source", Sensor: "rain-1"},
			{ID: "k1", Kind: "sink"},
			{ID: "k2", Kind: "sink"},
		},
		Edges: []EdgeSpec{
			{From: "s1", To: "k1"},
			{From: "s2", To: "k2"},
		},
	}
	var first []string
	for i := 0; i < 5; i++ {
		plan, diags := Compile(spec, testResolver(), noopActivator{}, nil)
		if diags.HasErrors() {
			t.Fatal(diags)
		}
		var order []string
		for _, n := range plan.Nodes {
			order = append(order, n.ID)
		}
		if first == nil {
			first = order
			continue
		}
		for j := range order {
			if order[j] != first[j] {
				t.Fatalf("order differs between compiles: %v vs %v", first, order)
			}
		}
	}
}
