// Package stream provides the event-driven primitives StreamLoader
// dataflows are built from: items flowing over channels, event-time
// watermarks that drive the "every t time intervals" semantics of the
// blocking operations, and clocks for live versus replay execution.
//
// A stream carries three item kinds, in order:
//
//   - Tuple items: the STT events themselves;
//   - Watermark items: a promise that no tuple with an earlier event time
//     will follow, which is what lets blocking operators (aggregation, join,
//     trigger) flush their window caches deterministically;
//   - a final EOS item, after which the channel is closed.
//
// Watermarks make replay runs (tests, benchmarks, sample debugging) produce
// exactly the same output as live runs: in live mode the source derives
// watermarks from the wall clock, in replay mode from the generated event
// times.
package stream

import (
	"fmt"
	"time"

	"streamloader/internal/stt"
)

// ItemKind discriminates the payload of an Item.
type ItemKind uint8

// Item kinds.
const (
	ItemTuple ItemKind = iota
	ItemWatermark
	ItemEOS
)

func (k ItemKind) String() string {
	switch k {
	case ItemTuple:
		return "tuple"
	case ItemWatermark:
		return "watermark"
	case ItemEOS:
		return "eos"
	default:
		return fmt.Sprintf("item(%d)", uint8(k))
	}
}

// Item is one unit flowing on a stream.
type Item struct {
	Kind      ItemKind
	Tuple     *stt.Tuple // set when Kind == ItemTuple
	Watermark time.Time  // set when Kind == ItemWatermark
}

// TupleItem wraps a tuple.
func TupleItem(t *stt.Tuple) Item { return Item{Kind: ItemTuple, Tuple: t} }

// WatermarkItem wraps a watermark.
func WatermarkItem(ts time.Time) Item { return Item{Kind: ItemWatermark, Watermark: ts} }

// EOSItem is the end-of-stream marker.
func EOSItem() Item { return Item{Kind: ItemEOS} }

// DefaultBuffer is the default channel capacity of a stream edge. The
// buffering ablation (EXPERIMENTS.md A3) sweeps this.
const DefaultBuffer = 256

// Stream is a typed edge between two dataflow processes.
type Stream struct {
	// Name identifies the edge in logs and monitoring ("filter1->join2").
	Name string
	// Schema is the shape of the tuples on this edge.
	Schema *stt.Schema
	// C carries the items. The producer closes it after sending EOS.
	C chan Item
}

// New builds a stream with the given buffer capacity (0 = synchronous).
func New(name string, schema *stt.Schema, buffer int) *Stream {
	if buffer < 0 {
		buffer = DefaultBuffer
	}
	return &Stream{Name: name, Schema: schema, C: make(chan Item, buffer)}
}

// Send places a tuple on the stream.
func (s *Stream) Send(t *stt.Tuple) { s.C <- TupleItem(t) }

// SendWatermark places a watermark on the stream.
func (s *Stream) SendWatermark(ts time.Time) { s.C <- WatermarkItem(ts) }

// Close sends EOS and closes the channel. It must be called exactly once,
// by the producer.
func (s *Stream) Close() {
	s.C <- EOSItem()
	close(s.C)
}

// Drain consumes and discards everything remaining on the stream. Useful in
// error paths so upstream producers do not block forever.
func (s *Stream) Drain() {
	for range s.C {
	}
}

// Collect reads the stream to EOS and returns all tuples, for tests and
// sample debugging.
func Collect(s *Stream) []*stt.Tuple {
	var out []*stt.Tuple
	for item := range s.C {
		if item.Kind == ItemTuple {
			out = append(out, item.Tuple)
		}
	}
	return out
}

// CollectItems reads the stream to EOS and returns every item including
// watermarks, for tests that check watermark propagation.
func CollectItems(s *Stream) []Item {
	var out []Item
	for item := range s.C {
		out = append(out, item)
	}
	return out
}
