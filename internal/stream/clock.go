package stream

import (
	"sync"
	"time"
)

// Clock abstracts time for the executor: live deployments use the wall
// clock, tests and benchmarks use a virtual clock so runs are deterministic
// and replay at full speed.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d (or returns immediately on a virtual clock that
	// auto-advances).
	Sleep(d time.Duration)
}

// WallClock is the real-time clock.
type WallClock struct{}

// Now returns the wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep blocks for d of real time.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a manually- or auto-advancing clock. The zero value is not
// usable; construct with NewVirtualClock. Sleep advances the clock instead
// of blocking, so replay runs proceed at full speed while still observing a
// coherent timeline.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Advance moves virtual time forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	return now
}

// Set jumps the virtual clock to ts if ts is later than the current time.
func (c *VirtualClock) Set(ts time.Time) {
	c.mu.Lock()
	if ts.After(c.now) {
		c.now = ts
	}
	c.mu.Unlock()
}
