package stream

import (
	"testing"
	"time"

	"streamloader/internal/stt"
)

func testSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("v", stt.KindInt, ""),
	}, stt.GranSecond, stt.SpatPoint)
}

func TestItemKinds(t *testing.T) {
	s := testSchema()
	tup, _ := stt.NewTuple(s, []stt.Value{stt.Int(1)})
	ti := TupleItem(tup)
	if ti.Kind != ItemTuple || ti.Tuple != tup {
		t.Error("TupleItem")
	}
	ts := time.Unix(100, 0)
	wi := WatermarkItem(ts)
	if wi.Kind != ItemWatermark || !wi.Watermark.Equal(ts) {
		t.Error("WatermarkItem")
	}
	if EOSItem().Kind != ItemEOS {
		t.Error("EOSItem")
	}
	if ItemTuple.String() != "tuple" || ItemWatermark.String() != "watermark" ||
		ItemEOS.String() != "eos" || ItemKind(9).String() == "" {
		t.Error("ItemKind.String")
	}
}

func TestStreamSendCollect(t *testing.T) {
	s := testSchema()
	st := New("src->sink", s, 16)
	if st.Name != "src->sink" || st.Schema != s {
		t.Error("stream fields")
	}
	go func() {
		for i := 0; i < 5; i++ {
			tup, _ := stt.NewTuple(s, []stt.Value{stt.Int(int64(i))})
			st.Send(tup)
			if i == 2 {
				st.SendWatermark(time.Unix(int64(i), 0))
			}
		}
		st.Close()
	}()
	tuples := Collect(st)
	if len(tuples) != 5 {
		t.Fatalf("collected %d tuples, want 5", len(tuples))
	}
	for i, tup := range tuples {
		if tup.Values[0].AsInt() != int64(i) {
			t.Errorf("tuple %d out of order: %v", i, tup.Values[0])
		}
	}
}

func TestCollectItemsSeesWatermarksAndEOS(t *testing.T) {
	s := testSchema()
	st := New("e", s, 4)
	go func() {
		tup, _ := stt.NewTuple(s, []stt.Value{stt.Int(7)})
		st.Send(tup)
		st.SendWatermark(time.Unix(1, 0))
		st.Close()
	}()
	items := CollectItems(st)
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3", len(items))
	}
	if items[0].Kind != ItemTuple || items[1].Kind != ItemWatermark || items[2].Kind != ItemEOS {
		t.Errorf("item order: %v %v %v", items[0].Kind, items[1].Kind, items[2].Kind)
	}
}

func TestNegativeBufferUsesDefault(t *testing.T) {
	st := New("e", testSchema(), -1)
	if cap(st.C) != DefaultBuffer {
		t.Errorf("cap = %d, want %d", cap(st.C), DefaultBuffer)
	}
}

func TestDrain(t *testing.T) {
	s := testSchema()
	st := New("e", s, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tup, _ := stt.NewTuple(s, []stt.Value{stt.Int(int64(i))})
			st.Send(tup) // would block on a full buffer without Drain
		}
		st.Close()
	}()
	st.Drain()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer blocked; Drain did not drain")
	}
}

func TestWallClock(t *testing.T) {
	var c Clock = WallClock{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Error("WallClock.Now in the past")
	}
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if time.Since(start) < 5*time.Millisecond {
		t.Error("WallClock.Sleep did not block")
	}
}

func TestVirtualClock(t *testing.T) {
	start := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClock(start)
	if !c.Now().Equal(start) {
		t.Error("initial time")
	}
	c.Sleep(time.Hour)
	if !c.Now().Equal(start.Add(time.Hour)) {
		t.Error("Sleep must advance virtual time")
	}
	got := c.Advance(30 * time.Minute)
	if !got.Equal(start.Add(90 * time.Minute)) {
		t.Error("Advance return value")
	}
	// Set only moves forward.
	c.Set(start) // earlier: ignored
	if !c.Now().Equal(start.Add(90 * time.Minute)) {
		t.Error("Set must not move backward")
	}
	later := start.Add(5 * time.Hour)
	c.Set(later)
	if !c.Now().Equal(later) {
		t.Error("Set must move forward")
	}
}

func TestVirtualClockConcurrentAccess(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Advance(time.Millisecond)
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = c.Now()
	}
	<-done
	if got := c.Now(); !got.Equal(time.Unix(1, 0)) {
		t.Errorf("final time = %v, want 1s", got)
	}
}
