// Package pubsub implements the distributed publish/subscribe system through
// which StreamLoader handles sensors (paper §2 "Discovery of sensor data
// sources", §3 "Sensors are handled through a distributed publish-subscribe
// system"). Each time a sensor is published, its type, schema, and frequency
// of data generation are made available to subscribers; sensors may join and
// leave the network dynamically, and the Trigger On/Off operations activate
// and deactivate their streams.
package pubsub

import (
	"fmt"
	"sort"
	"sync"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// SensorMeta is the publication record of one sensor.
type SensorMeta struct {
	// ID is the unique sensor identifier ("temp-osaka-3").
	ID string `json:"id"`
	// Type is the sensor class ("temperature", "rain", "tweet", ...).
	Type string `json:"type"`
	// Schema is the shape of tuples the sensor produces.
	Schema *stt.Schema `json:"-"`
	// FrequencyHz is the nominal data-generation frequency.
	FrequencyHz float64 `json:"frequency_hz"`
	// Location is the sensor position (for physical sensors) or the centre
	// of its coverage area (for social sensors).
	Location geo.Point `json:"location"`
	// NodeID is the network node managing the sensor.
	NodeID string `json:"node_id"`
	// Themes are the thematic dimensions the sensor reports on.
	Themes []string `json:"themes,omitempty"`
}

// EventKind enumerates sensor lifecycle events.
type EventKind uint8

// Sensor lifecycle events delivered to subscribers.
const (
	EventPublished EventKind = iota
	EventUnpublished
	EventActivated
	EventDeactivated
)

func (k EventKind) String() string {
	switch k {
	case EventPublished:
		return "published"
	case EventUnpublished:
		return "unpublished"
	case EventActivated:
		return "activated"
	case EventDeactivated:
		return "deactivated"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one sensor lifecycle notification.
type Event struct {
	Kind EventKind
	Meta SensorMeta
}

// Query selects sensors by their publication attributes. Zero fields match
// everything, so the zero Query selects all sensors.
type Query struct {
	// Type restricts to one sensor class.
	Type string
	// Region restricts to sensors located inside the rectangle.
	Region *geo.Rect
	// Theme restricts to sensors carrying the theme.
	Theme string
	// ActiveOnly restricts to currently-activated sensors.
	ActiveOnly bool
}

// Matches reports whether a sensor publication satisfies the query.
func (q Query) Matches(m SensorMeta, active bool) bool {
	if q.Type != "" && m.Type != q.Type {
		return false
	}
	if q.Region != nil && !q.Region.Contains(m.Location) {
		return false
	}
	if q.Theme != "" {
		found := false
		for _, t := range m.Themes {
			if t == q.Theme {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if q.ActiveOnly && !active {
		return false
	}
	return true
}

type registration struct {
	meta   SensorMeta
	active bool
}

// Subscription delivers lifecycle events matching a query. Events arrives on
// C until Cancel is called (which closes C).
type Subscription struct {
	C      chan Event
	id     int64
	query  Query
	broker *Broker
}

// Cancel detaches the subscription and closes its channel.
func (s *Subscription) Cancel() { s.broker.unsubscribe(s.id) }

// Broker is one publish/subscribe node. Brokers can be federated with
// Connect so that a publication on any broker is visible on every broker,
// which is how the paper's per-network-node pub/sub layers behave.
type Broker struct {
	name string

	mu      sync.RWMutex
	sensors map[string]*registration
	subs    map[int64]*Subscription
	nextSub int64
	peers   []*Broker
}

// NewBroker creates an empty broker. The name appears in diagnostics only.
func NewBroker(name string) *Broker {
	return &Broker{
		name:    name,
		sensors: make(map[string]*registration),
		subs:    make(map[int64]*Subscription),
	}
}

// Connect federates b with peer bidirectionally: existing and future
// publications propagate both ways.
func (b *Broker) Connect(peer *Broker) {
	if b == peer {
		return
	}
	b.mu.Lock()
	b.peers = append(b.peers, peer)
	b.mu.Unlock()
	peer.mu.Lock()
	peer.peers = append(peer.peers, b)
	peer.mu.Unlock()

	// Exchange current state.
	for _, m := range b.snapshot() {
		peer.replicate(Event{Kind: EventPublished, Meta: m.meta}, m.active, b)
	}
	for _, m := range peer.snapshot() {
		b.replicate(Event{Kind: EventPublished, Meta: m.meta}, m.active, peer)
	}
}

func (b *Broker) snapshot() []*registration {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]*registration, 0, len(b.sensors))
	for _, r := range b.sensors {
		out = append(out, &registration{meta: r.meta, active: r.active})
	}
	return out
}

// Publish registers a sensor. Sensors start deactivated: dataflow sources or
// Trigger On operations activate them. Publishing an already-known ID
// updates the publication in place (sensors re-announce after reconfiguration).
func (b *Broker) Publish(meta SensorMeta) error {
	if meta.ID == "" {
		return fmt.Errorf("pubsub: sensor ID must not be empty")
	}
	if meta.Schema == nil {
		return fmt.Errorf("pubsub: sensor %q published without schema", meta.ID)
	}
	if !meta.Location.Valid() {
		return fmt.Errorf("pubsub: sensor %q has invalid location %v", meta.ID, meta.Location)
	}
	b.apply(Event{Kind: EventPublished, Meta: meta}, false, nil)
	return nil
}

// Unpublish removes a sensor (it left the network).
func (b *Broker) Unpublish(id string) error {
	b.mu.RLock()
	r, ok := b.sensors[id]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("pubsub: unknown sensor %q", id)
	}
	b.apply(Event{Kind: EventUnpublished, Meta: r.meta}, false, nil)
	return nil
}

// Activate marks the sensor's stream as flowing. Used by dataflow sources at
// deployment and by Trigger On operations at runtime.
func (b *Broker) Activate(id string) error {
	return b.setActive(id, true)
}

// Deactivate stops the sensor's stream. Used by Trigger Off.
func (b *Broker) Deactivate(id string) error {
	return b.setActive(id, false)
}

func (b *Broker) setActive(id string, active bool) error {
	b.mu.RLock()
	r, ok := b.sensors[id]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("pubsub: unknown sensor %q", id)
	}
	kind := EventDeactivated
	if active {
		kind = EventActivated
	}
	b.apply(Event{Kind: kind, Meta: r.meta}, active, nil)
	return nil
}

// apply performs the state change locally, notifies matching subscribers,
// and replicates to peers (except the one the event came from).
func (b *Broker) apply(ev Event, active bool, from *Broker) {
	b.mu.Lock()
	switch ev.Kind {
	case EventPublished:
		// Preserve activation state across re-publication.
		if old, ok := b.sensors[ev.Meta.ID]; ok {
			active = old.active
		}
		b.sensors[ev.Meta.ID] = &registration{meta: ev.Meta, active: active}
	case EventUnpublished:
		delete(b.sensors, ev.Meta.ID)
	case EventActivated, EventDeactivated:
		if r, ok := b.sensors[ev.Meta.ID]; ok {
			r.active = ev.Kind == EventActivated
			active = r.active
		}
	}
	subs := make([]*Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		if s.query.Matches(ev.Meta, active || ev.Kind == EventPublished || ev.Kind == EventUnpublished) {
			subs = append(subs, s)
		}
	}
	peers := make([]*Broker, len(b.peers))
	copy(peers, b.peers)
	b.mu.Unlock()

	for _, s := range subs {
		// Non-blocking send: a slow subscriber loses lifecycle events rather
		// than stalling the control plane; data-plane streams are unaffected.
		select {
		case s.C <- ev:
		default:
		}
	}
	for _, p := range peers {
		if p != from {
			p.replicate(ev, active, b)
		}
	}
}

// replicate applies a remote event without echoing it back to the sender.
func (b *Broker) replicate(ev Event, active bool, from *Broker) {
	b.mu.RLock()
	_, known := b.sensors[ev.Meta.ID]
	b.mu.RUnlock()
	// Suppress no-op replication cycles in meshes: publication of a known
	// sensor with identical metadata still refreshes, but unpublication of
	// an unknown one is dropped.
	if ev.Kind == EventUnpublished && !known {
		return
	}
	b.apply(ev, active, from)
}

// Get returns a sensor publication by ID.
func (b *Broker) Get(id string) (SensorMeta, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.sensors[id]
	if !ok {
		return SensorMeta{}, false
	}
	return r.meta, true
}

// IsActive reports whether the sensor's stream is currently activated.
func (b *Broker) IsActive(id string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.sensors[id]
	return ok && r.active
}

// Discover returns the publications matching the query, sorted by ID for
// deterministic output (the Web UI lists them).
func (b *Broker) Discover(q Query) []SensorMeta {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []SensorMeta
	for _, r := range b.sensors {
		if q.Matches(r.meta, r.active) {
			out = append(out, r.meta)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Subscribe registers for lifecycle events matching q. The returned
// subscription's channel has a fixed buffer; cancel it when done.
func (b *Broker) Subscribe(q Query) *Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSub++
	s := &Subscription{
		C:      make(chan Event, 64),
		id:     b.nextSub,
		query:  q,
		broker: b,
	}
	b.subs[s.id] = s
	return s
}

func (b *Broker) unsubscribe(id int64) {
	b.mu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
	}
	b.mu.Unlock()
	if ok {
		close(s.C)
	}
}

// Count returns the number of known sensors.
func (b *Broker) Count() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.sensors)
}

// GroupBy organizes discovered sensors according to the given criterion, the
// paper's "sensors can be organized according to different criteria
// (temporal/spatial, type/location) to facilitate the specification of
// dataflows". Supported criteria: "type", "node", "theme", "region" (1-degree
// spatial cells).
func (b *Broker) GroupBy(criterion string, q Query) (map[string][]SensorMeta, error) {
	metas := b.Discover(q)
	out := make(map[string][]SensorMeta)
	for _, m := range metas {
		var keys []string
		switch criterion {
		case "type":
			keys = []string{m.Type}
		case "node":
			keys = []string{m.NodeID}
		case "theme":
			if len(m.Themes) == 0 {
				keys = []string{""}
			} else {
				keys = m.Themes
			}
		case "region":
			c := geo.CellOf(m.Location, 1.0)
			keys = []string{fmt.Sprintf("cell(%d,%d)", c.X, c.Y)}
		default:
			return nil, fmt.Errorf("pubsub: unknown grouping criterion %q", criterion)
		}
		for _, k := range keys {
			out[k] = append(out[k], m)
		}
	}
	return out, nil
}
