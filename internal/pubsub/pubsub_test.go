package pubsub

import (
	"fmt"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

func tempSchema() *stt.Schema {
	return stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")
}

func meta(id, typ string, lat, lon float64, themes ...string) SensorMeta {
	return SensorMeta{
		ID: id, Type: typ, Schema: tempSchema(), FrequencyHz: 1,
		Location: geo.Point{Lat: lat, Lon: lon}, NodeID: "node-1", Themes: themes,
	}
}

func TestPublishValidation(t *testing.T) {
	b := NewBroker("test")
	if err := b.Publish(SensorMeta{}); err == nil {
		t.Error("empty ID must be rejected")
	}
	if err := b.Publish(SensorMeta{ID: "x", Location: geo.Point{}}); err == nil {
		t.Error("missing schema must be rejected")
	}
	bad := meta("x", "temperature", 95, 0)
	if err := b.Publish(bad); err == nil {
		t.Error("invalid location must be rejected")
	}
	if err := b.Publish(meta("ok", "temperature", 34.7, 135.5)); err != nil {
		t.Errorf("valid publish failed: %v", err)
	}
}

func TestPublishGetUnpublish(t *testing.T) {
	b := NewBroker("test")
	m := meta("temp-1", "temperature", 34.7, 135.5, "weather")
	if err := b.Publish(m); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("temp-1")
	if !ok || got.Type != "temperature" || got.FrequencyHz != 1 {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	if b.Count() != 1 {
		t.Error("Count")
	}
	if _, ok := b.Get("ghost"); ok {
		t.Error("Get(ghost)")
	}
	if err := b.Unpublish("temp-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("temp-1"); ok {
		t.Error("sensor still visible after Unpublish")
	}
	if err := b.Unpublish("temp-1"); err == nil {
		t.Error("double Unpublish must fail")
	}
}

func TestActivation(t *testing.T) {
	b := NewBroker("test")
	if err := b.Publish(meta("s1", "rain", 34.5, 135.3)); err != nil {
		t.Fatal(err)
	}
	if b.IsActive("s1") {
		t.Error("sensors start deactivated")
	}
	if err := b.Activate("s1"); err != nil {
		t.Fatal(err)
	}
	if !b.IsActive("s1") {
		t.Error("Activate")
	}
	if err := b.Deactivate("s1"); err != nil {
		t.Fatal(err)
	}
	if b.IsActive("s1") {
		t.Error("Deactivate")
	}
	if err := b.Activate("ghost"); err == nil {
		t.Error("activating unknown sensor must fail")
	}
	if err := b.Deactivate("ghost"); err == nil {
		t.Error("deactivating unknown sensor must fail")
	}
	if b.IsActive("ghost") {
		t.Error("unknown sensor is not active")
	}
}

func TestRepublishPreservesActivation(t *testing.T) {
	b := NewBroker("test")
	m := meta("s1", "rain", 34.5, 135.3)
	if err := b.Publish(m); err != nil {
		t.Fatal(err)
	}
	if err := b.Activate("s1"); err != nil {
		t.Fatal(err)
	}
	m.FrequencyHz = 10 // reconfigured sensor re-announces
	if err := b.Publish(m); err != nil {
		t.Fatal(err)
	}
	if !b.IsActive("s1") {
		t.Error("re-publication must preserve activation state")
	}
	got, _ := b.Get("s1")
	if got.FrequencyHz != 10 {
		t.Error("re-publication must update metadata")
	}
}

func TestDiscover(t *testing.T) {
	b := NewBroker("test")
	sensors := []SensorMeta{
		meta("temp-1", "temperature", 34.70, 135.50, "weather"),
		meta("temp-2", "temperature", 34.45, 135.25, "weather"),
		meta("rain-1", "rain", 34.70, 135.50, "weather", "rain"),
		meta("tweet-1", "tweet", 34.69, 135.50, "social"),
		meta("kyoto-1", "temperature", 35.01, 135.77, "weather"),
	}
	for _, m := range sensors {
		if err := b.Publish(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Activate("temp-1"); err != nil {
		t.Fatal(err)
	}

	all := b.Discover(Query{})
	if len(all) != 5 {
		t.Fatalf("Discover(all) = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Error("Discover must sort by ID")
		}
	}
	temps := b.Discover(Query{Type: "temperature"})
	if len(temps) != 3 {
		t.Errorf("by type = %d, want 3", len(temps))
	}
	osaka := b.Discover(Query{Region: &geo.Osaka})
	if len(osaka) != 4 {
		t.Errorf("in Osaka = %d, want 4", len(osaka))
	}
	weather := b.Discover(Query{Theme: "weather"})
	if len(weather) != 4 {
		t.Errorf("weather theme = %d, want 4", len(weather))
	}
	active := b.Discover(Query{ActiveOnly: true})
	if len(active) != 1 || active[0].ID != "temp-1" {
		t.Errorf("active = %v", active)
	}
	both := b.Discover(Query{Type: "temperature", Region: &geo.Osaka})
	if len(both) != 2 {
		t.Errorf("temperature in Osaka = %d, want 2", len(both))
	}
}

func TestGroupBy(t *testing.T) {
	b := NewBroker("test")
	m1 := meta("a", "temperature", 34.7, 135.5, "weather")
	m2 := meta("b", "rain", 34.7, 135.5, "weather", "rain")
	m3 := meta("c", "tweet", 35.01, 135.77, "social")
	m3.NodeID = "node-2"
	for _, m := range []SensorMeta{m1, m2, m3} {
		if err := b.Publish(m); err != nil {
			t.Fatal(err)
		}
	}
	byType, err := b.GroupBy("type", Query{})
	if err != nil || len(byType["temperature"]) != 1 || len(byType["rain"]) != 1 {
		t.Errorf("GroupBy type = %v, %v", byType, err)
	}
	byNode, err := b.GroupBy("node", Query{})
	if err != nil || len(byNode["node-1"]) != 2 || len(byNode["node-2"]) != 1 {
		t.Errorf("GroupBy node = %v, %v", byNode, err)
	}
	byTheme, err := b.GroupBy("theme", Query{})
	if err != nil || len(byTheme["weather"]) != 2 || len(byTheme["rain"]) != 1 {
		t.Errorf("GroupBy theme = %v, %v", byTheme, err)
	}
	byRegion, err := b.GroupBy("region", Query{})
	if err != nil || len(byRegion) != 2 {
		t.Errorf("GroupBy region = %v, %v", byRegion, err)
	}
	if _, err := b.GroupBy("color", Query{}); err == nil {
		t.Error("unknown criterion must fail")
	}
}

func collectEvents(s *Subscription, n int, timeout time.Duration) []Event {
	var out []Event
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case ev, ok := <-s.C:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestSubscription(t *testing.T) {
	b := NewBroker("test")
	sub := b.Subscribe(Query{Type: "temperature"})
	defer sub.Cancel()

	if err := b.Publish(meta("temp-1", "temperature", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(meta("rain-1", "rain", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if err := b.Activate("temp-1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Unpublish("temp-1"); err != nil {
		t.Fatal(err)
	}

	evs := collectEvents(sub, 3, time.Second)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(evs), evs)
	}
	if evs[0].Kind != EventPublished || evs[0].Meta.ID != "temp-1" {
		t.Errorf("ev0 = %v", evs[0])
	}
	if evs[1].Kind != EventActivated {
		t.Errorf("ev1 = %v", evs[1])
	}
	if evs[2].Kind != EventUnpublished {
		t.Errorf("ev2 = %v", evs[2])
	}
}

func TestSubscriptionCancel(t *testing.T) {
	b := NewBroker("test")
	sub := b.Subscribe(Query{})
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Error("channel must be closed after Cancel")
	}
	// Publishing after cancel must not panic.
	if err := b.Publish(meta("s", "rain", 34.5, 135.3)); err != nil {
		t.Fatal(err)
	}
}

func TestFederation(t *testing.T) {
	a := NewBroker("a")
	c := NewBroker("c")
	// Publish before federation: state exchange on Connect.
	if err := a.Publish(meta("pre", "temperature", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	a.Connect(c)
	if _, ok := c.Get("pre"); !ok {
		t.Error("Connect must exchange existing publications")
	}
	// Publish after federation: replication.
	if err := c.Publish(meta("post", "rain", 34.6, 135.4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("post"); !ok {
		t.Error("publication must replicate to peer")
	}
	// Activation propagates.
	if err := a.Activate("post"); err != nil {
		t.Fatal(err)
	}
	if !c.IsActive("post") {
		t.Error("activation must replicate")
	}
	// Unpublication propagates.
	if err := c.Unpublish("pre"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("pre"); ok {
		t.Error("unpublication must replicate")
	}
	// Self-connect is a no-op.
	a.Connect(a)
}

func TestFederationChain(t *testing.T) {
	// a - b - c in a line: events must traverse both hops.
	a, b, c := NewBroker("a"), NewBroker("b"), NewBroker("c")
	a.Connect(b)
	b.Connect(c)
	if err := a.Publish(meta("s1", "rain", 34.5, 135.3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("s1"); !ok {
		t.Error("publication must traverse the chain")
	}
	if err := c.Activate("s1"); err != nil {
		t.Fatal(err)
	}
	if !a.IsActive("s1") {
		t.Error("activation must traverse the chain")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventPublished: "published", EventUnpublished: "unpublished",
		EventActivated: "activated", EventDeactivated: "deactivated",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind must print")
	}
}

func TestConcurrentPublishDiscover(t *testing.T) {
	b := NewBroker("test")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = b.Publish(meta(fmt.Sprintf("s%d", i), "temperature", 34.7, 135.5))
		}
	}()
	for i := 0; i < 200; i++ {
		_ = b.Discover(Query{Type: "temperature"})
	}
	<-done
	if b.Count() != 200 {
		t.Errorf("Count = %d", b.Count())
	}
}
