package expr

import (
	"strconv"
	"strings"

	"streamloader/internal/stt"
)

// Node is an expression-tree node. Nodes are immutable after parsing; the
// same compiled expression is shared by every tuple an operator processes.
type Node interface {
	// String renders the node in concrete syntax that re-parses to an
	// equivalent tree (used by the DSN translator and round-trip tests).
	String() string
	// precedence returns the binding strength for parenthesization.
	precedence() int
}

// Lit is a literal value.
type Lit struct {
	Value stt.Value
}

func (n *Lit) String() string {
	if n.Value.Kind() == stt.KindString {
		return strconv.Quote(n.Value.AsString())
	}
	return n.Value.String()
}

func (n *Lit) precedence() int { return 100 }

// Ident references a tuple field or one of the reserved STT metadata names
// (_time, _lat, _lon, _theme, _source, _seq). In join predicates the
// Qualifier is "left" or "right".
type Ident struct {
	Qualifier string // "" for unqualified
	Name      string
}

func (n *Ident) String() string {
	if n.Qualifier != "" {
		return n.Qualifier + "." + n.Name
	}
	return n.Name
}

func (n *Ident) precedence() int { return 100 }

// Unary is !x or -x.
type Unary struct {
	Op string // "!" or "-"
	X  Node
}

func (n *Unary) String() string {
	return n.Op + maybeParen(n.X, n.precedence())
}

func (n *Unary) precedence() int { return 7 }

// Binary is a binary operation. Op is one of
// "||", "&&", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%".
type Binary struct {
	Op   string
	L, R Node
}

func (n *Binary) String() string {
	p := n.precedence()
	// Right operand needs parens at equal precedence to preserve
	// left-associativity (a-(b-c) vs a-b-c).
	return maybeParen(n.L, p) + " " + n.Op + " " + maybeParen(n.R, p+1)
}

func (n *Binary) precedence() int { return binaryPrec(n.Op) }

// Call is a builtin function application.
type Call struct {
	Func string
	Args []Node
}

func (n *Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Func + "(" + strings.Join(args, ", ") + ")"
}

func (n *Call) precedence() int { return 100 }

func maybeParen(n Node, ctx int) string {
	if n.precedence() < ctx {
		return "(" + n.String() + ")"
	}
	return n.String()
}

func binaryPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 0
	}
}

// Fields returns the set of field names referenced by the expression, keyed
// by qualifier ("" for unqualified). Dataflow validation uses it to check
// conditions against the propagated schemas.
func Fields(n Node) map[string][]string {
	out := map[string][]string{}
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *Ident:
			key := t.Qualifier + "." + t.Name
			if !seen[key] {
				seen[key] = true
				out[t.Qualifier] = append(out[t.Qualifier], t.Name)
			}
		case *Unary:
			walk(t.X)
		case *Binary:
			walk(t.L)
			walk(t.R)
		case *Call:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(n)
	return out
}
