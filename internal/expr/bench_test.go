package expr

import (
	"testing"
	"time"

	"streamloader/internal/stt"
)

var benchSchema = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
	stt.NewField("humidity", stt.KindFloat, "percent"),
	stt.NewField("station", stt.KindString, ""),
}, stt.GranMinute, stt.SpatCellDistrict, "weather")

func benchTuple(b *testing.B) *stt.Tuple {
	b.Helper()
	tup, err := stt.NewTuple(benchSchema, []stt.Value{
		stt.Float(27.5), stt.Float(64), stt.String("umeda"),
	})
	if err != nil {
		b.Fatal(err)
	}
	tup.Time = time.Date(2016, 3, 15, 12, 0, 0, 0, time.UTC)
	tup.Lat, tup.Lon = 34.69, 135.50
	return tup
}

func benchCompile(b *testing.B, src string) *Compiled {
	b.Helper()
	c, err := Compile(src, Env{Schema: benchSchema})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkParse(b *testing.B) {
	const src = `temperature > 25 && contains(lower(station), "ume") || humidity < 30`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalComparison(b *testing.B) {
	c := benchCompile(b, "temperature > 25")
	tup := benchTuple(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.EvalTuple(tup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalArithmetic(b *testing.B) {
	c := benchCompile(b,
		"temperature + 0.33*(humidity/100*6.105*exp(17.27*temperature/(237.7+temperature))) - 4")
	tup := benchTuple(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.EvalTuple(tup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalStringFuncs(b *testing.B) {
	c := benchCompile(b, `contains(lower(station), "ume") && startswith(station, "u")`)
	tup := benchTuple(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.EvalTuple(tup); err != nil {
			b.Fatal(err)
		}
	}
}
