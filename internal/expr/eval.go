package expr

import (
	"fmt"
	"math"
	"strings"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// Scope carries the runtime tuples an expression evaluates against.
type Scope struct {
	Tuple *stt.Tuple // single-input operations
	Left  *stt.Tuple // join predicates
	Right *stt.Tuple
}

// EvalError reports a runtime evaluation failure (e.g. division by zero).
type EvalError struct {
	Node Node
	Err  error
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: evaluating %q: %v", e.Node.String(), e.Err)
}

func (e *EvalError) Unwrap() error { return e.Err }

// Eval evaluates the compiled expression against the scope.
func (c *Compiled) Eval(s Scope) (stt.Value, error) {
	return eval(c.Root, s)
}

// EvalBool evaluates the expression as a condition using truthiness.
func (c *Compiled) EvalBool(s Scope) (bool, error) {
	v, err := eval(c.Root, s)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// EvalTuple is a convenience for the common single-tuple case.
func (c *Compiled) EvalTuple(t *stt.Tuple) (stt.Value, error) {
	return c.Eval(Scope{Tuple: t})
}

func eval(n Node, s Scope) (stt.Value, error) {
	switch t := n.(type) {
	case *Lit:
		return t.Value, nil
	case *Ident:
		return evalIdent(t, s)
	case *Unary:
		x, err := eval(t.X, s)
		if err != nil {
			return stt.Null(), err
		}
		switch t.Op {
		case "!":
			return stt.Bool(!x.Truthy()), nil
		case "-":
			v, err := x.Neg()
			if err != nil {
				return stt.Null(), &EvalError{Node: n, Err: err}
			}
			return v, nil
		default:
			return stt.Null(), &EvalError{Node: n, Err: fmt.Errorf("unknown unary op %q", t.Op)}
		}
	case *Binary:
		return evalBinary(t, s)
	case *Call:
		return evalCall(t, s)
	default:
		return stt.Null(), &EvalError{Node: n, Err: fmt.Errorf("unknown node %T", n)}
	}
}

func evalIdent(t *Ident, s Scope) (stt.Value, error) {
	tup := s.Tuple
	switch t.Qualifier {
	case "left":
		tup = s.Left
	case "right":
		tup = s.Right
	}
	if tup == nil {
		return stt.Null(), &EvalError{Node: t, Err: fmt.Errorf("no tuple bound for %q", t.String())}
	}
	switch t.Name {
	case "_time":
		return stt.Time(tup.Time), nil
	case "_lat":
		return stt.Float(tup.Lat), nil
	case "_lon":
		return stt.Float(tup.Lon), nil
	case "_theme":
		return stt.String(tup.Theme), nil
	case "_source":
		return stt.String(tup.Source), nil
	case "_seq":
		return stt.Int(int64(tup.Seq)), nil
	}
	v, ok := tup.Get(t.Name)
	if !ok {
		return stt.Null(), &EvalError{Node: t, Err: fmt.Errorf("tuple has no field %q", t.Name)}
	}
	return v, nil
}

func evalBinary(t *Binary, s Scope) (stt.Value, error) {
	// Short-circuit logical operators.
	switch t.Op {
	case "&&":
		l, err := eval(t.L, s)
		if err != nil {
			return stt.Null(), err
		}
		if !l.Truthy() {
			return stt.Bool(false), nil
		}
		r, err := eval(t.R, s)
		if err != nil {
			return stt.Null(), err
		}
		return stt.Bool(r.Truthy()), nil
	case "||":
		l, err := eval(t.L, s)
		if err != nil {
			return stt.Null(), err
		}
		if l.Truthy() {
			return stt.Bool(true), nil
		}
		r, err := eval(t.R, s)
		if err != nil {
			return stt.Null(), err
		}
		return stt.Bool(r.Truthy()), nil
	}

	l, err := eval(t.L, s)
	if err != nil {
		return stt.Null(), err
	}
	r, err := eval(t.R, s)
	if err != nil {
		return stt.Null(), err
	}

	// Null propagates through comparisons as false and through arithmetic
	// as null, the usual stream-ETL behaviour for missing sensor readings.
	switch t.Op {
	case "==":
		if l.IsNull() || r.IsNull() {
			return stt.Bool(l.IsNull() && r.IsNull()), nil
		}
		return stt.Bool(l.Equal(r)), nil
	case "!=":
		if l.IsNull() || r.IsNull() {
			return stt.Bool(l.IsNull() != r.IsNull()), nil
		}
		return stt.Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return stt.Bool(false), nil
		}
		c, err := l.Compare(r)
		if err != nil {
			return stt.Null(), &EvalError{Node: t, Err: err}
		}
		switch t.Op {
		case "<":
			return stt.Bool(c < 0), nil
		case "<=":
			return stt.Bool(c <= 0), nil
		case ">":
			return stt.Bool(c > 0), nil
		default:
			return stt.Bool(c >= 0), nil
		}
	}

	if l.IsNull() || r.IsNull() {
		return stt.Null(), nil
	}
	var v stt.Value
	switch t.Op {
	case "+":
		v, err = l.Add(r)
	case "-":
		v, err = l.Sub(r)
	case "*":
		v, err = l.Mul(r)
	case "/":
		v, err = l.Div(r)
	case "%":
		v, err = l.Mod(r)
	default:
		err = fmt.Errorf("unknown operator %q", t.Op)
	}
	if err != nil {
		return stt.Null(), &EvalError{Node: t, Err: err}
	}
	return v, nil
}

// kindAny and kindNum are pseudo-kinds for builtin signatures.
const (
	kindAny = stt.Kind(200)
	kindNum = stt.Kind(201)
)

type builtin struct {
	params   []stt.Kind // kindAny/kindNum allowed; last repeats if variadic
	variadic bool
	result   func(t *Call, env Env) (stt.Kind, error)
	eval     func(args []stt.Value) (stt.Value, error)
}

func fixedKind(k stt.Kind) func(*Call, Env) (stt.Kind, error) {
	return func(*Call, Env) (stt.Kind, error) { return k, nil }
}

func num1(f func(float64) float64) func([]stt.Value) (stt.Value, error) {
	return func(args []stt.Value) (stt.Value, error) {
		if args[0].IsNull() {
			return stt.Null(), nil
		}
		return stt.Float(f(args[0].AsFloat())), nil
	}
}

// builtins is the function registry of the condition language. It is
// populated in init to break the spurious initialization cycle between the
// registry and Check (which some result inferers call back into).
var builtins map[string]builtin

func init() {
	builtins = builtinDefs()
}

func builtinDefs() map[string]builtin {
	return map[string]builtin{
		"abs": {params: []stt.Kind{kindNum}, result: firstArgKind,
			eval: func(a []stt.Value) (stt.Value, error) {
				if a[0].IsNull() {
					return stt.Null(), nil
				}
				if a[0].Kind() == stt.KindInt {
					v := a[0].AsInt()
					if v < 0 {
						v = -v
					}
					return stt.Int(v), nil
				}
				return stt.Float(math.Abs(a[0].AsFloat())), nil
			}},
		"sqrt":  {params: []stt.Kind{kindNum}, result: fixedKind(stt.KindFloat), eval: num1(math.Sqrt)},
		"exp":   {params: []stt.Kind{kindNum}, result: fixedKind(stt.KindFloat), eval: num1(math.Exp)},
		"log":   {params: []stt.Kind{kindNum}, result: fixedKind(stt.KindFloat), eval: num1(math.Log)},
		"floor": {params: []stt.Kind{kindNum}, result: fixedKind(stt.KindFloat), eval: num1(math.Floor)},
		"ceil":  {params: []stt.Kind{kindNum}, result: fixedKind(stt.KindFloat), eval: num1(math.Ceil)},
		"round": {params: []stt.Kind{kindNum}, result: fixedKind(stt.KindFloat), eval: num1(math.Round)},
		"pow": {params: []stt.Kind{kindNum, kindNum}, result: fixedKind(stt.KindFloat),
			eval: func(a []stt.Value) (stt.Value, error) {
				if a[0].IsNull() || a[1].IsNull() {
					return stt.Null(), nil
				}
				return stt.Float(math.Pow(a[0].AsFloat(), a[1].AsFloat())), nil
			}},
		"min": {params: []stt.Kind{kindNum, kindNum}, variadic: true, result: fixedKind(stt.KindFloat),
			eval: func(a []stt.Value) (stt.Value, error) {
				best := math.Inf(1)
				for _, v := range a {
					if v.IsNull() {
						continue
					}
					best = math.Min(best, v.AsFloat())
				}
				return stt.Float(best), nil
			}},
		"max": {params: []stt.Kind{kindNum, kindNum}, variadic: true, result: fixedKind(stt.KindFloat),
			eval: func(a []stt.Value) (stt.Value, error) {
				best := math.Inf(-1)
				for _, v := range a {
					if v.IsNull() {
						continue
					}
					best = math.Max(best, v.AsFloat())
				}
				return stt.Float(best), nil
			}},
		"contains": {params: []stt.Kind{stt.KindString, stt.KindString}, result: fixedKind(stt.KindBool),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Bool(strings.Contains(a[0].AsString(), a[1].AsString())), nil
			}},
		"startswith": {params: []stt.Kind{stt.KindString, stt.KindString}, result: fixedKind(stt.KindBool),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Bool(strings.HasPrefix(a[0].AsString(), a[1].AsString())), nil
			}},
		"endswith": {params: []stt.Kind{stt.KindString, stt.KindString}, result: fixedKind(stt.KindBool),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Bool(strings.HasSuffix(a[0].AsString(), a[1].AsString())), nil
			}},
		"lower": {params: []stt.Kind{stt.KindString}, result: fixedKind(stt.KindString),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.String(strings.ToLower(a[0].AsString())), nil
			}},
		"upper": {params: []stt.Kind{stt.KindString}, result: fixedKind(stt.KindString),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.String(strings.ToUpper(a[0].AsString())), nil
			}},
		"trim": {params: []stt.Kind{stt.KindString}, result: fixedKind(stt.KindString),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.String(strings.TrimSpace(a[0].AsString())), nil
			}},
		"len": {params: []stt.Kind{stt.KindString}, result: fixedKind(stt.KindInt),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Int(int64(len(a[0].AsString()))), nil
			}},
		"matches_date": {params: []stt.Kind{stt.KindString, stt.KindString}, result: fixedKind(stt.KindBool),
			eval: evalMatchesDate},
		"distance_m": {params: []stt.Kind{kindNum, kindNum, kindNum, kindNum}, result: fixedKind(stt.KindFloat),
			eval: func(a []stt.Value) (stt.Value, error) {
				p := geo.Point{Lat: a[0].AsFloat(), Lon: a[1].AsFloat()}
				q := geo.Point{Lat: a[2].AsFloat(), Lon: a[3].AsFloat()}
				return stt.Float(p.DistanceMeters(q)), nil
			}},
		"hour": {params: []stt.Kind{stt.KindTime}, result: fixedKind(stt.KindInt),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Int(int64(a[0].AsTime().UTC().Hour())), nil
			}},
		"minute": {params: []stt.Kind{stt.KindTime}, result: fixedKind(stt.KindInt),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Int(int64(a[0].AsTime().UTC().Minute())), nil
			}},
		"weekday": {params: []stt.Kind{stt.KindTime}, result: fixedKind(stt.KindInt),
			eval: func(a []stt.Value) (stt.Value, error) {
				return stt.Int(int64(a[0].AsTime().UTC().Weekday())), nil
			}},
		"if": {params: []stt.Kind{kindAny, kindAny, kindAny},
			result: func(t *Call, env Env) (stt.Kind, error) {
				thenK, err := Check(t.Args[1], env)
				if err != nil {
					return stt.KindNull, err
				}
				elseK, err := Check(t.Args[2], env)
				if err != nil {
					return stt.KindNull, err
				}
				if thenK == elseK {
					return thenK, nil
				}
				if thenK.Numeric() && elseK.Numeric() {
					return stt.KindFloat, nil
				}
				if thenK == stt.KindNull {
					return elseK, nil
				}
				return thenK, nil
			},
			eval: func(a []stt.Value) (stt.Value, error) {
				if a[0].Truthy() {
					return a[1], nil
				}
				return a[2], nil
			}},
		"coalesce": {params: []stt.Kind{kindAny, kindAny}, variadic: true,
			result: func(t *Call, env Env) (stt.Kind, error) {
				for _, a := range t.Args {
					k, err := Check(a, env)
					if err != nil {
						return stt.KindNull, err
					}
					if k != stt.KindNull {
						return k, nil
					}
				}
				return stt.KindNull, nil
			},
			eval: func(a []stt.Value) (stt.Value, error) {
				for _, v := range a {
					if !v.IsNull() {
						return v, nil
					}
				}
				return stt.Null(), nil
			}},
	}
}

func firstArgKind(t *Call, env Env) (stt.Kind, error) {
	return Check(t.Args[0], env)
}

// evalMatchesDate implements the paper's validation-rule example "dates
// conforming to given patterns". The pattern uses Y/M/D/h/m/s placeholders,
// e.g. "YYYY-MM-DD" or "YYYY/MM/DD hh:mm".
func evalMatchesDate(a []stt.Value) (stt.Value, error) {
	s, pat := a[0].AsString(), a[1].AsString()
	if len(s) != len(pat) {
		return stt.Bool(false), nil
	}
	for i := 0; i < len(pat); i++ {
		switch pat[i] {
		case 'Y', 'M', 'D', 'h', 'm', 's':
			if s[i] < '0' || s[i] > '9' {
				return stt.Bool(false), nil
			}
		default:
			if s[i] != pat[i] {
				return stt.Bool(false), nil
			}
		}
	}
	return stt.Bool(true), nil
}

func evalCall(t *Call, s Scope) (stt.Value, error) {
	fn, ok := builtins[t.Func]
	if !ok {
		return stt.Null(), &EvalError{Node: t, Err: fmt.Errorf("unknown function %q", t.Func)}
	}
	args := make([]stt.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := eval(a, s)
		if err != nil {
			return stt.Null(), err
		}
		args[i] = v
	}
	v, err := fn.eval(args)
	if err != nil {
		return stt.Null(), &EvalError{Node: t, Err: err}
	}
	return v, nil
}

// Builtins returns the sorted names of all builtin functions, for
// documentation and UI autocomplete.
func Builtins() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
