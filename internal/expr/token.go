// Package expr implements the condition and specification language used by
// StreamLoader's dataflow operations: Filter conditions, Virtual-property
// specifications, Join predicates, Trigger conditions, and Transform
// validation rules.
//
// The language is a small, typed expression language over one tuple (or, for
// join predicates, a pair of tuples addressed as left.field / right.field):
//
//	temperature > 25 && station != "kobe-3"
//	temperature + 0.33*humidity/100*6.105*exp(17.27*temperature/(237.7+temperature)) - 4
//	contains(lower(text), "rain") || retweets >= 10
//	distance_m(_lat, _lon, 34.6937, 135.5023) < 5000
//
// Besides schema fields, the STT metadata of the tuple is addressable via
// the reserved identifiers _time, _lat, _lon, _theme, _source and _seq.
package expr

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokInt
	tokFloat
	tokString
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokOp // one of the operator spellings below
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos  int
	Msg  string
	Expr string
}

// Error renders the message with a caret-friendly position.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Expr: l.src}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r, w := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += w
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '"' || c == '\'':
		return l.lexString(c)
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '.':
		// Distinguish member access from a leading-dot float like ".5".
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	}
	// Multi-character operators first.
	for _, op := range []string{"<=", ">=", "!=", "==", "&&", "||"} {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			return token{kind: tokOp, text: op, pos: start}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", rune(c))
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	kind := tokInt
	if seenDot || seenExp {
		kind = tokFloat
	}
	return token{kind: kind, text: text, pos: start}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string")
			}
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'':
				b.WriteByte(esc)
			default:
				return token{}, l.errorf(l.pos, "unknown escape \\%c", esc)
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf(start, "unterminated string")
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
