package expr_test

import (
	"fmt"

	"streamloader/internal/expr"
	"streamloader/internal/stt"
)

// ExampleCompile evaluates the paper's apparent-temperature specification
// against one sensor reading.
func ExampleCompile() {
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
		stt.NewField("humidity", stt.KindFloat, "percent"),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")

	spec := "temperature + 0.33*(humidity/100*6.105*exp(17.27*temperature/(237.7+temperature))) - 4"
	compiled, err := expr.Compile(spec, expr.Env{Schema: schema})
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}

	reading, _ := stt.NewTuple(schema, []stt.Value{stt.Float(30), stt.Float(70)})
	apparent, err := compiled.EvalTuple(reading)
	if err != nil {
		fmt.Println("eval error:", err)
		return
	}
	fmt.Printf("kind=%s apparent=%.1f\n", compiled.Kind, apparent.AsFloat())
	// Output:
	// kind=float apparent=35.8
}
