package expr

import (
	"fmt"

	"streamloader/internal/stt"
)

// Env is the typing environment for an expression: the schema(s) the
// identifiers resolve against. For single-input operations only Schema is
// set; for join predicates Left and Right are set and identifiers must be
// qualified as left.x / right.x.
type Env struct {
	Schema *stt.Schema
	Left   *stt.Schema
	Right  *stt.Schema
}

// Meta field kinds addressable in every environment.
var metaKinds = map[string]stt.Kind{
	"_time":   stt.KindTime,
	"_lat":    stt.KindFloat,
	"_lon":    stt.KindFloat,
	"_theme":  stt.KindString,
	"_source": stt.KindString,
	"_seq":    stt.KindInt,
}

// CheckError is a typing diagnostic.
type CheckError struct {
	Node Node
	Msg  string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("expr: %s in %q", e.Msg, e.Node.String())
}

func checkErrf(n Node, format string, args ...any) error {
	return &CheckError{Node: n, Msg: fmt.Sprintf(format, args...)}
}

// Check infers the result kind of the expression under env, reporting the
// first typing error. KindNull means "any" (the null literal).
func Check(n Node, env Env) (stt.Kind, error) {
	switch t := n.(type) {
	case *Lit:
		return t.Value.Kind(), nil

	case *Ident:
		return checkIdent(t, env)

	case *Unary:
		k, err := Check(t.X, env)
		if err != nil {
			return stt.KindNull, err
		}
		switch t.Op {
		case "!":
			return stt.KindBool, nil
		case "-":
			if !k.Numeric() && k != stt.KindNull {
				return stt.KindNull, checkErrf(n, "operand of unary - must be numeric, got %s", k)
			}
			return k, nil
		default:
			return stt.KindNull, checkErrf(n, "unknown unary operator %q", t.Op)
		}

	case *Binary:
		lk, err := Check(t.L, env)
		if err != nil {
			return stt.KindNull, err
		}
		rk, err := Check(t.R, env)
		if err != nil {
			return stt.KindNull, err
		}
		return checkBinary(t, lk, rk)

	case *Call:
		return checkCall(t, env)

	default:
		return stt.KindNull, checkErrf(n, "unknown node type %T", n)
	}
}

func checkIdent(t *Ident, env Env) (stt.Kind, error) {
	if k, ok := metaKinds[t.Name]; ok {
		// Metadata resolves in any environment; qualifiers select the side
		// in join predicates but do not change the kind.
		return k, nil
	}
	switch t.Qualifier {
	case "":
		if env.Schema == nil {
			if env.Left != nil || env.Right != nil {
				return stt.KindNull, checkErrf(t,
					"unqualified field %q in a two-input predicate; use left.%s or right.%s",
					t.Name, t.Name, t.Name)
			}
			return stt.KindNull, checkErrf(t, "no schema to resolve %q against", t.Name)
		}
		f, ok := env.Schema.Lookup(t.Name)
		if !ok {
			return stt.KindNull, checkErrf(t, "unknown field %q in schema %s", t.Name, env.Schema)
		}
		return f.Kind, nil
	case "left":
		if env.Left == nil {
			return stt.KindNull, checkErrf(t, "no left input in this context")
		}
		f, ok := env.Left.Lookup(t.Name)
		if !ok {
			return stt.KindNull, checkErrf(t, "unknown field %q in left schema %s", t.Name, env.Left)
		}
		return f.Kind, nil
	case "right":
		if env.Right == nil {
			return stt.KindNull, checkErrf(t, "no right input in this context")
		}
		f, ok := env.Right.Lookup(t.Name)
		if !ok {
			return stt.KindNull, checkErrf(t, "unknown field %q in right schema %s", t.Name, env.Right)
		}
		return f.Kind, nil
	default:
		return stt.KindNull, checkErrf(t, "unknown qualifier %q (want left/right)", t.Qualifier)
	}
}

func checkBinary(t *Binary, lk, rk stt.Kind) (stt.Kind, error) {
	anyNull := lk == stt.KindNull || rk == stt.KindNull
	switch t.Op {
	case "||", "&&":
		return stt.KindBool, nil
	case "==", "!=":
		if !anyNull && lk != rk && !(lk.Numeric() && rk.Numeric()) {
			return stt.KindNull, checkErrf(t, "cannot compare %s with %s", lk, rk)
		}
		return stt.KindBool, nil
	case "<", "<=", ">", ">=":
		if anyNull {
			return stt.KindBool, nil
		}
		if lk.Numeric() && rk.Numeric() {
			return stt.KindBool, nil
		}
		if lk == rk && lk.Comparable() {
			return stt.KindBool, nil
		}
		return stt.KindNull, checkErrf(t, "cannot order %s against %s", lk, rk)
	case "+":
		if lk == stt.KindString && rk == stt.KindString {
			return stt.KindString, nil
		}
		fallthrough
	case "-", "*", "/", "%":
		if anyNull {
			return stt.KindFloat, nil
		}
		if lk.Numeric() && rk.Numeric() {
			if lk == stt.KindInt && rk == stt.KindInt {
				return stt.KindInt, nil
			}
			return stt.KindFloat, nil
		}
		return stt.KindNull, checkErrf(t, "operator %q needs numeric operands, got %s and %s", t.Op, lk, rk)
	default:
		return stt.KindNull, checkErrf(t, "unknown operator %q", t.Op)
	}
}

func checkCall(t *Call, env Env) (stt.Kind, error) {
	fn, ok := builtins[t.Func]
	if !ok {
		return stt.KindNull, checkErrf(t, "unknown function %q", t.Func)
	}
	if fn.variadic {
		if len(t.Args) < len(fn.params) {
			return stt.KindNull, checkErrf(t, "%s needs at least %d arguments, got %d",
				t.Func, len(fn.params), len(t.Args))
		}
	} else if len(t.Args) != len(fn.params) {
		return stt.KindNull, checkErrf(t, "%s needs %d arguments, got %d",
			t.Func, len(fn.params), len(t.Args))
	}
	for i, a := range t.Args {
		ak, err := Check(a, env)
		if err != nil {
			return stt.KindNull, err
		}
		want := fn.params[min(i, len(fn.params)-1)]
		if want == kindAny || ak == stt.KindNull {
			continue
		}
		if want == kindNum {
			if !ak.Numeric() {
				return stt.KindNull, checkErrf(t, "%s argument %d must be numeric, got %s", t.Func, i+1, ak)
			}
			continue
		}
		if stt.Kind(want) != ak {
			return stt.KindNull, checkErrf(t, "%s argument %d must be %s, got %s",
				t.Func, i+1, stt.Kind(want), ak)
		}
	}
	return fn.result(t, env)
}

// Compiled is a parsed and type-checked expression ready for evaluation.
type Compiled struct {
	Source string
	Root   Node
	Kind   stt.Kind
	env    Env
}

// Compile parses src and type-checks it under env.
func Compile(src string, env Env) (*Compiled, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	k, err := Check(root, env)
	if err != nil {
		return nil, err
	}
	return &Compiled{Source: src, Root: root, Kind: k, env: env}, nil
}

// CompileBool is Compile plus a check that the expression is usable as a
// condition (bool result; numeric/any tolerated through truthiness).
func CompileBool(src string, env Env) (*Compiled, error) {
	c, err := Compile(src, env)
	if err != nil {
		return nil, err
	}
	if c.Kind != stt.KindBool && c.Kind != stt.KindNull {
		return nil, fmt.Errorf("expr: condition %q has kind %s, want bool", src, c.Kind)
	}
	return c, nil
}
