package expr

import (
	"strconv"
)

// Parse compiles source text into an expression tree. It performs no type
// checking; call Check (or Compile, which does both) before evaluating.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	n, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf(p.peek().pos, "unexpected %s after expression", p.peek())
	}
	return n, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: sprintf(format, args...), Expr: p.src}
}

// parseBinary implements precedence climbing from minPrec upward.
func (p *parser) parseBinary(minPrec int) (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		op := normalizeOp(t.text)
		prec := binaryPrec(op)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.parseBinary(prec + 1) // left-associative
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

// normalizeOp maps the SQL-flavoured "=" spelling onto "==" so conditions can
// be written either way, as in the paper's examples.
func normalizeOp(op string) string {
	if op == "=" {
		return "=="
	}
	return op
}

func (p *parser) parseUnary() (Node, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "!" || t.text == "-") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negated numeric literals so "-5" prints back as "-5".
		if t.text == "-" {
			if lit, ok := x.(*Lit); ok && lit.Value.Kind().Numeric() {
				neg, err := lit.Value.Neg()
				if err == nil {
					return &Lit{Value: neg}, nil
				}
			}
		}
		return &Unary{Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.advance()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf(t.pos, "bad integer %q: %v", t.text, err)
		}
		return &Lit{Value: intValue(v)}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf(t.pos, "bad number %q: %v", t.text, err)
		}
		return &Lit{Value: floatValue(v)}, nil
	case tokString:
		return &Lit{Value: stringValue(t.text)}, nil
	case tokLParen:
		n, err := p.parseBinary(1)
		if err != nil {
			return nil, err
		}
		if tt := p.advance(); tt.kind != tokRParen {
			return nil, p.errorf(tt.pos, "expected ')', found %s", tt)
		}
		return n, nil
	case tokIdent:
		switch t.text {
		case "true":
			return &Lit{Value: boolValue(true)}, nil
		case "false":
			return &Lit{Value: boolValue(false)}, nil
		case "null":
			return &Lit{Value: nullValue()}, nil
		}
		// Function call?
		if p.peek().kind == tokLParen {
			return p.parseCall(t)
		}
		// Qualified identifier (left.x / right.x)?
		if p.peek().kind == tokDot {
			p.advance()
			name := p.advance()
			if name.kind != tokIdent {
				return nil, p.errorf(name.pos, "expected field name after %q.", t.text)
			}
			return &Ident{Qualifier: t.text, Name: name.text}, nil
		}
		return &Ident{Name: t.text}, nil
	case tokEOF:
		return nil, p.errorf(t.pos, "unexpected end of expression")
	default:
		return nil, p.errorf(t.pos, "unexpected %s", t)
	}
}

func (p *parser) parseCall(name token) (Node, error) {
	p.advance() // consume '('
	var args []Node
	if p.peek().kind == tokRParen {
		p.advance()
		return &Call{Func: name.text, Args: args}, nil
	}
	for {
		a, err := p.parseBinary(1)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t := p.advance()
		switch t.kind {
		case tokComma:
			continue
		case tokRParen:
			return &Call{Func: name.text, Args: args}, nil
		default:
			return nil, p.errorf(t.pos, "expected ',' or ')' in call to %s, found %s", name.text, t)
		}
	}
}
