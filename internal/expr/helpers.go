package expr

import (
	"fmt"

	"streamloader/internal/stt"
)

// Thin aliases keeping the parser free of direct fmt/stt noise.

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func intValue(v int64) stt.Value     { return stt.Int(v) }
func floatValue(v float64) stt.Value { return stt.Float(v) }
func stringValue(v string) stt.Value { return stt.String(v) }
func boolValue(v bool) stt.Value     { return stt.Bool(v) }
func nullValue() stt.Value           { return stt.Null() }
