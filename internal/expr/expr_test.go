package expr

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"streamloader/internal/stt"
)

func tweetSchema(t *testing.T) *stt.Schema {
	t.Helper()
	return stt.MustSchema([]stt.Field{
		stt.NewField("text", stt.KindString, ""),
		stt.NewField("retweets", stt.KindInt, ""),
		stt.NewField("sentiment", stt.KindFloat, ""),
		stt.NewField("verified", stt.KindBool, ""),
		stt.NewField("posted", stt.KindTime, ""),
	}, stt.GranSecond, stt.SpatPoint, "social")
}

func tweetTuple(t *testing.T) *stt.Tuple {
	t.Helper()
	tup, err := stt.NewTuple(tweetSchema(t), []stt.Value{
		stt.String("Torrential RAIN in Umeda"),
		stt.Int(12),
		stt.Float(-0.25),
		stt.Bool(true),
		stt.Time(time.Date(2016, 3, 15, 9, 30, 0, 0, time.UTC)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tup.Time = time.Date(2016, 3, 15, 9, 30, 5, 0, time.UTC)
	tup.Lat, tup.Lon = 34.70, 135.50
	tup.Theme = "social"
	tup.Source = "twitter-1"
	tup.Seq = 42
	return tup
}

func compileOn(t *testing.T, src string, env Env) *Compiled {
	t.Helper()
	c, err := Compile(src, env)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c
}

func TestEvalScalars(t *testing.T) {
	env := Env{Schema: tweetSchema(t)}
	tup := tweetTuple(t)
	cases := []struct {
		src  string
		want stt.Value
	}{
		{"1 + 2", stt.Int(3)},
		{"1 + 2 * 3", stt.Int(7)},
		{"(1 + 2) * 3", stt.Int(9)},
		{"10 / 4", stt.Int(2)},
		{"10.0 / 4", stt.Float(2.5)},
		{"7 % 3", stt.Int(1)},
		{"-5 + 2", stt.Int(-3)},
		{"2 < 3", stt.Bool(true)},
		{"2 >= 3", stt.Bool(false)},
		{"1 = 1", stt.Bool(true)},
		{"1 == 2", stt.Bool(false)},
		{"1 != 2", stt.Bool(true)},
		{"true && false", stt.Bool(false)},
		{"true || false", stt.Bool(true)},
		{"!true", stt.Bool(false)},
		{"!(1 > 2)", stt.Bool(true)},
		{`"abc" + "def"`, stt.String("abcdef")},
		{`"abc" < "abd"`, stt.Bool(true)},
		{"null == null", stt.Bool(true)},
		{"null != 1", stt.Bool(true)},
		{"1.5e2", stt.Float(150)},
		{".5 * 4", stt.Float(2)},
		{"retweets", stt.Int(12)},
		{"retweets > 10 && verified", stt.Bool(true)},
		{`contains(lower(text), "rain")`, stt.Bool(true)},
		{`startswith(text, "Torr")`, stt.Bool(true)},
		{`endswith(text, "Umeda")`, stt.Bool(true)},
		{`upper("ab")`, stt.String("AB")},
		{`trim("  x ")`, stt.String("x")},
		{`len(text)`, stt.Int(24)},
		{"abs(-3)", stt.Int(3)},
		{"abs(-3.5)", stt.Float(3.5)},
		{"sqrt(16)", stt.Float(4)},
		{"pow(2, 10)", stt.Float(1024)},
		{"min(3, 1, 2)", stt.Float(1)},
		{"max(3, 1, 2)", stt.Float(3)},
		{"floor(2.7)", stt.Float(2)},
		{"ceil(2.2)", stt.Float(3)},
		{"round(2.5)", stt.Float(3)},
		{"if(retweets > 10, 1, 0)", stt.Int(1)},
		{"coalesce(null, 5)", stt.Int(5)},
		{"hour(posted)", stt.Int(9)},
		{"minute(posted)", stt.Int(30)},
		{"weekday(posted)", stt.Int(2)}, // 2016-03-15 is a Tuesday
		{`matches_date("2016-03-15", "YYYY-MM-DD")`, stt.Bool(true)},
		{`matches_date("2016/03/15", "YYYY-MM-DD")`, stt.Bool(false)},
		{`matches_date("16-3-15", "YYYY-MM-DD")`, stt.Bool(false)},
		{"_lat", stt.Float(34.70)},
		{"_lon", stt.Float(135.50)},
		{"_theme", stt.String("social")},
		{"_source", stt.String("twitter-1")},
		{"_seq", stt.Int(42)},
	}
	for _, c := range cases {
		comp := compileOn(t, c.src, env)
		got, err := comp.EvalTuple(tup)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Eval(%q) = %v (%s), want %v (%s)",
				c.src, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestDistanceBuiltin(t *testing.T) {
	env := Env{Schema: tweetSchema(t)}
	tup := tweetTuple(t)
	c := compileOn(t, "distance_m(_lat, _lon, 34.6937, 135.5023) < 5000", env)
	ok, err := c.EvalBool(Scope{Tuple: tup})
	if err != nil || !ok {
		t.Errorf("tweet should be within 5km of Osaka center: %v %v", ok, err)
	}
}

func TestApparentTemperature(t *testing.T) {
	// The paper's virtual-property example: apparent temperature from
	// temperature and humidity (Steadman's formula, simplified).
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
		stt.NewField("humidity", stt.KindFloat, "percent"),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")
	src := "temperature + 0.33*(humidity/100*6.105*exp(17.27*temperature/(237.7+temperature))) - 4"
	c := compileOn(t, src, Env{Schema: schema})
	if c.Kind != stt.KindFloat {
		t.Fatalf("apparent temperature kind = %s", c.Kind)
	}
	tup, _ := stt.NewTuple(schema, []stt.Value{stt.Float(30), stt.Float(70)})
	v, err := c.EvalTuple(tup)
	if err != nil {
		t.Fatal(err)
	}
	// At 30 C and 70% humidity the apparent temperature is ~35.8 C.
	if v.AsFloat() < 34 || v.AsFloat() > 38 {
		t.Errorf("apparent temperature = %v, want ~35.8", v)
	}
}

func TestShortCircuit(t *testing.T) {
	env := Env{Schema: tweetSchema(t)}
	tup := tweetTuple(t)
	// Division by zero on the right of && must not be reached.
	c := compileOn(t, "false && (1/0 > 0)", env)
	v, err := c.EvalTuple(tup)
	if err != nil {
		t.Fatalf("short circuit && failed: %v", err)
	}
	if v.Truthy() {
		t.Error("false && x = false")
	}
	c = compileOn(t, "true || (1/0 > 0)", env)
	v, err = c.EvalTuple(tup)
	if err != nil || !v.Truthy() {
		t.Error("true || x = true without evaluating x")
	}
	// But it is reached when the left side passes.
	c = compileOn(t, "true && (1/0 > 0)", env)
	if _, err := c.EvalTuple(tup); err == nil {
		t.Error("1/0 must error when reached")
	}
}

func TestNullSemantics(t *testing.T) {
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("x", stt.KindFloat, ""),
	}, stt.GranSecond, stt.SpatPoint)
	tup, _ := stt.NewTuple(schema, []stt.Value{stt.Null()})
	env := Env{Schema: schema}

	for src, want := range map[string]bool{
		"x > 0":     false,
		"x < 0":     false,
		"x == null": true,
		"x != null": false,
	} {
		c := compileOn(t, src, env)
		got, err := c.EvalBool(Scope{Tuple: tup})
		if err != nil {
			t.Errorf("%q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	// Arithmetic with null yields null.
	c := compileOn(t, "x + 1", env)
	v, err := c.EvalTuple(tup)
	if err != nil || !v.IsNull() {
		t.Errorf("null + 1 = %v, %v; want null", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "foo(", `"unterminated`, "@x", "1 ? 2",
		"a .", "a.1", `"bad \q escape"`, "f(1,", "1 2", "* 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("temperature >")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos == 0 || !strings.Contains(se.Error(), "offset") {
		t.Errorf("unhelpful syntax error: %v", se)
	}
}

func TestCheckErrors(t *testing.T) {
	env := Env{Schema: tweetSchema(t)}
	bad := []string{
		"ghost > 1",         // unknown field
		"text > 1",          // string vs int ordering
		"-text",             // unary minus on string
		"text * 2",          // arithmetic on string
		"frobnicate(1)",     // unknown function
		"abs()",             // arity
		"abs(1, 2)",         // arity
		"contains(text)",    // arity
		"contains(1, text)", // argument kind
		"lower(retweets)",   // argument kind
		"hour(text)",        // argument kind
		"left.retweets > 1", // no left input in single env
		"verified + 1",      // bool arithmetic
		"posted - posted",   // time arithmetic unsupported
	}
	for _, src := range bad {
		if _, err := Compile(src, env); err == nil {
			t.Errorf("Compile(%q) succeeded, want type error", src)
		}
	}
}

func TestCompileBool(t *testing.T) {
	env := Env{Schema: tweetSchema(t)}
	if _, err := CompileBool("retweets > 3", env); err != nil {
		t.Errorf("bool condition rejected: %v", err)
	}
	if _, err := CompileBool("retweets + 3", env); err == nil {
		t.Error("int-valued condition accepted")
	}
}

func TestJoinPredicate(t *testing.T) {
	weather := stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindFloat, "celsius"),
		stt.NewField("station", stt.KindString, ""),
	}, stt.GranMinute, stt.SpatCellDistrict, "weather")
	traffic := stt.MustSchema([]stt.Field{
		stt.NewField("congestion", stt.KindFloat, ""),
		stt.NewField("station", stt.KindString, ""),
	}, stt.GranMinute, stt.SpatCellDistrict, "traffic")
	env := Env{Left: weather, Right: traffic}

	c, err := Compile("left.station == right.station && left.temperature > 25", env)
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := stt.NewTuple(weather, []stt.Value{stt.Float(30), stt.String("umeda")})
	rt, _ := stt.NewTuple(traffic, []stt.Value{stt.Float(0.9), stt.String("umeda")})
	ok, err := c.EvalBool(Scope{Left: lt, Right: rt})
	if err != nil || !ok {
		t.Errorf("join predicate = %v, %v; want true", ok, err)
	}
	rt2, _ := stt.NewTuple(traffic, []stt.Value{stt.Float(0.9), stt.String("namba")})
	ok, err = c.EvalBool(Scope{Left: lt, Right: rt2})
	if err != nil || ok {
		t.Errorf("join predicate mismatch = %v, %v; want false", ok, err)
	}

	// Unqualified field in two-input context is a type error.
	if _, err := Compile("station == station", env); err == nil {
		t.Error("unqualified field must be rejected in join context")
	}
	// Unknown side fields.
	if _, err := Compile("left.ghost == right.station", env); err == nil {
		t.Error("unknown left field must be rejected")
	}
	if _, err := Compile("left.station == right.ghost", env); err == nil {
		t.Error("unknown right field must be rejected")
	}
	if _, err := Compile("middle.station == 1", env); err == nil {
		t.Error("unknown qualifier must be rejected")
	}
}

func TestFields(t *testing.T) {
	n, err := Parse("left.a > right.b && c + d > 2 && contains(c, \"x\")")
	if err != nil {
		t.Fatal(err)
	}
	fs := Fields(n)
	if len(fs["left"]) != 1 || fs["left"][0] != "a" {
		t.Errorf("left fields = %v", fs["left"])
	}
	if len(fs["right"]) != 1 || fs["right"][0] != "b" {
		t.Errorf("right fields = %v", fs["right"])
	}
	if len(fs[""]) != 2 {
		t.Errorf("unqualified fields = %v", fs[""])
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"a - (b - c)",
		"a - b - c",
		"-(a + b)",
		"!(a && b) || c",
		`contains(lower(text), "rain") && retweets >= 10`,
		"left.station == right.station",
		"if(x > 0, 1, -1)",
		"a / b % c",
		`"he said \"hi\""`,
		"-5",
		"1.5e-3 < x",
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := n1.String()
		n2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", src, printed, err)
			continue
		}
		if n2.String() != printed {
			t.Errorf("print not stable: %q -> %q -> %q", src, printed, n2.String())
		}
	}
}

// Property: for random integer triples, the printed form of a parsed
// arithmetic expression evaluates to the same value as the original.
func TestQuickPrintEvalEquivalence(t *testing.T) {
	schema := stt.MustSchema([]stt.Field{
		stt.NewField("a", stt.KindInt, ""),
		stt.NewField("b", stt.KindInt, ""),
		stt.NewField("c", stt.KindInt, ""),
	}, stt.GranSecond, stt.SpatPoint)
	env := Env{Schema: schema}
	exprs := []string{
		"a + b * c", "(a + b) * c", "a - b - c", "a - (b - c)",
		"a * b + c * a", "a % (b + 7) + c", "-a + b", "a + -b",
		"max(a, b) - min(b, c)", "abs(a - b) + abs(b - c)",
	}
	f := func(a, b, c int16, pick uint8) bool {
		src := exprs[int(pick)%len(exprs)]
		c1, err := Compile(src, env)
		if err != nil {
			return false
		}
		c2, err := Compile(c1.Root.String(), env)
		if err != nil {
			return false
		}
		tup, err := stt.NewTuple(schema, []stt.Value{
			stt.Int(int64(a)), stt.Int(int64(b)), stt.Int(int64(c)),
		})
		if err != nil {
			return false
		}
		v1, err1 := c1.EvalTuple(tup)
		v2, err2 := c2.EvalTuple(tup)
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		return v1.Equal(v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBuiltinsList(t *testing.T) {
	names := Builtins()
	if len(names) < 20 {
		t.Errorf("expected >= 20 builtins, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Builtins() must be sorted")
		}
	}
	found := false
	for _, n := range names {
		if n == "distance_m" {
			found = true
		}
	}
	if !found {
		t.Error("distance_m must be registered")
	}
}

func TestEvalAgainstMissingTuple(t *testing.T) {
	env := Env{Schema: tweetSchema(t)}
	c := compileOn(t, "retweets > 1", env)
	if _, err := c.Eval(Scope{}); err == nil {
		t.Error("evaluating without a tuple must fail")
	}
}
