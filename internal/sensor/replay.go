package sensor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/pubsub"
	"streamloader/internal/stt"
)

// Replay plays back a recorded trace (the JSON Lines format cmd/slgen
// emits: payload fields plus _time/_lat/_lon/_theme/_source metadata) as a
// sensor. It lets real captured data stand in for a simulator wherever a
// *Sensor is accepted: Replay satisfies the executor's SensorSource
// interface, so dataflows run unchanged over recorded streams.
//
// Readings are replayed cyclically relative to the requested event time:
// asking for a time past the end of the trace wraps around, shifting the
// trace's timestamps forward by whole trace durations, so long experiments
// can loop short captures.
type Replay struct {
	id     string
	schema *stt.Schema
	themes []string
	loc    geo.Point
	nodeID string
	period time.Duration

	base     time.Time // first reading's event time
	span     time.Duration
	readings []replayReading
	seq      uint64
}

type replayReading struct {
	offset time.Duration // from base
	values []stt.Value
	lat    float64
	lon    float64
	theme  string
}

// NewReplay parses a JSONL trace into a replayable sensor. The schema must
// describe the payload fields of the trace (kinds are validated against the
// first reading). nodeID names the network node that will manage the
// replayed stream.
func NewReplay(id string, schema *stt.Schema, nodeID string, trace io.Reader) (*Replay, error) {
	if id == "" {
		return nil, fmt.Errorf("sensor: replay needs an ID")
	}
	if schema == nil {
		return nil, fmt.Errorf("sensor: replay needs a schema")
	}
	r := &Replay{id: id, schema: schema, nodeID: nodeID, themes: schema.Themes}

	scanner := bufio.NewScanner(trace)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("sensor: replay %s line %d: %v", id, line, err)
		}
		reading, ts, err := r.decode(rec)
		if err != nil {
			return nil, fmt.Errorf("sensor: replay %s line %d: %v", id, line, err)
		}
		if len(r.readings) == 0 || ts.Before(r.base) {
			if len(r.readings) > 0 {
				// Re-base existing offsets.
				delta := r.base.Sub(ts)
				for i := range r.readings {
					r.readings[i].offset += delta
				}
			}
			r.base = ts
		}
		reading.offset = ts.Sub(r.base)
		r.readings = append(r.readings, reading)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("sensor: replay %s: %v", id, err)
	}
	if len(r.readings) == 0 {
		return nil, fmt.Errorf("sensor: replay %s: empty trace", id)
	}
	sort.SliceStable(r.readings, func(i, j int) bool {
		return r.readings[i].offset < r.readings[j].offset
	})
	r.loc = geo.Point{Lat: r.readings[0].lat, Lon: r.readings[0].lon}

	// Period: median inter-reading gap, or 1s for single-reading traces.
	r.span = r.readings[len(r.readings)-1].offset
	if len(r.readings) > 1 {
		gaps := make([]time.Duration, 0, len(r.readings)-1)
		for i := 1; i < len(r.readings); i++ {
			gaps = append(gaps, r.readings[i].offset-r.readings[i-1].offset)
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		r.period = gaps[len(gaps)/2]
	}
	if r.period <= 0 {
		r.period = time.Second
	}
	return r, nil
}

// decode converts one JSONL record into a reading plus its event time.
func (r *Replay) decode(rec map[string]any) (replayReading, time.Time, error) {
	tsRaw, ok := rec["_time"].(string)
	if !ok {
		return replayReading{}, time.Time{}, fmt.Errorf("missing _time")
	}
	ts, err := time.Parse(time.RFC3339Nano, tsRaw)
	if err != nil {
		return replayReading{}, time.Time{}, fmt.Errorf("bad _time %q: %v", tsRaw, err)
	}
	reading := replayReading{values: make([]stt.Value, r.schema.NumFields())}
	for i := 0; i < r.schema.NumFields(); i++ {
		f := r.schema.Field(i)
		raw, present := rec[f.Name]
		if !present {
			reading.values[i] = stt.Null()
			continue
		}
		v, err := stt.FromGoValue(raw)
		if err != nil {
			return replayReading{}, time.Time{}, fmt.Errorf("field %q: %v", f.Name, err)
		}
		// JSON numbers arrive as floats; coerce to declared int fields.
		if f.Kind == stt.KindInt && v.Kind() == stt.KindFloat {
			v = stt.Int(v.AsInt())
		}
		if f.Kind == stt.KindTime && v.Kind() == stt.KindString {
			parsed, err := time.Parse(time.RFC3339Nano, v.AsString())
			if err != nil {
				return replayReading{}, time.Time{}, fmt.Errorf("field %q: %v", f.Name, err)
			}
			v = stt.Time(parsed)
		}
		if v.Kind() != stt.KindNull && v.Kind() != f.Kind &&
			!(f.Kind == stt.KindFloat && v.Kind() == stt.KindInt) {
			return replayReading{}, time.Time{}, fmt.Errorf(
				"field %q: trace has %s, schema declares %s", f.Name, v.Kind(), f.Kind)
		}
		reading.values[i] = v
	}
	if lat, ok := rec["_lat"].(float64); ok {
		reading.lat = lat
	}
	if lon, ok := rec["_lon"].(float64); ok {
		reading.lon = lon
	}
	if theme, ok := rec["_theme"].(string); ok {
		reading.theme = theme
	}
	return reading, ts, nil
}

// ID returns the replay sensor's identifier.
func (r *Replay) ID() string { return r.id }

// Schema returns the payload schema.
func (r *Replay) Schema() *stt.Schema { return r.schema }

// Period returns the median inter-reading interval of the trace.
func (r *Replay) Period() time.Duration { return r.period }

// Len returns the number of recorded readings.
func (r *Replay) Len() int { return len(r.readings) }

// Meta returns the publication record for the pub/sub layer.
func (r *Replay) Meta() pubsub.SensorMeta {
	return pubsub.SensorMeta{
		ID:          r.id,
		Type:        "replay",
		Schema:      r.schema,
		FrequencyHz: float64(time.Second) / float64(r.period),
		Location:    r.loc,
		NodeID:      r.nodeID,
		Themes:      r.themes,
	}
}

// At returns the recorded reading nearest at or before ts, cycling the
// trace when ts lies beyond its end. The returned tuple carries ts (aligned
// to the schema granularity) as its event time, so replays integrate with
// watermark-driven windows exactly like simulated sensors.
func (r *Replay) At(ts time.Time) *stt.Tuple {
	var reading replayReading
	if ts.Before(r.base) {
		reading = r.readings[0]
	} else {
		offset := ts.Sub(r.base)
		if r.span > 0 {
			offset %= r.span + r.period
		}
		// Last reading with offset <= offset (binary search).
		i := sort.Search(len(r.readings), func(i int) bool {
			return r.readings[i].offset > offset
		})
		if i > 0 {
			i--
		}
		reading = r.readings[i]
	}
	vals := make([]stt.Value, len(reading.values))
	copy(vals, reading.values)
	tup := &stt.Tuple{
		Schema: r.schema,
		Values: vals,
		Time:   ts,
		Lat:    reading.lat,
		Lon:    reading.lon,
		Theme:  reading.theme,
		Source: r.id,
		Seq:    r.seq,
	}
	r.seq++
	return tup.AlignSTT()
}
