package sensor

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"streamloader/internal/stt"
)

var replaySchema = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
	stt.NewField("station", stt.KindString, ""),
}, stt.GranMinute, stt.SpatCellDistrict, "weather")

const replayTrace = `{"_lat":34.69,"_lon":135.5,"_source":"x","_theme":"weather","_time":"2016-03-15T00:00:00Z","station":"a","temperature":20.5}
{"_lat":34.69,"_lon":135.5,"_source":"x","_theme":"weather","_time":"2016-03-15T00:01:00Z","station":"a","temperature":21}
{"_lat":34.69,"_lon":135.5,"_source":"x","_theme":"weather","_time":"2016-03-15T00:02:00Z","station":"a","temperature":22.5}
`

func TestNewReplayParsesTrace(t *testing.T) {
	r, err := NewReplay("rep-1", replaySchema, "node-00", strings.NewReader(replayTrace))
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "rep-1" || r.Len() != 3 {
		t.Fatalf("id=%s len=%d", r.ID(), r.Len())
	}
	if r.Period() != time.Minute {
		t.Errorf("period = %v, want 1m (median gap)", r.Period())
	}
	m := r.Meta()
	if m.Type != "replay" || m.Location.Lat != 34.69 || m.Schema != replaySchema {
		t.Errorf("meta = %+v", m)
	}
}

func TestNewReplayValidation(t *testing.T) {
	if _, err := NewReplay("", replaySchema, "n", strings.NewReader(replayTrace)); err == nil {
		t.Error("empty ID must fail")
	}
	if _, err := NewReplay("x", nil, "n", strings.NewReader(replayTrace)); err == nil {
		t.Error("nil schema must fail")
	}
	if _, err := NewReplay("x", replaySchema, "n", strings.NewReader("")); err == nil {
		t.Error("empty trace must fail")
	}
	if _, err := NewReplay("x", replaySchema, "n", strings.NewReader("{bad json")); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := NewReplay("x", replaySchema, "n",
		strings.NewReader(`{"temperature":1,"station":"a"}`+"\n")); err == nil {
		t.Error("missing _time must fail")
	}
	if _, err := NewReplay("x", replaySchema, "n",
		strings.NewReader(`{"_time":"2016-03-15T00:00:00Z","temperature":"hot","station":"a"}`+"\n")); err == nil {
		t.Error("kind mismatch must fail")
	}
}

func TestReplayAt(t *testing.T) {
	r, err := NewReplay("rep-1", replaySchema, "node-00", strings.NewReader(replayTrace))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)

	tup := r.At(base)
	if tup.MustGet("temperature").AsFloat() != 20.5 {
		t.Errorf("reading 0 = %v", tup.Values)
	}
	if err := tup.Validate(); err != nil {
		t.Fatalf("replayed tuple invalid: %v", err)
	}
	// Mid-gap: the reading at or before.
	tup = r.At(base.Add(90 * time.Second))
	if tup.MustGet("temperature").AsFloat() != 21 {
		t.Errorf("reading at 1.5m = %v", tup.Values)
	}
	// Before the trace: first reading.
	tup = r.At(base.Add(-time.Hour))
	if tup.MustGet("temperature").AsFloat() != 20.5 {
		t.Errorf("pre-trace reading = %v", tup.Values)
	}
	// The event time is the requested time (aligned), not the recorded one.
	tup = r.At(base.Add(10 * time.Minute))
	if !tup.Time.Equal(base.Add(10 * time.Minute)) {
		t.Errorf("event time = %v", tup.Time)
	}
	// Seq increments.
	a, b := r.At(base), r.At(base)
	if b.Seq != a.Seq+1 {
		t.Error("seq must increment")
	}
}

func TestReplayCycles(t *testing.T) {
	r, err := NewReplay("rep-1", replaySchema, "node-00", strings.NewReader(replayTrace))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	// Span is 2 minutes + 1 minute period = 3 minute cycle: t = base+3m maps
	// back to reading 0, base+4m to reading 1.
	if got := r.At(base.Add(3 * time.Minute)).MustGet("temperature").AsFloat(); got != 20.5 {
		t.Errorf("cycle wrap = %v, want 20.5", got)
	}
	if got := r.At(base.Add(4 * time.Minute)).MustGet("temperature").AsFloat(); got != 21 {
		t.Errorf("cycle +1m = %v, want 21", got)
	}
	// Far future still works.
	if got := r.At(base.Add(31 * time.Minute)).MustGet("temperature").AsFloat(); got != 21 {
		t.Errorf("deep cycle = %v, want 21", got)
	}
}

func TestReplayUnsortedTrace(t *testing.T) {
	shuffled := `{"_lat":34.69,"_lon":135.5,"_time":"2016-03-15T00:02:00Z","station":"a","temperature":22.5}
{"_lat":34.69,"_lon":135.5,"_time":"2016-03-15T00:00:00Z","station":"a","temperature":20.5}
{"_lat":34.69,"_lon":135.5,"_time":"2016-03-15T00:01:00Z","station":"a","temperature":21}
`
	r, err := NewReplay("rep-1", replaySchema, "node-00", strings.NewReader(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	if got := r.At(base).MustGet("temperature").AsFloat(); got != 20.5 {
		t.Errorf("unsorted trace: reading 0 = %v", got)
	}
	if got := r.At(base.Add(2 * time.Minute)).MustGet("temperature").AsFloat(); got != 22.5 {
		t.Errorf("unsorted trace: reading 2 = %v", got)
	}
}

func TestReplayMissingFieldsAreNull(t *testing.T) {
	trace := `{"_time":"2016-03-15T00:00:00Z","temperature":20.5}` + "\n"
	r, err := NewReplay("rep-1", replaySchema, "node-00", strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	tup := r.At(time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC))
	if !tup.MustGet("station").IsNull() {
		t.Error("missing field must replay as null")
	}
}

// TestReplayRoundTripsSlgenOutput generates a trace with a simulated sensor
// (the slgen path) and replays it: the replayed values must match the
// original generation.
func TestReplayRoundTripsSlgenOutput(t *testing.T) {
	gen := newSensor(t, TypeTemperature, 0)
	var sb strings.Builder
	from := time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)
	var originals []*stt.Tuple
	gen.Emit(from, from.Add(10*time.Minute), func(tup *stt.Tuple) bool {
		originals = append(originals, tup)
		b, err := jsonMarshal(tup.Map())
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
		return true
	})
	r, err := NewReplay("rep-1", gen.Schema(), "node-00", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(originals) {
		t.Fatalf("replay len = %d, want %d", r.Len(), len(originals))
	}
	for i, orig := range originals {
		got := r.At(orig.Time)
		for j := range orig.Values {
			if !got.Values[j].Equal(orig.Values[j]) {
				t.Fatalf("reading %d field %d: %v != %v", i, j, got.Values[j], orig.Values[j])
			}
		}
	}
}

func jsonMarshal(v any) ([]byte, error) {
	return json.Marshal(v)
}
