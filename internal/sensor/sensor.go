package sensor

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/pubsub"
	"streamloader/internal/stt"
)

// Spec configures one simulated sensor.
type Spec struct {
	// ID is the unique sensor identifier.
	ID string
	// Type is the sensor class.
	Type Type
	// Location is where the sensor sits.
	Location geo.Point
	// NodeID is the network node managing the sensor.
	NodeID string
	// Seed makes the generated stream reproducible.
	Seed int64
	// UnitVariant selects among the heterogeneous unit choices of the class
	// (e.g. variant 1 temperature stations report Fahrenheit).
	UnitVariant int
	// FrequencyHz overrides the class default when > 0.
	FrequencyHz float64
}

// Sensor is a deterministic generator for one simulated device. It is not
// safe for concurrent use; each source process owns its sensor.
type Sensor struct {
	spec    Spec
	profile typeProfile
	schema  *stt.Schema
	rng     *rand.Rand
	seq     uint64

	// weather-model state shared by the physical generators
	wet         bool    // rain Markov state
	rainRate    float64 // current rain intensity, mm/h
	riverLevel  float64 // meters above baseline
	pressureHPa float64
}

// New builds a sensor from its spec.
func New(spec Spec) (*Sensor, error) {
	p, ok := profiles[spec.Type]
	if !ok {
		return nil, fmt.Errorf("sensor: unknown sensor type %q", spec.Type)
	}
	if spec.ID == "" {
		return nil, fmt.Errorf("sensor: spec must carry an ID")
	}
	if !spec.Location.Valid() {
		return nil, fmt.Errorf("sensor %s: invalid location %v", spec.ID, spec.Location)
	}
	if spec.FrequencyHz == 0 {
		spec.FrequencyHz = p.frequencyHz
	}
	if spec.FrequencyHz <= 0 {
		return nil, fmt.Errorf("sensor %s: frequency must be positive", spec.ID)
	}
	return &Sensor{
		spec:        spec,
		profile:     p,
		schema:      p.schema(spec.UnitVariant),
		rng:         rand.New(rand.NewSource(spec.Seed)),
		pressureHPa: 1013,
	}, nil
}

// ID returns the sensor identifier.
func (s *Sensor) ID() string { return s.spec.ID }

// Schema returns the tuple schema the sensor produces.
func (s *Sensor) Schema() *stt.Schema { return s.schema }

// Period returns the interval between consecutive readings.
func (s *Sensor) Period() time.Duration {
	return time.Duration(float64(time.Second) / s.spec.FrequencyHz)
}

// Meta returns the publication record for the pub/sub layer.
func (s *Sensor) Meta() pubsub.SensorMeta {
	return pubsub.SensorMeta{
		ID:          s.spec.ID,
		Type:        string(s.spec.Type),
		Schema:      s.schema,
		FrequencyHz: s.spec.FrequencyHz,
		Location:    s.spec.Location,
		NodeID:      s.spec.NodeID,
		Themes:      s.profile.themes,
	}
}

// At produces the reading at event time ts. Consecutive calls must pass
// non-decreasing timestamps; the generator evolves internal state (rain
// bursts, river response) between calls. The tuple is STT-aligned and
// carries the sensor's location, theme and a monotone sequence number.
func (s *Sensor) At(ts time.Time) *stt.Tuple {
	var values []stt.Value
	switch s.spec.Type {
	case TypeTemperature:
		values = s.temperatureAt(ts)
	case TypeHumidity:
		values = s.humidityAt(ts)
	case TypeRain:
		values = s.rainAt(ts)
	case TypeWind:
		values = s.windAt(ts)
	case TypePressure:
		values = s.pressureAt()
	case TypeRiverLevel:
		values = s.riverAt(ts)
	case TypeTweet:
		values = s.tweetAt(ts)
	case TypeTraffic:
		values = s.trafficAt(ts)
	case TypeTrain:
		values = s.trainAt()
	}
	tup := &stt.Tuple{
		Schema: s.schema,
		Values: values,
		Time:   ts,
		Lat:    s.spec.Location.Lat,
		Lon:    s.spec.Location.Lon,
		Theme:  s.profile.themes[0],
		Source: s.spec.ID,
		Seq:    s.seq,
	}
	s.seq++
	return tup.AlignSTT()
}

// Emit generates the readings in [from, to) at the sensor's frequency and
// passes each to emit; generation stops early if emit returns false.
func (s *Sensor) Emit(from, to time.Time, emit func(*stt.Tuple) bool) {
	period := s.Period()
	for ts := from; ts.Before(to); ts = ts.Add(period) {
		if !emit(s.At(ts)) {
			return
		}
	}
}

// dayFraction maps a timestamp to [0,1) across the UTC day.
func dayFraction(ts time.Time) float64 {
	t := ts.UTC()
	return (float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600) / 24
}

// diurnal returns a smooth daily cycle in [-1, 1] peaking at peakHour.
func diurnal(ts time.Time, peakHour float64) float64 {
	return math.Cos(2 * math.Pi * (dayFraction(ts) - peakHour/24))
}

// baseTemperature is the underlying deterministic Celsius temperature model:
// a seasonal baseline (fixed at late-spring Osaka), a diurnal cycle peaking
// at 14:00, and spatial variation by latitude.
func (s *Sensor) baseTemperature(ts time.Time) float64 {
	base := 22.0 - (s.spec.Location.Lat-34.5)*2
	return base + 6*diurnal(ts, 14)
}

func (s *Sensor) temperatureAt(ts time.Time) []stt.Value {
	c := s.baseTemperature(ts) + s.rng.NormFloat64()*0.4
	if s.schema.Field(0).Unit == "fahrenheit" {
		c = c*9/5 + 32
	}
	return []stt.Value{stt.Float(round1(c)), stt.String(s.spec.ID)}
}

func (s *Sensor) humidityAt(ts time.Time) []stt.Value {
	// Humidity is anti-correlated with the diurnal temperature cycle.
	h := 65 - 15*diurnal(ts, 14) + s.rng.NormFloat64()*3
	h = clamp(h, 20, 100)
	return []stt.Value{stt.Float(round1(h)), stt.String(s.spec.ID)}
}

// stepRain advances the two-state (dry/wet) rain model one reading.
func (s *Sensor) stepRain() {
	if s.wet {
		if s.rng.Float64() < 0.10 { // bursts last ~10 readings
			s.wet = false
			s.rainRate = 0
		} else {
			// Intensity wanders within the burst; occasionally torrential.
			s.rainRate = clamp(s.rainRate+s.rng.NormFloat64()*4, 0.5, 120)
		}
	} else {
		if s.rng.Float64() < 0.03 { // ~3% chance a burst starts
			s.wet = true
			s.rainRate = 2 + s.rng.Float64()*20
			if s.rng.Float64() < 0.15 {
				s.rainRate += 40 // torrential onset
			}
		}
	}
}

func (s *Sensor) rainAt(time.Time) []stt.Value {
	s.stepRain()
	rate := s.rainRate
	if s.schema.Field(0).Unit == "inch/h" {
		rate /= 25.4
	}
	return []stt.Value{stt.Float(round2(rate)), stt.String(s.spec.ID)}
}

func (s *Sensor) windAt(ts time.Time) []stt.Value {
	speed := 3 + 2*diurnal(ts, 15) + math.Abs(s.rng.NormFloat64())*2
	if s.schema.Field(0).Unit == "mph" {
		speed /= 0.44704
	}
	dir := math.Mod(float64(s.rng.Intn(360))+s.rng.Float64(), 360)
	return []stt.Value{stt.Float(round1(speed)), stt.Float(round1(dir))}
}

func (s *Sensor) pressureAt() []stt.Value {
	// Slow random walk around 1013 hPa.
	s.pressureHPa = clamp(s.pressureHPa+s.rng.NormFloat64()*0.3, 980, 1040)
	return []stt.Value{stt.Float(round1(s.pressureHPa))}
}

func (s *Sensor) riverAt(time.Time) []stt.Value {
	// The river integrates its own local rain model and decays toward the
	// baseline: a burst of rain raises the level over the following readings.
	s.stepRain()
	s.riverLevel = s.riverLevel*0.97 + s.rainRate*0.01
	level := 1.5 + s.riverLevel // meters, 1.5 m baseline
	if s.schema.Field(0).Unit == "yard" {
		level /= 0.9144
	}
	return []stt.Value{stt.Float(round2(level)), stt.String(s.spec.ID)}
}

var tweetTopics = []struct {
	weight int
	texts  []string
}{
	{4, []string{
		"heavy rain in %s right now", "torrential rain flooding the street near %s",
		"it is pouring in %s", "rain will not stop in %s today",
	}},
	{3, []string{
		"so hot in %s today", "this heat in %s is unbearable", "scorching afternoon in %s",
	}},
	{3, []string{
		"traffic jam on the %s loop again", "accident blocking two lanes near %s",
		"bumper to bumper near %s station",
	}},
	{5, []string{
		"lunch in %s was great", "nice view from the %s tower", "meeting friends in %s",
		"shopping in %s", "great concert tonight in %s",
	}},
}

var districtNames = []string{"Umeda", "Namba", "Tennoji", "Sakai", "Suita", "Yodogawa"}

func (s *Sensor) tweetAt(time.Time) []stt.Value {
	total := 0
	for _, t := range tweetTopics {
		total += t.weight
	}
	pick := s.rng.Intn(total)
	var texts []string
	for _, t := range tweetTopics {
		if pick < t.weight {
			texts = t.texts
			break
		}
		pick -= t.weight
	}
	district := districtNames[s.rng.Intn(len(districtNames))]
	text := fmt.Sprintf(texts[s.rng.Intn(len(texts))], district)
	user := fmt.Sprintf("user%04d", s.rng.Intn(10000))
	retweets := int64(0)
	if s.rng.Float64() < 0.2 {
		retweets = int64(s.rng.Intn(50))
	}
	return []stt.Value{stt.String(text), stt.String(user), stt.Int(retweets)}
}

func (s *Sensor) trafficAt(ts time.Time) []stt.Value {
	// Congestion peaks at the 8:00 and 18:00 rush hours.
	rush := math.Max(diurnal(ts, 8), diurnal(ts, 18))
	congestion := clamp(0.25+0.5*rush+s.rng.NormFloat64()*0.08, 0, 1)
	speed := 60 * (1 - congestion*0.8) // km/h free-flow 60
	if s.schema.Field(1).Unit == "mph" {
		speed *= 0.621371
	}
	segment := fmt.Sprintf("seg-%s-%02d", s.spec.ID, s.rng.Intn(8))
	return []stt.Value{stt.Float(round2(congestion)), stt.Float(round1(speed)), stt.String(segment)}
}

var trainLines = []string{"Midosuji", "Tanimachi", "Yotsubashi", "Chuo", "Sakaisuji", "Loop"}

func (s *Sensor) trainAt() []stt.Value {
	line := trainLines[s.rng.Intn(len(trainLines))]
	delay := 0.0
	cancelled := false
	r := s.rng.Float64()
	switch {
	case r < 0.02:
		cancelled = true
		delay = 30 + s.rng.Float64()*60
	case r < 0.2:
		delay = s.rng.Float64() * 12
	}
	return []stt.Value{stt.String(line), stt.Float(round1(delay)), stt.Bool(cancelled)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
func round2(v float64) float64 { return math.Round(v*100) / 100 }
