// Package sensor simulates the heterogeneous physical and social sensors of
// the paper's NICT testbed: temperature, humidity, rain, wind, pressure and
// river-level physical sensors, plus tweet, traffic and train social
// sensors. Generators are deterministic given a seed, so every experiment in
// EXPERIMENTS.md replays identically.
//
// Heterogeneity is deliberate and mirrors the paper's motivation: sensor
// types differ in schema, unit of measure (some stations report Fahrenheit
// or yards), temporal/spatial granularity, theme, and data frequency. The
// Transform and granularity-coarsening operations exist precisely to
// reconcile these differences.
package sensor

import (
	"fmt"

	"streamloader/internal/stt"
)

// Type is a sensor class.
type Type string

// The sensor classes of the simulated testbed.
const (
	TypeTemperature Type = "temperature"
	TypeHumidity    Type = "humidity"
	TypeRain        Type = "rain"
	TypeWind        Type = "wind"
	TypePressure    Type = "pressure"
	TypeRiverLevel  Type = "river-level"
	TypeTweet       Type = "tweet"
	TypeTraffic     Type = "traffic"
	TypeTrain       Type = "train"
)

// AllTypes lists every sensor class, in a stable order.
var AllTypes = []Type{
	TypeTemperature, TypeHumidity, TypeRain, TypeWind, TypePressure,
	TypeRiverLevel, TypeTweet, TypeTraffic, TypeTrain,
}

// ParseType validates a sensor class name.
func ParseType(s string) (Type, error) {
	for _, t := range AllTypes {
		if string(t) == s {
			return t, nil
		}
	}
	return "", fmt.Errorf("sensor: unknown sensor type %q", s)
}

// typeProfile describes the static properties of a sensor class; the schema
// may depend on the unit variant to exercise heterogeneity.
type typeProfile struct {
	themes      []string
	frequencyHz float64
	tgran       stt.TemporalGranularity
	sgran       stt.SpatialGranularity
	schema      func(variant int) *stt.Schema
}

var profiles = map[Type]typeProfile{
	TypeTemperature: {
		themes: []string{"weather"}, frequencyHz: 1.0 / 60, // one per minute
		tgran: stt.GranMinute, sgran: stt.SpatCellDistrict,
		schema: func(variant int) *stt.Schema {
			unit := "celsius"
			if variant%2 == 1 {
				unit = "fahrenheit" // legacy stations report Fahrenheit
			}
			return stt.MustSchema([]stt.Field{
				stt.NewField("temperature", stt.KindFloat, unit),
				stt.NewField("station", stt.KindString, ""),
			}, stt.GranMinute, stt.SpatCellDistrict, "weather")
		},
	},
	TypeHumidity: {
		themes: []string{"weather"}, frequencyHz: 1.0 / 60,
		tgran: stt.GranMinute, sgran: stt.SpatCellDistrict,
		schema: func(int) *stt.Schema {
			return stt.MustSchema([]stt.Field{
				stt.NewField("humidity", stt.KindFloat, "percent"),
				stt.NewField("station", stt.KindString, ""),
			}, stt.GranMinute, stt.SpatCellDistrict, "weather")
		},
	},
	TypeRain: {
		themes: []string{"weather", "rain"}, frequencyHz: 1.0 / 60,
		tgran: stt.GranMinute, sgran: stt.SpatCellDistrict,
		schema: func(variant int) *stt.Schema {
			unit := "mm/h"
			if variant%3 == 2 {
				unit = "inch/h"
			}
			return stt.MustSchema([]stt.Field{
				stt.NewField("rain_rate", stt.KindFloat, unit),
				stt.NewField("gauge", stt.KindString, ""),
			}, stt.GranMinute, stt.SpatCellDistrict, "weather", "rain")
		},
	},
	TypeWind: {
		themes: []string{"weather"}, frequencyHz: 1.0 / 60,
		tgran: stt.GranMinute, sgran: stt.SpatCellDistrict,
		schema: func(variant int) *stt.Schema {
			unit := "m/s"
			if variant%2 == 1 {
				unit = "mph"
			}
			return stt.MustSchema([]stt.Field{
				stt.NewField("wind_speed", stt.KindFloat, unit),
				stt.NewField("wind_dir", stt.KindFloat, ""),
			}, stt.GranMinute, stt.SpatCellDistrict, "weather")
		},
	},
	TypePressure: {
		themes: []string{"weather"}, frequencyHz: 1.0 / 300, // every 5 min
		tgran: stt.GranMinute, sgran: stt.SpatCellCity,
		schema: func(int) *stt.Schema {
			return stt.MustSchema([]stt.Field{
				stt.NewField("pressure", stt.KindFloat, "hPa"),
			}, stt.GranMinute, stt.SpatCellCity, "weather")
		},
	},
	TypeRiverLevel: {
		themes: []string{"water", "flood"}, frequencyHz: 1.0 / 120,
		tgran: stt.GranMinute, sgran: stt.SpatPoint,
		schema: func(variant int) *stt.Schema {
			unit := "m"
			if variant%2 == 1 {
				unit = "yard" // the paper's own yards-to-meters example
			}
			return stt.MustSchema([]stt.Field{
				stt.NewField("level", stt.KindFloat, unit),
				stt.NewField("gauge", stt.KindString, ""),
			}, stt.GranMinute, stt.SpatPoint, "flood", "water")
		},
	},
	TypeTweet: {
		themes: []string{"social"}, frequencyHz: 0.5, // bursty, nominal 0.5/s
		tgran: stt.GranSecond, sgran: stt.SpatPoint,
		schema: func(int) *stt.Schema {
			return stt.MustSchema([]stt.Field{
				stt.NewField("text", stt.KindString, ""),
				stt.NewField("user", stt.KindString, ""),
				stt.NewField("retweets", stt.KindInt, ""),
			}, stt.GranSecond, stt.SpatPoint, "social")
		},
	},
	TypeTraffic: {
		themes: []string{"traffic"}, frequencyHz: 1.0 / 30,
		tgran: stt.GranMinute, sgran: stt.SpatCellStreet,
		schema: func(variant int) *stt.Schema {
			unit := "km/h"
			if variant%2 == 1 {
				unit = "mph"
			}
			return stt.MustSchema([]stt.Field{
				stt.NewField("congestion", stt.KindFloat, "fraction"),
				stt.NewField("speed", stt.KindFloat, unit),
				stt.NewField("segment", stt.KindString, ""),
			}, stt.GranMinute, stt.SpatCellStreet, "traffic")
		},
	},
	TypeTrain: {
		themes: []string{"traffic", "transit"}, frequencyHz: 1.0 / 60,
		tgran: stt.GranMinute, sgran: stt.SpatCellCity,
		schema: func(int) *stt.Schema {
			return stt.MustSchema([]stt.Field{
				stt.NewField("line", stt.KindString, ""),
				stt.NewField("delay_min", stt.KindFloat, ""),
				stt.NewField("cancelled", stt.KindBool, ""),
			}, stt.GranMinute, stt.SpatCellCity, "traffic", "transit")
		},
	},
}

// Profile returns the frequency, granularities and themes of a sensor class.
func Profile(t Type) (frequencyHz float64, tg stt.TemporalGranularity, sg stt.SpatialGranularity, themes []string, err error) {
	p, ok := profiles[t]
	if !ok {
		return 0, 0, 0, nil, fmt.Errorf("sensor: unknown sensor type %q", t)
	}
	return p.frequencyHz, p.tgran, p.sgran, p.themes, nil
}

// SchemaFor returns the schema a sensor of the given class and unit variant
// produces.
func SchemaFor(t Type, variant int) (*stt.Schema, error) {
	p, ok := profiles[t]
	if !ok {
		return nil, fmt.Errorf("sensor: unknown sensor type %q", t)
	}
	return p.schema(variant), nil
}
