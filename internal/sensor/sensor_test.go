package sensor

import (
	"strings"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/pubsub"
	"streamloader/internal/stt"
)

var t0 = time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)

func newSensor(t *testing.T, typ Type, variant int) *Sensor {
	t.Helper()
	s, err := New(Spec{
		ID: string(typ) + "-t", Type: typ,
		Location: geo.OsakaCenter, NodeID: "n1", Seed: 42, UnitVariant: variant,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseType(t *testing.T) {
	for _, typ := range AllTypes {
		got, err := ParseType(string(typ))
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ, got, err)
		}
	}
	if _, err := ParseType("seismometer"); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{ID: "x", Type: "bogus", Location: geo.OsakaCenter}); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := New(Spec{Type: TypeRain, Location: geo.OsakaCenter}); err == nil {
		t.Error("missing ID must fail")
	}
	if _, err := New(Spec{ID: "x", Type: TypeRain, Location: geo.Point{Lat: 99}}); err == nil {
		t.Error("invalid location must fail")
	}
	if _, err := New(Spec{ID: "x", Type: TypeRain, Location: geo.OsakaCenter, FrequencyHz: -1}); err == nil {
		t.Error("negative frequency must fail")
	}
}

func TestProfileAndSchemaFor(t *testing.T) {
	for _, typ := range AllTypes {
		f, tg, sg, themes, err := Profile(typ)
		if err != nil {
			t.Fatalf("Profile(%s): %v", typ, err)
		}
		if f <= 0 || len(themes) == 0 {
			t.Errorf("%s profile: f=%v themes=%v", typ, f, themes)
		}
		sc, err := SchemaFor(typ, 0)
		if err != nil {
			t.Fatalf("SchemaFor(%s): %v", typ, err)
		}
		if sc.TGran != tg || sc.SGran != sg {
			t.Errorf("%s schema granularities disagree with profile", typ)
		}
		if sc.NumFields() == 0 {
			t.Errorf("%s schema empty", typ)
		}
	}
	if _, _, _, _, err := Profile("bogus"); err == nil {
		t.Error("Profile(bogus) must fail")
	}
	if _, err := SchemaFor("bogus", 0); err == nil {
		t.Error("SchemaFor(bogus) must fail")
	}
}

func TestEverySensorTypeProducesValidTuples(t *testing.T) {
	for _, typ := range AllTypes {
		for variant := 0; variant < 3; variant++ {
			s := newSensor(t, typ, variant)
			ts := t0
			for i := 0; i < 50; i++ {
				tup := s.At(ts)
				if err := tup.Validate(); err != nil {
					t.Fatalf("%s variant %d reading %d invalid: %v", typ, variant, i, err)
				}
				if tup.Source != s.ID() {
					t.Fatalf("%s: source not set", typ)
				}
				if tup.Seq != uint64(i) {
					t.Fatalf("%s: seq %d != %d", typ, tup.Seq, i)
				}
				ts = ts.Add(s.Period())
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, typ := range AllTypes {
		a := newSensor(t, typ, 0)
		b := newSensor(t, typ, 0)
		ts := t0
		for i := 0; i < 20; i++ {
			ta, tb := a.At(ts), b.At(ts)
			for j := range ta.Values {
				if !ta.Values[j].Equal(tb.Values[j]) {
					t.Fatalf("%s: reading %d field %d differs: %v vs %v",
						typ, i, j, ta.Values[j], tb.Values[j])
				}
			}
			ts = ts.Add(a.Period())
		}
	}
}

func TestTemperatureDiurnalCycle(t *testing.T) {
	s := newSensor(t, TypeTemperature, 0) // celsius variant
	// Afternoon (14:00) must be warmer than pre-dawn (02:00) on average.
	var sum14, sum02 float64
	for day := 0; day < 5; day++ {
		base := t0.AddDate(0, 0, day)
		sum14 += s.At(base.Add(14 * time.Hour)).Values[0].AsFloat()
		sum02 += s.At(base.Add(26 * time.Hour)).Values[0].AsFloat()
	}
	if sum14 <= sum02 {
		t.Errorf("diurnal cycle broken: 14h avg %.1f <= 02h avg %.1f", sum14/5, sum02/5)
	}
}

func TestTemperatureUnitVariant(t *testing.T) {
	c := newSensor(t, TypeTemperature, 0)
	f := newSensor(t, TypeTemperature, 1)
	if c.Schema().Field(0).Unit != "celsius" {
		t.Error("variant 0 must be celsius")
	}
	if f.Schema().Field(0).Unit != "fahrenheit" {
		t.Error("variant 1 must be fahrenheit")
	}
	// A Fahrenheit reading of the same model must be numerically larger
	// (Osaka spring temperatures are far above -40).
	vc := c.At(t0.Add(12 * time.Hour)).Values[0].AsFloat()
	vf := f.At(t0.Add(12 * time.Hour)).Values[0].AsFloat()
	if vf < vc {
		t.Errorf("fahrenheit %v < celsius %v", vf, vc)
	}
}

func TestRainBurstsAndRiverResponse(t *testing.T) {
	rain := newSensor(t, TypeRain, 0)
	dry, wet := 0, 0
	ts := t0
	for i := 0; i < 2000; i++ {
		v := rain.At(ts).Values[0].AsFloat()
		if v > 0 {
			wet++
		} else {
			dry++
		}
		ts = ts.Add(rain.Period())
	}
	if wet == 0 || dry == 0 {
		t.Fatalf("rain model must alternate: wet=%d dry=%d", wet, dry)
	}
	if wet > dry {
		t.Errorf("rain should be the exception: wet=%d dry=%d", wet, dry)
	}

	river := newSensor(t, TypeRiverLevel, 0)
	minLevel, maxLevel := 1e9, -1e9
	ts = t0
	for i := 0; i < 2000; i++ {
		v := river.At(ts).Values[0].AsFloat()
		minLevel = min(minLevel, v)
		maxLevel = max(maxLevel, v)
		ts = ts.Add(river.Period())
	}
	if maxLevel-minLevel < 0.05 {
		t.Errorf("river level never responds to rain: range [%v, %v]", minLevel, maxLevel)
	}
	if minLevel < 1.0 {
		t.Errorf("river below baseline: %v", minLevel)
	}
}

func TestHumidityBounds(t *testing.T) {
	s := newSensor(t, TypeHumidity, 0)
	ts := t0
	for i := 0; i < 500; i++ {
		v := s.At(ts).Values[0].AsFloat()
		if v < 20 || v > 100 {
			t.Fatalf("humidity out of range: %v", v)
		}
		ts = ts.Add(s.Period())
	}
}

func TestTweetContent(t *testing.T) {
	s := newSensor(t, TypeTweet, 0)
	rainy := 0
	ts := t0
	for i := 0; i < 500; i++ {
		tup := s.At(ts)
		text := tup.Values[0].AsString()
		if text == "" || strings.Contains(text, "%s") {
			t.Fatalf("bad tweet text %q", text)
		}
		if strings.Contains(text, "rain") {
			rainy++
		}
		user := tup.Values[1].AsString()
		if !strings.HasPrefix(user, "user") {
			t.Fatalf("bad user %q", user)
		}
		if tup.Values[2].AsInt() < 0 {
			t.Fatal("negative retweets")
		}
		ts = ts.Add(s.Period())
	}
	if rainy == 0 {
		t.Error("rain topic never appears in 500 tweets")
	}
}

func TestTrafficRushHour(t *testing.T) {
	s := newSensor(t, TypeTraffic, 0)
	var rush, night float64
	for day := 0; day < 5; day++ {
		base := t0.AddDate(0, 0, day)
		rush += s.At(base.Add(8 * time.Hour)).Values[0].AsFloat()
		night += s.At(base.Add(27 * time.Hour)).Values[0].AsFloat() // 03:00 next day
	}
	if rush <= night {
		t.Errorf("rush hour congestion %.2f <= night %.2f", rush/5, night/5)
	}
}

func TestTrainDelays(t *testing.T) {
	s := newSensor(t, TypeTrain, 0)
	delayed, cancelled := 0, 0
	ts := t0
	for i := 0; i < 1000; i++ {
		tup := s.At(ts)
		if tup.Values[1].AsFloat() > 0 {
			delayed++
		}
		if tup.Values[2].AsBool() {
			cancelled++
		}
		ts = ts.Add(s.Period())
	}
	if delayed == 0 {
		t.Error("no delays in 1000 readings")
	}
	if cancelled == 0 || cancelled > 100 {
		t.Errorf("cancellations = %d, want rare but present", cancelled)
	}
}

func TestEmit(t *testing.T) {
	s := newSensor(t, TypeTemperature, 0)
	var count int
	s.Emit(t0, t0.Add(time.Hour), func(tup *stt.Tuple) bool {
		count++
		return true
	})
	if count != 60 { // one per minute
		t.Errorf("emitted %d tuples in an hour, want 60", count)
	}
	// Early stop.
	count = 0
	s.Emit(t0, t0.Add(time.Hour), func(*stt.Tuple) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop at %d, want 10", count)
	}
}

func TestMeta(t *testing.T) {
	s := newSensor(t, TypeRain, 0)
	m := s.Meta()
	if m.ID != s.ID() || m.Type != "rain" || m.Schema != s.Schema() {
		t.Errorf("meta = %+v", m)
	}
	if m.FrequencyHz != 1.0/60 {
		t.Errorf("frequency = %v", m.FrequencyHz)
	}
	if len(m.Themes) != 2 {
		t.Errorf("themes = %v", m.Themes)
	}
}

func TestFrequencyOverride(t *testing.T) {
	s, err := New(Spec{
		ID: "fast", Type: TypeTemperature, Location: geo.OsakaCenter,
		FrequencyHz: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Period() != 100*time.Millisecond {
		t.Errorf("period = %v", s.Period())
	}
}

func TestBuildFleet(t *testing.T) {
	cfg := FleetConfig{
		Region: geo.Osaka,
		Counts: DefaultCounts(),
		Nodes:  []string{"n1", "n2", "n3"},
		Seed:   7,
	}
	sensors, err := BuildFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, n := range cfg.Counts {
		want += n
	}
	if len(sensors) != want {
		t.Fatalf("fleet size = %d, want %d", len(sensors), want)
	}
	ids := map[string]bool{}
	nodes := map[string]int{}
	for _, s := range sensors {
		if ids[s.ID()] {
			t.Fatalf("duplicate sensor ID %s", s.ID())
		}
		ids[s.ID()] = true
		m := s.Meta()
		if !cfg.Region.Contains(m.Location) {
			t.Errorf("%s placed outside region: %v", s.ID(), m.Location)
		}
		nodes[m.NodeID]++
	}
	if len(nodes) != 3 {
		t.Errorf("sensors must spread over all nodes: %v", nodes)
	}

	// Reproducibility: same seed, same placement.
	again, err := BuildFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sensors {
		if sensors[i].Meta().Location != again[i].Meta().Location {
			t.Fatalf("fleet not reproducible at %d", i)
		}
	}
}

func TestBuildFleetValidation(t *testing.T) {
	if _, err := BuildFleet(FleetConfig{Region: geo.Osaka}); err == nil {
		t.Error("no nodes must fail")
	}
	bad := geo.Rect{Min: geo.Point{Lat: 99}, Max: geo.Point{Lat: 100}}
	if _, err := BuildFleet(FleetConfig{Region: bad, Nodes: []string{"n"}}); err == nil {
		t.Error("invalid region must fail")
	}
}

func TestPublishFleet(t *testing.T) {
	b := pubsub.NewBroker("test")
	sensors, err := BuildFleet(FleetConfig{
		Region: geo.Osaka, Counts: map[Type]int{TypeRain: 3}, Nodes: []string{"n1"}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := PublishFleet(b, sensors); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 3 {
		t.Errorf("broker count = %d", b.Count())
	}
	got := b.Discover(pubsub.Query{Type: "rain"})
	if len(got) != 3 {
		t.Errorf("discover = %d", len(got))
	}
}
