package sensor

import (
	"fmt"
	"math/rand"

	"streamloader/internal/geo"
	"streamloader/internal/pubsub"
)

// FleetConfig describes a mixed population of sensors spread over a region,
// as plugged into the demo network (walkthrough P3: "it is easy to
// plug-and-play new sensors to the network").
type FleetConfig struct {
	// Region is the area sensors are scattered over.
	Region geo.Rect
	// Counts maps sensor class to the number of instances.
	Counts map[Type]int
	// Nodes are the network node IDs sensors are assigned to, round-robin.
	Nodes []string
	// Seed drives placement and the per-sensor generator seeds.
	Seed int64
}

// DefaultCounts is a representative mixed fleet for the Osaka scenario.
func DefaultCounts() map[Type]int {
	return map[Type]int{
		TypeTemperature: 6,
		TypeHumidity:    4,
		TypeRain:        5,
		TypeWind:        2,
		TypePressure:    1,
		TypeRiverLevel:  2,
		TypeTweet:       3,
		TypeTraffic:     4,
		TypeTrain:       1,
	}
}

// BuildFleet constructs the sensors of a fleet. Sensors are named
// "<type>-<n>" and receive deterministic seeds derived from the fleet seed.
func BuildFleet(cfg FleetConfig) ([]*Sensor, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("sensor: fleet needs at least one node")
	}
	if !cfg.Region.Valid() {
		return nil, fmt.Errorf("sensor: invalid fleet region %v", cfg.Region)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*Sensor
	node := 0
	// Iterate classes in stable order so fleets are reproducible.
	for _, typ := range AllTypes {
		n := cfg.Counts[typ]
		for i := 0; i < n; i++ {
			loc := geo.Point{
				Lat: cfg.Region.Min.Lat + rng.Float64()*(cfg.Region.Max.Lat-cfg.Region.Min.Lat),
				Lon: cfg.Region.Min.Lon + rng.Float64()*(cfg.Region.Max.Lon-cfg.Region.Min.Lon),
			}
			s, err := New(Spec{
				ID:          fmt.Sprintf("%s-%d", typ, i+1),
				Type:        typ,
				Location:    loc,
				NodeID:      cfg.Nodes[node%len(cfg.Nodes)],
				Seed:        cfg.Seed + int64(len(out))*7919,
				UnitVariant: i,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, s)
			node++
		}
	}
	return out, nil
}

// PublishFleet publishes every sensor of the fleet to the broker.
func PublishFleet(b *pubsub.Broker, sensors []*Sensor) error {
	for _, s := range sensors {
		if err := b.Publish(s.Meta()); err != nil {
			return fmt.Errorf("sensor: publishing %s: %w", s.ID(), err)
		}
	}
	return nil
}
