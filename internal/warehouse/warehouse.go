// Package warehouse is StreamLoader's stand-in for the NICT Event Data
// Warehouse [6] the paper's dataflows load into: an in-memory event store
// indexed along the three STT dimensions — time, space and theme — with a
// query API suited to the "further analysis" the paper delegates to it.
//
// The store is sharded: events are partitioned by source hash across N
// power-of-two shards, each with its own lock and time/space/theme/source
// indexes, so concurrent producers of distinct sources never contend.
// AppendBatch groups a batch per shard and takes each shard lock once,
// which is the executor's preferred ingest path. Queries fan out across
// shards concurrently and merge shard results in event-time order.
//
// Events append to per-source segments ordered by event time; a spatial
// grid index and a theme inverted index accelerate the corresponding query
// constraints. Queries combine a time range, a region, a theme set and an
// optional condition over the payload.
package warehouse

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// gridCellDeg is the spatial index resolution (~1.1 km cells).
const gridCellDeg = 0.01

// DefaultShards is the shard count New uses; NewSharded overrides it.
const DefaultShards = 16

// Event is one stored STT event.
type Event struct {
	// Seq is the warehouse-assigned insertion sequence.
	Seq uint64
	// Tuple is the stored event.
	Tuple *stt.Tuple
}

// Query selects stored events. Zero-valued constraints match everything.
type Query struct {
	// From/To bound the event time (inclusive from, exclusive to).
	From, To time.Time
	// Region bounds the event position.
	Region *geo.Rect
	// Themes restricts to events carrying one of the themes.
	Themes []string
	// Sources restricts to specific producing sensors/operations.
	Sources []string
	// Cond is an optional payload condition; it is compiled lazily per
	// schema encountered, so heterogeneous events can coexist.
	Cond string
	// Limit caps the result size (0 = unlimited).
	Limit int
}

// sourceSeed keys the shard hash; shared so every warehouse routes a given
// source to the same shard index for a given shard count.
var sourceSeed = maphash.MakeSeed()

// Warehouse is the STT event store. Safe for concurrent use.
type Warehouse struct {
	shards []*shard
	mask   uint64

	nextID  atomic.Uint64
	count   atomic.Int64
	evicted atomic.Uint64

	// retMu serializes retention changes and global compactions, which
	// need every shard lock (always taken in shard order).
	retMu     sync.Mutex
	maxEvents atomic.Int64
}

// New creates an empty warehouse with DefaultShards shards.
func New() *Warehouse { return NewSharded(DefaultShards) }

// NewSharded creates an empty warehouse with n shards, rounded up to a
// power of two; n < 1 falls back to DefaultShards. One shard degenerates
// to the original single-lock store.
func NewSharded(n int) *Warehouse {
	if n < 1 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	w := &Warehouse{shards: make([]*shard, pow), mask: uint64(pow - 1)}
	for i := range w.shards {
		w.shards[i] = newShard()
	}
	return w
}

// NumShards returns the shard count.
func (w *Warehouse) NumShards() int { return len(w.shards) }

// shardFor routes a source to its shard. Hashing by source keeps each
// sensor's per-source segment on one shard.
func (w *Warehouse) shardFor(source string) *shard {
	return w.shards[maphash.String(sourceSeed, source)&w.mask]
}

// Append stores one event. The tuple is retained as-is and must not be
// mutated afterwards (executor tuples are never mutated downstream).
func (w *Warehouse) Append(t *stt.Tuple) error {
	if t == nil || t.Schema == nil {
		return fmt.Errorf("warehouse: nil tuple")
	}
	s := w.shardFor(t.Source)
	s.mu.Lock()
	s.appendLocked(Event{Seq: w.nextID.Add(1) - 1, Tuple: t})
	w.count.Add(1)
	s.mu.Unlock()
	w.maybeCompact()
	return nil
}

// AppendBatch stores a batch of events, taking each involved shard lock
// once instead of once per tuple. The whole batch is validated up front:
// on error nothing is stored. Tuples are retained as-is, like Append.
func (w *Warehouse) AppendBatch(tuples []*stt.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	for _, t := range tuples {
		if t == nil || t.Schema == nil {
			return fmt.Errorf("warehouse: nil tuple in batch")
		}
	}
	// Reserve a contiguous Seq block so batch order survives grouping.
	base := w.nextID.Add(uint64(len(tuples))) - uint64(len(tuples))

	if len(w.shards) == 1 {
		s := w.shards[0]
		s.mu.Lock()
		for i, t := range tuples {
			s.appendLocked(Event{Seq: base + uint64(i), Tuple: t})
		}
		w.count.Add(int64(len(tuples)))
		s.mu.Unlock()
	} else {
		groups := map[*shard][]Event{}
		for i, t := range tuples {
			s := w.shardFor(t.Source)
			groups[s] = append(groups[s], Event{Seq: base + uint64(i), Tuple: t})
		}
		for s, evs := range groups {
			s.mu.Lock()
			for _, ev := range evs {
				s.appendLocked(ev)
			}
			w.count.Add(int64(len(evs)))
			s.mu.Unlock()
		}
	}
	w.maybeCompact()
	return nil
}

// SetRetention bounds the store to at most maxEvents events; the oldest (by
// event time) are evicted when the bound is exceeded. Zero disables
// retention (the default).
func (w *Warehouse) SetRetention(maxEvents int) {
	w.maxEvents.Store(int64(maxEvents))
	w.maybeCompact()
}

// Evicted returns how many events retention has dropped so far.
func (w *Warehouse) Evicted() uint64 { return w.evicted.Load() }

// Len returns the number of stored events.
func (w *Warehouse) Len() int { return int(w.count.Load()) }

// maybeCompact runs a global compaction when retention is enabled and the
// store exceeds the bound. Append paths call it after releasing their shard
// lock, so compaction can take every shard lock without deadlocking.
func (w *Warehouse) maybeCompact() {
	max := w.maxEvents.Load()
	if max <= 0 || w.count.Load() <= max {
		return
	}
	w.retMu.Lock()
	defer w.retMu.Unlock()
	max = w.maxEvents.Load()
	if max <= 0 || w.count.Load() <= max {
		return
	}
	w.compactAll(int(max))
}

// compactAll drops the globally-oldest events down to 3/4 of the bound
// (amortizing the index rebuilds). Caller holds retMu; every shard lock is
// taken, in order, for the duration.
func (w *Warehouse) compactAll(maxEvents int) {
	for _, s := range w.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range w.shards {
			s.mu.Unlock()
		}
	}()

	total := 0
	for _, s := range w.shards {
		total += len(s.events)
	}
	keep := maxEvents * 3 / 4
	if keep < 1 {
		keep = 1
	}
	if keep >= total {
		return
	}
	drop := total - keep

	// The globally-oldest events are a prefix of each shard's time index:
	// k-way walk the prefixes by (time, Seq) to apportion the drop count.
	pos := make([]int, len(w.shards))
	dropN := make([]int, len(w.shards))
	for i := 0; i < drop; i++ {
		best := -1
		var bestTime time.Time
		var bestSeq uint64
		for si, s := range w.shards {
			if pos[si] >= len(s.byTime) {
				continue
			}
			ev := s.events[s.byTime[pos[si]]]
			if best < 0 || ev.Tuple.Time.Before(bestTime) ||
				(ev.Tuple.Time.Equal(bestTime) && ev.Seq < bestSeq) {
				best, bestTime, bestSeq = si, ev.Tuple.Time, ev.Seq
			}
		}
		pos[best]++
		dropN[best]++
	}
	for si, s := range w.shards {
		s.dropOldestLocked(dropN[si])
	}
	w.evicted.Add(uint64(drop))
	// All shard locks are held, so no append races this adjustment.
	w.count.Add(int64(-drop))
}

// Select returns the events matching the query, in event-time order.
// Shards are queried concurrently and their (sorted) results merged; a
// source-constrained query is routed only to the shards those sources
// hash to.
func (w *Warehouse) Select(q Query) ([]Event, error) {
	shards := w.shards
	if len(q.Sources) > 0 && len(w.shards) > 1 {
		seen := make(map[*shard]bool, len(q.Sources))
		routed := make([]*shard, 0, len(q.Sources))
		for _, src := range q.Sources {
			if s := w.shardFor(src); !seen[s] {
				seen[s] = true
				routed = append(routed, s)
			}
		}
		shards = routed
	}
	parts := make([][]Event, len(shards))
	errs := make([]error, len(shards))
	if len(shards) == 1 {
		parts[0], errs[0] = shards[0].selectQ(q)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(shards))
		for i, s := range shards {
			go func() {
				defer wg.Done()
				parts[i], errs[i] = s.selectQ(q)
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeEvents(parts, q.Limit), nil
}

// mergeEvents k-way merges per-shard results already sorted by
// (time, Seq), honoring the limit.
func mergeEvents(parts [][]Event, limit int) []Event {
	nonEmpty := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty = append(nonEmpty, p)
			total += len(p)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		out := nonEmpty[0]
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	if limit > 0 && total > limit {
		total = limit
	}
	out := make([]Event, 0, total)
	pos := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for i, p := range nonEmpty {
			if pos[i] >= len(p) {
				continue
			}
			if best < 0 || eventLess(p[pos[i]], nonEmpty[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, nonEmpty[best][pos[best]])
		pos[best]++
	}
	return out
}

func eventLess(a, b Event) bool {
	if !a.Tuple.Time.Equal(b.Tuple.Time) {
		return a.Tuple.Time.Before(b.Tuple.Time)
	}
	return a.Seq < b.Seq
}

// Count returns the number of matching events without materializing them.
func (w *Warehouse) Count(q Query) (int, error) {
	evs, err := w.Select(q)
	if err != nil {
		return 0, err
	}
	return len(evs), nil
}

// Stats summarizes the warehouse content for the monitoring UI.
type Stats struct {
	Events   int            `json:"events"`
	Sources  int            `json:"sources"`
	Themes   map[string]int `json:"themes"`
	Earliest time.Time      `json:"earliest"`
	Latest   time.Time      `json:"latest"`
}

// Stats computes the summary, folding every shard's contribution.
func (w *Warehouse) Stats() Stats {
	st := Stats{Themes: map[string]int{}}
	for _, s := range w.shards {
		s.stats(&st)
	}
	return st
}

// Sink adapts the warehouse to the executor's Sink interface. It also
// implements the executor's batch-accept capability, so the executor's
// buffering sink wrapper can route whole batches to AppendBatch.
type Sink struct {
	W *Warehouse
}

// Accept appends the tuple.
func (s Sink) Accept(t *stt.Tuple) error { return s.W.Append(t) }

// AcceptBatch appends a batch with one lock round-trip per shard.
func (s Sink) AcceptBatch(tuples []*stt.Tuple) error { return s.W.AppendBatch(tuples) }

// Close is a no-op; the warehouse outlives deployments.
func (s Sink) Close() error { return nil }
