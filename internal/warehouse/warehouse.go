package warehouse

import (
	"container/heap"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// gridCellDeg is the spatial index resolution (~1.1 km cells).
const gridCellDeg = 0.01

// DefaultShards is the shard count New uses; Config.Shards overrides it.
const DefaultShards = 16

// DefaultSegmentEvents is the per-segment event bound before a shard
// rotates to a fresh segment; Config.SegmentEvents overrides it.
const DefaultSegmentEvents = 4096

// DefaultSegmentSpan is the per-segment time-envelope bound before a shard
// rotates to a fresh segment; Config.SegmentSpan overrides it.
const DefaultSegmentSpan = time.Hour

// Config sizes a warehouse. The zero value of any field selects its
// default.
type Config struct {
	// Shards is the shard count, rounded up to a power of two.
	Shards int
	// SegmentEvents bounds how many events one segment holds before the
	// shard rotates to a fresh one.
	SegmentEvents int
	// SegmentSpan bounds the event-time envelope one segment covers before
	// the shard rotates to a fresh one.
	SegmentSpan time.Duration
}

// Event is one stored STT event.
type Event struct {
	// Seq is the warehouse-assigned insertion sequence.
	Seq uint64
	// Tuple is the stored event.
	Tuple *stt.Tuple
}

// Query selects stored events. Zero-valued constraints match everything.
type Query struct {
	// From/To bound the event time (inclusive from, exclusive to).
	From, To time.Time
	// Region bounds the event position.
	Region *geo.Rect
	// Themes restricts to events carrying one of the themes.
	Themes []string
	// Sources restricts to specific producing sensors/operations.
	Sources []string
	// Cond is an optional payload condition; it is compiled lazily per
	// schema encountered, so heterogeneous events can coexist.
	Cond string
	// Limit caps the result size (0 = unlimited).
	Limit int
}

// QueryStats reports how segment pruning served one query: Scanned segments
// had their indexes consulted, Pruned segments were skipped outright because
// their time envelope missed the query window.
type QueryStats struct {
	SegmentsScanned int `json:"segments_scanned"`
	SegmentsPruned  int `json:"segments_pruned"`
}

// sourceSeed keys the shard hash; shared so every warehouse routes a given
// source to the same shard index for a given shard count.
var sourceSeed = maphash.MakeSeed()

// Warehouse is the STT event store. Safe for concurrent use.
type Warehouse struct {
	shards []*shard
	mask   uint64

	nextID  atomic.Uint64
	count   atomic.Int64
	evicted atomic.Uint64

	// segDrops/segTrims count retention work units: segments dropped whole
	// off the cold end versus boundary segments trimmed per event.
	segDrops atomic.Uint64
	segTrims atomic.Uint64

	// retMu serializes retention changes and global compactions, which
	// need every shard lock (always taken in shard order).
	retMu     sync.Mutex
	maxEvents atomic.Int64
}

// New creates an empty warehouse with the default configuration.
func New() *Warehouse { return NewWithConfig(Config{}) }

// NewSharded creates an empty warehouse with n shards, rounded up to a
// power of two; n < 1 falls back to DefaultShards. One shard degenerates
// to a single-lock store.
func NewSharded(n int) *Warehouse { return NewWithConfig(Config{Shards: n}) }

// NewWithConfig creates an empty warehouse sized by cfg; zero fields take
// their defaults.
func NewWithConfig(cfg Config) *Warehouse {
	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	if cfg.SegmentEvents < 1 {
		cfg.SegmentEvents = DefaultSegmentEvents
	}
	if cfg.SegmentSpan <= 0 {
		cfg.SegmentSpan = DefaultSegmentSpan
	}
	pow := 1
	for pow < cfg.Shards {
		pow <<= 1
	}
	w := &Warehouse{shards: make([]*shard, pow), mask: uint64(pow - 1)}
	lim := segLimits{maxEvents: cfg.SegmentEvents, maxSpan: cfg.SegmentSpan}
	for i := range w.shards {
		w.shards[i] = newShard(lim)
	}
	return w
}

// NumShards returns the shard count.
func (w *Warehouse) NumShards() int { return len(w.shards) }

// shardFor routes a source to its shard. Hashing by source keeps each
// sensor's stream on one shard.
func (w *Warehouse) shardFor(source string) *shard {
	return w.shards[maphash.String(sourceSeed, source)&w.mask]
}

// Append stores one event. The tuple is retained as-is and must not be
// mutated afterwards (executor tuples are never mutated downstream).
func (w *Warehouse) Append(t *stt.Tuple) error {
	if t == nil || t.Schema == nil {
		return fmt.Errorf("warehouse: nil tuple")
	}
	s := w.shardFor(t.Source)
	s.mu.Lock()
	s.appendLocked(Event{Seq: w.nextID.Add(1) - 1, Tuple: t})
	w.count.Add(1)
	s.mu.Unlock()
	w.maybeCompact()
	return nil
}

// AppendBatch stores a batch of events, taking each involved shard lock
// once instead of once per tuple. The whole batch is validated up front:
// on error nothing is stored. Tuples are retained as-is, like Append.
func (w *Warehouse) AppendBatch(tuples []*stt.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	for _, t := range tuples {
		if t == nil || t.Schema == nil {
			return fmt.Errorf("warehouse: nil tuple in batch")
		}
	}
	// Reserve a contiguous Seq block so batch order survives grouping.
	base := w.nextID.Add(uint64(len(tuples))) - uint64(len(tuples))

	if len(w.shards) == 1 {
		s := w.shards[0]
		s.mu.Lock()
		for i, t := range tuples {
			s.appendLocked(Event{Seq: base + uint64(i), Tuple: t})
		}
		w.count.Add(int64(len(tuples)))
		s.mu.Unlock()
	} else {
		groups := map[*shard][]Event{}
		for i, t := range tuples {
			s := w.shardFor(t.Source)
			groups[s] = append(groups[s], Event{Seq: base + uint64(i), Tuple: t})
		}
		for s, evs := range groups {
			s.mu.Lock()
			for _, ev := range evs {
				s.appendLocked(ev)
			}
			w.count.Add(int64(len(evs)))
			s.mu.Unlock()
		}
	}
	w.maybeCompact()
	return nil
}

// SetRetention bounds the store to at most maxEvents events; the oldest (by
// event time) are evicted when the bound is exceeded. Zero disables
// retention (the default).
func (w *Warehouse) SetRetention(maxEvents int) {
	w.maxEvents.Store(int64(maxEvents))
	w.maybeCompact()
}

// Evicted returns how many events retention has dropped so far.
func (w *Warehouse) Evicted() uint64 { return w.evicted.Load() }

// Len returns the number of stored events.
func (w *Warehouse) Len() int { return int(w.count.Load()) }

// maybeCompact runs a global compaction when retention is enabled and the
// store exceeds the bound. Append paths call it after releasing their shard
// lock, so compaction can take every shard lock without deadlocking.
func (w *Warehouse) maybeCompact() {
	max := w.maxEvents.Load()
	if max <= 0 || w.count.Load() <= max {
		return
	}
	w.retMu.Lock()
	defer w.retMu.Unlock()
	max = w.maxEvents.Load()
	if max <= 0 || w.count.Load() <= max {
		return
	}
	w.compactAll(int(max))
}

// compactAll drops the globally-oldest events down to 3/4 of the bound
// (amortizing the boundary trims). Whole cold segments fall off in O(1)
// each — no index is rebuilt — and only the segments straddling the cutoff
// pay a per-event trim. Caller holds retMu; every shard lock is taken, in
// order, for the duration.
func (w *Warehouse) compactAll(maxEvents int) {
	for _, s := range w.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range w.shards {
			s.mu.Unlock()
		}
	}()

	total := 0
	for _, s := range w.shards {
		total += s.count
	}
	keep := maxEvents * 3 / 4
	if keep < 1 {
		keep = 1
	}
	if keep >= total {
		return
	}
	drop := total - keep

	// The globally-oldest events form a prefix of each segment's time
	// index: walk the segment prefixes by (time, Seq) to apportion the drop
	// count. A min-heap orders segment cursors by their head event, and the
	// coldest cursor is consumed in chunks — its whole remainder when that
	// precedes every other head (the common case for sealed history), or
	// the binary-searched prefix strictly before the next head — so the
	// walk costs O(segments · log segments), not O(drop · segments), even
	// when out-of-order segments overlap the cold end.
	var cursors []*segCursor
	h := &cursorHeap{}
	for _, s := range w.shards {
		for _, seg := range s.segs {
			c := &segCursor{sh: s, seg: seg}
			cursors = append(cursors, c)
			*h = append(*h, c)
		}
	}
	heap.Init(h)

	remaining := drop
	for remaining > 0 && h.Len() > 0 {
		c := heap.Pop(h).(*segCursor)
		rest := c.seg.len() - c.pos
		if h.Len() == 0 {
			take := min(rest, remaining)
			c.pos += take
			remaining -= take
			continue
		}
		next := (*h)[0].head()
		if rest <= remaining && eventLess(c.tail(), next) {
			c.pos += rest // whole remainder is globally coldest: consume it all
			remaining -= rest
			continue
		}
		// Consume the prefix strictly before the next head in one chunk;
		// when the heads tie on time, this cursor still precedes by Seq,
		// so one event is always safe.
		chunk := sort.Search(rest, func(i int) bool {
			return !c.seg.events[c.seg.byTime[c.pos+i]].Tuple.Time.Before(next.Tuple.Time)
		})
		if chunk == 0 {
			chunk = 1
		}
		take := min(chunk, remaining)
		c.pos += take
		remaining -= take
		if c.pos < c.seg.len() {
			heap.Push(h, c)
		}
	}

	perShard := map[*shard]map[*segment]int{}
	for _, c := range cursors {
		if c.pos == 0 {
			continue
		}
		m := perShard[c.sh]
		if m == nil {
			m = map[*segment]int{}
			perShard[c.sh] = m
		}
		m[c.seg] = c.pos
	}
	for _, s := range w.shards {
		if m := perShard[s]; m != nil {
			whole, trims := s.applyDropsLocked(m)
			w.segDrops.Add(uint64(whole))
			w.segTrims.Add(uint64(trims))
		}
	}
	w.evicted.Add(uint64(drop))
	// All shard locks are held, so no append races this adjustment.
	w.count.Add(int64(-drop))
}

// segCursor tracks a compaction's progress through one segment's time
// index: events before pos are marked for eviction.
type segCursor struct {
	sh  *shard
	seg *segment
	pos int
}

func (c *segCursor) head() Event { return c.seg.events[c.seg.byTime[c.pos]] }
func (c *segCursor) tail() Event {
	return c.seg.events[c.seg.byTime[len(c.seg.byTime)-1]]
}

// cursorHeap is a min-heap of segment cursors ordered by head event.
type cursorHeap []*segCursor

func (h cursorHeap) Len() int           { return len(h) }
func (h cursorHeap) Less(i, j int) bool { return eventLess(h[i].head(), h[j].head()) }
func (h cursorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)        { *h = append(*h, x.(*segCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// routedShards returns the shards a query must visit: all of them, unless a
// source constraint pins it to the shards those sources hash to.
func (w *Warehouse) routedShards(q Query) []*shard {
	if len(q.Sources) == 0 || len(w.shards) == 1 {
		return w.shards
	}
	seen := make(map[*shard]bool, len(q.Sources))
	routed := make([]*shard, 0, len(q.Sources))
	for _, src := range q.Sources {
		if s := w.shardFor(src); !seen[s] {
			seen[s] = true
			routed = append(routed, s)
		}
	}
	return routed
}

// Select returns the events matching the query, in event-time order.
// Shards are queried concurrently and their (sorted) results merged; a
// source-constrained query is routed only to the shards those sources
// hash to.
func (w *Warehouse) Select(q Query) ([]Event, error) {
	evs, _, err := w.SelectWithStats(q)
	return evs, err
}

// forEachShard runs fn once per shard, concurrently when there are several.
func forEachShard(shards []*shard, fn func(i int, s *shard)) {
	if len(shards) == 1 {
		fn(0, shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, s := range shards {
		go func() {
			defer wg.Done()
			fn(i, s)
		}()
	}
	wg.Wait()
}

// SelectWithStats is Select plus segment-pruning telemetry for the query.
func (w *Warehouse) SelectWithStats(q Query) ([]Event, QueryStats, error) {
	shards := w.routedShards(q)
	parts := make([][]Event, len(shards))
	scans := make([]segScan, len(shards))
	errs := make([]error, len(shards))
	forEachShard(shards, func(i int, s *shard) {
		parts[i], scans[i], errs[i] = s.selectQ(q)
	})
	var qs QueryStats
	for _, sc := range scans {
		qs.SegmentsScanned += sc.scanned
		qs.SegmentsPruned += sc.pruned
	}
	for _, err := range errs {
		if err != nil {
			return nil, qs, err
		}
	}
	return mergeEvents(parts, q.Limit), qs, nil
}

// mergeEvents k-way merges per-shard results already sorted by
// (time, Seq), honoring the limit.
func mergeEvents(parts [][]Event, limit int) []Event {
	nonEmpty := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty = append(nonEmpty, p)
			total += len(p)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		out := nonEmpty[0]
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	if limit > 0 && total > limit {
		total = limit
	}
	out := make([]Event, 0, total)
	pos := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for i, p := range nonEmpty {
			if pos[i] >= len(p) {
				continue
			}
			if best < 0 || eventLess(p[pos[i]], nonEmpty[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, nonEmpty[best][pos[best]])
		pos[best]++
	}
	return out
}

func eventLess(a, b Event) bool {
	if !a.Tuple.Time.Equal(b.Tuple.Time) {
		return a.Tuple.Time.Before(b.Tuple.Time)
	}
	return a.Seq < b.Seq
}

// Count returns the number of matching events without materializing them.
// Queries without a Cond or Limit take a fast path that sums per-segment
// counts — time-only constraints resolve entirely on the segment time
// indexes, never touching an event.
func (w *Warehouse) Count(q Query) (int, error) {
	if q.Cond != "" || q.Limit > 0 {
		evs, err := w.Select(q)
		if err != nil {
			return 0, err
		}
		return len(evs), nil
	}
	shards := w.routedShards(q)
	counts := make([]int, len(shards))
	forEachShard(shards, func(i int, s *shard) {
		counts[i], _ = s.countQ(q)
	})
	n := 0
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// Stats summarizes the warehouse content for the monitoring UI.
type Stats struct {
	Events   int            `json:"events"`
	Sources  int            `json:"sources"`
	Themes   map[string]int `json:"themes"`
	Earliest time.Time      `json:"earliest"`
	Latest   time.Time      `json:"latest"`
	// Segments is the live time-partition count across all shards;
	// SegmentsDropped counts whole segments retention has aged out.
	Segments        int    `json:"segments"`
	SegmentsDropped uint64 `json:"segments_dropped"`
}

// Stats computes the summary, folding every shard's contribution.
func (w *Warehouse) Stats() Stats {
	st := Stats{Themes: map[string]int{}}
	for _, s := range w.shards {
		s.stats(&st)
	}
	st.SegmentsDropped = w.segDrops.Load()
	return st
}

// Sink adapts the warehouse to the executor's Sink interface. It also
// implements the executor's batch-accept capability, so the executor's
// buffering sink wrapper can route whole batches to AppendBatch.
type Sink struct {
	W *Warehouse
}

// Accept appends the tuple.
func (s Sink) Accept(t *stt.Tuple) error { return s.W.Append(t) }

// AcceptBatch appends a batch with one lock round-trip per shard.
func (s Sink) AcceptBatch(tuples []*stt.Tuple) error { return s.W.AppendBatch(tuples) }

// Close is a no-op; the warehouse outlives deployments.
func (s Sink) Close() error { return nil }
