// Package warehouse is StreamLoader's stand-in for the NICT Event Data
// Warehouse [6] the paper's dataflows load into: an in-memory event store
// indexed along the three STT dimensions — time, space and theme — with a
// query API suited to the "further analysis" the paper delegates to it.
//
// Events append to per-source segments ordered by event time; a spatial
// grid index and a theme inverted index accelerate the corresponding query
// constraints. Queries combine a time range, a region, a theme set and an
// optional condition over the payload.
package warehouse

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// gridCellDeg is the spatial index resolution (~1.1 km cells).
const gridCellDeg = 0.01

// Event is one stored STT event.
type Event struct {
	// Seq is the warehouse-assigned insertion sequence.
	Seq uint64
	// Tuple is the stored event.
	Tuple *stt.Tuple
}

// Query selects stored events. Zero-valued constraints match everything.
type Query struct {
	// From/To bound the event time (inclusive from, exclusive to).
	From, To time.Time
	// Region bounds the event position.
	Region *geo.Rect
	// Themes restricts to events carrying one of the themes.
	Themes []string
	// Sources restricts to specific producing sensors/operations.
	Sources []string
	// Cond is an optional payload condition; it is compiled lazily per
	// schema encountered, so heterogeneous events can coexist.
	Cond string
	// Limit caps the result size (0 = unlimited).
	Limit int
}

// Warehouse is the STT event store. Safe for concurrent use.
type Warehouse struct {
	mu        sync.RWMutex
	events    []Event
	nextID    uint64
	maxEvents int
	evicted   uint64

	// timeIndex: events sorted by event time (ordinal into events).
	// Maintained sorted on the fly; appends are near-ordered so insertion
	// position is found by binary search from the end.
	byTime []int
	// spatial grid -> event ordinals.
	byCell map[geo.Cell][]int
	// theme -> event ordinals.
	byTheme map[string][]int
	// source -> event ordinals.
	bySource map[string][]int
}

// New creates an empty warehouse.
func New() *Warehouse {
	return &Warehouse{
		byCell:   map[geo.Cell][]int{},
		byTheme:  map[string][]int{},
		bySource: map[string][]int{},
	}
}

// Append stores one event. The tuple is retained as-is and must not be
// mutated afterwards (executor tuples are never mutated downstream).
func (w *Warehouse) Append(t *stt.Tuple) error {
	if t == nil || t.Schema == nil {
		return fmt.Errorf("warehouse: nil tuple")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ord := len(w.events)
	w.events = append(w.events, Event{Seq: w.nextID, Tuple: t})
	w.nextID++

	// Insert into the time index, keeping it sorted. Appends usually come
	// in near time order, so scan from the end.
	pos := len(w.byTime)
	for pos > 0 && w.events[w.byTime[pos-1]].Tuple.Time.After(t.Time) {
		pos--
	}
	w.byTime = append(w.byTime, 0)
	copy(w.byTime[pos+1:], w.byTime[pos:])
	w.byTime[pos] = ord

	cell := geo.CellOf(geo.Point{Lat: t.Lat, Lon: t.Lon}, gridCellDeg)
	w.byCell[cell] = append(w.byCell[cell], ord)
	if t.Theme != "" {
		w.byTheme[t.Theme] = append(w.byTheme[t.Theme], ord)
	}
	for _, theme := range t.Schema.Themes {
		if theme != t.Theme {
			w.byTheme[theme] = append(w.byTheme[theme], ord)
		}
	}
	if t.Source != "" {
		w.bySource[t.Source] = append(w.bySource[t.Source], ord)
	}
	if w.maxEvents > 0 && len(w.events) > w.maxEvents {
		w.compactLocked()
	}
	return nil
}

// SetRetention bounds the store to at most maxEvents events; the oldest (by
// event time) are evicted when the bound is exceeded. Zero disables
// retention (the default).
func (w *Warehouse) SetRetention(maxEvents int) {
	w.mu.Lock()
	w.maxEvents = maxEvents
	if w.maxEvents > 0 && len(w.events) > w.maxEvents {
		w.compactLocked()
	}
	w.mu.Unlock()
}

// Evicted returns how many events retention has dropped so far.
func (w *Warehouse) Evicted() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.evicted
}

// compactLocked drops the oldest quarter of the store (amortizing the index
// rebuild) and rebuilds all indexes. Caller holds the write lock.
func (w *Warehouse) compactLocked() {
	keep := w.maxEvents * 3 / 4
	if keep < 1 {
		keep = 1
	}
	if keep >= len(w.byTime) {
		return
	}
	survivors := make([]Event, 0, keep)
	for _, ord := range w.byTime[len(w.byTime)-keep:] {
		survivors = append(survivors, w.events[ord])
	}
	w.evicted += uint64(len(w.events) - len(survivors))
	w.events = w.events[:0]
	w.byTime = w.byTime[:0]
	w.byCell = map[geo.Cell][]int{}
	w.byTheme = map[string][]int{}
	w.bySource = map[string][]int{}
	for i, ev := range survivors {
		t := ev.Tuple
		w.events = append(w.events, ev)
		w.byTime = append(w.byTime, i) // survivors come out time-sorted
		cell := geo.CellOf(geo.Point{Lat: t.Lat, Lon: t.Lon}, gridCellDeg)
		w.byCell[cell] = append(w.byCell[cell], i)
		if t.Theme != "" {
			w.byTheme[t.Theme] = append(w.byTheme[t.Theme], i)
		}
		for _, theme := range t.Schema.Themes {
			if theme != t.Theme {
				w.byTheme[theme] = append(w.byTheme[theme], i)
			}
		}
		if t.Source != "" {
			w.bySource[t.Source] = append(w.bySource[t.Source], i)
		}
	}
}

// Len returns the number of stored events.
func (w *Warehouse) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.events)
}

// candidateSet picks the cheapest index for the query and returns candidate
// ordinals (nil means "scan the time index"). Caller holds the read lock.
func (w *Warehouse) candidateSet(q Query) []int {
	best := []int(nil)
	bestN := len(w.events) + 1

	consider := func(ords []int) {
		if len(ords) < bestN {
			best, bestN = ords, len(ords)
		}
	}
	if len(q.Themes) > 0 {
		var merged []int
		for _, th := range q.Themes {
			merged = append(merged, w.byTheme[th]...)
		}
		sort.Ints(merged)
		merged = dedupeInts(merged)
		consider(merged)
	}
	if len(q.Sources) > 0 {
		var merged []int
		for _, s := range q.Sources {
			merged = append(merged, w.bySource[s]...)
		}
		sort.Ints(merged)
		merged = dedupeInts(merged)
		consider(merged)
	}
	if q.Region != nil {
		minCell := geo.CellOf(q.Region.Min, gridCellDeg)
		maxCell := geo.CellOf(q.Region.Max, gridCellDeg)
		nCells := (maxCell.X - minCell.X + 1) * (maxCell.Y - minCell.Y + 1)
		// Only use the grid when the region is small enough to enumerate.
		if nCells > 0 && nCells <= 10000 {
			var merged []int
			for x := minCell.X; x <= maxCell.X; x++ {
				for y := minCell.Y; y <= maxCell.Y; y++ {
					merged = append(merged, w.byCell[geo.Cell{X: x, Y: y}]...)
				}
			}
			sort.Ints(merged)
			consider(merged)
		}
	}
	if !q.From.IsZero() || !q.To.IsZero() {
		// Narrow the time index by binary search.
		lo, hi := 0, len(w.byTime)
		if !q.From.IsZero() {
			lo = sort.Search(len(w.byTime), func(i int) bool {
				return !w.events[w.byTime[i]].Tuple.Time.Before(q.From)
			})
		}
		if !q.To.IsZero() {
			hi = sort.Search(len(w.byTime), func(i int) bool {
				return !w.events[w.byTime[i]].Tuple.Time.Before(q.To)
			})
		}
		if hi < lo {
			hi = lo
		}
		consider(w.byTime[lo:hi])
	}
	if best == nil {
		return w.byTime
	}
	return best
}

func dedupeInts(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Select returns the events matching the query, in event-time order.
func (w *Warehouse) Select(q Query) ([]Event, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()

	conds := map[*stt.Schema]*expr.Compiled{}
	var out []Event
	for _, ord := range w.candidateSet(q) {
		ev := w.events[ord]
		t := ev.Tuple
		if !q.From.IsZero() && t.Time.Before(q.From) {
			continue
		}
		if !q.To.IsZero() && !t.Time.Before(q.To) {
			continue
		}
		if q.Region != nil && !q.Region.Contains(geo.Point{Lat: t.Lat, Lon: t.Lon}) {
			continue
		}
		if len(q.Themes) > 0 && !matchTheme(t, q.Themes) {
			continue
		}
		if len(q.Sources) > 0 && !containsString(q.Sources, t.Source) {
			continue
		}
		if q.Cond != "" {
			c, ok := conds[t.Schema]
			if !ok {
				compiled, err := expr.CompileBool(q.Cond, expr.Env{Schema: t.Schema})
				if err != nil {
					// The condition does not type-check against this event's
					// schema: it cannot match events of this shape.
					conds[t.Schema] = nil
					continue
				}
				c = compiled
				conds[t.Schema] = c
			}
			if c == nil {
				continue
			}
			ok2, err := c.EvalBool(expr.Scope{Tuple: t})
			if err != nil {
				return nil, fmt.Errorf("warehouse: evaluating %q: %w", q.Cond, err)
			}
			if !ok2 {
				continue
			}
		}
		out = append(out, ev)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Tuple.Time.Equal(out[j].Tuple.Time) {
			return out[i].Tuple.Time.Before(out[j].Tuple.Time)
		}
		return out[i].Seq < out[j].Seq
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

func matchTheme(t *stt.Tuple, themes []string) bool {
	for _, want := range themes {
		if t.Theme == want || t.Schema.HasTheme(want) {
			return true
		}
	}
	return false
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Count returns the number of matching events without materializing them.
func (w *Warehouse) Count(q Query) (int, error) {
	evs, err := w.Select(q)
	if err != nil {
		return 0, err
	}
	return len(evs), nil
}

// Stats summarizes the warehouse content for the monitoring UI.
type Stats struct {
	Events   int            `json:"events"`
	Sources  int            `json:"sources"`
	Themes   map[string]int `json:"themes"`
	Earliest time.Time      `json:"earliest"`
	Latest   time.Time      `json:"latest"`
}

// Stats computes the summary.
func (w *Warehouse) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := Stats{Events: len(w.events), Sources: len(w.bySource), Themes: map[string]int{}}
	for theme, ords := range w.byTheme {
		s.Themes[theme] = len(ords)
	}
	if len(w.byTime) > 0 {
		s.Earliest = w.events[w.byTime[0]].Tuple.Time
		s.Latest = w.events[w.byTime[len(w.byTime)-1]].Tuple.Time
	}
	return s
}

// Sink adapts the warehouse to the executor's Sink interface.
type Sink struct {
	W *Warehouse
}

// Accept appends the tuple.
func (s Sink) Accept(t *stt.Tuple) error { return s.W.Append(t) }

// Close is a no-op; the warehouse outlives deployments.
func (s Sink) Close() error { return nil }
