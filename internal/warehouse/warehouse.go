package warehouse

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/obs"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// gridCellDeg is the spatial index resolution (~1.1 km cells).
const gridCellDeg = 0.01

// DefaultShards is the shard count New uses; Config.Shards overrides it.
const DefaultShards = 16

// DefaultSegmentEvents is the per-segment event bound before a shard
// rotates to a fresh segment; Config.SegmentEvents overrides it.
const DefaultSegmentEvents = 4096

// DefaultSegmentSpan is the per-segment time-envelope bound before a shard
// rotates to a fresh segment; Config.SegmentSpan overrides it.
const DefaultSegmentSpan = time.Hour

// DefaultHotSegments is the per-shard sealed in-memory segment budget
// before cold segments spill to disk, when a DataDir is configured;
// Config.HotSegments overrides it.
const DefaultHotSegments = 16

// DefaultColdCacheBytes is the budget of the warehouse-wide LRU of decoded
// cold-segment chunks, when a DataDir is configured; Config.ColdCacheBytes
// overrides it.
const DefaultColdCacheBytes = 64 << 20

// Config sizes a warehouse. The zero value of any field selects its
// default.
type Config struct {
	// Shards is the shard count, rounded up to a power of two. When a
	// DataDir with an existing manifest is opened, the manifest's shard
	// count wins, so spilled segment files stay on the shard that wrote
	// them.
	Shards int
	// SegmentEvents bounds how many events one segment holds before the
	// shard rotates to a fresh one.
	SegmentEvents int
	// SegmentSpan bounds the event-time envelope one segment covers before
	// the shard rotates to a fresh one.
	SegmentSpan time.Duration

	// DataDir enables the durable subsystem: a per-shard write-ahead log
	// on the append path and spill-to-disk for cold segments. Empty keeps
	// the warehouse purely in-memory. Only Open honors it; NewWithConfig
	// always builds an in-memory store.
	DataDir string
	// Sync is the WAL fsync policy (default: persist.SyncInterval, which
	// coalesces syncs to at most one per SyncEvery).
	Sync persist.SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// HotSegments bounds the sealed in-memory segments per shard before
	// the oldest spill to disk. 0 means DefaultHotSegments; negative
	// disables spilling (WAL-only durability).
	HotSegments int
	// WALBytes is the per-WAL-file rotation threshold (default 4 MiB).
	WALBytes int64
	// ColdCacheBytes budgets the warehouse-wide LRU of decoded cold-segment
	// chunks, so repeated window queries over the same spilled history hit
	// RAM instead of re-reading files. 0 means DefaultColdCacheBytes;
	// negative disables the cache.
	ColdCacheBytes int64
	// SegmentFormat pins the segment-file format version new spills (and
	// compactions) are written in: 0 writes the latest
	// (persist.SegmentVersionLatest — the columnar v3 layout with
	// projected decode), persist.SegmentV2 the row layout with per-chunk
	// stats, persist.SegmentV1 the legacy row format. Open rejects other
	// values. Files of every version are always readable regardless of
	// this setting, so a store may mix them freely.
	SegmentFormat int
	// CompactBelow is the live-event threshold under which a cold segment
	// file counts as small enough to merge with its time-adjacent
	// neighbors: the background compactor rewrites runs of small or
	// time-overlapping cold files into one well-pruning file. 0 means
	// SegmentEvents/2; negative disables compaction.
	CompactBelow int

	// ViewCheckpointEvery is how many view state mutations may accumulate
	// before the publisher writes the view's bucketed partials to a
	// checkpoint file (durable mode only): a restart or a reconnecting
	// subscriber then resumes from the checkpoint plus a tail fold of the
	// newer events instead of a full history scan. 0 means
	// DefaultViewCheckpointEvery; negative disables automatic checkpoints
	// (a final one is still written on clean close and view release).
	ViewCheckpointEvery int

	// Obs is the metrics registry the warehouse reports its latency
	// histograms and stats snapshot into. Nil disables instrumentation
	// (every handle degrades to a nil no-op).
	Obs *obs.Registry
}

// DefaultViewCheckpointEvery is the view-mutation count between automatic
// view checkpoints; Config.ViewCheckpointEvery overrides it.
const DefaultViewCheckpointEvery = 4096

// Event is one stored STT event.
type Event struct {
	// Seq is the warehouse-assigned insertion sequence.
	Seq uint64
	// Tuple is the stored event.
	Tuple *stt.Tuple
}

// Query selects stored events. Zero-valued constraints match everything.
type Query struct {
	// From/To bound the event time (inclusive from, exclusive to).
	From, To time.Time
	// Region bounds the event position.
	Region *geo.Rect
	// Themes restricts to events carrying one of the themes.
	Themes []string
	// Sources restricts to specific producing sensors/operations.
	Sources []string
	// Cond is an optional payload condition; it is compiled lazily per
	// schema encountered, so heterogeneous events can coexist.
	Cond string
	// Limit caps the result size (0 = unlimited).
	Limit int
}

// QueryStats reports how segment pruning served one query: Scanned segments
// had their indexes consulted, Pruned segments were skipped outright because
// their time envelope missed the query window.
type QueryStats struct {
	SegmentsScanned int `json:"segments_scanned"`
	SegmentsPruned  int `json:"segments_pruned"`
	// ColdCacheHits/ColdCacheMisses count the cold-segment chunks this
	// query found decoded in the chunk cache versus read back from disk.
	ColdCacheHits   int `json:"cold_cache_hits"`
	ColdCacheMisses int `json:"cold_cache_misses"`
	// ColdHeaderOnly counts the cold segments an aggregate answered purely
	// from header stats — no chunk read, no event decoded.
	ColdHeaderOnly int `json:"cold_header_only"`
	// ColdChunkStats counts the cold-segment chunks an aggregate answered
	// from per-chunk sparse-index stats (v2+ files) — each one a chunk that
	// overlapped the query window yet was never read or decoded.
	ColdChunkStats int `json:"cold_chunk_stats_hits"`
	// ColdColumnsSkipped counts the column sections projected v3 decodes
	// skipped over — columns the query provably did not need.
	ColdColumnsSkipped int `json:"cold_columns_skipped"`
	// ColdBytesDecoded is how many event-block bytes this query's cold
	// reads actually parsed (whole chunks on v1/v2, only the projected
	// sections on v3; cache hits contribute nothing).
	ColdBytesDecoded int64 `json:"cold_bytes_decoded"`
}

// sourceHash routes a source name to a shard. It is FNV-1a rather than a
// seeded hash so the routing is stable across process restarts: a durable
// warehouse must send a recovering source's events to the shard whose WAL
// and spill files hold its history.
func sourceHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Warehouse is the STT event store. Safe for concurrent use.
type Warehouse struct {
	shards []*shard
	mask   uint64

	nextID  atomic.Uint64
	count   atomic.Int64
	evicted atomic.Uint64

	// segDrops/segTrims count retention work units: segments dropped whole
	// off the cold end versus boundary segments trimmed per event.
	segDrops atomic.Uint64
	segTrims atomic.Uint64

	// Durable-mode counters; pers is nil for an in-memory warehouse.
	pers        *persistState
	segsSpilled atomic.Uint64
	coldBytes   atomic.Int64
	recovered   atomic.Uint64

	// chunkStatsHits counts the cold chunks aggregate queries answered from
	// v2+ per-chunk stats; columnsSkipped the v3 column sections projected
	// reads skipped; compactions/segsCompacted count background cold-file
	// compactions and the files they merged away.
	chunkStatsHits atomic.Uint64
	columnsSkipped atomic.Uint64
	compactions    atomic.Uint64
	segsCompacted  atomic.Uint64

	// spill is the background spill worker, compact the background cold-file
	// compactor, and coldCache the LRU of decoded cold chunks; all nil for
	// an in-memory warehouse (coldCache also when disabled by config,
	// compact also when disabled by config).
	spill     *spiller
	compact   *compactor
	coldCache *persist.ChunkCache

	// segVersion is the segment-file format version spills and compactions
	// write (Config.SegmentFormat resolved).
	segVersion int

	// retMu serializes retention changes and global compactions, which
	// need every shard lock (always taken in shard order).
	retMu     sync.Mutex
	maxEvents atomic.Int64

	// views holds the registered materialized aggregate views (view.go).
	views viewRegistry

	// Standing-view maintenance counters: frames dropped whole (retention
	// cuts and window expiry), exact boundary subtractions, one-bucket
	// boundary rescans, checkpoints written, and registrations that
	// resumed from a checkpoint instead of backfilling.
	viewFrameDrops      atomic.Uint64
	viewSubtractions    atomic.Uint64
	viewBoundaryRescans atomic.Uint64
	viewCheckpoints     atomic.Uint64
	viewResumes         atomic.Uint64

	// nowFn is the clock windowed views and window-bounded aggregates read;
	// it is time.Now outside tests. The model checker pins it so window
	// expiry is deterministic.
	nowFn func() time.Time

	// viewCkptEvery is Config.ViewCheckpointEvery resolved (0 when
	// checkpoints are disabled or the warehouse is in-memory).
	viewCkptEvery int

	// obsReg is the configured metrics registry (nil when observability is
	// off); met holds the warehouse's latency histogram handles (obs.go).
	obsReg *obs.Registry
	met    whMetrics
}

// persistState carries the warehouse-global durable-mode state: the data
// directory and the manifest holding the retention watermark. The manifest
// is only written under every shard lock (compactions), so it needs no
// extra synchronization beyond retMu.
type persistState struct {
	dir      string
	manifest persist.Manifest
}

// New creates an empty warehouse with the default configuration.
func New() *Warehouse { return NewWithConfig(Config{}) }

// NewSharded creates an empty warehouse with n shards, rounded up to a
// power of two; n < 1 falls back to DefaultShards. One shard degenerates
// to a single-lock store.
func NewSharded(n int) *Warehouse { return NewWithConfig(Config{Shards: n}) }

// NewWithConfig creates an empty in-memory warehouse sized by cfg; zero
// fields take their defaults. The persistence fields (DataDir and friends)
// are ignored — Open is the entry point for a durable warehouse.
func NewWithConfig(cfg Config) *Warehouse {
	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	if cfg.SegmentEvents < 1 {
		cfg.SegmentEvents = DefaultSegmentEvents
	}
	if cfg.SegmentSpan <= 0 {
		cfg.SegmentSpan = DefaultSegmentSpan
	}
	pow := 1
	for pow < cfg.Shards {
		pow <<= 1
	}
	w := &Warehouse{shards: make([]*shard, pow), mask: uint64(pow - 1)}
	lim := segLimits{maxEvents: cfg.SegmentEvents, maxSpan: cfg.SegmentSpan}
	for i := range w.shards {
		w.shards[i] = newShard(lim)
		w.shards[i].idx = i
	}
	w.nowFn = time.Now
	switch {
	case cfg.ViewCheckpointEvery > 0:
		w.viewCkptEvery = cfg.ViewCheckpointEvery
	case cfg.ViewCheckpointEvery == 0:
		w.viewCkptEvery = DefaultViewCheckpointEvery
	}
	w.obsReg = cfg.Obs
	w.met = newWHMetrics(cfg.Obs)
	w.registerStatsCollector(cfg.Obs)
	return w
}

// now reads the warehouse clock (time.Now unless a test pinned it).
func (w *Warehouse) now() time.Time { return w.nowFn() }

// NumShards returns the shard count.
func (w *Warehouse) NumShards() int { return len(w.shards) }

// shardFor routes a source to its shard. Hashing by source keeps each
// sensor's stream on one shard.
func (w *Warehouse) shardFor(source string) *shard {
	return w.shards[sourceHash(source)&w.mask]
}

// Append stores one event. The tuple is retained as-is and must not be
// mutated afterwards (executor tuples are never mutated downstream). In
// durable mode the event is logged — and synced, per the fsync policy —
// before it becomes visible, so a returned nil means the event survives a
// crash.
func (w *Warehouse) Append(t *stt.Tuple) error {
	if t == nil || t.Schema == nil {
		return fmt.Errorf("warehouse: nil tuple")
	}
	t0 := w.met.append.Start()
	defer w.met.append.Since(t0)
	s := w.shardFor(t.Source)
	s.mu.Lock()
	ev := Event{Seq: w.nextID.Add(1) - 1, Tuple: t}
	if s.wal != nil {
		if err := s.wal.Append([]persist.Event{{Seq: ev.Seq, Tuple: t}}); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("warehouse: wal: %w", err)
		}
	}
	s.appendLocked(ev)
	w.count.Add(1)
	s.tapScratch[0] = ev
	s.dispatchTapLocked(w, s.tapScratch[:1])
	s.tapScratch[0] = Event{}
	s.mu.Unlock()
	w.throttleSpill()
	w.maybeCompact()
	return nil
}

// AppendBatch stores a batch of events, taking each involved shard lock
// once instead of once per tuple; in durable mode each shard's sub-batch
// is one WAL record and at most one fsync. The whole batch is validated up
// front: on a validation error nothing is stored. A WAL write failure also
// fails the call, but sub-batches already logged to other shards remain
// stored (and durable). Tuples are retained as-is, like Append.
func (w *Warehouse) AppendBatch(tuples []*stt.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	for _, t := range tuples {
		if t == nil || t.Schema == nil {
			return fmt.Errorf("warehouse: nil tuple in batch")
		}
	}
	t0 := w.met.append.Start()
	defer w.met.append.Since(t0)
	// Reserve a contiguous Seq block so batch order survives grouping.
	base := w.nextID.Add(uint64(len(tuples))) - uint64(len(tuples))

	if len(w.shards) == 1 {
		if err := w.appendShardBatch(w.shards[0], tuplesToEvents(tuples, base)); err != nil {
			return err
		}
	} else {
		groups := map[*shard][]Event{}
		for i, t := range tuples {
			s := w.shardFor(t.Source)
			groups[s] = append(groups[s], Event{Seq: base + uint64(i), Tuple: t})
		}
		for s, evs := range groups {
			if err := w.appendShardBatch(s, evs); err != nil {
				return err
			}
		}
	}
	w.throttleSpill()
	w.maybeCompact()
	return nil
}

func tuplesToEvents(tuples []*stt.Tuple, base uint64) []Event {
	evs := make([]Event, len(tuples))
	for i, t := range tuples {
		evs[i] = Event{Seq: base + uint64(i), Tuple: t}
	}
	return evs
}

// appendShardBatch stores one shard's slice of a batch under its lock,
// logging it first in durable mode. A WAL failure drops the whole
// sub-batch before any of it becomes visible.
func (w *Warehouse) appendShardBatch(s *shard, evs []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		pes := make([]persist.Event, len(evs))
		for i, ev := range evs {
			pes[i] = persist.Event{Seq: ev.Seq, Tuple: ev.Tuple}
		}
		if err := s.wal.Append(pes); err != nil {
			return fmt.Errorf("warehouse: wal: %w", err)
		}
	}
	for _, ev := range evs {
		s.appendLocked(ev)
	}
	w.count.Add(int64(len(evs)))
	s.dispatchTapLocked(w, evs)
	return nil
}

// SetRetention bounds the store to at most maxEvents events; the oldest (by
// event time) are evicted when the bound is exceeded. Zero disables
// retention (the default).
func (w *Warehouse) SetRetention(maxEvents int) {
	w.maxEvents.Store(int64(maxEvents))
	w.maybeCompact()
}

// Evicted returns how many events retention has dropped so far.
func (w *Warehouse) Evicted() uint64 { return w.evicted.Load() }

// Len returns the number of stored events.
func (w *Warehouse) Len() int { return int(w.count.Load()) }

// maybeCompact runs a global compaction when retention is enabled and the
// store exceeds the bound. Append paths call it after releasing their shard
// lock, so compaction can take every shard lock without deadlocking.
func (w *Warehouse) maybeCompact() {
	max := w.maxEvents.Load()
	if max <= 0 || w.count.Load() <= max {
		return
	}
	w.retMu.Lock()
	defer w.retMu.Unlock()
	max = w.maxEvents.Load()
	if max <= 0 || w.count.Load() <= max {
		return
	}
	w.compactAll(int(max))
	// Retention trims shrink cold files logically; nudge the file compactor
	// to fold the newly-small ones into their neighbors.
	if w.compact != nil {
		for _, s := range w.shards {
			w.compact.enqueue(s)
		}
	}
}

// compactAll drops the globally-oldest events down to 3/4 of the bound
// (amortizing the boundary trims). Whole cold segments fall off in O(1)
// each — an in-memory unlink or one file delete, no index rebuilt — and
// only the segments straddling the cutoff pay a per-event trim. In durable
// mode the eviction watermark is persisted to the manifest before any
// state changes, so a crash can never resurrect evicted events from the
// WAL or from spilled files. Caller holds retMu; every shard lock is
// taken, in order, for the duration.
func (w *Warehouse) compactAll(maxEvents int) {
	for _, s := range w.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range w.shards {
			s.mu.Unlock()
		}
	}()

	total := 0
	for _, s := range w.shards {
		total += s.count
	}
	keep := maxEvents * 3 / 4
	if keep < 1 {
		keep = 1
	}
	if keep >= total {
		return
	}
	drop := total - keep

	// The globally-oldest events form a prefix of each segment's time
	// index: walk the segment prefixes by (time, Seq) to apportion the drop
	// count. A min-heap orders segment cursors by their head event, and the
	// coldest cursor is consumed in chunks — its whole remainder when that
	// precedes every other head (the common case for sealed history), or
	// the binary-searched prefix strictly before the next head — so the
	// walk costs O(segments · log segments), not O(drop · segments), even
	// when out-of-order segments overlap the cold end. Spilled segments
	// join the walk by their envelope keys alone; only one that is
	// partially consumed (the boundary file) is read back from disk.
	var cursors []*segCursor
	h := &cursorHeap{}
	for _, s := range w.shards {
		for _, seg := range s.segs {
			c := &segCursor{sh: s, mem: seg}
			cursors = append(cursors, c)
			*h = append(*h, c)
		}
		for _, cs := range s.cold {
			c := &segCursor{sh: s, cold: cs}
			cursors = append(cursors, c)
			*h = append(*h, c)
		}
	}
	heap.Init(h)

	remaining := drop
	for remaining > 0 && h.Len() > 0 {
		c := heap.Pop(h).(*segCursor)
		if c.dead {
			continue
		}
		rest := c.length() - c.pos
		if h.Len() == 0 {
			take := min(rest, remaining)
			if c.cold != nil && take < rest {
				// Partial consumption needs per-event keys below; make
				// sure the boundary file is readable before committing.
				if c.cold.ensureLoaded() != nil {
					continue
				}
			}
			c.pos += take
			remaining -= take
			continue
		}
		next := (*h)[0].head()
		if rest <= remaining && c.tail().Less(next) {
			c.pos += rest // whole remainder is globally coldest: consume it all
			remaining -= rest
			continue
		}
		// Consume the prefix strictly before the next head in one chunk;
		// when the heads tie on time, this cursor still precedes by Seq,
		// so one event is always safe. For a cold cursor this loads the
		// file — it is the compaction boundary, so at most a couple of
		// files per compaction pay the read; an unreadable file is left
		// untouched (its events simply outlive the bound).
		if c.cold != nil {
			if c.cold.ensureLoaded() != nil {
				c.dead = true
				continue
			}
		}
		chunk := sort.Search(rest, func(i int) bool {
			return !c.timeAt(c.pos + i).Before(next.Time)
		})
		if chunk == 0 {
			chunk = 1
		}
		take := min(chunk, remaining)
		c.pos += take
		remaining -= take
		if c.pos < c.length() {
			heap.Push(h, c)
		}
	}

	// Actual evictions may fall short of the plan when an unreadable cold
	// file was skipped; count what really happens.
	dropped := 0
	anyDead := false
	var cut persist.Key
	for _, c := range cursors {
		anyDead = anyDead || c.dead
		if c.pos == 0 {
			continue
		}
		dropped += c.pos
		if k, ok := c.key(c.pos - 1); ok && cut.Less(k) {
			cut = k
		}
	}
	if dropped == 0 {
		return
	}
	// Persist the cut first: recovery re-applies any eviction the crash
	// interrupts below. The per-shard marks scope this cut to the records
	// this compaction could see — a straggler logged later may carry an
	// event time below the watermark yet must survive recovery. The cut is
	// paired with THIS compaction's marks and added to the manifest's cut
	// frontier rather than max-merged into a single watermark: an older,
	// higher watermark stays scoped by its own older marks, so stragglers
	// that arrived after it (and legitimately survive this compaction
	// despite sitting below it) are never swept at recovery. When an
	// unreadable cold file kept its (old) events, the cut computed from
	// the segments that did evict would cover them too, and the next Open
	// — with the file readable again — would delete events that visibly
	// survived; leave the manifest alone in that degraded case and let
	// the next clean compaction advance it (resurrecting this round's
	// evictions after a crash is recoverable, losing live events is not).
	if w.pers != nil {
		if !anyDead {
			marks := make([]persist.ShardMark, len(w.shards))
			for i, s := range w.shards {
				if s.wal != nil {
					p := s.wal.Position()
					marks[i] = persist.ShardMark{WALFile: p.File, WALOff: p.Off, SegGen: s.nextSegGen}
				}
			}
			w.pers.manifest.AddCut(persist.Cut{Watermark: cut, Marks: marks})
		}
		// Even a degraded (anyDead) eviction deletes cold files, so the
		// seq high-water mark must go durable regardless of whether a cut
		// was recorded. A failed manifest write is tolerable: eviction
		// proceeds, and the worst case after a crash is re-ingesting
		// events the next compaction re-evicts. The eviction counter bumps
		// on every eviction — cut or degraded — so view checkpoints taken
		// before it can never pass their fingerprint check.
		w.pers.manifest.Evictions++
		w.stampMaxSeq()
		_ = persist.SaveManifest(w.pers.dir, w.pers.manifest)
	}

	// Patch the standing views before the drops are applied below, while
	// the evicted events are still readable from memory: whole frames
	// below the cut fall off without a rescan, subtractable aggregates get
	// exact boundary deltas, and only a MIN/MAX boundary frame queues a
	// one-bucket rescan (view_trim.go).
	w.trimViews(cut, anyDead, cursors)

	perShard := map[*shard]map[*segment]int{}
	perShardCold := map[*shard]map[*coldSegment]int{}
	for _, c := range cursors {
		if c.pos == 0 {
			continue
		}
		if c.mem != nil {
			m := perShard[c.sh]
			if m == nil {
				m = map[*segment]int{}
				perShard[c.sh] = m
			}
			m[c.mem] = c.pos
		} else {
			m := perShardCold[c.sh]
			if m == nil {
				m = map[*coldSegment]int{}
				perShardCold[c.sh] = m
			}
			m[c.cold] = c.pos
		}
	}
	for _, s := range w.shards {
		mem, cold := perShard[s], perShardCold[s]
		if mem == nil && cold == nil {
			continue
		}
		whole, trims := s.applyDropsLocked(w, mem, cold)
		w.segDrops.Add(uint64(whole))
		w.segTrims.Add(uint64(trims))
		if s.wal != nil {
			// In-memory evictions may have raised the shard's minimum
			// live seq; let the WAL retire obsolete files.
			s.wal.DropObsolete(s.minLiveSeqLocked())
		}
	}
	w.evicted.Add(uint64(dropped))
	// All shard locks are held, so no append races this adjustment.
	w.count.Add(int64(-dropped))
}

// segCursor tracks a compaction's progress through one segment — exactly
// one of mem (in-memory) or cold (spilled) is set — in (time, Seq) order:
// events before pos are marked for eviction.
type segCursor struct {
	sh   *shard
	mem  *segment
	cold *coldSegment
	pos  int
	// dead marks a cold cursor whose file could not be read; it is
	// excluded from the walk and keeps its events.
	dead bool
}

func (c *segCursor) length() int {
	if c.mem != nil {
		return c.mem.len()
	}
	return c.cold.count
}

// key returns the eviction key of the i-th oldest event. For a cold
// segment, interior positions force a file load; ok is false if the file
// is unreadable.
func (c *segCursor) key(i int) (persist.Key, bool) {
	if c.mem != nil {
		return eventKey(c.mem.events[c.mem.byTime[i]]), true
	}
	return c.cold.keyAt(i)
}

func (c *segCursor) head() persist.Key {
	k, _ := c.key(c.pos)
	return k
}

func (c *segCursor) tail() persist.Key {
	k, _ := c.key(c.length() - 1)
	return k
}

// timeAt is key(i).Time for the binary-searched chunk consumption; the
// caller has already ensured cold segments are loaded.
func (c *segCursor) timeAt(i int) time.Time {
	if c.mem != nil {
		return c.mem.events[c.mem.byTime[i]].Tuple.Time
	}
	return c.cold.loaded[i].Tuple.Time
}

// cursorHeap is a min-heap of segment cursors ordered by head key.
type cursorHeap []*segCursor

func (h cursorHeap) Len() int           { return len(h) }
func (h cursorHeap) Less(i, j int) bool { return h[i].head().Less(h[j].head()) }
func (h cursorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)        { *h = append(*h, x.(*segCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// routedShards returns the shards a query must visit: all of them, unless a
// source constraint pins it to the shards those sources hash to.
func (w *Warehouse) routedShards(q Query) []*shard {
	if len(q.Sources) == 0 || len(w.shards) == 1 {
		return w.shards
	}
	seen := make(map[*shard]bool, len(q.Sources))
	routed := make([]*shard, 0, len(q.Sources))
	for _, src := range q.Sources {
		if s := w.shardFor(src); !seen[s] {
			seen[s] = true
			routed = append(routed, s)
		}
	}
	return routed
}

// Select returns the events matching the query, in event-time order.
// Shards are queried concurrently and their (sorted) results merged; a
// source-constrained query is routed only to the shards those sources
// hash to.
func (w *Warehouse) Select(q Query) ([]Event, error) {
	evs, _, err := w.SelectWithStats(q)
	return evs, err
}

// forEachShard runs fn once per shard, concurrently when there are several.
func forEachShard(shards []*shard, fn func(i int, s *shard)) {
	if len(shards) == 1 {
		fn(0, shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for i, s := range shards {
		go func() {
			defer wg.Done()
			fn(i, s)
		}()
	}
	wg.Wait()
}

// SelectWithStats is Select plus segment-pruning telemetry for the query.
func (w *Warehouse) SelectWithStats(q Query) ([]Event, QueryStats, error) {
	return w.SelectTraced(q, nil)
}

// shardSpan opens one per-shard trace span (nil trace → nil span) and, on
// close, annotates it with the shard's scan telemetry.
func shardSpan(tr *obs.Trace, s *shard) *obs.Span {
	sp := tr.Start("shard")
	sp.SetInt("shard", int64(s.idx))
	return sp
}

func endShardSpan(sp *obs.Span, sc segScan, events int) {
	if sp == nil {
		return
	}
	sp.SetInt("events", int64(events))
	sp.SetInt("segments_scanned", int64(sc.scanned))
	sp.SetInt("segments_pruned", int64(sc.pruned))
	sp.SetInt("cold_cache_hits", int64(sc.cacheHits))
	sp.SetInt("cold_cache_misses", int64(sc.cacheMisses))
	if sc.headerOnly > 0 {
		sp.SetInt("cold_header_only", int64(sc.headerOnly))
	}
	if sc.chunkStats > 0 {
		sp.SetInt("cold_chunk_stats_hits", int64(sc.chunkStats))
	}
	if sc.columnsSkipped > 0 {
		sp.SetInt("cold_columns_skipped", int64(sc.columnsSkipped))
	}
	if sc.bytesDecoded > 0 {
		sp.SetInt("cold_bytes_decoded", sc.bytesDecoded)
	}
	sp.End()
}

// SelectTraced is SelectWithStats recording, when tr is non-nil, one span
// per shard visited (with its scan telemetry as attributes) plus a merge
// span — the ?trace=1 explain path.
func (w *Warehouse) SelectTraced(q Query, tr *obs.Trace) ([]Event, QueryStats, error) {
	t0 := w.met.selectQ.Start()
	defer w.met.selectQ.Since(t0)
	shards := w.routedShards(q)
	parts := make([][]Event, len(shards))
	scans := make([]segScan, len(shards))
	errs := make([]error, len(shards))
	forEachShard(shards, func(i int, s *shard) {
		sp := shardSpan(tr, s)
		parts[i], scans[i], errs[i] = s.selectQ(q)
		endShardSpan(sp, scans[i], len(parts[i]))
	})
	var qs QueryStats
	for _, sc := range scans {
		qs.SegmentsScanned += sc.scanned
		qs.SegmentsPruned += sc.pruned
		qs.ColdCacheHits += sc.cacheHits
		qs.ColdCacheMisses += sc.cacheMisses
		qs.ColdColumnsSkipped += sc.columnsSkipped
		qs.ColdBytesDecoded += sc.bytesDecoded
	}
	w.columnsSkipped.Add(uint64(qs.ColdColumnsSkipped))
	for _, err := range errs {
		if err != nil {
			return nil, qs, err
		}
	}
	msp := tr.Start("merge")
	out := mergeEvents(parts, q.Limit)
	msp.SetInt("events", int64(len(out)))
	msp.End()
	return out, qs, nil
}

// mergeEvents k-way merges per-shard results already sorted by
// (time, Seq), honoring the limit.
func mergeEvents(parts [][]Event, limit int) []Event {
	nonEmpty := parts[:0]
	total := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty = append(nonEmpty, p)
			total += len(p)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		out := nonEmpty[0]
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	if limit > 0 && total > limit {
		total = limit
	}
	out := make([]Event, 0, total)
	pos := make([]int, len(nonEmpty))
	for len(out) < total {
		best := -1
		for i, p := range nonEmpty {
			if pos[i] >= len(p) {
				continue
			}
			if best < 0 || eventLess(p[pos[i]], nonEmpty[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, nonEmpty[best][pos[best]])
		pos[best]++
	}
	return out
}

func eventLess(a, b Event) bool {
	if !a.Tuple.Time.Equal(b.Tuple.Time) {
		return a.Tuple.Time.Before(b.Tuple.Time)
	}
	return a.Seq < b.Seq
}

// Count returns the number of matching events without materializing them.
// Queries without a Cond or Limit take a fast path that sums per-segment
// counts — time-only constraints resolve entirely on the segment time
// indexes, never touching an event.
func (w *Warehouse) Count(q Query) (int, error) {
	n, _, err := w.CountWithStats(q)
	return n, err
}

// CountWithStats is Count plus the segment-pruning and cold-cache telemetry
// of the counting pass.
func (w *Warehouse) CountWithStats(q Query) (int, QueryStats, error) {
	return w.CountTraced(q, nil)
}

// CountTraced is CountWithStats with optional per-shard tracing, mirroring
// SelectTraced.
func (w *Warehouse) CountTraced(q Query, tr *obs.Trace) (int, QueryStats, error) {
	if q.Cond != "" || q.Limit > 0 {
		evs, qs, err := w.SelectTraced(q, tr)
		return len(evs), qs, err
	}
	t0 := w.met.selectQ.Start()
	defer w.met.selectQ.Since(t0)
	shards := w.routedShards(q)
	counts := make([]int, len(shards))
	scans := make([]segScan, len(shards))
	errs := make([]error, len(shards))
	forEachShard(shards, func(i int, s *shard) {
		sp := shardSpan(tr, s)
		counts[i], scans[i], errs[i] = s.countQ(q)
		endShardSpan(sp, scans[i], counts[i])
	})
	var qs QueryStats
	n := 0
	for i, c := range counts {
		n += c
		qs.SegmentsScanned += scans[i].scanned
		qs.SegmentsPruned += scans[i].pruned
		qs.ColdCacheHits += scans[i].cacheHits
		qs.ColdCacheMisses += scans[i].cacheMisses
		qs.ColdColumnsSkipped += scans[i].columnsSkipped
		qs.ColdBytesDecoded += scans[i].bytesDecoded
	}
	w.columnsSkipped.Add(uint64(qs.ColdColumnsSkipped))
	for _, err := range errs {
		if err != nil {
			return 0, qs, err
		}
	}
	return n, qs, nil
}

// Stats summarizes the warehouse content for the monitoring UI.
type Stats struct {
	Events   int            `json:"events"`
	Sources  int            `json:"sources"`
	Themes   map[string]int `json:"themes"`
	Earliest time.Time      `json:"earliest"`
	Latest   time.Time      `json:"latest"`
	// Segments is the live time-partition count across all shards (cold
	// included); SegmentsDropped counts whole segments retention has aged
	// out.
	Segments        int    `json:"segments"`
	SegmentsDropped uint64 `json:"segments_dropped"`

	// Durable-mode telemetry. SegmentsCold is the live spilled-segment
	// count; SegmentsSpilled the cumulative spills; WALBytes/DiskBytes the
	// on-disk footprint (DiskBytes = WAL + segment files);
	// RecoveredEvents how many events the last Open brought back (WAL
	// replay plus re-registered spilled segments). All zero for an
	// in-memory warehouse.
	SegmentsCold    int    `json:"segments_cold"`
	SegmentsSpilled uint64 `json:"segments_spilled"`
	WALBytes        int64  `json:"wal_bytes"`
	DiskBytes       int64  `json:"disk_bytes"`
	RecoveredEvents uint64 `json:"recovered_events"`

	// Cold-read chunk cache counters: cumulative hits and misses, and the
	// decoded chunks currently resident (in encoded bytes). All zero for an
	// in-memory warehouse or when the cache is disabled.
	ColdCacheHits   uint64 `json:"cold_cache_hits"`
	ColdCacheMisses uint64 `json:"cold_cache_misses"`
	ColdCacheBytes  int64  `json:"cold_cache_bytes"`

	// ColdChunkStatsHits counts the cold chunks aggregate queries answered
	// from v2+ per-chunk sparse-index stats instead of decoding them.
	// ColdColumnsSkipped counts the v3 column sections projected reads
	// skipped instead of decoding. Compactions counts background cold-file
	// compactions and SegmentsCompacted the files they merged away.
	ColdChunkStatsHits uint64 `json:"cold_chunk_stats_hits"`
	ColdColumnsSkipped uint64 `json:"cold_columns_skipped"`
	Compactions        uint64 `json:"compactions"`
	SegmentsCompacted  uint64 `json:"segments_compacted"`

	// Views is the live materialized-view count and ViewSubscribers the
	// subscriber total across them.
	Views           int `json:"views"`
	ViewSubscribers int `json:"view_subscribers"`

	// Standing-view maintenance counters: partial frames dropped whole
	// (retention cuts and window expiry), exact boundary subtractions,
	// one-bucket boundary rescans, checkpoints written, and registrations
	// that resumed from a checkpoint instead of backfilling.
	ViewFrameDrops      uint64 `json:"view_frame_drops"`
	ViewSubtractions    uint64 `json:"view_subtractions"`
	ViewBoundaryRescans uint64 `json:"view_boundary_rescans"`
	ViewCheckpoints     uint64 `json:"view_checkpoints"`
	ViewResumes         uint64 `json:"view_resumes"`
}

// Stats computes the summary, folding every shard's contribution.
func (w *Warehouse) Stats() Stats {
	st := Stats{Themes: map[string]int{}}
	for _, s := range w.shards {
		s.stats(&st)
	}
	st.SegmentsDropped = w.segDrops.Load()
	st.SegmentsSpilled = w.segsSpilled.Load()
	st.DiskBytes = st.WALBytes + w.coldBytes.Load()
	st.RecoveredEvents = w.recovered.Load()
	cc := w.coldCache.Stats()
	st.ColdCacheHits = cc.Hits
	st.ColdCacheMisses = cc.Misses
	st.ColdCacheBytes = cc.Bytes
	st.ColdChunkStatsHits = w.chunkStatsHits.Load()
	st.ColdColumnsSkipped = w.columnsSkipped.Load()
	st.Compactions = w.compactions.Load()
	st.SegmentsCompacted = w.segsCompacted.Load()
	st.Views = w.ViewCount()
	st.ViewSubscribers = w.SubscriberCount()
	st.ViewFrameDrops = w.viewFrameDrops.Load()
	st.ViewSubtractions = w.viewSubtractions.Load()
	st.ViewBoundaryRescans = w.viewBoundaryRescans.Load()
	st.ViewCheckpoints = w.viewCheckpoints.Load()
	st.ViewResumes = w.viewResumes.Load()
	return st
}

// Sink adapts the warehouse to the executor's Sink interface. It also
// implements the executor's batch-accept capability, so the executor's
// buffering sink wrapper can route whole batches to AppendBatch.
type Sink struct {
	W *Warehouse
}

// Accept appends the tuple.
func (s Sink) Accept(t *stt.Tuple) error { return s.W.Append(t) }

// AcceptBatch appends a batch with one lock round-trip per shard.
func (s Sink) AcceptBatch(tuples []*stt.Tuple) error { return s.W.AppendBatch(tuples) }

// Close is a no-op; the warehouse outlives deployments.
func (s Sink) Close() error { return nil }
