package warehouse

import (
	"net/url"
	"strings"
	"testing"
	"time"

	"streamloader/internal/ops"
)

func TestParseQueryValues(t *testing.T) {
	params := url.Values{
		"from":    {"2016-03-15T00:00:00Z"},
		"to":      {"2016-03-16T00:00:00Z"},
		"region":  {"34.6,135.4,34.8,135.6"},
		"themes":  {"weather,social"},
		"sources": {"umeda"},
		"cond":    {"temperature > 20"},
	}
	q, err := ParseQueryValues(params)
	if err != nil {
		t.Fatal(err)
	}
	if !q.From.Equal(time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)) || q.To.Sub(q.From) != 24*time.Hour {
		t.Fatalf("window = [%v, %v)", q.From, q.To)
	}
	if q.Region == nil || q.Region.Min.Lat != 34.6 || q.Region.Max.Lon != 135.6 {
		t.Fatalf("region = %+v", q.Region)
	}
	if len(q.Themes) != 2 || q.Themes[1] != "social" || len(q.Sources) != 1 || q.Cond == "" {
		t.Fatalf("filter = %+v", q)
	}
	if q, err := ParseQueryValues(url.Values{}); err != nil || q.Region != nil || !q.From.IsZero() {
		t.Fatalf("empty params = %+v, %v", q, err)
	}
}

func TestParseQueryValuesErrors(t *testing.T) {
	for param, msg := range map[string]string{
		"from=yesterday":  "bad from",
		"to=tomorrow":     "bad to",
		"region=34.6,135": "bad region",
		// Trailing garbage: Sscanf used to stop at the first unparsable
		// character and silently drop the rest.
		"region=34.6,135.4,34.8,135.6junk": "bad region",
		"region=34.6,135.4,34.8,135.6,99":  "bad region",
		"region=34.6,135.4,34.8,":          "bad region",
		"region=34.6,135.4,34.8,NaN":       "not finite",
		"region=34.6,135.4,34.8,%2BInf":    "not finite",
		// Inverted rectangles used to be silently corner-swapped by NewRect.
		"region=34.8,135.4,34.6,135.6": "min corner",
		"region=34.6,135.6,34.8,135.4": "min corner",
		// Empty list elements used to survive as "" filters/groups.
		"themes=weather,,social": "bad themes",
		"themes=weather,":        "bad themes",
		"sources=,umeda":         "bad sources",
	} {
		vals, _ := url.ParseQuery(param)
		if _, err := ParseQueryValues(vals); err == nil || !strings.Contains(err.Error(), msg) {
			t.Errorf("%s: err = %v, want %q", param, err, msg)
		}
	}
	// Surrounding whitespace is cosmetic, not an error.
	q, err := ParseQueryValues(url.Values{"themes": {"weather, social"}})
	if err != nil || len(q.Themes) != 2 || q.Themes[1] != "social" {
		t.Fatalf("themes with space = %+v, %v", q.Themes, err)
	}
	// A degenerate (point) region is still a valid box.
	if _, err := ParseQueryValues(url.Values{"region": {"34.6,135.4,34.6,135.4"}}); err != nil {
		t.Fatalf("point region: %v", err)
	}
}

func TestParseAggQueryValues(t *testing.T) {
	vals, _ := url.ParseQuery("func=avg&field=temperature&group=source,theme&bucket=1h&sources=umeda")
	aq, err := ParseAggQueryValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	if aq.Func != ops.AggAvg || aq.Field != "temperature" || aq.Bucket != time.Hour {
		t.Fatalf("agg = %+v", aq)
	}
	if len(aq.GroupBy) != 2 || len(aq.Sources) != 1 {
		t.Fatalf("agg = %+v", aq)
	}
	for param, msg := range map[string]string{
		"func=median":               "bad func",
		"func=count&bucket=0s":      "bad bucket",
		"func=count&bucket=-1h":     "bad bucket",
		"func=count&bucket=wide":    "bad bucket",
		"func=count&from=xx":        "bad from",
		"func=count&group=source,":  "bad group",
		"func=count&group=,theme":   "bad group",
		"func=count&group=source,,": "bad group",
	} {
		vals, _ := url.ParseQuery(param)
		if _, err := ParseAggQueryValues(vals); err == nil || !strings.Contains(err.Error(), msg) {
			t.Errorf("%s: err = %v, want %q", param, err, msg)
		}
	}
	// The parsed query round-trips through plan() — the shared parser must
	// not produce specs the engine rejects.
	if _, err := aq.plan(); err != nil {
		t.Fatalf("parsed query fails plan: %v", err)
	}
}
