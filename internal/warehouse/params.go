package warehouse

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
)

// This file is the one wire-parameter parser for warehouse queries. The
// HTTP query, aggregate and subscribe endpoints and the slgen CLI all
// speak the same parameter vocabulary, so they share this parser instead
// of maintaining near-copies: ?from=&to= (RFC3339), &region=minLat,minLon,
// maxLat,maxLon, &themes=/&sources= (comma-separated), &cond= (payload
// condition expression); aggregates add &func= (count, sum, avg, min,
// max), &field=, &group= (comma-separated: source, theme) and &bucket= (a
// positive Go duration).

// ParseQueryValues parses the shared STT filter parameters into a Query.
// Absent parameters leave their zero values (no constraint).
func ParseQueryValues(params url.Values) (Query, error) {
	var q Query
	var err error
	if v := params.Get("from"); v != "" {
		if q.From, err = time.Parse(time.RFC3339, v); err != nil {
			return q, fmt.Errorf("bad from: %v", err)
		}
	}
	if v := params.Get("to"); v != "" {
		if q.To, err = time.Parse(time.RFC3339, v); err != nil {
			return q, fmt.Errorf("bad to: %v", err)
		}
	}
	if v := params.Get("region"); v != "" {
		coords, err := parseRegion(v)
		if err != nil {
			return q, err
		}
		rect := geo.NewRect(geo.Point{Lat: coords[0], Lon: coords[1]}, geo.Point{Lat: coords[2], Lon: coords[3]})
		q.Region = &rect
	}
	if v := params.Get("themes"); v != "" {
		if q.Themes, err = splitList("themes", v); err != nil {
			return q, err
		}
	}
	if v := params.Get("sources"); v != "" {
		if q.Sources, err = splitList("sources", v); err != nil {
			return q, err
		}
	}
	q.Cond = params.Get("cond")
	return q, nil
}

// parseRegion parses the four region coordinates strictly: exactly four
// comma-separated finite floats with nothing left over, min not above max
// on either axis. The previous Sscanf-based parse stopped at the first
// unparsable character, so "0,0,1,1junk" and even "0,0,1,1,9" passed with
// the garbage silently dropped, and an inverted rectangle was quietly
// normalized into the box the caller probably did not mean to query.
func parseRegion(v string) ([4]float64, error) {
	var coords [4]float64
	parts := strings.Split(v, ",")
	if len(parts) != len(coords) {
		return coords, fmt.Errorf("bad region (want minLat,minLon,maxLat,maxLon): got %d values", len(parts))
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return coords, fmt.Errorf("bad region (want minLat,minLon,maxLat,maxLon): %q is not a number", p)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return coords, fmt.Errorf("bad region (want minLat,minLon,maxLat,maxLon): %q is not finite", p)
		}
		coords[i] = f
	}
	// geo.NewRect would silently swap the corners; an inverted box on the
	// wire is a client bug, so reject it before normalization hides it.
	if coords[0] > coords[2] || coords[1] > coords[3] {
		return coords, fmt.Errorf("bad region: min corner (%g,%g) exceeds max corner (%g,%g)", coords[0], coords[1], coords[2], coords[3])
	}
	return coords, nil
}

// splitList splits a comma-separated wire list, trimming surrounding space
// and rejecting empty elements: a bare strings.Split turns "a,,b" or a
// trailing comma into "" entries, which then silently match nothing (a
// filter) or create a junk group key (group-by).
func splitList(name, v string) ([]string, error) {
	parts := strings.Split(v, ",")
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("bad %s: empty element in %q", name, v)
		}
		parts[i] = p
	}
	return parts, nil
}

// ParseAggQueryValues parses the filter plus the aggregation parameters
// into an AggQuery. MaxGroups is a server-side bound, not a wire
// parameter — the caller sets it afterwards.
func ParseAggQueryValues(params url.Values) (AggQuery, error) {
	filter, err := ParseQueryValues(params)
	if err != nil {
		return AggQuery{}, err
	}
	fn, err := ops.ParseAggFunc(params.Get("func"))
	if err != nil {
		return AggQuery{}, fmt.Errorf("bad func: %v", err)
	}
	aq := AggQuery{
		Query: filter,
		Func:  fn,
		Field: params.Get("field"),
	}
	if v := params.Get("group"); v != "" {
		if aq.GroupBy, err = splitList("group", v); err != nil {
			return AggQuery{}, err
		}
	}
	if v := params.Get("bucket"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return AggQuery{}, fmt.Errorf("bad bucket (want a positive duration like 1h)")
		}
		aq.Bucket = d
	}
	if v := params.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return AggQuery{}, fmt.Errorf("bad window (want a positive duration like 15m)")
		}
		if aq.Bucket <= 0 {
			return AggQuery{}, fmt.Errorf("bad window: needs a bucket (expiry is bucket-granular)")
		}
		aq.Window = d
	}
	return aq, nil
}

// AggQueryValues is the inverse of ParseAggQueryValues: it renders the query
// back into the shared wire vocabulary. View checkpoints persist queries in
// this form — one parser, one serializer, so a definition written by any
// version that can parse it rebuilds the identical query. MaxGroups is
// deliberately not round-tripped (it is a server-side bound, re-imposed on
// load).
func (q AggQuery) AggQueryValues() url.Values {
	v := url.Values{}
	if !q.From.IsZero() {
		v.Set("from", q.From.Format(time.RFC3339Nano))
	}
	if !q.To.IsZero() {
		v.Set("to", q.To.Format(time.RFC3339Nano))
	}
	if q.Region != nil {
		mn, mx := q.Region.Min, q.Region.Max
		v.Set("region", fmt.Sprintf("%g,%g,%g,%g", mn.Lat, mn.Lon, mx.Lat, mx.Lon))
	}
	if len(q.Themes) > 0 {
		v.Set("themes", strings.Join(q.Themes, ","))
	}
	if len(q.Sources) > 0 {
		v.Set("sources", strings.Join(q.Sources, ","))
	}
	if q.Cond != "" {
		v.Set("cond", q.Cond)
	}
	v.Set("func", strings.ToLower(string(q.Func)))
	if q.Field != "" {
		v.Set("field", q.Field)
	}
	if len(q.GroupBy) > 0 {
		v.Set("group", strings.Join(q.GroupBy, ","))
	}
	if q.Bucket > 0 {
		v.Set("bucket", q.Bucket.String())
	}
	if q.Window > 0 {
		v.Set("window", q.Window.String())
	}
	return v
}
