package warehouse

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
)

// This file is the one wire-parameter parser for warehouse queries. The
// HTTP query, aggregate and subscribe endpoints and the slgen CLI all
// speak the same parameter vocabulary, so they share this parser instead
// of maintaining near-copies: ?from=&to= (RFC3339), &region=minLat,minLon,
// maxLat,maxLon, &themes=/&sources= (comma-separated), &cond= (payload
// condition expression); aggregates add &func= (count, sum, avg, min,
// max), &field=, &group= (comma-separated: source, theme) and &bucket= (a
// positive Go duration).

// ParseQueryValues parses the shared STT filter parameters into a Query.
// Absent parameters leave their zero values (no constraint).
func ParseQueryValues(params url.Values) (Query, error) {
	var q Query
	var err error
	if v := params.Get("from"); v != "" {
		if q.From, err = time.Parse(time.RFC3339, v); err != nil {
			return q, fmt.Errorf("bad from: %v", err)
		}
	}
	if v := params.Get("to"); v != "" {
		if q.To, err = time.Parse(time.RFC3339, v); err != nil {
			return q, fmt.Errorf("bad to: %v", err)
		}
	}
	if v := params.Get("region"); v != "" {
		var minLat, minLon, maxLat, maxLon float64
		if _, err := fmt.Sscanf(v, "%f,%f,%f,%f", &minLat, &minLon, &maxLat, &maxLon); err != nil {
			return q, fmt.Errorf("bad region (want minLat,minLon,maxLat,maxLon): %v", err)
		}
		rect := geo.NewRect(geo.Point{Lat: minLat, Lon: minLon}, geo.Point{Lat: maxLat, Lon: maxLon})
		q.Region = &rect
	}
	if v := params.Get("themes"); v != "" {
		q.Themes = strings.Split(v, ",")
	}
	if v := params.Get("sources"); v != "" {
		q.Sources = strings.Split(v, ",")
	}
	q.Cond = params.Get("cond")
	return q, nil
}

// ParseAggQueryValues parses the filter plus the aggregation parameters
// into an AggQuery. MaxGroups is a server-side bound, not a wire
// parameter — the caller sets it afterwards.
func ParseAggQueryValues(params url.Values) (AggQuery, error) {
	filter, err := ParseQueryValues(params)
	if err != nil {
		return AggQuery{}, err
	}
	fn, err := ops.ParseAggFunc(params.Get("func"))
	if err != nil {
		return AggQuery{}, fmt.Errorf("bad func: %v", err)
	}
	aq := AggQuery{
		Query: filter,
		Func:  fn,
		Field: params.Get("field"),
	}
	if v := params.Get("group"); v != "" {
		aq.GroupBy = strings.Split(v, ",")
	}
	if v := params.Get("bucket"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return AggQuery{}, fmt.Errorf("bad bucket (want a positive duration like 1h)")
		}
		aq.Bucket = d
	}
	return aq, nil
}
