package warehouse

import (
	"streamloader/internal/obs"
)

// whMetrics bundles the warehouse's latency histograms. Handles are nil
// when no registry is configured, and every obs method is nil-safe, so the
// hot paths carry the instrumentation unconditionally.
type whMetrics struct {
	append      *obs.Histogram
	selectQ     *obs.Histogram
	aggregate   *obs.Histogram
	coldRead    *obs.Histogram
	spill       *obs.Histogram
	compaction  *obs.Histogram
	viewRebuild *obs.Histogram
	viewPublish *obs.Histogram
	walWrite    *obs.Histogram
	walSync     *obs.Histogram
}

// newWHMetrics creates the warehouse histogram families eagerly (even with
// zero traffic every family shows up in /metrics, which the CI smoke
// requires). A nil registry yields all-nil no-op handles.
func newWHMetrics(reg *obs.Registry) whMetrics {
	return whMetrics{
		append:      reg.Histogram("streamloader_warehouse_append_seconds", "Latency of one Append or AppendBatch call (WAL write + insert + tap dispatch)."),
		selectQ:     reg.Histogram("streamloader_warehouse_select_seconds", "Latency of one Select/Count query (shard fan-out + merge)."),
		aggregate:   reg.Histogram("streamloader_warehouse_aggregate_seconds", "Latency of one Aggregate query (shard fan-out + partial merge)."),
		coldRead:    reg.Histogram("streamloader_cold_read_seconds", "Latency of one cold-file chunk-range read."),
		spill:       reg.Histogram("streamloader_spill_seconds", "Latency of one segment spill (encode + write + validate + swap)."),
		compaction:  reg.Histogram("streamloader_compaction_seconds", "Latency of one cold-file compaction round (merge + write + swap)."),
		viewRebuild: reg.Histogram("streamloader_view_rebuild_seconds", "Latency of one standing-view backfill or rebuild scan."),
		viewPublish: reg.Histogram("streamloader_view_publish_seconds", "Latency of one view snapshot broadcast to its subscribers."),
		walWrite:    reg.Histogram("streamloader_wal_write_seconds", "Latency of one WAL buffer write syscall."),
		walSync:     reg.Histogram("streamloader_wal_fsync_seconds", "Latency of one WAL fsync."),
	}
}

// Obs returns the registry this warehouse reports into (nil when none was
// configured). The server mounts it at /metrics.
func (w *Warehouse) Obs() *obs.Registry { return w.obsReg }

// registerStatsCollector exposes the Stats() snapshot through the registry
// as scrape-time series, so the JSON stats endpoint and /metrics read the
// same numbers from the same fold — one source of truth, no drift.
func (w *Warehouse) registerStatsCollector(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Collect("warehouse", func(e *obs.Emitter) {
		st := w.Stats()
		e.Gauge("streamloader_warehouse_events", "", float64(st.Events))
		e.Gauge("streamloader_warehouse_sources", "", float64(st.Sources))
		e.Gauge("streamloader_warehouse_segments", "", float64(st.Segments))
		e.Gauge("streamloader_warehouse_segments_cold", "", float64(st.SegmentsCold))
		e.Gauge("streamloader_warehouse_views", "", float64(st.Views))
		e.Gauge("streamloader_warehouse_view_subscribers", "", float64(st.ViewSubscribers))
		e.Gauge("streamloader_warehouse_wal_bytes", "", float64(st.WALBytes))
		e.Gauge("streamloader_warehouse_disk_bytes", "", float64(st.DiskBytes))
		e.Gauge("streamloader_warehouse_cold_cache_bytes", "", float64(st.ColdCacheBytes))
		e.Counter("streamloader_warehouse_evicted_total", "", float64(w.Evicted()))
		e.Counter("streamloader_warehouse_segments_dropped_total", "", float64(st.SegmentsDropped))
		e.Counter("streamloader_warehouse_segments_spilled_total", "", float64(st.SegmentsSpilled))
		e.Counter("streamloader_warehouse_recovered_events_total", "", float64(st.RecoveredEvents))
		e.Counter("streamloader_warehouse_cold_cache_hits_total", "", float64(st.ColdCacheHits))
		e.Counter("streamloader_warehouse_cold_cache_misses_total", "", float64(st.ColdCacheMisses))
		e.Counter("streamloader_warehouse_cold_chunk_stats_hits_total", "", float64(st.ColdChunkStatsHits))
		e.Counter("streamloader_warehouse_cold_columns_skipped_total", "", float64(st.ColdColumnsSkipped))
		e.Counter("streamloader_warehouse_compactions_total", "", float64(st.Compactions))
		e.Counter("streamloader_warehouse_segments_compacted_total", "", float64(st.SegmentsCompacted))
	})
	for _, d := range [][2]string{
		{"streamloader_warehouse_events", "Live events stored across all shards."},
		{"streamloader_warehouse_sources", "Distinct sources with live events."},
		{"streamloader_warehouse_segments", "Live segments (hot + sealed + cold)."},
		{"streamloader_warehouse_segments_cold", "Live spilled cold-segment files."},
		{"streamloader_warehouse_views", "Registered materialized views."},
		{"streamloader_warehouse_view_subscribers", "Subscribers across all views."},
		{"streamloader_warehouse_wal_bytes", "Bytes held by live WAL files."},
		{"streamloader_warehouse_disk_bytes", "Total on-disk footprint (WAL + cold files)."},
		{"streamloader_warehouse_cold_cache_bytes", "Encoded bytes of decoded chunks resident in the cold chunk cache."},
		{"streamloader_warehouse_evicted_total", "Events dropped by retention."},
		{"streamloader_warehouse_segments_dropped_total", "Whole segments dropped by retention."},
		{"streamloader_warehouse_segments_spilled_total", "Segments spilled to disk."},
		{"streamloader_warehouse_recovered_events_total", "Events recovered by the last Open."},
		{"streamloader_warehouse_cold_cache_hits_total", "Cold-chunk reads served from the cache."},
		{"streamloader_warehouse_cold_cache_misses_total", "Cold-chunk reads that went to disk."},
		{"streamloader_warehouse_cold_chunk_stats_hits_total", "Chunks answered from v2+ per-chunk stats without decoding."},
		{"streamloader_warehouse_cold_columns_skipped_total", "Column sections skipped by projected v3 cold reads."},
		{"streamloader_warehouse_compactions_total", "Background cold-file compaction rounds."},
		{"streamloader_warehouse_segments_compacted_total", "Cold files merged away by compaction."},
	} {
		reg.Describe(d[0], d[1])
	}
}
