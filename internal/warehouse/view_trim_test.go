package warehouse

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"streamloader/internal/ops"
	"streamloader/internal/persist"
)

// Tests for the bucketed-partial trim paths: retention cuts that drop
// whole frames, subtract exact boundary deltas, or queue a one-bucket
// rescan — each proved byte-identical to a from-scratch Aggregate of the
// surviving events. Temperatures are integral throughout, so float sums
// are exact in any fold order and diffAggRows' exact != is a fair judge.

// trimLoad fills w with n integral-temperature events, one per minute,
// across 3 sources.
func trimLoad(t *testing.T, w *Warehouse, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, float64(i%30),
			fmt.Sprintf("s-%d", i%3), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestViewTrimSubtractableNoRebuild: a retention cut against bucketed
// COUNT/SUM/AVG views patches the partials in place — whole frames drop,
// the boundary frame subtracts — without ever marking the view dirty or
// queueing a rescan, and the result equals a fresh Aggregate.
func TestViewTrimSubtractableNoRebuild(t *testing.T) {
	queries := []AggQuery{
		{Func: ops.AggCount, Bucket: time.Hour},
		{Func: ops.AggSum, Field: "temperature", Bucket: time.Hour, GroupBy: []string{"source"}},
		{Func: ops.AggAvg, Field: "temperature", Bucket: 30 * time.Minute},
	}
	for _, q := range queries {
		w := NewWithConfig(Config{Shards: 2, SegmentEvents: 16})
		trimLoad(t, w, 300)
		v, err := w.RegisterView(q, ops.UpdatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		rescans0 := w.viewBoundaryRescans.Load()
		w.SetRetention(80)
		waitFor(t, 5*time.Second, "retention to evict", func() bool { return w.Len() <= 80 })
		if v.dirty.Load() {
			t.Errorf("%v: cut marked a subtractable bucketed view dirty (full rebuild)", q.Func)
		}
		if v.pendingRescans() {
			t.Errorf("%v: cut queued a boundary rescan for a subtractable aggregate", q.Func)
		}
		got, err := v.Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := aggRows(t, w, q)
		if diffAggRows(got, want) != "" {
			t.Errorf("%v: trimmed view diverges from rebuild: %s", q.Func, diffAggRows(got, want))
		}
		if n := w.viewBoundaryRescans.Load(); n != rescans0 {
			t.Errorf("%v: %d boundary rescans ran for a subtractable aggregate, want 0", q.Func, n-rescans0)
		}
		if w.viewFrameDrops.Load() == 0 {
			t.Errorf("%v: cut dropped no frames whole", q.Func)
		}
		v.Release()
		w.Close()
	}
}

// TestViewTrimMinMaxBoundaryRescan: MIN/MAX cannot un-observe an evicted
// extremum, so the cut's boundary bucket re-derives from a one-bucket
// rescan — never a full rebuild — and the result still equals Aggregate.
func TestViewTrimMinMaxBoundaryRescan(t *testing.T) {
	for _, fn := range []ops.AggFunc{ops.AggMin, ops.AggMax} {
		w := NewWithConfig(Config{Shards: 2, SegmentEvents: 16})
		trimLoad(t, w, 300)
		q := AggQuery{Func: fn, Field: "temperature", Bucket: time.Hour, GroupBy: []string{"source"}}
		v, err := w.RegisterView(q, ops.UpdatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		w.SetRetention(80)
		waitFor(t, 5*time.Second, "retention to evict", func() bool { return w.Len() <= 80 })
		if v.dirty.Load() {
			t.Errorf("%v: cut marked a bucketed view dirty; boundary rescan should suffice", fn)
		}
		got, err := v.Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := aggRows(t, w, q)
		if diffAggRows(got, want) != "" {
			t.Errorf("%v: post-rescan view diverges: %s", fn, diffAggRows(got, want))
		}
		if v.pendingRescans() {
			t.Errorf("%v: Rows left rescans queued", fn)
		}
		v.Release()
		w.Close()
	}
}

// TestViewTrimRepeatedCutsStayExact: several successive cuts against live
// bucketed views (one subtractable, one MIN) keep matching Aggregate at
// every step — the trims compose.
func TestViewTrimRepeatedCutsStayExact(t *testing.T) {
	w := NewWithConfig(Config{Shards: 2, SegmentEvents: 16})
	defer w.Close()
	qs := []AggQuery{
		{Func: ops.AggSum, Field: "temperature", Bucket: time.Hour},
		{Func: ops.AggMin, Field: "temperature", Bucket: time.Hour},
	}
	views := make([]*View, len(qs))
	trimLoad(t, w, 100)
	for i, q := range qs {
		v, err := w.RegisterView(q, ops.UpdatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		views[i] = v
	}
	for round := 0; round < 4; round++ {
		// Grow past the bound again so each round cuts anew.
		for i := 0; i < 120; i++ {
			off := time.Duration(100+round*120+i) * time.Minute
			if err := w.Append(wTuple(off, float64(i%25), fmt.Sprintf("s-%d", i%3), 34.7, 135.5)); err != nil {
				t.Fatal(err)
			}
		}
		w.SetRetention(90)
		waitFor(t, 5*time.Second, "retention to evict", func() bool { return w.Len() <= 90 })
		w.SetRetention(0)
		for i, v := range views {
			got, err := v.Rows()
			if err != nil {
				t.Fatal(err)
			}
			want := aggRows(t, w, qs[i])
			if diffAggRows(got, want) != "" {
				t.Fatalf("round %d view %d diverged: %s", round, i, diffAggRows(got, want))
			}
		}
	}
}

// TestViewTrimUnbucketed: without a bucket there is one frame, so
// COUNT/SUM/AVG still subtract exactly while MIN degrades to the dirty
// flag and rebuilds — and both end up equal to Aggregate.
func TestViewTrimUnbucketed(t *testing.T) {
	for _, q := range []AggQuery{
		{Func: ops.AggSum, Field: "temperature", GroupBy: []string{"source"}},
		{Func: ops.AggMin, Field: "temperature"},
	} {
		w := NewWithConfig(Config{Shards: 2, SegmentEvents: 16})
		trimLoad(t, w, 200)
		v, err := w.RegisterView(q, ops.UpdatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		w.SetRetention(50)
		waitFor(t, 5*time.Second, "retention to evict", func() bool { return w.Len() <= 50 })
		if q.Func == ops.AggSum && v.dirty.Load() {
			t.Error("unbucketed SUM went dirty; in-memory eviction should subtract exactly")
		}
		if q.Func == ops.AggMin && !v.dirty.Load() {
			t.Error("unbucketed MIN not marked dirty; it cannot un-observe")
		}
		got, err := v.Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := aggRows(t, w, q)
		if diffAggRows(got, want) != "" {
			t.Errorf("%v: post-cut view diverges: %s", q.Func, diffAggRows(got, want))
		}
		v.Release()
		w.Close()
	}
}

// TestViewTrimDurableColdDrops: cuts over spilled history — where whole
// cold files drop by their envelope without ever being read — stay exact:
// the boundary falls back to a rescan or rebuild as needed and Rows keeps
// matching Aggregate.
func TestViewTrimDurableColdDrops(t *testing.T) {
	w, err := Open(Config{
		Shards: 2, SegmentEvents: 16, SegmentSpan: 10 * time.Minute,
		DataDir: t.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	trimLoad(t, w, 400)
	w.DrainSpills()
	qs := []AggQuery{
		{Func: ops.AggSum, Field: "temperature", Bucket: time.Hour},
		{Func: ops.AggMax, Field: "temperature", Bucket: time.Hour, GroupBy: []string{"source"}},
	}
	views := make([]*View, len(qs))
	for i, q := range qs {
		v, err := w.RegisterView(q, ops.UpdatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		views[i] = v
	}
	w.SetRetention(120)
	waitFor(t, 5*time.Second, "retention to evict", func() bool { return w.Len() <= 120 })
	for i, v := range views {
		got, err := v.Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := aggRows(t, w, qs[i])
		if diffAggRows(got, want) != "" {
			t.Errorf("view %d over cold history diverged: %s", i, diffAggRows(got, want))
		}
	}
}

// TestViewWindowExpiry: a windowed view's rows only ever cover buckets
// overlapping the trailing window on the warehouse clock, stay equal to a
// windowed Aggregate as the clock advances, and physically release
// expired frames on prune.
func TestViewWindowExpiry(t *testing.T) {
	w := NewWithConfig(Config{Shards: 2, SegmentEvents: 32})
	defer w.Close()
	var offset atomic.Int64
	base := t0.Add(10 * time.Hour)
	w.nowFn = func() time.Time { return base.Add(time.Duration(offset.Load())) }

	trimLoad(t, w, 600) // 10 hours of minutely events
	q := AggQuery{Func: ops.AggCount, Bucket: time.Hour, Window: 3 * time.Hour, GroupBy: []string{"source"}}
	v, err := w.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()

	check := func(stage string) {
		t.Helper()
		got, err := v.Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := aggRows(t, w, q)
		if len(want) == 0 {
			t.Fatalf("%s: windowed aggregate came back empty; bad test setup", stage)
		}
		if diffAggRows(got, want) != "" {
			t.Errorf("%s: windowed view diverges: %s", stage, diffAggRows(got, want))
		}
		cutoff := w.now().Add(-q.Window)
		for _, r := range got {
			if !r.Bucket.Add(q.Bucket).After(cutoff) {
				t.Errorf("%s: bucket %v is outside the %v window at %v", stage, r.Bucket, q.Window, w.now())
			}
		}
	}
	check("initial")

	// Advance the clock two hours: two more buckets expire without any
	// ingest, by the read-side filter alone.
	offset.Store(int64(2 * time.Hour))
	check("after +2h")

	// The physical prune releases the expired frames too.
	frames := func() int {
		n := 0
		for _, p := range v.parts {
			p.mu.Lock()
			n += p.store.FrameCount()
			p.mu.Unlock()
		}
		return n
	}
	before := frames()
	if v.pruneExpired() == 0 {
		t.Fatal("pruneExpired dropped nothing with 9 expired buckets held")
	}
	if after := frames(); after >= before {
		t.Errorf("prune left %d frames, had %d", after, before)
	}
	check("after prune")

	// New events keep folding in after expiry churn.
	for i := 0; i < 30; i++ {
		off := 10*time.Hour + 2*time.Hour + time.Duration(i)*time.Minute
		if err := w.Append(wTuple(off, float64(i), fmt.Sprintf("s-%d", i%3), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	check("after fresh ingest")
}

// TestViewWindowRequiresBucket: window semantics are bucket-granular, so
// a window without a bucket is rejected at plan time.
func TestViewWindowRequiresBucket(t *testing.T) {
	w := New()
	defer w.Close()
	if _, err := w.RegisterView(AggQuery{Func: ops.AggCount, Window: time.Hour}, ops.UpdatePolicy{}); err == nil {
		t.Fatal("window without bucket registered; want a plan error")
	}
}

// TestViewCheckpointResume: a durable warehouse persists view state on
// clean shutdown; re-registering the same (query, policy) after reopen
// resumes from the checkpoint plus a WAL-tail fold instead of a history
// scan, and the resumed rows are byte-identical to a full rebuild.
func TestViewCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 2, SegmentEvents: 16, SegmentSpan: 10 * time.Minute,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
	}
	q := AggQuery{Func: ops.AggSum, Field: "temperature", Bucket: time.Hour, GroupBy: []string{"source"}}

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trimLoad(t, w, 300)
	v, err := w.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	v.Release() // clean last release persists the final checkpoint
	if w.viewCheckpoints.Load() == 0 {
		t.Fatal("clean release wrote no checkpoint")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Tail events committed after the checkpoint, before re-registration.
	for i := 0; i < 50; i++ {
		off := 300*time.Minute + time.Duration(i)*time.Minute
		if err := w2.Append(wTuple(off, float64(i%20), fmt.Sprintf("s-%d", i%3), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	v2, err := w2.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	if n := w2.viewResumes.Load(); n != 1 {
		t.Fatalf("ViewResumes = %d, want 1 (registration should have resumed from the checkpoint)", n)
	}
	got, err := v2.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want := aggRows(t, w2, q)
	if diffAggRows(got, want) != "" {
		t.Fatalf("resumed view diverges from rebuild: %s", diffAggRows(got, want))
	}
	// Incremental maintenance continues normally after a resume.
	if err := w2.Append(wTuple(400*time.Minute, 7, "s-0", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	got, err = v2.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want = aggRows(t, w2, q)
	if diffAggRows(got, want) != "" {
		t.Fatalf("post-resume fold diverges: %s", diffAggRows(got, want))
	}
	// The manifest records the standing view's definition.
	found := false
	for _, rec := range w2.pers.manifest.Views {
		if rec.Key == v2.key {
			found = true
			if rec.Query == "" || rec.Policy == "" || rec.File == "" {
				t.Errorf("incomplete view record: %+v", rec)
			}
		}
	}
	if !found {
		t.Error("manifest carries no record for the registered view")
	}
}

// TestViewCheckpointInvalidatedByEviction: an eviction after the
// checkpoint changes the cut fingerprint, so the resume is rejected and
// the registration backfills — correctly.
func TestViewCheckpointInvalidatedByEviction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 2, SegmentEvents: 16, SegmentSpan: 10 * time.Minute,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
	}
	q := AggQuery{Func: ops.AggAvg, Field: "temperature", Bucket: time.Hour}

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trimLoad(t, w, 300)
	v, err := w.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	w2.SetRetention(100)
	waitFor(t, 5*time.Second, "retention to evict", func() bool { return w2.Len() <= 100 })
	v2, err := w2.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	if n := w2.viewResumes.Load(); n != 0 {
		t.Fatalf("ViewResumes = %d after an eviction invalidated the checkpoint, want 0", n)
	}
	got, err := v2.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want := aggRows(t, w2, q)
	if diffAggRows(got, want) != "" {
		t.Fatalf("backfilled view diverges: %s", diffAggRows(got, want))
	}
}

// TestViewCheckpointCrashSafe: a hard crash (CloseHard, no final
// checkpoint) either leaves a stale-but-valid checkpoint or none; the
// next registration must converge to the truth either way.
func TestViewCheckpointCrashSafe(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 2, SegmentEvents: 16, SegmentSpan: 10 * time.Minute,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncAlways,
		// A tiny interval so the publisher checkpoints mid-run.
		ViewCheckpointEvery: 1,
	}
	q := AggQuery{Func: ops.AggCount, Bucket: time.Hour, GroupBy: []string{"source"}}

	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trimLoad(t, w, 100)
	v, err := w.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// More folds so the publisher has mutations to checkpoint after.
	for i := 0; i < 100; i++ {
		off := 100*time.Minute + time.Duration(i)*time.Minute
		if err := w.Append(wTuple(off, float64(i%10), fmt.Sprintf("s-%d", i%3), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "a mid-run checkpoint", func() bool { return w.viewCheckpoints.Load() > 0 })
	_ = v
	w.CloseHard()

	w2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	v2, err := w2.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	got, err := v2.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want := aggRows(t, w2, q)
	if diffAggRows(got, want) != "" {
		t.Fatalf("post-crash registration diverges: %s", diffAggRows(got, want))
	}
}
