package warehouse

import (
	"time"

	"streamloader/internal/obs"
	"streamloader/internal/persist"
)

// coldSegment is a sealed segment spilled to disk. Only its envelope —
// time/seq bounds, per-source and per-theme counts, and the sparse time
// index inside persist.SegmentInfo — stays in RAM; event payloads are read
// back from the file on the rare query that survives envelope pruning.
//
// The file itself is immutable. Retention removes cold segments whole
// (one O(1) file delete) or, for the one segment straddling a compaction
// cutoff, records a logical skip of its oldest events; the skipped prefix
// stays on disk and is re-derived from the manifest watermark after a
// crash.
type coldSegment struct {
	info *persist.SegmentInfo
	// cache is the warehouse-wide LRU of decoded chunks reads go through;
	// nil when the cold-read cache is disabled.
	cache *persist.ChunkCache
	// readHist times chunk-range reads off this file (nil = no-op).
	readHist *obs.Histogram

	// skip is how many leading events (in the file's (time, seq) order)
	// retention has logically evicted.
	skip int
	// count is the live event count: info.Count - skip.
	count int
	// head/tail are the live envelope keys (head moves up as skip grows).
	head, tail persist.Key
	// sourceCounts/themeCounts are live counts, kept exact across skips.
	sourceCounts map[string]int
	themeCounts  map[string]int
	// primaryThemes counts live events by primary Theme tag only; nil when
	// the file predates the header field, which disables the group-by-theme
	// aggregate fast path for this one segment (reads still work).
	primaryThemes map[string]int

	// loaded caches the live events ([skip:] of the file) while a
	// compaction needs per-event keys; it is released when the compaction
	// is done with it.
	loaded []Event

	// compacting marks the segment as a victim of an in-flight background
	// file compaction, so overlapping picks don't merge it twice. Queries
	// ignore the flag: the file stays live until the swap.
	compacting bool

	// seqHi is the highest warehouse seq stored in the file (retention-
	// skipped prefix included — seqs never resurrect, so the over-estimate
	// only costs a spurious read). View-checkpoint resumes skip files whose
	// seqHi a checkpoint already covers.
	seqHi uint64
}

// newColdSegment wraps a freshly written or reopened segment file. The
// info's count maps are adopted (not copied): the coldSegment is their
// sole owner from here on.
func (w *Warehouse) newColdSegment(info *persist.SegmentInfo) *coldSegment {
	return &coldSegment{
		info:          info,
		cache:         w.coldCache,
		readHist:      w.met.coldRead,
		count:         info.Count,
		head:          info.Head,
		tail:          info.Tail,
		sourceCounts:  info.SourceCounts,
		themeCounts:   info.ThemeCounts,
		primaryThemes: info.PrimaryThemeCounts,
	}
}

// prunedBy mirrors segment.prunedBy on the live envelope.
func (c *coldSegment) prunedBy(from, to time.Time) bool {
	if !from.IsZero() && c.tail.Time.Before(from) {
		return true
	}
	if !to.IsZero() && !c.head.Time.Before(to) {
		return true
	}
	return false
}

// coveredBy reports whether every live event falls inside [from, to), so
// time-only counts can use c.count without opening the file.
func (c *coldSegment) coveredBy(from, to time.Time) bool {
	if !from.IsZero() && c.head.Time.Before(from) {
		return false
	}
	if !to.IsZero() && !c.tail.Time.Before(to) {
		return false
	}
	return true
}

// readWindow decodes the live events whose chunks can intersect the
// [from, to) window, going through the warehouse chunk cache when one is
// configured. Results are in (time, seq) order and conservative: the
// caller re-filters exactly.
func (c *coldSegment) readWindow(from, to time.Time) ([]Event, persist.ReadStats, error) {
	return c.readWindowProjected(from, to, persist.FullProjection)
}

// readWindowProjected is readWindow restricted to the columns proj names.
// On a v3 file only those columns decode; v1/v2 files return full events
// (always a superset — callers may only rely on the projected columns).
func (c *coldSegment) readWindowProjected(from, to time.Time, proj persist.Projection) ([]Event, persist.ReadStats, error) {
	if c.loaded != nil {
		return c.loaded, persist.ReadStats{}, nil // compaction already paid for the full load
	}
	lo, hi := c.info.WindowPositions(from, to)
	if lo < c.skip {
		lo = c.skip
	}
	t0 := c.readHist.Start()
	pes, rs, err := c.info.ReadRangeProjected(c.cache, lo, hi, proj)
	c.readHist.Since(t0)
	if err != nil {
		return nil, rs, err
	}
	out := make([]Event, len(pes))
	for i, pe := range pes {
		out[i] = Event{Seq: pe.Seq, Tuple: pe.Tuple}
	}
	return out, rs, nil
}

// selectWindow reads the events a Select needs from this segment. On v3
// files with a cheap column filter (theme/source/region, no payload
// condition), it runs two phases: a projected pre-filter pass decodes only
// the filter columns, then only the runs of matching ordinals are fully
// materialized (through the cache) and re-filtered exactly. Everything else
// takes the classic full window read. Matches are appended to out.
func (c *coldSegment) selectWindow(q Query, conds condCache, out []Event, sc *segScan) ([]Event, error) {
	twoPhase := c.loaded == nil && q.Cond == "" &&
		c.info.Version >= persist.SegmentV3 &&
		(len(q.Themes) > 0 || len(q.Sources) > 0 || q.Region != nil)
	if !twoPhase {
		evs, rs, err := c.readWindow(q.From, q.To)
		if err != nil {
			return out, err
		}
		sc.addRead(rs)
		for _, ev := range evs {
			ok, err := matchEvent(ev, q, conds)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, ev)
			}
		}
		return out, nil
	}

	proj := persist.Projection{Mask: persist.ColTime}
	if len(q.Themes) > 0 {
		proj.Mask |= persist.ColTheme
	}
	if len(q.Sources) > 0 {
		proj.Mask |= persist.ColSource
	}
	if q.Region != nil {
		proj.Mask |= persist.ColGeo
	}
	lo, hi := c.info.WindowPositions(q.From, q.To)
	if lo < c.skip {
		lo = c.skip
	}
	t0 := c.readHist.Start()
	pes, rs, err := c.info.ReadRangeProjected(c.cache, lo, hi, proj)
	c.readHist.Since(t0)
	if err != nil {
		return out, err
	}
	sc.addRead(rs)
	// Matching ordinals, coalesced into runs so phase two reads contiguous
	// stretches (a run break costs a chunk-cache lookup, not a pread).
	const gap = 32
	runStart, runEnd := -1, -1
	flush := func() error {
		if runStart < 0 {
			return nil
		}
		t0 := c.readHist.Start()
		full, rs, err := c.info.ReadRangeCached(c.cache, runStart, runEnd)
		c.readHist.Since(t0)
		if err != nil {
			return err
		}
		sc.addRead(rs)
		for _, pe := range full {
			ev := Event{Seq: pe.Seq, Tuple: pe.Tuple}
			ok, err := matchEvent(ev, q, conds)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, ev)
			}
		}
		runStart = -1
		return nil
	}
	for i, pe := range pes {
		ok, err := matchEvent(Event{Tuple: pe.Tuple}, q, conds)
		if err != nil {
			return out, err
		}
		if !ok {
			continue
		}
		ord := lo + i
		if runStart >= 0 && ord-runEnd <= gap {
			runEnd = ord + 1
			continue
		}
		if err := flush(); err != nil {
			return out, err
		}
		runStart, runEnd = ord, ord+1
	}
	if err := flush(); err != nil {
		return out, err
	}
	return out, nil
}

// ensureLoaded materializes every live event, for compactions that need
// per-event keys. Release with unload once done. The read deliberately
// bypasses the chunk cache (nil): the result is pinned in c.loaded for the
// compaction's lifetime, and the segment is usually trimmed or deleted
// moments later — inserting its chunks would only evict ones serving live
// queries.
func (c *coldSegment) ensureLoaded() error {
	if c.loaded != nil {
		return nil
	}
	pes, _, err := c.info.ReadRangeCached(nil, c.skip, c.info.Count)
	if err != nil {
		return err
	}
	c.loaded = make([]Event, len(pes))
	for i, pe := range pes {
		c.loaded[i] = Event{Seq: pe.Seq, Tuple: pe.Tuple}
	}
	return nil
}

func (c *coldSegment) unload() { c.loaded = nil }

// keyAt returns the i-th live event's eviction key. The first and last
// keys come from the envelope; interior keys force a load and return ok
// false if the file cannot be read.
func (c *coldSegment) keyAt(i int) (persist.Key, bool) {
	switch {
	case i == 0:
		return c.head, true
	case i == c.count-1:
		return c.tail, true
	}
	if err := c.ensureLoaded(); err != nil {
		return persist.Key{}, false
	}
	return eventKey(c.loaded[i]), true
}

// dropPrefix applies a compaction verdict: the n oldest live events leave.
// Caller has ensured the segment is loaded (n < count). The file is not
// rewritten — the skip is logical, re-derivable from the watermark.
func (c *coldSegment) dropPrefix(n int) (dropped []Event) {
	dropped = c.loaded[:n]
	for _, ev := range dropped {
		t := ev.Tuple
		if t.Source != "" {
			if c.sourceCounts[t.Source]--; c.sourceCounts[t.Source] <= 0 {
				delete(c.sourceCounts, t.Source)
			}
		}
		if t.Theme != "" {
			if c.themeCounts[t.Theme]--; c.themeCounts[t.Theme] <= 0 {
				delete(c.themeCounts, t.Theme)
			}
			if c.primaryThemes != nil {
				if c.primaryThemes[t.Theme]--; c.primaryThemes[t.Theme] <= 0 {
					delete(c.primaryThemes, t.Theme)
				}
			}
		}
		for _, theme := range t.Schema.Themes {
			if theme != t.Theme {
				if c.themeCounts[theme]--; c.themeCounts[theme] <= 0 {
					delete(c.themeCounts, theme)
				}
			}
		}
	}
	c.skip += n
	c.count -= n
	c.head = eventKey(c.loaded[n])
	c.loaded = c.loaded[n:]
	return dropped
}

// eventKey is the event's position in the global eviction order.
func eventKey(ev Event) persist.Key {
	return persist.Key{Time: ev.Tuple.Time, Seq: ev.Seq}
}

// keyLE reports a <= b in eviction order (the order is total).
func keyLE(a, b persist.Key) bool { return !b.Less(a) }
