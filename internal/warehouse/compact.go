package warehouse

import (
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"streamloader/internal/persist"
)

// compactor is the per-warehouse background cold-file compactor. Retention
// trims and out-of-order side-segment spills leave behind small,
// time-overlapping cold files that prune poorly and multiply per-query
// header checks; the compactor merges runs of such time-adjacent files into
// one well-pruning neighbor, using the spiller's discipline — select and
// validate under the shard lock, do the file I/O with no lock held, swap
// briefly under the lock — so queries see identical results before, during
// and after a compaction.
//
// Crash safety leans on one manifest record per rewrite. Until the merged
// file is published, nothing has changed on disk. Once it is published but
// before the CompactionRecord lands in the manifest, the merged file's
// seqs are a subset of its victims', so recovery detects it as a duplicate
// and deletes it — the compaction is harmlessly undone. After the record
// lands, recovery finishes the victim deletions instead (they are
// idempotent), so no interleaving of crash and deletion can register the
// same event twice.
type compactor struct {
	w *Warehouse
	// below is the live-event count under which a cold file is "small";
	// maxOut caps the merged file's events so compaction cannot build an
	// ever-growing mega-file.
	below  int
	maxOut int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*shard
	queued   map[*shard]bool
	inFlight int
	closed   bool

	// aborted is the crash switch, mirroring the spiller's: the worker
	// stops at its next checkpoint, leaving whatever on-disk state the
	// "crash" produced for recovery to sort out. CloseHard sets it.
	aborted atomic.Bool

	wg sync.WaitGroup
}

// maxCompactFiles bounds how many cold files one rewrite merges, keeping
// each compaction's read-merge-write bounded in memory and time.
const maxCompactFiles = 8

func newCompactor(w *Warehouse, below, segmentEvents int) *compactor {
	c := &compactor{w: w, below: below, maxOut: 2 * segmentEvents, queued: map[*shard]bool{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// start launches the worker; separate from construction so Open can finish
// recovery before any shard is shared with a goroutine.
func (c *compactor) start() {
	c.wg.Add(1)
	go c.loop()
}

// enqueue marks a shard for a compaction check. Cheap and idempotent — the
// worker re-derives the actual candidates under the shard lock.
func (c *compactor) enqueue(s *shard) {
	c.mu.Lock()
	if !c.queued[s] && !c.closed && !c.aborted.Load() {
		c.queued[s] = true
		c.queue = append(c.queue, s)
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *compactor) loop() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed && !c.aborted.Load() {
			c.cond.Wait()
		}
		if c.aborted.Load() || (c.closed && len(c.queue) == 0) {
			c.mu.Unlock()
			return
		}
		s := c.queue[0]
		c.queue[0] = nil
		c.queue = c.queue[1:]
		delete(c.queued, s)
		c.inFlight++
		c.mu.Unlock()

		// A merge can expose another mergeable run (the merged file may
		// itself still be small); keep going until the shard is settled.
		for c.w.compactShardOnce(s) && !c.aborted.Load() {
		}

		c.mu.Lock()
		c.inFlight--
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// close drains the queue and stops the worker. Idempotent.
func (c *compactor) close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// abort stops the worker as a crash would: queued checks are dropped and an
// in-flight rewrite stops at its next checkpoint, possibly leaving a
// published merged file with no manifest record — exactly the state a kill
// there leaves — for recovery to undo. Idempotent.
func (c *compactor) abort() {
	c.aborted.Store(true)
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// drain blocks until the queue is empty and no compaction is in flight.
func (c *compactor) drain() {
	c.mu.Lock()
	for (len(c.queue) > 0 || c.inFlight > 0) && !c.aborted.Load() {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// maybeCompactCold nudges the compactor about a shard whose cold list just
// changed (a spill landed, retention trimmed). No-op when compaction is
// disabled or the warehouse is in-memory.
func (w *Warehouse) maybeCompactCold(s *shard) {
	if w.compact != nil {
		w.compact.enqueue(s)
	}
}

// CompactNow enqueues every shard for a compaction check and waits for the
// compactor to go idle — tests and the model checker use it to reach a
// settled file layout. Queries need no such barrier. No-op for an
// in-memory warehouse or when compaction is disabled.
func (w *Warehouse) CompactNow() {
	if w.compact == nil {
		return
	}
	for _, s := range w.shards {
		w.compact.enqueue(s)
	}
	w.compact.drain()
}

// compactSnap pins one victim's identity at selection time; the swap
// validates against it so a segment retention touched mid-rewrite (its
// skip or count moved) aborts the compaction instead of resurrecting
// evicted events.
type compactSnap struct {
	cs    *coldSegment
	skip  int
	count int
}

// pickCompactionLocked selects the next run of cold segments worth merging:
// at least two time-adjacent segments (ordered by live head key) where each
// join is justified — one side is small, or the next segment's envelope
// overlaps the previous one's (an out-of-order side spill) — capped at
// maxCompactFiles files and maxOut merged events. Caller holds the shard
// lock.
func (s *shard) pickCompactionLocked(below, maxOut int) []compactSnap {
	if len(s.cold) < 2 {
		return nil
	}
	order := make([]*coldSegment, len(s.cold))
	copy(order, s.cold)
	sort.Slice(order, func(i, j int) bool { return order[i].head.Less(order[j].head) })
	eligible := func(cs *coldSegment) bool { return !cs.compacting && cs.loaded == nil }
	small := func(cs *coldSegment) bool { return cs.count < below }
	for i := 0; i+1 < len(order); i++ {
		if !eligible(order[i]) {
			continue
		}
		run := []*coldSegment{order[i]}
		total := order[i].count
		for j := i + 1; j < len(order) && len(run) < maxCompactFiles; j++ {
			cs := order[j]
			prev := run[len(run)-1]
			if !eligible(cs) || total+cs.count > maxOut {
				break
			}
			if !small(prev) && !small(cs) && cs.head.Time.After(prev.tail.Time) {
				break
			}
			run = append(run, cs)
			total += cs.count
		}
		if len(run) >= 2 {
			snaps := make([]compactSnap, len(run))
			for k, cs := range run {
				snaps[k] = compactSnap{cs: cs, skip: cs.skip, count: cs.count}
			}
			return snaps
		}
	}
	return nil
}

// compactShardOnce runs at most one compaction on the shard, returning
// whether it rewrote anything: pick and mark victims under the lock, read
// and merge their live events and write the merged file with no lock held,
// then validate-record-swap. Any validation failure or I/O error abandons
// the rewrite with the store untouched.
func (w *Warehouse) compactShardOnce(s *shard) bool {
	s.mu.Lock()
	snaps := s.pickCompactionLocked(w.compact.below, w.compact.maxOut)
	if len(snaps) < 2 {
		s.mu.Unlock()
		return false
	}
	for _, sn := range snaps {
		sn.cs.compacting = true
	}
	gen := s.nextSegGen
	s.nextSegGen++
	path := filepath.Join(s.dir, persist.SegmentFileName(gen))
	s.mu.Unlock()
	t0 := w.met.compaction.Start()
	defer w.met.compaction.Since(t0)

	release := func() {
		s.mu.Lock()
		for _, sn := range snaps {
			sn.cs.compacting = false
		}
		s.mu.Unlock()
	}
	if w.compact.aborted.Load() {
		return false // crash before any I/O: nothing changed
	}

	// The victims' files are immutable, so their live suffixes read safely
	// with no lock held. Each file is already (time, seq) sorted; the merge
	// re-sorts the concatenation.
	var events []persist.Event
	oldGens := make([]int, 0, len(snaps))
	for _, sn := range snaps {
		g, err := persist.ParseSegmentFileName(filepath.Base(sn.cs.info.Path))
		if err != nil {
			release()
			return false
		}
		oldGens = append(oldGens, g)
		pes, _, err := sn.cs.info.ReadRangeCached(nil, sn.skip, sn.cs.info.Count)
		if err != nil {
			release()
			return false
		}
		events = append(events, pes...)
	}
	persist.SortEvents(events)

	info, err := persist.WriteSegmentVersion(path, events, w.segVersion)
	if err != nil {
		release()
		return false
	}
	if w.compact.aborted.Load() {
		// Crash after publication, before the record: the merged file is an
		// exact duplicate of its victims' live events, which recovery
		// detects by seq and deletes.
		return false
	}
	return w.installCompaction(s, snaps, info, gen, oldGens)
}

// installCompaction swaps the merged file in for its victims: validate the
// victims unchanged, record the rewrite in the manifest, replace them in
// the cold list and delete their files, then clear the record. retMu
// serializes this against retention compactions, which take every shard
// lock under it.
func (w *Warehouse) installCompaction(s *shard, snaps []compactSnap, info *persist.SegmentInfo, gen int, oldGens []int) bool {
	w.retMu.Lock()
	defer w.retMu.Unlock()
	s.mu.Lock()

	valid := true
	for _, sn := range snaps {
		if sn.cs.skip != sn.skip || sn.cs.count != sn.count || !s.containsColdLocked(sn.cs) {
			valid = false
			break
		}
	}
	abandon := func() {
		for _, sn := range snaps {
			sn.cs.compacting = false
		}
		s.mu.Unlock()
		_ = info.Remove()
	}
	if !valid {
		abandon()
		return false
	}

	// Record the rewrite before deleting anything: once victims start
	// disappearing, only the record lets recovery tell "merged file plus
	// surviving victim" from two live files.
	rec := persist.CompactionRecord{Shard: s.idx, NewGen: gen, OldGens: oldGens}
	w.pers.manifest.Compactions = append(w.pers.manifest.Compactions, rec)
	w.stampMaxSeq()
	if err := persist.SaveManifest(w.pers.dir, w.pers.manifest); err != nil {
		w.pers.manifest.Compactions = w.pers.manifest.Compactions[:len(w.pers.manifest.Compactions)-1]
		abandon()
		return false
	}

	newCS := w.newColdSegment(info)
	for _, sn := range snaps {
		if sn.cs.seqHi > newCS.seqHi {
			newCS.seqHi = sn.cs.seqHi
		}
	}
	isVictim := make(map[*coldSegment]bool, len(snaps))
	for _, sn := range snaps {
		isVictim[sn.cs] = true
	}
	kept := make([]*coldSegment, 0, len(s.cold)-len(snaps)+1)
	placed := false
	for _, cs := range s.cold {
		if isVictim[cs] {
			if !placed {
				kept = append(kept, newCS)
				placed = true
			}
			continue
		}
		kept = append(kept, cs)
	}
	s.cold = kept
	var oldBytes int64
	for _, sn := range snaps {
		oldBytes += sn.cs.info.Bytes
		_ = sn.cs.info.Remove() // a failed delete is finished at next Open via the record
		sn.cs.cache.Invalidate(sn.cs.info.Path)
	}
	w.coldBytes.Add(info.Bytes - oldBytes)
	w.compactions.Add(1)
	w.segsCompacted.Add(uint64(len(snaps)))
	s.mu.Unlock()

	// Victims are gone; retire the record. A failed save just means the
	// next Open re-runs the (idempotent) deletions.
	recs := w.pers.manifest.Compactions
	for i := range recs {
		if recs[i].Shard == rec.Shard && recs[i].NewGen == rec.NewGen {
			w.pers.manifest.Compactions = append(recs[:i], recs[i+1:]...)
			break
		}
	}
	_ = persist.SaveManifest(w.pers.dir, w.pers.manifest)
	return true
}

// containsColdLocked reports whether cs is still one of the shard's cold
// segments. Caller holds the lock.
func (s *shard) containsColdLocked(cs *coldSegment) bool {
	for _, c := range s.cold {
		if c == cs {
			return true
		}
	}
	return false
}
