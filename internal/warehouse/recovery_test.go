package warehouse

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// durableCfg is a small, spill-happy configuration: tiny segments and a
// one-segment hot budget force most history onto disk.
func durableCfg(dir string) Config {
	return Config{
		Shards: 4, SegmentEvents: 16, SegmentSpan: 10 * time.Minute,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
	}
}

// ingestMixed appends n events over several sources with occasional
// stragglers, mirroring the fleet shape the executor produces.
func ingestMixed(t *testing.T, w *Warehouse, n int) []*stt.Tuple {
	t.Helper()
	sources := []string{"umeda", "namba", "kyoto", "sakai"}
	var all []*stt.Tuple
	batch := make([]*stt.Tuple, 0, 8)
	for i := 0; i < n; i++ {
		off := time.Duration(i) * time.Minute
		if i%11 == 7 {
			off -= 90 * time.Minute // straggler into sealed history
		}
		tup := wTuple(off, float64(i%35), sources[i%len(sources)],
			34.4+float64(i%40)*0.01, 135.2+float64(i%40)*0.01)
		all = append(all, tup)
		batch = append(batch, tup)
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	return all
}

// sameSelect asserts two warehouses answer a query identically, event for
// event (Seq, time, payload).
func sameSelect(t *testing.T, got, want *Warehouse, q Query) {
	t.Helper()
	gevs, err := got.Select(q)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	wevs, err := want.Select(q)
	if err != nil {
		t.Fatalf("reference select: %v", err)
	}
	if len(gevs) != len(wevs) {
		t.Fatalf("select %+v: %d events, want %d", q, len(gevs), len(wevs))
	}
	for i := range gevs {
		if gevs[i].Seq != wevs[i].Seq {
			t.Fatalf("select %+v: [%d].Seq = %d, want %d", q, i, gevs[i].Seq, wevs[i].Seq)
		}
		g, w2 := gevs[i].Tuple, wevs[i].Tuple
		if !g.Time.Equal(w2.Time) || g.Source != w2.Source {
			t.Fatalf("select %+v: [%d] = %v, want %v", q, i, g, w2)
		}
		if g.Schema.IndexOf("temperature") >= 0 &&
			g.MustGet("temperature").AsFloat() != w2.MustGet("temperature").AsFloat() {
			t.Fatalf("select %+v: [%d] payload differs", q, i)
		}
	}
}

// queriesOver builds a representative query mix over the ingested span.
func queriesOver() []Query {
	region := geo.NewRect(geo.Point{Lat: 34.4, Lon: 135.2}, geo.Point{Lat: 34.6, Lon: 135.4})
	return []Query{
		{},
		{From: t0.Add(30 * time.Minute), To: t0.Add(2 * time.Hour)},
		{Sources: []string{"umeda", "kyoto"}},
		{Themes: []string{"weather"}},
		{Region: &region},
		{Cond: "temperature > 20"},
		{From: t0, To: t0.Add(3 * time.Hour), Limit: 25},
	}
}

func TestOpenWithoutDataDirIsInMemory(t *testing.T) {
	w, err := Open(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.pers != nil {
		t.Fatal("expected in-memory warehouse")
	}
	if err := w.Append(wTuple(0, 20, "s", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpilledEqualsInMemory is the acceptance criterion: a mixed
// hot/spilled history answers every query byte-identically to the pure
// in-memory configuration.
func TestSpilledEqualsInMemory(t *testing.T) {
	dir := t.TempDir()
	durable, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	mem := NewWithConfig(Config{Shards: 4, SegmentEvents: 16, SegmentSpan: 10 * time.Minute})

	tuples := ingestMixed(t, durable, 600)
	if err := mem.AppendBatch(tuples); err != nil {
		t.Fatal(err)
	}

	durable.DrainSpills() // settle the async spill pipeline before comparing
	if durable.Stats().SegmentsSpilled == 0 {
		t.Fatal("configuration did not spill; test is vacuous")
	}
	for _, q := range queriesOver() {
		sameSelect(t, durable, mem, q)
		gn, err := durable.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		wn, err := mem.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if gn != wn {
			t.Fatalf("count %+v = %d, want %d", q, gn, wn)
		}
	}

	// Envelope pruning still applies to spilled segments: a narrow window
	// over a wide history must not open most files.
	_, qs, err := durable.SelectWithStats(Query{From: t0.Add(8 * time.Hour), To: t0.Add(8*time.Hour + 10*time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if qs.SegmentsPruned == 0 || qs.SegmentsScanned > qs.SegmentsPruned {
		t.Errorf("narrow window scanned %d, pruned %d", qs.SegmentsScanned, qs.SegmentsPruned)
	}
}

func TestCrashRecoveryRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	tuples := ingestMixed(t, w, 500)
	beforeLen := w.Len()
	beforeStats := w.Stats()
	w.CloseHard() // crash

	re, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != beforeLen {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), beforeLen)
	}
	st := re.Stats()
	if st.RecoveredEvents != uint64(beforeLen) {
		t.Errorf("recovered_events = %d, want %d", st.RecoveredEvents, beforeLen)
	}
	if st.Sources != beforeStats.Sources {
		t.Errorf("sources = %d, want %d", st.Sources, beforeStats.Sources)
	}
	if !st.Earliest.Equal(beforeStats.Earliest) || !st.Latest.Equal(beforeStats.Latest) {
		t.Errorf("time bounds %v..%v, want %v..%v", st.Earliest, st.Latest, beforeStats.Earliest, beforeStats.Latest)
	}

	// The recovered store answers like a fresh in-memory store holding
	// the same tuples.
	mem := NewWithConfig(Config{Shards: 4, SegmentEvents: 16, SegmentSpan: 10 * time.Minute})
	if err := mem.AppendBatch(tuples); err != nil {
		t.Fatal(err)
	}
	for _, q := range queriesOver() {
		sameSelect(t, re, mem, q)
	}

	// And ingest continues: sequence numbers must not collide with
	// recovered ones.
	if err := re.Append(wTuple(1000*time.Minute, 21, "umeda", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	evs, err := re.Select(Query{Sources: []string{"umeda"}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d after recovery", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestMixed(t, w, 200)
	n := w.Len()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(wTuple(0, 20, "s", 34.7, 135.5)); err == nil {
		t.Fatal("append after Close must fail")
	}
	re, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("Len = %d, want %d", re.Len(), n)
	}
}

func TestRetentionSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	w.SetRetention(150)
	ingestMixed(t, w, 600)
	beforeLen := w.Len()
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	oldest := evs[0]
	w.CloseHard()

	re, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Evicted events must not be resurrected from the WAL or from
	// spilled files.
	if re.Len() != beforeLen {
		t.Fatalf("recovered Len = %d, want %d (no resurrection)", re.Len(), beforeLen)
	}
	revs, err := re.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if revs[0].Seq != oldest.Seq || !revs[0].Tuple.Time.Equal(oldest.Tuple.Time) {
		t.Fatalf("recovered oldest = %d@%v, want %d@%v",
			revs[0].Seq, revs[0].Tuple.Time, oldest.Seq, oldest.Tuple.Time)
	}
}

func TestWALCheckpointBoundsLogSize(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.WALBytes = 8 << 10 // rotate often so spills can retire files
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ingestMixed(t, w, 3000)
	w.DrainSpills() // checkpointing rides the spill worker; let it finish
	st := w.Stats()
	if st.SegmentsSpilled == 0 {
		t.Fatal("no spills")
	}
	// Nearly all events are spilled; checkpointing must have deleted the
	// bulk of the log. Allow generous slack for live tails.
	if st.WALBytes > st.DiskBytes/2 {
		t.Errorf("wal_bytes = %d of disk_bytes = %d; checkpoint not retiring files", st.WALBytes, st.DiskBytes)
	}
	walFiles := 0
	for i := 0; i < w.NumShards(); i++ {
		glob, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", i), "wal-*.log"))
		walFiles += len(glob)
	}
	if walFiles == 0 {
		t.Fatal("no live wal files")
	}
}

func TestRetentionDeletesColdFilesWhole(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ingestMixed(t, w, 800)
	w.DrainSpills() // cold files exist only once the background spills land
	spilledBytes := w.coldBytes.Load()
	if spilledBytes == 0 {
		t.Fatal("no cold bytes before retention")
	}
	segFiles := func() int {
		n := 0
		for i := 0; i < w.NumShards(); i++ {
			glob, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", i), "seg-*.seg"))
			n += len(glob)
		}
		return n
	}
	before := segFiles()
	w.SetRetention(100)
	if after := segFiles(); after >= before {
		t.Fatalf("segment files %d -> %d; retention must delete cold files", before, after)
	}
	if w.coldBytes.Load() >= spilledBytes {
		t.Fatal("cold byte accounting did not shrink")
	}
	if w.Len() > 100 {
		t.Fatalf("Len = %d after retention", w.Len())
	}
	// Queries still work over the surviving mixed history.
	if _, err := w.Select(Query{}); err != nil {
		t.Fatal(err)
	}
}

// TestColdCacheServesRepeatQueries: the second identical window query over
// spilled history must be served from the chunk cache, with identical
// results and the hit/miss split visible in QueryStats and Stats.
func TestColdCacheServesRepeatQueries(t *testing.T) {
	w, err := Open(durableCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ingestMixed(t, w, 600)
	w.DrainSpills()
	if w.Stats().SegmentsCold == 0 {
		t.Fatal("nothing spilled")
	}

	q := Query{From: t0, To: t0.Add(4 * time.Hour)}
	first, qs1, err := w.SelectWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs1.ColdCacheMisses == 0 {
		t.Fatalf("cold first pass reported no chunk misses: %+v", qs1)
	}
	second, qs2, err := w.SelectWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs2.ColdCacheHits == 0 || qs2.ColdCacheMisses != 0 {
		t.Fatalf("repeat pass hits=%d misses=%d, want all hits", qs2.ColdCacheHits, qs2.ColdCacheMisses)
	}
	if len(first) != len(second) {
		t.Fatalf("cached pass returned %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Seq != second[i].Seq {
			t.Fatalf("cached pass diverges at %d", i)
		}
	}
	st := w.Stats()
	if st.ColdCacheHits == 0 || st.ColdCacheMisses == 0 || st.ColdCacheBytes <= 0 {
		t.Fatalf("cache counters missing from Stats: %+v", st)
	}

	// A cache-disabled warehouse answers identically and reports only
	// misses.
	cfg := durableCfg(t.TempDir())
	cfg.ColdCacheBytes = -1
	off, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	ingestMixed(t, off, 600)
	off.DrainSpills()
	evs, qs, err := off.SelectWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs.ColdCacheHits != 0 || qs.ColdCacheMisses == 0 {
		t.Fatalf("disabled cache reported hits=%d misses=%d", qs.ColdCacheHits, qs.ColdCacheMisses)
	}
	if len(evs) != len(first) {
		t.Fatalf("disabled-cache select = %d events, want %d", len(evs), len(first))
	}
	if st := off.Stats(); st.ColdCacheBytes != 0 || st.ColdCacheHits != 0 {
		t.Fatalf("disabled cache leaks stats: %+v", st)
	}
}

func TestManifestPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.Shards = 4
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestMixed(t, w, 100)
	n := w.Len()
	w.CloseHard()

	cfg.Shards = 32 // disagreeing config must lose to the manifest
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 4 {
		t.Fatalf("shards = %d, want manifest's 4", re.NumShards())
	}
	if re.Len() != n {
		t.Fatalf("Len = %d, want %d", re.Len(), n)
	}
}

func TestTornWALTailRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.Shards = 1 // single shard so the torn file is deterministic
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, 20, "s", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	w.CloseHard()

	// Tear the newest WAL file mid-record.
	glob, err := filepath.Glob(filepath.Join(dir, "shard-000", "wal-*.log"))
	if err != nil || len(glob) == 0 {
		t.Fatalf("wal files: %v, %v", glob, err)
	}
	last := glob[len(glob)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Exactly the torn record is lost; everything else survives.
	if re.Len() != 39 {
		t.Fatalf("Len = %d after torn tail, want 39", re.Len())
	}
}

// TestCrashedCompactionAfterVictimDeletedByCut reconstructs the on-disk
// state of a specific crash interleaving that raw-seq duplicate detection
// alone cannot untangle:
//
//  1. the background cold-file compactor picks victims V1 and V2, reads
//     their live events, and publishes the merged file F (newest gen);
//  2. before the swap, an inline retention cut evicts all of V1 — deleting
//     its file outright — while V2 survives above the watermark;
//  3. the process dies before installCompaction runs, leaving F behind.
//
// Recovery registers V2, then reaches F. F is not a raw-seq subset of the
// registered files (the dead V1's seqs exist nowhere else), so the
// duplicate sweep keeps it — but after the watermark re-trim removes V1's
// evicted events, every survivor F holds is exactly V2's live history,
// already registered. Registering F double-counted those survivors: the
// CrashReopen/CrashMidSpill model-check divergence (impl Len above the
// model by one victim file's survivor count).
func TestCrashedCompactionAfterVictimDeletedByCut(t *testing.T) {
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shard-000")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// V1: seqs 0-3, all below the watermark (the cut will delete it whole).
	var v1 []persist.Event
	for i := 0; i < 4; i++ {
		tup := wTuple(time.Duration(i)*time.Minute, 20, "s", 34.7, 135.5)
		v1 = append(v1, persist.Event{Seq: uint64(i), Tuple: tup})
	}
	// V2: seqs 4-10, all above the watermark (survives the cut untouched).
	var v2 []persist.Event
	for i := 0; i < 7; i++ {
		tup := wTuple(time.Duration(10+i)*time.Minute, 20, "s", 34.7, 135.5)
		v2 = append(v2, persist.Event{Seq: uint64(4 + i), Tuple: tup})
	}
	merged := append(append([]persist.Event{}, v1...), v2...)
	persist.SortEvents(merged)

	write := func(gen int, events []persist.Event) string {
		path := filepath.Join(shardDir, persist.SegmentFileName(gen))
		if _, err := persist.WriteSegmentVersion(path, events, persist.SegmentV1); err != nil {
			t.Fatal(err)
		}
		return path
	}
	v1Path := write(0, v1)
	write(1, v2)
	write(2, merged) // the published, never-installed compaction output

	// The retention cut: watermark above all of V1, below all of V2; its
	// mark postdates every file, so the watermark applies to all three.
	man := persist.Manifest{Version: 1, Shards: 1, MaxSeq: 10}
	man.AddCut(persist.Cut{
		Watermark: persist.Key{Time: t0.Add(5 * time.Minute), Seq: ^uint64(0)},
		Marks:     []persist.ShardMark{{WALFile: 1, WALOff: 1 << 40, SegGen: 3}},
	})
	if err := persist.SaveManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	// The cut already deleted V1's file before the crash.
	if err := os.Remove(v1Path); err != nil {
		t.Fatal(err)
	}

	cfg := durableCfg(dir)
	cfg.Shards = 1
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Len(); got != len(v2) {
		t.Fatalf("Len = %d after recovery, want %d (V2's survivors once)", got, len(v2))
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("seq %d returned twice: merged compaction file resurrected a survivor", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	// The merged file must be gone, not just logically empty.
	if _, err := os.Stat(filepath.Join(shardDir, persist.SegmentFileName(2))); !os.IsNotExist(err) {
		t.Fatalf("merged file still present after recovery (stat err %v)", err)
	}
}

// maxSelectSeq returns the highest Seq among all live events.
func maxSelectSeq(t *testing.T, w *Warehouse) uint64 {
	t.Helper()
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	var max uint64
	for _, ev := range evs {
		if ev.Seq > max {
			max = ev.Seq
		}
	}
	return max
}

// TestManifestCarriesSeqHighWater: a retention cut deletes whole cold
// files; the manifest it saves must carry the seq high-water mark, because
// the deleted files may hold the only remaining trace of the highest seqs
// (spilled, then WAL-checkpointed). Without the stamp a crash after such a
// cut regresses the counter and recovery reissues live sequence numbers.
func TestManifestCarriesSeqHighWater(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ingestMixed(t, w, 300)
	w.DrainSpills()
	w.SetRetention(10)
	man, _, err := persist.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.MaxSeq != 299 {
		t.Fatalf("manifest MaxSeq = %d after cut, want 299", man.MaxSeq)
	}
}

// TestRecoveryHonorsManifestSeqHighWater: recovery must seed the sequence
// counter past the manifest's high-water mark even when no surviving event
// carries it, so post-crash appends never reuse a pre-crash seq.
func TestRecoveryHonorsManifestSeqHighWater(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestMixed(t, w, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := persist.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.MaxSeq = 1000 // as if seqs up to 1000 were assigned, then evicted
	if err := persist.SaveManifest(dir, man); err != nil {
		t.Fatal(err)
	}

	re, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Append(wTuple(8*time.Hour, 21, "umeda", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if got := maxSelectSeq(t, re); got != 1001 {
		t.Fatalf("first post-recovery append got seq %d, want 1001", got)
	}
	// The raised counter goes durable at the next manifest write too.
	re.SetRetention(5)
	man, _, err = persist.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.MaxSeq != 1001 {
		t.Fatalf("manifest MaxSeq = %d after retention cut, want 1001", man.MaxSeq)
	}
}
