package warehouse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// TestSpillThrottleBounds: the spill queue is bounded — an appender over
// the backlog cap waits (off-lock) for the worker rather than queueing
// sealed segments without limit — and the throttle never deadlocks with
// the worker, drain, or close.
func TestSpillThrottleBounds(t *testing.T) {
	w, err := Open(Config{
		Shards: 1, SegmentEvents: 8, SegmentSpan: time.Hour,
		DataDir: t.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Sample the queue depth while tiny segments (8 events) seal as fast
	// as one appender can fill them: without the throttle the single
	// worker falls behind and the queue grows into the hundreds.
	bound := backlogPerShard * len(w.shards)
	stopSampling := make(chan struct{})
	maxDepth := make(chan int, 1)
	go func() {
		depth := 0
		for {
			select {
			case <-stopSampling:
				maxDepth <- depth
				return
			default:
			}
			w.spill.mu.Lock()
			if d := len(w.spill.queue); d > depth {
				depth = d
			}
			w.spill.mu.Unlock()
		}
	}()
	for i := 0; i < 5000; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, 20, "s", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	close(stopSampling)
	// An append can seal (and enqueue) one more segment after its
	// throttle check, so the observed depth may exceed the bound by the
	// few appends in flight — but never by a multiple of it.
	if depth := <-maxDepth; depth > bound+2 {
		t.Fatalf("queue depth reached %d, bound %d: throttle not holding", depth, bound)
	}
	w.DrainSpills()
	// Sanity: throttle on a drained queue returns immediately.
	done := make(chan struct{})
	go func() { w.throttleSpill(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("throttle blocked on an empty queue")
	}
	if got := int(w.Evicted()) + w.Len(); got != 5000 {
		t.Fatalf("conservation after throttled ingest: %d, want 5000", got)
	}
}

// TestSpillStress hammers the asynchronous spill pipeline: a one-segment
// hot budget and tiny segments force continuous background spilling while
// skewed writers (with deep stragglers) ingest, time-range readers select
// and count mid-spill, and a goroutine flaps retention so compactions race
// the spill worker's write→swap window. Run under -race in CI.
//
// Invariants: no event lost or double-counted across a spill swap (every
// mid-flight Select sees unique seqs in time order; afterwards evicted +
// stored equals appended exactly), the recovered store after a crash holds
// exactly the surviving events, and the chunk cache serves repeat cold
// reads without changing any result.
func TestSpillStress(t *testing.T) {
	const (
		writers   = 6
		perWriter = 1200
		maxEvents = 1500
	)
	dir := t.TempDir()
	cfg := Config{
		Shards: 4, SegmentEvents: 64, SegmentSpan: 20 * time.Minute,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
	}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: window selects and counts run while segments move from hot
	// to cold underneath them.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				from := t0.Add(time.Duration(n%20) * 30 * time.Minute)
				evs, err := w.Select(Query{From: from, To: from.Add(4 * time.Hour)})
				if err != nil {
					t.Error(err)
					return
				}
				seen := map[uint64]bool{}
				for i, ev := range evs {
					if seen[ev.Seq] {
						t.Errorf("mid-spill select saw Seq %d twice", ev.Seq)
						return
					}
					seen[ev.Seq] = true
					if i > 0 && ev.Tuple.Time.Before(evs[i-1].Tuple.Time) {
						t.Error("mid-spill select out of time order")
						return
					}
				}
				if _, err := w.Count(Query{From: from, To: from.Add(time.Hour)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Retention flapper: compactions must interleave safely with in-flight
	// spill writes (a trimmed victim's stale file is discarded, never
	// installed).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				w.SetRetention(0)
			case 1:
				w.SetRetention(maxEvents)
			default:
				w.SetRetention(maxEvents / 3)
			}
		}
	}()
	// Skewed writers with deep stragglers, mixing Append and AppendBatch.
	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			source := fmt.Sprintf("spill-%d", wr)
			skew := time.Duration(wr) * 7 * time.Minute
			for i := 0; i < perWriter; i++ {
				off := skew + time.Duration(i)*time.Minute
				if i%8 == 7 {
					off -= 5 * time.Hour // straggler: churns the ooo segment
				}
				tup := wTuple(off, 20, source, 34.7, 135.5)
				var err error
				if i%16 == 15 {
					err = w.AppendBatch([]*stt.Tuple{tup})
				} else {
					err = w.Append(tup)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	w.SetRetention(maxEvents) // settle on the final bound
	w.DrainSpills()           // let the queue empty so stats are stable
	if st := w.Stats(); st.SegmentsSpilled == 0 {
		t.Fatal("hot budget 1 never spilled; stress is vacuous")
	}
	if w.Len() > maxEvents {
		t.Errorf("retention bound violated: %d > %d", w.Len(), maxEvents)
	}
	// Conservation: nothing lost to a swap, nothing double-counted.
	if got := int(w.Evicted()) + w.Len(); got != writers*perWriter {
		t.Errorf("evicted + len = %d, want %d", got, writers*perWriter)
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != w.Len() {
		t.Errorf("select all = %d, Len = %d", len(evs), w.Len())
	}
	seen := map[uint64]bool{}
	for i, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence %d after spilling", ev.Seq)
		}
		seen[ev.Seq] = true
		if i > 0 && ev.Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("final select out of time order")
		}
	}
	// Repeat the full select: the second pass rides the chunk cache and
	// must be byte-identical.
	again, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(evs) {
		t.Fatalf("cached re-select = %d events, want %d", len(again), len(evs))
	}
	for i := range again {
		if again[i].Seq != evs[i].Seq {
			t.Fatalf("cached re-select diverges at %d", i)
		}
	}
	if st := w.Stats(); st.ColdCacheHits == 0 && st.SegmentsCold > 0 {
		t.Error("repeat cold reads never hit the chunk cache")
	}

	// Crash and recover: the surviving set must come back exactly.
	beforeLen := w.Len()
	w.CloseHard()
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != beforeLen {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), beforeLen)
	}
	revs, err := re.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range revs {
		if revs[i].Seq != evs[i].Seq {
			t.Fatalf("recovered select diverges at %d: seq %d, want %d", i, revs[i].Seq, evs[i].Seq)
		}
	}
}
