package warehouse

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"streamloader/internal/ops"
	"streamloader/internal/stt"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// recvUpdate reads one update with a deadline.
func recvUpdate(t *testing.T, sub *Subscription) ViewUpdate {
	t.Helper()
	select {
	case u, ok := <-sub.Updates():
		if !ok {
			t.Fatal("updates channel closed")
		}
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("no update within deadline")
	}
	panic("unreachable")
}

// viewQueries is the query matrix the equality tests run over: grouped
// AVG (merge-exactness), bucketed COUNT, filtered SUM, MIN with a
// payload condition.
func viewQueries() []AggQuery {
	return []AggQuery{
		{Func: ops.AggAvg, Field: "temperature", GroupBy: []string{"source"}},
		{Func: ops.AggCount, Bucket: time.Hour},
		{Query: Query{Sources: []string{"umeda"}}, Func: ops.AggSum, Field: "temperature"},
		{Query: Query{Cond: "temperature > 16"}, Func: ops.AggMin, Field: "temperature", GroupBy: []string{"theme"}},
	}
}

// TestViewBackfillEqualsAggregate: a freshly registered view's rows are
// byte-for-byte the rows Aggregate returns for the same query — over hot
// in-memory history and over spilled cold history alike.
func TestViewBackfillEqualsAggregate(t *testing.T) {
	cold, hot := aggColdPair(t, 600)
	for _, w := range []*Warehouse{loaded(t), hot, cold} {
		for _, q := range viewQueries() {
			v, err := w.RegisterView(q, ops.UpdatePolicy{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.Rows()
			if err != nil {
				t.Fatal(err)
			}
			want := aggRows(t, w, q)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("backfill of %+v: %s", q, diffAggRows(got, want))
			}
			v.Release()
		}
		if n := w.ViewCount(); n != 0 {
			t.Fatalf("released all views, %d left registered", n)
		}
	}
}

// TestViewIncrementalEqualsAggregate: after registration, appends fold
// into the view incrementally; at every quiescent point Rows equals a
// fresh Aggregate.
func TestViewIncrementalEqualsAggregate(t *testing.T) {
	w := loaded(t)
	defer w.Close()
	views := make([]*View, 0)
	for _, q := range viewQueries() {
		v, err := w.RegisterView(q, ops.UpdatePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		views = append(views, v)
	}
	for i := 0; i < 40; i++ {
		tup := wTuple(time.Duration(i)*17*time.Minute, float64(10+i%20),
			fmt.Sprintf("station-%d", i%5), 34.6+float64(i%7)*0.02, 135.4)
		if err := w.Append(tup); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			// Exercise the batch path's tap dispatch too.
			batch := []*stt.Tuple{
				wTuple(time.Duration(i)*time.Hour, float64(i), "umeda", 34.7, 135.5),
				sTuple(time.Duration(i)*time.Minute, "batch tweet"),
			}
			if err := w.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	for vi, v := range views {
		got, err := v.Rows()
		if err != nil {
			t.Fatal(err)
		}
		want := aggRows(t, w, viewQueries()[vi])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("view %d diverged: %s", vi, diffAggRows(got, want))
		}
	}
}

// TestViewPushPerEvent: an event-policy subscriber receives pushed
// snapshots that converge to the live aggregate.
func TestViewPushPerEvent(t *testing.T) {
	w := loaded(t)
	defer w.Close()
	q := AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}}
	sub, err := w.Subscribe(q, SubscribeOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	first := recvUpdate(t, sub)
	if !first.Resnapshot || first.Version == 0 {
		t.Fatalf("first update = %+v, want initial resnapshot", first)
	}
	if !reflect.DeepEqual(first.Rows, aggRows(t, w, q)) {
		t.Fatalf("initial snapshot diverges: %s", diffAggRows(first.Rows, aggRows(t, w, q)))
	}
	if err := w.Append(wTuple(5*time.Hour, 21, "tennoji", 34.65, 135.51)); err != nil {
		t.Fatal(err)
	}
	want := aggRows(t, w, q)
	for {
		u := recvUpdate(t, sub)
		if u.Version <= first.Version {
			t.Fatalf("version did not advance: %d -> %d", first.Version, u.Version)
		}
		if reflect.DeepEqual(u.Rows, want) {
			return
		}
	}
}

// TestViewRetentionRebuild: a retention cut invalidates the partials; the
// next snapshot rebuilds and equals Aggregate over the surviving events.
func TestViewRetentionRebuild(t *testing.T) {
	w := NewWithConfig(Config{Shards: 2, SegmentEvents: 16})
	defer w.Close()
	for i := 0; i < 200; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, float64(i%30),
			fmt.Sprintf("s-%d", i%3), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	q := AggQuery{Func: ops.AggMin, Field: "temperature", GroupBy: []string{"source"}}
	v, err := w.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	w.SetRetention(40)
	waitFor(t, 5*time.Second, "retention to evict", func() bool { return w.Len() <= 40 })
	got, err := v.Rows()
	if err != nil {
		t.Fatal(err)
	}
	want := aggRows(t, w, q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-retention view diverges (MIN must forget evicted events): %s", diffAggRows(got, want))
	}
}

// TestViewSlowConsumerShed: a buffer-1 subscriber that never keeps up is
// shed, never blocks ingest, and its final snapshot still converges.
func TestViewSlowConsumerShed(t *testing.T) {
	w := New()
	defer w.Close()
	q := AggQuery{Func: ops.AggSum, Field: "temperature"}
	sub, err := w.Subscribe(q, SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Never read while a burst lands: every publish beyond the first must
	// shed the one queued update.
	for i := 0; i < 500; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Second, 2, fmt.Sprintf("s-%d", i%8), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	want := aggRows(t, w, q)
	var last ViewUpdate
	waitFor(t, 5*time.Second, "shed subscriber to converge", func() bool {
		for {
			select {
			case u, ok := <-sub.Updates():
				if !ok {
					t.Fatal("channel closed early")
				}
				last = u
			default:
				return reflect.DeepEqual(last.Rows, want)
			}
		}
	})
	if last.Shed == 0 {
		t.Error("500 appends into a buffer-1 subscriber shed nothing")
	}
	if !last.Resnapshot {
		t.Error("post-shed update not marked Resnapshot")
	}
}

// TestViewDedupAndRelease: identical (query, policy) registrations share
// one View; distinct policies do not; the registry frees on last release.
func TestViewDedupAndRelease(t *testing.T) {
	w := loaded(t)
	defer w.Close()
	q := AggQuery{Func: ops.AggCount}
	v1, err := w.RegisterView(q, ops.UpdatePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := w.RegisterView(q, ops.UpdatePolicy{Mode: ops.UpdateEvent})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("identical registrations produced distinct views")
	}
	v3, err := w.RegisterView(q, ops.UpdatePolicy{Mode: ops.UpdateCount, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("distinct policies shared a view")
	}
	if n := w.ViewCount(); n != 2 {
		t.Fatalf("ViewCount = %d, want 2", n)
	}
	v1.Release()
	if n := w.ViewCount(); n != 2 {
		t.Fatalf("ViewCount after first release = %d, want 2 (v2 still holds)", n)
	}
	v2.Release()
	v3.Release()
	if n := w.ViewCount(); n != 0 {
		t.Fatalf("ViewCount after all releases = %d, want 0", n)
	}
	if _, err := v1.Rows(); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("Rows on a released view = %v, want ErrViewClosed", err)
	}
}

// TestViewUnsubscribeFreesEverything: closing the last subscription frees
// the registry slot and the publisher goroutine (no leak).
func TestViewUnsubscribeFreesEverything(t *testing.T) {
	w := loaded(t)
	defer w.Close()
	before := runtime.NumGoroutine()
	subs := make([]*Subscription, 0, 10)
	for i := 0; i < 10; i++ {
		sub, err := w.Subscribe(AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}},
			SubscribeOptions{Buffer: 4})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	if n := w.ViewCount(); n != 1 {
		t.Fatalf("10 identical subscribes made %d views, want 1 shared", n)
	}
	if n := w.SubscriberCount(); n != 10 {
		t.Fatalf("SubscriberCount = %d, want 10", n)
	}
	for _, sub := range subs {
		sub.Close()
		sub.Close() // idempotent
	}
	if n := w.ViewCount(); n != 0 {
		t.Fatalf("last unsubscribe left %d views registered", n)
	}
	if n := w.SubscriberCount(); n != 0 {
		t.Fatalf("SubscriberCount after close = %d, want 0", n)
	}
	waitFor(t, 5*time.Second, "publisher goroutines to exit", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
	// The channel must be closed so range loops terminate.
	waitFor(t, time.Second, "subscriber channel close", func() bool {
		_, ok := <-subs[0].Updates()
		return !ok
	})
}

// TestViewSubscriberCap: the warehouse-level cap answers over-subscription
// with ErrTooManySubscribers.
func TestViewSubscriberCap(t *testing.T) {
	w := loaded(t)
	defer w.Close()
	opt := SubscribeOptions{Buffer: 1, MaxSubscribers: 2}
	s1, err := w.Subscribe(AggQuery{Func: ops.AggCount}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := w.Subscribe(AggQuery{Func: ops.AggCount}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := w.Subscribe(AggQuery{Func: ops.AggCount}, opt); !errors.Is(err, ErrTooManySubscribers) {
		t.Fatalf("third subscribe = %v, want ErrTooManySubscribers", err)
	}
}

// TestViewCountPolicy: a count:N view stays quiet below the threshold and
// publishes once N changes accumulate.
func TestViewCountPolicy(t *testing.T) {
	w := New()
	defer w.Close()
	q := AggQuery{Func: ops.AggCount}
	sub, err := w.Subscribe(q, SubscribeOptions{
		Policy: ops.UpdatePolicy{Mode: ops.UpdateCount, N: 10}, Buffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recvUpdate(t, sub) // initial snapshot
	for i := 0; i < 9; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, 20, "umeda", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case u := <-sub.Updates():
		t.Fatalf("count:10 published at 9 events: %+v", u)
	case <-time.After(100 * time.Millisecond):
	}
	if err := w.Append(wTuple(10*time.Minute, 20, "umeda", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	u := recvUpdate(t, sub)
	if len(u.Rows) != 1 || u.Rows[0].Count != 10 {
		t.Fatalf("threshold update = %+v, want count 10", u.Rows)
	}
}

// TestViewIntervalPolicy: an interval view coalesces a burst into a
// ticker-paced snapshot.
func TestViewIntervalPolicy(t *testing.T) {
	w := New()
	defer w.Close()
	sub, err := w.Subscribe(AggQuery{Func: ops.AggCount}, SubscribeOptions{
		Policy: ops.UpdatePolicy{Mode: ops.UpdateInterval, Every: 30 * time.Millisecond}, Buffer: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	recvUpdate(t, sub)
	for i := 0; i < 100; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Second, 20, "umeda", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	u := recvUpdate(t, sub)
	if len(u.Rows) != 1 || u.Rows[0].Count != 100 {
		t.Fatalf("interval snapshot = %+v, want the coalesced count 100", u.Rows)
	}
}

// TestWarehouseCloseClosesViews: Close tears every view down and closes
// subscriber channels, in-memory warehouses included.
func TestWarehouseCloseClosesViews(t *testing.T) {
	w := loaded(t)
	sub, err := w.Subscribe(AggQuery{Func: ops.AggCount}, SubscribeOptions{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "channel close on warehouse Close", func() bool {
		for {
			select {
			case _, ok := <-sub.Updates():
				if !ok {
					return true
				}
			default:
				return false
			}
		}
	})
	if _, err := w.RegisterView(AggQuery{Func: ops.AggCount}, ops.UpdatePolicy{}); err != nil {
		_ = err // registering after Close is allowed to fail or succeed; just no panic
	}
}

// TestViewInvalidRegistrations: plan and policy validation reject early,
// registering nothing.
func TestViewInvalidRegistrations(t *testing.T) {
	w := loaded(t)
	defer w.Close()
	if _, err := w.RegisterView(AggQuery{Func: "median"}, ops.UpdatePolicy{}); !errors.Is(err, ErrInvalidAggQuery) {
		t.Fatalf("bad func = %v, want ErrInvalidAggQuery", err)
	}
	if _, err := w.RegisterView(AggQuery{Func: ops.AggSum}, ops.UpdatePolicy{}); !errors.Is(err, ErrInvalidAggQuery) {
		t.Fatalf("SUM without field = %v, want ErrInvalidAggQuery", err)
	}
	if _, err := w.RegisterView(AggQuery{Func: ops.AggCount}, ops.UpdatePolicy{Mode: "cron"}); !errors.Is(err, ErrInvalidAggQuery) {
		t.Fatalf("bad policy = %v, want ErrInvalidAggQuery", err)
	}
	if n := w.ViewCount(); n != 0 {
		t.Fatalf("failed registrations left %d views", n)
	}
}
