package warehouse

import (
	"fmt"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

func aggRows(t *testing.T, w *Warehouse, q AggQuery) []AggRow {
	t.Helper()
	rows, _, err := w.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestAggregateCount(t *testing.T) {
	w := loaded(t)
	rows := aggRows(t, w, AggQuery{Func: ops.AggCount})
	if len(rows) != 1 || rows[0].Count != 5 || rows[0].Value != 5 {
		t.Fatalf("bare count = %+v, want one row of 5", rows)
	}
	// COUNT(field) counts only events carrying the field non-null: the
	// social tuple has no temperature.
	rows = aggRows(t, w, AggQuery{Func: ops.AggCount, Field: "temperature"})
	if len(rows) != 1 || rows[0].Count != 4 {
		t.Fatalf("count(temperature) = %+v, want 4", rows)
	}
}

func TestAggregateFuncs(t *testing.T) {
	w := loaded(t) // temperatures 20, 26, 30, 15
	for _, tc := range []struct {
		fn   ops.AggFunc
		want float64
	}{
		{ops.AggSum, 91},
		{ops.AggAvg, 91.0 / 4},
		{ops.AggMin, 15},
		{ops.AggMax, 30},
	} {
		rows := aggRows(t, w, AggQuery{Func: tc.fn, Field: "temperature"})
		if len(rows) != 1 || rows[0].Value != tc.want || rows[0].Count != 4 {
			t.Fatalf("%s = %+v, want value %v over 4 events", tc.fn, rows, tc.want)
		}
	}
}

func TestAggregateGroupBySource(t *testing.T) {
	w := loaded(t)
	rows := aggRows(t, w, AggQuery{Func: ops.AggAvg, Field: "temperature", GroupBy: []string{"source"}})
	want := []AggRow{
		{Source: "kyoto", Count: 1, Value: 15},
		{Source: "namba", Count: 1, Value: 30},
		{Source: "umeda", Count: 2, Value: 23},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v, want %d groups", rows, len(want))
	}
	for i, r := range rows {
		if r.Source != want[i].Source || r.Count != want[i].Count || r.Value != want[i].Value {
			t.Fatalf("row %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestAggregateGroupByTheme(t *testing.T) {
	w := loaded(t)
	rows := aggRows(t, w, AggQuery{Func: ops.AggCount, GroupBy: []string{"theme"}})
	if len(rows) != 2 || rows[0].Theme != "social" || rows[0].Count != 1 ||
		rows[1].Theme != "weather" || rows[1].Count != 4 {
		t.Fatalf("theme groups = %+v, want social:1 weather:4", rows)
	}
}

func TestAggregateBucketed(t *testing.T) {
	w := loaded(t)
	rows := aggRows(t, w, AggQuery{Func: ops.AggCount, Bucket: time.Hour})
	// t0: umeda; t0+1h: umeda and the 90-minute tweet; t0+2h: namba;
	// t0+3h: kyoto.
	wantCounts := map[time.Time]int64{
		t0: 1, t0.Add(time.Hour): 2, t0.Add(2 * time.Hour): 1, t0.Add(3 * time.Hour): 1,
	}
	if len(rows) != len(wantCounts) {
		t.Fatalf("buckets = %+v, want %d", rows, len(wantCounts))
	}
	for i, r := range rows {
		if i > 0 && !rows[i-1].Bucket.Before(r.Bucket) {
			t.Fatal("buckets out of order")
		}
		if wantCounts[r.Bucket] != r.Count {
			t.Fatalf("bucket %v count = %d, want %d", r.Bucket, r.Count, wantCounts[r.Bucket])
		}
	}
}

func TestAggregateFilters(t *testing.T) {
	w := loaded(t)
	rows := aggRows(t, w, AggQuery{
		Query: Query{Sources: []string{"umeda"}},
		Func:  ops.AggSum, Field: "temperature",
	})
	if len(rows) != 1 || rows[0].Value != 46 {
		t.Fatalf("sum over umeda = %+v, want 46", rows)
	}
	rows = aggRows(t, w, AggQuery{
		Query: Query{Themes: []string{"social"}},
		Func:  ops.AggCount,
	})
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("count over social = %+v, want 1", rows)
	}
	rows = aggRows(t, w, AggQuery{
		Query: Query{Cond: "temperature > 19"},
		Func:  ops.AggMax, Field: "temperature",
	})
	if len(rows) != 1 || rows[0].Value != 30 || rows[0].Count != 3 {
		t.Fatalf("max over cond = %+v, want 30 over 3", rows)
	}
	rows = aggRows(t, w, AggQuery{
		Query: Query{From: t0.Add(time.Hour), To: t0.Add(3 * time.Hour)},
		Func:  ops.AggCount,
	})
	if len(rows) != 1 || rows[0].Count != 3 {
		t.Fatalf("windowed count = %+v, want 3", rows)
	}
}

func TestAggregateValidation(t *testing.T) {
	w := loaded(t)
	for name, q := range map[string]AggQuery{
		"unknown func":  {Func: "MEDIAN"},
		"missing field": {Func: ops.AggAvg},
		"bad group":     {Func: ops.AggCount, GroupBy: []string{"region"}},
		"neg bucket":    {Func: ops.AggCount, Bucket: -time.Hour},
	} {
		if _, _, err := w.Aggregate(q); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Lower-case function names parse (the HTTP layer passes them through).
	if _, _, err := w.Aggregate(AggQuery{Func: "count"}); err != nil {
		t.Errorf("lower-case func: %v", err)
	}
}

func TestAggregateMaxGroups(t *testing.T) {
	w := loaded(t)
	_, _, err := w.Aggregate(AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}, MaxGroups: 2})
	if err == nil {
		t.Fatal("want group-cardinality error")
	}
}

// aggColdPair loads the same events into a spill-everything durable
// warehouse and an in-memory twin.
func aggColdPair(t *testing.T, n int) (cold, hot *Warehouse) {
	t.Helper()
	cold, err := Open(Config{
		Shards: 2, SegmentEvents: 64, SegmentSpan: time.Hour,
		DataDir: t.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cold.Close() })
	hot = NewWithConfig(Config{Shards: 2, SegmentEvents: 64, SegmentSpan: time.Hour})
	for i := 0; i < n; i++ {
		tup := wTuple(time.Duration(i)*time.Minute, float64(10+i%25),
			fmt.Sprintf("src-%d", i%4), 34.4+float64(i%10)*0.01, 135.2+float64(i%10)*0.01)
		if err := cold.Append(tup); err != nil {
			t.Fatal(err)
		}
		if err := hot.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	cold.DrainSpills()
	if cold.Stats().SegmentsCold == 0 {
		t.Fatal("nothing spilled")
	}
	return cold, hot
}

func diffAggRows(got, want []AggRow) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !g.Bucket.Equal(w.Bucket) || g.Source != w.Source || g.Theme != w.Theme ||
			g.Count != w.Count || g.Value != w.Value {
			return fmt.Sprintf("row %d = %+v, want %+v", i, g, w)
		}
	}
	return ""
}

// TestAggregateColdHeaderFastPath: a fully-covered COUNT over spilled
// history must be answered from cold-segment headers alone — zero chunks
// read — and be identical to the in-memory answer and to the forced
// slow path (an all-covering Region disables the header path without
// changing the result set).
func TestAggregateColdHeaderFastPath(t *testing.T) {
	cold, hot := aggColdPair(t, 1000)
	for name, q := range map[string]AggQuery{
		"plain":     {Func: ops.AggCount},
		"by source": {Func: ops.AggCount, GroupBy: []string{"source"}},
		"by theme":  {Func: ops.AggCount, GroupBy: []string{"theme"}},
		"one theme": {Query: Query{Themes: []string{"weather"}}, Func: ops.AggCount},
		"source filter": {Query: Query{Sources: []string{"src-1", "src-2"}},
			Func: ops.AggCount, GroupBy: []string{"source"}},
		"bucketed": {Func: ops.AggCount, Bucket: 24 * 365 * time.Hour},
	} {
		rows, qs, err := cold.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if qs.ColdHeaderOnly == 0 {
			t.Errorf("%s: no cold segment answered from headers (%+v)", name, qs)
		}
		if qs.ColdCacheHits+qs.ColdCacheMisses != 0 {
			t.Errorf("%s: fast path read %d chunks", name, qs.ColdCacheHits+qs.ColdCacheMisses)
		}
		wantRows := aggRows(t, hot, q)
		if diff := diffAggRows(rows, wantRows); diff != "" {
			t.Errorf("%s vs in-memory: %s", name, diff)
		}
		// Force full materialization with a Region covering everything;
		// the rows must be byte-identical to the header-only answer.
		slow := q
		rect := geo.NewRect(geo.Point{Lat: -90, Lon: -180}, geo.Point{Lat: 90, Lon: 180})
		slow.Region = &rect
		slowRows, sqs, err := cold.Aggregate(slow)
		if err != nil {
			t.Fatalf("%s slow: %v", name, err)
		}
		if sqs.ColdHeaderOnly != 0 {
			t.Errorf("%s: region query still took the header path", name)
		}
		if diff := diffAggRows(rows, slowRows); diff != "" {
			t.Errorf("%s fast vs slow: %s", name, diff)
		}
	}
}

// TestAggregateColdFallbacks: queries the header cannot answer — numeric
// aggregates, sub-file windows and buckets, source×theme combinations —
// read the file and still agree with the in-memory twin.
func TestAggregateColdFallbacks(t *testing.T) {
	cold, hot := aggColdPair(t, 1000)
	for name, q := range map[string]AggQuery{
		"avg":          {Func: ops.AggAvg, Field: "temperature", GroupBy: []string{"source"}},
		"sum bucketed": {Func: ops.AggSum, Field: "temperature", Bucket: time.Hour},
		"fine bucket":  {Func: ops.AggCount, Bucket: 10 * time.Minute},
		"window": {Query: Query{From: t0.Add(2 * time.Hour), To: t0.Add(5 * time.Hour)},
			Func: ops.AggMin, Field: "temperature"},
		"source and theme": {Query: Query{Themes: []string{"weather"}},
			Func: ops.AggCount, GroupBy: []string{"source"}},
		"two themes": {Query: Query{Themes: []string{"weather", "social"}},
			Func: ops.AggCount},
	} {
		rows, _, err := cold.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if diff := diffAggRows(rows, aggRows(t, hot, q)); diff != "" {
			t.Errorf("%s: %s", name, diff)
		}
	}
}

// TestAggregateColdAfterRetention: logical trims of the boundary cold file
// keep the header stats live-exact, so the fast path stays correct after
// retention.
func TestAggregateColdAfterRetention(t *testing.T) {
	cold, _ := aggColdPair(t, 1000)
	cold.SetRetention(400)
	want, _, err := cold.Aggregate(AggQuery{
		Query: Query{Region: allRegion()}, // force the slow path
		Func:  ops.AggCount, GroupBy: []string{"source"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, qs, err := cold.Aggregate(AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}})
	if err != nil {
		t.Fatal(err)
	}
	if qs.ColdHeaderOnly == 0 {
		t.Fatalf("no header-only segments after retention (%+v)", qs)
	}
	if diff := diffAggRows(got, want); diff != "" {
		t.Fatal(diff)
	}
	var total int64
	for _, r := range got {
		total += r.Count
	}
	if int(total) != cold.Len() {
		t.Fatalf("grouped counts sum to %d, Len = %d", total, cold.Len())
	}
}

func allRegion() *geo.Rect {
	rect := geo.NewRect(geo.Point{Lat: -90, Lon: -180}, geo.Point{Lat: 90, Lon: 180})
	return &rect
}

// TestAggregateHeterogeneousSchemas: numeric aggregates skip events whose
// schema lacks the field (or holds it non-numerically) without error.
func TestAggregateHeterogeneousSchemas(t *testing.T) {
	w := New()
	if err := w.Append(wTuple(0, 21, "umeda", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(sTuple(time.Minute, "no temperature here")); err != nil {
		t.Fatal(err)
	}
	// A schema where "temperature" is a string must not contribute either.
	oddSchema := stt.MustSchema([]stt.Field{
		stt.NewField("temperature", stt.KindString, ""),
	}, stt.GranMinute, stt.SpatPoint, "odd")
	odd := (&stt.Tuple{
		Schema: oddSchema,
		Values: []stt.Value{stt.String("hot")},
		Time:   t0.Add(2 * time.Minute), Lat: 34.7, Lon: 135.5,
		Theme: "odd", Source: "odd-1",
	}).AlignSTT()
	if err := w.Append(odd); err != nil {
		t.Fatal(err)
	}
	rows := aggRows(t, w, AggQuery{Func: ops.AggSum, Field: "temperature"})
	if len(rows) != 1 || rows[0].Count != 1 || rows[0].Value != 21 {
		t.Fatalf("sum = %+v, want 21 over 1 event", rows)
	}
	// COUNT(temperature) counts the string value too — present, non-null.
	rows = aggRows(t, w, AggQuery{Func: ops.AggCount, Field: "temperature"})
	if len(rows) != 1 || rows[0].Count != 2 {
		t.Fatalf("count(field) = %+v, want 2", rows)
	}
}

// aggChunkPair loads identical events into a durable warehouse whose cold
// files span several 256-event chunks (so the v2 per-chunk stats path has
// chunks to answer) and an in-memory twin. Compaction is disabled to keep
// the file layout deterministic.
func aggChunkPair(t *testing.T, format, n int) (cold, hot *Warehouse) {
	t.Helper()
	cold, err := Open(Config{
		Shards: 1, SegmentEvents: 4 * persist.IndexEvery, SegmentSpan: 240 * time.Hour,
		DataDir: t.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
		SegmentFormat: format, CompactBelow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cold.Close() })
	hot = NewWithConfig(Config{Shards: 1, SegmentEvents: 4 * persist.IndexEvery, SegmentSpan: 240 * time.Hour})
	for i := 0; i < n; i++ {
		tup := wTuple(time.Duration(i)*time.Minute, float64(10+i%25),
			fmt.Sprintf("src-%d", i%4), 34.4+float64(i%10)*0.01, 135.2+float64(i%10)*0.01)
		if err := cold.Append(tup); err != nil {
			t.Fatal(err)
		}
		if err := hot.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	cold.DrainSpills()
	if cold.Stats().SegmentsCold == 0 {
		t.Fatal("nothing spilled")
	}
	return cold, hot
}

// chunkStatsQueries are aggregates the file header cannot answer (numeric
// functions, partial windows) but whole chunks can.
func chunkStatsQueries() map[string]AggQuery {
	return map[string]AggQuery{
		"sum":         {Func: ops.AggSum, Field: "temperature"},
		"avg":         {Func: ops.AggAvg, Field: "temperature"},
		"min":         {Func: ops.AggMin, Field: "temperature"},
		"count all":   {Func: ops.AggCount, Query: Query{From: t0.Add(3 * time.Hour), To: t0.Add(70 * time.Hour)}},
		"sum window":  {Func: ops.AggSum, Field: "temperature", Query: Query{From: t0.Add(3 * time.Hour), To: t0.Add(70 * time.Hour)}},
		"wide bucket": {Func: ops.AggSum, Field: "temperature", Bucket: 24 * 365 * time.Hour},
	}
}

// chunkFallbackQueries are aggregates whole chunks cannot answer — a source
// filter under a field aggregate needs per-event matching, group-by-source
// needs single-source chunks — so they decode (or use the file header) and
// must still be exact.
func chunkFallbackQueries() map[string]AggQuery {
	return map[string]AggQuery{
		"sum by source": {Func: ops.AggSum, Field: "temperature", GroupBy: []string{"source"}},
		"sum one source": {Func: ops.AggSum, Field: "temperature",
			Query: Query{Sources: []string{"src-1"}}},
		"count one source": {Func: ops.AggCount, Query: Query{Sources: []string{"src-2"}}},
	}
}

// TestAggregateChunkStatsFastPath: v2 cold files answer chunks of
// partially-covered aggregates from sparse-index stats — identically to the
// in-memory twin and to the forced decode path.
func TestAggregateChunkStatsFastPath(t *testing.T) {
	cold, hot := aggChunkPair(t, persist.SegmentV2, 13*persist.IndexEvery)
	for name, q := range chunkStatsQueries() {
		rows, qs, err := cold.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if qs.ColdChunkStats == 0 {
			t.Errorf("%s: no chunk answered from stats (%+v)", name, qs)
		}
		if diff := diffAggRows(rows, aggRows(t, hot, q)); diff != "" {
			t.Errorf("%s vs in-memory: %s", name, diff)
		}
		// A Region covering everything forces full decode without changing
		// the result set; rows must be byte-identical.
		slow := q
		slow.Region = allRegion()
		slowRows, sqs, err := cold.Aggregate(slow)
		if err != nil {
			t.Fatalf("%s slow: %v", name, err)
		}
		if sqs.ColdChunkStats != 0 {
			t.Errorf("%s: region query still took the chunk-stats path", name)
		}
		if diff := diffAggRows(rows, slowRows); diff != "" {
			t.Errorf("%s fast vs slow: %s", name, diff)
		}
	}
	for name, q := range chunkFallbackQueries() {
		rows, _, err := cold.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if diff := diffAggRows(rows, aggRows(t, hot, q)); diff != "" {
			t.Errorf("%s vs in-memory: %s", name, diff)
		}
	}
	if cold.Stats().ColdChunkStatsHits == 0 {
		t.Error("warehouse counter did not accumulate chunk-stats hits")
	}
}

// TestAggregateChunkStatsV1Files: the same store written in the v1 format
// answers every query identically — just without the chunk fast path.
func TestAggregateChunkStatsV1Files(t *testing.T) {
	cold, hot := aggChunkPair(t, persist.SegmentV1, 13*persist.IndexEvery)
	for name, q := range chunkStatsQueries() {
		rows, qs, err := cold.Aggregate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if qs.ColdChunkStats != 0 {
			t.Errorf("%s: v1 files cannot answer chunks from stats (%+v)", name, qs)
		}
		if diff := diffAggRows(rows, aggRows(t, hot, q)); diff != "" {
			t.Errorf("%s vs in-memory: %s", name, diff)
		}
	}
}

// TestAggregateChunkStatsAfterRetention: a logically-trimmed cold file only
// answers wholly-live chunks from stats; the straddling chunk decodes. The
// results stay exact.
func TestAggregateChunkStatsAfterRetention(t *testing.T) {
	cold, _ := aggChunkPair(t, persist.SegmentV2, 13*persist.IndexEvery)
	cold.SetRetention(8 * persist.IndexEvery)
	q := AggQuery{Func: ops.AggSum, Field: "temperature"}
	slow := q
	slow.Region = allRegion()
	want, _, err := cold.Aggregate(slow)
	if err != nil {
		t.Fatal(err)
	}
	got, qs, err := cold.Aggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs.ColdChunkStats == 0 {
		t.Fatalf("no chunk-stats answers after retention (%+v)", qs)
	}
	if diff := diffAggRows(got, want); diff != "" {
		t.Fatal(diff)
	}
}
