// Package warehouse is StreamLoader's stand-in for the NICT Event Data
// Warehouse [6] the paper's dataflows load into: an in-memory event store
// indexed along the three STT dimensions — time, space and theme — with a
// query API suited to the "further analysis" the paper delegates to it.
//
// # Layout: shards of time-partitioned segments
//
// The store is partitioned twice. Events are first routed by source hash
// across N power-of-two shards, each with its own lock, so concurrent
// producers of distinct sources never contend; AppendBatch groups a batch
// per shard and takes each shard lock once, which is the executor's
// preferred ingest path.
//
// Inside a shard, events live in time-partitioned segments. The active
// "hot" segment absorbs the advancing stream and rotates — is sealed and
// replaced — once it holds Config.SegmentEvents events or its event-time
// envelope covers Config.SegmentSpan. Stragglers arriving with event times
// older than the sealed history are diverted to a side out-of-order
// segment (rotating on the same bounds), so a late event never stretches a
// sealed segment's [minTime, maxTime] envelope. Each segment carries its
// own time index plus spatial-grid, theme and source inverted indexes.
//
// # Queries
//
// Select fans out across shards concurrently and k-way merges the per-shard
// results in (event time, Seq) order; a source-constrained query is routed
// only to the shards those sources hash to. Within a shard, a segment whose
// envelope misses the query's [From, To) window is pruned outright — none
// of its indexes are consulted — which keeps small-window queries cheap on
// a wide history. SelectWithStats exposes the scanned/pruned split per
// query. Count takes a fast path when no Cond or Limit is set: time-only
// constraints are answered by binary search on segment time indexes alone,
// and other constraints are counted without materializing, sorting or
// merging events.
//
// # Retention
//
// SetRetention bounds the store; when exceeded, the globally-oldest events
// (by event time, then insertion Seq) are evicted down to 3/4 of the bound.
// Eviction is apportioned by walking segment time-index prefixes, and a
// segment consumed in full is dropped whole off the cold end — an O(1)
// unlink with no index rebuild. Only the segments straddling the cutoff
// (at most a handful, each bounded by SegmentEvents) pay a per-event trim
// and segment-local index rebuild.
package warehouse
