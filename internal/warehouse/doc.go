// Package warehouse is StreamLoader's stand-in for the NICT Event Data
// Warehouse [6] the paper's dataflows load into: an in-memory event store
// indexed along the three STT dimensions — time, space and theme — with a
// query API suited to the "further analysis" the paper delegates to it.
//
// # Layout: shards of time-partitioned segments
//
// The store is partitioned twice. Events are first routed by source hash
// across N power-of-two shards, each with its own lock, so concurrent
// producers of distinct sources never contend; AppendBatch groups a batch
// per shard and takes each shard lock once, which is the executor's
// preferred ingest path.
//
// Inside a shard, events live in time-partitioned segments. The active
// "hot" segment absorbs the advancing stream and rotates — is sealed and
// replaced — once it holds Config.SegmentEvents events or its event-time
// envelope covers Config.SegmentSpan. Stragglers arriving with event times
// older than the sealed history are diverted to a side out-of-order
// segment (rotating on the same bounds), so a late event never stretches a
// sealed segment's [minTime, maxTime] envelope. Each segment carries its
// own time index plus spatial-grid, theme and source inverted indexes.
//
// # Queries
//
// Select fans out across shards concurrently and k-way merges the per-shard
// results in (event time, Seq) order; a source-constrained query is routed
// only to the shards those sources hash to. Within a shard, a segment whose
// envelope misses the query's [From, To) window is pruned outright — none
// of its indexes are consulted — which keeps small-window queries cheap on
// a wide history. SelectWithStats exposes the scanned/pruned split per
// query. Count takes a fast path when no Cond or Limit is set: time-only
// constraints are answered by binary search on segment time indexes alone,
// and other constraints are counted without materializing, sorting or
// merging events.
//
// # Retention
//
// SetRetention bounds the store; when exceeded, the globally-oldest events
// (by event time, then insertion Seq) are evicted down to 3/4 of the bound.
// Eviction is apportioned by walking segment time-index prefixes, and a
// segment consumed in full is dropped whole off the cold end — an O(1)
// unlink with no index rebuild, or a single file delete for a spilled
// segment. Only the segments straddling the cutoff (at most a handful,
// each bounded by SegmentEvents) pay a per-event trim: an index rebuild in
// memory, a logical skip on disk.
//
// # Durability & tiering
//
// Open with Config.DataDir builds the durable warehouse over the
// internal/persist subsystem; everything else above still holds, and nil
// DataDir keeps the store purely in-memory.
//
// Ingest durability comes from a per-shard write-ahead log: Append and
// AppendBatch frame each shard sub-batch as one CRC-checked record and
// write it before the events become visible, so a nil return means the
// batch survives a process crash. Config.Sync picks the fsync policy —
// SyncAlways (one sync per call), the default SyncInterval (coalesced to
// one per Config.SyncEvery), or SyncNever (OS page cache only).
//
// Capacity beyond RAM comes from spilling: once a shard holds more than
// Config.HotSegments sealed in-memory segments, the oldest are flushed to
// immutable segment files — events in (time, seq) order behind a header
// carrying the time/seq envelope, per-source and per-theme counts, a
// schema dictionary and a sparse time index. Only that envelope stays in
// RAM. Queries treat cold segments like hot ones: envelope pruning first
// (most disk segments are never opened), then a chunked read of just the
// window-overlapping stretch of the file. Spilling also checkpoints the
// WAL: log files whose every record is spilled or evicted are deleted
// whole.
//
// Open recovers a previous incarnation from its directory: spilled
// segments are re-registered from their headers, the WAL tail is replayed
// into fresh hot segments (skipping events already in segment files, and
// truncating a torn tail at the first bad frame), and appends resume with
// the sequence counter past everything recovered. A retention watermark in
// the manifest — the (time, seq) cut of the last compaction, scoped by
// per-shard log positions so later stragglers are exempt — keeps evicted
// events from resurrecting out of the log. Stats reports the durable
// footprint: segments_cold/segments_spilled, wal_bytes, disk_bytes and
// recovered_events.
package warehouse
