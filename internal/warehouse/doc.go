// Package warehouse is StreamLoader's stand-in for the NICT Event Data
// Warehouse [6] the paper's dataflows load into: an in-memory event store
// indexed along the three STT dimensions — time, space and theme — with a
// query API suited to the "further analysis" the paper delegates to it.
//
// # Layout: shards of time-partitioned segments
//
// The store is partitioned twice. Events are first routed by source hash
// across N power-of-two shards, each with its own lock, so concurrent
// producers of distinct sources never contend; AppendBatch groups a batch
// per shard and takes each shard lock once, which is the executor's
// preferred ingest path.
//
// Inside a shard, events live in time-partitioned segments. The active
// "hot" segment absorbs the advancing stream and rotates — is sealed and
// replaced — once it holds Config.SegmentEvents events or its event-time
// envelope covers Config.SegmentSpan. Stragglers arriving with event times
// older than the sealed history are diverted to a side out-of-order
// segment (rotating on the same bounds), so a late event never stretches a
// sealed segment's [minTime, maxTime] envelope. Each segment carries its
// own time index plus spatial-grid, theme and source inverted indexes.
//
// # Queries
//
// Select fans out across shards concurrently and k-way merges the per-shard
// results in (event time, Seq) order; a source-constrained query is routed
// only to the shards those sources hash to. Within a shard, a segment whose
// envelope misses the query's [From, To) window is pruned outright — none
// of its indexes are consulted — which keeps small-window queries cheap on
// a wide history. SelectWithStats exposes the scanned/pruned split per
// query. Count takes a fast path when no Cond or Limit is set: time-only
// constraints are answered by binary search on segment time indexes alone,
// and other constraints are counted without materializing, sorting or
// merging events.
//
// # Aggregate pushdown
//
// Aggregate evaluates COUNT/SUM/AVG/MIN/MAX over a named payload field —
// with optional group-by (source, the event's primary theme) and optional
// fixed-width time bucketing — without ever materializing a merged event
// list. Each shard folds its matching events into per-group partial
// aggregates under its read lock; the partials carry count, sum, min and
// max separately (never a derived value), so AVG merges exactly across
// segments and shards, and the per-shard maps merge at the top in shard
// order, keeping float accumulation deterministic for a given store state.
// Contribution semantics over heterogeneous schemas: a bare COUNT counts
// every matching event; COUNT(field) counts events whose value for the
// field is present and non-null (mirroring the streaming COUNT(attr)
// operator); the numeric functions fold only present numeric values, so
// events of schemas lacking the field simply don't contribute. A group row
// exists only when at least one event contributed. MaxGroups (default
// DefaultAggMaxGroups) bounds the result cardinality — the one way an
// aggregation could still blow memory.
//
// Cold segments get a header-only fast path: a segment file whose in-RAM
// envelope fully covers the query is answered from the per-source,
// per-theme and primary-theme counts its header already carries, without
// opening the event block. The coverage rules are strict — bare COUNT
// only; no Region or Cond; the [From, To) window covers every live event
// and, under bucketing, the whole envelope lands in one bucket; source and
// theme never constrained together (headers carry each dimension's counts
// but not the cross); a theme group-by needs the primary-theme stats
// (files from before that header field fall back to reads) and a bare
// theme filter must name a single theme, whose ThemeCounts entry is
// exactly the matchTheme cardinality. Everything the header cannot answer
// falls back to reading just the window-overlapping chunks through the
// chunk cache, bounded by the sparse time index, and filtering exactly —
// so partially-covered boundary files pay chunk reads while interior files
// pay nothing. The model checker's Aggregate op proves the two paths
// indistinguishable, crash/reopen included; QueryStats.ColdHeaderOnly
// counts the segments answered header-only per query.
//
// Format-v2 segment files (Config.SegmentFormat pins an older format for
// downgrade scenarios) push the same idea below the file: each sparse-index
// entry carries per-chunk stats — the chunk's max event time, per-source,
// per-theme and primary-theme counts, and per-field non-null/numeric
// counts, sum, min and max. A partially-covered v2 file answers each
// wholly-live chunk whose [start, max] time envelope sits inside the query
// window (and, under bucketing, inside one bucket) from those stats alone,
// under the header path's strictness rules applied per chunk — field
// aggregates additionally require the chunk unconstrained by source and
// theme filters and, under grouping, a single group key across the chunk.
// Only the boundary chunks the stats cannot settle are decoded, and chunks
// are folded in file order with stats-answered chunks and decoded runs
// interleaved exactly where they lie, so the result stays byte-identical
// to a full decode (the model checker alternates v1 and v2 files in one
// store to prove it). QueryStats.ColdChunkStats and the warehouse-level
// cold_chunk_stats_hits counter count chunks answered without a read;
// BenchmarkAggregatePartialCover shows a partially-covering SUM decoding
// 32x fewer chunks on v2 than v1. v1 files keep decoding as before —
// the event-block encoding is identical, only the index entries differ.
//
// Format-v3 files (the default) keep v2's framing, header, and per-chunk
// stats but encode each chunk column-wise: timestamps as delta-of-delta
// varints, sequence numbers as deltas, schema/theme/source as chunk-local
// dictionary-coded runs, and payload values as per-position typed columns.
// Readers carry a column projection (persist.Projection), so the chunks
// the stats cannot settle decode only the sections a query touches — a
// single-field SUM reads the time column and that field's column and skips
// the rest, counted by QueryStats.ColdColumnsSkipped/ColdBytesDecoded and
// the warehouse-level cold_columns_skipped counter. Full decodes
// materialize rows directly from the columns, over 2x faster than v2 with
// ~40% smaller files (BenchmarkColdDecodeV3; BenchmarkSelectProjected
// prices the projected path). The model checker alternates v1, v2 and v3
// files in one store to prove all three read identically.
//
// # Retention
//
// SetRetention bounds the store; when exceeded, the globally-oldest events
// (by event time, then insertion Seq) are evicted down to 3/4 of the bound.
// Eviction is apportioned by walking segment time-index prefixes, and a
// segment consumed in full is dropped whole off the cold end — an O(1)
// unlink with no index rebuild, or a single file delete for a spilled
// segment. Only the segments straddling the cutoff (at most a handful,
// each bounded by SegmentEvents) pay a per-event trim: an index rebuild in
// memory, a logical skip on disk.
//
// # Ingest taps and standing views
//
// Every committed append flows through one post-commit tap dispatch: after
// the WAL write and shard visibility, still under the shard's write lock,
// each attached tap consumer sees exactly the events that just became
// visible. The spiller's bookkeeping and view maintenance both ride this
// single hook, so "durable, visible, observed" is one atomic step per
// shard — no consumer can see an event the store would disown after a
// crash, or miss one a concurrent query already returned.
//
// RegisterView turns an AggQuery into a standing, incrementally-maintained
// view: registration backfills per-shard partial aggregates from cold and
// hot history via the same scan Aggregate uses, then a per-shard tap folds
// every later matching event into those partials as it commits — O(1) per
// event, independent of history size and of subscriber count. Reads
// (View.Rows) merge the per-shard partials with the pushdown's exact merge
// arithmetic, so a view's state is byte-identical to running Aggregate at
// the same instant; the model checker's Subscribe op asserts exactly that
// at every quiescent point. Identical (query, policy) registrations share
// one view via a refcounted registry.
//
// A bucketed view keeps its partials as per-time-bucket frames
// (internal/partial's bucketed Store) rather than one flat accumulator,
// and a retention cut maintains them in place instead of invalidating the
// view. The eviction prefix property — evicted events form the globally
// smallest (time, seq) prefix — means every frame strictly below the
// cut's bucket B* holds only evicted events and ages out whole, an
// O(frames) map delete. Only the single boundary frame (start == B*) is
// partially evicted, and what it pays depends on the function:
//
//	COUNT/SUM/AVG  subtractable — the evicted boundary events' exact
//	               contribution is subtracted (count and sum are linear);
//	               zero rescans, zero dirty flags.
//	MIN/MAX        not subtractable (an extremum cannot be un-observed) —
//	               the boundary frame alone is queued for a one-bucket
//	               rescan; history below it still drops frame-wise.
//
// A cold file consumed whole by its envelope was never read back; if its
// tail reaches into the boundary frame, that frame's evicted contribution
// is unknown and it falls back to the rescan queue too. Only a degraded
// eviction (an unreadable cold file of uncertain scope) or an unbucketed
// MIN/MAX still sets the full-rebuild dirty flag. Stats counts the work:
// view_frame_drops, view_subtractions, view_boundary_rescans.
//
// Window=<dur> on a bucketed AggQuery makes the view a sliding window:
// Rows filters frames whose bucket end has fallen behind now-window at
// merge time (so a reader never sees an expired bucket), and the
// publisher physically prunes expired frames on its cadence — old buckets
// drop by construction, no retention cut needed. Window requires Bucket.
//
// A durable warehouse also checkpoints view state (view_ckpt.go): every
// Config.ViewCheckpointEvery mutations, and on clean close/release, the
// per-shard frames plus the seq high-water mark they cover are written
// <dataDir>/views/<hash>.ckpt with the same write→validate→swap
// discipline as every other artifact. Re-registering the same (query,
// policy) — a restart, an SSE client reconnecting — seeds from the
// checkpoint and folds only the WAL-tail events above its seq mark,
// skipping cold files the checkpoint already covers, instead of scanning
// history. A fingerprint of the manifest's cut frontier and eviction
// counter gates the resume: any eviction since the checkpoint was taken
// changes it and the resume is rejected (the frames would still carry
// evicted events), falling back to the ordinary backfill — rejection is
// always safe, acceptance requires the exact manifest state. The write
// itself re-checks the dirty flag and the rescan queue after
// snapshotting, so a cut racing the checkpoint can only force that safe
// rejection, never a wrong accept. Stats counts view_checkpoints and
// view_resumes; the view test suite proves a trimmed view equals a full
// rebuild and a resumed view equals a cold backfill, and the model
// checker replays all of it against a naive reference, crashes included.
//
// Subscribe attaches a bounded-buffer subscriber fed by the view's single
// publisher goroutine; the update policy (ops.UpdatePolicy — the paper's
// trigger vocabulary applied to publication: per event, fixed interval, or
// every N events) gates when snapshots go out. Updates are full snapshots,
// latest-wins: a slow consumer's oldest buffered update is dropped and the
// next delivery marked as a resnapshot (Shed counts the losses), so
// backpressure costs a laggard freshness, never correctness, and never
// blocks ingest or other subscribers. The HTTP layer serves this as
// GET /api/warehouse/subscribe (SSE or NDJSON). BenchmarkViewFanout holds
// per-event maintenance flat from 1 to 5000 subscribers with ingest p99
// within 1.2x of the bare store.
//
// # Durability & tiering
//
// Open with Config.DataDir builds the durable warehouse over the
// internal/persist subsystem; everything else above still holds, and nil
// DataDir keeps the store purely in-memory.
//
// Ingest durability comes from a per-shard write-ahead log: Append and
// AppendBatch frame each shard sub-batch as one CRC-checked record and
// write it before the events become visible, so a nil return means the
// batch survives a process crash. Config.Sync picks the fsync policy —
// SyncAlways (one sync per call), the default SyncInterval (coalesced to
// one per Config.SyncEvery), or SyncNever (OS page cache only).
//
// Capacity beyond RAM comes from spilling: once a shard holds more than
// Config.HotSegments sealed in-memory segments, the oldest are flushed to
// immutable segment files — events in (time, seq) order behind a header
// carrying the time/seq envelope, per-source and per-theme counts, a
// schema dictionary and a sparse time index. Only that envelope stays in
// RAM. Queries treat cold segments like hot ones: envelope pruning first
// (most disk segments are never opened), then a chunked read of just the
// window-overlapping stretch of the file. Spilling also checkpoints the
// WAL: log files whose every record is spilled or evicted are deleted
// whole.
//
// # The spill pipeline
//
// Segment flushes never run on the append path. A shard over its hot
// budget marks its oldest sealed segments and hands them to a per-warehouse
// background spill worker; the append returns immediately. The worker
// snapshots the segment under the shard lock (a reference copy, no
// encoding), writes and fsyncs the segment file with no lock held, then
// briefly re-acquires the lock to validate the segment is unchanged, swap
// it for its cold envelope and checkpoint the WAL. Readers see the segment
// as hot until that swap, so a query observes identical results before,
// during and after a spill; if retention trimmed or dropped the segment
// while its file was in flight, the stale file is deleted and the swap
// abandoned. Tune -hot-segments (Config.HotSegments) to bound how much
// sealed history each shard keeps in RAM: a small budget spills
// aggressively and leans on the cold-read path, a large one trades memory
// for all-RAM queries; negative disables spilling entirely (WAL-only
// durability). The queue itself is bounded: when sustained ingest outruns
// the disk, appends throttle — off-lock, after the ack, without blocking
// readers or other shards — until the worker catches up, so the pipeline
// holds at most a few segments per shard beyond the hot budget instead of
// queueing without limit. DrainSpills blocks until the queue is empty, and
// Close drains it before closing the WALs.
//
// Crash semantics mid-spill: every step is idempotent. A crash before the
// file write loses nothing — the segment's WAL records replay on Open. A
// crash after the file is published but before the swap leaves the same
// events in both the file and the log; recovery registers the file and
// dedupes the WAL against its sequence block, and a duplicate snapshot of
// an already-registered segment (possible when a crashed spill is retried)
// is detected the same way and deleted. A crash after the swap but before
// the WAL checkpoint merely delays the log-file deletion to the next
// checkpoint. No acked event is lost or duplicated in any interleaving —
// the model checker's CrashMidSpill op exercises exactly this window.
//
// # Background compaction
//
// Side spills of straggler segments and retention trims leave shards with
// small or time-overlapping cold files, which tax every query's pruning
// pass and defeat envelope-based fast paths. A per-warehouse background
// compactor (Config.CompactBelow — the file size in events below which a
// file wants merging; 0 means SegmentEvents/2, negative disables) watches
// each shard after spills and retention cuts. It picks runs of
// time-adjacent cold files where every neighbor join is justified — one
// side under the threshold, or envelopes overlapping — capped at 8 input
// files and 2x SegmentEvents output events, and merges each run into one
// sorted file under the spiller's write→validate→swap discipline: live
// events only (logical skips are dropped for good) are read and written
// off-lock under a freshly reserved generation, then the shard lock is
// retaken to revalidate every victim (retention touched one in flight →
// the merged file is deleted and the merge abandoned) before the swap.
// Crash safety hinges on a manifest CompactionRecord written before the
// victim files are deleted and retired after: recovery finding a record
// with the merged file on disk deletes whatever victims survive
// (idempotent across repeated crashes), while a crash before the record
// leaves the merged file to be caught by the normal duplicate-sequence
// pass and deleted, un-doing the compaction wholesale. Either way exactly
// one copy of every event remains. The model checker injects CompactNow
// between ops to prove compaction observationally invisible under crashes,
// reopens and retention. Stats counts compactions and segments_compacted;
// CompactNow runs a synchronous pass for tests and tooling.
//
// # The cold-read chunk cache
//
// Cold reads go through a warehouse-wide LRU of decoded event chunks,
// keyed by (segment file, chunk) and budgeted by -cold-cache-bytes
// (Config.ColdCacheBytes, default 64 MiB of encoded bytes; negative
// disables it). Repeated window queries over the same spilled history hit
// RAM instead of re-reading and re-decoding files — cache-warm spilled
// selects land within ~1.2x of hot-segment selects versus ~5x uncached
// (BENCH_warehouse.json). Segment files are immutable and file names are
// never reused, so entries cannot go stale; deleting a cold file
// invalidates its chunks eagerly. Misses read each contiguous run of
// missing chunks with a single pread into pooled buffers, so even the
// uncached path allocates O(1) beyond the decoded events. Cache telemetry
// flows as cold_cache_hits/misses/bytes in Stats and per-query in
// QueryStats (the "segments" object of GET /api/warehouse/query).
//
// Open recovers a previous incarnation from its directory: spilled
// segments are re-registered from their headers, the WAL tail is replayed
// into fresh hot segments (skipping events already in segment files, and
// truncating a torn tail at the first bad frame), and appends resume with
// the sequence counter past everything recovered. The manifest's retention
// cuts — each compaction's (time, seq) watermark paired with the per-shard
// log positions and spill generations it saw, kept as a frontier so a
// later compaction with a lower cut never widens an older one's scope —
// keep evicted events from resurrecting out of the log while stragglers
// that arrived after a cut survive it. The manifest also carries the seq
// high-water mark (max_seq), stamped at every cut and compaction save:
// surviving events alone can under-count the counter when the highest seq
// was spilled, WAL-checkpointed, then deleted wholesale by a retention
// cut, and re-deriving from survivors would hand the same sequence to a
// post-crash append. Stats reports the durable footprint:
// segments_cold/segments_spilled, wal_bytes, disk_bytes and
// recovered_events.
package warehouse
