package warehouse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamloader/internal/ops"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// TestViewStress hammers incremental view maintenance while the store is at
// its busiest: tiny segments spilling continuously, skewed writers with deep
// stragglers, a retention flapper forcing full rebuilds that race the tap
// folds, concurrent Rows readers, and subscribers of every temperament —
// draining, never reading (forcing shed+resnapshot), and connect/disconnect
// churn. Run under -race in CI.
//
// Invariants: at the final quiescent point every view's maintained state
// equals a fresh Aggregate over the same query; stalled subscribers were
// actually shed (latest-wins, never blocking); and releasing everything
// frees every view and subscriber slot.
func TestViewStress(t *testing.T) {
	const (
		writers   = 4
		perWriter = 800
		maxEvents = 1200
	)
	cfg := Config{
		Shards: 4, SegmentEvents: 64, SegmentSpan: 20 * time.Minute,
		DataDir: t.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
	}
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	specs := []struct {
		aq     AggQuery
		policy ops.UpdatePolicy
	}{
		{AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}}, ops.UpdatePolicy{}},
		{AggQuery{Func: ops.AggAvg, Field: "temperature", GroupBy: []string{"theme"}, Bucket: time.Hour},
			ops.UpdatePolicy{Mode: ops.UpdateInterval, Every: 5 * time.Millisecond}},
		{AggQuery{Query: Query{Themes: []string{"weather"}}, Func: ops.AggMin, Field: "temperature", GroupBy: []string{"source"}},
			ops.UpdatePolicy{Mode: ops.UpdateCount, N: 50}},
	}
	views := make([]*View, len(specs))
	for i, sp := range specs {
		v, err := w.RegisterView(sp.aq, sp.policy)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Draining subscribers: consume every update for the whole run.
	for i := 0; i < 3; i++ {
		sub, err := w.Subscribe(specs[i%len(specs)].aq, SubscribeOptions{
			Policy: specs[i%len(specs)].policy, Buffer: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				case _, ok := <-sub.Updates():
					if !ok {
						return
					}
				}
			}
		}()
	}
	// Stalled subscribers: never read. Shedding must drop-and-resnapshot
	// behind their backs without ever blocking ingest or the publisher.
	var stalled []*Subscription
	for i := 0; i < 3; i++ {
		sub, err := w.Subscribe(specs[i%len(specs)].aq, SubscribeOptions{
			Policy: specs[i%len(specs)].policy, Buffer: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		stalled = append(stalled, sub)
	}
	// Churners: subscribe, take one update, disconnect, repeat — the
	// registry must hand slots back mid-stream.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := w.Subscribe(specs[i%len(specs)].aq, SubscribeOptions{Buffer: 2})
				if err != nil {
					t.Error(err)
					return
				}
				select {
				case <-sub.Updates():
				case <-stop:
				}
				sub.Close()
			}
		}(i)
	}
	// Rows readers: a concurrent reader must never observe a torn rebuild
	// (a half-installed accumulator set) and must never error.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := views[i%len(views)].Rows(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	// Retention flapper: every cut invalidates all views and forces full
	// rebuilds underneath the folds and the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				w.SetRetention(0)
			case 1:
				w.SetRetention(maxEvents)
			default:
				w.SetRetention(maxEvents / 3)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func(wr int) {
			defer writerWG.Done()
			source := fmt.Sprintf("view-%d", wr)
			skew := time.Duration(wr) * 7 * time.Minute
			for i := 0; i < perWriter; i++ {
				off := skew + time.Duration(i)*time.Minute
				if i%8 == 7 {
					off -= 5 * time.Hour // straggler: churns the ooo segment
				}
				var tup *stt.Tuple
				if i%5 == 4 {
					tup = sTuple(off, "view stress")
				} else {
					tup = wTuple(off, float64(i%40), source, 34.7, 135.5)
				}
				var err error
				if i%16 == 15 {
					err = w.AppendBatch([]*stt.Tuple{tup})
				} else {
					err = w.Append(tup)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(wr)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	w.SetRetention(maxEvents) // settle on the final bound
	w.DrainSpills()

	// Quiescent point: every view's incrementally-maintained state must
	// equal a fresh scan of the survivors.
	for i, sp := range specs {
		got, err := views[i].Rows()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := w.Aggregate(sp.aq)
		if err != nil {
			t.Fatal(err)
		}
		if diff := diffAggRows(got, want); diff != "" {
			t.Errorf("view %d diverges after stress: %s", i, diff)
		}
	}
	// The stalled subscribers must have been shed (their buffer is 1 and
	// thousands of updates were published), and their single pending update
	// must say so — otherwise the shedding path went unexercised.
	sawShed := false
	for _, sub := range stalled {
		select {
		case u := <-sub.Updates():
			if u.Shed > 0 && u.Resnapshot {
				sawShed = true
			}
		default:
		}
		sub.Close()
	}
	if !sawShed {
		t.Error("stalled subscribers were never shed; stress is vacuous")
	}
	for _, v := range views {
		v.Release()
	}
	waitFor(t, 5*time.Second, "all views and subscribers to drain", func() bool {
		return w.ViewCount() == 0 && w.SubscriberCount() == 0
	})
}
