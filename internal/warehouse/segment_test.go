package warehouse

import (
	"fmt"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// loadOrdered appends n single-source events at 1-minute steps.
func loadOrdered(t *testing.T, w *Warehouse, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, 20, "seg-src", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentRotationByCount(t *testing.T) {
	w := NewWithConfig(Config{Shards: 1, SegmentEvents: 100, SegmentSpan: 24 * 365 * time.Hour})
	loadOrdered(t, w, 1000)
	if st := w.Stats(); st.Segments != 10 {
		t.Errorf("Segments = %d, want 10", st.Segments)
	}
}

func TestSegmentRotationBySpan(t *testing.T) {
	w := NewWithConfig(Config{Shards: 1, SegmentEvents: 1 << 20, SegmentSpan: time.Hour})
	loadOrdered(t, w, 600) // 10 hours of minutes -> one rotation per hour of span
	st := w.Stats()
	if st.Segments < 9 || st.Segments > 11 {
		t.Errorf("Segments = %d, want ~10", st.Segments)
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 600 {
		t.Errorf("select all = %d, want 600", len(evs))
	}
}

func TestStragglersLandInSideSegment(t *testing.T) {
	w := NewWithConfig(Config{Shards: 1, SegmentEvents: 10, SegmentSpan: 24 * time.Hour})
	// Seal a couple of in-order segments...
	loadOrdered(t, w, 25)
	base := w.Stats().Segments
	// ...then a straggler far below the sealed history: it must open a side
	// segment, not stretch a sealed envelope.
	if err := w.Append(wTuple(-3*time.Hour, 5, "late-src", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Segments; got != base+1 {
		t.Errorf("Segments = %d after straggler, want %d", got, base+1)
	}
	// The straggler is queryable and sorts first.
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 26 || evs[0].Tuple.Source != "late-src" {
		t.Fatalf("straggler lost or misordered: %d events, first source %q",
			len(evs), evs[0].Tuple.Source)
	}
	// A query over recent history must not scan the straggler's segment.
	_, qs, err := w.SelectWithStats(Query{From: t0, To: t0.Add(25 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if qs.SegmentsPruned < 1 {
		t.Errorf("side segment not pruned: %+v", qs)
	}
}

// TestNarrowSelectPrunesSegments locks in the acceptance criterion: on a
// wide-history warehouse, a small-window select prunes >= 90% of segments.
func TestNarrowSelectPrunesSegments(t *testing.T) {
	w := NewWithConfig(Config{Shards: 1, SegmentEvents: 100, SegmentSpan: 24 * 365 * time.Hour})
	loadOrdered(t, w, 10_000) // ~100 segments over ~7 days
	evs, qs, err := w.SelectWithStats(Query{
		From: t0.Add(5000 * time.Minute),
		To:   t0.Add(5100 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 100 {
		t.Errorf("narrow select = %d events, want 100", len(evs))
	}
	total := qs.SegmentsScanned + qs.SegmentsPruned
	if total < 95 {
		t.Fatalf("expected ~100 segments, saw %d", total)
	}
	if ratio := float64(qs.SegmentsPruned) / float64(total); ratio < 0.9 {
		t.Errorf("pruned %d of %d segments (%.0f%%), want >= 90%%",
			qs.SegmentsPruned, total, ratio*100)
	}
}

// TestRetentionDropsWholeSegments locks in the other acceptance criterion:
// evicting the oldest events must ride the whole-segment cold path, not
// per-shard index rebuilds — at most the boundary segments get trimmed.
func TestRetentionDropsWholeSegments(t *testing.T) {
	w := NewWithConfig(Config{Shards: 1, SegmentEvents: 100, SegmentSpan: 24 * 365 * time.Hour})
	loadOrdered(t, w, 1000)
	w.SetRetention(400) // drop 700 oldest (keep 3/4 of 400)
	if drops := w.segDrops.Load(); drops < 6 {
		t.Errorf("whole-segment drops = %d, want >= 6", drops)
	}
	if trims := w.segTrims.Load(); trims > 1 {
		t.Errorf("boundary trims = %d, want <= 1", trims)
	}
	if w.Len() != 300 {
		t.Errorf("Len = %d, want 300", w.Len())
	}
	// Exactly the globally-oldest were dropped: survivors start at minute 700.
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if want := t0.Add(700 * time.Minute); !evs[0].Tuple.Time.Equal(want) {
		t.Errorf("oldest survivor at %v, want %v", evs[0].Tuple.Time, want)
	}
	if st := w.Stats(); st.SegmentsDropped != w.segDrops.Load() {
		t.Errorf("Stats.SegmentsDropped = %d, counter = %d", st.SegmentsDropped, w.segDrops.Load())
	}
}

// TestCountFastPath cross-checks the no-materialization Count against
// Select across constraint shapes, on a segment-boundary-heavy store.
func TestCountFastPath(t *testing.T) {
	w := NewWithConfig(Config{Shards: 4, SegmentEvents: 32, SegmentSpan: 2 * time.Hour})
	var batch []*stt.Tuple
	for i := 0; i < 800; i++ {
		batch = append(batch, wTuple(time.Duration(i)*time.Minute, float64(i%35),
			fmt.Sprintf("cnt-%d", i%5), 34.4+float64(i%40)*0.01, 135.2+float64(i%40)*0.01))
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	region := regionAround(34.5, 135.3)
	for _, q := range []Query{
		{},
		{From: t0.Add(2 * time.Hour), To: t0.Add(5 * time.Hour)},
		{From: t0.Add(30 * time.Minute)},
		{To: t0.Add(90 * time.Minute)},
		{Themes: []string{"weather"}},
		{Sources: []string{"cnt-1", "cnt-3"}, From: t0.Add(time.Hour), To: t0.Add(6 * time.Hour)},
		{Region: &region},
		{Cond: "temperature > 20"},                   // falls back to Select
		{From: t0.Add(time.Hour), Limit: 7},          // falls back to Select
		{From: t0.Add(800 * time.Minute), Limit: 10}, // empty window
	} {
		evs, err := w.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		n, err := w.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(evs) {
			t.Errorf("query %s: Count = %d, Select = %d", queryString(q), n, len(evs))
		}
	}
	// Sanity: the time-only count really covers everything.
	if n, _ := w.Count(Query{}); n != 800 {
		t.Errorf("Count{} = %d, want 800", n)
	}
}

// TestSegmentTrimKeepsIndexes: after a boundary trim, every index of the
// trimmed segment still answers queries correctly.
func TestSegmentTrimKeepsIndexes(t *testing.T) {
	w := NewWithConfig(Config{Shards: 1, SegmentEvents: 1 << 20, SegmentSpan: 24 * 365 * time.Hour})
	for i := 0; i < 100; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, float64(i),
			fmt.Sprintf("trim-%d", i%4), 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	w.SetRetention(80) // single segment: must trim, not drop
	if w.segTrims.Load() == 0 {
		t.Fatal("expected a boundary trim")
	}
	if w.Len() != 60 {
		t.Fatalf("Len = %d, want 60", w.Len())
	}
	// Theme, source and time indexes all consistent post-trim.
	n, err := w.Count(Query{Sources: []string{"trim-1"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 { // survivors are minutes 40..99; 15 of them are i%4==1
		t.Errorf("source count after trim = %d, want 15", n)
	}
	evs, err := w.Select(Query{Themes: []string{"weather"}, Cond: "temperature > 89"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 {
		t.Errorf("cond select after trim = %d, want 10", len(evs))
	}
	if st := w.Stats(); st.Sources != 4 || st.Events != 60 {
		t.Errorf("Stats after trim = %+v", st)
	}
}

// regionAround builds a small query rectangle centered near (lat, lon).
func regionAround(lat, lon float64) geo.Rect {
	return geo.NewRect(geo.Point{Lat: lat - 0.05, Lon: lon - 0.05},
		geo.Point{Lat: lat + 0.05, Lon: lon + 0.05})
}
