package warehouse

import (
	"sort"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// segment is one time-partitioned slice of a shard: a bounded run of events
// with its own time/space/theme/source indexes and a [minTime, maxTime]
// envelope. Shards rotate to a fresh segment once the active one reaches the
// configured event count or time span, so retention can drop whole cold
// segments and time-range queries can skip segments whose envelope misses
// the query window without touching any index.
type segment struct {
	events []Event

	// byTime: events sorted by event time (ordinals into events).
	byTime []int
	// spatial grid -> event ordinals.
	byCell map[geo.Cell][]int
	// theme -> event ordinals.
	byTheme map[string][]int
	// source -> event ordinals.
	bySource map[string][]int

	// minTime/maxTime bound the event times stored here (inclusive).
	minTime, maxTime time.Time

	// minSeq is the smallest warehouse sequence stored here; WAL
	// checkpointing deletes log files whose every record is below the
	// shard-wide minimum.
	minSeq uint64

	// spilling marks a sealed segment that sits in the background spill
	// queue (or is being written), so it is neither counted against the
	// hot-segment budget nor enqueued twice. Guarded by the shard lock.
	spilling bool
}

func newSegment() *segment {
	return &segment{
		byCell:   map[geo.Cell][]int{},
		byTheme:  map[string][]int{},
		bySource: map[string][]int{},
	}
}

func (g *segment) len() int { return len(g.events) }

// append stores one event and maintains the indexes and time envelope.
// Caller holds the shard write lock.
func (g *segment) append(ev Event) {
	t := ev.Tuple
	ord := len(g.events)
	g.events = append(g.events, ev)

	// Insert into the time index, keeping it sorted. Appends usually come
	// in near time order, so probe a few slots from the end; when the event
	// is far out of order (skewed producers sharing a shard), fall back to
	// binary search rather than scanning the whole index.
	pos := len(g.byTime)
	for probes := 0; pos > 0 && g.events[g.byTime[pos-1]].Tuple.Time.After(t.Time); probes++ {
		if probes == 8 {
			pos = sort.Search(pos, func(i int) bool {
				return g.events[g.byTime[i]].Tuple.Time.After(t.Time)
			})
			break
		}
		pos--
	}
	g.byTime = append(g.byTime, 0)
	copy(g.byTime[pos+1:], g.byTime[pos:])
	g.byTime[pos] = ord

	if ord == 0 || t.Time.Before(g.minTime) {
		g.minTime = t.Time
	}
	if ord == 0 || t.Time.After(g.maxTime) {
		g.maxTime = t.Time
	}
	if ord == 0 || ev.Seq < g.minSeq {
		g.minSeq = ev.Seq
	}
	g.index(t, ord)
}

// index adds the secondary-index entries for the event at ord.
func (g *segment) index(t *stt.Tuple, ord int) {
	cell := geo.CellOf(geo.Point{Lat: t.Lat, Lon: t.Lon}, gridCellDeg)
	g.byCell[cell] = append(g.byCell[cell], ord)
	if t.Theme != "" {
		g.byTheme[t.Theme] = append(g.byTheme[t.Theme], ord)
	}
	for _, theme := range t.Schema.Themes {
		if theme != t.Theme {
			g.byTheme[theme] = append(g.byTheme[theme], ord)
		}
	}
	if t.Source != "" {
		g.bySource[t.Source] = append(g.bySource[t.Source], ord)
	}
}

// prunedBy reports whether the [from, to) query window cannot intersect the
// segment's time envelope, so the whole segment can be skipped unscanned.
func (g *segment) prunedBy(from, to time.Time) bool {
	if !from.IsZero() && g.maxTime.Before(from) {
		return true
	}
	if !to.IsZero() && !g.minTime.Before(to) {
		return true
	}
	return false
}

// timeBounds returns the [lo, hi) slice of byTime falling inside the
// [from, to) window, by binary search.
func (g *segment) timeBounds(from, to time.Time) (int, int) {
	lo, hi := 0, len(g.byTime)
	if !from.IsZero() {
		lo = sort.Search(len(g.byTime), func(i int) bool {
			return !g.events[g.byTime[i]].Tuple.Time.Before(from)
		})
	}
	if !to.IsZero() {
		hi = sort.Search(len(g.byTime), func(i int) bool {
			return !g.events[g.byTime[i]].Tuple.Time.Before(to)
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// candidateSet picks the cheapest index for the query and returns candidate
// ordinals. Caller holds the shard read lock.
func (g *segment) candidateSet(q Query) []int {
	best := []int(nil)
	bestN := len(g.events) + 1

	consider := func(ords []int) {
		if len(ords) < bestN {
			best, bestN = ords, len(ords)
		}
	}
	if len(q.Themes) > 0 {
		var merged []int
		for _, th := range q.Themes {
			merged = append(merged, g.byTheme[th]...)
		}
		sort.Ints(merged)
		merged = dedupeInts(merged)
		consider(merged)
	}
	if len(q.Sources) > 0 {
		var merged []int
		for _, src := range q.Sources {
			merged = append(merged, g.bySource[src]...)
		}
		sort.Ints(merged)
		merged = dedupeInts(merged)
		consider(merged)
	}
	if q.Region != nil {
		minCell := geo.CellOf(q.Region.Min, gridCellDeg)
		maxCell := geo.CellOf(q.Region.Max, gridCellDeg)
		nCells := (maxCell.X - minCell.X + 1) * (maxCell.Y - minCell.Y + 1)
		// Only use the grid when the region is small enough to enumerate.
		if nCells > 0 && nCells <= 10000 {
			var merged []int
			for x := minCell.X; x <= maxCell.X; x++ {
				for y := minCell.Y; y <= maxCell.Y; y++ {
					merged = append(merged, g.byCell[geo.Cell{X: x, Y: y}]...)
				}
			}
			sort.Ints(merged)
			consider(merged)
		}
	}
	if !q.From.IsZero() || !q.To.IsZero() {
		lo, hi := g.timeBounds(q.From, q.To)
		consider(g.byTime[lo:hi])
	}
	if best == nil {
		return g.byTime
	}
	return best
}

// trimOldest evicts the n oldest events (by the time index) and rebuilds
// this segment's indexes; n must be in (0, len). It returns the dropped
// events so the shard can settle its per-source counts. Only the one
// boundary segment of a compaction pays this rebuild — whole cold segments
// are dropped without it. Caller holds the shard write lock.
func (g *segment) trimOldest(n int) []Event {
	dropped := make([]Event, 0, n)
	for _, ord := range g.byTime[:n] {
		dropped = append(dropped, g.events[ord])
	}
	survivors := make([]Event, 0, len(g.byTime)-n)
	for _, ord := range g.byTime[n:] {
		survivors = append(survivors, g.events[ord])
	}
	g.events = survivors
	g.byTime = g.byTime[:0]
	g.byCell = map[geo.Cell][]int{}
	g.byTheme = map[string][]int{}
	g.bySource = map[string][]int{}
	for i, ev := range survivors {
		g.byTime = append(g.byTime, i) // survivors come out time-sorted
		g.index(ev.Tuple, i)
		if i == 0 || ev.Seq < g.minSeq {
			g.minSeq = ev.Seq
		}
	}
	g.minTime = survivors[0].Tuple.Time
	g.maxTime = survivors[len(survivors)-1].Tuple.Time
	return dropped
}

func dedupeInts(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
