package warehouse

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/obs"
	"streamloader/internal/ops"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// benchLoaded builds a warehouse with n weather events spread over a day
// and the Osaka area.
func benchLoaded(b *testing.B, n int) *Warehouse {
	b.Helper()
	w := New()
	for i := 0; i < n; i++ {
		tup := wTuple(time.Duration(i%86400)*time.Second, float64(10+i%25),
			"s", 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01)
		if err := w.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
	return w
}

func BenchmarkAppend(b *testing.B) {
	w := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := wTuple(time.Duration(i)*time.Second, 20, "s", 34.7, 135.5)
		if err := w.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
}

// producerStreams pre-builds one monotone tuple stream per producer (one
// source each), with producers offset from each other by a small clock skew
// — the realistic shape of a heterogeneous fleet. Under a single global
// time index, interleaved skewed producers force mid-index insertions (the
// O(n) `byTime` insertion this package's sharding removes); with per-source
// shards each stream appends in order.
func producerStreams(producers, perProducer int) [][]*stt.Tuple {
	streams := make([][]*stt.Tuple, producers)
	for p := range streams {
		stream := make([]*stt.Tuple, perProducer)
		skew := time.Duration(p) * time.Minute
		for i := range stream {
			stream[i] = wTuple(skew+time.Duration(i)*time.Second, float64(10+i%25),
				fmt.Sprintf("src-%d", p), 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01)
		}
		streams[p] = stream
	}
	return streams
}

// benchConcurrentIngest runs `producers` goroutines, each appending its own
// source stream into a fresh warehouse per iteration. shards=1 is the old
// single-lock store; the sharded configurations demonstrate the ingest
// speedup the acceptance criteria require. batch > 1 drives AppendBatch.
func benchConcurrentIngest(b *testing.B, shards, producers, batch int) {
	const perProducer = 5_000
	streams := producerStreams(producers, perProducer)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		w := NewSharded(shards)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				stream := streams[p]
				if batch <= 1 {
					for _, tup := range stream {
						if err := w.Append(tup); err != nil {
							b.Error(err)
							return
						}
					}
					return
				}
				for i := 0; i < len(stream); i += batch {
					end := min(i+batch, len(stream))
					if err := w.AppendBatch(stream[i:end]); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*producers*perProducer)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkIngestConcurrent(b *testing.B) {
	const producers = 8
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchConcurrentIngest(b, shards, producers, 1)
		})
	}
}

func BenchmarkIngestBatchConcurrent(b *testing.B) {
	const producers = 8
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchConcurrentIngest(b, DefaultShards, producers, batch)
		})
	}
}

// benchLoadedSharded fills a warehouse with n events over 16 sources.
func benchLoadedSharded(b *testing.B, shards, n int) *Warehouse {
	b.Helper()
	w := NewSharded(shards)
	batch := make([]*stt.Tuple, 0, 1024)
	for i := 0; i < n; i++ {
		batch = append(batch, wTuple(time.Duration(i)*time.Second, float64(10+i%25),
			fmt.Sprintf("src-%d", i%16), 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01))
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := w.AppendBatch(batch); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkSelectFanout measures concurrent query throughput: readers issue
// time-range selects while the per-shard scans run in parallel.
func BenchmarkSelectFanout(b *testing.B) {
	for _, shards := range []int{1, 16} {
		for _, readers := range []int{4, 16} {
			b.Run(fmt.Sprintf("shards=%d/readers=%d", shards, readers), func(b *testing.B) {
				w := benchLoadedSharded(b, shards, 200_000)
				q := Query{From: t0.Add(6 * time.Hour), To: t0.Add(7 * time.Hour)}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := r; i < b.N; i += readers {
							if _, err := w.Select(q); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			})
		}
	}
}

func BenchmarkSelectTimeRange(b *testing.B) {
	w := benchLoaded(b, 50_000)
	q := Query{From: t0.Add(6 * time.Hour), To: t0.Add(7 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRegion(b *testing.B) {
	w := benchLoaded(b, 50_000)
	region := geo.NewRect(geo.Point{Lat: 34.5, Lon: 135.3}, geo.Point{Lat: 34.55, Lon: 135.35})
	q := Query{Region: &region}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectCond(b *testing.B) {
	w := benchLoaded(b, 50_000)
	q := Query{Cond: "temperature > 30", From: t0.Add(3 * time.Hour), To: t0.Add(4 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetentionUnderIngest measures sustained batched ingest with a
// retention bound engaged, so every few batches trigger a compaction.
// Eviction must ride the whole-segment cold path: the evictions/sec and
// whole-drops/trims metrics make an index-rebuild regression visible.
func BenchmarkRetentionUnderIngest(b *testing.B) {
	for _, segEvents := range []int{512, 4096} {
		b.Run(fmt.Sprintf("segEvents=%d", segEvents), func(b *testing.B) {
			w := NewWithConfig(Config{Shards: 4, SegmentEvents: segEvents, SegmentSpan: time.Hour})
			w.SetRetention(20_000)
			const batchSize = 256
			batch := make([]*stt.Tuple, batchSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					off := time.Duration(i*batchSize+j) * time.Second
					batch[j] = wTuple(off, 20, fmt.Sprintf("ret-%d", j%8), 34.7, 135.5)
				}
				if err := w.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(w.Evicted())/sec, "evictions/sec")
			b.ReportMetric(float64(b.N*batchSize)/sec, "events/sec")
			b.ReportMetric(float64(w.segDrops.Load()), "whole-drops")
			b.ReportMetric(float64(w.segTrims.Load()), "boundary-trims")
		})
	}
}

// BenchmarkSelectSegmentPruning compares a narrow time-range select, which
// should prune nearly every segment of a wide history, against a full-range
// select that must scan them all. The %segs-pruned metric tracks the
// acceptance criterion (>= 90% pruned on the narrow window).
func BenchmarkSelectSegmentPruning(b *testing.B) {
	w := NewWithConfig(Config{Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour})
	const n = 200_000 // ~55 hours of seconds -> hundreds of segments
	batch := make([]*stt.Tuple, 0, 1000)
	for i := 0; i < n; i++ {
		batch = append(batch, wTuple(time.Duration(i)*time.Second, float64(10+i%25),
			fmt.Sprintf("src-%d", i%8), 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01))
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	for name, q := range map[string]Query{
		"narrow": {From: t0.Add(50 * time.Hour), To: t0.Add(50*time.Hour + 30*time.Minute)},
		"full":   {From: t0, To: t0.Add(56 * time.Hour)},
	} {
		b.Run(name, func(b *testing.B) {
			var scanned, pruned int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, qs, err := w.SelectWithStats(q)
				if err != nil {
					b.Fatal(err)
				}
				scanned += qs.SegmentsScanned
				pruned += qs.SegmentsPruned
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			if total := scanned + pruned; total > 0 {
				b.ReportMetric(100*float64(pruned)/float64(total), "%segs-pruned")
			}
		})
	}
}

// BenchmarkIngestFsyncPolicy measures durable batched ingest under each
// WAL fsync policy against the in-memory baseline. SyncAlways pays one
// fsync per shard sub-batch; SyncInterval coalesces to one per 100ms;
// SyncNever leaves flushing to the OS (crash-of-process safe, crash-of-
// host exposed).
func BenchmarkIngestFsyncPolicy(b *testing.B) {
	const batchSize = 256
	policies := []struct {
		name string
		open func(b *testing.B) *Warehouse
	}{
		{"memory", func(b *testing.B) *Warehouse { return NewWithConfig(Config{Shards: 4}) }},
		{"never", func(b *testing.B) *Warehouse { return openBenchWarehouse(b, persist.SyncNever) }},
		{"interval", func(b *testing.B) *Warehouse { return openBenchWarehouse(b, persist.SyncInterval) }},
		{"always", func(b *testing.B) *Warehouse { return openBenchWarehouse(b, persist.SyncAlways) }},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			w := p.open(b)
			defer w.Close()
			batch := make([]*stt.Tuple, batchSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					off := time.Duration(i*batchSize+j) * time.Second
					batch[j] = wTuple(off, 20, fmt.Sprintf("fs-%d", j%8), 34.7, 135.5)
				}
				if err := w.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

func openBenchWarehouse(b *testing.B, sync persist.SyncPolicy) *Warehouse {
	b.Helper()
	w, err := Open(Config{Shards: 4, DataDir: b.TempDir(), Sync: sync})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchLoadColdable fills a warehouse with n second-spaced events over 8
// sources, the shape the cold-read benchmarks spill and query.
func benchLoadColdable(b *testing.B, w *Warehouse, n int) {
	b.Helper()
	batch := make([]*stt.Tuple, 0, 1000)
	for i := 0; i < n; i++ {
		batch = append(batch, wTuple(time.Duration(i)*time.Second, float64(10+i%25),
			fmt.Sprintf("src-%d", i%8), 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01))
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := w.AppendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectColdVsHot compares a time-range select over spilled
// segments against the same data fully in memory: the cost of reading a
// cold segment's overlapping chunks back from disk, and the envelope
// pruning that keeps most cold files unopened.
func BenchmarkSelectColdVsHot(b *testing.B) {
	const n = 100_000
	q := Query{From: t0.Add(2 * time.Hour), To: t0.Add(3 * time.Hour)}

	b.Run("hot", func(b *testing.B) {
		w := NewWithConfig(Config{Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour})
		benchLoadColdable(b, w, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Select(q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	})
	b.Run("spilled", func(b *testing.B) {
		w, err := Open(Config{
			Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour,
			DataDir: b.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
			ColdCacheBytes: -1, // measure the raw disk path
		})
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		benchLoadColdable(b, w, n)
		w.DrainSpills()
		if w.Stats().SegmentsCold == 0 {
			b.Fatal("nothing spilled")
		}
		b.ReportAllocs()
		b.ResetTimer()
		var scanned, pruned int
		for i := 0; i < b.N; i++ {
			_, qs, err := w.SelectWithStats(q)
			if err != nil {
				b.Fatal(err)
			}
			scanned += qs.SegmentsScanned
			pruned += qs.SegmentsPruned
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		if total := scanned + pruned; total > 0 {
			b.ReportMetric(100*float64(pruned)/float64(total), "%segs-pruned")
		}
	})
}

// BenchmarkSelectColdCached measures the cold-read chunk cache: the same
// window select over fully-spilled history with the cache disabled (every
// query re-reads and re-decodes its chunks from disk) versus enabled and
// warm (repeat queries assemble results from decoded chunks in RAM). The
// acceptance bar is cache-warm spilled selects within 2x of hot-segment
// selects (BenchmarkSelectColdVsHot/hot).
func BenchmarkSelectColdCached(b *testing.B) {
	const n = 100_000
	q := Query{From: t0.Add(2 * time.Hour), To: t0.Add(3 * time.Hour)}
	open := func(b *testing.B, cacheBytes int64) *Warehouse {
		b.Helper()
		w, err := Open(Config{
			Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour,
			DataDir: b.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
			ColdCacheBytes: cacheBytes,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchLoadColdable(b, w, n)
		w.DrainSpills()
		if w.Stats().SegmentsCold == 0 {
			b.Fatal("nothing spilled")
		}
		return w
	}

	b.Run("uncached", func(b *testing.B) {
		w := open(b, -1)
		defer w.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Select(q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	})
	b.Run("warm", func(b *testing.B) {
		w := open(b, DefaultColdCacheBytes)
		defer w.Close()
		if _, err := w.Select(q); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var hits, misses int
		for i := 0; i < b.N; i++ {
			_, qs, err := w.SelectWithStats(q)
			if err != nil {
				b.Fatal(err)
			}
			hits += qs.ColdCacheHits
			misses += qs.ColdCacheMisses
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		if total := hits + misses; total > 0 {
			b.ReportMetric(100*float64(hits)/float64(total), "%cache-hit")
		}
	})
}

// BenchmarkIngestSpillStall measures Append tail latency while segments
// spill. With the background spiller, a shard over its hot budget hands the
// file write to the spill worker and the append returns; the p99 with
// spilling active must sit within 2x of the never-spilling baseline —
// before this pipeline, the whole segment encode+write+fsync ran inside
// the shard lock and the stalled appends paid it. The segment size keeps
// the seal rate within the worker's write throughput, the regime the
// criterion targets; a producer that persistently outruns the disk is
// instead throttled (off-lock) by the bounded spill queue, and its p99
// reflects that backpressure by design.
func BenchmarkIngestSpillStall(b *testing.B) {
	for _, mode := range []struct {
		name string
		hot  int
	}{{"spill", 1}, {"nospill", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			w, err := Open(Config{
				Shards: 1, SegmentEvents: 2048, SegmentSpan: time.Hour,
				DataDir: b.TempDir(), HotSegments: mode.hot, Sync: persist.SyncNever,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			lat := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tup := wTuple(time.Duration(i)*time.Second, 20, "s", 34.7, 135.5)
				start := time.Now()
				if err := w.Append(tup); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(start))
			}
			b.StopTimer()
			w.DrainSpills()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
				b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
				b.ReportMetric(float64(lat[len(lat)-1].Nanoseconds()), "max-ns")
			}
			b.ReportMetric(float64(w.Stats().SegmentsSpilled), "spills")
		})
	}
}

// BenchmarkAggregatePushdown compares a pushed-down aggregation against
// select-then-aggregate — materializing every matching event over HTTP's
// old path and folding client-side — on hot and on fully-spilled history.
// The pushdown never builds a merged event list; on spilled history a
// fully-covered COUNT must be answered from cold headers alone (zero
// chunks read, the files-opened metric), which is where the ≥5x allocs/op
// win comes from.
func BenchmarkAggregatePushdown(b *testing.B) {
	const n = 100_000
	buildHot := func(b *testing.B) *Warehouse {
		w := NewWithConfig(Config{Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour})
		benchLoadColdable(b, w, n)
		return w
	}
	buildSpilled := func(b *testing.B) *Warehouse {
		w, err := Open(Config{
			Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour,
			DataDir: b.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		benchLoadColdable(b, w, n)
		w.DrainSpills()
		if w.Stats().SegmentsCold == 0 {
			b.Fatal("nothing spilled")
		}
		return w
	}
	countQ := AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}}
	avgQ := AggQuery{Func: ops.AggAvg, Field: "temperature", GroupBy: []string{"source"}}

	// selectAggregate is the client-side baseline: materialize the merged
	// event list, then fold it.
	selectAggregate := func(b *testing.B, w *Warehouse, aq AggQuery) {
		evs, err := w.Select(aq.Query)
		if err != nil {
			b.Fatal(err)
		}
		counts := map[string]int64{}
		sums := map[string]float64{}
		for _, ev := range evs {
			if aq.Field != "" {
				v, ok := ev.Tuple.Get(aq.Field)
				if !ok || !v.Kind().Numeric() {
					continue
				}
				sums[ev.Tuple.Source] += v.AsFloat()
			}
			counts[ev.Tuple.Source]++
		}
		if len(counts) == 0 {
			b.Fatal("empty aggregate")
		}
	}

	for _, tier := range []struct {
		name  string
		build func(*testing.B) *Warehouse
	}{{"hot", buildHot}, {"spilled", buildSpilled}} {
		for _, shape := range []struct {
			name string
			aq   AggQuery
		}{{"count", countQ}, {"avg", avgQ}} {
			b.Run(fmt.Sprintf("%s/%s/pushdown", tier.name, shape.name), func(b *testing.B) {
				w := tier.build(b)
				b.ReportAllocs()
				b.ResetTimer()
				var headerOnly, chunkReads int
				for i := 0; i < b.N; i++ {
					rows, qs, err := w.Aggregate(shape.aq)
					if err != nil {
						b.Fatal(err)
					}
					if len(rows) == 0 {
						b.Fatal("empty aggregate")
					}
					headerOnly += qs.ColdHeaderOnly
					chunkReads += qs.ColdCacheHits + qs.ColdCacheMisses
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(chunkReads)/float64(b.N), "chunk-reads/op")
				b.ReportMetric(float64(headerOnly)/float64(b.N), "header-only-segs/op")
				// The acceptance bar: a fully-covered COUNT over spilled
				// history opens no event block at all.
				if tier.name == "spilled" && shape.name == "count" && chunkReads != 0 {
					b.Fatalf("covered COUNT read %d chunks, want 0", chunkReads)
				}
			})
			b.Run(fmt.Sprintf("%s/%s/select", tier.name, shape.name), func(b *testing.B) {
				w := tier.build(b)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					selectAggregate(b, w, shape.aq)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkCountFastPath compares the per-segment counting path against
// materializing the same events through Select.
func BenchmarkCountFastPath(b *testing.B) {
	w := NewWithConfig(Config{Shards: 4, SegmentEvents: 1000, SegmentSpan: time.Hour})
	for _, streamTuples := range producerStreams(8, 25_000) {
		if err := w.AppendBatch(streamTuples); err != nil {
			b.Fatal(err)
		}
	}
	q := Query{From: t0.Add(1 * time.Hour), To: t0.Add(4 * time.Hour)}
	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := w.Count(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			evs, err := w.Select(q)
			if err != nil {
				b.Fatal(err)
			}
			_ = evs
		}
	})
}

// BenchmarkViewFanout measures standing-view maintenance under fan-out.
// Each push case seeds the same store, registers one shared COUNT-by-source
// view and attaches 0/1/100/5000 draining subscribers, then times ingest:
// the per-event cost is one partial fold plus one publisher wake regardless
// of subscriber count, so events/sec and the append p99 must stay flat as
// fan-out grows (the acceptance bar: p99 with subscribers within ~1.2x of
// the bare store). The pull baseline serves the same freshness by
// re-scanning the store once per ingested event — what every polling
// client would pay without the view.
func BenchmarkViewFanout(b *testing.B) {
	const seedEvents = 50_000
	aq := AggQuery{Func: ops.AggCount, GroupBy: []string{"source"}}
	seed := func(b *testing.B) *Warehouse {
		b.Helper()
		w := NewWithConfig(Config{Shards: 4, SegmentEvents: 4096, SegmentSpan: time.Hour})
		for _, streamTuples := range producerStreams(8, seedEvents/8) {
			if err := w.AppendBatch(streamTuples); err != nil {
				b.Fatal(err)
			}
		}
		return w
	}
	// ingest appends b.N fresh events one at a time — the latency-sensitive
	// shape — reporting throughput and the p99 single-append latency.
	ingest := func(b *testing.B, w *Warehouse) {
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tup := wTuple(200*time.Hour+time.Duration(i)*time.Second, float64(i%40),
				fmt.Sprintf("src-%d", i%8), 34.7, 135.5)
			start := time.Now()
			if err := w.Append(tup); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[min(len(lat)*99/100, len(lat)-1)]
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		b.ReportMetric(float64(p99.Nanoseconds()), "append-p99-ns")
	}
	for _, subs := range []int{0, 1, 100, 5000} {
		b.Run(fmt.Sprintf("push/subs=%d", subs), func(b *testing.B) {
			w := seed(b)
			var drainWG sync.WaitGroup
			subscriptions := make([]*Subscription, 0, subs)
			for i := 0; i < subs; i++ {
				sub, err := w.Subscribe(aq, SubscribeOptions{Buffer: 1})
				if err != nil {
					b.Fatal(err)
				}
				subscriptions = append(subscriptions, sub)
				drainWG.Add(1)
				go func() {
					defer drainWG.Done()
					for range sub.Updates() {
					}
				}()
			}
			ingest(b, w)
			for _, sub := range subscriptions {
				sub.Close()
			}
			drainWG.Wait()
		})
	}
	// Pull baseline: no standing view; every ingested event is followed by
	// one on-demand Aggregate — the cost one polling dashboard pays to stay
	// as fresh as a single push subscriber.
	b.Run("pull/poll-per-event", func(b *testing.B) {
		w := seed(b)
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tup := wTuple(200*time.Hour+time.Duration(i)*time.Second, float64(i%40),
				fmt.Sprintf("src-%d", i%8), 34.7, 135.5)
			start := time.Now()
			if err := w.Append(tup); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(start))
			if _, _, err := w.Aggregate(aq); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[min(len(lat)*99/100, len(lat)-1)]
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		b.ReportMetric(float64(p99.Nanoseconds()), "append-p99-ns")
	})
}

// BenchmarkAggregatePartialCover measures the v2 per-chunk stats pushdown:
// a SUM over a window that partially covers the spilled history, so the
// file-header fast path never applies (numeric aggregate) and the file is
// never wholly inside the window. v1 files must decode every overlapping
// chunk; v2 files answer wholly-covered chunks from the sparse-index stats
// and decode only the boundary chunks — chunk-decodes/op is the acceptance
// metric (>= 5x fewer on v2). The cold cache is disabled so every decode
// pays its real cost.
func BenchmarkAggregatePartialCover(b *testing.B) {
	const n = 100_000 // ~28h of second-spaced events
	q := AggQuery{Func: ops.AggSum, Field: "temperature",
		Query: Query{From: t0.Add(2 * time.Hour), To: t0.Add(20 * time.Hour)}}
	decodesPerOp := map[string]float64{}
	for _, ver := range []struct {
		name   string
		format int
	}{
		{"v1", persist.SegmentV1},
		{"v2", persist.SegmentV2},
	} {
		b.Run(ver.name, func(b *testing.B) {
			w, err := Open(Config{
				Shards: 4, SegmentEvents: 4 * persist.IndexEvery, SegmentSpan: 24 * time.Hour,
				DataDir: b.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
				ColdCacheBytes: -1, SegmentFormat: ver.format, CompactBelow: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			benchLoadColdable(b, w, n)
			w.DrainSpills()
			if w.Stats().SegmentsCold == 0 {
				b.Fatal("nothing spilled")
			}
			b.ReportAllocs()
			b.ResetTimer()
			var chunkReads, statsChunks int
			for i := 0; i < b.N; i++ {
				rows, qs, err := w.Aggregate(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("empty aggregate")
				}
				chunkReads += qs.ColdCacheHits + qs.ColdCacheMisses
				statsChunks += qs.ColdChunkStats
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			b.ReportMetric(float64(chunkReads)/float64(b.N), "chunk-decodes/op")
			b.ReportMetric(float64(statsChunks)/float64(b.N), "stats-chunks/op")
			decodesPerOp[ver.name] = float64(chunkReads) / float64(b.N)
			// Acceptance (when both sub-benchmarks run): v2 must decode
			// at least 5x fewer chunks than v1 on the same layout.
			if v1, ok := decodesPerOp["v1"]; ok && ver.name == "v2" {
				v2 := decodesPerOp["v2"]
				if v2 > 0 && v1/v2 < 5 {
					b.Fatalf("v2 decodes %.1f chunks/op vs v1's %.1f — under the 5x bar", v2, v1)
				}
			}
		})
	}
}

// BenchmarkObsOverhead prices the instrumentation itself: identical ingest
// and select workloads against a warehouse wired to a live metrics registry
// and one wired to the no-op registry (every histogram handle nil, so the
// hot path pays exactly one nil check per timing region). The CI gate runs
// `benchdiff -within` over the instrumented=noop pairs and fails the build
// when the instrumented side is more than 5% slower.
//
// The ingest side measures the production shape — the sink delivers
// batches, so one Start/Since pair (two clock reads, ~100ns) amortizes
// across the batch. Per-tuple Append is also instrumented but is NOT the
// gated path: a lone Append runs ~150ns, so wall-clocking it can never sit
// under a 5% bar, and no production caller appends unbatched at rate.
func BenchmarkObsOverhead(b *testing.B) {
	registries := []struct {
		name string
		mk   func() *obs.Registry
	}{
		{"instrumented", obs.NewRegistry},
		{"noop", obs.Noop},
	}
	const batch = 64
	b.Run("append", func(b *testing.B) {
		for _, rc := range registries {
			b.Run(rc.name, func(b *testing.B) {
				// Retention bounds the heap so the comparison runs at a
				// steady state instead of under ever-growing GC pressure.
				w := NewWithConfig(Config{Obs: rc.mk()})
				w.SetRetention(200_000)
				tuples := make([]*stt.Tuple, batch)
				lat := make([]time.Duration, 0, b.N)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range tuples {
						tuples[j] = wTuple(time.Duration(i*batch+j)*time.Second,
							20, "s", 34.7, 135.5)
					}
					start := time.Now()
					if err := w.AppendBatch(tuples); err != nil {
						b.Fatal(err)
					}
					lat = append(lat, time.Since(start))
				}
				b.StopTimer()
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				if len(lat) > 0 {
					b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
					b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
				}
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "events_per_sec")
			})
		}
	})
	b.Run("select", func(b *testing.B) {
		for _, rc := range registries {
			b.Run(rc.name, func(b *testing.B) {
				w := NewWithConfig(Config{Obs: rc.mk()})
				for i := 0; i < 50_000; i++ {
					tup := wTuple(time.Duration(i%86400)*time.Second, float64(10+i%25),
						"s", 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01)
					if err := w.Append(tup); err != nil {
						b.Fatal(err)
					}
				}
				q := Query{From: t0.Add(6 * time.Hour), To: t0.Add(7 * time.Hour)}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Select(q); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries_per_sec")
			})
		}
	})
}

// coldSegInfos opens every spilled segment file under dir (all shards) and
// returns the infos plus total on-disk bytes and event count.
func coldSegInfos(b *testing.B, dir string) ([]*persist.SegmentInfo, int64, int) {
	b.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	var infos []*persist.SegmentInfo
	var bytes int64
	events := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		paths, _, err := persist.ListSegments(filepath.Join(dir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range paths {
			info, _, err := persist.OpenSegment(p)
			if err != nil {
				b.Fatal(err)
			}
			infos = append(infos, info)
			bytes += info.Bytes
			events += info.Count
		}
	}
	return infos, bytes, events
}

// benchColdCorpus spills n events cold under dir in the given segment
// format and returns the open segment infos with their footprint.
func benchColdCorpus(b *testing.B, n, format int) (infos []*persist.SegmentInfo, diskBytes int64, events int) {
	b.Helper()
	dir := b.TempDir()
	w, err := Open(Config{
		Shards: 4, SegmentEvents: 4 * persist.IndexEvery, SegmentSpan: 24 * time.Hour,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
		ColdCacheBytes: -1, SegmentFormat: format, CompactBelow: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchLoadColdable(b, w, n)
	w.DrainSpills()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	infos, diskBytes, events = coldSegInfos(b, dir)
	if events == 0 {
		b.Fatal("nothing spilled")
	}
	return infos, diskBytes, events
}

// benchDecodeAll decodes every chunk of every file, uncached, and returns
// the event count.
func benchDecodeAll(b *testing.B, infos []*persist.SegmentInfo) int {
	decoded := 0
	for _, info := range infos {
		evs, _, err := info.ReadRangeCached(nil, 0, info.Count)
		if err != nil {
			b.Fatal(err)
		}
		decoded += len(evs)
	}
	return decoded
}

// BenchmarkColdDecodeV3 prices a full decode of spilled history — every
// chunk of every cold file, every column materialized, the path a
// payload-condition query pays — for the row-wise v2 layout against the
// columnar v3 one, and reports each format's on-disk footprint per event.
// The v2 and v3 sub-benchmarks report each format in isolation; the
// speedup sub-benchmark decodes both corpora in the same loop iterations
// (so GC pressure lands on both alike) and enforces acceptance: v3 decodes
// at least 2x faster and writes at least 30% fewer bytes per event.
func BenchmarkColdDecodeV3(b *testing.B) {
	const n = 100_000
	for _, ver := range []struct {
		name   string
		format int
	}{
		{"v2", persist.SegmentV2},
		{"v3", persist.SegmentV3},
	} {
		b.Run(ver.name, func(b *testing.B) {
			infos, diskBytes, events := benchColdCorpus(b, n, ver.format)
			b.ReportAllocs()
			b.ResetTimer()
			decoded := 0
			for i := 0; i < b.N; i++ {
				decoded += benchDecodeAll(b, infos)
			}
			b.StopTimer()
			if decoded != b.N*events {
				b.Fatalf("decoded %d events, want %d", decoded, b.N*events)
			}
			b.ReportMetric(float64(diskBytes)/float64(events), "disk-B/event")
			b.ReportMetric(float64(decoded)/b.Elapsed().Seconds(), "events-decoded/sec")
		})
	}
	b.Run("speedup", func(b *testing.B) {
		infos2, disk2, events2 := benchColdCorpus(b, n, persist.SegmentV2)
		infos3, disk3, events3 := benchColdCorpus(b, n, persist.SegmentV3)
		perEvent2 := float64(disk2) / float64(events2)
		perEvent3 := float64(disk3) / float64(events3)
		// One untimed round per format warms page caches, the heap, and
		// branch predictors; a round floor keeps the comparison meaningful
		// even when the harness probes with b.N == 1.
		benchDecodeAll(b, infos2)
		benchDecodeAll(b, infos3)
		rounds := b.N
		if rounds < 8 {
			rounds = 8
		}
		// Each round decodes ~28 MB of short-lived rows per format. With the
		// pacer live, collection of one format's garbage lands in the other
		// format's timed window and the ratio measures GC scheduling, not
		// decode. Park the pacer and collect explicitly between phases so
		// each window prices decode + allocation alone.
		gcPct := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(gcPct)
		b.ResetTimer()
		var t2, t3 time.Duration
		for i := 0; i < rounds; i++ {
			runtime.GC()
			start := time.Now()
			benchDecodeAll(b, infos2)
			t2 += time.Since(start)
			runtime.GC()
			start = time.Now()
			benchDecodeAll(b, infos3)
			t3 += time.Since(start)
		}
		b.StopTimer()
		speedup := float64(t2) / float64(t3)
		b.ReportMetric(float64(t2.Nanoseconds())/float64(rounds*events2), "v2-ns/event")
		b.ReportMetric(float64(t3.Nanoseconds())/float64(rounds*events3), "v3-ns/event")
		b.ReportMetric(speedup, "speedup-x")
		b.ReportMetric(perEvent3/perEvent2, "size-ratio")
		if speedup < 2 {
			b.Fatalf("v3 full decode only %.2fx faster than v2 (%v vs %v over %d rounds) — under the 2x bar",
				speedup, t3/time.Duration(rounds), t2/time.Duration(rounds), rounds)
		}
		if perEvent3 > 0.7*perEvent2 {
			b.Fatalf("v3 writes %.1f B/event vs v2's %.1f — under the 30%% size bar",
				perEvent3, perEvent2)
		}
	})
}

// BenchmarkSelectProjected measures projected decode on the query path: a
// single-field SUM over a window that partially covers the spilled history,
// so boundary chunks must decode. v2 decodes those chunks whole; v3 decodes
// only the time column and the one projected field. Bytes decoded per query
// is the acceptance metric: v3 must parse at least 4x fewer bytes than v2
// on the same layout. The cold cache is disabled so every read pays its
// real decode cost.
func BenchmarkSelectProjected(b *testing.B) {
	const n = 100_000
	q := AggQuery{Func: ops.AggSum, Field: "temperature",
		Query: Query{From: t0.Add(2 * time.Hour), To: t0.Add(20 * time.Hour)}}
	bytesPerOp := map[string]float64{}
	for _, ver := range []struct {
		name   string
		format int
	}{
		{"v2", persist.SegmentV2},
		{"v3", persist.SegmentV3},
	} {
		b.Run(ver.name, func(b *testing.B) {
			w, err := Open(Config{
				Shards: 4, SegmentEvents: 4 * persist.IndexEvery, SegmentSpan: 24 * time.Hour,
				DataDir: b.TempDir(), HotSegments: 1, Sync: persist.SyncNever,
				ColdCacheBytes: -1, SegmentFormat: ver.format, CompactBelow: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			benchLoadColdable(b, w, n)
			w.DrainSpills()
			if w.Stats().SegmentsCold == 0 {
				b.Fatal("nothing spilled")
			}
			b.ReportAllocs()
			b.ResetTimer()
			var bytesDecoded int64
			var columnsSkipped int
			for i := 0; i < b.N; i++ {
				rows, qs, err := w.Aggregate(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("empty aggregate")
				}
				bytesDecoded += qs.ColdBytesDecoded
				columnsSkipped += qs.ColdColumnsSkipped
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			b.ReportMetric(float64(bytesDecoded)/float64(b.N), "bytes-decoded/op")
			b.ReportMetric(float64(columnsSkipped)/float64(b.N), "columns-skipped/op")
			bytesPerOp[ver.name] = float64(bytesDecoded) / float64(b.N)
			if v2, ok := bytesPerOp["v2"]; ok && ver.name == "v3" {
				v3 := bytesPerOp["v3"]
				if v3 > 0 && v2/v3 < 4 {
					b.Fatalf("v3 decodes %.0f B/op vs v2's %.0f — under the 4x bar", v3, v2)
				}
			}
		})
	}
}

// BenchmarkViewRetentionCut prices what per-bucket partial frames buy a
// standing view when retention cuts history out from under it.
//
// The cut/* cases time one retention cut plus the next full read of a
// live bucketed view over a single hot stream. For COUNT/SUM/AVG the
// frames make the cut incremental: whole buckets older than the boundary
// fall off as frame drops and the boundary bucket's evicted contribution
// is subtracted exactly — zero boundary rescans, never a dirty rebuild
// (both asserted). cut/rebuild is the pre-frames design as a baseline:
// the same cut, but the view is invalidated (as every eviction used to
// do) and the next read re-derives every frame from a full history scan.
// cut/speedup interleaves the two on one store and fails the run when the
// incremental path is not ≥10x cheaper; the comparison is conservative —
// the trim side is charged for the whole cut (eviction walk included),
// the rebuild side only for its re-scan read.
//
// The reconnect/* cases price checkpoint resume on a durable store: a
// released view re-registered from its checkpoint (plus an empty WAL-tail
// fold) versus the same registration with the checkpoint files removed,
// which pays a cold backfill over spilled history. reconnect/speedup
// pairs the two per round and fails under the 5x bar.
//
// Timing is manual (ns/op overridden via ReportMetric): the un-timed
// appends that force each cut would otherwise sit inside StopTimer /
// StartTimer pairs, whose per-call memstats reads cost more than the cut
// being measured.
func BenchmarkViewRetentionCut(b *testing.B) {
	const (
		bound   = 65536           // retention bound; cuts drop to 3/4 of it
		batch   = bound/4 + 1     // un-timed appends that force each cut
		spacing = 5 * time.Second // 720 events per 1h bucket and segment
	)
	bucketed := func(fn ops.AggFunc, field string) AggQuery {
		return AggQuery{Func: fn, Field: field, Bucket: time.Hour}
	}
	// seedCut builds an in-memory store at the retention steady state with
	// one live bucketed view, plus a tail counter for further appends.
	seedCut := func(b *testing.B, aq AggQuery) (*Warehouse, *View, *int) {
		b.Helper()
		w := NewWithConfig(Config{Shards: 4, SegmentEvents: 1024, SegmentSpan: time.Hour})
		tail := 0
		grow := func(n int) {
			tups := make([]*stt.Tuple, 0, n)
			for i := 0; i < n; i++ {
				tups = append(tups, wTuple(time.Duration(tail)*spacing, float64(tail%40),
					"s", 34.7, 135.5))
				tail++
			}
			if err := w.AppendBatch(tups); err != nil {
				b.Fatal(err)
			}
		}
		grow(bound)
		v, err := w.RegisterView(aq, ops.UpdatePolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Rows(); err != nil {
			b.Fatal(err)
		}
		return w, v, &tail
	}
	grow := func(b *testing.B, w *Warehouse, tail *int) {
		b.Helper()
		tups := make([]*stt.Tuple, 0, batch)
		for i := 0; i < batch; i++ {
			tups = append(tups, wTuple(time.Duration(*tail)*spacing, float64(*tail%40),
				"s", 34.7, 135.5))
			*tail++
		}
		if err := w.AppendBatch(tups); err != nil {
			b.Fatal(err)
		}
	}

	for _, tc := range []struct {
		name string
		aq   AggQuery
	}{
		{"cut/count", bucketed(ops.AggCount, "")},
		{"cut/sum", bucketed(ops.AggSum, "temperature")},
		{"cut/avg", bucketed(ops.AggAvg, "temperature")},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, v, tail := seedCut(b, tc.aq)
			defer v.Release()
			rescans0 := w.viewBoundaryRescans.Load()
			drops0 := w.viewFrameDrops.Load()
			subs0 := w.viewSubtractions.Load()
			var timed time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grow(b, w, tail)
				start := time.Now()
				w.SetRetention(bound) // cut runs inline, frames patched in place
				if _, err := v.Rows(); err != nil {
					b.Fatal(err)
				}
				timed += time.Since(start)
				w.SetRetention(0)
			}
			b.StopTimer()
			if n := w.viewBoundaryRescans.Load() - rescans0; n != 0 {
				b.Fatalf("%s paid %d boundary rescans; subtractable cuts must pay none", tc.name, n)
			}
			if v.dirty.Load() {
				b.Fatalf("%s left the view dirty; cuts must never force a rebuild", tc.name)
			}
			if n := w.viewFrameDrops.Load() - drops0; n == 0 {
				b.Fatal("cuts dropped no frames; benchmark is not exercising the trim path")
			}
			b.ReportMetric(float64(timed.Nanoseconds())/float64(b.N), "ns/op")
			b.ReportMetric(float64(w.viewFrameDrops.Load()-drops0)/float64(b.N), "frame-drops/op")
			b.ReportMetric(float64(w.viewSubtractions.Load()-subs0)/float64(b.N), "subtractions/op")
		})
	}

	// The pre-frames baseline: identical cut, but the next read re-derives
	// every frame from a full scan of the surviving history.
	b.Run("cut/rebuild", func(b *testing.B) {
		w, v, tail := seedCut(b, bucketed(ops.AggSum, "temperature"))
		defer v.Release()
		var timed time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			grow(b, w, tail)
			start := time.Now()
			w.SetRetention(bound)
			v.dirty.Store(true)
			if _, err := v.Rows(); err != nil {
				b.Fatal(err)
			}
			timed += time.Since(start)
			w.SetRetention(0)
		}
		b.StopTimer()
		b.ReportMetric(float64(timed.Nanoseconds())/float64(b.N), "ns/op")
	})

	// Interleave the two paths on one store and hold the bar. A minimum of
	// six rounds keeps the ratio honest at -benchtime=1x.
	b.Run("cut/speedup", func(b *testing.B) {
		w, v, tail := seedCut(b, bucketed(ops.AggSum, "temperature"))
		defer v.Release()
		rounds := b.N
		if rounds < 6 {
			rounds = 6
		}
		var trim, rebuild time.Duration
		b.ResetTimer()
		for i := 0; i < rounds; i++ {
			grow(b, w, tail)
			start := time.Now()
			w.SetRetention(bound)
			if _, err := v.Rows(); err != nil {
				b.Fatal(err)
			}
			trim += time.Since(start)
			start = time.Now()
			v.dirty.Store(true)
			if _, err := v.Rows(); err != nil {
				b.Fatal(err)
			}
			rebuild += time.Since(start)
			w.SetRetention(0)
		}
		b.StopTimer()
		speedup := float64(rebuild) / float64(trim)
		b.ReportMetric(float64(trim.Nanoseconds())/float64(rounds), "ns/op")
		b.ReportMetric(speedup, "speedup-x")
		if speedup < 10 {
			b.Fatalf("incremental cut only %.1fx cheaper than rebuild (trim %v, rebuild %v) — under the 10x bar",
				speedup, trim/time.Duration(rounds), rebuild/time.Duration(rounds))
		}
	})

	// seedDurable builds a spilled durable store with a per-mutation view
	// checkpoint cadence and primes one checkpoint via register+release.
	const durableEvents = 65536
	aq := bucketed(ops.AggSum, "temperature")
	seedDurable := func(b *testing.B, dir string) *Warehouse {
		b.Helper()
		w, err := Open(Config{
			Shards: 4, SegmentEvents: 1024, SegmentSpan: time.Hour,
			DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
			ViewCheckpointEvery: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		tups := make([]*stt.Tuple, 0, durableEvents)
		for i := 0; i < durableEvents; i++ {
			tups = append(tups, wTuple(time.Duration(i)*spacing, float64(i%40),
				"s", 34.7, 135.5))
		}
		if err := w.AppendBatch(tups); err != nil {
			b.Fatal(err)
		}
		w.DrainSpills()
		v, err := w.RegisterView(aq, ops.UpdatePolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Rows(); err != nil {
			b.Fatal(err)
		}
		v.Release() // last release persists the checkpoint
		return w
	}
	// connect times what a reconnecting subscriber waits for — register
	// (checkpoint load or backfill) plus the first full read. The release
	// that follows re-persists the checkpoint for the next round but is
	// teardown, not time-to-first-snapshot, so it stays un-timed.
	connect := func(b *testing.B, w *Warehouse) time.Duration {
		b.Helper()
		start := time.Now()
		v, err := w.RegisterView(aq, ops.UpdatePolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Rows(); err != nil {
			b.Fatal(err)
		}
		d := time.Since(start)
		v.Release()
		return d
	}

	b.Run("reconnect/resume", func(b *testing.B) {
		dir := b.TempDir()
		w := seedDurable(b, dir)
		defer w.Close()
		resumes0 := w.viewResumes.Load()
		var timed time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			timed += connect(b, w)
		}
		b.StopTimer()
		if got := w.viewResumes.Load() - resumes0; got != uint64(b.N) {
			b.Fatalf("resumed %d of %d reconnects; every one must come from the checkpoint", got, b.N)
		}
		b.ReportMetric(float64(timed.Nanoseconds())/float64(b.N), "ns/op")
	})

	b.Run("reconnect/backfill", func(b *testing.B) {
		dir := b.TempDir()
		w := seedDurable(b, dir)
		defer w.Close()
		resumes0 := w.viewResumes.Load()
		var timed time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := os.RemoveAll(filepath.Join(dir, viewCkptDir)); err != nil {
				b.Fatal(err)
			}
			timed += connect(b, w)
		}
		b.StopTimer()
		if got := w.viewResumes.Load() - resumes0; got != 0 {
			b.Fatalf("backfill baseline resumed %d times; checkpoints were supposed to be gone", got)
		}
		b.ReportMetric(float64(timed.Nanoseconds())/float64(b.N), "ns/op")
	})

	b.Run("reconnect/speedup", func(b *testing.B) {
		dir := b.TempDir()
		w := seedDurable(b, dir)
		defer w.Close()
		rounds := b.N
		if rounds < 3 {
			rounds = 3
		}
		var resume, backfill time.Duration
		b.ResetTimer()
		for i := 0; i < rounds; i++ {
			if err := os.RemoveAll(filepath.Join(dir, viewCkptDir)); err != nil {
				b.Fatal(err)
			}
			backfill += connect(b, w) // no checkpoint: cold backfill; release re-writes one
			resume += connect(b, w)   // checkpoint present: resume
		}
		b.StopTimer()
		speedup := float64(backfill) / float64(resume)
		b.ReportMetric(float64(resume.Nanoseconds())/float64(rounds), "ns/op")
		b.ReportMetric(speedup, "speedup-x")
		if speedup < 5 {
			b.Fatalf("checkpoint resume only %.1fx faster than cold backfill (resume %v, backfill %v) — under the 5x bar",
				speedup, resume/time.Duration(rounds), backfill/time.Duration(rounds))
		}
	})
}
