package warehouse

import (
	"testing"
	"time"

	"streamloader/internal/geo"
)

// benchLoaded builds a warehouse with n weather events spread over a day
// and the Osaka area.
func benchLoaded(b *testing.B, n int) *Warehouse {
	b.Helper()
	w := New()
	for i := 0; i < n; i++ {
		tup := wTuple(time.Duration(i%86400)*time.Second, float64(10+i%25),
			"s", 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01)
		if err := w.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
	return w
}

func BenchmarkAppend(b *testing.B) {
	w := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := wTuple(time.Duration(i)*time.Second, 20, "s", 34.7, 135.5)
		if err := w.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectTimeRange(b *testing.B) {
	w := benchLoaded(b, 50_000)
	q := Query{From: t0.Add(6 * time.Hour), To: t0.Add(7 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRegion(b *testing.B) {
	w := benchLoaded(b, 50_000)
	region := geo.NewRect(geo.Point{Lat: 34.5, Lon: 135.3}, geo.Point{Lat: 34.55, Lon: 135.35})
	q := Query{Region: &region}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectCond(b *testing.B) {
	w := benchLoaded(b, 50_000)
	q := Query{Cond: "temperature > 30", From: t0.Add(3 * time.Hour), To: t0.Add(4 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}
