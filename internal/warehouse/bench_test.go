package warehouse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

// benchLoaded builds a warehouse with n weather events spread over a day
// and the Osaka area.
func benchLoaded(b *testing.B, n int) *Warehouse {
	b.Helper()
	w := New()
	for i := 0; i < n; i++ {
		tup := wTuple(time.Duration(i%86400)*time.Second, float64(10+i%25),
			"s", 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01)
		if err := w.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
	return w
}

func BenchmarkAppend(b *testing.B) {
	w := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := wTuple(time.Duration(i)*time.Second, 20, "s", 34.7, 135.5)
		if err := w.Append(tup); err != nil {
			b.Fatal(err)
		}
	}
}

// producerStreams pre-builds one monotone tuple stream per producer (one
// source each), with producers offset from each other by a small clock skew
// — the realistic shape of a heterogeneous fleet. Under a single global
// time index, interleaved skewed producers force mid-index insertions (the
// O(n) `byTime` insertion this package's sharding removes); with per-source
// shards each stream appends in order.
func producerStreams(producers, perProducer int) [][]*stt.Tuple {
	streams := make([][]*stt.Tuple, producers)
	for p := range streams {
		stream := make([]*stt.Tuple, perProducer)
		skew := time.Duration(p) * time.Minute
		for i := range stream {
			stream[i] = wTuple(skew+time.Duration(i)*time.Second, float64(10+i%25),
				fmt.Sprintf("src-%d", p), 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01)
		}
		streams[p] = stream
	}
	return streams
}

// benchConcurrentIngest runs `producers` goroutines, each appending its own
// source stream into a fresh warehouse per iteration. shards=1 is the old
// single-lock store; the sharded configurations demonstrate the ingest
// speedup the acceptance criteria require. batch > 1 drives AppendBatch.
func benchConcurrentIngest(b *testing.B, shards, producers, batch int) {
	const perProducer = 5_000
	streams := producerStreams(producers, perProducer)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		w := NewSharded(shards)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				stream := streams[p]
				if batch <= 1 {
					for _, tup := range stream {
						if err := w.Append(tup); err != nil {
							b.Error(err)
							return
						}
					}
					return
				}
				for i := 0; i < len(stream); i += batch {
					end := min(i+batch, len(stream))
					if err := w.AppendBatch(stream[i:end]); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*producers*perProducer)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkIngestConcurrent(b *testing.B) {
	const producers = 8
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchConcurrentIngest(b, shards, producers, 1)
		})
	}
}

func BenchmarkIngestBatchConcurrent(b *testing.B) {
	const producers = 8
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchConcurrentIngest(b, DefaultShards, producers, batch)
		})
	}
}

// benchLoadedSharded fills a warehouse with n events over 16 sources.
func benchLoadedSharded(b *testing.B, shards, n int) *Warehouse {
	b.Helper()
	w := NewSharded(shards)
	batch := make([]*stt.Tuple, 0, 1024)
	for i := 0; i < n; i++ {
		batch = append(batch, wTuple(time.Duration(i)*time.Second, float64(10+i%25),
			fmt.Sprintf("src-%d", i%16), 34.4+float64(i%50)*0.01, 135.2+float64(i%50)*0.01))
		if len(batch) == cap(batch) {
			if err := w.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := w.AppendBatch(batch); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkSelectFanout measures concurrent query throughput: readers issue
// time-range selects while the per-shard scans run in parallel.
func BenchmarkSelectFanout(b *testing.B) {
	for _, shards := range []int{1, 16} {
		for _, readers := range []int{4, 16} {
			b.Run(fmt.Sprintf("shards=%d/readers=%d", shards, readers), func(b *testing.B) {
				w := benchLoadedSharded(b, shards, 200_000)
				q := Query{From: t0.Add(6 * time.Hour), To: t0.Add(7 * time.Hour)}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := r; i < b.N; i += readers {
							if _, err := w.Select(q); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			})
		}
	}
}

func BenchmarkSelectTimeRange(b *testing.B) {
	w := benchLoaded(b, 50_000)
	q := Query{From: t0.Add(6 * time.Hour), To: t0.Add(7 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRegion(b *testing.B) {
	w := benchLoaded(b, 50_000)
	region := geo.NewRect(geo.Point{Lat: 34.5, Lon: 135.3}, geo.Point{Lat: 34.55, Lon: 135.35})
	q := Query{Region: &region}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectCond(b *testing.B) {
	w := benchLoaded(b, 50_000)
	q := Query{Cond: "temperature > 30", From: t0.Add(3 * time.Hour), To: t0.Add(4 * time.Hour)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}
