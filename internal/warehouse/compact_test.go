package warehouse

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamloader/internal/persist"
)

// compactCfg makes every spilled file "small" so CompactNow always finds
// mergeable runs: 64-event segments against a 100-event threshold.
func compactCfg(dir string) Config {
	return Config{
		Shards: 1, SegmentEvents: 64, SegmentSpan: 10 * time.Minute,
		DataDir: dir, HotSegments: 1, Sync: persist.SyncNever,
		CompactBelow: 100,
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, _, err := persist.ListSegments(filepath.Join(dir, "shard-000"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func allSeqs(t *testing.T, w *Warehouse) []uint64 {
	t.Helper()
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]uint64, len(evs))
	for i, ev := range evs {
		seqs[i] = ev.Seq
	}
	return seqs
}

func sameSeqs(t *testing.T, got, want []uint64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func TestCompactionMergesColdFiles(t *testing.T) {
	dir := t.TempDir()
	// Build the small-file layout with the compactor disabled: spills
	// nudge the background compactor, so with it live the files can merge
	// before `before` is measured and CompactNow is left nothing to do.
	build := compactCfg(dir)
	build.CompactBelow = -1
	w0, err := Open(build)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewWithConfig(Config{Shards: 1, SegmentEvents: 64, SegmentSpan: 10 * time.Minute})
	tuples := ingestMixed(t, w0, 600)
	if err := mem.AppendBatch(tuples); err != nil {
		t.Fatal(err)
	}
	w0.DrainSpills()
	before := len(segFiles(t, dir))
	if before < 4 {
		t.Fatalf("only %d cold files; test is vacuous", before)
	}
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}

	w, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.CompactNow()
	st := w.Stats()
	if st.Compactions == 0 || st.SegmentsCompacted < 2 {
		t.Fatalf("no compactions ran: %+v", st)
	}
	after := len(segFiles(t, dir))
	if after >= before {
		t.Fatalf("cold files %d -> %d, want fewer", before, after)
	}
	if int(st.SegmentsCold) != after {
		t.Fatalf("stats count %d cold segments, disk has %d", st.SegmentsCold, after)
	}
	for _, q := range queriesOver() {
		sameSelect(t, w, mem, q)
	}
	// The swap is durable and leaves no pending manifest record.
	man, _, err := persist.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Compactions) != 0 {
		t.Fatalf("manifest holds %d stale compaction records", len(man.Compactions))
	}

	// The merged layout must recover.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, q := range queriesOver() {
		sameSelect(t, re, mem, q)
	}
}

// buildCompactionCrash prepares a store that "crashed" mid-compaction: two
// cold files merged into a published higher-generation file, optionally
// with the manifest record written and victim deletions partially applied.
// Returns the data dir and the expected event seqs.
func buildCompactionCrash(t *testing.T, record bool, deleteVictims int) (string, []uint64) {
	t.Helper()
	dir := t.TempDir()
	cfg := compactCfg(dir)
	cfg.CompactBelow = -1 // build the layout by hand below
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestMixed(t, w, 400)
	w.DrainSpills()
	want := allSeqs(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	paths := segFiles(t, dir)
	if len(paths) < 2 {
		t.Fatalf("only %d cold files", len(paths))
	}
	victims := paths[:2]
	var merged []persist.Event
	var oldGens []int
	for _, p := range victims {
		info, _, err := persist.OpenSegment(p)
		if err != nil {
			t.Fatal(err)
		}
		evs, _, err := info.ReadRangeCached(nil, 0, info.Count)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, evs...)
		gen, err := persist.ParseSegmentFileName(filepath.Base(p))
		if err != nil {
			t.Fatal(err)
		}
		oldGens = append(oldGens, gen)
	}
	persist.SortEvents(merged)
	_, newGen, err := persist.ListSegments(filepath.Join(dir, "shard-000"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteSegment(filepath.Join(dir, "shard-000", persist.SegmentFileName(newGen)), merged); err != nil {
		t.Fatal(err)
	}
	if record {
		man, _, err := persist.LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		man.Compactions = append(man.Compactions, persist.CompactionRecord{
			Shard: 0, NewGen: newGen, OldGens: oldGens,
		})
		if err := persist.SaveManifest(dir, man); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range victims[:deleteVictims] {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	return dir, want
}

// TestCompactionCrashRecovery drives recovery through every crash window of
// a compaction: before the manifest record (the merged file must be undone
// as a duplicate), after the record with victims intact, and after the
// record with deletions half done. All three must recover the exact event
// set, and a second reopen must be a no-op.
func TestCompactionCrashRecovery(t *testing.T) {
	for _, tc := range []struct {
		name          string
		record        bool
		deleteVictims int
		// mergedSurvives: with the record durable the merged file is the
		// authority; without it, recovery deletes it as a duplicate.
		mergedSurvives bool
	}{
		{"no record", false, 0, false},
		{"record, victims intact", true, 0, true},
		{"record, partially deleted", true, 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, want := buildCompactionCrash(t, tc.record, tc.deleteVictims)
			preOpen := segFiles(t, dir)
			cfg := compactCfg(dir)
			cfg.CompactBelow = -1
			w, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSeqs(t, allSeqs(t, w), want, "after recovery")
			if n := w.Len(); n != len(want) {
				t.Fatalf("Len = %d, want %d", n, len(want))
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			postOpen := segFiles(t, dir)
			if len(postOpen) >= len(preOpen) {
				t.Fatalf("recovery kept all %d files; must delete the duplicate side", len(preOpen))
			}
			man, _, err := persist.LoadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(man.Compactions) != 0 {
				t.Fatalf("manifest still holds compaction records: %+v", man.Compactions)
			}
			if tc.mergedSurvives {
				// Every victim must be gone; the merged file carries them.
				for _, p := range preOpen[:2-tc.deleteVictims] {
					if _, err := os.Stat(p); !os.IsNotExist(err) {
						t.Fatalf("victim %s survived recovery (err=%v)", p, err)
					}
				}
			}
			// Recovery is idempotent: a second reopen changes nothing.
			re, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameSeqs(t, allSeqs(t, re), want, "after second recovery")
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompactionSurvivesCrashAfterSwap: a hard close (simulated crash)
// immediately after CompactNow must recover the merged layout exactly.
func TestCompactionSurvivesCrashAfterSwap(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestMixed(t, w, 600)
	w.DrainSpills()
	w.CompactNow()
	if w.Stats().Compactions == 0 {
		t.Fatal("no compaction ran")
	}
	want := allSeqs(t, w)
	spilled := w.Stats().SegmentsCold
	w.CloseHard()

	re, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.DrainSpills()
	sameSeqs(t, allSeqs(t, re), want, "after crash")
	if re.Stats().SegmentsCold < spilled {
		t.Fatalf("cold segments %d, had %d before crash", re.Stats().SegmentsCold, spilled)
	}
}

func TestOpenFailsOnCorruptSegmentName(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestMixed(t, w, 200)
	w.DrainSpills()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The old recovery parsed "seg-7junk.seg" with Sscanf, silently read
	// gen 7, and mis-scoped retention watermarks; now Open refuses.
	junk := filepath.Join(dir, "shard-000", "seg-7junk.seg")
	if err := os.WriteFile(junk, []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(compactCfg(dir)); err == nil {
		t.Fatal("open must fail on a corrupt segment file name")
	}
	if err := os.Remove(junk); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatalf("open after removing junk: %v", err)
	}
	w2.Close()
}

// TestCompactionRespectsDisable: CompactBelow < 0 turns the compactor off.
func TestCompactionRespectsDisable(t *testing.T) {
	dir := t.TempDir()
	cfg := compactCfg(dir)
	cfg.CompactBelow = -1
	w, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ingestMixed(t, w, 400)
	w.DrainSpills()
	before := len(segFiles(t, dir))
	w.CompactNow()
	if w.Stats().Compactions != 0 || len(segFiles(t, dir)) != before {
		t.Fatalf("disabled compactor still ran: %+v", w.Stats())
	}
}

// TestCompactionMergesMixedFormats builds cold history under every segment
// format in turn — v1, then v2, then v3 files in one store — compacts the
// mix, and checks the merged files come out in the configured (v3) format
// with query results byte-identical to an in-memory reference, across a
// reopen too.
func TestCompactionMergesMixedFormats(t *testing.T) {
	dir := t.TempDir()
	mem := NewWithConfig(Config{Shards: 1, SegmentEvents: 64, SegmentSpan: 10 * time.Minute})
	for _, ver := range []int{persist.SegmentV1, persist.SegmentV2, persist.SegmentV3} {
		cfg := compactCfg(dir)
		cfg.CompactBelow = -1 // keep the mixed layout until the final merge
		cfg.SegmentFormat = ver
		w, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tuples := ingestMixed(t, w, 200)
		if err := mem.AppendBatch(tuples); err != nil {
			t.Fatal(err)
		}
		w.DrainSpills()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	before := segFiles(t, dir)
	versions := map[int]int{}
	wasThere := map[string]bool{}
	for _, path := range before {
		info, _, err := persist.OpenSegment(path)
		if err != nil {
			t.Fatal(err)
		}
		versions[info.Version]++
		wasThere[path] = true
	}
	for _, ver := range []int{persist.SegmentV1, persist.SegmentV2, persist.SegmentV3} {
		if versions[ver] == 0 {
			t.Fatalf("no v%d cold files on disk before compaction (%v); test is vacuous", ver, versions)
		}
	}

	w, err := Open(compactCfg(dir)) // SegmentFormat 0: latest (v3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.CompactNow()
	if st := w.Stats(); st.Compactions == 0 || st.SegmentsCompacted < 2 {
		t.Fatalf("no compactions ran over the mixed layout: %+v", st)
	}
	after := segFiles(t, dir)
	if len(after) >= len(before) {
		t.Fatalf("cold files %d -> %d, want fewer", len(before), len(after))
	}
	merged := 0
	for _, path := range after {
		if wasThere[path] {
			continue
		}
		info, _, err := persist.OpenSegment(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Version != persist.SegmentV3 {
			t.Fatalf("merged file %s is v%d, want v%d", path, info.Version, persist.SegmentV3)
		}
		merged++
	}
	if merged == 0 {
		t.Fatal("compaction produced no new files")
	}
	for _, q := range queriesOver() {
		sameSelect(t, w, mem, q)
	}

	// The merged mixed-provenance layout must recover byte-identically.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(compactCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, q := range queriesOver() {
		sameSelect(t, re, mem, q)
	}
}
