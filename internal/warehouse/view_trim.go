package warehouse

import (
	"sort"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/partial"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// Retention-cut maintenance for standing views. compactAll calls
// trimViews with every shard lock held, after the cut is persisted and
// before the drops are applied, so the evicted events are still readable
// from the in-memory segments and the loaded boundary cold files.
//
// The eviction prefix property does the heavy lifting: every evicted
// event's (time, seq) key is ≤ the cut, so for a bucketed view every
// frame starting strictly below the cut's bucket B* contains only evicted
// events and falls off whole — an O(frames) map delete, no arithmetic, no
// rescan, correct for every aggregate function including MIN/MAX. Only
// the single boundary frame (start == B*) is partially evicted and needs
// patching:
//
//   - COUNT/SUM/AVG subtract the evicted boundary events' exact
//     contribution (partial.Store.Sub), because the state carries count
//     and sum separately and both are linear.
//   - MIN/MAX cannot un-observe an extremum, so the boundary frame is
//     queued for a one-bucket rescan (View.rescanFrameLocked) — still
//     never a history rescan.
//   - A cold file dropped whole by its envelope alone was never read
//     back; if its tail reaches into the boundary frame, the evicted
//     contribution there is unknown and the boundary falls back to the
//     rescan queue too.
//
// An unbucketed view has one frame, so nothing drops whole: COUNT/SUM/AVG
// still subtract exactly when every evicted event is in memory, MIN/MAX
// (or an unloaded cold drop) degrade to the full-rebuild dirty flag — the
// only remaining case that rescans history.

// trimViews patches every registered view for one eviction. Caller holds
// retMu and every shard lock; the evicted events (cursor prefixes) must
// still be readable. The registry lock is only held to snapshot the view
// list — the per-view work runs after its release, so the lock-order
// contract (nothing heavy under viewRegistry.mu) stands. A view released
// concurrently is patched harmlessly: its state is discarded either way.
func (w *Warehouse) trimViews(cut persist.Key, anyDead bool, cursors []*segCursor) {
	reg := &w.views
	reg.mu.Lock()
	if len(reg.m) == 0 {
		reg.mu.Unlock()
		return
	}
	views := make([]*View, 0, len(reg.m))
	for _, v := range reg.m {
		views = append(views, v)
	}
	reg.mu.Unlock()

	shardIdx := make(map[*shard]int, len(w.shards))
	for i, s := range w.shards {
		shardIdx[s] = i
	}
	for _, v := range views {
		v.applyTrim(cut, anyDead, cursors, shardIdx)
	}
}

// applyTrim patches one view for one eviction; see the file comment for
// the case analysis. Runs with every shard lock held.
func (v *View) applyTrim(cut persist.Key, anyDead bool, cursors []*segCursor, shardIdx map[*shard]int) {
	if anyDead {
		// An unreadable cold file kept an unknown subset of its events; the
		// eviction set is not exactly the cursor prefixes, so nothing short
		// of a rebuild is sound.
		v.dirty.Store(true)
		v.wake()
		return
	}
	width := v.plan.Bucket
	if width <= 0 {
		v.applyTrimFlat(cursors, shardIdx)
		return
	}
	bstar := cut.Time.Truncate(width)

	// Frames strictly below the boundary bucket hold only evicted events
	// (prefix property); drop them whole.
	keep := func(start time.Time) bool { return !start.Before(bstar) }
	for _, p := range v.parts {
		p.mu.Lock()
		v.w.viewFrameDrops.Add(uint64(p.store.DropFrames(keep)))
		p.mu.Unlock()
	}

	// Collect the evicted events that land in the boundary frame, per
	// shard. Each cursor's dropped prefix is time-ordered, so a cursor
	// whose last dropped event sits below the boundary bucket is skipped
	// in O(1) — the common case, since most of the drop is whole frames —
	// and the cursors straddling the boundary binary-search their first
	// boundary event instead of scanning the prefix. That keeps this pass
	// O(cursors·log) + O(boundary events), not O(everything evicted). A
	// cold segment consumed whole by its envelope was never loaded; if it
	// reaches into the boundary frame its contribution there is unknown.
	boundary := make([][]Event, len(v.parts))
	unknown := false
	for _, c := range cursors {
		if c.pos == 0 {
			continue
		}
		i := shardIdx[c.sh]
		switch {
		case c.mem != nil:
			if c.mem.events[c.mem.byTime[c.pos-1]].Tuple.Time.Before(bstar) {
				continue
			}
			j0 := sort.Search(c.pos, func(j int) bool {
				return !c.mem.events[c.mem.byTime[j]].Tuple.Time.Before(bstar)
			})
			for j := j0; j < c.pos; j++ {
				boundary[i] = append(boundary[i], c.mem.events[c.mem.byTime[j]])
			}
		case c.cold.loaded != nil:
			if c.cold.loaded[c.pos-1].Tuple.Time.Before(bstar) {
				continue
			}
			j0 := sort.Search(c.pos, func(j int) bool {
				return !c.cold.loaded[j].Tuple.Time.Before(bstar)
			})
			boundary[i] = append(boundary[i], c.cold.loaded[j0:c.pos]...)
		default:
			if !c.cold.tail.Time.Before(bstar) {
				unknown = true
			}
		}
	}
	hasBoundary := unknown
	for _, evs := range boundary {
		if len(evs) > 0 {
			hasBoundary = true
			break
		}
	}
	switch {
	case !hasBoundary:
		// The cut fell exactly on frame edges: the whole eviction was
		// frame drops, even for MIN/MAX.
	case v.plan.Func.Subtractable() && !unknown:
		if !v.subtractBoundary(boundary) {
			return // failed terminally or fell back to dirty; both woke
		}
	default:
		v.queueRescan(bstar)
	}
	v.mutations.Add(1)
	v.wake()
}

// subtractBoundary folds the evicted boundary events through the view's
// own filter and subtracts their exact contribution from each shard's
// store. Returns false after arranging recovery (terminal error or dirty
// fallback) itself.
func (v *View) subtractBoundary(boundary [][]Event) bool {
	for i, evs := range boundary {
		if len(evs) == 0 {
			continue
		}
		deltas := map[partial.Key]*partial.State{}
		conds := map[*stt.Schema]*expr.Compiled{}
		for _, ev := range evs {
			m, err := matchEvent(ev, v.plan.Query, conds)
			if err != nil {
				v.fail(err)
				return false
			}
			if !m {
				continue
			}
			if !v.plan.accumulate(deltas, ev.Tuple) {
				// Delta cardinality overflowed the group bound — the view
				// itself would have failed folding these; rebuild instead.
				v.dirty.Store(true)
				v.wake()
				return false
			}
		}
		if len(deltas) == 0 {
			continue
		}
		p := v.parts[i]
		p.mu.Lock()
		p.store.Sub(deltas)
		p.mu.Unlock()
		v.w.viewSubtractions.Add(1)
	}
	return true
}

// applyTrimFlat is the unbucketed case: one frame, nothing drops whole.
func (v *View) applyTrimFlat(cursors []*segCursor, shardIdx map[*shard]int) {
	if !v.plan.Func.Subtractable() {
		v.dirty.Store(true)
		v.wake()
		return
	}
	dropped := make([][]Event, len(v.parts))
	for _, c := range cursors {
		if c.pos == 0 {
			continue
		}
		i := shardIdx[c.sh]
		switch {
		case c.mem != nil:
			for j := 0; j < c.pos; j++ {
				dropped[i] = append(dropped[i], c.mem.events[c.mem.byTime[j]])
			}
		case c.cold.loaded != nil:
			dropped[i] = append(dropped[i], c.cold.loaded[:c.pos]...)
		default:
			// A cold file dropped whole by envelope: its events are not in
			// memory to subtract.
			v.dirty.Store(true)
			v.wake()
			return
		}
	}
	if !v.subtractBoundary(dropped) {
		return
	}
	v.mutations.Add(1)
	v.wake()
}
