package warehouse

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamloader/internal/expr"
	"streamloader/internal/ops"
	"streamloader/internal/partial"
	"streamloader/internal/stt"
)

// This file implements materialized aggregate views: standing AggQuery
// results maintained incrementally at ingest and pushed to subscribers,
// so a dashboard refresh costs a channel receive instead of a history
// re-scan.
//
// A view is backfilled at registration by the same per-shard scan that
// answers a one-shot Aggregate — run under each shard's write lock in the
// same critical section that attaches the view's tap, so the scan and the
// event stream compose without a gap or an overlap: every event is either
// in the scanned history or delivered to the tap, never both, never
// neither. From then on each committed event folds into the owning
// shard's partial store (partial.State merges are order-insensitive for
// the integral case and identical to Aggregate's arithmetic in general),
// and a snapshot is the same shard-ordered merge Aggregate performs. A
// view's rows therefore equal a fresh Aggregate of the same query at
// every quiescent point.
//
// Partials live in a partial.Store: per-time-bucket frames keyed by the
// aligned bucket start (one zero frame when the query has no bucket).
// The frame index is what makes removal cheap. A retention cut deletes
// every frame strictly below the cut's bucket whole — no rescan, any
// aggregate — and patches only the single boundary frame: COUNT/SUM/AVG
// subtract the evicted events' exact contribution, while MIN/MAX (which
// cannot un-observe an extremum) queue a rescan of that one bucket, not
// of history (view_trim.go). A windowed view (AggQuery.Window) drops
// expired frames the same way on the publisher's clock, so expiry never
// rescans either. Only an unbucketed MIN/MAX view, or a cut whose evicted
// events are not in memory to subtract, still pays a full rebuild.
//
// Durable warehouses checkpoint view state: the publisher periodically
// persists each shard's frames plus its seq high-water mark
// (view_ckpt.go), and a re-registration of the same (query, policy) seeds
// from the checkpoint and folds only the WAL-tail events committed after
// it, instead of re-scanning all of history.
//
// Lock order, strictly: shard.mu → viewPart.mu, shard.mu → View.mu, and
// viewRegistry.mu → View.mu. The registry lock is taken while all shard
// locks are held (compactAll → trimViews), so nothing may acquire a
// shard lock — or block — while holding it: registration backfills after
// releasing it, teardown detaches its taps before taking it, and
// trimViews snapshots the view list and does its patching after release.

// ErrViewClosed reports use of a view after Release/Close tore it down.
var ErrViewClosed = errors.New("warehouse: view closed")

// ErrTooManySubscribers reports a Subscribe beyond the configured cap.
var ErrTooManySubscribers = errors.New("warehouse: too many subscribers")

// ViewUpdate is one pushed snapshot. Every update carries the view's full
// current row set (sorted like Aggregate's result), so updates are
// latest-wins: a subscriber that misses intermediate updates loses
// freshness, never correctness.
type ViewUpdate struct {
	// Version increments per published snapshot of this view.
	Version uint64
	// Rows is the complete current result.
	Rows []AggRow
	// Resnapshot marks a snapshot that may not extend the previous one
	// monotonically: the first update, a post-rebuild update (retention
	// cut), a window expiry, or the first update after this subscriber had
	// updates shed.
	Resnapshot bool
	// Shed counts the updates dropped on this subscriber's buffer so far.
	Shed uint64
	// Err, when set, is the view's terminal error; the channel closes
	// after this update.
	Err error
}

// Subscription is one subscriber's handle on a view: a bounded channel of
// snapshots plus a Close that frees the slot. When the buffer is full the
// publisher drops the oldest queued update and marks the next delivered
// one Resnapshot — a slow consumer sheds freshness but never blocks
// ingest or other subscribers.
type Subscription struct {
	v        *View
	ch       chan ViewUpdate
	shed     uint64 // guarded by v.mu
	chClosed bool   // guarded by v.mu
	once     sync.Once
}

// Updates is the snapshot stream. It closes after a terminal update (one
// with Err set) or a Close from either side.
func (sub *Subscription) Updates() <-chan ViewUpdate { return sub.ch }

// Close detaches the subscriber, closes its channel and releases its view
// reference (the view tears down when the last reference goes).
// Idempotent; safe concurrently with the publisher.
func (sub *Subscription) Close() {
	sub.once.Do(func() {
		v := sub.v
		v.mu.Lock()
		for i, cur := range v.subs {
			if cur == sub {
				v.subs = append(v.subs[:i], v.subs[i+1:]...)
				break
			}
		}
		sub.closeChLocked()
		v.mu.Unlock()
		v.release()
	})
}

// sendLocked delivers one update, shedding the oldest queued update when
// the buffer is full. Caller holds v.mu (which serializes all sends and
// the close, so the loop terminates: only the consumer may drain
// concurrently, which only frees space).
func (sub *Subscription) sendLocked(u ViewUpdate) {
	if sub.chClosed {
		return
	}
	u.Shed = sub.shed
	for {
		select {
		case sub.ch <- u:
			return
		default:
		}
		select {
		case <-sub.ch:
			sub.shed++
		default:
		}
		u.Resnapshot = true
		u.Shed = sub.shed
	}
}

// closeChLocked closes the channel once. Caller holds v.mu.
func (sub *Subscription) closeChLocked() {
	if !sub.chClosed {
		sub.chClosed = true
		close(sub.ch)
	}
}

// viewPart is a view's per-shard state: the bucketed partial aggregates
// of the events this shard contributed. It is the view's tap consumer —
// onCommit folds committed events in — and its mutex nests inside the
// shard lock.
type viewPart struct {
	v *View

	mu    sync.Mutex
	store *partial.Store
	// conds caches the view's compiled payload condition per schema, like
	// a query-local cache but living as long as the view.
	conds map[*stt.Schema]*expr.Compiled
}

// onCommit folds one committed batch into the shard's partial frames.
// Runs under the shard write lock (tap contract): no blocking, no other
// locks beyond p.mu. Errors park in the view's fail slot for the
// publisher — teardown needs shard locks, so it cannot run from here.
func (p *viewPart) onCommit(w *Warehouse, s *shard, evs []Event) {
	v := p.v
	matched := 0
	p.mu.Lock()
	for _, ev := range evs {
		ok, err := matchEvent(ev, v.plan.Query, p.conds)
		if err != nil {
			p.mu.Unlock()
			v.fail(err)
			return
		}
		if !ok {
			continue
		}
		if !v.plan.accumulateStore(p.store, ev.Tuple) {
			p.mu.Unlock()
			v.fail(errAggGroups)
			return
		}
		matched++
	}
	p.mu.Unlock()
	if matched > 0 {
		v.mutations.Add(1)
		v.pending.Add(int64(matched))
		v.wake()
	}
}

// View is one registered standing aggregate. Identical (query, policy)
// registrations share a View — the registry refcounts them — so a
// thousand dashboards watching the same aggregate cost one maintenance
// stream fanned out, not a thousand.
type View struct {
	w      *Warehouse
	plan   aggPlan
	policy ops.UpdatePolicy
	key    string
	parts  []*viewPart // one per shard, fixed at construction

	refs int // guarded by w.views.mu

	// dirty demands a full rebuild before the next snapshot (an eviction
	// whose exact contribution is unknown); mutations counts state changes
	// (folds, trims, rebuilds) so the publisher can skip no-op wakes;
	// pending counts folded events since the last publication (count
	// policy).
	dirty     atomic.Bool
	mutations atomic.Uint64
	pending   atomic.Int64

	// foldErr parks an onCommit failure for the publisher to act on.
	foldErr atomic.Pointer[viewErr]

	notify chan struct{} // cap 1: wake the publisher
	stopc  chan struct{} // closed by teardown
	done   chan struct{} // closed when the publisher exits

	stopOnce sync.Once
	// refreshMu serializes rebuilds (registration backfill included),
	// boundary rescans and Rows reads, so a reader never merges a
	// half-rebuilt accumulator set. Order: refreshMu → shard.mu →
	// viewPart.mu.
	refreshMu sync.Mutex

	// trimMu guards rescan, the set of boundary-frame starts a retention
	// cut left for MIN/MAX (or an unloadable cold drop) to re-derive. It
	// is taken with all shard locks held (trimViews), so nothing may block
	// under it.
	trimMu sync.Mutex
	rescan map[int64]time.Time

	mu      sync.Mutex
	subs    []*Subscription
	err     error // terminal; set by teardown
	version uint64
}

type viewErr struct{ err error }

func (v *View) fail(err error) {
	v.foldErr.CompareAndSwap(nil, &viewErr{err: err})
	v.wake()
}

func (v *View) takeErr() error {
	if e := v.foldErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// wake nudges the publisher; never blocks.
func (v *View) wake() {
	select {
	case v.notify <- struct{}{}:
	default:
	}
}

// queueRescan records that the frame starting at start must be re-derived
// from a one-bucket scan before the next snapshot. Safe under any locks
// (trimViews calls it with every shard lock held).
func (v *View) queueRescan(start time.Time) {
	v.trimMu.Lock()
	if v.rescan == nil {
		v.rescan = map[int64]time.Time{}
	}
	v.rescan[start.UnixNano()] = start
	v.trimMu.Unlock()
}

// takeRescans drains the queued boundary rescans.
func (v *View) takeRescans() []time.Time {
	v.trimMu.Lock()
	defer v.trimMu.Unlock()
	if len(v.rescan) == 0 {
		return nil
	}
	out := make([]time.Time, 0, len(v.rescan))
	for _, t := range v.rescan {
		out = append(out, t)
	}
	v.rescan = nil
	return out
}

// pendingRescans reports whether boundary rescans are queued (checkpoints
// must not persist a frame awaiting one).
func (v *View) pendingRescans() bool {
	v.trimMu.Lock()
	defer v.trimMu.Unlock()
	return len(v.rescan) > 0
}

// viewKey canonicalizes (query, policy) for registry dedup and for the
// checkpoint identity a restart resumes by. Built field by field — never
// %v on the struct — so the Region pointer's address can not leak into
// the identity.
func viewKey(p *aggPlan, policy ops.UpdatePolicy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "f=%s|fld=%s|gs=%t|gt=%t|b=%d|w=%d|mg=%d", p.Func, p.Field, p.groupSource, p.groupTheme, p.Bucket, p.Window, p.maxGroups)
	fmt.Fprintf(&b, "|from=%d|to=%d", p.From.UnixNano(), p.To.UnixNano())
	if p.Region != nil {
		fmt.Fprintf(&b, "|r=%.6f,%.6f,%.6f,%.6f", p.Region.Min.Lat, p.Region.Min.Lon, p.Region.Max.Lat, p.Region.Max.Lon)
	}
	fmt.Fprintf(&b, "|th=%s|src=%s|cond=%s|pol=%s",
		strings.Join(p.Themes, "\x1f"), strings.Join(p.Sources, "\x1f"), p.Cond, policy.String())
	return b.String()
}

// viewRegistry holds the live views keyed by canonical (query, policy).
type viewRegistry struct {
	mu sync.Mutex
	m  map[string]*View
}

// RegisterView registers a standing aggregate: validate, dedup against an
// identical live view, seed from a persisted checkpoint when one is still
// valid (folding only the events committed after it), otherwise backfill
// from a history scan, then maintain incrementally. The returned view
// holds one reference; pair with Release. The first error — invalid
// query, backfill scan failure, group-cardinality overflow — is returned
// synchronously and registers nothing.
func (w *Warehouse) RegisterView(q AggQuery, policy ops.UpdatePolicy) (*View, error) {
	p, err := q.plan()
	if err != nil {
		return nil, err
	}
	policy = policy.Normalize()
	if err := policy.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidAggQuery, err)
	}
	key := viewKey(&p, policy)

	reg := &w.views
	reg.mu.Lock()
	if reg.m == nil {
		reg.m = map[string]*View{}
	}
	if v := reg.m[key]; v != nil {
		v.refs++
		reg.mu.Unlock()
		return v, nil
	}
	v := &View{
		w:      w,
		plan:   p,
		policy: policy,
		key:    key,
		parts:  make([]*viewPart, len(w.shards)),
		refs:   1,
		notify: make(chan struct{}, 1),
		stopc:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range v.parts {
		v.parts[i] = &viewPart{
			v:     v,
			store: partial.NewStore(p.Bucket),
			conds: map[*stt.Schema]*expr.Compiled{},
		}
	}
	v.dirty.Store(true)
	reg.m[key] = v
	reg.mu.Unlock()

	// Seed and backfill outside the registry lock (they take shard locks).
	// A concurrent same-key RegisterView may already hold a reference; its
	// first snapshot waits on refreshMu, so it still sees a seeded state
	// or this teardown's ErrViewClosed. tryResume clears the dirty flag
	// and attaches the taps itself on success; on any validation failure
	// it leaves the flag set and the full backfill below runs instead.
	v.tryResume()
	if err := v.refreshIfDirty(); err != nil {
		v.teardown(err)
		return nil, err
	}
	w.recordViewDef(v)
	go v.run()
	return v, nil
}

// SubscribeOptions configures Warehouse.Subscribe.
type SubscribeOptions struct {
	// Policy is the publication schedule (zero value: per event).
	Policy ops.UpdatePolicy
	// Buffer is the subscriber channel depth (0: a small default).
	Buffer int
	// MaxSubscribers, when positive, fails the subscribe when the
	// warehouse already carries that many subscribers across all views.
	MaxSubscribers int
}

// Subscribe is the one-call path a serving layer uses: register (or share)
// the view and attach one subscriber, whose Close releases everything.
func (w *Warehouse) Subscribe(q AggQuery, opt SubscribeOptions) (*Subscription, error) {
	if opt.MaxSubscribers > 0 && w.SubscriberCount() >= opt.MaxSubscribers {
		return nil, ErrTooManySubscribers
	}
	v, err := w.RegisterView(q, opt.Policy)
	if err != nil {
		return nil, err
	}
	sub, err := v.Subscribe(opt.Buffer)
	v.Release() // the subscription holds its own reference now
	return sub, err
}

// Subscribe attaches a subscriber: an immediate full snapshot, then
// updates per the view's policy. The subscription holds a view reference
// until its Close.
func (v *View) Subscribe(buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = 8
	}
	rows, err := v.Rows()
	if err != nil {
		return nil, err
	}
	reg := &v.w.views
	reg.mu.Lock()
	if reg.m[v.key] != v {
		reg.mu.Unlock()
		return nil, ErrViewClosed
	}
	v.refs++
	reg.mu.Unlock()

	sub := &Subscription{v: v, ch: make(chan ViewUpdate, buffer)}
	v.mu.Lock()
	if v.err != nil {
		err := v.err
		v.mu.Unlock()
		v.release()
		return nil, err
	}
	v.subs = append(v.subs, sub)
	v.version++
	// Folds between the Rows call above and this attach are not lost:
	// they bumped mutations, so the publisher rebroadcasts a fresher full
	// snapshot to everyone, this subscriber included.
	sub.sendLocked(ViewUpdate{Version: v.version, Rows: rows, Resnapshot: true})
	v.mu.Unlock()
	return sub, nil
}

// Release drops one reference; the last one tears the view down.
func (v *View) Release() { v.release() }

func (v *View) release() {
	reg := &v.w.views
	reg.mu.Lock()
	v.refs--
	dead := v.refs <= 0
	if dead && reg.m[v.key] == v {
		// Unpublish under the lock so no new reference is handed out
		// between the decision and the teardown.
		delete(reg.m, v.key)
	}
	reg.mu.Unlock()
	if dead {
		// A clean last release persists the final state, so the next
		// registration of the same view resumes instead of backfilling.
		v.writeCheckpoint()
		v.teardown(nil)
	}
}

// Err returns the view's terminal error, nil while it is live.
func (v *View) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.err
}

// Rows computes the view's current full result: rebuild first if an
// eviction invalidated the partials (and re-derive any boundary frame a
// cut left queued), then merge the per-shard frames in shard order — the
// same merge arithmetic and ordering as Aggregate, over clones so the
// live partials are never aliased. A windowed view filters expired
// frames out of the merge by the warehouse clock, so its rows never show
// a bucket older than the window even before the publisher physically
// prunes it. The whole read holds refreshMu: a rebuild clears the dirty
// flag before it re-scans shard by shard, so a concurrent reader that
// merely checked the flag could merge a torn mix of rebuilt and stale
// per-shard accumulators.
func (v *View) Rows() ([]AggRow, error) {
	if err := v.Err(); err != nil {
		return nil, err
	}
	v.refreshMu.Lock()
	defer v.refreshMu.Unlock()
	if err := v.refreshLocked(); err != nil {
		return nil, err
	}
	merged := map[partial.Key]*partial.State{}
	keep := v.plan.windowKeep(v.w.now())
	for _, p := range v.parts {
		p.mu.Lock()
		ok := p.store.MergeInto(merged, v.plan.maxGroups, true, keep)
		p.mu.Unlock()
		if !ok {
			return nil, errAggGroups
		}
	}
	return v.plan.rowsFromPartials(merged), nil
}

// refreshIfDirty rebuilds while the dirty flag is set and drains queued
// boundary rescans.
func (v *View) refreshIfDirty() error {
	v.refreshMu.Lock()
	defer v.refreshMu.Unlock()
	return v.refreshLocked()
}

// refreshLocked rebuilds while the dirty flag is set, then re-derives any
// boundary frames a retention cut queued; the caller holds refreshMu.
// Bounded: retention churning faster than we can scan leaves work queued
// for the next call rather than looping forever.
func (v *View) refreshLocked() error {
	for i := 0; i < 16; i++ {
		if v.dirty.Load() {
			// A full rebuild re-derives every frame; rescans queued so far
			// are subsumed by it.
			v.takeRescans()
			if err := v.rebuildLocked(); err != nil {
				return err
			}
			continue
		}
		starts := v.takeRescans()
		if len(starts) == 0 {
			return nil
		}
		for _, start := range starts {
			if err := v.rescanFrameLocked(start); err != nil {
				return err
			}
		}
	}
	return nil
}

// rebuildLocked re-derives every shard's partials from a fresh scan; the
// caller holds refreshMu. Per shard, one write-lock critical section
// detaches the tap, scans (aggLocked), installs the result and re-attaches
// — so no commit lands in both the scan and the tap, and none lands in
// neither. The dirty flag clears before scanning: a cut racing the rebuild
// re-marks it and the caller's loop goes again.
func (v *View) rebuildLocked() error {
	t0 := v.w.met.viewRebuild.Start()
	defer v.w.met.viewRebuild.Since(t0)
	v.dirty.Store(false)
	for i, s := range v.w.shards {
		p := v.parts[i]
		s.mu.Lock()
		s.detachTapLocked(p)
		stopped := false
		select {
		case <-v.stopc:
			stopped = true
		default:
		}
		if stopped {
			// Teardown won the race; do not re-attach behind its back.
			s.mu.Unlock()
			return ErrViewClosed
		}
		acc, _, err := s.aggLocked(&v.plan)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		p.mu.Lock()
		p.store = partial.FromFlat(v.plan.Bucket, acc)
		p.mu.Unlock()
		s.attachTapLocked(p)
		s.mu.Unlock()
	}
	v.mutations.Add(1)
	return nil
}

// rescanFrameLocked re-derives one frame — the bucket a retention cut
// partially evicted — from a window-restricted scan, per shard under the
// same detach-scan-install-attach critical section rebuildLocked uses.
// The scan is bounded to [start, start+bucket), so a MIN/MAX view pays
// one bucket's worth of re-reading instead of a history rescan. The
// caller holds refreshMu.
func (v *View) rescanFrameLocked(start time.Time) error {
	v.w.viewBoundaryRescans.Add(1)
	t0 := v.w.met.viewRebuild.Start()
	defer v.w.met.viewRebuild.Since(t0)
	q := v.plan
	q.From, q.To = start, start.Add(v.plan.Bucket)
	if !v.plan.From.IsZero() && v.plan.From.After(q.From) {
		q.From = v.plan.From
	}
	if !v.plan.To.IsZero() && v.plan.To.Before(q.To) {
		q.To = v.plan.To
	}
	for i, s := range v.w.shards {
		p := v.parts[i]
		s.mu.Lock()
		s.detachTapLocked(p)
		stopped := false
		select {
		case <-v.stopc:
			stopped = true
		default:
		}
		if stopped {
			s.mu.Unlock()
			return ErrViewClosed
		}
		acc, _, err := s.aggLocked(&q)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		p.mu.Lock()
		p.store.ReplaceFrame(start, acc)
		p.mu.Unlock()
		s.attachTapLocked(p)
		s.mu.Unlock()
	}
	v.mutations.Add(1)
	return nil
}

// pruneExpired physically drops every frame that has aged out of a
// windowed view, returning how many went. Rows already filters expired
// frames out of each merge, so this is a memory release plus the
// publisher's expiry edge detector, not a correctness gate.
func (v *View) pruneExpired() int {
	keep := v.plan.windowKeep(v.w.now())
	if keep == nil {
		return 0
	}
	n := 0
	for _, p := range v.parts {
		p.mu.Lock()
		n += p.store.DropFrames(keep)
		p.mu.Unlock()
	}
	if n > 0 {
		v.w.viewFrameDrops.Add(uint64(n))
		v.mutations.Add(1)
	}
	return n
}

// run is the view's publisher goroutine: it coalesces wakes, applies the
// update policy, computes snapshots outside every shard lock and fans
// them out. One publisher per view regardless of subscriber count, so
// per-event maintenance cost does not scale with subscribers. A windowed
// view also ticks at bucket granularity to notice frames expiring in the
// absence of ingest — expiry is bucket-granular, so a finer clock would
// buy nothing.
func (v *View) run() {
	defer close(v.done)
	var tick <-chan time.Time
	if d := v.policy.TickEvery(); d > 0 {
		t := time.NewTicker(d)
		defer t.Stop()
		tick = t.C
	}
	var wtick <-chan time.Time
	if v.plan.Window > 0 && v.plan.Bucket > 0 {
		t := time.NewTicker(v.plan.Bucket)
		defer t.Stop()
		wtick = t.C
	}
	var published uint64
	lastCkpt := v.mutations.Load()
	for {
		fromTick, expired := false, false
		select {
		case <-v.stopc:
			return
		case <-v.notify:
		case <-tick:
			fromTick = true
		case <-wtick:
			if v.pruneExpired() == 0 {
				continue
			}
			expired = true
		}
		if err := v.takeErr(); err != nil {
			v.teardown(err)
			return
		}
		mut := v.mutations.Load()
		dirty := v.dirty.Load()
		if mut == published && !dirty && !expired {
			continue
		}
		pend := v.pending.Load()
		if !expired {
			switch v.policy.Mode {
			case ops.UpdateInterval:
				// Interval publications ride the ticker; a dirty view (post-
				// retention) resnapshots immediately so subscribers never hold
				// evicted state for a whole period. Window expiry takes the
				// same shortcut above.
				if !fromTick && !dirty {
					continue
				}
			case ops.UpdateCount:
				if !dirty && !v.policy.Due(pend) {
					continue
				}
			}
		}
		// Pre-read, so folds racing the snapshot keep mut != published and
		// force a re-publish: at-least-once, coalesced.
		published = mut
		v.pending.Add(-pend)
		rows, err := v.Rows()
		if err != nil {
			v.teardown(err)
			return
		}
		v.broadcast(rows, dirty || expired)
		if every := v.w.viewCkptEvery; every > 0 && mut-lastCkpt >= uint64(every) {
			v.writeCheckpoint()
			lastCkpt = mut
		}
	}
}

// broadcast fans one snapshot out to every subscriber.
func (v *View) broadcast(rows []AggRow, resnap bool) {
	t0 := v.w.met.viewPublish.Start()
	defer v.w.met.viewPublish.Since(t0)
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.err != nil {
		return
	}
	v.version++
	for _, sub := range v.subs {
		sub.sendLocked(ViewUpdate{Version: v.version, Rows: rows, Resnapshot: resnap})
	}
}

// teardown stops the view: publisher signalled, taps detached, registry
// entry removed, subscribers failed (terminal update when err != nil) and
// their channels closed. Idempotent; never waits for the publisher, so
// the publisher itself may call it.
func (v *View) teardown(err error) {
	v.stopOnce.Do(func() {
		close(v.stopc)
		for i, s := range v.w.shards {
			s.mu.Lock()
			s.detachTapLocked(v.parts[i])
			s.mu.Unlock()
		}
		reg := &v.w.views
		reg.mu.Lock()
		if reg.m[v.key] == v {
			delete(reg.m, v.key)
		}
		reg.mu.Unlock()

		v.mu.Lock()
		if err == nil {
			err = ErrViewClosed
		}
		v.err = err
		for _, sub := range v.subs {
			if !errors.Is(err, ErrViewClosed) {
				v.version++
				sub.sendLocked(ViewUpdate{Version: v.version, Err: err})
			}
			sub.closeChLocked()
		}
		v.subs = nil
		v.mu.Unlock()
	})
}

// wait blocks until the publisher goroutine has exited. Only for
// teardown-initiating callers outside the publisher (closeViews, tests).
func (v *View) wait() { <-v.done }

// closeViews tears down every live view and waits for their publishers,
// leaving no view goroutine behind. A clean close (write) persists each
// view's final checkpoint first, so the next Open's registrations resume
// from it; a crash-style close skips that, exactly as a kill would.
// Subscriber channels close without a terminal error update — a
// shutdown, not a fault.
func (w *Warehouse) closeViews(write bool) {
	reg := &w.views
	reg.mu.Lock()
	views := make([]*View, 0, len(reg.m))
	for _, v := range reg.m {
		views = append(views, v)
	}
	reg.mu.Unlock()
	for _, v := range views {
		if write {
			v.writeCheckpoint()
		}
		v.teardown(nil)
		v.wait()
	}
}

// ViewCount returns the number of live registered views.
func (w *Warehouse) ViewCount() int {
	reg := &w.views
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.m)
}

// SubscriberCount returns the live subscriber total across all views.
func (w *Warehouse) SubscriberCount() int {
	reg := &w.views
	reg.mu.Lock()
	defer reg.mu.Unlock()
	n := 0
	for _, v := range reg.m {
		v.mu.Lock()
		n += len(v.subs)
		v.mu.Unlock()
	}
	return n
}
