package warehouse

import (
	"fmt"
	"os"
	"path/filepath"

	"streamloader/internal/persist"
)

// Open creates or recovers a warehouse. With no DataDir it is
// NewWithConfig: a pure in-memory store, and every other persistence field
// is ignored. With a DataDir it builds the durable warehouse: per-shard
// WALs on the append path, spill-to-disk for cold segments, and — when the
// directory already holds a previous incarnation — recovery:
//
//  1. spilled segment files are re-registered from their headers (no event
//     payloads are read), with files wholly below the retention watermark
//     deleted and the one straddling it re-trimmed;
//  2. the WAL tail is replayed into fresh hot segments, skipping events
//     already present in spilled files or below the watermark, truncating
//     any torn tail; and
//  3. appends resume in a fresh WAL file with the sequence counter past
//     everything recovered.
//
// The manifest pins the shard count: a cfg.Shards that disagrees with an
// existing directory is overridden, so spilled files stay on the shard
// whose WAL wrote them.
func Open(cfg Config) (*Warehouse, error) {
	if cfg.DataDir == "" {
		return NewWithConfig(cfg), nil
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("warehouse: open: %w", err)
	}
	man, found, err := persist.LoadManifest(cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("warehouse: open: %w", err)
	}
	if found && man.Shards > 0 {
		cfg.Shards = man.Shards
	}
	w := NewWithConfig(cfg)
	if !found {
		man = persist.Manifest{Version: 1, Shards: len(w.shards)}
		if err := persist.SaveManifest(cfg.DataDir, man); err != nil {
			return nil, fmt.Errorf("warehouse: open: %w", err)
		}
	}
	// Finish any file compaction a crash interrupted, before recovery
	// registers segments. A CompactionRecord is written only after its
	// merged file is durable, so if the record is here the victims it
	// replaced must go — the deletions are idempotent, so replaying them
	// after a crash mid-delete is safe. A published merged file with no
	// record is handled later by recovery's duplicate-seq sweep instead.
	if len(man.Compactions) > 0 {
		for _, rec := range man.Compactions {
			dir := filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%03d", rec.Shard))
			if _, err := os.Stat(filepath.Join(dir, persist.SegmentFileName(rec.NewGen))); err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return nil, fmt.Errorf("warehouse: open: %w", err)
			}
			for _, g := range rec.OldGens {
				old := filepath.Join(dir, persist.SegmentFileName(g))
				if err := os.Remove(old); err != nil && !os.IsNotExist(err) {
					return nil, fmt.Errorf("warehouse: open: %w", err)
				}
			}
		}
		man.Compactions = nil
		if err := persist.SaveManifest(cfg.DataDir, man); err != nil {
			return nil, fmt.Errorf("warehouse: open: %w", err)
		}
	}
	w.pers = &persistState{dir: cfg.DataDir, manifest: man}

	cacheBytes := cfg.ColdCacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultColdCacheBytes
	}
	w.coldCache = persist.NewChunkCache(cacheBytes) // nil when disabled
	w.spill = newSpiller(w)
	if err := persist.ValidateSegmentFormat(cfg.SegmentFormat); err != nil {
		return nil, fmt.Errorf("warehouse: open: %w", err)
	}
	w.segVersion = cfg.SegmentFormat
	if w.segVersion == 0 {
		w.segVersion = persist.SegmentVersionLatest
	}
	segEvents := cfg.SegmentEvents
	if segEvents < 1 {
		segEvents = DefaultSegmentEvents
	}
	compactBelow := cfg.CompactBelow
	if compactBelow == 0 {
		compactBelow = segEvents / 2
	}
	if compactBelow > 0 {
		w.compact = newCompactor(w, compactBelow, segEvents)
	}

	hotSegments := cfg.HotSegments
	if hotSegments == 0 {
		hotSegments = DefaultHotSegments
	}
	walOpts := persist.WALOptions{
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncEvery,
		SegmentBytes: cfg.WALBytes,
		WriteHist:    w.met.walWrite,
		SyncHist:     w.met.walSync,
	}

	var maxSeq uint64
	var anySeq bool
	total := 0
	lastMarks := man.LastMarks()
	for i, s := range w.shards {
		s.dir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%03d", i))
		s.hotSegments = hotSegments
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			w.CloseHard()
			return nil, fmt.Errorf("warehouse: open: %w", err)
		}
		var lastMark persist.ShardMark
		if i < len(lastMarks) {
			lastMark = lastMarks[i]
		}
		seqMax, any, err := w.recoverShard(s, man.Cuts, i)
		if err != nil {
			w.CloseHard()
			return nil, err
		}
		if any && (!anySeq || seqMax > maxSeq) {
			maxSeq = seqMax
		}
		anySeq = anySeq || any
		shardOpts := walOpts
		// Never fall back behind the newest mark: a reused WAL file number
		// or segment generation would make fresh records look older than
		// the last compaction and expose them to its watermark.
		shardOpts.MinFile = lastMark.WALFile + 1
		if s.nextSegGen < lastMark.SegGen {
			s.nextSegGen = lastMark.SegGen
		}
		wal, err := persist.OpenWAL(s.dir, shardOpts, s.walFiles)
		s.walFiles = nil
		if err != nil {
			w.CloseHard()
			return nil, fmt.Errorf("warehouse: open wal: %w", err)
		}
		s.wal = wal
		// Durable mode spills via the post-commit tap; in-memory warehouses
		// never attach it.
		s.attachTapLocked(spillTap{})
		// Replay may have rebuilt more hot segments than the budget allows;
		// queue them for the background spiller (it starts below, so the
		// backlog drains once the shards are consistent), and checkpoint log
		// files made wholly obsolete by pre-crash spills.
		s.maybeSpillLocked(w)
		s.wal.DropObsolete(s.minLiveSeqLocked())
		total += s.count
	}
	if anySeq {
		w.nextID.Store(maxSeq + 1)
	}
	// Surviving events alone can under-estimate the counter: the highest
	// seq may have been spilled, WAL-checkpointed, then deleted wholesale
	// by a retention cut before the crash. The manifest's high-water mark
	// covers those, and re-stamping it now makes this incarnation's
	// recovery-time file deletions equally crash-proof.
	// MaxSeq == 0 is "never stamped", not "seq 0 assigned" — the one-event
	// store it could misread recovers seq 0 from its WAL or file anyway.
	if hw := w.pers.manifest.MaxSeq; hw > 0 && w.nextID.Load() < hw+1 {
		w.nextID.Store(hw + 1)
	}
	if next := w.nextID.Load(); next > 0 && w.pers.manifest.MaxSeq < next-1 {
		w.pers.manifest.MaxSeq = next - 1
		if err := persist.SaveManifest(w.pers.dir, w.pers.manifest); err != nil {
			w.CloseHard()
			return nil, fmt.Errorf("warehouse: open: %w", err)
		}
	}
	w.count.Store(int64(total))
	w.spill.start()
	if w.compact != nil {
		w.compact.start()
		// Recovery can leave shards littered with small or overlapping
		// files (crash-orphaned side spills, re-trimmed stragglers); give
		// every shard an initial compaction check.
		for _, s := range w.shards {
			w.compact.enqueue(s)
		}
	}
	return w, nil
}

// recoverShard rebuilds one shard from its directory: cold segment files
// first, then the WAL tail. Each retention cut is applied only to state the
// recording compaction could see (WAL records and spill files before that
// cut's shard mark); anything newer is live by definition, straggler or
// not — the effective watermark for a file or log position is the highest
// one among the cuts that saw it. It returns the highest warehouse seq it
// saw and whether it saw any. Runs before the shard is shared, so no
// locking.
func (w *Warehouse) recoverShard(s *shard, cuts []persist.Cut, shardIdx int) (uint64, bool, error) {
	// fileCut/walCut resolve the effective watermark covering a segment
	// file generation / WAL position on this shard.
	fileCut := func(gen int) persist.Key {
		var k persist.Key
		for _, c := range cuts {
			if gen < c.Mark(shardIdx).SegGen && k.Less(c.Watermark) {
				k = c.Watermark
			}
		}
		return k
	}
	walCut := func(pos persist.Pos) persist.Key {
		var k persist.Key
		for _, c := range cuts {
			if c.Mark(shardIdx).Covers(pos) && k.Less(c.Watermark) {
				k = c.Watermark
			}
		}
		return k
	}

	segPaths, nextGen, err := persist.ListSegments(s.dir)
	if err != nil {
		return 0, false, fmt.Errorf("warehouse: recover: %w", err)
	}
	s.nextSegGen = nextGen

	var maxSeq uint64
	var anySeq bool
	note := func(seq uint64) {
		if !anySeq || seq > maxSeq {
			maxSeq = seq
		}
		anySeq = true
	}

	// Seqs already durable in segment files; WAL records carrying them are
	// duplicates and must not replay.
	spilled := map[uint64]struct{}{}
	for _, path := range segPaths {
		info, seqs, err := persist.OpenSegment(path)
		if err != nil {
			return 0, false, fmt.Errorf("warehouse: recover: %w", err)
		}
		// A crash between a background spill's file write and its swap can
		// leave a segment's file published while the segment also stays in
		// memory — and a later spill attempt (or the next incarnation's)
		// can then publish a second snapshot of the same segment. Files
		// arrive here in generation order and a later snapshot is always a
		// subset of an earlier one (sealed segments only shrink, via
		// retention trims that the earlier file's watermark re-trim
		// reproduces), so a file whose every seq is already registered is a
		// stale duplicate: delete it rather than double-count its events.
		if dupFile(spilled, seqs) {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return 0, false, fmt.Errorf("warehouse: recover: %w", err)
			}
			continue
		}
		// The seqs join the dedup set only once this file's own fate is
		// decided (the survivor-dup sweep below must compare against
		// earlier files, not the file itself); deleted files' seqs still
		// join it — their WAL records must not replay, and later raw-seq
		// subsets of them are still duplicates.
		registerSeqs := func() {
			for _, seq := range seqs {
				spilled[seq] = struct{}{}
			}
		}
		var fileSeqHi uint64
		for _, seq := range seqs {
			note(seq)
			if seq > fileSeqHi {
				fileSeqHi = seq
			}
		}
		gen, err := persist.ParseSegmentFileName(filepath.Base(path))
		if err != nil {
			// ListSegments vets names, so this is unreachable — but a wrong
			// generation here silently mis-scopes retention watermarks, so
			// fail recovery loudly rather than guess.
			return 0, false, fmt.Errorf("warehouse: recover: %w", err)
		}
		// Files spilled after a cut's compaction hold only survivors and
		// later arrivals; that cut does not apply to them. The watermark
		// here is the highest among the cuts that saw this generation.
		watermark := fileCut(gen)
		cutApplies := !watermark.IsZero()
		if cutApplies && keyLE(info.Tail, watermark) {
			// Every event is below the retention cut: the pre-crash
			// compaction meant to delete this file (or already tried).
			registerSeqs()
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return 0, false, fmt.Errorf("warehouse: recover: %w", err)
			}
			continue
		}
		cs := w.newColdSegment(info)
		cs.seqHi = fileSeqHi
		if cutApplies && keyLE(info.Head, watermark) {
			// The file straddles the cut: re-apply the logical trim the
			// pre-crash compaction performed.
			if err := cs.ensureLoaded(); err != nil {
				return 0, false, fmt.Errorf("warehouse: recover: %w", err)
			}
			n := 0
			for n < len(cs.loaded) && keyLE(eventKey(cs.loaded[n]), watermark) {
				n++
			}
			// A merged file a crashed cold-file compaction published but
			// never swapped in escapes the raw-seq duplicate sweep above
			// when a retention cut deleted one of its victims' files
			// outright: the dead victim's seqs exist nowhere else, so the
			// merged file is no longer a raw-seq subset. After the
			// watermark re-trim, though, those seqs are gone and every
			// survivor it still holds is exactly a surviving victim's live
			// event — already registered. Registering such a file would
			// double-count the survivors; it contributes nothing live, so
			// delete it instead.
			if n > 0 && dupSuffix(spilled, cs.loaded[n:]) {
				cs.unload()
				registerSeqs()
				if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
					return 0, false, fmt.Errorf("warehouse: recover: %w", err)
				}
				continue
			}
			if n > 0 {
				cs.dropPrefix(n)
			}
			cs.unload()
			if cs.count == 0 {
				registerSeqs()
				_ = os.Remove(path)
				continue
			}
		}
		registerSeqs()
		s.cold = append(s.cold, cs)
		s.count += cs.count
		for src, n := range cs.sourceCounts {
			s.sources[src] += n
		}
		if cs.tail.Time.After(s.sealBound) {
			// Keep straggler routing sane: events older than spilled
			// history are out-of-order and should not stretch fresh hot
			// segments' envelopes.
			s.sealBound = cs.tail.Time
		}
		w.coldBytes.Add(info.Bytes)
		w.recovered.Add(uint64(cs.count))
	}

	res, err := persist.ReplayWAL(s.dir, func(pe persist.Event, pos persist.Pos) error {
		note(pe.Seq)
		if _, dup := spilled[pe.Seq]; dup {
			return nil
		}
		if wm := walCut(pos); !wm.IsZero() &&
			keyLE(persist.Key{Time: pe.Tuple.Time, Seq: pe.Seq}, wm) {
			return nil
		}
		s.appendLocked(Event{Seq: pe.Seq, Tuple: pe.Tuple})
		w.recovered.Add(1)
		return nil
	})
	if err != nil {
		return 0, false, fmt.Errorf("warehouse: replay: %w", err)
	}
	s.walFiles = res.Files
	// Seqs registered from cold files bypass appendLocked; settle the
	// shard's high-water mark over everything this shard has seen.
	if anySeq && maxSeq > s.seqHi {
		s.seqHi = maxSeq
	}
	return maxSeq, anySeq, nil
}

// stampMaxSeq folds the current seq high-water mark into the manifest
// about to be saved, so sequences assigned before this save can never be
// reissued by a later recovery — even when a retention cut erases the last
// trace of the events that carried them. Caller holds retMu (every
// post-Open manifest mutation is serialized under it); monotone, so a
// stale re-stamp is harmless.
func (w *Warehouse) stampMaxSeq() {
	if next := w.nextID.Load(); next > 0 && w.pers.manifest.MaxSeq < next-1 {
		w.pers.manifest.MaxSeq = next - 1
	}
}

// dupFile reports whether every seq of a segment file is already durable in
// an earlier-generation file.
func dupFile(spilled map[uint64]struct{}, seqs []uint64) bool {
	if len(seqs) == 0 {
		return false
	}
	for _, seq := range seqs {
		if _, ok := spilled[seq]; !ok {
			return false
		}
	}
	return true
}

// dupSuffix is dupFile over the events surviving a watermark re-trim: true
// when every one of them is already registered from an earlier file, so the
// file holds nothing live of its own.
func dupSuffix(spilled map[uint64]struct{}, survivors []Event) bool {
	if len(survivors) == 0 {
		return false
	}
	for _, ev := range survivors {
		if _, ok := spilled[ev.Seq]; !ok {
			return false
		}
	}
	return true
}

// Close drains the background spill queue — every pending segment reaches
// its file — then flushes and closes every shard's WAL. The warehouse stays
// queryable, but further appends fail. A nil receiver or an in-memory
// warehouse closes trivially.
func (w *Warehouse) Close() error {
	if w == nil {
		return nil
	}
	// Views close for in-memory warehouses too: their publisher goroutines
	// must not outlive the store. A clean close persists each view's final
	// checkpoint so the next Open's registrations resume from it.
	w.closeViews(true)
	if w.pers == nil {
		return nil
	}
	w.spill.close()
	if w.compact != nil {
		// After the spill queue drains; a final spill can enqueue one more
		// compaction check. Runs before the WALs close, but compactions
		// never touch the WAL.
		w.compact.close()
	}
	var first error
	for _, s := range w.shards {
		s.mu.Lock()
		if s.wal != nil {
			if err := s.wal.Close(); err != nil && first == nil {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

// CloseHard closes every WAL file descriptor without flushing, simulating
// a crash: anything the OS has not been handed is lost, exactly as if the
// process had been killed. The background spiller is cut off the same way
// — queued spills are dropped, and an in-flight one may leave its segment
// file published but never swapped in, which recovery dedupes. For
// recovery testing.
func (w *Warehouse) CloseHard() {
	if w == nil {
		return
	}
	// A crash kills view goroutines with the process; here they must stop
	// explicitly. No final checkpoint is written — a kill would not have
	// written one either — so recovery exercises the stale-checkpoint and
	// backfill paths, not an artificially clean shutdown.
	w.closeViews(false)
	if w.pers == nil {
		return
	}
	w.spill.abort()
	if w.compact != nil {
		// Before taking shard locks below: abort waits for the worker, and
		// an in-flight compaction may need a shard lock to finish its step.
		w.compact.abort()
	}
	for _, s := range w.shards {
		s.mu.Lock()
		if s.wal != nil {
			s.wal.CloseHard()
		}
		s.mu.Unlock()
	}
}
