package warehouse

import (
	"fmt"
	"os"
	"path/filepath"

	"streamloader/internal/persist"
)

// Open creates or recovers a warehouse. With no DataDir it is
// NewWithConfig: a pure in-memory store, and every other persistence field
// is ignored. With a DataDir it builds the durable warehouse: per-shard
// WALs on the append path, spill-to-disk for cold segments, and — when the
// directory already holds a previous incarnation — recovery:
//
//  1. spilled segment files are re-registered from their headers (no event
//     payloads are read), with files wholly below the retention watermark
//     deleted and the one straddling it re-trimmed;
//  2. the WAL tail is replayed into fresh hot segments, skipping events
//     already present in spilled files or below the watermark, truncating
//     any torn tail; and
//  3. appends resume in a fresh WAL file with the sequence counter past
//     everything recovered.
//
// The manifest pins the shard count: a cfg.Shards that disagrees with an
// existing directory is overridden, so spilled files stay on the shard
// whose WAL wrote them.
func Open(cfg Config) (*Warehouse, error) {
	if cfg.DataDir == "" {
		return NewWithConfig(cfg), nil
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("warehouse: open: %w", err)
	}
	man, found, err := persist.LoadManifest(cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("warehouse: open: %w", err)
	}
	if found && man.Shards > 0 {
		cfg.Shards = man.Shards
	}
	w := NewWithConfig(cfg)
	if !found {
		man = persist.Manifest{Version: 1, Shards: len(w.shards)}
		if err := persist.SaveManifest(cfg.DataDir, man); err != nil {
			return nil, fmt.Errorf("warehouse: open: %w", err)
		}
	}
	w.pers = &persistState{dir: cfg.DataDir, manifest: man}

	hotSegments := cfg.HotSegments
	if hotSegments == 0 {
		hotSegments = DefaultHotSegments
	}
	walOpts := persist.WALOptions{
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncEvery,
		SegmentBytes: cfg.WALBytes,
	}

	var maxSeq uint64
	var anySeq bool
	total := 0
	for i, s := range w.shards {
		s.dir = filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%03d", i))
		s.hotSegments = hotSegments
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			w.CloseHard()
			return nil, fmt.Errorf("warehouse: open: %w", err)
		}
		var mark persist.ShardMark
		if i < len(man.Marks) {
			mark = man.Marks[i]
		}
		seqMax, any, err := w.recoverShard(s, man.Watermark, mark)
		if err != nil {
			w.CloseHard()
			return nil, err
		}
		if any && (!anySeq || seqMax > maxSeq) {
			maxSeq = seqMax
		}
		anySeq = anySeq || any
		shardOpts := walOpts
		// Never fall back behind the mark: a reused WAL file number or
		// segment generation would make fresh records look older than the
		// last compaction and expose them to its watermark.
		shardOpts.MinFile = mark.WALFile + 1
		if s.nextSegGen < mark.SegGen {
			s.nextSegGen = mark.SegGen
		}
		wal, err := persist.OpenWAL(s.dir, shardOpts, s.walFiles)
		s.walFiles = nil
		if err != nil {
			w.CloseHard()
			return nil, fmt.Errorf("warehouse: open wal: %w", err)
		}
		s.wal = wal
		// Replay may have rebuilt more hot segments than the budget
		// allows; spill down now, which also checkpoints log files made
		// wholly obsolete by pre-crash spills.
		s.maybeSpillLocked(w)
		s.wal.DropObsolete(s.minLiveSeqLocked())
		total += s.count
	}
	if anySeq {
		w.nextID.Store(maxSeq + 1)
	}
	w.count.Store(int64(total))
	return w, nil
}

// recoverShard rebuilds one shard from its directory: cold segment files
// first, then the WAL tail. The retention watermark is applied only to
// state the recording compaction could see (WAL records and spill files
// before the shard's mark); anything newer is live by definition, straggler
// or not. It returns the highest warehouse seq it saw and whether it saw
// any. Runs before the shard is shared, so no locking.
func (w *Warehouse) recoverShard(s *shard, watermark persist.Key, mark persist.ShardMark) (uint64, bool, error) {
	segPaths, nextGen, err := persist.ListSegments(s.dir)
	if err != nil {
		return 0, false, fmt.Errorf("warehouse: recover: %w", err)
	}
	s.nextSegGen = nextGen

	var maxSeq uint64
	var anySeq bool
	note := func(seq uint64) {
		if !anySeq || seq > maxSeq {
			maxSeq = seq
		}
		anySeq = true
	}

	// Seqs already durable in segment files; WAL records carrying them are
	// duplicates and must not replay.
	spilled := map[uint64]struct{}{}
	for _, path := range segPaths {
		info, seqs, err := persist.OpenSegment(path)
		if err != nil {
			return 0, false, fmt.Errorf("warehouse: recover: %w", err)
		}
		for _, seq := range seqs {
			spilled[seq] = struct{}{}
			note(seq)
		}
		gen := 0
		fmt.Sscanf(filepath.Base(path), "seg-%d.seg", &gen)
		// Files spilled after the watermark's compaction hold only
		// survivors and later arrivals; the cut does not apply to them.
		cutApplies := !watermark.IsZero() && gen < mark.SegGen
		if cutApplies && keyLE(info.Tail, watermark) {
			// Every event is below the retention cut: the pre-crash
			// compaction meant to delete this file (or already tried).
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return 0, false, fmt.Errorf("warehouse: recover: %w", err)
			}
			continue
		}
		cs := newColdSegment(info)
		if cutApplies && keyLE(info.Head, watermark) {
			// The file straddles the cut: re-apply the logical trim the
			// pre-crash compaction performed.
			if err := cs.ensureLoaded(); err != nil {
				return 0, false, fmt.Errorf("warehouse: recover: %w", err)
			}
			n := 0
			for n < len(cs.loaded) && keyLE(eventKey(cs.loaded[n]), watermark) {
				n++
			}
			if n > 0 {
				cs.dropPrefix(n)
			}
			cs.unload()
			if cs.count == 0 {
				_ = os.Remove(path)
				continue
			}
		}
		s.cold = append(s.cold, cs)
		s.count += cs.count
		for src, n := range cs.sourceCounts {
			s.sources[src] += n
		}
		if cs.tail.Time.After(s.sealBound) {
			// Keep straggler routing sane: events older than spilled
			// history are out-of-order and should not stretch fresh hot
			// segments' envelopes.
			s.sealBound = cs.tail.Time
		}
		w.coldBytes.Add(info.Bytes)
		w.recovered.Add(uint64(cs.count))
	}

	res, err := persist.ReplayWAL(s.dir, func(pe persist.Event, pos persist.Pos) error {
		note(pe.Seq)
		if _, dup := spilled[pe.Seq]; dup {
			return nil
		}
		if !watermark.IsZero() && mark.Covers(pos) &&
			keyLE(persist.Key{Time: pe.Tuple.Time, Seq: pe.Seq}, watermark) {
			return nil
		}
		s.appendLocked(Event{Seq: pe.Seq, Tuple: pe.Tuple})
		w.recovered.Add(1)
		return nil
	})
	if err != nil {
		return 0, false, fmt.Errorf("warehouse: replay: %w", err)
	}
	s.walFiles = res.Files
	return maxSeq, anySeq, nil
}

// Close flushes and closes every shard's WAL. The warehouse stays
// queryable, but further appends fail. A nil receiver or an in-memory
// warehouse closes trivially.
func (w *Warehouse) Close() error {
	if w == nil || w.pers == nil {
		return nil
	}
	var first error
	for _, s := range w.shards {
		s.mu.Lock()
		if s.wal != nil {
			if err := s.wal.Close(); err != nil && first == nil {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

// CloseHard closes every WAL file descriptor without flushing, simulating
// a crash: anything the OS has not been handed is lost, exactly as if the
// process had been killed. For recovery testing.
func (w *Warehouse) CloseHard() {
	if w == nil || w.pers == nil {
		return
	}
	for _, s := range w.shards {
		s.mu.Lock()
		if s.wal != nil {
			s.wal.CloseHard()
		}
		s.mu.Unlock()
	}
}
