package warehouse

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/stt"
)

var t0 = time.Date(2016, 3, 15, 0, 0, 0, 0, time.UTC)

var weather = stt.MustSchema([]stt.Field{
	stt.NewField("temperature", stt.KindFloat, "celsius"),
	stt.NewField("station", stt.KindString, ""),
}, stt.GranMinute, stt.SpatCellDistrict, "weather")

var social = stt.MustSchema([]stt.Field{
	stt.NewField("text", stt.KindString, ""),
}, stt.GranSecond, stt.SpatPoint, "social")

func wTuple(offset time.Duration, temp float64, station string, lat, lon float64) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: weather,
		Values: []stt.Value{stt.Float(temp), stt.String(station)},
		Time:   t0.Add(offset),
		Lat:    lat, Lon: lon,
		Theme:  "weather",
		Source: station,
	}
	return tup.AlignSTT()
}

func sTuple(offset time.Duration, text string) *stt.Tuple {
	tup := &stt.Tuple{
		Schema: social,
		Values: []stt.Value{stt.String(text)},
		Time:   t0.Add(offset),
		Lat:    34.70, Lon: 135.50,
		Theme:  "social",
		Source: "twitter-1",
	}
	return tup.AlignSTT()
}

func loaded(t *testing.T) *Warehouse {
	t.Helper()
	w := New()
	tuples := []*stt.Tuple{
		wTuple(0, 20, "umeda", 34.70, 135.50),
		wTuple(time.Hour, 26, "umeda", 34.70, 135.50),
		wTuple(2*time.Hour, 30, "namba", 34.66, 135.50),
		wTuple(3*time.Hour, 15, "kyoto", 35.01, 135.77),
		sTuple(90*time.Minute, "heavy rain in Umeda"),
	}
	for _, tup := range tuples {
		if err := w.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestAppendValidation(t *testing.T) {
	w := New()
	if err := w.Append(nil); err == nil {
		t.Error("nil tuple must fail")
	}
	if err := w.Append(&stt.Tuple{}); err == nil {
		t.Error("schemaless tuple must fail")
	}
}

func TestSelectAll(t *testing.T) {
	w := loaded(t)
	if w.Len() != 5 {
		t.Fatalf("Len = %d", w.Len())
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("all = %d", len(evs))
	}
	// Event-time order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("results out of time order")
		}
	}
}

func TestSelectTimeRange(t *testing.T) {
	w := loaded(t)
	evs, err := w.Select(Query{From: t0.Add(time.Hour), To: t0.Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	// [1h, 2h): umeda@1h and tweet@1.5h.
	if len(evs) != 2 {
		t.Fatalf("range = %d, want 2", len(evs))
	}
}

func TestSelectRegion(t *testing.T) {
	w := loaded(t)
	evs, err := w.Select(Query{Region: &geo.Osaka})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 { // kyoto excluded
		t.Fatalf("region = %d, want 4", len(evs))
	}
}

func TestSelectThemes(t *testing.T) {
	w := loaded(t)
	evs, err := w.Select(Query{Themes: []string{"social"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Tuple.Source != "twitter-1" {
		t.Fatalf("social = %v", evs)
	}
	evs, _ = w.Select(Query{Themes: []string{"weather", "social"}})
	if len(evs) != 5 {
		t.Errorf("multi-theme = %d", len(evs))
	}
}

func TestSelectSources(t *testing.T) {
	w := loaded(t)
	evs, err := w.Select(Query{Sources: []string{"umeda"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("umeda = %d", len(evs))
	}
}

func TestSelectCondAcrossSchemas(t *testing.T) {
	w := loaded(t)
	// The condition type-checks against the weather schema only; social
	// events must be skipped, not error.
	evs, err := w.Select(Query{Cond: "temperature > 25"})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("cond = %d, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Tuple.MustGet("temperature").AsFloat() <= 25 {
			t.Error("condition not applied")
		}
	}
}

func TestSelectCombined(t *testing.T) {
	w := loaded(t)
	evs, err := w.Select(Query{
		From:   t0,
		To:     t0.Add(4 * time.Hour),
		Region: &geo.Osaka,
		Themes: []string{"weather"},
		Cond:   "temperature >= 26",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("combined = %d, want 2", len(evs))
	}
}

func TestSelectLimit(t *testing.T) {
	w := loaded(t)
	evs, err := w.Select(Query{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("limit = %d", len(evs))
	}
	// Limit returns the earliest events.
	if !evs[0].Tuple.Time.Equal(t0) {
		t.Error("limit must keep time order")
	}
}

func TestCount(t *testing.T) {
	w := loaded(t)
	n, err := w.Count(Query{Themes: []string{"weather"}})
	if err != nil || n != 4 {
		t.Errorf("count = %d, %v", n, err)
	}
}

func TestStats(t *testing.T) {
	w := loaded(t)
	s := w.Stats()
	if s.Events != 5 || s.Sources != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.Themes["weather"] != 4 || s.Themes["social"] != 1 {
		t.Errorf("themes = %v", s.Themes)
	}
	if !s.Earliest.Equal(t0) || !s.Latest.Equal(t0.Add(3*time.Hour)) {
		t.Errorf("time bounds: %v .. %v", s.Earliest, s.Latest)
	}
}

func TestOutOfOrderAppends(t *testing.T) {
	w := New()
	// Append in reverse time order; the time index must stay sorted.
	for i := 9; i >= 0; i-- {
		if err := w.Append(wTuple(time.Duration(i)*time.Hour, 20, "s", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("time index broken by out-of-order appends")
		}
	}
	// Binary-searched range query still correct.
	evs, _ = w.Select(Query{From: t0.Add(2 * time.Hour), To: t0.Add(5 * time.Hour)})
	if len(evs) != 3 {
		t.Errorf("range after ooo appends = %d, want 3", len(evs))
	}
}

func TestSink(t *testing.T) {
	w := New()
	s := Sink{W: w}
	if err := s.Accept(wTuple(0, 20, "x", 34.7, 135.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Error("sink did not append")
	}
}

// Property: every query result equals a naive full scan with the same
// predicates.
func TestQuickSelectEqualsNaiveScan(t *testing.T) {
	f := func(seed int64, fromH, toH uint8, useRegion bool, themePick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := New()
		var all []*stt.Tuple
		for i := 0; i < 200; i++ {
			var tup *stt.Tuple
			if rng.Intn(3) == 0 {
				tup = sTuple(time.Duration(rng.Intn(240))*time.Minute, "text")
			} else {
				tup = wTuple(time.Duration(rng.Intn(240))*time.Minute,
					float64(rng.Intn(40)), "s",
					34.4+rng.Float64()*0.8, 135.2+rng.Float64()*0.8)
			}
			if w.Append(tup) != nil {
				return false
			}
			all = append(all, tup)
		}
		q := Query{
			From: t0.Add(time.Duration(fromH%5) * time.Hour),
			To:   t0.Add(time.Duration(toH%5) * time.Hour),
		}
		if q.To.Before(q.From) {
			q.From, q.To = q.To, q.From
		}
		if useRegion {
			q.Region = &geo.Osaka
		}
		themes := [][]string{nil, {"weather"}, {"social"}, {"weather", "social"}}
		q.Themes = themes[int(themePick)%len(themes)]

		got, err := w.Select(q)
		if err != nil {
			return false
		}
		want := 0
		for _, tup := range all {
			if tup.Time.Before(q.From) || !tup.Time.Before(q.To) {
				continue
			}
			if q.Region != nil && !q.Region.Contains(geo.Point{Lat: tup.Lat, Lon: tup.Lon}) {
				continue
			}
			if len(q.Themes) > 0 && !matchTheme(tup, q.Themes) {
				continue
			}
			want++
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRetention(t *testing.T) {
	w := New()
	w.SetRetention(100)
	for i := 0; i < 400; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, 20, "s", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() > 101 {
		t.Errorf("retention violated: %d events", w.Len())
	}
	if w.Evicted() == 0 {
		t.Error("no evictions recorded")
	}
	// Survivors are the newest events and the indexes still work.
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("time order broken after compaction")
		}
	}
	oldest := evs[0].Tuple.Time
	if oldest.Before(t0.Add(250 * time.Minute)) {
		t.Errorf("old events survived retention: oldest = %v", oldest)
	}
	// Theme/source indexes rebuilt consistently.
	n, err := w.Count(Query{Themes: []string{"weather"}})
	if err != nil || n != w.Len() {
		t.Errorf("theme index inconsistent after compaction: %d vs %d", n, w.Len())
	}
	n, err = w.Count(Query{Sources: []string{"s"}})
	if err != nil || n != w.Len() {
		t.Errorf("source index inconsistent after compaction: %d vs %d", n, w.Len())
	}
}

func TestRetentionAppliedOnSet(t *testing.T) {
	w := New()
	for i := 0; i < 50; i++ {
		if err := w.Append(wTuple(time.Duration(i)*time.Minute, 20, "s", 34.7, 135.5)); err != nil {
			t.Fatal(err)
		}
	}
	w.SetRetention(10)
	if w.Len() > 10 {
		t.Errorf("SetRetention must compact immediately: %d", w.Len())
	}
}
