package warehouse

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamloader/internal/stt"
)

func TestAppendBatchMatchesAppend(t *testing.T) {
	single, batched := New(), New()
	var batch []*stt.Tuple
	for i := 0; i < 200; i++ {
		// Several sources so the batch spans shards; slightly out of order.
		off := time.Duration(i^1) * time.Minute
		tup := wTuple(off, float64(i%30), fmt.Sprintf("st-%d", i%7), 34.5+float64(i%20)*0.01, 135.3)
		if err := single.Append(tup); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, tup)
	}
	if err := batched.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if single.Len() != batched.Len() {
		t.Fatalf("Len: single = %d, batched = %d", single.Len(), batched.Len())
	}
	for _, q := range []Query{
		{},
		{From: t0.Add(30 * time.Minute), To: t0.Add(90 * time.Minute)},
		{Sources: []string{"st-3"}},
		{Themes: []string{"weather"}, Cond: "temperature > 15"},
		{Limit: 17},
	} {
		a, err := single.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batched.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %+v: single = %d, batched = %d", q, len(a), len(b))
		}
		for i := range a {
			if !a[i].Tuple.Time.Equal(b[i].Tuple.Time) || a[i].Tuple.Source != b[i].Tuple.Source {
				t.Fatalf("query %+v: result %d differs", q, i)
			}
		}
	}
}

func TestAppendBatchValidation(t *testing.T) {
	w := New()
	err := w.AppendBatch([]*stt.Tuple{
		wTuple(0, 20, "a", 34.7, 135.5),
		nil,
		wTuple(time.Minute, 21, "b", 34.7, 135.5),
	})
	if err == nil {
		t.Fatal("batch with nil tuple must fail")
	}
	if w.Len() != 0 {
		t.Errorf("failed batch must store nothing, got %d events", w.Len())
	}
	if err := w.AppendBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestBatchSeqOrderPreserved(t *testing.T) {
	w := New()
	var batch []*stt.Tuple
	for i := 0; i < 50; i++ {
		batch = append(batch, wTuple(time.Hour, 20, fmt.Sprintf("s%d", i%5), 34.7, 135.5))
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	// All tuples share one event time, so Select ordering falls back to
	// Seq, which must reflect batch order even across shards.
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 50 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Tuple != batch[i] {
			t.Fatalf("event %d out of batch order", i)
		}
	}
}

func TestRetentionAcrossShards(t *testing.T) {
	w := NewSharded(4)
	w.SetRetention(100)
	// Four sources land on (up to) four shards; appends interleave in
	// global time order, so eviction must coordinate across shards.
	for i := 0; i < 400; i++ {
		tup := wTuple(time.Duration(i)*time.Minute, 20, fmt.Sprintf("src-%d", i%4), 34.7, 135.5)
		if err := w.Append(tup); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() > 101 {
		t.Errorf("retention violated: %d events", w.Len())
	}
	if got := int(w.Evicted()) + w.Len(); got != 400 {
		t.Errorf("evicted + len = %d, want 400", got)
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("time order broken after cross-shard compaction")
		}
	}
	// Eviction removes the globally oldest events, not a per-shard quota.
	if oldest := evs[0].Tuple.Time; oldest.Before(t0.Add(250 * time.Minute)) {
		t.Errorf("old events survived retention: oldest = %v", oldest)
	}
}

// TestSegmentRotationRace hammers segment rotation specifically: tiny
// segment bounds force constant rotation, skewed writers emit deep
// stragglers so the out-of-order side segments churn too, time-range
// readers run throughout, and a goroutine flaps retention on and off
// mid-rotation. Run under -race in CI. No event may be lost or
// double-counted across a rotation: every mid-flight read must see unique
// sequences in time order, and afterwards evicted + stored must equal
// appended exactly.
func TestSegmentRotationRace(t *testing.T) {
	const (
		writers   = 6
		perWriter = 1500
		maxEvents = 1200
	)
	w := NewWithConfig(Config{Shards: 4, SegmentEvents: 64, SegmentSpan: 20 * time.Minute})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Time-range readers overlapping the writers' windows.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				from := t0.Add(time.Duration(n%20) * 30 * time.Minute)
				evs, err := w.Select(Query{From: from, To: from.Add(4 * time.Hour)})
				if err != nil {
					t.Error(err)
					return
				}
				seen := map[uint64]bool{}
				for i, ev := range evs {
					if seen[ev.Seq] {
						t.Errorf("mid-rotation select saw Seq %d twice", ev.Seq)
						return
					}
					seen[ev.Seq] = true
					if i > 0 && ev.Tuple.Time.Before(evs[i-1].Tuple.Time) {
						t.Error("mid-rotation select out of time order")
						return
					}
				}
				if _, err := w.Count(Query{From: from, To: from.Add(time.Hour)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Retention flapper: off, then a tight bound, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				w.SetRetention(0)
			case 1:
				w.SetRetention(maxEvents)
			default:
				w.SetRetention(maxEvents / 3)
			}
		}
	}()
	// Skewed writers: each has its own source and clock offset, advancing
	// mostly in order but emitting a deep straggler every 8th event.
	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			source := fmt.Sprintf("rot-%d", wr)
			skew := time.Duration(wr) * 7 * time.Minute
			for i := 0; i < perWriter; i++ {
				off := skew + time.Duration(i)*time.Minute
				if i%8 == 7 {
					off -= 5 * time.Hour // straggler: lands in the ooo segment
				}
				tup := wTuple(off, 20, source, 34.7, 135.5)
				var err error
				if i%16 == 15 {
					err = w.AppendBatch([]*stt.Tuple{tup})
				} else {
					err = w.Append(tup)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	w.SetRetention(maxEvents) // settle on the final bound
	if w.Len() > maxEvents {
		t.Errorf("retention bound violated after ingest: %d > %d", w.Len(), maxEvents)
	}
	// Conservation: nothing lost, nothing double-counted.
	if got := int(w.Evicted()) + w.Len(); got != writers*perWriter {
		t.Errorf("evicted + len = %d, want %d", got, writers*perWriter)
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != w.Len() {
		t.Errorf("select all = %d, Len = %d", len(evs), w.Len())
	}
	seen := map[uint64]bool{}
	for i, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence %d after rotation", ev.Seq)
		}
		seen[ev.Seq] = true
		if i > 0 && ev.Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("final select out of time order")
		}
	}
	if st := w.Stats(); st.Events != w.Len() {
		t.Errorf("Stats.Events = %d, Len = %d", st.Events, w.Len())
	}
}

// TestConcurrentWarehouse hammers Append/AppendBatch/Select/Stats/
// SetRetention from many goroutines; run under -race in CI. Afterwards it
// asserts sequence uniqueness, time-ordered selects and retention bounds.
func TestConcurrentWarehouse(t *testing.T) {
	const (
		writers   = 8
		perWriter = 1000
		maxEvents = 2000
	)
	w := New()
	w.SetRetention(maxEvents)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: overlapping selects, counts and stats during ingest.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs, err := w.Select(Query{From: t0, To: t0.Add(500 * time.Minute)})
				if err != nil {
					t.Error(err)
					return
				}
				for i := 1; i < len(evs); i++ {
					if evs[i].Tuple.Time.Before(evs[i-1].Tuple.Time) {
						t.Error("mid-ingest select out of time order")
						return
					}
				}
				if _, err := w.Count(Query{Themes: []string{"weather"}}); err != nil {
					t.Error(err)
					return
				}
				_ = w.Stats()
				_ = w.Len()
			}
		}()
	}
	// A goroutine flapping retention settings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				w.SetRetention(maxEvents)
			} else {
				w.SetRetention(maxEvents / 2)
			}
		}
	}()
	// Writers: half single appends, half batches, distinct sources.
	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			source := fmt.Sprintf("sensor-%d", wr)
			if wr%2 == 0 {
				for i := 0; i < perWriter; i++ {
					tup := wTuple(time.Duration(i)*time.Minute, 20, source, 34.7, 135.5)
					if err := w.Append(tup); err != nil {
						t.Error(err)
						return
					}
				}
			} else {
				const batchSize = 50
				for i := 0; i < perWriter; i += batchSize {
					batch := make([]*stt.Tuple, 0, batchSize)
					for j := 0; j < batchSize; j++ {
						batch = append(batch, wTuple(time.Duration(i+j)*time.Minute, 20, source, 34.7, 135.5))
					}
					if err := w.AppendBatch(batch); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	w.SetRetention(maxEvents) // settle on the final bound
	if w.Len() > maxEvents {
		t.Errorf("retention bound violated after ingest: %d > %d", w.Len(), maxEvents)
	}
	if got := int(w.Evicted()) + w.Len(); got != writers*perWriter {
		t.Errorf("evicted + len = %d, want %d", got, writers*perWriter)
	}
	evs, err := w.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != w.Len() {
		t.Errorf("select all = %d, Len = %d", len(evs), w.Len())
	}
	seen := map[uint64]bool{}
	for i, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if i > 0 && ev.Tuple.Time.Before(evs[i-1].Tuple.Time) {
			t.Fatal("final select out of time order")
		}
	}
}
