package warehouse

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamloader/internal/geo"
	"streamloader/internal/ops"
	"streamloader/internal/persist"
	"streamloader/internal/stt"
)

// This file model-checks the segmented warehouse: randomized, seeded
// operation sequences run against both the real store and a deliberately
// naive in-memory reference model, and every observable result — Select
// contents and order, Count, Len, Evicted, and every live standing view's
// incrementally-maintained rows — must agree. Failing sequences
// are shrunk to a minimal reproduction before being reported, so a broken
// invariant prints a handful of operations, not hundreds.

// mop is one generated warehouse operation.
type mop struct {
	kind   mopKind
	tuples []*stt.Tuple // append (1 tuple) / appendBatch
	q      Query        // selectOp / countOp
	aq     AggQuery     // aggregateOp
	retain int          // setRetention
}

type mopKind int

const (
	opAppend mopKind = iota
	opAppendBatch
	opSelect
	opCount
	// opAggregate pushes a randomized aggregation (function × group-by ×
	// bucket × filter) down into the warehouse and checks the rows against
	// a naive aggregation over the reference event list — including the
	// cold-header fast paths, which must be indistinguishable from full
	// materialization.
	opAggregate
	opSetRetention
	// opReopen hard-closes the warehouse mid-run (simulating a crash) and
	// reopens it from its data dir; only generated for durable configs.
	opReopen
	// opCrashMidSpill crashes during an in-flight background spill: a
	// sealed segment's file has been written and published, but the crash
	// lands before the swap installs it and before the WAL checkpoints —
	// so the same events exist both in the file and in the log. Recovery
	// must register the file and dedupe the WAL against it by sequence:
	// no acked event lost, none duplicated. Durable configs only.
	opCrashMidSpill
	// opCompact runs the background cold-file compactor to completion
	// (CompactNow): small and time-overlapping cold files merge into
	// neighbors. Compaction must be observationally invisible — the
	// reference model does not even know it exists. Durable configs only.
	opCompact
	// opSubscribe registers a randomized standing view (up to two live at
	// a time; the oldest is released). From then on every op is followed
	// by a delta check: the view's incrementally-maintained Rows must
	// equal the naive model's re-aggregation — across appends, retention
	// cuts and crash recovery (views are re-registered after a reopen,
	// like a reconnecting client).
	opSubscribe
)

func (o mop) String() string {
	switch o.kind {
	case opAppend:
		t := o.tuples[0]
		return fmt.Sprintf("Append{%s @%s}", t.Source, t.Time.Format("15:04:05"))
	case opAppendBatch:
		srcs := make([]string, 0, len(o.tuples))
		for _, t := range o.tuples {
			srcs = append(srcs, fmt.Sprintf("%s@%s", t.Source, t.Time.Format("15:04:05")))
		}
		return fmt.Sprintf("AppendBatch{%s}", strings.Join(srcs, " "))
	case opSelect:
		return fmt.Sprintf("Select{%s}", queryString(o.q))
	case opCount:
		return fmt.Sprintf("Count{%s}", queryString(o.q))
	case opAggregate:
		return fmt.Sprintf("Aggregate{%s %s}", aggString(o.aq), queryString(o.aq.Query))
	case opSubscribe:
		return fmt.Sprintf("Subscribe{%s %s}", aggString(o.aq), queryString(o.aq.Query))
	case opReopen:
		return "CrashReopen{}"
	case opCrashMidSpill:
		return "CrashMidSpill{}"
	case opCompact:
		return "CompactNow{}"
	default:
		return fmt.Sprintf("SetRetention{%d}", o.retain)
	}
}

func aggString(aq AggQuery) string {
	spec := string(aq.Func)
	if aq.Field != "" {
		spec += "(" + aq.Field + ")"
	}
	if len(aq.GroupBy) > 0 {
		spec += " by " + strings.Join(aq.GroupBy, ",")
	}
	if aq.Bucket > 0 {
		spec += fmt.Sprintf(" bucket=%s", aq.Bucket)
	}
	if aq.Window > 0 {
		spec += fmt.Sprintf(" window=%s", aq.Window)
	}
	return spec
}

func queryString(q Query) string {
	var parts []string
	if !q.From.IsZero() {
		parts = append(parts, "from="+q.From.Format("15:04:05"))
	}
	if !q.To.IsZero() {
		parts = append(parts, "to="+q.To.Format("15:04:05"))
	}
	if q.Region != nil {
		parts = append(parts, "region")
	}
	if len(q.Themes) > 0 {
		parts = append(parts, "themes="+strings.Join(q.Themes, ","))
	}
	if len(q.Sources) > 0 {
		parts = append(parts, "sources="+strings.Join(q.Sources, ","))
	}
	if q.Cond != "" {
		parts = append(parts, "cond="+q.Cond)
	}
	if q.Limit > 0 {
		parts = append(parts, fmt.Sprintf("limit=%d", q.Limit))
	}
	return strings.Join(parts, " ")
}

// refModel is the naive reference: a flat event list, linear-scan queries,
// and retention implemented by sorting everything. No shards, no segments,
// no indexes — just the specification.
type refModel struct {
	events  []Event
	nextSeq uint64
	retain  int
	evicted int
}

func (m *refModel) append(tuples ...*stt.Tuple) {
	for _, t := range tuples {
		m.events = append(m.events, Event{Seq: m.nextSeq, Tuple: t})
		m.nextSeq++
	}
	m.compact()
}

// compact mirrors the warehouse retention contract: when the store exceeds
// the bound, the globally-oldest events (by event time, then Seq) are
// dropped down to 3/4 of the bound.
func (m *refModel) compact() {
	if m.retain <= 0 || len(m.events) <= m.retain {
		return
	}
	keep := m.retain * 3 / 4
	if keep < 1 {
		keep = 1
	}
	if keep >= len(m.events) {
		return
	}
	sort.SliceStable(m.events, func(i, j int) bool { return eventLess(m.events[i], m.events[j]) })
	m.evicted += len(m.events) - keep
	m.events = append([]Event(nil), m.events[len(m.events)-keep:]...)
}

func (m *refModel) setRetention(n int) {
	m.retain = n
	m.compact()
}

// selectQ filters and sorts the flat list; condTemp handles the one
// condition shape the generator emits ("temperature > X") by direct field
// access, independent of the expr engine under test.
func (m *refModel) selectQ(q Query) []Event {
	var out []Event
	for _, ev := range m.events {
		if m.matches(ev.Tuple, q) {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return eventLess(out[i], out[j]) })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

func (m *refModel) matches(t *stt.Tuple, q Query) bool {
	if !q.From.IsZero() && t.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && !t.Time.Before(q.To) {
		return false
	}
	if q.Region != nil && !q.Region.Contains(geo.Point{Lat: t.Lat, Lon: t.Lon}) {
		return false
	}
	if len(q.Themes) > 0 && !matchTheme(t, q.Themes) {
		return false
	}
	if len(q.Sources) > 0 && !containsString(q.Sources, t.Source) {
		return false
	}
	if q.Cond != "" {
		var threshold float64
		if _, err := fmt.Sscanf(q.Cond, "temperature > %f", &threshold); err != nil {
			panic("model: unsupported cond " + q.Cond)
		}
		if t.Schema != weather {
			return false // cond does not type-check against other schemas
		}
		if t.MustGet("temperature").AsFloat() <= threshold {
			return false
		}
	}
	return true
}

// aggregate is the naive reference aggregation: filter the flat event list
// with matches, fold contributions in insertion order, emit rows sorted by
// (bucket, source, theme). It deliberately re-states the contribution
// semantics — bare COUNT counts every match, COUNT(field) counts present
// non-null values, numeric functions fold present numeric values — without
// sharing any engine code. The generator only emits integral field values,
// so float sums are exact and order-independent: rows must match the
// engine's bit for bit.
// now is the evaluation clock for trailing-window queries; ignored when
// the query has no window.
func (m *refModel) aggregate(q AggQuery, now time.Time) []AggRow {
	groupSource, groupTheme := false, false
	for _, g := range q.GroupBy {
		switch g {
		case "source":
			groupSource = true
		case "theme":
			groupTheme = true
		}
	}
	bare := q.Func == ops.AggCount && q.Field == ""
	type key struct {
		sec    int64
		ns     int
		source string
		theme  string
	}
	type state struct {
		bucket     time.Time
		count      int64
		sum        float64
		minV, maxV float64
	}
	acc := map[key]*state{}
	for _, ev := range m.events {
		t := ev.Tuple
		if !m.matches(t, q.Query) {
			continue
		}
		var f float64
		if !bare {
			v, ok := t.Get(q.Field)
			if q.Func == ops.AggCount {
				if !ok || v.IsNull() {
					continue
				}
			} else {
				if !ok || !v.Kind().Numeric() {
					continue
				}
				f = v.AsFloat()
			}
		}
		var k key
		var bs time.Time
		if q.Bucket > 0 {
			bs = t.Time.Truncate(q.Bucket)
			// Trailing window: a bucket survives while its end is still
			// inside the window — the same predicate as windowKeep.
			if q.Window > 0 && !bs.Add(q.Bucket).After(now.Add(-q.Window)) {
				continue
			}
			k.sec, k.ns = bs.Unix(), bs.Nanosecond()
		}
		if groupSource {
			k.source = t.Source
		}
		if groupTheme {
			k.theme = t.Theme
		}
		st := acc[k]
		if st == nil {
			st = &state{bucket: bs, minV: math.Inf(1), maxV: math.Inf(-1)}
			acc[k] = st
		}
		st.count++
		if !bare && q.Func != ops.AggCount {
			st.sum += f
			st.minV = math.Min(st.minV, f)
			st.maxV = math.Max(st.maxV, f)
		}
	}
	rows := make([]AggRow, 0, len(acc))
	for k, st := range acc {
		var val float64
		switch q.Func {
		case ops.AggCount:
			val = float64(st.count)
		case ops.AggSum:
			val = st.sum
		case ops.AggAvg:
			val = st.sum / float64(st.count)
		case ops.AggMin:
			val = st.minV
		case ops.AggMax:
			val = st.maxV
		}
		rows = append(rows, AggRow{Bucket: st.bucket, Source: k.source, Theme: k.theme, Count: st.count, Value: val})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if !a.Bucket.Equal(b.Bucket) {
			return a.Bucket.Before(b.Bucket)
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Theme < b.Theme
	})
	return rows
}

// genOps builds a random op sequence. Times mostly advance (the hot-segment
// path) with occasional deep stragglers (the out-of-order path), sources
// come from a small pool so shards see interleaved streams, and retention
// flips between off, loose and tight bounds. withReopen additionally mixes
// in crash/reopen ops for durable configurations.
func genOps(r *rand.Rand, n int, withReopen bool) []mop {
	sources := []string{"umeda", "namba", "kyoto", "sakai", "kobe", "nara"}
	clock := 0 // minutes since t0
	genTuple := func() *stt.Tuple {
		if r.Intn(5) == 0 {
			clock += r.Intn(4) // social tuple rides the same clock
			return sTuple(time.Duration(clock)*time.Minute, fmt.Sprintf("msg-%d", clock))
		}
		off := clock
		if r.Intn(5) == 0 {
			off -= 30 + r.Intn(300) // straggler, possibly before t0
		} else {
			clock += r.Intn(4)
			off = clock
		}
		src := sources[r.Intn(len(sources))]
		return wTuple(time.Duration(off)*time.Minute, float64(r.Intn(40)),
			src, 34.4+r.Float64()*0.5, 135.2+r.Float64()*0.5)
	}
	genQuery := func() Query {
		var q Query
		if r.Intn(2) == 0 {
			from := r.Intn(clock + 1)
			q.From = t0.Add(time.Duration(from) * time.Minute)
			q.To = q.From.Add(time.Duration(1+r.Intn(120)) * time.Minute)
		}
		switch r.Intn(4) {
		case 0:
			q.Themes = []string{[]string{"weather", "social"}[r.Intn(2)]}
		case 1:
			q.Sources = []string{sources[r.Intn(len(sources))], sources[r.Intn(len(sources))]}
		case 2:
			lat, lon := 34.4+r.Float64()*0.4, 135.2+r.Float64()*0.4
			rect := geo.NewRect(geo.Point{Lat: lat, Lon: lon},
				geo.Point{Lat: lat + 0.2, Lon: lon + 0.2})
			q.Region = &rect
		}
		if r.Intn(4) == 0 {
			q.Cond = fmt.Sprintf("temperature > %d", r.Intn(40))
		}
		if r.Intn(4) == 0 {
			q.Limit = 1 + r.Intn(20)
		}
		return q
	}
	genAgg := func() AggQuery {
		aq := AggQuery{Query: genQuery()}
		aq.Limit = 0 // aggregates ignore Limit; keep the op readable
		fns := []ops.AggFunc{ops.AggCount, ops.AggCount, ops.AggSum, ops.AggAvg, ops.AggMin, ops.AggMax}
		aq.Func = fns[r.Intn(len(fns))]
		if aq.Func != ops.AggCount || r.Intn(2) == 0 {
			aq.Field = "temperature"
		}
		switch r.Intn(4) {
		case 1:
			aq.GroupBy = []string{"source"}
		case 2:
			aq.GroupBy = []string{"theme"}
		case 3:
			aq.GroupBy = []string{"source", "theme"}
		}
		buckets := []time.Duration{0, 0, 5 * time.Minute, 17 * time.Minute, time.Hour}
		aq.Bucket = buckets[r.Intn(len(buckets))]
		// Trailing windows (bucketed queries only — expiry is
		// bucket-granular): short enough against the pinned clock that
		// runs see both surviving and expired buckets.
		if aq.Bucket > 0 && r.Intn(3) == 0 {
			windows := []time.Duration{30 * time.Minute, 2 * time.Hour, 6 * time.Hour}
			aq.Window = windows[r.Intn(len(windows))]
		}
		return aq
	}

	mops := make([]mop, 0, n)
	for i := 0; i < n; i++ {
		if withReopen && r.Intn(18) == 0 {
			// Mix crashes (half of them mid-spill: the victim segment's file
			// is on disk but never swapped in or checkpointed) with forced
			// cold-file compactions.
			switch r.Intn(3) {
			case 0:
				mops = append(mops, mop{kind: opCrashMidSpill})
			case 1:
				mops = append(mops, mop{kind: opReopen})
			default:
				mops = append(mops, mop{kind: opCompact})
			}
			continue
		}
		switch k := r.Intn(13); {
		case k < 4:
			mops = append(mops, mop{kind: opAppend, tuples: []*stt.Tuple{genTuple()}})
		case k < 6:
			batch := make([]*stt.Tuple, 1+r.Intn(20))
			for j := range batch {
				batch[j] = genTuple()
			}
			mops = append(mops, mop{kind: opAppendBatch, tuples: batch})
		case k < 8:
			mops = append(mops, mop{kind: opSelect, q: genQuery()})
		case k < 9:
			mops = append(mops, mop{kind: opCount, q: genQuery()})
		case k < 11:
			mops = append(mops, mop{kind: opAggregate, aq: genAgg()})
		case k < 12:
			retain := 0
			if r.Intn(3) > 0 {
				retain = 10 + r.Intn(150)
			}
			mops = append(mops, mop{kind: opSetRetention, retain: retain})
		default:
			mops = append(mops, mop{kind: opSubscribe, aq: genAgg()})
		}
	}
	return mops
}

// runOps replays the sequence against a fresh warehouse and model, checking
// every observable after every op. A config with a DataDir sentinel runs
// durably in a fresh temp directory (cleaned up on return) and honors
// opReopen by hard-closing and recovering. It returns a description of the
// first divergence, or "" when the run agrees — side-effect free, so the
// shrinker can replay candidate subsequences.
func runOps(cfg Config, mops []mop) string {
	durable := cfg.DataDir != ""
	var w *Warehouse
	if durable {
		dir, err := os.MkdirTemp("", "whmodel")
		if err != nil {
			return fmt.Sprintf("tempdir: %v", err)
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
		ww, err := Open(cfg)
		if err != nil {
			return fmt.Sprintf("open: %v", err)
		}
		w = ww
		defer func() { w.CloseHard() }()
	} else {
		w = NewWithConfig(cfg)
	}
	// Pin the warehouse clock to the model's: trailing-window semantics
	// must evaluate against the same "now" on both sides, and wall-clock
	// nondeterminism would make shrinking useless. The pinned clock
	// follows the newest event time appended so far (atomically — the
	// view publisher goroutines read it concurrently).
	var nowMin atomic.Int64 // minutes past t0
	modelNow := func() time.Time { return t0.Add(time.Duration(nowMin.Load()) * time.Minute) }
	w.nowFn = modelNow
	advanceClock := func(tuples []*stt.Tuple) {
		for _, tp := range tuples {
			if min := int64(tp.Time.Sub(t0) / time.Minute); min > nowMin.Load() {
				nowMin.Store(min)
			}
		}
	}
	m := &refModel{}
	// Live standing views (at most two at a time; the oldest is released).
	// Once registered, every subsequent op ends with a delta check: the
	// view's incrementally-maintained rows must equal the naive model's
	// re-aggregation — the quiescent-point equality the view machinery
	// promises, exercised across appends, retention cuts and crashes.
	type liveView struct {
		v  *View
		aq AggQuery
	}
	var views []liveView
	defer func() {
		for _, lv := range views {
			lv.v.Release()
		}
	}()
	// The warehouse's Evicted counter restarts at zero on reopen; offset
	// tracks the model evictions already accounted before the last crash.
	evictedOffset := 0
	retain := 0
	for i, op := range mops {
		switch op.kind {
		case opAppend:
			if err := w.Append(op.tuples[0]); err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			m.append(op.tuples[0])
			advanceClock(op.tuples)
		case opAppendBatch:
			if err := w.AppendBatch(op.tuples); err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			m.append(op.tuples...)
			advanceClock(op.tuples)
		case opSelect:
			got, err := w.Select(op.q)
			if err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			if diff := diffEvents(got, m.selectQ(op.q)); diff != "" {
				return fmt.Sprintf("op %d %s: %s", i, op, diff)
			}
		case opCount:
			got, err := w.Count(op.q)
			if err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			if want := len(m.selectQ(op.q)); got != want {
				return fmt.Sprintf("op %d %s: count = %d, model = %d", i, op, got, want)
			}
		case opAggregate:
			got, _, err := w.Aggregate(op.aq)
			if err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			if diff := diffAggRows(got, m.aggregate(op.aq, modelNow())); diff != "" {
				return fmt.Sprintf("op %d %s: %s", i, op, diff)
			}
		case opSetRetention:
			retain = op.retain
			w.SetRetention(op.retain)
			m.setRetention(op.retain)
		case opCompact:
			w.CompactNow() // in-memory configs: no-op
		case opSubscribe:
			v, err := w.RegisterView(op.aq, ops.UpdatePolicy{})
			if err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			if len(views) == 2 {
				views[0].v.Release()
				views = views[1:]
			}
			views = append(views, liveView{v: v, aq: op.aq})
		case opReopen, opCrashMidSpill:
			if !durable {
				continue
			}
			// Configs seeded with an explicit segment format cycle it
			// v1→v2→v3→v1 on every reopen, so cold history accumulates a mix
			// of all three formats in one store — all must keep decoding, and
			// the v2+ chunk-stats and v3 projected-decode fast paths must be
			// byte-identical to v1's full decode path.
			if cfg.SegmentFormat != 0 {
				cfg.SegmentFormat = cfg.SegmentFormat%persist.SegmentVersionLatest + 1
			}
			if op.kind == opCrashMidSpill {
				// Freeze the spill worker as the crash would, then write —
				// but never install — one sealed segment's file, leaving
				// exactly the on-disk state of a kill between the file
				// rename and the swap.
				w.spill.abort()
				forceSpillFileNoInstall(w)
			}
			w.CloseHard()
			ww, err := Open(cfg)
			if err != nil {
				return fmt.Sprintf("op %d %s: %v", i, op, err)
			}
			w = ww
			w.nowFn = modelNow // re-pin the recovered store's clock
			evictedOffset = m.evicted
			// Retention is configuration, not data: re-arm it like an
			// operator would. The recovered store already reflects every
			// pre-crash eviction (watermark), so this evicts nothing new.
			if retain > 0 {
				w.SetRetention(retain)
			}
			// CloseHard tore the standing views down with the store;
			// re-register them against the recovered warehouse as a
			// reconnecting client would. Their backfill must reproduce
			// exactly the recovered history.
			for j := range views {
				v, err := w.RegisterView(views[j].aq, ops.UpdatePolicy{})
				if err != nil {
					return fmt.Sprintf("op %d %s: re-register view %d: %v", i, op, j, err)
				}
				views[j].v = v
			}
		}
		if w.Len() != len(m.events) {
			return fmt.Sprintf("after op %d %s: Len = %d, model = %d\n%s", i, op, w.Len(), len(m.events), dumpDivergence(w, m))
		}
		if int(w.Evicted())+evictedOffset != m.evicted {
			return fmt.Sprintf("after op %d %s: Evicted = %d+%d, model = %d", i, op, w.Evicted(), evictedOffset, m.evicted)
		}
		for vi, lv := range views {
			got, err := lv.v.Rows()
			if err != nil {
				return fmt.Sprintf("after op %d %s: view %d Rows: %v", i, op, vi, err)
			}
			if diff := diffAggRows(got, m.aggregate(lv.aq, modelNow())); diff != "" {
				live, _, aerr := w.Aggregate(lv.aq)
				liveDiff := "aggregate matches view"
				if aerr != nil {
					liveDiff = fmt.Sprintf("aggregate err %v", aerr)
				} else if d := diffAggRows(got, live); d != "" {
					liveDiff = "view vs aggregate: " + d
				}
				return fmt.Sprintf("after op %d %s: view %d {%s %s}: %s [%s]", i, op, vi, aggString(lv.aq), queryString(lv.aq.Query), diff, liveDiff)
			}
		}
	}
	return ""
}

// forceSpillFileNoInstall reproduces the first half of a background spill
// — snapshot a sealed in-memory segment and publish its segment file —
// without the swap or the WAL checkpoint, on the first shard that has a
// spillable segment. This is the precise "crash during an in-flight
// spill" window; the caller has already stopped the spill worker, so the
// write cannot race it. No-op when no shard holds a sealed segment (the
// crash then degenerates to a plain CrashReopen).
func forceSpillFileNoInstall(w *Warehouse) {
	for _, s := range w.shards {
		s.mu.Lock()
		var victim *segment
		for _, seg := range s.segs {
			if seg != s.hot && seg != s.ooo && seg.len() > 0 {
				victim = seg
				break
			}
		}
		if victim == nil {
			s.mu.Unlock()
			continue
		}
		events := s.spillSnapshotLocked(victim)
		gen := s.nextSegGen
		s.nextSegGen++
		dir := s.dir
		s.mu.Unlock()
		_, _ = persist.WriteSegment(filepath.Join(dir, persist.SegmentFileName(gen)), events)
		return
	}
}

func diffEvents(got, want []Event) string {
	if len(got) != len(want) {
		return fmt.Sprintf("select returned %d events, model %d\n  got:  %s\n  want: %s",
			len(got), len(want), eventsString(got), eventsString(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq {
			return fmt.Sprintf("select[%d].Seq = %d, model %d\n  got:  %s\n  want: %s",
				i, got[i].Seq, want[i].Seq, eventsString(got), eventsString(want))
		}
	}
	return ""
}

// eventsString renders a result list compactly for divergence reports.
func eventsString(evs []Event) string {
	var b strings.Builder
	for i, ev := range evs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s@%s", ev.Seq, ev.Tuple.Source, ev.Tuple.Time.Format("15:04:05"))
	}
	return b.String()
}

// shrinkOps minimizes a failing sequence by chunked delta removal: drop
// ever-smaller chunks while the failure persists.
func shrinkOps(ops []mop, fails func([]mop) bool) []mop {
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(ops); {
			cand := make([]mop, 0, len(ops)-chunk)
			cand = append(cand, ops[:i]...)
			cand = append(cand, ops[i+chunk:]...)
			if fails(cand) {
				ops = cand
			} else {
				i += chunk
			}
		}
	}
	return ops
}

// TestModelCheck drives randomized op sequences across segment-boundary-
// heavy configurations; the segmented, sharded, index-accelerated store
// must be observationally identical to the naive model. Configurations
// with a DataDir sentinel run durably — spilling cold segments to a temp
// dir with a tiny hot budget, and crashing/reopening mid-sequence — and
// must still be indistinguishable.
func TestModelCheck(t *testing.T) {
	// The sentinel is replaced by a fresh temp dir per run inside runOps.
	const durableDir = "<tmp>"
	configs := []Config{
		{Shards: 1, SegmentEvents: 4, SegmentSpan: 10 * time.Minute},
		{Shards: 4, SegmentEvents: 8, SegmentSpan: 30 * time.Minute},
		{Shards: 2, SegmentEvents: 1, SegmentSpan: time.Minute},                // every event its own segment
		{Shards: 4, SegmentEvents: 1 << 20, SegmentSpan: 24 * 365 * time.Hour}, // never rotates
		// Durable: spill-heavy (everything beyond one sealed segment per
		// shard is on disk) and crash-prone. The tiny checkpoint cadence
		// makes the view publishers persist partials constantly, so the
		// post-crash re-registrations exercise checkpoint resume — both
		// accepted (fresh checkpoint) and rejected (an eviction bumped the
		// cut fingerprint) — not just cold backfill.
		{Shards: 2, SegmentEvents: 4, SegmentSpan: 10 * time.Minute, DataDir: durableDir,
			HotSegments: 1, ViewCheckpointEvery: 2},
		{Shards: 4, SegmentEvents: 8, SegmentSpan: 30 * time.Minute, DataDir: durableDir,
			HotSegments: 2, ViewCheckpointEvery: 4},
		// Durable, v1-seeded: every reopen cycles the segment format
		// v1→v2→v3, so cold history mixes all three formats in one store,
		// and an eager CompactBelow rewrites the mix aggressively.
		{Shards: 2, SegmentEvents: 4, SegmentSpan: 10 * time.Minute, DataDir: durableDir,
			HotSegments: 1, SegmentFormat: persist.SegmentV1, CompactBelow: 6, ViewCheckpointEvery: 2},
	}
	const seeds = 25
	for ci, cfg := range configs {
		name := fmt.Sprintf("shards=%d/segEvents=%d", cfg.Shards, cfg.SegmentEvents)
		if cfg.DataDir != "" {
			name += "/durable"
		}
		if cfg.SegmentFormat != 0 {
			name += "/v1v2v3"
		}
		t.Run(name, func(t *testing.T) {
			seedCount := seeds
			if cfg.DataDir != "" && testing.Short() {
				seedCount = 5 // durable runs pay real disk I/O
			}
			for seed := int64(0); seed < int64(seedCount); seed++ {
				ops := genOps(rand.New(rand.NewSource(seed+int64(ci)*1000)), 250, cfg.DataDir != "")
				diff := runOps(cfg, ops)
				if diff == "" {
					continue
				}
				minimal := shrinkOps(ops, func(cand []mop) bool { return runOps(cfg, cand) != "" })
				var steps []string
				for _, op := range minimal {
					steps = append(steps, op.String())
				}
				// Re-running the minimal sequence usually reproduces the
				// diff, but a timing-dependent failure may not; fall back
				// to the original diff rather than printing nothing.
				minDiff := runOps(cfg, minimal)
				if minDiff == "" {
					minDiff = "(not reproduced on re-run) original: " + diff
				}
				t.Fatalf("seed %d diverges: %s\nminimal reproduction (%d ops):\n  %s",
					seed, minDiff, len(minimal), strings.Join(steps, "\n  "))
			}
		})
	}
}

// dumpDivergence maps every live seq in the impl to where it lives (which
// shard, which memory segment role or cold file) and diffs that seq set
// against the model's, plus the manifest's cut frontier — the first thing
// needed to localize a Len divergence.
func dumpDivergence(w *Warehouse, m *refModel) string {
	var b strings.Builder
	model := map[uint64]Event{}
	for _, ev := range m.events {
		model[ev.Seq] = ev
	}
	impl := map[uint64]string{}
	for si, s := range w.shards {
		s.mu.Lock()
		for _, seg := range s.segs {
			role := "sealed"
			if seg == s.hot {
				role = "hot"
			} else if seg == s.ooo {
				role = "ooo"
			}
			for _, ev := range seg.events {
				impl[ev.Seq] = fmt.Sprintf("shard%d/mem-%s(len=%d)", si, role, seg.len())
			}
		}
		for _, cs := range s.cold {
			loc := fmt.Sprintf("shard%d/cold[%s count=%d skip=%d]", si, filepath.Base(cs.info.Path), cs.count, cs.skip)
			if err := cs.ensureLoaded(); err != nil {
				b.WriteString(fmt.Sprintf("  LOAD ERR %s: %v\n", loc, err))
				continue
			}
			for _, ev := range cs.loaded {
				impl[ev.Seq] = loc
			}
			cs.unload()
		}
		s.mu.Unlock()
	}
	var extra, missing []uint64
	for seq := range impl {
		if _, ok := model[seq]; !ok {
			extra = append(extra, seq)
		}
	}
	for seq := range model {
		if _, ok := impl[seq]; !ok {
			missing = append(missing, seq)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	b.WriteString(fmt.Sprintf("impl=%d model=%d extra=%d missing=%d\n", len(impl), len(model), len(extra), len(missing)))
	for _, seq := range extra {
		b.WriteString(fmt.Sprintf("  EXTRA seq=%d at %s\n", seq, impl[seq]))
	}
	for _, seq := range missing {
		ev := model[seq]
		b.WriteString(fmt.Sprintf("  MISSING seq=%d %s@%s\n", seq, ev.Tuple.Source, ev.Tuple.Time.Format("15:04:05")))
	}
	if w.pers != nil {
		for ci, c := range w.pers.manifest.Cuts {
			b.WriteString(fmt.Sprintf("  cut[%d] wm={%s seq=%d} marks=%v\n", ci,
				c.Watermark.Time.Format("15:04:05"), c.Watermark.Seq, c.Marks))
		}
	}
	return b.String()
}
